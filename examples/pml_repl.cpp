//===- examples/pml_repl.cpp - Run PML programs -----------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Compiles and runs PML (the reproduction's Parallel ML stand-in) on the
// entanglement-managed runtime. With no arguments it runs a built-in demo
// suite — including an *entangled* program that pre-paper MPL would
// reject. Pass a file path to run it, or -e "expr" for one-liners.
//
// Usage:
//   pml_repl                       # run the demo programs
//   pml_repl program.pml           # run a file
//   pml_repl -e "1 + 2"           # evaluate an expression
//   pml_repl -workers 4 file.pml   # choose the worker count
//   pml_repl -i                    # interactive session (line at a time)
//
// The interactive session holds one Runtime for its whole lifetime and
// adds colon commands; `:heaps` dumps the live heap-tree snapshot
// (obs::snapshotHeapTree) so the hierarchy can be inspected mid-session.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "pml/Vm.h"
#include "support/Cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace mpl;

namespace {

struct Demo {
  const char *Title;
  const char *Source;
};

const Demo Demos[] = {
    {"parallel fib",
     "fun fib n = if n < 2 then n else\n"
     "  if n < 12 then fib (n-1) + fib (n-2)\n"
     "  else let val p = par (fib (n-1), fib (n-2)) in fst p + snd p end\n"
     "printInt (fib 24)"},

    {"parallel array sum",
     "val a = alloc 10000 1\n"
     "fun sum lo hi =\n"
     "  if hi - lo < 100 then\n"
     "    let fun go i acc = if i = hi then acc else go (i+1) (acc + get a i)\n"
     "    in go lo 0 end\n"
     "  else let val mid = (lo + hi) / 2\n"
     "       val p = par (sum lo mid, sum mid hi)\n"
     "       in fst p + snd p end\n"
     "printInt (sum 0 10000)"},

    {"effects across tasks (entangled; rejected by pre-paper MPL)",
     "val mailbox = ref (ref 0)\n"
     "val p = par (\n"
     "  (mailbox := ref 42; 0),\n"
     "  (let fun poll u =\n"
     "     let val inner = !mailbox in\n"
     "       if !inner = 42 then !inner else poll u end\n"
     "   in poll () end))\n"
     "printInt (snd p)"},

    {"sieve of Eratosthenes",
     "val n = 1000\n"
     "val composite = alloc (n + 1) false\n"
     "fun mark m p = if m > n then () else (set composite m true; "
     "mark (m + p) p)\n"
     "fun sieve p = if p * p > n then () else\n"
     "  ((if get composite p then () else mark (p * p) p); sieve (p + 1))\n"
     "fun count i acc = if i > n then acc else\n"
     "  count (i + 1) (if get composite i then acc else acc + 1)\n"
     "sieve 2;\n"
     "printInt (count 2 0)"},
};

bool evalLine(const std::string &Source) {
  std::string Output, Rendered, TypeStr;
  std::vector<std::string> Errors;
  if (pml::evalSource(Source, Output, Rendered, TypeStr, Errors)) {
    std::fwrite(Output.data(), 1, Output.size(), stdout);
    std::printf("val it : %s = %s\n", TypeStr.c_str(), Rendered.c_str());
    return true;
  }
  for (const std::string &E : Errors)
    std::printf("error: %s\n", E.c_str());
  return false;
}

int runOne(const std::string &Title, const std::string &Source,
           int Workers) {
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  rt::Runtime R(Cfg);

  std::printf("--- %s ---\n", Title.c_str());
  int Rc = 0;
  R.run([&] {
    if (!evalLine(Source))
      Rc = 1;
  });
  return Rc;
}

int runInteractive(int Workers) {
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  // One Runtime for the whole session (only one may exist at a time); its
  // constructor installs the heap-tree provider `:heaps` reads through.
  rt::Runtime R(Cfg);

  // Arm the causal span ledger and the entanglement profiler for the whole
  // session: every evaluated line is one run, so `:spans` reports the last
  // line's fork-join DAG while `:prof` accumulates sites across lines.
  obs::SpanLedger::get().enable();
  obs::Profiler::get().reset();
  obs::Profiler::get().enable();

  std::printf("pml interactive — :help for commands, :quit to leave\n");
  std::string Line;
  for (;;) {
    std::printf("pml> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    if (Line == ":quit" || Line == ":q")
      break;
    if (Line == ":help") {
      std::printf("  :heaps        dump the live heap-tree snapshot (JSON)\n"
                  "  :spans        critical-path summary of the last run\n"
                  "  :prof         top-5 entanglement profile sites\n"
                  "  :quit, :q     leave the session\n"
                  "  anything else is evaluated as a complete PML program\n"
                  "  (one per line; bindings do not persist across lines)\n");
      continue;
    }
    if (Line == ":spans") {
      obs::SpanRunSummary Sum = obs::SpanLedger::get().lastRun();
      if (Sum.Tasks == 0) {
        std::printf("no run recorded yet — evaluate a program first\n");
        continue;
      }
      std::string S = Sum.summaryText();
      std::fwrite(S.data(), 1, S.size(), stdout);
      if (S.empty() || S.back() != '\n')
        std::fputc('\n', stdout);
      continue;
    }
    if (Line == ":prof") {
      std::vector<obs::ProfileSiteSnap> Sites = obs::Profiler::get().snapshot();
      if (Sites.empty()) {
        std::printf("no entanglement events recorded yet\n");
        continue;
      }
      std::sort(Sites.begin(), Sites.end(),
                [](const obs::ProfileSiteSnap &A,
                   const obs::ProfileSiteSnap &B) {
                  if (A.Events != B.Events)
                    return A.Events > B.Events;
                  return A.Bytes > B.Bytes;
                });
      size_t N = std::min<size_t>(Sites.size(), 5);
      for (size_t I = 0; I < N; ++I)
        std::printf("  %-24s events=%lld bytes=%lld\n",
                    Sites[I].Name.c_str(),
                    static_cast<long long>(Sites[I].Events),
                    static_cast<long long>(Sites[I].Bytes));
      continue;
    }
    if (Line == ":heaps") {
      // Snapshot from inside run() so the session's root heap (and any
      // still-live children) are in the dump, not just the empty shell.
      R.run([] {
        std::string S = obs::snapshotHeapTree();
        std::fwrite(S.data(), 1, S.size(), stdout);
        if (S.empty() || S.back() != '\n')
          std::fputc('\n', stdout);
      });
      continue;
    }
    if (!Line.empty() && Line[0] == ':') {
      std::printf("unknown command '%s' (:help lists them)\n", Line.c_str());
      continue;
    }
    if (Line.empty())
      continue;
    R.run([&] { evalLine(Line); });
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  int Workers = static_cast<int>(C.getInt("workers", 2));

  if (C.getBool("i"))
    return runInteractive(Workers);

  std::string Inline = C.getString("e", "");
  if (!Inline.empty())
    return runOne("expression", Inline, Workers);

  if (!C.positional().empty()) {
    const std::string &Path = C.positional()[0];
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream Ss;
    Ss << In.rdbuf();
    return runOne(Path, Ss.str(), Workers);
  }

  int Rc = 0;
  for (const Demo &D : Demos)
    Rc |= runOne(D.Title, D.Source, Workers);
  return Rc;
}
