//===- examples/pipeline_channels.cpp - Producer/consumer pipeline ---------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Futures-with-effects style communication: a producer task allocates cons
// cells in its own heap and pushes them onto a shared Treiber stack while a
// concurrent consumer pops and folds them. Every push publishes a fresh
// cell (pin-before-publish), every pop is an entangled read. The cells are
// unpinned when the two tasks join and become ordinary garbage.
//
// Usage: pipeline_channels [-n 200000] [-workers 2] [-stages 3]
//
//===----------------------------------------------------------------------===//

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Cli.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "workloads/Entangled.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::ops;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  int64_t N = C.getInt("n", 200'000);
  int Workers = static_cast<int>(C.getInt("workers", 2));
  int Stages = static_cast<int>(C.getInt("stages", 3));

  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  rt::Runtime R(Cfg);

  std::printf("pipeline: n=%lld workers=%d stages=%d\n",
              static_cast<long long>(N), Workers, Stages);

  Timer T;
  int64_t Total = 0;
  R.run([&] {
    for (int S = 0; S < Stages; ++S)
      Total += wl::channelPipeline(N);
  });
  double Sec = T.elapsedSec();

  int64_t Expect = Stages * (N * (N - 1) / 2);
  std::printf("sum of consumed items: %lld (expected %lld) in %.3fs\n",
              static_cast<long long>(Total), static_cast<long long>(Expect),
              Sec);
  MPL_CHECK(Total == Expect, "pipeline lost or corrupted items");

  StatRegistry &Reg = StatRegistry::get();
  std::printf("\nentangled reads: %lld, pins: %lld, unpins: %lld, "
              "outstanding pinned bytes: %lld\n",
              static_cast<long long>(Reg.valueOf("em.reads.entangled")),
              static_cast<long long>(Reg.valueOf("em.pins.down") +
                                     Reg.valueOf("em.pins.cross") +
                                     Reg.valueOf("em.pins.holder")),
              static_cast<long long>(Reg.valueOf("em.unpins")),
              static_cast<long long>(Reg.valueOf("em.pinned.bytes") -
                                     Reg.valueOf("em.unpins.bytes")));
  return 0;
}
