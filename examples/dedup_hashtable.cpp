//===- examples/dedup_hashtable.cpp - Entangled dedup workload -------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The paper's motivating class of programs: a parallel loop that
// deduplicates keys through a *shared, concurrently-mutated* hash table.
// Every insertion allocates a boxed key in the inserting task's heap and
// publishes it into the shared table (the write barrier pins it); every
// probe may read boxes allocated by concurrent tasks (entangled reads).
// Pre-paper MPL rejects this program; run with -mode detect to see that.
//
// Usage: dedup_hashtable [-n 1000000] [-range 250000] [-workers 4]
//                        [-mode manage|detect|off]
//
//===----------------------------------------------------------------------===//

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Cli.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "workloads/Entangled.h"
#include "workloads/Kernels.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::ops;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  int64_t N = C.getInt("n", 1'000'000);
  int64_t Range = C.getInt("range", N / 4);
  int Workers = static_cast<int>(C.getInt("workers", 4));
  std::string ModeName = C.getString("mode", "manage");

  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Mode = ModeName == "detect"
                 ? em::Mode::Detect
                 : (ModeName == "off" ? em::Mode::Off : em::Mode::Manage);
  rt::Runtime R(Cfg);

  std::printf("dedup: n=%lld range=%lld workers=%d mode=%s\n",
              static_cast<long long>(N), static_cast<long long>(Range),
              Workers, ModeName.c_str());

  int64_t Distinct = 0;
  Timer T;
  R.run([&] {
    Local Keys(wl::randomInts(N, Range, 23));
    Distinct = wl::dedup(Keys.get(), 512);
  });
  double Sec = T.elapsedSec();

  std::printf("distinct keys: %lld (%.3fs, %.1f M keys/s)\n",
              static_cast<long long>(Distinct), Sec,
              static_cast<double>(N) / Sec / 1e6);

  StatRegistry &Reg = StatRegistry::get();
  std::printf("\nentanglement activity:\n");
  std::printf("  entangled reads     %12lld\n",
              static_cast<long long>(Reg.valueOf("em.reads.entangled")));
  std::printf("  down-pointer pins   %12lld\n",
              static_cast<long long>(Reg.valueOf("em.pins.down")));
  std::printf("  cross-pointer pins  %12lld\n",
              static_cast<long long>(Reg.valueOf("em.pins.cross")));
  std::printf("  pinned bytes        %12lld\n",
              static_cast<long long>(Reg.valueOf("em.pinned.bytes")));
  std::printf("  unpinned at joins   %12lld\n",
              static_cast<long long>(Reg.valueOf("em.unpins")));
  std::printf("  local collections   %12lld\n",
              static_cast<long long>(Reg.valueOf("gc.collections")));
  return 0;
}
