//===- examples/quickstart.cpp - First steps with mpl-em -------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// A tour of the public API: start a runtime, allocate functional data,
// fork parallel tasks with rt::par, mutate refs and arrays freely (the
// runtime manages any entanglement), trigger a collection, and read the
// entanglement/GC statistics.
//
// Build and run:
//   cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Histogram.h"
#include "support/Stats.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::ops;

int main() {
  // 1. Configure the runtime: workers, entanglement mode, GC policy.
  rt::Config Cfg;
  Cfg.NumWorkers = 4;
  Cfg.Mode = em::Mode::Manage; // The paper's full entanglement management.
  rt::Runtime R(Cfg);

  R.run([] {
    // 2. Allocate functional data. Object references held across
    //    allocations live in rooted handles (Local).
    Local Numbers(newArray(1'000'000, boxInt(0)));
    rt::parFor(0, 1'000'000, 4096, [&](int64_t I) {
      arrSet(Numbers.get(), static_cast<uint32_t>(I), boxInt(I));
    });

    // 3. Fork-join parallelism: each branch gets its own heap, allocates
    //    and collects independently, and results merge at the join.
    auto [SumLow, SumHigh] = rt::par(
        [&] {
          int64_t S = 0;
          for (uint32_t I = 0; I < 500'000; ++I)
            S += unboxInt(arrGet(Numbers.get(), I));
          return boxInt(S);
        },
        [&] {
          int64_t S = 0;
          for (uint32_t I = 500'000; I < 1'000'000; ++I)
            S += unboxInt(arrGet(Numbers.get(), I));
          return boxInt(S);
        });
    std::printf("parallel sum: %lld\n",
                static_cast<long long>(unboxInt(SumLow) + unboxInt(SumHigh)));

    // 4. Effects across concurrent tasks are allowed — this is what the
    //    paper enables. Sibling tasks communicate through a shared ref;
    //    the runtime pins the published object until the join.
    Local Mailbox(newRef(boxInt(0)));
    auto [Sent, Received] = rt::par(
        [&] {
          Local Msg(newRecord(0, {boxInt(42), boxInt(43)}));
          refSet(Mailbox.get(), Msg.slot()); // Publish (pins Msg).
          return unit();
        },
        [&] {
          // Poll for the sibling's message: an entangled read, detected
          // and managed by the read barrier.
          while (true) {
            Slot V = refGet(Mailbox.get());
            if (Object *Msg = Object::asPointer(V))
              return boxInt(unboxInt(recGet(Msg, 0)) +
                            unboxInt(recGet(Msg, 1)));
          }
        });
    (void)Sent;
    std::printf("message through entangled mailbox: %lld\n",
                static_cast<long long>(unboxInt(Received)));

    // 5. Force a local collection and look at the statistics.
    rt::Runtime::current()->maybeCollect(/*Force=*/true);
  });

  std::printf("\nruntime statistics:\n%s",
              StatRegistry::get().report().c_str());
  std::string Hists = HistogramRegistry::get().report();
  if (!Hists.empty())
    std::printf("\nlatency histograms:\n%s", Hists.c_str());
  return 0;
}
