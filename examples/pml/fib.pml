(* Parallel Fibonacci: the canonical fork-join benchmark.
   Run: pml_repl -workers 4 examples/pml/fib.pml *)

fun fib n =
  if n < 2 then n
  else if n < 14 then fib (n - 1) + fib (n - 2)
  else
    let val p = par (fib (n - 1), fib (n - 2))
    in fst p + snd p end

printInt (fib 28)
