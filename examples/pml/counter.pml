(* Effects across concurrent tasks — the program class this paper enables.
   Two sibling tasks increment a shared counter ref; the reads and writes
   entangle the tasks' heaps and the runtime manages it. Pre-paper MPL
   (run with a Detect-mode runtime) rejects this program. *)

val counter = ref 0

fun bump n =
  if n = 0 then ()
  else (counter := !counter + 1; bump (n - 1))

val p = par (bump 1000, bump 1000)

-- Note: the two branches race on the (non-atomic) counter, exactly like
-- the equivalent Parallel ML program would; the final value is between
-- 1000 and 2000. Entanglement management makes the race *memory safe*;
-- it does not (and should not) make it deterministic.
printInt (!counter)
