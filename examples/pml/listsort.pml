(* Parallel list mergesort with pattern matching — the classic functional
   benchmark, running on the hierarchical heaps with one task heap per
   par branch. *)

fun split xs =
  case xs of
    [] => ([], [])
  | x :: [] => ([x], [])
  | x :: y :: rest =>
      let val p = split rest in (x :: fst p, y :: snd p) end

fun merge ab =
  case ab of
    ([], ys) => ys
  | (xs, []) => xs
  | (x :: xs, y :: ys) =>
      if x <= y then x :: merge (xs, y :: ys)
      else y :: merge (x :: xs, ys)

fun len xs = case xs of [] => 0 | _ :: t => 1 + len t

fun sorted xs =
  case xs of
    [] => true
  | _ :: [] => true
  | x :: y :: rest => x <= y andalso sorted (y :: rest)

fun msort xs =
  if len xs < 64 then
    case xs of
      [] => []
    | h :: t => merge ([h], msort t)   -- small lists: insertion by merge
  else
    let val halves = split xs
        val p = par (msort (fst halves), msort (snd halves))
    in merge p end

fun mklist n acc = if n = 0 then acc else mklist (n - 1) (n * 37 % 1000 :: acc)

val input = mklist 2000 []
val result = msort input

(if sorted result then print "sorted\n" else print "BROKEN\n");
printInt (len result)
