(* First-class effect handlers: an effect-based generator.
   `range` performs Yield once per element; the handler captures the rest
   of the walk as a one-shot continuation k, folds the element into its
   result, and resumes. The walk never knows it was suspended.
   Run: pml_repl examples/pml/generator.pml *)

effect Yield

fun range i n = if i = n then 0 else (perform Yield i) + range (i + 1) n

(* Sum 0..99 through the handler. Each resume feeds 1 back as the value
   of the perform, so the walk itself counts the elements: 4950 + 100. *)
val total = handle range 0 100 with
  | Yield v k => v + resume k 1 end

(* The continuation is a first-class value: here every resume runs inside
   a par branch, so the suspended walk migrates to whichever worker picks
   it up — its captured heap travels with it (pinned until resumed). *)
fun gen u = handle range 0 50 with
  | Yield v k => let val p = par (resume k 0, v) in fst p + snd p end end

printInt total;
printInt (gen ())
