(* Parallel mergesort over an array, functional style: each level
   allocates fresh arrays, exercising the hierarchical heaps. *)

val n = 20000

-- Deterministic pseudo-random input.
fun fill a i seed =
  if i = length a then ()
  else (set a i (seed % 100000);
        fill a (i + 1) ((seed * 1103515245 + 12345) % 2147483647))

fun copyRange src lo hi =
  let val out = alloc (hi - lo) 0
      fun go i = if i = hi then out else (set out (i - lo) (get src i); go (i + 1))
  in go lo end

fun merge l r =
  let val out = alloc (length l + length r) 0
      fun go i j k =
        if i = length l then
          (if j = length r then out
           else (set out k (get r j); go i (j + 1) (k + 1)))
        else if j = length r then (set out k (get l i); go (i + 1) j (k + 1))
        else if get l i <= get r j then (set out k (get l i); go (i + 1) j (k + 1))
        else (set out k (get r j); go i (j + 1) (k + 1))
  in go 0 0 0 end

fun isort a =
  let fun ins out i v =
        if i > 0 andalso get out (i - 1) > v
        then (set out i (get out (i - 1)); ins out (i - 1) v)
        else set out i v
      fun go i = if i = length a then a else (ins a i (get a i); go (i + 1))
  in go 0 end

fun msort a =
  if length a < 512 then isort a
  else
    let val mid = length a / 2
        val l = copyRange a 0 mid
        val r = copyRange a mid (length a)
        val p = par (msort l, msort r)
    in merge (fst p) (snd p) end

fun check a i =
  if i + 1 >= length a then true
  else if get a i <= get a (i + 1) then check a (i + 1)
  else false

val input = alloc n 0
val u1 = fill input 0 42
val sorted = msort input
(if check sorted 0 then print "sorted\n" else print "BROKEN\n");
printInt (get sorted 0 + get sorted (n - 1))
