//===- tools/GateLib.cpp - Statistical bench regression gate --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "GateLib.h"

#include "support/Json.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace mpl {
namespace gate {

namespace {

double numField(const json::Value *V, const char *Name, double Default = 0) {
  if (!V)
    return Default;
  const json::Value *F = V->field(Name);
  return F && F->isNumber() ? F->NumV : Default;
}

int64_t intField(const json::Value *V, const char *Name) {
  return static_cast<int64_t>(numField(V, Name));
}

std::string strField(const json::Value *V, const char *Name) {
  if (!V)
    return "";
  const json::Value *F = V->field(Name);
  return F && F->isString() ? F->StrV : "";
}

std::string fmtMs(double Sec) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3fms", Sec * 1e3);
  return Buf;
}

} // namespace

const char *noiseName(Noise N) {
  switch (N) {
  case Noise::Unknown:
    return "unknown";
  case Noise::Stable:
    return "stable";
  case Noise::Moderate:
    return "moderate";
  case Noise::Noisy:
    return "noisy";
  }
  return "?";
}

const char *findingKindName(Finding::Kind K) {
  switch (K) {
  case Finding::Kind::MissingRow:
    return "missing-row";
  case Finding::Kind::LeakedPins:
    return "leaked-pins";
  case Finding::Kind::ChecksumMismatch:
    return "checksum";
  case Finding::Kind::AttributionMismatch:
    return "attribution";
  case Finding::Kind::TimeRegression:
    return "time";
  case Finding::Kind::ResidencyRegression:
    return "residency";
  case Finding::Kind::CounterRegression:
    return "counter";
  case Finding::Kind::ProfileDrift:
    return "profile-drift";
  case Finding::Kind::Note:
    return "note";
  }
  return "?";
}

double Row::sigmaS() const {
  if (RepS.size() < 2)
    return StddevS;
  double Mean = 0;
  for (double S : RepS)
    Mean += S;
  Mean /= static_cast<double>(RepS.size());
  double Var = 0;
  for (double S : RepS)
    Var += (S - Mean) * (S - Mean);
  return std::sqrt(Var / static_cast<double>(RepS.size() - 1));
}

Noise Row::noiseClass() const {
  double Sigma = sigmaS();
  if (Sigma <= 0 || MedianS <= 0)
    return Noise::Unknown;
  double Cv = Sigma / MedianS;
  if (Cv < 0.02)
    return Noise::Stable;
  if (Cv < 0.10)
    return Noise::Moderate;
  return Noise::Noisy;
}

const Row *BenchFile::find(const std::string &Name,
                           const std::string &Config) const {
  for (const Row &R : Rows)
    if (R.Name == Name && R.Config == Config)
      return &R;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

bool parseBenchJson(const std::string &Text, BenchFile &Out, std::string &Err) {
  if (Text.find_first_not_of(" \t\r\n") == std::string::npos) {
    Err = "empty input (expected an mpl-bench/1 document)";
    return false;
  }
  json::Value Root;
  if (!json::parse(Text, Root, Err)) {
    Err = "parse error: " + Err;
    return false;
  }
  if (!Root.isObject()) {
    Err = "top-level value is not an object";
    return false;
  }
  std::string Schema = strField(&Root, "schema");
  if (Schema != "mpl-bench/1") {
    Err = Schema.empty() ? "missing schema field (not an mpl-bench file)"
                         : "unsupported schema '" + Schema + "'";
    return false;
  }
  Out.Bench = strField(&Root, "bench");
  Out.Scale = numField(&Root, "scale");
  Out.Reps = static_cast<int>(numField(&Root, "reps"));
  const json::Value *Rows = Root.field("rows");
  if (!Rows || !Rows->isArray()) {
    Err = "missing rows array";
    return false;
  }
  Out.Rows.clear();
  for (size_t I = 0; I < Rows->Items.size(); ++I) {
    const json::Value &RV = Rows->Items[I];
    std::string RowId = "row " + std::to_string(I);
    if (!RV.isObject()) {
      Err = RowId + ": not an object";
      return false;
    }
    Row R;
    R.Name = strField(&RV, "name");
    if (R.Name.empty()) {
      Err = RowId + ": missing name";
      return false;
    }
    R.Config = strField(&RV, "config");
    if (const json::Value *E = RV.field("entangled"))
      R.Entangled = E->BoolV;
    const json::Value *Time = RV.field("time");
    if (!Time || !Time->field("median_s") ||
        !Time->field("median_s")->isNumber()) {
      Err = RowId + " ('" + R.Name + "'): missing time.median_s";
      return false;
    }
    R.MedianS = numField(Time, "median_s");
    R.StddevS = numField(Time, "stddev_s");
    if (const json::Value *Reps = Time->field("rep_s"); Reps && Reps->isArray())
      for (const json::Value &V : Reps->Items)
        if (V.isNumber())
          R.RepS.push_back(V.NumV);
    const json::Value *WS = RV.field("work_span");
    R.WorkS = numField(WS, "work_s");
    R.SpanS = numField(WS, "span_s");
    const json::Value *Em = RV.field("em");
    R.EntangledReads = intField(Em, "entangled_reads");
    R.PinsDown = intField(Em, "pins_down");
    R.PinsCross = intField(Em, "pins_cross");
    R.PinsHolder = intField(Em, "pins_holder");
    R.PinnedObjects = intField(Em, "pinned_objects");
    R.PinnedBytes = intField(Em, "pinned_bytes");
    R.Unpins = intField(Em, "unpins");
    R.ContCaptured = intField(Em, "cont_captured");
    R.ContResumed = intField(Em, "cont_resumed");
    const json::Value *Jit = RV.field("jit");
    R.JitCompiled = intField(Jit, "compiled");
    R.JitEntries = intField(Jit, "entries");
    R.JitCodeBytes = intField(Jit, "code_bytes");
    R.GcCount = intField(RV.field("gc"), "collections");
    R.Residency = intField(&RV, "max_residency_bytes");
    if (const json::Value *Ck = RV.field("checksum"); Ck && Ck->isNumber()) {
      R.Checksum = static_cast<int64_t>(Ck->NumV);
      R.HasChecksum = true;
    }
    const json::Value *Prof = RV.field("profile");
    R.LeakedPins = intField(Prof, "leaked_pins");
    R.PinBytesAttributed = intField(Prof, "pin_bytes_attributed");
    if (Prof)
      if (const json::Value *Sites = Prof->field("sites");
          Sites && Sites->isArray())
        for (const json::Value &SV : Sites->Items)
          R.Sites.push_back(SiteRow{strField(&SV, "name"),
                                    intField(&SV, "events"),
                                    intField(&SV, "bytes")});
    Out.Rows.push_back(std::move(R));
  }
  return true;
}

bool loadBenchFile(const std::string &Path, BenchFile &Out, std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = Path + ": cannot open";
    return false;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  if (!parseBenchJson(Ss.str(), Out, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  Out.Path = Path;
  return true;
}

//===----------------------------------------------------------------------===//
// Gate
//===----------------------------------------------------------------------===//

namespace {

/// Upward-only counter limit: base grown by Pct percent, but never less
/// than base + AbsSlack (zero/near-zero baselines would otherwise flag
/// scheduler jitter).
int64_t counterLimit(int64_t Base, double Pct, int64_t AbsSlack) {
  double Rel = static_cast<double>(Base) * (1.0 + Pct / 100.0);
  return std::max(static_cast<int64_t>(Rel), Base + AbsSlack);
}

struct RowGate {
  const GateOptions &Opts;
  const Row &B;
  const Row &C;
  std::vector<Finding> &Out;

  void fail(Finding::Kind K, std::string Msg) {
    Out.push_back(Finding{K, /*Fatal=*/true, B.Name, B.Config,
                          std::move(Msg)});
  }

  void counter(const char *What, int64_t Base, int64_t Cur, double Pct,
               int64_t AbsSlack, Finding::Kind K) {
    int64_t Limit = counterLimit(Base, Pct, AbsSlack);
    if (Cur <= Limit)
      return;
    fail(K, std::string(What) + " " + std::to_string(Base) + " -> " +
                std::to_string(Cur) + " (limit " + std::to_string(Limit) +
                ")");
  }

  void gateTime() {
    double Sigma = B.sigmaS();
    Noise Class = B.noiseClass();
    double Floor = Opts.FloorPct / 100.0 * (Class == Noise::Noisy ? 2.0 : 1.0);
    double Allow = std::max(Opts.StddevK * Sigma, Floor * B.MedianS);
    if (C.MedianS <= B.MedianS + Allow)
      return;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s -> %s (+%.0f%%; allowed max(%.1f*sigma=%s, "
                  "floor=%s), baseline %s)",
                  fmtMs(B.MedianS).c_str(), fmtMs(C.MedianS).c_str(),
                  100.0 * (C.MedianS / B.MedianS - 1.0), Opts.StddevK,
                  fmtMs(Opts.StddevK * Sigma).c_str(),
                  fmtMs(Floor * B.MedianS).c_str(), noiseName(Class));
    fail(Finding::Kind::TimeRegression, Buf);
  }

  void gateResidency() {
    counter("max_residency_bytes", B.Residency, C.Residency,
            Opts.ResidencyTolerancePct, Opts.ResidencyAbsSlackBytes,
            Finding::Kind::ResidencyRegression);
    counter("pinned_bytes", B.PinnedBytes, C.PinnedBytes,
            Opts.ResidencyTolerancePct, Opts.CounterAbsSlackBytes,
            Finding::Kind::ResidencyRegression);
  }

  void gateCounters() {
    double Pct = Opts.CounterTolerancePct;
    int64_t Ev = Opts.CounterAbsSlackEvents;
    int64_t By = Opts.CounterAbsSlackBytes;
    auto K = Finding::Kind::CounterRegression;
    counter("entangled_reads", B.EntangledReads, C.EntangledReads, Pct, Ev, K);
    counter("pins_down", B.PinsDown, C.PinsDown, Pct, Ev, K);
    counter("pins_cross", B.PinsCross, C.PinsCross, Pct, Ev, K);
    counter("pins_holder", B.PinsHolder, C.PinsHolder, Pct, Ev, K);
    counter("pinned_objects", B.PinnedObjects, C.PinnedObjects, Pct, Ev, K);
    counter("pinned_bytes", B.PinnedBytes, C.PinnedBytes, Pct, By, K);
    // pml effect-handler activity (BENCH_T3): capture/resume counts are a
    // proxy for how much continuation traffic (and capture pinning) the
    // carrier generates; upward-only like every counter.
    counter("cont_captured", B.ContCaptured, C.ContCaptured, Pct, Ev, K);
    counter("cont_resumed", B.ContResumed, C.ContResumed, Pct, Ev, K);
    // pml.jit.* (jit-tier rows of BENCH_T3): compile count, native
    // entries and code bytes are deterministic at one worker, so growth
    // past tolerance means the tiering policy or the templates regressed
    // (e.g. a function recompiling, or the dispatcher bouncing in and out
    // of native code). Upward-only like every counter: compiling *less*
    // shows up in the jit rows' time gate instead.
    counter("jit_compiled", B.JitCompiled, C.JitCompiled, Pct, Ev, K);
    counter("jit_entries", B.JitEntries, C.JitEntries, Pct, Ev, K);
    counter("jit_code_bytes", B.JitCodeBytes, C.JitCodeBytes, Pct, By, K);
    counter("prof_bytes", B.PinBytesAttributed, C.PinBytesAttributed, Pct, By,
            K);
  }

  void gateDrift() {
    // Current top-K sites vs. the *whole* baseline profile: growth or a
    // brand-new site fails; a site shrinking or vanishing is an
    // improvement and never does.
    int Considered = 0;
    for (const SiteRow &S : C.Sites) {
      if (Considered++ >= Opts.DriftTopK)
        break;
      const SiteRow *Base = nullptr;
      for (const SiteRow &BS : B.Sites)
        if (BS.Name == S.Name) {
          Base = &BS;
          break;
        }
      int64_t BaseEv = Base ? Base->Events : 0;
      int64_t BaseBy = Base ? Base->Bytes : 0;
      int64_t EvLimit = counterLimit(BaseEv, Opts.DriftTolerancePct,
                                     Opts.DriftAbsSlackEvents);
      int64_t ByLimit = counterLimit(BaseBy, Opts.DriftTolerancePct,
                                     Opts.DriftAbsSlackBytes);
      if (S.Events <= EvLimit && S.Bytes <= ByLimit)
        continue;
      std::string Msg = "site '" + S.Name + "' ";
      if (!Base)
        Msg += "is new (baseline has no such site): ";
      Msg += "events " + std::to_string(BaseEv) + " -> " +
             std::to_string(S.Events) + ", bytes " + std::to_string(BaseBy) +
             " -> " + std::to_string(S.Bytes) + " (limits " +
             std::to_string(EvLimit) + " / " + std::to_string(ByLimit) + ")";
      fail(Finding::Kind::ProfileDrift, std::move(Msg));
    }
  }
};

} // namespace

int GateResult::failures() const {
  int N = 0;
  for (const Finding &F : Findings)
    N += F.Fatal ? 1 : 0;
  return N;
}

const Finding *GateResult::first(Finding::Kind K) const {
  for (const Finding &F : Findings)
    if (F.K == K && F.Fatal)
      return &F;
  return nullptr;
}

GateResult compare(const BenchFile &Base, const BenchFile &Cur,
                   const GateOptions &Opts) {
  GateResult R;
  R.SameScale = Base.Scale == Cur.Scale;
  if (!R.SameScale) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "scales differ (%.3g vs %.3g); checksums not compared",
                  Base.Scale, Cur.Scale);
    R.Findings.push_back(
        Finding{Finding::Kind::Note, /*Fatal=*/false, "", "", Buf});
  }

  for (const Row &B : Base.Rows) {
    const Row *C = Cur.find(B.Name, B.Config);
    if (!C) {
      R.Findings.push_back(Finding{Finding::Kind::MissingRow, true, B.Name,
                                   B.Config, "row missing from current run"});
      continue;
    }
    ++R.ComparedRows;
    RowGate G{Opts, B, *C, R.Findings};
    if (C->LeakedPins > 0)
      G.fail(Finding::Kind::LeakedPins,
             std::to_string(C->LeakedPins) +
                 " leaked pins (joins must release every pin)");
    if (R.SameScale && B.HasChecksum && C->HasChecksum &&
        B.Checksum != C->Checksum)
      G.fail(Finding::Kind::ChecksumMismatch,
             std::to_string(B.Checksum) + " vs " +
                 std::to_string(C->Checksum));
    // The profiler and em counters observe the same chokepoint
    // (Heap::addPinned): a profiled row that lost track of pinned bytes
    // is corrupt telemetry, not noise.
    if (!C->Sites.empty() && C->PinBytesAttributed != C->PinnedBytes)
      G.fail(Finding::Kind::AttributionMismatch,
             "profiler attributed " + std::to_string(C->PinBytesAttributed) +
                 " of " + std::to_string(C->PinnedBytes) + " pinned bytes");
    if (Opts.GateResidency)
      G.gateResidency();
    if (Opts.GateCounters)
      G.gateCounters();
    if (Opts.ProfileDrift)
      G.gateDrift();
    // The time gate: only rows long enough to be stable across machines.
    bool TimeGate =
        Opts.GateTimes ||
        (!Opts.TimeGateConfigSubstr.empty() &&
         B.Config.find(Opts.TimeGateConfigSubstr) != std::string::npos);
    if (!Opts.TimeExemptConfigSubstr.empty() &&
        B.Config.find(Opts.TimeExemptConfigSubstr) != std::string::npos)
      TimeGate = false;
    if (!TimeGate || B.MedianS * 1e3 < Opts.MinTimeMs)
      continue;
    ++R.TimeGatedRows;
    G.gateTime();
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string renderTable(const BenchFile &F) {
  char Head[160];
  std::snprintf(Head, sizeof(Head), "== %s (scale=%.2f, %zu rows) — %s ==\n",
                F.Bench.c_str(), F.Scale, F.Rows.size(), F.Path.c_str());
  Table T({"benchmark", "config", "median", "+-", "noise", "work/span",
           "pinned", "gc", "residency", "top site"});
  for (const Row &R : F.Rows) {
    std::string Par =
        R.SpanS > 0 ? Table::fmtRatio(R.WorkS / R.SpanS) : std::string("-");
    std::string Top = "-";
    if (!R.Sites.empty())
      Top = R.Sites.front().Name + " " + Table::fmtBytes(R.Sites.front().Bytes);
    if (R.LeakedPins > 0)
      Top += " LEAK:" + Table::fmtInt(R.LeakedPins);
    double Sigma = R.sigmaS();
    T.addRow({R.Name, R.Config, Table::fmtSec(R.MedianS),
              Sigma > 0 ? Table::fmtSec(Sigma) : std::string("-"),
              noiseName(R.noiseClass()), Par, Table::fmtBytes(R.PinnedBytes),
              Table::fmtInt(R.GcCount), Table::fmtBytes(R.Residency), Top});
  }
  return std::string(Head) + T.render();
}

std::string renderFindings(const GateResult &R, const GateOptions &Opts) {
  std::string Out;
  for (const Finding &F : R.Findings) {
    if (F.Fatal)
      Out += "FAIL";
    else
      Out += "note";
    Out += " [";
    Out += findingKindName(F.K);
    Out += "]";
    if (!F.Name.empty())
      Out += " " + F.Name + "/" + F.Config;
    Out += ": " + F.Message + "\n";
  }
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "mpl_report: compared %d rows (%d time-gated at >=%.0fms, "
                "k=%.1f floor=%.0f%%%s%s%s): %s\n",
                R.ComparedRows, R.TimeGatedRows, Opts.MinTimeMs, Opts.StddevK,
                Opts.FloorPct, Opts.GateResidency ? ", residency" : "",
                Opts.GateCounters ? ", counters" : "",
                Opts.ProfileDrift ? ", profile-drift" : "",
                R.ok() ? "ok" : "FAIL");
  Out += Buf;
  return Out;
}

//===----------------------------------------------------------------------===//
// mpl-spans/1
//===----------------------------------------------------------------------===//

bool parseSpansJson(const std::string &Text, SpansFile &Out, std::string &Err) {
  if (Text.find_first_not_of(" \t\r\n") == std::string::npos) {
    Err = "empty input (expected an mpl-spans/1 document)";
    return false;
  }
  json::Value Root;
  if (!json::parse(Text, Root, Err)) {
    Err = "parse error: " + Err;
    return false;
  }
  if (!Root.isObject()) {
    Err = "top-level value is not an object";
    return false;
  }
  std::string Schema = strField(&Root, "schema");
  if (Schema != "mpl-spans/1") {
    Err = Schema.empty() ? "missing schema field (not an mpl-spans file)"
                         : "unsupported schema '" + Schema + "'";
    return false;
  }
  const json::Value *Sched = Root.field("sched");
  Out.SchedWorkS = numField(Sched, "work_s");
  Out.SchedSpanS = numField(Sched, "span_s");
  const json::Value *Led = Root.field("ledger");
  if (!Led || !Led->isObject()) {
    Err = "missing ledger object";
    return false;
  }
  Out.LedgerValid = intField(Led, "valid") != 0;
  Out.Tasks = intField(Led, "tasks");
  Out.Stolen = intField(Led, "stolen");
  Out.Dropped = intField(Led, "dropped");
  Out.LedgerWorkS = numField(Led, "work_s");
  Out.CriticalPathS = numField(Led, "critical_path_s");
  Out.AgreementPct = numField(Led, "agreement_pct");
  Out.EmReads = intField(Led, "em_reads");
  Out.Pins = intField(Led, "pins");
  Out.Lines.clear();
  if (const json::Value *Lines = Root.field("lines"); Lines && Lines->isArray())
    for (const json::Value &LV : Lines->Items) {
      SpanLineRow L;
      L.Line = static_cast<int>(numField(&LV, "line"));
      L.Col = static_cast<int>(numField(&LV, "col"));
      L.EmReads = intField(&LV, "em_reads");
      L.Pins = intField(&LV, "pins");
      L.Tasks = intField(&LV, "tasks");
      L.SelfS = numField(&LV, "self_s");
      L.CpSelfS = numField(&LV, "cp_self_s");
      Out.Lines.push_back(L);
    }
  Out.CriticalPath.clear();
  if (const json::Value *Cp = Root.field("critical_path");
      Cp && Cp->isArray())
    for (const json::Value &V : Cp->Items)
      if (V.isNumber())
        Out.CriticalPath.push_back(static_cast<uint64_t>(V.NumV));
  Out.TaskRows.clear();
  const json::Value *Tasks = Root.field("tasks");
  if (!Tasks || !Tasks->isArray()) {
    Err = "missing tasks array";
    return false;
  }
  for (size_t I = 0; I < Tasks->Items.size(); ++I) {
    const json::Value &TV = Tasks->Items[I];
    if (!TV.isObject()) {
      Err = "task " + std::to_string(I) + ": not an object";
      return false;
    }
    if (!TV.field("id") || !TV.field("id")->isNumber()) {
      Err = "task " + std::to_string(I) + ": missing id";
      return false;
    }
    SpanTaskRow T;
    T.Id = static_cast<uint64_t>(numField(&TV, "id"));
    T.Parent = intField(&TV, "parent");
    T.StartS = numField(&TV, "start_s");
    T.StopS = numField(&TV, "stop_s");
    T.SelfS = numField(&TV, "self_s");
    T.Worker = static_cast<int>(numField(&TV, "worker"));
    T.Line = static_cast<int>(numField(&TV, "line"));
    T.Col = static_cast<int>(numField(&TV, "col"));
    T.Depth = static_cast<int>(numField(&TV, "depth"));
    T.Stolen = intField(&TV, "stolen") != 0;
    T.OnCp = intField(&TV, "on_cp") != 0;
    T.EmReads = intField(&TV, "em_reads");
    T.Pins = intField(&TV, "pins");
    Out.TaskRows.push_back(T);
  }
  return true;
}

bool loadSpansFile(const std::string &Path, SpansFile &Out, std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = Path + ": cannot open";
    return false;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  if (!parseSpansJson(Ss.str(), Out, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  Out.Path = Path;
  return true;
}

namespace {

std::string locLabel(int Line, int Col) {
  if (Line == 0 && Col == 0)
    return "task";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "L%d:%d", Line, Col);
  return Buf;
}

} // namespace

std::string renderSpansSummary(const SpansFile &F) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "spans: %lld tasks (%lld stolen, %lld dropped)\n",
                static_cast<long long>(F.Tasks),
                static_cast<long long>(F.Stolen),
                static_cast<long long>(F.Dropped));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  ledger work %s   critical path %s (%.1f%% of work)\n",
                fmtMs(F.LedgerWorkS).c_str(), fmtMs(F.CriticalPathS).c_str(),
                F.LedgerWorkS > 0 ? 100.0 * F.CriticalPathS / F.LedgerWorkS
                                  : 0.0);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  scheduler  W %s   S %s   ledger CP vs S: %+.2f%%\n",
                fmtMs(F.SchedWorkS).c_str(), fmtMs(F.SchedSpanS).c_str(),
                F.AgreementPct);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  em events: %lld reads, %lld pins\n",
                static_cast<long long>(F.EmReads),
                static_cast<long long>(F.Pins));
  Out += Buf;
  if (!F.LedgerValid)
    Out += "  WARNING: DAG incomplete (dropped records or mixed runs); "
           "critical path not trustworthy\n";
  return Out;
}

std::string renderCriticalPath(const SpansFile &F) {
  std::string Out = renderSpansSummary(F);
  Out += "critical path (start order):\n";
  char Buf[192];
  for (const SpanTaskRow &T : F.TaskRows) {
    if (!T.OnCp)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "  #%-6llu %-9s self %10.3fms  w%d%s  depth %d"
                  "  em %lld/%lld\n",
                  static_cast<unsigned long long>(T.Id),
                  T.Parent < 0 ? "root" : locLabel(T.Line, T.Col).c_str(),
                  T.SelfS * 1e3, T.Worker,
                  T.Stolen ? " (stolen)" : "", T.Depth,
                  static_cast<long long>(T.EmReads),
                  static_cast<long long>(T.Pins));
    Out += Buf;
  }
  return Out;
}

std::string renderTopLines(const SpansFile &F, int TopK) {
  std::vector<SpanLineRow> Sorted = F.Lines;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const SpanLineRow &A, const SpanLineRow &B) {
              if (A.EmReads != B.EmReads)
                return A.EmReads > B.EmReads;
              return A.CpSelfS > B.CpSelfS;
            });
  std::string Out =
      "line       em_reads      pins     tasks      self_ms   cp_self_ms\n";
  char Buf[160];
  int Shown = 0;
  for (const SpanLineRow &L : Sorted) {
    if (Shown >= TopK)
      break;
    std::snprintf(Buf, sizeof(Buf),
                  "%-9s %9lld %9lld %9lld %12.3f %12.3f\n",
                  locLabel(L.Line, L.Col).c_str(),
                  static_cast<long long>(L.EmReads),
                  static_cast<long long>(L.Pins),
                  static_cast<long long>(L.Tasks), L.SelfS * 1e3,
                  L.CpSelfS * 1e3);
    Out += Buf;
    ++Shown;
  }
  return Out;
}

std::string foldSpans(const SpansFile &F) {
  // Index tasks by id to walk parent chains; stacks read root -> leaf.
  std::unordered_map<uint64_t, const SpanTaskRow *> ById;
  for (const SpanTaskRow &T : F.TaskRows)
    ById.emplace(T.Id, &T);
  std::string Out;
  std::vector<std::string> Frames;
  for (const SpanTaskRow &T : F.TaskRows) {
    int64_t SelfNs = static_cast<int64_t>(T.SelfS * 1e9 + 0.5);
    if (SelfNs <= 0)
      continue;
    Frames.clear();
    const SpanTaskRow *Cur = &T;
    size_t Guard = 0;
    while (Cur && Guard++ <= ById.size()) {
      Frames.push_back(Cur->Parent < 0 ? "root"
                                       : locLabel(Cur->Line, Cur->Col));
      if (Cur->Parent < 0)
        break;
      auto It = ById.find(static_cast<uint64_t>(Cur->Parent));
      Cur = It == ById.end() ? nullptr : It->second;
    }
    for (size_t I = Frames.size(); I-- > 0;) {
      Out += Frames[I];
      if (I > 0)
        Out += ";";
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " %lld\n",
                  static_cast<long long>(SelfNs));
    Out += Buf;
  }
  return Out;
}

} // namespace gate
} // namespace mpl
