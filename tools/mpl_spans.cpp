//===- tools/mpl_spans.cpp - Causal span ledger analyzer -------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Thin CLI over the mpl-spans/1 readers in tools/GateLib.{h,cpp}. Consumes
// the span-ledger export a run writes when MPL_SPANS names a path
// (src/obs/Span.h, DESIGN.md §14) and does four jobs:
//
//   analyze:        mpl_spans analyze FILE.json
//                   Run summary: task/steal/drop counts, ledger work and
//                   critical path, the ledger-vs-scheduler agreement, and
//                   em event totals.
//
//   critical-path:  mpl_spans critical-path FILE.json [--check-agreement P]
//                   The tasks on the critical path in start order with
//                   their pml fork sites. With --check-agreement P the
//                   command exits nonzero when the ledger's critical path
//                   disagrees with the scheduler's online span S by more
//                   than P percent, or when the DAG is incomplete — the
//                   consistency oracle CI runs after the span smoke.
//
//   top-lines:      mpl_spans top-lines FILE.json [-n K]
//                   Per-pml-source-line attribution table sorted by
//                   entangled reads then critical-path self time: where
//                   entanglement happens and which lines the run's length
//                   actually depends on.
//
//   fold:           mpl_spans fold FILE.json
//                   Folded stacks ("root;L4:3;L7:2 <self_ns>") for
//                   flamegraph.pl-style tools; the stack is the chain of
//                   ancestor fork sites.
//
//===----------------------------------------------------------------------===//

#include "GateLib.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mpl;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mpl_spans analyze FILE.json\n"
      "       mpl_spans critical-path FILE.json [--check-agreement PCT]\n"
      "       mpl_spans top-lines FILE.json [-n K]\n"
      "       mpl_spans fold FILE.json\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Cmd = Argv[1];
  std::string Path;
  double CheckAgreementPct = -1;
  int TopK = 10;
  for (int I = 2; I < Argc; ++I) {
    auto TakeValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "mpl_spans: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--check-agreement") == 0) {
      const char *V = TakeValue("--check-agreement");
      if (!V)
        return 2;
      CheckAgreementPct = std::atof(V);
    } else if (std::strcmp(Argv[I], "-n") == 0) {
      const char *V = TakeValue("-n");
      if (!V)
        return 2;
      TopK = std::atoi(V);
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "mpl_spans: unknown flag '%s'\n", Argv[I]);
      return usage();
    } else if (Path.empty()) {
      Path = Argv[I];
    } else {
      return usage();
    }
  }
  if (Path.empty())
    return usage();

  gate::SpansFile F;
  std::string Err;
  if (!gate::loadSpansFile(Path, F, Err)) {
    std::fprintf(stderr, "mpl_spans: %s\n", Err.c_str());
    return 2;
  }

  if (Cmd == "analyze") {
    std::fputs(gate::renderSpansSummary(F).c_str(), stdout);
    return 0;
  }
  if (Cmd == "critical-path") {
    std::fputs(gate::renderCriticalPath(F).c_str(), stdout);
    if (CheckAgreementPct >= 0) {
      if (!F.LedgerValid) {
        std::fprintf(stderr,
                     "mpl_spans: FAIL: DAG incomplete (%lld dropped records); "
                     "critical path unusable\n",
                     static_cast<long long>(F.Dropped));
        return 1;
      }
      if (std::fabs(F.AgreementPct) > CheckAgreementPct) {
        std::fprintf(stderr,
                     "mpl_spans: FAIL: ledger CP disagrees with scheduler S "
                     "by %+.2f%% (limit %.2f%%)\n",
                     F.AgreementPct, CheckAgreementPct);
        return 1;
      }
      std::printf("agreement check: |%+.2f%%| <= %.2f%%  OK\n",
                  F.AgreementPct, CheckAgreementPct);
    }
    return 0;
  }
  if (Cmd == "top-lines") {
    std::fputs(gate::renderTopLines(F, TopK).c_str(), stdout);
    return 0;
  }
  if (Cmd == "fold") {
    std::fputs(gate::foldSpans(F).c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "mpl_spans: unknown command '%s'\n", Cmd.c_str());
  return usage();
}
