//===- tools/GateLib.h - Statistical bench regression gate -----*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The join/compare/gate logic behind tools/mpl_report, extracted into a
/// library so the CI perf gate is unit-testable like any other subsystem
/// (tests/report_test.cpp). The CLI is a thin flag-parser over these
/// entry points.
///
/// Inputs are the schema-versioned "mpl-bench/1" records every bench
/// binary emits with `-json <path>` (bench/Common.h, BenchJson).
/// parseBenchJson() validates the schema and rejects malformed input with
/// a diagnostic instead of crashing; compare() joins baseline and current
/// rows on (name, config) and returns a structured list of findings.
///
/// Gate statistics (DESIGN.md §12):
///
///  - Time rows are gated **stddev-aware**: a row fails when the current
///    median exceeds the baseline median by more than
///    max(K * sigma, floor% * median), where sigma is the sample stddev
///    recomputed from the baseline's recorded per-rep times (time.rep_s).
///    The floor absorbs machine-level jitter that a 2-rep sigma cannot
///    estimate; K (default 2) scales the measured spread.
///  - Every row carries a **noise class** derived from its relative
///    spread sigma/median: stable (<2%), moderate (<10%), noisy (>=10%).
///    Noisy rows double the floor — when the measured spread is already
///    10%+ at smoke scale, a tight floor only manufactures flakes. The
///    class is reported with every time verdict so a failure message
///    states how trustworthy the baseline spread was.
///  - Counter/space gates (per-table opt-ins): max-residency and
///    pinned-bytes (space table), em counters and profiler-attributed
///    pin bytes (entangle table). All gate upward only — improvements
///    never fail — with a relative tolerance plus an absolute slack so
///    zero/near-zero baselines do not turn scheduler jitter into
///    failures, while a disentangled row that *starts* pinning still
///    fails loudly.
///  - Profile drift (--profile-drift): the top-K profiler sites of
///    baseline and current are joined by site name; a site whose events
///    or bytes grew past tolerance+slack — or that is new against an
///    empty baseline profile — fails even when the row's time is within
///    noise.
///  - Always-fatal regardless of options: rows missing from the current
///    run, leaked pins, same-scale checksum mismatches, and a profiler
///    attribution mismatch (sites recorded but attributed pin bytes !=
///    em pinned bytes; the two observe the same chokepoint).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_TOOLS_GATELIB_H
#define MPL_TOOLS_GATELIB_H

#include <cstdint>
#include <string>
#include <vector>

namespace mpl {
namespace gate {

/// One profiler site carried in a row's "profile" block.
struct SiteRow {
  std::string Name;
  int64_t Events = 0;
  int64_t Bytes = 0;
};

/// How trustworthy a row's measured spread is (relative stddev of the
/// recorded per-rep times).
enum class Noise { Unknown, Stable, Moderate, Noisy };
const char *noiseName(Noise N);

/// One flattened bench row, keyed by (Name, Config).
struct Row {
  std::string Name;
  std::string Config;
  bool Entangled = false;
  double MedianS = 0;
  double StddevS = 0;          ///< As recorded by the writer.
  std::vector<double> RepS;    ///< Per-rep times (time.rep_s).
  double WorkS = 0;
  double SpanS = 0;
  int64_t EntangledReads = 0;
  int64_t PinsDown = 0;
  int64_t PinsCross = 0;
  int64_t PinsHolder = 0;
  int64_t PinnedObjects = 0;
  int64_t PinnedBytes = 0;
  int64_t Unpins = 0;
  int64_t ContCaptured = 0; ///< pml effect-handler captures (em block).
  int64_t ContResumed = 0;
  int64_t JitCompiled = 0;  ///< pml.jit.* ("jit" block; absent = 0).
  int64_t JitEntries = 0;
  int64_t JitCodeBytes = 0;
  int64_t GcCount = 0;
  int64_t Residency = 0;
  int64_t Checksum = 0;
  bool HasChecksum = false;
  int64_t LeakedPins = 0;
  int64_t PinBytesAttributed = 0;
  std::vector<SiteRow> Sites;  ///< Sorted by bytes desc (writer order).

  /// Sample stddev recomputed from RepS (needs >= 2 reps); falls back to
  /// the recorded StddevS when the per-rep times are absent.
  double sigmaS() const;

  /// Noise class from sigmaS()/MedianS; Unknown when no spread exists.
  Noise noiseClass() const;
};

/// One parsed mpl-bench/1 file.
struct BenchFile {
  std::string Path;  ///< "" for in-memory parses.
  std::string Bench;
  double Scale = 0;
  int Reps = 0;
  std::vector<Row> Rows;

  const Row *find(const std::string &Name, const std::string &Config) const;
};

/// Parses + validates one mpl-bench/1 document. On failure returns false
/// with a one-line diagnostic in \p Err (never crashes on malformed or
/// empty input).
bool parseBenchJson(const std::string &Text, BenchFile &Out, std::string &Err);

/// loadBenchFile = read \p Path + parseBenchJson; \p Err includes the path.
bool loadBenchFile(const std::string &Path, BenchFile &Out, std::string &Err);

/// Gate configuration. The defaults match the CI perf-smoke stage; the
/// per-table opt-ins (GateResidency / GateCounters / ProfileDrift) are off
/// so the plain time gate stays the cheapest configuration.
struct GateOptions {
  // Time gate: fail when cur > base + max(StddevK*sigma, floor*base),
  // floor = FloorPct/100 (doubled for Noisy rows). Rows whose baseline
  // median is under MinTimeMs are never time-gated (pure noise across
  // machines at smoke scale); their counters still gate.
  bool GateTimes = true;
  double StddevK = 2.0;
  double FloorPct = 10.0;
  double MinTimeMs = 10.0;

  /// Non-empty: rows whose config contains this substring are time-gated
  /// even when GateTimes is false. Lets a counters-only table arm the
  /// stddev-aware time gate for a subset of rows — CI uses "pml-jit" on
  /// BENCH_T3 so a JIT performance regression fails while the (noisier,
  /// interpreter-dominated) carrier rows stay counter-gated only.
  std::string TimeGateConfigSubstr;

  /// Non-empty: rows whose config contains this substring are *exempt*
  /// from the time gate even when GateTimes is true (checksums and
  /// counters still apply). Dual of TimeGateConfigSubstr — CI uses
  /// "vm-" on the spans-overhead T1 gate because arming the span ledger
  /// pins the pml VM to the interpreter, so the vm-jit row measures the
  /// wrong engine there by construction.
  std::string TimeExemptConfigSubstr;

  // Space gate (BENCH_T2): max_residency_bytes and em.pinned_bytes.
  bool GateResidency = false;
  double ResidencyTolerancePct = 50.0;
  int64_t ResidencyAbsSlackBytes = 1 << 20;

  // Counter gate (BENCH_T4): em counters + profiler-attributed pin bytes.
  bool GateCounters = false;
  double CounterTolerancePct = 100.0;
  int64_t CounterAbsSlackEvents = 128;
  int64_t CounterAbsSlackBytes = 64 << 10;

  // Profile-site drift gate (BENCH_T4): join top-K sites by name.
  bool ProfileDrift = false;
  int DriftTopK = 5;
  double DriftTolerancePct = 100.0;
  int64_t DriftAbsSlackEvents = 64;
  int64_t DriftAbsSlackBytes = 16 << 10;
};

/// One gate verdict. Fatal findings fail the gate; non-fatal ones are
/// informational (e.g. the cross-scale checksum note).
struct Finding {
  enum class Kind {
    MissingRow,
    LeakedPins,
    ChecksumMismatch,
    AttributionMismatch,
    TimeRegression,
    ResidencyRegression,
    CounterRegression,
    ProfileDrift,
    Note,
  };
  Kind K = Kind::Note;
  bool Fatal = true;
  std::string Name;    ///< Row name ("" for file-level notes).
  std::string Config;
  std::string Message; ///< Human-readable detail.
};
const char *findingKindName(Finding::Kind K);

struct GateResult {
  std::vector<Finding> Findings;
  int ComparedRows = 0;
  int TimeGatedRows = 0;
  bool SameScale = true;

  int failures() const;
  bool ok() const { return failures() == 0; }
  /// First fatal finding of kind \p K, or null.
  const Finding *first(Finding::Kind K) const;
};

/// Joins \p Cur against \p Base on (name, config) and applies every gate
/// enabled in \p Opts. Pure: no I/O, deterministic, safe to call from
/// tests with synthetic files.
GateResult compare(const BenchFile &Base, const BenchFile &Cur,
                   const GateOptions &Opts);

/// The paper-style render of one file (mpl_report FILE.json), returned as
/// a string so tests can assert on it.
std::string renderTable(const BenchFile &F);

/// Renders \p R's findings and the one-line summary exactly as the CLI
/// prints them (findings to the returned string, one per line).
std::string renderFindings(const GateResult &R, const GateOptions &Opts);

//===----------------------------------------------------------------------===//
// mpl-spans/1 (causal span ledger exports; obs/Span.h, tools/mpl_spans)
//===----------------------------------------------------------------------===//

/// One per-source-line aggregate from a spans file.
struct SpanLineRow {
  int Line = 0;
  int Col = 0;
  int64_t EmReads = 0;
  int64_t Pins = 0;
  int64_t Tasks = 0;
  double SelfS = 0;
  double CpSelfS = 0;
};

/// One task from a spans file ("tasks" array).
struct SpanTaskRow {
  uint64_t Id = 0;
  int64_t Parent = -1; ///< -1 = root.
  double StartS = 0;
  double StopS = 0;
  double SelfS = 0;
  int Worker = 0;
  int Line = 0;
  int Col = 0;
  int Depth = 0;
  bool Stolen = false;
  bool OnCp = false;
  int64_t EmReads = 0;
  int64_t Pins = 0;
};

/// One parsed mpl-spans/1 document.
struct SpansFile {
  std::string Path; ///< "" for in-memory parses.
  double SchedWorkS = 0;
  double SchedSpanS = 0;
  bool LedgerValid = false;
  int64_t Tasks = 0;
  int64_t Stolen = 0;
  int64_t Dropped = 0;
  double LedgerWorkS = 0;
  double CriticalPathS = 0;
  double AgreementPct = 0;
  int64_t EmReads = 0;
  int64_t Pins = 0;
  std::vector<SpanLineRow> Lines;
  std::vector<SpanTaskRow> TaskRows;
  std::vector<uint64_t> CriticalPath;
};

/// Parses + validates one mpl-spans/1 document; same contract as
/// parseBenchJson (false + diagnostic on malformed input, never crashes).
bool parseSpansJson(const std::string &Text, SpansFile &Out, std::string &Err);

/// loadSpansFile = read \p Path + parseSpansJson; \p Err includes the path.
bool loadSpansFile(const std::string &Path, SpansFile &Out, std::string &Err);

/// Human-readable summary table of one spans file (mpl_spans analyze).
std::string renderSpansSummary(const SpansFile &F);

/// The critical path, one task per line, root first (mpl_spans
/// critical-path).
std::string renderCriticalPath(const SpansFile &F);

/// Per-line attribution table sorted by em reads then CP self time, top
/// \p TopK rows (mpl_spans top-lines).
std::string renderTopLines(const SpansFile &F, int TopK);

/// Folded stacks for flamegraph tools: one "root;L3:5;L7:2 <self_ns>" line
/// per task with nonzero self time, stack = chain of ancestor fork sites.
std::string foldSpans(const SpansFile &F);

} // namespace gate
} // namespace mpl

#endif // MPL_TOOLS_GATELIB_H
