//===- tools/mpl_server.cpp - Request-server daemon -----------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mpl request server as a process: binds, prints the bound port (so
/// harnesses using -port 0 can scrape it), serves until SIGTERM/SIGINT or
/// -run-for-ms elapses, drains, then prints an `mpl-server/1` JSON summary
/// and exits 0 iff the drain was clean and no pins leaked.
///
/// Chaos arming (flags, with MPL_CHAOS_* env fallbacks) makes the process
/// the target of the robustness smoke: seeded wire faults plus every-N
/// allocation faults, replayable from the printed seed.
///
///   mpl_server -port 0 -workers 4 -queue-cap 64 \
///     -chaos-seed 7 -wire-permille 30 -fault-every-n 5
///
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "net/Server.h"
#include "obs/Profile.h"
#include "support/Cli.h"
#include "support/Timer.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace mpl;

namespace {

net::Server *GlobalServer = nullptr;

void onSignal(int) {
  if (GlobalServer)
    GlobalServer->requestDrain(); // one atomic store: async-signal-safe
}

int64_t envOrInt(const char *Name, int64_t Flag) {
  if (Flag != 0)
    return Flag;
  if (const char *V = std::getenv(Name))
    return std::atoll(V);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli Cli(Argc, Argv);

  net::ServerConfig SC;
  SC.Port = static_cast<uint16_t>(Cli.getInt("port", 0));
  SC.NumWorkers = static_cast<int>(Cli.getInt("workers", 2));
  SC.QueueCap = static_cast<int>(Cli.getInt("queue-cap", 64));
  SC.BatchMax = static_cast<int>(Cli.getInt("batch-max", 8));
  SC.MaxConns = static_cast<int>(Cli.getInt("max-conns", 128));
  SC.DrainTimeoutMs = static_cast<int>(Cli.getInt("drain-timeout-ms", 5000));
  int64_t RunForMs = Cli.getInt("run-for-ms", 0);

  // Chaos: flags first, MPL_CHAOS_* env as fallback so CI can arm a whole
  // pipeline stage without touching each command line.
  uint64_t Seed =
      static_cast<uint64_t>(envOrInt("MPL_CHAOS_SEED", Cli.getInt("chaos-seed", 0)));
  int64_t WirePermille =
      envOrInt("MPL_CHAOS_WIRE_PERMILLE", Cli.getInt("wire-permille", 0));
  int64_t FaultEveryN =
      envOrInt("MPL_CHAOS_FAULT_EVERY_N", Cli.getInt("fault-every-n", 0));
  if (Seed != 0 || WirePermille > 0 || FaultEveryN > 0) {
    chaos::Config CC;
    CC.Seed = Seed != 0 ? Seed : 1;
    if (WirePermille > 0)
      CC.WirePermille = static_cast<uint32_t>(WirePermille);
    if (FaultEveryN > 0) {
      CC.InjectFault = chaos::Fault::FailChunkAlloc;
      CC.FaultEveryN = static_cast<uint32_t>(FaultEveryN);
    }
    chaos::enable(CC);
    std::fprintf(stderr,
                 "mpl_server: chaos armed seed=%llu wire-permille=%lld "
                 "fault-every-n=%lld\n",
                 static_cast<unsigned long long>(CC.Seed),
                 static_cast<long long>(WirePermille),
                 static_cast<long long>(FaultEveryN));
  }

  // Pin accounting on from the start: the exit code asserts leaked==0.
  obs::Profiler::get().enable();

  net::Server Srv(SC);
  if (!Srv.start()) {
    std::fprintf(stderr, "mpl_server: bind failed (port %u)\n", SC.Port);
    return 2;
  }
  GlobalServer = &Srv;
  struct sigaction SA = {};
  SA.sa_handler = onSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  std::printf("mpl_server: listening port=%u\n", Srv.port());
  std::fflush(stdout);

  int64_t StartNs = nowNs();
  while (!Srv.draining()) {
    if (RunForMs > 0 && nowNs() - StartNs > RunForMs * 1000000)
      Srv.requestDrain();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Srv.waitUntilDrained();

  net::ServerTotals T = Srv.totals();
  int64_t LeakedPins = obs::Profiler::get().livePinCount();
  chaos::Totals CT = chaos::totals();
  std::printf("{\"mpl-server/1\":{\"accepted\":%lld,\"requests\":%lld,"
              "\"ok\":%lld,\"shed\":%lld,\"deadline_expired\":%lld,"
              "\"error\":%lld,\"draining\":%lld,\"wire_faults\":%lld,"
              "\"protocol_errors\":%lld,\"chaos_faults\":%lld,"
              "\"leaked_pins\":%lld}}\n",
              static_cast<long long>(T.Accepted),
              static_cast<long long>(T.Requests),
              static_cast<long long>(T.Ok), static_cast<long long>(T.Shed),
              static_cast<long long>(T.DeadlineExpired),
              static_cast<long long>(T.Errors),
              static_cast<long long>(T.Draining),
              static_cast<long long>(T.WireFaults),
              static_cast<long long>(T.ProtocolErrors),
              static_cast<long long>(CT.FaultsInjected),
              static_cast<long long>(LeakedPins));
  std::fflush(stdout);
  if (chaos::active())
    chaos::disable();
  return LeakedPins == 0 ? 0 : 1;
}
