#!/usr/bin/env bash
#===- tools/ci.sh - Build + test all configs the way CI does --------------===#
#
# Part of mpl-em (PLDI 2023 reproduction).
#
# Builds the Release, ThreadSanitizer and AddressSanitizer configurations
# (CMakePresets.json) and runs the tier-1 tests plus the schedule-fuzz
# suite with the fixed seed corpus in each. Any fuzz failure prints a
# MPL_CHAOS_SEED line; see DESIGN.md §8 for how to replay it locally.
# The sanitizer configs additionally rerun the stress and fuzz suites
# under a tight MPL_MEM_LIMIT_MB with chunk-allocation faults injected
# (DESIGN.md §10): the memory-pressure governor must degrade gracefully,
# never abort.
#
# Usage:
#   tools/ci.sh                # all three configs
#   tools/ci.sh release        # one config: release | tsan | asan
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

# Seed-corpus size per config. TSan is the config the fuzz suite exists
# for, so it gets the big corpus; the others keep CI time reasonable.
RELEASE_SEEDS=${RELEASE_SEEDS:-25}
TSAN_SEEDS=${TSAN_SEEDS:-50}
ASAN_SEEDS=${ASAN_SEEDS:-25}

# Perf-smoke knobs. The stage reruns three paper tables at smoke scale
# and gates each against its committed baseline with tools/mpl_report
# (DESIGN.md §12): checksum mismatches and leaked pins always fail.
#   T1 (time):     median beyond baseline + max(k*sigma, floor%), sigma
#                  recomputed from the baseline's per-rep times;
#   T2 (space):    max residency / pinned bytes past tolerance;
#   T3 (pml):      VM carrier checksums + effect-handler continuation
#                  capture/resume + pml.jit.* counters past tolerance;
#                  the interp-vs-jit ablation's jit rows additionally get
#                  the T1 time rule (--time-gate-config pml-jit) — the
#                  JIT's speedup over the interpreter is a gated artifact;
#   T4 (entangle): em counters past tolerance + top-site profile drift.
# T2/T4 run single-rep (no spread), so their time rule is off
# (--no-time-gate); wall time is T1's and the jit rows' job.
PERF_SCALE=${PERF_SCALE:-0.05}
PERF_REPS=${PERF_REPS:-2}
PERF_STDDEV_K=${PERF_STDDEV_K:-2}
PERF_TOLERANCE_PCT=${PERF_TOLERANCE_PCT:-25}
# The T3 jit rows get a wider floor: per-process timing on the VM ablation
# swings 20-30% in noisy containers (address-layout-sensitive), while the
# regression the rule exists to catch — losing the JIT's 1.5-1.7x speedup
# on sum-3m/primes-200k — shows as +60-70%. Total JIT loss is caught
# deterministically inside bench_table_pml (it asserts every jit cell
# tiered at least one function).
PERF_JIT_TOLERANCE_PCT=${PERF_JIT_TOLERANCE_PCT:-50}

# Memory-pressure stage knobs (see DESIGN.md §10). The stress/fuzz live
# peak is ~8 MiB, so a 16 MiB hard limit leaves emergency collection real
# headroom while SoftFrac 0.5 puts the soft watermark right at the peak —
# the pressure ladder and budget scaling actually engage. Every 5th chunk
# acquisition is made to fail (chaos::Fault::FailChunkAlloc), forcing the
# trim -> emergency-GC -> backoff recovery ladder on hot paths.
PRESSURE_LIMIT_MB=${PRESSURE_LIMIT_MB:-16}
PRESSURE_SOFT_FRAC=${PRESSURE_SOFT_FRAC:-0.5}
PRESSURE_CACHE_MB=${PRESSURE_CACHE_MB:-4}
PRESSURE_FAULT_EVERY_N=${PRESSURE_FAULT_EVERY_N:-5}
PRESSURE_SEEDS=${PRESSURE_SEEDS:-10}

# Server-smoke knobs (DESIGN.md §15). The request server runs under the
# same memory limit and alloc-fault cadence as the pressure stage, plus
# seeded wire chaos (drops, truncations, slow reads); mpl_client drives a
# mixed workload through the retry/backoff path, then SIGTERM drains the
# server. Pass criteria: server exits 0 (clean drain, leaked pins == 0),
# zero protocol errors, every shed structured, a mid-load stats frame
# answered in both JSON and checker-clean Prometheus form, the trace's
# net.request_flow enqueue/execute pairs balanced, and the request
# counters balanced (requests == ok+shed+deadline+error+draining).
SERVER_SMOKE_SEED=${SERVER_SMOKE_SEED:-7}
SERVER_SMOKE_REQS=${SERVER_SMOKE_REQS:-120}
SERVER_SMOKE_WIRE_PERMILLE=${SERVER_SMOKE_WIRE_PERMILLE:-30}

# One full server-smoke pass with the criteria above. $1 tags the artifact
# files ("" or "_jit"), $2 is the MPL_JIT value the server runs under (the
# jit variant tiers hot request bodies at threshold 1). Reads $preset and
# $bdir from the calling run_config via bash dynamic scoping.
server_smoke() {
  local tag=$1 jit=$2
  local srv_log="$bdir/server_smoke$tag.log"
  # The 16MB limit makes gc/pressure events dominate the trace; the default
  # 64K-slot per-thread ring wraps and loses the earliest request_flow 'f'
  # halves, so give the smoke a 256K ring (8MB/thread, 32B/event).
  ASAN_OPTIONS="detect_leaks=0" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  MPL_MEM_LIMIT_MB=$PRESSURE_LIMIT_MB \
  MPL_MEM_SOFT_FRAC=$PRESSURE_SOFT_FRAC \
  MPL_JIT="$jit" MPL_JIT_THRESHOLD=1 \
  MPL_TRACE="$bdir/server_trace$tag.json" \
  MPL_TRACE_CAPACITY=262144 \
    "$bdir/tools/mpl_server" -port 0 -workers 2 -queue-cap 16 \
    -chaos-seed "$SERVER_SMOKE_SEED" \
    -wire-permille "$SERVER_SMOKE_WIRE_PERMILLE" \
    -fault-every-n "$PRESSURE_FAULT_EVERY_N" > "$srv_log" 2>&1 &
  local srv_pid=$!
  local i
  for i in $(seq 1 100); do
    grep -q 'port=' "$srv_log" 2>/dev/null && break
    sleep 0.1
  done
  local srv_port
  srv_port=$(grep -o 'port=[0-9]*' "$srv_log" | head -1 | cut -d= -f2)
  ASAN_OPTIONS="detect_leaks=0" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    "$bdir/tools/mpl_client" -port "$srv_port" -n "$SERVER_SMOKE_REQS" \
    -conns 4 -deadline-ms 5000 -seed "$SERVER_SMOKE_SEED" \
    > "$bdir/server_client$tag.json" &
  local client_pid=$!
  # Mid-load introspection (DESIGN.md §16): a stats frame must answer
  # while the client hammers the server, and its Prometheus form must
  # pass the format checker (no duplicate series, monotone le buckets,
  # non-negative counters). Wire chaos can hit the scrape connection
  # too, so allow a few retries — that's what a real scraper does.
  sleep 0.3
  local stats_ok=0
  for i in $(seq 1 5); do
    if ASAN_OPTIONS="detect_leaks=0" \
       TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
         "$bdir/tools/mpl_top" -port "$srv_port" -once -format prom -check \
         > "$bdir/server_stats$tag.prom" &&
       ASAN_OPTIONS="detect_leaks=0" \
       TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
         "$bdir/tools/mpl_top" -port "$srv_port" -once \
         > "$bdir/server_stats$tag.json"; then
      stats_ok=1
      break
    fi
    sleep 0.2
  done
  [[ "$stats_ok" == 1 ]]
  grep -q '"mpl-stats/1"' "$bdir/server_stats$tag.json"
  grep -q '"stage"' "$bdir/server_stats$tag.json"
  wait "$client_pid"
  cat "$bdir/server_client$tag.json"
  kill -TERM "$srv_pid"
  wait "$srv_pid" # exit 0 iff clean drain and leaked pins == 0
  cat "$srv_log"
  grep -q '"leaked_pins":0' "$srv_log"
  grep -q '"protocol_errors":0' "$srv_log"
  # The client must have gotten real work through the chaos.
  local ok_count
  ok_count=$(sed -n 's/.*"ok":\([0-9]*\).*/\1/p' "$bdir/server_client$tag.json")
  [[ "$ok_count" -gt 0 ]]
  # Interleaved net.* events must validate, with every request_flow id
  # carrying both its enqueue ('s') and execute ('f') half, and the
  # request-counter balance (requests == ok+shed+deadline+error+draining,
  # stats frames excluded) must hold in the trace's counters block.
  "$bdir/tools/mpl_trace_check" "$bdir/server_trace$tag.json" \
    --require-event net.accept --require-event net.request_flow \
    --check-flow-pairs --check-net-balance
}

run_config() {
  local preset=$1 seeds=$2
  echo "==== [$preset] configure + build ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"

  echo "==== [$preset] tier-1 tests ===="
  ctest --preset "$preset" -j "$(nproc)" -E '^fuzz_sched_test$'

  echo "==== [$preset] schedule-fuzz, $seeds seeds ===="
  MPL_FUZZ_SEEDS=$seeds ctest --preset "$preset" -R '^fuzz_sched_test$'

  if [[ "$preset" == "tsan" ]]; then
    echo "==== [$preset] jit auto-disable assert ===="
    # Generated code is uninstrumented, so MPL_JIT=1 must be refused with
    # the one-line notice and the program must still run, interpreted.
    # jit_runtime_test asserts the same from C++ (tier-1 above); this
    # checks a production entry point's env-knob path end to end.
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    MPL_JIT=1 MPL_JIT_THRESHOLD=1 \
      "build-$preset/examples/pml_repl" -e \
      $'fun f n = if n < 1 then 0 else f (n - 1)\nf 100' \
      > /dev/null 2> "build-$preset/jit_notice.log"
    grep -q 'pml jit disabled under ThreadSanitizer' \
      "build-$preset/jit_notice.log"
  else
    echo "==== [$preset] jit differential plane (MPL_JIT=1, threshold 1) ===="
    # The differential suite already ran in tier-1 through its programmatic
    # gates; this rerun arms the env knobs instead, so the getenv path that
    # production entry points use is what feeds the interp-vs-JIT oracle.
    # The suite sweeps all three barrier modes (off/detect/manage) itself.
    ASAN_OPTIONS="detect_leaks=0" \
    MPL_JIT=1 MPL_JIT_THRESHOLD=1 \
      "build-$preset/tests/jit_diff_test"
  fi

  if [[ "$preset" == "tsan" || "$preset" == "asan" ]]; then
    echo "==== [$preset] memory-pressure stress (limit ${PRESSURE_LIMIT_MB}MB, fault 1/${PRESSURE_FAULT_EVERY_N}) ===="
    # Whole stress + fuzz suites under a tight memory budget with chunk
    # allocations failing on a fixed cadence: every test must pass
    # unchanged, proving the governor degrades and recovers instead of
    # aborting, with the sanitizer watching the recovery paths.
    # Same sanitizer env the ctest presets use (the per-thread TLS
    # allocations are intentional leaks; see src/chaos/ChaosSchedule.cpp).
    ASAN_OPTIONS="detect_leaks=0" \
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    MPL_MEM_LIMIT_MB=$PRESSURE_LIMIT_MB \
    MPL_MEM_SOFT_FRAC=$PRESSURE_SOFT_FRAC \
    MPL_CHUNK_CACHE_MB=$PRESSURE_CACHE_MB \
    MPL_CHAOS_FAULT_EVERY_N=$PRESSURE_FAULT_EVERY_N \
      "build-$preset/tests/stress_test"
    ASAN_OPTIONS="detect_leaks=0" \
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    MPL_MEM_LIMIT_MB=$PRESSURE_LIMIT_MB \
    MPL_MEM_SOFT_FRAC=$PRESSURE_SOFT_FRAC \
    MPL_CHUNK_CACHE_MB=$PRESSURE_CACHE_MB \
    MPL_CHAOS_FAULT_EVERY_N=$PRESSURE_FAULT_EVERY_N \
    MPL_FUZZ_SEEDS=$PRESSURE_SEEDS \
      "build-$preset/tests/fuzz_sched_test"
  fi

  echo "==== [$preset] trace smoke ===="
  # Run a real workload with the tracer armed and validate the exported
  # Chrome trace (Perfetto-loadable, B/E balanced, expected event kinds).
  local bdir="build-$preset"
  ASAN_OPTIONS="detect_leaks=0" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  MPL_TRACE="$bdir/trace_smoke.json" MPL_METRICS="$bdir/metrics_smoke.json" \
    "$bdir/examples/quickstart" > /dev/null
  "$bdir/tools/mpl_trace_check" "$bdir/trace_smoke.json" \
    --require-event fork --require-event heap_join \
    --require-event pin --require-event gc

  echo "==== [$preset] server smoke (wire chaos + 1/${PRESSURE_FAULT_EVERY_N} alloc faults + ${PRESSURE_LIMIT_MB}MB limit) ===="
  server_smoke "" 0
  if [[ "$preset" != "tsan" ]]; then
    echo "==== [$preset] server smoke, MPL_JIT=1 variant ===="
    # Same chaos, same pass criteria, with the pml evaluator tiering hot
    # request bodies to native code at threshold 1: the JIT must hold the
    # leaked_pins==0 / protocol-clean invariants under wire + alloc chaos
    # and admission-control load. tsan skips the variant — the knob
    # auto-disables there (asserted by the jit stage above), so the run
    # would be byte-identical to the plain one.
    server_smoke "_jit" 1
  fi

  echo "==== [$preset] span smoke ===="
  # Run a pml workload with the causal span ledger armed and validate the
  # exported DAG: the ledger's critical path must agree with the
  # scheduler's online span S to within 5% (the consistency oracle,
  # DESIGN.md §14), and the entangled read must attribute to a source line.
  ASAN_OPTIONS="detect_leaks=0" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  MPL_SPANS="$bdir/spans_smoke.json" \
    "$bdir/examples/pml_repl" -workers 2 -e \
    'let val r = ref (ref 0) in par ((r := ref 7; 0), !(!r)) end' > /dev/null
  "$bdir/tools/mpl_spans" critical-path "$bdir/spans_smoke.json" \
    --check-agreement 5
  "$bdir/tools/mpl_spans" top-lines "$bdir/spans_smoke.json"

  if [[ "$preset" == "release" ]]; then
    echo "==== [$preset] perf smoke (scale $PERF_SCALE, k=$PERF_STDDEV_K floor ${PERF_TOLERANCE_PCT}%) ===="
    # Sanitizer presets skew times beyond any tolerance, so only release
    # runs the gates. The fresh JSONs and rendered reports are left in
    # the build dir for CI to upload as artifacts.
    "$bdir/bench/bench_table_time" -scale "$PERF_SCALE" -reps "$PERF_REPS" \
      -json "$bdir/perf_smoke.json" > "$bdir/perf_smoke.txt"
    "$bdir/tools/mpl_report" "$bdir/perf_smoke.json"
    # The pml VM rows are informational context in T1 (their gated twin
    # is BENCH_T3's ablation, at the wider jit floor) — time-exempt here
    # so short VM runs can't flake the C++ kernel gate.
    "$bdir/tools/mpl_report" --baseline BENCH_T1.json \
      --current "$bdir/perf_smoke.json" \
      --stddev-k "$PERF_STDDEV_K" --floor-pct "$PERF_TOLERANCE_PCT" \
      --time-exempt-config vm-

    echo "==== [$preset] spans-on overhead gate ===="
    # Same T1 table with the span ledger armed for every run (MPL_SPANS=1):
    # the per-task ledger bookkeeping must stay inside the same stddev
    # envelope as an unchanged build, bounding the ledger's overhead.
    # The pml VM rows are time-exempt here: arming spans pins the VM to
    # the interpreter, so the vm-jit row measures the wrong engine by
    # construction (checksums still apply).
    MPL_SPANS=1 "$bdir/bench/bench_table_time" -scale "$PERF_SCALE" \
      -reps "$PERF_REPS" -json "$bdir/spans_overhead.json" \
      > "$bdir/spans_overhead.txt"
    "$bdir/tools/mpl_report" --baseline BENCH_T1.json \
      --current "$bdir/spans_overhead.json" \
      --stddev-k "$PERF_STDDEV_K" --floor-pct "$PERF_TOLERANCE_PCT" \
      --time-exempt-config vm-

    echo "==== [$preset] space gate (BENCH_T2) ===="
    "$bdir/bench/bench_table_space" -scale "$PERF_SCALE" -reps 1 \
      -json "$bdir/space_smoke.json" > "$bdir/space_smoke.txt"
    "$bdir/tools/mpl_report" --baseline BENCH_T2.json \
      --current "$bdir/space_smoke.json" \
      --no-time-gate --gate-residency

    echo "==== [$preset] pml carrier gate (BENCH_T3, jit rows time-gated) ===="
    # The effects row's continuation capture/resume counts are a pure
    # function of the program, so the counter gate pins them exactly
    # (upward only); checksums catch VM miscompiles at any scale. The
    # interp-vs-jit ablation rows carry per-rep times, and the jit rows
    # are held to the stddev-aware time rule (--time-gate-config pml-jit)
    # at the wider PERF_JIT_TOLERANCE_PCT floor: losing the JIT's speedup
    # is a regression even when checksums agree.
    "$bdir/bench/bench_table_pml" -reps "$PERF_REPS" \
      -json "$bdir/pml_smoke.json" > "$bdir/pml_smoke.txt"
    "$bdir/tools/mpl_report" --baseline BENCH_T3.json \
      --current "$bdir/pml_smoke.json" \
      --no-time-gate --gate-counters --time-gate-config pml-jit \
      --stddev-k "$PERF_STDDEV_K" --floor-pct "$PERF_JIT_TOLERANCE_PCT"

    echo "==== [$preset] entangle gate (BENCH_T4) ===="
    "$bdir/bench/bench_table_entangle" -scale "$PERF_SCALE" \
      -json "$bdir/entangle_smoke.json" > "$bdir/entangle_smoke.txt"
    "$bdir/tools/mpl_report" --baseline BENCH_T4.json \
      --current "$bdir/entangle_smoke.json" \
      --no-time-gate --gate-counters --profile-drift
  fi
}

case "${1:-all}" in
release) run_config release "$RELEASE_SEEDS" ;;
tsan) run_config tsan "$TSAN_SEEDS" ;;
asan) run_config asan "$ASAN_SEEDS" ;;
all)
  run_config release "$RELEASE_SEEDS"
  run_config tsan "$TSAN_SEEDS"
  run_config asan "$ASAN_SEEDS"
  ;;
*)
  echo "usage: $0 [release|tsan|asan|all]" >&2
  exit 2
  ;;
esac

echo "==== all requested configs passed ===="
