#!/usr/bin/env bash
#===- tools/ci.sh - Build + test all configs the way CI does --------------===#
#
# Part of mpl-em (PLDI 2023 reproduction).
#
# Builds the Release, ThreadSanitizer and AddressSanitizer configurations
# (CMakePresets.json) and runs the tier-1 tests plus the schedule-fuzz
# suite with the fixed seed corpus in each. Any fuzz failure prints a
# MPL_CHAOS_SEED line; see DESIGN.md §8 for how to replay it locally.
#
# Usage:
#   tools/ci.sh                # all three configs
#   tools/ci.sh release        # one config: release | tsan | asan
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

# Seed-corpus size per config. TSan is the config the fuzz suite exists
# for, so it gets the big corpus; the others keep CI time reasonable.
RELEASE_SEEDS=${RELEASE_SEEDS:-25}
TSAN_SEEDS=${TSAN_SEEDS:-50}
ASAN_SEEDS=${ASAN_SEEDS:-25}

run_config() {
  local preset=$1 seeds=$2
  echo "==== [$preset] configure + build ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"

  echo "==== [$preset] tier-1 tests ===="
  ctest --preset "$preset" -j "$(nproc)" -E '^fuzz_sched_test$'

  echo "==== [$preset] schedule-fuzz, $seeds seeds ===="
  MPL_FUZZ_SEEDS=$seeds ctest --preset "$preset" -R '^fuzz_sched_test$'

  echo "==== [$preset] trace smoke ===="
  # Run a real workload with the tracer armed and validate the exported
  # Chrome trace (Perfetto-loadable, B/E balanced, expected event kinds).
  local bdir="build-$preset"
  MPL_TRACE="$bdir/trace_smoke.json" MPL_METRICS="$bdir/metrics_smoke.json" \
    "$bdir/examples/quickstart" > /dev/null
  "$bdir/tools/mpl_trace_check" "$bdir/trace_smoke.json" \
    --require-event fork --require-event heap_join \
    --require-event pin --require-event gc
}

case "${1:-all}" in
release) run_config release "$RELEASE_SEEDS" ;;
tsan) run_config tsan "$TSAN_SEEDS" ;;
asan) run_config asan "$ASAN_SEEDS" ;;
all)
  run_config release "$RELEASE_SEEDS"
  run_config tsan "$TSAN_SEEDS"
  run_config asan "$ASAN_SEEDS"
  ;;
*)
  echo "usage: $0 [release|tsan|asan|all]" >&2
  exit 2
  ;;
esac

echo "==== all requested configs passed ===="
