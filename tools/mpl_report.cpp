//===- tools/mpl_report.cpp - Bench-JSON renderer and regression gate ------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Thin CLI over tools/GateLib.{h,cpp} — the join/compare/gate logic lives
// there so tests/report_test.cpp can drive it directly. Consumes the
// schema-versioned "mpl-bench/1" records every bench binary emits with
// `-json <path>` (bench/Common.h, BenchJson) and does two jobs:
//
//   render:   mpl_report FILE.json
//             Paper-style table of the measured rows: times with spread
//             and noise class, work/span, entanglement counters,
//             residency, and the top profiler site.
//
//   compare:  mpl_report --baseline A.json --current B.json
//                        [--stddev-k K] [--floor-pct N] [--min-time-ms M]
//                        [--no-time-gate] [--gate-residency]
//                        [--gate-counters] [--profile-drift]
//                        [--drift-top-k K]
//             The CI perf-smoke gate (DESIGN.md §12). Joins rows on
//             (name, config) and exits nonzero when the current run
//             regressed:
//               * median time beyond baseline + max(K*sigma, floor%) —
//                 sigma recomputed from the baseline's per-rep times,
//                 floor doubled for noisy rows — and only for rows whose
//                 baseline median is at least M ms (default 10): shorter
//                 rows are pure noise across machines at smoke scale;
//               * with --gate-residency: max residency / pinned bytes
//                 grew past tolerance (the space table's claim);
//               * with --gate-counters: em counters or attributed pin
//                 bytes grew past tolerance (the entangle table's claim);
//               * with --profile-drift: a top-K profiler site's events or
//                 bytes grew past tolerance, or a site is new against an
//                 empty baseline profile — catching a disentangled
//                 benchmark that starts pinning even when its time is
//                 within noise;
//               * always: leaked pins, missing rows, same-scale checksum
//                 mismatches, profiler attribution mismatches.
//             Improvements never fail the gate. --no-time-gate turns the
//             time rule off for tables whose claim is space or counters
//             (BENCH_T2/T4 run single-rep, so they carry no spread and
//             their wall time is gated by the T1 stage instead).
//
// `--tolerance-pct N` is accepted as an alias of `--floor-pct N` for
// compatibility with pre-v2 invocations.
//
//===----------------------------------------------------------------------===//

#include "GateLib.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace mpl;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mpl_report FILE.json\n"
      "       mpl_report --baseline A.json --current B.json\n"
      "                  [--stddev-k K] [--floor-pct N] [--min-time-ms M]\n"
      "                  [--no-time-gate] [--gate-residency] [--gate-counters]\n"
      "                  [--profile-drift] [--drift-top-k K]\n"
      "                  [--time-gate-config SUBSTR] [--time-exempt-config SUBSTR]\n"
      "                  [--tolerance-pct N]   (alias of --floor-pct)\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BaselinePath, CurrentPath, RenderPath;
  gate::GateOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    auto TakeValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "mpl_report: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    auto TakeDouble = [&](const char *Flag, double &Out) {
      const char *V = TakeValue(Flag);
      if (V)
        Out = std::atof(V);
      return V != nullptr;
    };
    if (std::strcmp(Argv[I], "--baseline") == 0) {
      const char *V = TakeValue("--baseline");
      if (!V)
        return 2;
      BaselinePath = V;
    } else if (std::strcmp(Argv[I], "--current") == 0) {
      const char *V = TakeValue("--current");
      if (!V)
        return 2;
      CurrentPath = V;
    } else if (std::strcmp(Argv[I], "--stddev-k") == 0) {
      if (!TakeDouble("--stddev-k", Opts.StddevK))
        return 2;
    } else if (std::strcmp(Argv[I], "--floor-pct") == 0 ||
               std::strcmp(Argv[I], "--tolerance-pct") == 0) {
      if (!TakeDouble(Argv[I], Opts.FloorPct))
        return 2;
    } else if (std::strcmp(Argv[I], "--min-time-ms") == 0) {
      if (!TakeDouble("--min-time-ms", Opts.MinTimeMs))
        return 2;
    } else if (std::strcmp(Argv[I], "--no-time-gate") == 0) {
      Opts.GateTimes = false;
    } else if (std::strcmp(Argv[I], "--time-gate-config") == 0) {
      // Arms the time gate for rows whose config contains SUBSTR even
      // under --no-time-gate (CI: the jit rows of BENCH_T3).
      const char *V = TakeValue("--time-gate-config");
      if (!V)
        return 2;
      Opts.TimeGateConfigSubstr = V;
    } else if (std::strcmp(Argv[I], "--time-exempt-config") == 0) {
      // Exempts rows whose config contains SUBSTR from the time gate
      // (CI: the pml VM rows of the spans-overhead T1 gate, which run
      // interpreter-pinned when spans are armed).
      const char *V = TakeValue("--time-exempt-config");
      if (!V)
        return 2;
      Opts.TimeExemptConfigSubstr = V;
    } else if (std::strcmp(Argv[I], "--gate-residency") == 0) {
      Opts.GateResidency = true;
    } else if (std::strcmp(Argv[I], "--gate-counters") == 0) {
      Opts.GateCounters = true;
    } else if (std::strcmp(Argv[I], "--profile-drift") == 0) {
      Opts.ProfileDrift = true;
    } else if (std::strcmp(Argv[I], "--drift-top-k") == 0) {
      const char *V = TakeValue("--drift-top-k");
      if (!V)
        return 2;
      Opts.DriftTopK = std::atoi(V);
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "mpl_report: unknown flag '%s'\n", Argv[I]);
      return usage();
    } else {
      RenderPath = Argv[I];
    }
  }

  if (!BaselinePath.empty() != !CurrentPath.empty())
    return usage(); // --baseline and --current come as a pair.

  if (!BaselinePath.empty()) {
    if (!RenderPath.empty())
      return usage();
    gate::BenchFile Base, Cur;
    std::string Err;
    if (!gate::loadBenchFile(BaselinePath, Base, Err) ||
        !gate::loadBenchFile(CurrentPath, Cur, Err)) {
      std::fprintf(stderr, "mpl_report: %s\n", Err.c_str());
      return 2;
    }
    gate::GateResult R = gate::compare(Base, Cur, Opts);
    std::string Report = gate::renderFindings(R, Opts);
    std::fputs(Report.c_str(), R.ok() ? stdout : stderr);
    return R.ok() ? 0 : 1;
  }

  if (RenderPath.empty())
    return usage();
  gate::BenchFile F;
  std::string Err;
  if (!gate::loadBenchFile(RenderPath, F, Err)) {
    std::fprintf(stderr, "mpl_report: %s\n", Err.c_str());
    return 2;
  }
  std::fputs(gate::renderTable(F).c_str(), stdout);
  return 0;
}
