//===- tools/mpl_report.cpp - Bench-JSON renderer and regression gate ------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Consumes the schema-versioned "mpl-bench/1" records every bench binary
// emits with `-json <path>` (bench/Common.h, BenchJson) and does two jobs:
//
//   render:   mpl_report FILE.json
//             Paper-style table of the measured rows: times with spread,
//             work/span, entanglement counters, residency, and the top
//             profiler sites of entangled rows.
//
//   compare:  mpl_report --baseline A.json --current B.json
//                        [--tolerance-pct N] [--min-time-ms M]
//             The CI perf-smoke gate. Joins rows on (name, config) and
//             exits nonzero when the current run regressed:
//               * median time worse than baseline by more than N% (default
//                 25) — only for rows whose baseline median is at least M
//                 ms (default 10): shorter rows are pure noise across
//                 machines at smoke scale, so they are gated on their
//                 counters instead;
//               * any current row leaks pins (profile.leaked_pins > 0);
//               * a baseline row is missing from the current run;
//               * checksums disagree (same scale only — checksums are a
//                 function of the problem size).
//             Improvements never fail the gate.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mpl;

namespace {

double numField(const json::Value *V, const char *Name, double Default = 0) {
  if (!V)
    return Default;
  const json::Value *F = V->field(Name);
  return F && F->isNumber() ? F->NumV : Default;
}

std::string strField(const json::Value *V, const char *Name) {
  if (!V)
    return "";
  const json::Value *F = V->field(Name);
  return F && F->isString() ? F->StrV : "";
}

/// One flattened bench row, keyed by (Name, Config).
struct Row {
  std::string Name;
  std::string Config;
  double MedianS = 0;
  double StddevS = 0;
  double WorkS = 0;
  double SpanS = 0;
  int64_t PinnedBytes = 0;
  int64_t EntangledReads = 0;
  int64_t GcCount = 0;
  int64_t Residency = 0;
  int64_t Checksum = 0;
  bool HasChecksum = false;
  int64_t LeakedPins = 0;
  std::vector<std::pair<std::string, int64_t>> Sites; ///< name -> bytes
};

struct File {
  std::string Path;
  std::string Bench;
  double Scale = 0;
  std::vector<Row> Rows;

  const Row *find(const Row &Key) const {
    for (const Row &R : Rows)
      if (R.Name == Key.Name && R.Config == Key.Config)
        return &R;
    return nullptr;
  }
};

bool loadFile(const std::string &Path, File &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "mpl_report: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  json::Value Root;
  std::string Err;
  if (!json::parse(Ss.str(), Root, Err)) {
    std::fprintf(stderr, "mpl_report: %s: parse error: %s\n", Path.c_str(),
                 Err.c_str());
    return false;
  }
  if (strField(&Root, "schema") != "mpl-bench/1") {
    std::fprintf(stderr, "mpl_report: %s: not an mpl-bench/1 file\n",
                 Path.c_str());
    return false;
  }
  Out.Path = Path;
  Out.Bench = strField(&Root, "bench");
  Out.Scale = numField(&Root, "scale");
  const json::Value *Rows = Root.field("rows");
  if (!Rows || !Rows->isArray()) {
    std::fprintf(stderr, "mpl_report: %s: missing rows array\n", Path.c_str());
    return false;
  }
  for (const json::Value &RV : Rows->Items) {
    Row R;
    R.Name = strField(&RV, "name");
    R.Config = strField(&RV, "config");
    const json::Value *Time = RV.field("time");
    R.MedianS = numField(Time, "median_s");
    R.StddevS = numField(Time, "stddev_s");
    const json::Value *WS = RV.field("work_span");
    R.WorkS = numField(WS, "work_s");
    R.SpanS = numField(WS, "span_s");
    const json::Value *Em = RV.field("em");
    R.PinnedBytes = static_cast<int64_t>(numField(Em, "pinned_bytes"));
    R.EntangledReads = static_cast<int64_t>(numField(Em, "entangled_reads"));
    R.GcCount = static_cast<int64_t>(numField(RV.field("gc"), "collections"));
    R.Residency = static_cast<int64_t>(numField(&RV, "max_residency_bytes"));
    if (const json::Value *Ck = RV.field("checksum");
        Ck && Ck->isNumber()) {
      R.Checksum = static_cast<int64_t>(Ck->NumV);
      R.HasChecksum = true;
    }
    const json::Value *Prof = RV.field("profile");
    R.LeakedPins = static_cast<int64_t>(numField(Prof, "leaked_pins"));
    if (Prof)
      if (const json::Value *Sites = Prof->field("sites");
          Sites && Sites->isArray())
        for (const json::Value &SV : Sites->Items)
          R.Sites.emplace_back(strField(&SV, "name"),
                               static_cast<int64_t>(numField(&SV, "bytes")));
    Out.Rows.push_back(std::move(R));
  }
  return true;
}

int render(const File &F) {
  std::printf("== %s (scale=%.2f, %zu rows) — %s ==\n", F.Bench.c_str(),
              F.Scale, F.Rows.size(), F.Path.c_str());
  Table T({"benchmark", "config", "median", "+-", "work/span", "pinned",
           "gc", "residency", "top site"});
  for (const Row &R : F.Rows) {
    std::string Par =
        R.SpanS > 0 ? Table::fmtRatio(R.WorkS / R.SpanS) : std::string("-");
    std::string Top = "-";
    if (!R.Sites.empty())
      Top = R.Sites.front().first + " " +
            Table::fmtBytes(R.Sites.front().second);
    if (R.LeakedPins > 0)
      Top += " LEAK:" + Table::fmtInt(R.LeakedPins);
    T.addRow({R.Name, R.Config, Table::fmtSec(R.MedianS),
              R.StddevS > 0 ? Table::fmtSec(R.StddevS) : std::string("-"),
              Par, Table::fmtBytes(R.PinnedBytes), Table::fmtInt(R.GcCount),
              Table::fmtBytes(R.Residency), Top});
  }
  T.print();
  return 0;
}

int compare(const File &Base, const File &Cur, double TolerancePct,
            double MinTimeMs) {
  int Failures = 0;
  auto Fail = [&](const char *Fmt, const std::string &A, const std::string &B,
                  const std::string &Detail) {
    std::fprintf(stderr, Fmt, A.c_str(), B.c_str(), Detail.c_str());
    ++Failures;
  };

  bool SameScale = Base.Scale == Cur.Scale;
  if (!SameScale)
    std::fprintf(stderr,
                 "mpl_report: note: scales differ (%.3g vs %.3g); "
                 "checksums not compared\n",
                 Base.Scale, Cur.Scale);

  int Compared = 0, Gated = 0;
  for (const Row &B : Base.Rows) {
    const Row *C = Cur.find(B);
    if (!C) {
      Fail("FAIL %s/%s: row missing from current run%s\n", B.Name, B.Config,
           "");
      continue;
    }
    ++Compared;
    if (C->LeakedPins > 0)
      Fail("FAIL %s/%s: %s leaked pins (joins must release every pin)\n",
           B.Name, B.Config, std::to_string(C->LeakedPins));
    if (SameScale && B.HasChecksum && C->HasChecksum &&
        B.Checksum != C->Checksum)
      Fail("FAIL %s/%s: checksum mismatch (%s)\n", B.Name, B.Config,
           std::to_string(B.Checksum) + " vs " + std::to_string(C->Checksum));
    // The time gate: only rows long enough to be stable across machines.
    if (B.MedianS * 1e3 < MinTimeMs)
      continue;
    ++Gated;
    double Limit = B.MedianS * (1.0 + TolerancePct / 100.0);
    if (C->MedianS > Limit) {
      char Detail[96];
      std::snprintf(Detail, sizeof(Detail), "%.3fms -> %.3fms (+%.0f%% > %.0f%%)",
                    B.MedianS * 1e3, C->MedianS * 1e3,
                    100.0 * (C->MedianS / B.MedianS - 1.0), TolerancePct);
      Fail("FAIL %s/%s: time regression %s\n", B.Name, B.Config, Detail);
    }
  }

  std::printf("mpl_report: compared %d rows (%d time-gated at >=%.0fms, "
              "tolerance %.0f%%): %s\n",
              Compared, Gated, MinTimeMs, TolerancePct,
              Failures ? "FAIL" : "ok");
  return Failures ? 1 : 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mpl_report FILE.json\n"
      "       mpl_report --baseline A.json --current B.json\n"
      "                  [--tolerance-pct N] [--min-time-ms M]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BaselinePath, CurrentPath, RenderPath;
  double TolerancePct = 25.0, MinTimeMs = 10.0;
  for (int I = 1; I < Argc; ++I) {
    auto TakeValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "mpl_report: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--baseline") == 0) {
      const char *V = TakeValue("--baseline");
      if (!V)
        return 2;
      BaselinePath = V;
    } else if (std::strcmp(Argv[I], "--current") == 0) {
      const char *V = TakeValue("--current");
      if (!V)
        return 2;
      CurrentPath = V;
    } else if (std::strcmp(Argv[I], "--tolerance-pct") == 0) {
      const char *V = TakeValue("--tolerance-pct");
      if (!V)
        return 2;
      TolerancePct = std::atof(V);
    } else if (std::strcmp(Argv[I], "--min-time-ms") == 0) {
      const char *V = TakeValue("--min-time-ms");
      if (!V)
        return 2;
      MinTimeMs = std::atof(V);
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "mpl_report: unknown flag '%s'\n", Argv[I]);
      return usage();
    } else {
      RenderPath = Argv[I];
    }
  }

  if (!BaselinePath.empty() != !CurrentPath.empty())
    return usage(); // --baseline and --current come as a pair.

  if (!BaselinePath.empty()) {
    File Base, Cur;
    if (!loadFile(BaselinePath, Base) || !loadFile(CurrentPath, Cur))
      return 2;
    if (!RenderPath.empty())
      return usage();
    return compare(Base, Cur, TolerancePct, MinTimeMs);
  }

  if (RenderPath.empty())
    return usage();
  File F;
  if (!loadFile(RenderPath, F))
    return 2;
  return render(F);
}
