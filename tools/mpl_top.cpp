//===- tools/mpl_top.cpp - Live server dashboard (watch CLI) --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `top` for the request server: polls the live stats frame ('I',
/// DESIGN.md §16) and redraws a one-screen dashboard — pressure level,
/// queue depth, request/shed rates (from counter deltas between polls),
/// per-stage latency percentiles over the rolling window, pinned bytes,
/// and the current tail exemplars with their critical-path lines.
///
///   mpl_top -port 7070                  # refresh every second
///   mpl_top -port 7070 -interval-ms 250 -n 40
///   mpl_top -port 7070 -once            # one JSON snapshot to stdout
///   mpl_top -port 7070 -once -format prom -check
///
/// -once prints the raw frame body (mpl-stats/1 JSON, or Prometheus text
/// with -format prom) and exits — the scrape mode CI and scripts use.
/// -check additionally runs the exposition format checker over a `prom`
/// body and fails on duplicate series / non-monotone le buckets /
/// negative counters.
///
/// Exit: 0 on success, 1 on connect/protocol/check failure.
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "obs/Exposition.h"
#include "support/Cli.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

using namespace mpl;

namespace {

double numField(const json::Value &V, const char *Name, double Default = 0) {
  const json::Value *F = V.field(Name);
  return F && F->isNumber() ? F->NumV : Default;
}

std::string strField(const json::Value &V, const char *Name) {
  const json::Value *F = V.field(Name);
  return F && F->isString() ? F->StrV : "?";
}

void fmtNs(char *Buf, size_t Len, double Ns) {
  if (Ns >= 1e9)
    std::snprintf(Buf, Len, "%.2fs", Ns / 1e9);
  else if (Ns >= 1e6)
    std::snprintf(Buf, Len, "%.1fms", Ns / 1e6);
  else if (Ns >= 1e3)
    std::snprintf(Buf, Len, "%.1fus", Ns / 1e3);
  else
    std::snprintf(Buf, Len, "%.0fns", Ns);
}

void fmtBytes(char *Buf, size_t Len, double B) {
  if (B >= double(1) * (1 << 30))
    std::snprintf(Buf, Len, "%.2fGiB", B / (1 << 30));
  else if (B >= double(1) * (1 << 20))
    std::snprintf(Buf, Len, "%.1fMiB", B / (1 << 20));
  else if (B >= 1024)
    std::snprintf(Buf, Len, "%.1fKiB", B / 1024);
  else
    std::snprintf(Buf, Len, "%.0fB", B);
}

struct CounterView {
  double Requests = 0;
  double Ok = 0;
  double Shed = 0;
  double Deadline = 0;
  double Errors = 0;
  double Draining = 0;
};

CounterView readCounters(const json::Value &Stats) {
  CounterView C;
  if (const json::Value *Ctr = Stats.field("counters")) {
    C.Requests = numField(*Ctr, "net.requests");
    C.Ok = numField(*Ctr, "net.resp.ok");
    C.Shed = numField(*Ctr, "net.resp.shed");
    C.Deadline = numField(*Ctr, "net.resp.deadline_expired");
    C.Errors = numField(*Ctr, "net.resp.error");
    C.Draining = numField(*Ctr, "net.resp.draining");
  }
  return C;
}

void printPctRow(const json::Value &Parent, const char *Key,
                 const char *Label) {
  const json::Value *H = Parent.field(Key);
  if (!H)
    return;
  char P50[32], P99[32], P999[32];
  fmtNs(P50, sizeof(P50), numField(*H, "p50"));
  fmtNs(P99, sizeof(P99), numField(*H, "p99"));
  fmtNs(P999, sizeof(P999), numField(*H, "p999"));
  std::printf("  %-8s n=%-10.0f p50=%-9s p99=%-9s p99.9=%s\n", Label,
              numField(*H, "count"), P50, P99, P999);
}

/// One full dashboard redraw from a parsed mpl-stats/1 object.
void render(const json::Value &Stats, const CounterView &Prev,
            double IntervalSec, bool Clear) {
  if (Clear)
    std::printf("\x1b[H\x1b[2J");

  CounterView Cur = readCounters(Stats);
  double ReqRate = IntervalSec > 0 ? (Cur.Requests - Prev.Requests) /
                                         IntervalSec
                                   : 0;
  double ShedRate = IntervalSec > 0 ? (Cur.Shed - Prev.Shed) / IntervalSec : 0;

  std::printf("mpl_top — status=%s pressure=%s\n",
              strField(Stats, "status").c_str(),
              strField(Stats, "pressure").c_str());
  std::printf("queue %.0f/%.0f  inflight %.0f  |  %.1f req/s  %.1f shed/s\n",
              numField(Stats, "queue_depth"), numField(Stats, "queue_cap"),
              numField(Stats, "inflight"), ReqRate, ShedRate);
  std::printf("totals: ok=%.0f shed=%.0f deadline=%.0f error=%.0f "
              "draining=%.0f\n",
              Cur.Ok, Cur.Shed, Cur.Deadline, Cur.Errors, Cur.Draining);

  if (const json::Value *Mm = Stats.field("mm")) {
    char Pinned[32], Out[32], Lim[32];
    fmtBytes(Pinned, sizeof(Pinned), numField(*Mm, "pinned_bytes"));
    fmtBytes(Out, sizeof(Out), numField(*Mm, "outstanding_bytes"));
    double LimB = numField(*Mm, "limit_bytes");
    if (LimB > 0)
      fmtBytes(Lim, sizeof(Lim), LimB);
    else
      std::snprintf(Lim, sizeof(Lim), "unlimited");
    std::printf("mem: outstanding=%s limit=%s pinned=%s\n", Out, Lim, Pinned);
  }

  if (const json::Value *W = Stats.field("window")) {
    std::printf("window (%.1fs):\n", numField(*W, "window_ns") / 1e9);
    printPctRow(*W, "latency", "total");
    printPctRow(*W, "queue", "queue");
    printPctRow(*W, "exec", "exec");
  }
  if (const json::Value *St = Stats.field("stage")) {
    std::printf("lifetime stages:\n");
    printPctRow(*St, "queue", "queue");
    printPctRow(*St, "exec", "exec");
    printPctRow(*St, "reply", "reply");
  }
  if (const json::Value *Ex = Stats.field("exemplars");
      Ex && Ex->isArray() && !Ex->Items.empty()) {
    std::printf("worst requests:\n");
    for (const json::Value &E : Ex->Items) {
      char Total[32], Queue[32];
      fmtNs(Total, sizeof(Total), numField(E, "total_ns"));
      fmtNs(Queue, sizeof(Queue), numField(E, "queue_ns"));
      std::string Cp = strField(E, "cp");
      std::printf("  id=%-8.0f total=%-9s queue=%-9s %s\n", numField(E, "id"),
                  Total, Queue, Cp == "?" ? "" : Cp.c_str());
    }
  }
  std::fflush(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  uint16_t Port = static_cast<uint16_t>(C.getInt("port", 7070));
  int64_t IntervalMs = C.getInt("interval-ms", 1000);
  int64_t Iterations = C.getInt("n", 0); // 0 = until the server goes away
  bool Once = C.getBool("once");
  bool Check = C.getBool("check");
  bool NoClear = C.getBool("no-clear");
  std::string Format = C.getString("format", "json");
  std::string Options = Format == "prom" ? "format=prom" : "";

  net::Client Cl;
  if (!Cl.connect(Port)) {
    std::fprintf(stderr, "mpl_top: cannot connect to 127.0.0.1:%u\n",
                 unsigned(Port));
    return 1;
  }

  if (Once) {
    net::Response Resp;
    if (!Cl.introspect(Options, Resp) || Resp.St != net::Status::Ok) {
      std::fprintf(stderr, "mpl_top: stats frame failed\n");
      return 1;
    }
    std::printf("%s\n", Resp.Body.c_str());
    if (Check) {
      if (Format != "prom") {
        std::fprintf(stderr, "mpl_top: -check requires -format prom\n");
        return 1;
      }
      std::string Err;
      int Series = 0;
      if (!obs::checkExposition(Resp.Body, Err, &Series)) {
        std::fprintf(stderr, "mpl_top: exposition check FAILED: %s\n",
                     Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "mpl_top: exposition check ok (%d series)\n",
                   Series);
    }
    return 0;
  }

  CounterView Prev;
  int64_t PrevNs = 0;
  for (int64_t I = 0; Iterations == 0 || I < Iterations; ++I) {
    net::Response Resp;
    if (!Cl.connected() && !Cl.connect(Port))
      break;
    if (!Cl.introspect("", Resp) || Resp.St != net::Status::Ok)
      break;
    json::Value Root;
    std::string Err;
    if (!json::parse(Resp.Body, Root, Err)) {
      std::fprintf(stderr, "mpl_top: bad stats frame: %s\n", Err.c_str());
      return 1;
    }
    const json::Value *Stats = Root.field("mpl-stats/1");
    if (!Stats) {
      std::fprintf(stderr, "mpl_top: not an mpl-stats/1 frame\n");
      return 1;
    }
    int64_t Now = nowNs();
    double IntervalSec = PrevNs > 0 ? double(Now - PrevNs) / 1e9 : 0;
    render(*Stats, Prev, IntervalSec, !NoClear);
    Prev = readCounters(*Stats);
    PrevNs = Now;
    if (Iterations == 0 || I + 1 < Iterations)
      std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
  return 0;
}
