//===- tools/mpl_client.cpp - Request-server load driver ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a mixed workload (fib / sort / primes / nqueens / pml / ping)
/// against a running mpl_server from -conns concurrent connections, with
/// the client-side robustness contract: reconnect on mid-request drops,
/// jittered exponential backoff on SHED/DRAINING honoring the server's
/// Retry-After hint. Prints an `mpl-client/1` JSON summary; exits 0 when
/// every delivered response was well-formed (undelivered requests — e.g. a
/// drain that outlasts the retry budget — are reported, not fatal).
///
///   mpl_client -port 41733 -n 200 -conns 4 -deadline-ms 2000 -seed 7
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "support/Cli.h"
#include "support/Random.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace mpl;
using namespace mpl::net;

namespace {

struct Tally {
  std::atomic<int64_t> Ok{0};
  std::atomic<int64_t> Shed{0};
  std::atomic<int64_t> DeadlineExpired{0};
  std::atomic<int64_t> Error{0};
  std::atomic<int64_t> Draining{0};
  std::atomic<int64_t> Undelivered{0};
  std::atomic<int64_t> Attempts{0};
  std::atomic<int64_t> BackoffMs{0};
};

Request makeRequest(uint64_t Id, uint32_t DeadlineMs, int MixIdx) {
  Request R;
  R.Id = Id;
  R.DeadlineMs = DeadlineMs;
  switch (MixIdx % 6) {
  case 0:
    R.Kind = RequestKind::Workload;
    R.Body = "fib 24";
    break;
  case 1:
    R.Kind = RequestKind::Workload;
    R.Body = "sort 50000";
    break;
  case 2:
    R.Kind = RequestKind::Workload;
    R.Body = "primes 50000";
    break;
  case 3:
    R.Kind = RequestKind::Workload;
    R.Body = "nqueens 8";
    break;
  case 4:
    R.Kind = RequestKind::Pml;
    R.Body = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
             "fib 18";
    break;
  default:
    R.Kind = RequestKind::Ping;
    break;
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli Cli(Argc, Argv);
  uint16_t Port = static_cast<uint16_t>(Cli.getInt("port", 0));
  int64_t N = Cli.getInt("n", 100);
  int Conns = static_cast<int>(Cli.getInt("conns", 4));
  uint32_t DeadlineMs = static_cast<uint32_t>(Cli.getInt("deadline-ms", 2000));
  uint64_t Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  int MaxAttempts = static_cast<int>(Cli.getInt("max-attempts", 6));
  if (Port == 0) {
    std::fprintf(stderr, "mpl_client: -port is required\n");
    return 2;
  }

  Tally T;
  int64_t PerConn = (N + Conns - 1) / Conns;
  std::vector<std::thread> Threads;
  for (int C = 0; C < Conns; ++C) {
    Threads.emplace_back([&, C] {
      Client Cl;
      RetryPolicy P;
      P.MaxAttempts = MaxAttempts;
      P.JitterSeed = hash64(Seed ^ static_cast<uint64_t>(C));
      for (int64_t I = 0; I < PerConn; ++I) {
        uint64_t Id = (static_cast<uint64_t>(C) << 32) |
                      static_cast<uint64_t>(I + 1);
        Request Req = makeRequest(Id, DeadlineMs,
                                  static_cast<int>(Id % 6));
        CallResult R = callWithRetry(Cl, Port, Req, P);
        T.Attempts.fetch_add(R.Attempts);
        T.BackoffMs.fetch_add(R.BackoffMsTotal);
        if (!R.Delivered) {
          T.Undelivered.fetch_add(1);
          continue;
        }
        switch (R.St) {
        case Status::Ok:
          T.Ok.fetch_add(1);
          break;
        case Status::Shed:
          T.Shed.fetch_add(1);
          break;
        case Status::DeadlineExpired:
          T.DeadlineExpired.fetch_add(1);
          break;
        case Status::Error:
          T.Error.fetch_add(1);
          break;
        case Status::Draining:
          T.Draining.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();

  std::printf("{\"mpl-client/1\":{\"requests\":%lld,\"ok\":%lld,"
              "\"shed\":%lld,\"deadline_expired\":%lld,\"error\":%lld,"
              "\"draining\":%lld,\"undelivered\":%lld,\"attempts\":%lld,"
              "\"backoff_ms\":%lld}}\n",
              static_cast<long long>(PerConn * Conns),
              static_cast<long long>(T.Ok.load()),
              static_cast<long long>(T.Shed.load()),
              static_cast<long long>(T.DeadlineExpired.load()),
              static_cast<long long>(T.Error.load()),
              static_cast<long long>(T.Draining.load()),
              static_cast<long long>(T.Undelivered.load()),
              static_cast<long long>(T.Attempts.load()),
              static_cast<long long>(T.BackoffMs.load()));
  return 0;
}
