//===- tools/trace_check.cpp - Chrome trace-event file validator ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Validates a trace file produced by MPL_TRACE=<path> (src/obs): parses the
// JSON, checks the Chrome trace-event shape (ph/pid/tid/ts on every event,
// B/E balance per track, thread_name metadata), and prints a one-line
// summary. CI runs it over the smoke workload's trace; exits non-zero on
// any malformation so a broken exporter fails the pipeline.
//
// Usage: mpl_trace_check <trace.json> [--require-event NAME]...
//                        [--allow-drops] [--check-flow-pairs]
//                        [--check-net-balance]
//
// --check-flow-pairs additionally validates flow binding: every flow id
// (grouped by cat+name, the Chrome binding key) must carry both its start
// ('s') and finish ('f') half. The request server's net.request_flow
// events bind enqueue (connection thread) to execution (worker strand);
// an unpaired id means a request was enqueued but never ran, or vice
// versa.
//
// --check-net-balance asserts the request-counter balance invariant from
// the otherData.counters block: every request decoded off the wire got
// exactly one counted response —
//   net.requests == net.resp.ok + net.resp.shed
//                 + net.resp.deadline_expired + net.resp.error
//                 + net.resp.draining
// An imbalance means the server silently dropped (or double-counted) a
// request. Stats ('I') frames are deliberately outside this balance. The
// check refuses net.requests == 0: the flag is only used on serving runs,
// so zero means the counters block lost the net.* family and the balance
// would pass vacuously.
//
// A trace that dropped events (otherData.dropped_events != 0) fails the
// check — a gappy trace silently lies about the schedule — unless
// --allow-drops is given for deliberately tiny ring-buffer runs.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace mpl;

namespace {

int fail(const std::string &What) {
  std::fprintf(stderr, "trace_check: FAIL: %s\n", What.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return fail("usage: mpl_trace_check <trace.json> [--require-event N]...");

  std::vector<std::string> Required;
  bool AllowDrops = false;
  bool CheckFlowPairs = false;
  bool CheckNetBalance = false;
  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--require-event" && I + 1 < argc)
      Required.emplace_back(argv[++I]);
    else if (A == "--allow-drops")
      AllowDrops = true;
    else if (A == "--check-flow-pairs")
      CheckFlowPairs = true;
    else if (A == "--check-net-balance")
      CheckNetBalance = true;
    else
      return fail("unknown argument: " + A);
  }

  std::ifstream In(argv[1]);
  if (!In)
    return fail(std::string("cannot open ") + argv[1]);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  json::Value Doc;
  std::string Err;
  if (!json::parse(Text, Doc, Err))
    return fail("JSON parse error: " + Err);
  if (!Doc.isObject())
    return fail("top-level value is not an object");

  const json::Value *Evs = Doc.field("traceEvents");
  if (!Evs || !Evs->isArray())
    return fail("missing traceEvents array");

  // Per-(pid,tid) B/E nesting depth; Perfetto rejects unbalanced tracks.
  std::map<std::pair<double, double>, long> Depth;
  std::set<std::string> Names;
  // Flow binding key (cat + name + id) -> bit 0: 's' seen, bit 1: 'f' seen.
  std::map<std::string, int> FlowHalves;
  long NEvents = 0, NMeta = 0, NSlices = 0, NInstants = 0, NFlows = 0;

  for (const json::Value &E : Evs->Items) {
    if (!E.isObject())
      return fail("traceEvents entry is not an object");
    const json::Value *Ph = E.field("ph");
    const json::Value *Pid = E.field("pid");
    const json::Value *Tid = E.field("tid");
    if (!Ph || !Ph->isString())
      return fail("event without a ph phase");
    if (!Pid || !Pid->isNumber() || !Tid || !Tid->isNumber())
      return fail("event without numeric pid/tid");
    const std::string &P = Ph->StrV;
    if (P == "M") {
      ++NMeta;
      continue;
    }
    ++NEvents;
    const json::Value *Ts = E.field("ts");
    const json::Value *Name = E.field("name");
    if (!Ts || !Ts->isNumber())
      return fail("non-metadata event without numeric ts");
    if (Ts->NumV < 0)
      return fail("negative timestamp");
    if (!Name || !Name->isString() || Name->StrV.empty())
      return fail("non-metadata event without a name");
    Names.insert(Name->StrV);
    auto Track = std::make_pair(Pid->NumV, Tid->NumV);
    if (P == "B") {
      ++Depth[Track];
      ++NSlices;
    } else if (P == "E") {
      if (--Depth[Track] < 0)
        return fail("E without matching B on track tid=" +
                    std::to_string(static_cast<long>(Tid->NumV)));
    } else if (P == "i") {
      ++NInstants;
    } else if (P == "s" || P == "f") {
      // Flow events (span ledger task edges) carry a binding id; Perfetto
      // drops flows without one.
      const json::Value *Id = E.field("id");
      if (!Id || !Id->isNumber())
        return fail("flow event without numeric id");
      ++NFlows;
      if (CheckFlowPairs) {
        std::string Cat;
        if (const json::Value *C = E.field("cat"); C && C->isString())
          Cat = C->StrV;
        std::string Key = Cat + "|" + Name->StrV + "|" +
                          std::to_string(static_cast<long long>(Id->NumV));
        FlowHalves[Key] |= P == "s" ? 1 : 2;
      }
    } else {
      return fail("unexpected phase '" + P + "'");
    }
  }

  for (const auto &[Track, D] : Depth)
    if (D != 0)
      return fail("unclosed B slice on track tid=" +
                  std::to_string(static_cast<long>(Track.second)));

  for (const std::string &R : Required)
    if (!Names.count(R))
      return fail("required event '" + R + "' absent from trace");

  // Diagnose drops before flow pairing: a wrapped ring overwrites the
  // oldest events, so a missing flow half on a gappy trace means "trace
  // incomplete", not "pairing broken" — report the actionable cause.
  std::string Dropped = "0";
  if (const json::Value *Other = Doc.field("otherData"))
    if (const json::Value *D = Other->field("dropped_events"))
      Dropped = D->StrV;
  if (Dropped != "0" && !AllowDrops)
    return fail(Dropped + " events dropped (ring buffer overflow); the "
                          "trace is incomplete — rerun with a larger "
                          "MPL_TRACE_CAPACITY or pass --allow-drops");

  if (CheckFlowPairs)
    for (const auto &[Key, Halves] : FlowHalves)
      if (Halves != 3)
        return fail("flow '" + Key + "' has only its " +
                    (Halves == 1 ? std::string("start ('s')")
                                 : std::string("finish ('f')")) +
                    " half — enqueue/execute pairing broken");

  if (CheckNetBalance) {
    const json::Value *Other = Doc.field("otherData");
    const json::Value *Ctr = Other ? Other->field("counters") : nullptr;
    if (!Ctr || !Ctr->isObject())
      return fail("--check-net-balance: trace has no otherData.counters "
                  "block (exporter too old?)");
    auto Counter = [&](const char *Name) -> double {
      const json::Value *V = Ctr->field(Name);
      if (V && !V->isNumber())
        return -1; // malformed; caught below
      return V ? V->NumV : 0;
    };
    double Requests = Counter("net.requests");
    double Parts[] = {Counter("net.resp.ok"), Counter("net.resp.shed"),
                      Counter("net.resp.deadline_expired"),
                      Counter("net.resp.error"),
                      Counter("net.resp.draining")};
    double Sum = 0;
    for (double P : Parts) {
      if (P < 0)
        return fail("--check-net-balance: non-numeric net.resp.* counter");
      Sum += P;
    }
    if (Requests < 0)
      return fail("--check-net-balance: non-numeric net.requests");
    // The flag is only passed for traces from a request-serving run, so a
    // zero count means the counters block lost the net.* family (e.g. the
    // exporter snapshotted after the server unregistered its Stats) — the
    // balance would hold vacuously and hide exactly the bugs this check
    // exists to catch.
    if (Requests == 0)
      return fail("--check-net-balance: net.requests is 0/absent — counters "
                  "block has no net.* family, balance would be vacuous");
    if (Requests != Sum) {
      char Msg[256];
      std::snprintf(Msg, sizeof(Msg),
                    "net counter imbalance: net.requests=%.0f but "
                    "ok+shed+deadline+error+draining=%.0f — a request "
                    "was silently dropped or double-counted",
                    Requests, Sum);
      return fail(Msg);
    }
    std::printf("trace_check: net balance ok: %.0f requests == "
                "%.0f responses\n",
                Requests, Sum);
  }

  std::printf("trace_check: OK: %ld events (%ld slices, %ld instants, "
              "%ld flows, %ld metadata), %zu distinct names, %s dropped\n",
              NEvents, NSlices, NInstants, NFlows, NMeta, Names.size(),
              Dropped.c_str());
  return 0;
}
