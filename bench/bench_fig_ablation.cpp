//===- bench/bench_fig_ablation.cpp - Figure F2 + ablation A1 --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// F2: the cost of entanglement support on *disentangled* programs — each
// benchmark runs with (a) barriers off, (b) detection only (ICFP'22 /
// pre-paper MPL), and (c) full management (this paper). The paper's claim:
// (c) is within a few percent of (a); disentangled objects are shielded
// from the cost of entanglement.
//
// A1 (design-choice ablation from DESIGN.md): hierarchical local collection
// vs a monolithic whole-heap collection discipline. The sequential run
// collects the entire root heap every time (the stop-the-world shape),
// while the parallel run collects small private chains; we report max and
// total pause times for both.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  std::string JsonPath = C.getString("json", "");

  std::printf("== F2: barrier-cost ablation on the disentangled suite "
              "(scale=%.2f, 1 worker) ==\n%s\n",
              Scale, methodologyLine(Reps).c_str());
  BenchJson J("fig_ablation", Scale, Reps);

  Table T({"benchmark", "off", "detect", "manage", "detect/off",
           "manage/off"});

  for (const SuiteEntry &E : makeSuite(Scale)) {
    if (E.Entangled)
      continue; // Detect/Off modes are only sound for disentangled code.
    RunResult Off = measure(E, false, 1, em::Mode::Off, false, Reps);
    RunResult Det = measure(E, false, 1, em::Mode::Detect, false, Reps);
    RunResult Man = measure(E, false, 1, em::Mode::Manage, false, Reps);
    MPL_CHECK(Off.Checksum == Man.Checksum && Det.Checksum == Man.Checksum,
              "ablation modes disagree");
    T.addRow({E.Name, fmtSecPm(Off.Seconds, Off.StddevSeconds),
              fmtSecPm(Det.Seconds, Det.StddevSeconds),
              fmtSecPm(Man.Seconds, Man.StddevSeconds),
              Table::fmtRatio(Det.Seconds / Off.Seconds),
              Table::fmtRatio(Man.Seconds / Off.Seconds)});
    J.addRow(E.Name, "off", false, Off);
    J.addRow(E.Name, "detect", false, Det);
    J.addRow(E.Name, "manage", false, Man);
  }
  T.print();

  std::printf("\n== A1: local (hierarchical) vs whole-heap collection "
              "pauses ==\n");
  Table T2({"benchmark", "mode", "collections", "max-pause", "total-pause"});
  for (const SuiteEntry &E : makeSuite(Scale)) {
    if (E.Name != "msort" && E.Name != "quicksort")
      continue;
    // Whole-heap shape: the sequential run keeps everything in the root
    // heap, so every collection scans the full live set.
    RunResult Seq = measure(E, true, 1, em::Mode::Manage, false, Reps);
    int64_t SeqTotal = Seq.Stats.GcTotalPauseNs;
    // Hierarchical shape: the parallel run collects small private chains.
    RunResult Par = measure(E, false, 1, em::Mode::Manage, false, Reps);
    int64_t ParTotal = Par.Stats.GcTotalPauseNs;

    T2.addRow({E.Name, "whole-heap", Table::fmtInt(Seq.Stats.GcCount),
               Table::fmtSec(static_cast<double>(Seq.Stats.GcMaxPauseNs) *
                             1e-9),
               Table::fmtSec(static_cast<double>(SeqTotal) * 1e-9)});
    T2.addRow({E.Name, "hierarchical", Table::fmtInt(Par.Stats.GcCount),
               Table::fmtSec(static_cast<double>(Par.Stats.GcMaxPauseNs) *
                             1e-9),
               Table::fmtSec(static_cast<double>(ParTotal) * 1e-9)});
    J.addRow(E.Name, "gc-whole-heap", E.Entangled, Seq);
    J.addRow(E.Name, "gc-hierarchical", E.Entangled, Par);
  }
  T2.print();
  std::printf("\nHierarchical collection trades a few more collections for "
              "far smaller\nper-collection pauses — the property that lets "
              "tasks collect independently.\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
