//===- bench/bench_micro_barriers.cpp - Barrier micro-costs ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Google-benchmark microbenchmarks for the entanglement barriers: the cost
// of a disentangled mutable load/store under Off / Detect / Manage. These
// are the per-operation numbers behind figure F2 — the paper's claim is
// that the managed read barrier is a single predictable ancestor check on
// disentangled data.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include <benchmark/benchmark.h>

using namespace mpl;
using namespace mpl::ops;

namespace {

em::Mode modeOf(int64_t I) {
  switch (I) {
  case 0:
    return em::Mode::Off;
  case 1:
    return em::Mode::Detect;
  default:
    return em::Mode::Manage;
  }
}

const char *modeName(int64_t I) {
  return I == 0 ? "off" : (I == 1 ? "detect" : "manage");
}

void BM_RefGetDisentangled(benchmark::State &State) {
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Box(newRef(boxInt(7)));
    Local Cell(newRef(Box.slot())); // Pointer-valued ref: barrier fires.
    for (auto _ : State) {
      Slot V = refGet(Cell.get());
      benchmark::DoNotOptimize(V);
    }
  });
  State.SetLabel(modeName(State.range(0)));
}

void BM_RefSetDisentangled(benchmark::State &State) {
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Box(newRef(boxInt(7)));
    Local Cell(newRef(boxInt(0)));
    for (auto _ : State) {
      refSet(Cell.get(), Box.slot());
      benchmark::ClobberMemory();
    }
  });
  State.SetLabel(modeName(State.range(0)));
}

void BM_ArrayGetInt(benchmark::State &State) {
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Arr(newArray(1024, boxInt(3)));
    uint32_t I = 0;
    for (auto _ : State) {
      Slot V = arrGet(Arr.get(), I);
      benchmark::DoNotOptimize(V);
      I = (I + 1) & 1023;
    }
  });
  State.SetLabel(modeName(State.range(0)));
}

void BM_ImmutableRecordGet(benchmark::State &State) {
  // Immutable loads are barrier-free in every mode — the shielded path.
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Rec(newRecord(0, {boxInt(1), boxInt(2)}));
    for (auto _ : State) {
      Slot V = recGet(Rec.get(), 0);
      benchmark::DoNotOptimize(V);
    }
  });
  State.SetLabel(modeName(State.range(0)));
}

void BM_Allocation(benchmark::State &State) {
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    for (auto _ : State) {
      Object *O = newRecord(0, {boxInt(1), boxInt(2)});
      benchmark::DoNotOptimize(O);
    }
  });
  State.SetLabel(modeName(State.range(0)));
}

} // namespace

BENCHMARK(BM_RefGetDisentangled)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_RefSetDisentangled)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ArrayGetInt)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ImmutableRecordGet)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Allocation)->Arg(0)->Arg(1)->Arg(2);

BENCHMARK_MAIN();
