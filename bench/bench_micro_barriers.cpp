//===- bench/bench_micro_barriers.cpp - Barrier micro-costs ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Google-benchmark microbenchmarks for the entanglement barriers: the cost
// of a disentangled mutable load/store under Off / Detect / Manage. These
// are the per-operation numbers behind figure F2 — the paper's claim is
// that the managed read barrier is a single predictable ancestor check on
// disentangled data.
//
// The second benchmark argument arms the obs tracer (src/obs/Trace.h) for
// the measured loop: `manage` vs `manage+trace` is the per-op cost of the
// tracing hooks (disabled: one relaxed load + predictable branch; enabled:
// a 32-byte ring-buffer store). The third argument arms the memory
// governor (src/mm/MemoryGovernor.h) with a generous limit: `manage` vs
// `manage+gov` is the per-op cost of limit admission on the chunk
// acquisition path — zero for the barrier loops (they never acquire) and
// a per-chunk, not per-object, accounting charge for the allocation loop.
// The fourth argument arms the entanglement profiler (src/obs/Profile.h):
// `manage` vs `manage+prof` is the per-op cost of the profiler's armed
// check on the barrier paths — these loops are disentangled, so the slow
// paths never fire and the price is the relaxed flag load alone.
// Recorded in results/M1_barriers.txt.
//
// Accepts `-json <path>` (translated to google-benchmark's
// --benchmark_out=<path> in JSON format) so CI can archive the numbers.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "mm/MemoryGovernor.h"
#include "obs/Profile.h"
#include "obs/Trace.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

using namespace mpl;
using namespace mpl::ops;

namespace {

em::Mode modeOf(int64_t I) {
  switch (I) {
  case 0:
    return em::Mode::Off;
  case 1:
    return em::Mode::Detect;
  default:
    return em::Mode::Manage;
  }
}

const char *modeName(int64_t I) {
  return I == 0 ? "off" : (I == 1 ? "detect" : "manage");
}

/// RAII for the tracer + governor + profiler configuration of one benchmark
/// run; labels the state "<mode>", "<mode>+trace", "<mode>+gov" or
/// "<mode>+prof". The governed runs use a limit far above the benchmark's
/// residency, so they price the admission bookkeeping itself, never the
/// recovery ladder.
class TracerConfig {
public:
  TracerConfig(benchmark::State &State)
      : Traced(State.range(1) != 0), Governed(State.range(2) != 0),
        Profiled(State.range(3) != 0),
        SavedGov(MemoryGovernor::get().config()) {
    if (Traced) {
      obs::Tracer::get().clear();
      obs::Tracer::get().enable(obs::TraceOptions{});
    }
    if (Profiled) {
      obs::Profiler::get().reset();
      obs::Profiler::get().enable();
    }
    MemoryGovernor::Config G = SavedGov;
    G.LimitBytes = Governed ? (int64_t(4) << 30) : 0;
    MemoryGovernor::get().configure(G);
    State.SetLabel(std::string(modeName(State.range(0))) +
                   (Traced ? "+trace" : "") + (Governed ? "+gov" : "") +
                   (Profiled ? "+prof" : ""));
  }
  ~TracerConfig() {
    MemoryGovernor::get().configure(SavedGov);
    if (Profiled) {
      obs::Profiler::get().disable();
      obs::Profiler::get().reset();
    }
    if (Traced) {
      obs::Tracer::get().disable();
      obs::Tracer::get().clear();
    }
  }

private:
  bool Traced;
  bool Governed;
  bool Profiled;
  MemoryGovernor::Config SavedGov;
};

void BM_RefGetDisentangled(benchmark::State &State) {
  TracerConfig TC(State);
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Box(newRef(boxInt(7)));
    Local Cell(newRef(Box.slot())); // Pointer-valued ref: barrier fires.
    for (auto _ : State) {
      Slot V = refGet(Cell.get());
      benchmark::DoNotOptimize(V);
    }
  });
}

void BM_RefSetDisentangled(benchmark::State &State) {
  TracerConfig TC(State);
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Box(newRef(boxInt(7)));
    Local Cell(newRef(boxInt(0)));
    for (auto _ : State) {
      refSet(Cell.get(), Box.slot());
      benchmark::ClobberMemory();
    }
  });
}

void BM_ArrayGetInt(benchmark::State &State) {
  TracerConfig TC(State);
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Arr(newArray(1024, boxInt(3)));
    uint32_t I = 0;
    for (auto _ : State) {
      Slot V = arrGet(Arr.get(), I);
      benchmark::DoNotOptimize(V);
      I = (I + 1) & 1023;
    }
  });
}

void BM_ImmutableRecordGet(benchmark::State &State) {
  // Immutable loads are barrier-free in every mode — the shielded path.
  TracerConfig TC(State);
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    Local Rec(newRecord(0, {boxInt(1), boxInt(2)}));
    for (auto _ : State) {
      Slot V = recGet(Rec.get(), 0);
      benchmark::DoNotOptimize(V);
    }
  });
}

void BM_Allocation(benchmark::State &State) {
  TracerConfig TC(State);
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  Cfg.Mode = modeOf(State.range(0));
  rt::Runtime R(Cfg);
  R.run([&] {
    for (auto _ : State) {
      Object *O = newRecord(0, {boxInt(1), boxInt(2)});
      benchmark::DoNotOptimize(O);
    }
  });
}

} // namespace

#define MPL_BARRIER_ARGS                                                       \
  Args({0, 0, 0, 0})->Args({1, 0, 0, 0})->Args({2, 0, 0, 0})                   \
      ->Args({2, 1, 0, 0})->Args({2, 0, 1, 0})->Args({2, 0, 0, 1})
BENCHMARK(BM_RefGetDisentangled)->MPL_BARRIER_ARGS;
BENCHMARK(BM_RefSetDisentangled)->MPL_BARRIER_ARGS;
BENCHMARK(BM_ArrayGetInt)->MPL_BARRIER_ARGS;
BENCHMARK(BM_ImmutableRecordGet)->MPL_BARRIER_ARGS;
BENCHMARK(BM_Allocation)->MPL_BARRIER_ARGS;

// Hand-rolled main instead of BENCHMARK_MAIN(): translate our suite-wide
// `-json <path>` convention into google-benchmark's --benchmark_out flags
// before its own argv parsing sees them.
int main(int Argc, char **Argv) {
  std::vector<std::string> ArgStorage;
  for (int I = 0; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-json") == 0 && I + 1 < Argc) {
      ArgStorage.push_back(std::string("--benchmark_out=") + Argv[I + 1]);
      ArgStorage.push_back("--benchmark_out_format=json");
      ++I;
      continue;
    }
    ArgStorage.push_back(Argv[I]);
  }
  std::vector<char *> NewArgv;
  for (std::string &S : ArgStorage)
    NewArgv.push_back(S.data());
  int NewArgc = static_cast<int>(NewArgv.size());
  benchmark::Initialize(&NewArgc, NewArgv.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, NewArgv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
