//===- bench/bench_table_pml.cpp - PML carrier overhead ---------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Supplementary table: the same algorithm expressed three ways —
//   (1) native C++ (no managed runtime),
//   (2) the C++ embedding of the managed runtime (compiled barriers),
//   (3) PML compiled to bytecode and interpreted by the VM.
// The paper's carrier is a whole-program ML compiler; our PML carrier is a
// bytecode interpreter, so (3)/(2) isolates *interpreter* overhead from
// the runtime itself, and (2)/(1) isolates the runtime overhead the other
// tables study. Every (3) run still uses the full hierarchical-heap +
// entanglement machinery (the VM allocates everything on the runtime
// heaps).
//
//===----------------------------------------------------------------------===//

#include "baseline/Native.h"
#include "bench/Common.h"
#include "core/Em.h"
#include "obs/Span.h"
#include "pml/Vm.h"
#include "pml/jit/Jit.h"
#include "support/Cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace mpl;
using namespace mpl::bench;
using namespace mpl::ops;

namespace {

/// The four carrier kernels, shared by the main table and the JIT
/// ablation so both measure literally the same programs.
const char *FibSrc = "fun fib n = if n < 2 then n else fib (n-1) + "
                     "fib (n-2)\nfib 25";
const char *SumSrc =
    "fun loop i acc = if i = 3000000 then acc else loop (i+1) (acc+i)\n"
    "loop 0 0";
const char *SieveSrc =
    "val n = 200000\n"
    "val composite = alloc (n + 1) false\n"
    "fun mark m p = if m > n then () else (set composite m true; "
    "mark (m + p) p)\n"
    "fun sieve p = if p * p > n then () else\n"
    "  ((if get composite p then () else mark (p * p) p); "
    "sieve (p + 1))\n"
    "fun count i acc = if i > n then acc else\n"
    "  count (i + 1) (if get composite i then acc else acc + 1)\n"
    "sieve 2;\ncount 2 0";
const char *EffSrc =
    "effect Yield\n"
    "effect Out\n"
    "val acc = alloc 1 0\n"
    "fun produce i = if i = 2000 then () else (perform Yield i; "
    "produce (i + 1))\n"
    "fun stage1 u = handle produce 0 with\n"
    "  | Yield v k => (perform Out (v * 2 + 1); resume k ()) end\n"
    "fun sink u = handle stage1 () with\n"
    "  | Out v k => (set acc 0 (get acc 0 + v); resume k ()) end\n"
    "sink ();\nprintInt (get acc 0)";

/// Lower median across the timed reps — the statistic bench::measure uses.
double medianOf(std::vector<double> Times) {
  std::sort(Times.begin(), Times.end());
  return Times[(Times.size() - 1) / 2];
}

double timePml(const std::string &Src, int Reps, std::string *ValueOut) {
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    Cfg.Profile = false;
    rt::Runtime R(Cfg);
    Timer T;
    R.run([&] {
      std::string Output, Rendered, TypeStr;
      std::vector<std::string> Errors;
      bool Ok = pml::evalSource(Src, Output, Rendered, TypeStr, Errors);
      MPL_CHECK(Ok, "pml benchmark program failed");
      *ValueOut = Rendered;
    });
    Times.push_back(T.elapsedSec());
  }
  return medianOf(std::move(Times));
}

/// Like timePml but for effectful programs: the interesting result is the
/// printed output (not the final value), and the em continuation counters
/// of the run are reported so the CI gate (BENCH_T3, --gate-counters) can
/// hold the row's capture/resume traffic steady.
double timePmlEff(const std::string &Src, int Reps, std::string *OutputOut,
                  int64_t *CapturedOut, int64_t *ResumedOut) {
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    Cfg.Profile = false;
    em::Counts.reset();
    rt::Runtime R(Cfg);
    Timer T;
    R.run([&] {
      std::string Output, Rendered, TypeStr;
      std::vector<std::string> Errors;
      bool Ok = pml::evalSource(Src, Output, Rendered, TypeStr, Errors);
      MPL_CHECK(Ok, "pml benchmark program failed");
      *OutputOut = Output;
    });
    Times.push_back(T.elapsedSec());
    auto S = em::Counts.snapshot();
    *CapturedOut = S.ContCaptured;
    *ResumedOut = S.ContResumed;
  }
  return medianOf(std::move(Times));
}

/// One extra *untimed* run of \p Src with the causal span ledger armed
/// (obs/Span.h) — mirrors bench::measure's Spans rep. Returns the run's
/// critical-path fraction CP/W in percent, or -1 when the DAG is
/// incomplete. 100% on these 1-worker rows means a serial schedule; the
/// effect rows show how much of the VM's work the run's length depends on.
double pmlCpPct(const std::string &Src) {
  auto &Ledger = obs::SpanLedger::get();
  bool WasEnabled = Ledger.enabled();
  Ledger.enable();
  {
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    Cfg.Profile = false;
    rt::Runtime R(Cfg);
    R.run([&] {
      std::string Output, Rendered, TypeStr;
      std::vector<std::string> Errors;
      bool Ok = pml::evalSource(Src, Output, Rendered, TypeStr, Errors);
      MPL_CHECK(Ok, "pml benchmark program failed (spans rep)");
    });
  }
  if (!WasEnabled)
    Ledger.disable();
  obs::SpanRunSummary Sum = Ledger.lastRun();
  if (!Sum.Valid || Sum.LedgerWorkSec <= 0)
    return -1;
  return 100.0 * Sum.CriticalPathSec / Sum.LedgerWorkSec;
}

template <typename Fn>
double timeRt(Fn &&Body, int Reps, int64_t *ValueOut) {
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    Cfg.Profile = false;
    rt::Runtime R(Cfg);
    Timer T;
    R.run([&] { *ValueOut = Body(); });
    Times.push_back(T.elapsedSec());
  }
  return medianOf(std::move(Times));
}

template <typename Fn>
double timeNat(Fn &&Body, int Reps, int64_t *ValueOut) {
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    *ValueOut = Body();
    Times.push_back(T.elapsedSec());
  }
  return medianOf(std::move(Times));
}

//===----------------------------------------------------------------------===//
// Interp-vs-JIT x barrier-mode ablation
//===----------------------------------------------------------------------===//

/// One timed configuration of the ablation: a kernel under one barrier
/// mode and one tier, with the run's per-rep stats (reset before every
/// rep, so the medians and counters describe one repetition).
struct TierRun {
  double Sec = 0;
  std::vector<double> RepSec;
  std::string Output; ///< Print output of the (deterministic) run.
  std::string Value;  ///< Rendered final value.
  int64_t ContCaptured = 0;
  int64_t ContResumed = 0;
  int64_t LeakedPins = 0;
  int64_t JitCompiled = 0;
  int64_t JitEntries = 0;
  int64_t JitCodeBytes = 0;
};

TierRun timePmlTier(const std::string &Src, int Reps, em::Mode Mode,
                    bool UseJit) {
  TierRun R;
  for (int I = 0; I < Reps; ++I) {
    // Threshold 1 so the jit rows measure compiled code from the first
    // call — the ablation isolates template quality, not warmup policy.
    jit::setCompileThreshold(1);
    jit::setEnabled(UseJit);
    StatRegistry::get().resetAll();
    em::Counts.reset();
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    Cfg.Profile = false;
    Cfg.Mode = Mode;
    rt::Runtime Rt(Cfg);
    Timer T;
    Rt.run([&] {
      std::string Output, Rendered, TypeStr;
      std::vector<std::string> Errors;
      bool Ok = pml::evalSource(Src, Output, Rendered, TypeStr, Errors);
      MPL_CHECK(Ok, "pml ablation program failed");
      R.Output = Output;
      R.Value = Rendered;
    });
    R.RepSec.push_back(T.elapsedSec());
    em::CounterSnapshot S = em::Counts.snapshot();
    R.ContCaptured = S.ContCaptured;
    R.ContResumed = S.ContResumed;
    R.LeakedPins = S.livePinnedObjects();
    StatRegistry &Reg = StatRegistry::get();
    R.JitCompiled = Reg.valueOf("pml.jit.compiled");
    R.JitEntries = Reg.valueOf("pml.jit.entries");
    R.JitCodeBytes = Reg.valueOf("pml.jit.code_bytes");
    jit::setEnabled(false);
  }
  R.Sec = medianOf(R.RepSec);
  return R;
}

/// The kernel's integer checksum: the rendered value when the program has
/// one, else the printed output (the effects kernel prints its result).
int64_t tierChecksum(const TierRun &R) {
  const std::string &S = R.Value.empty() || R.Value == "()"
                             ? R.Output
                             : R.Value;
  return std::strtoll(S.c_str(), nullptr, 10);
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  std::string JsonPath = C.getString("json", "");

  std::printf("== Supplementary: carrier overhead — native C++ vs C++ "
              "embedding vs PML VM (1 worker) ==\n%s\n",
              methodologyLine(Reps).c_str());
  BenchJson J("table_pml", /*Scale=*/1.0, Reps);

  Table T({"benchmark", "native C++", "C++ embedding", "PML (VM)",
           "vm/embed", "embed/native", "cp%"});

  auto AddJson = [&](const char *Name, double Nat, double Rt, double Pml,
                     double CpPct) {
    char Extra[160];
    std::snprintf(Extra, sizeof(Extra),
                  "\"native_s\":%.9g,\"embedding_s\":%.9g,\"cp_pct\":%.4g",
                  Nat, Rt, CpPct);
    J.addCustomRow(Name, "pml-vm-w1", Pml, Extra);
  };
  auto CpCell = [](double CpPct) {
    return CpPct >= 0 ? Table::fmtPct(CpPct) : std::string("-");
  };

  // fib(25), identical recursion everywhere.
  {
    int64_t NatV = 0, RtV = 0;
    std::string PmlV;
    double Nat = timeNat([&] { return nat::fib(25); }, Reps, &NatV);
    double Rt = timeRt([&] { return wl::fib(25, 25); }, Reps, &RtV);
    const char *Src = FibSrc;
    double Pml = timePml(Src, Reps, &PmlV);
    MPL_CHECK(NatV == RtV && PmlV == std::to_string(NatV),
              "fib results disagree");
    double Cp = pmlCpPct(Src);
    T.addRow({"fib(25)", Table::fmtSec(Nat), Table::fmtSec(Rt),
              Table::fmtSec(Pml), Table::fmtRatio(Pml / Rt),
              Table::fmtRatio(Rt / Nat), CpCell(Cp)});
    AddJson("fib-25", Nat, Rt, Pml, Cp);
  }

  // Tail-loop sum of 0..N-1 (loop overhead; the embedding uses an array
  // walk for a comparable memory access pattern).
  {
    constexpr int64_t N = 3'000'000;
    int64_t NatV = 0, RtV = 0;
    std::string PmlV;
    double Nat = timeNat(
        [&] {
          volatile int64_t Acc = 0;
          for (int64_t I = 0; I < N; ++I)
            Acc += I;
          return static_cast<int64_t>(Acc);
        },
        Reps, &NatV);
    double Rt = timeRt(
        [&] {
          Local A(wl::tabulate(N, [](int64_t I) { return boxInt(I); }, N));
          return wl::sumInts(A.get(), N);
        },
        Reps, &RtV);
    const char *Src = SumSrc;
    double Pml = timePml(Src, Reps, &PmlV);
    MPL_CHECK(NatV == RtV && PmlV == std::to_string(NatV),
              "sum results disagree");
    double Cp = pmlCpPct(Src);
    T.addRow({"sum 3M", Table::fmtSec(Nat), Table::fmtSec(Rt),
              Table::fmtSec(Pml), Table::fmtRatio(Pml / Rt),
              Table::fmtRatio(Rt / Nat), CpCell(Cp)});
    AddJson("sum-3m", Nat, Rt, Pml, Cp);
  }

  // Sieve of Eratosthenes over 200k (array mutation heavy).
  {
    constexpr int64_t N = 200'000;
    int64_t NatV = 0, RtV = 0;
    std::string PmlV;
    double Nat = timeNat([&] { return nat::primesCount(N); }, Reps, &NatV);
    double Rt = timeRt(
        [&] {
          Local P(wl::primesUpTo(N, N + 2));
          return static_cast<int64_t>(arrLen(P.get()));
        },
        Reps, &RtV);
    const char *Src = SieveSrc;
    double Pml = timePml(Src, Reps, &PmlV);
    MPL_CHECK(NatV == RtV && PmlV == std::to_string(NatV),
              "sieve results disagree");
    double Cp = pmlCpPct(Src);
    T.addRow({"primes 200k", Table::fmtSec(Nat), Table::fmtSec(Rt),
              Table::fmtSec(Pml), Table::fmtRatio(Pml / Rt),
              Table::fmtRatio(Rt / Nat), CpCell(Cp)});
    AddJson("primes-200k", Nat, Rt, Pml, Cp);
  }

  // Two-stage generator/async pipeline built from effect handlers: a
  // producer Yields 0..N-1, a middle handler transforms each element and
  // re-performs it outward, the sink accumulates. Every element crosses
  // two handlers, so the row's cost is dominated by continuation
  // capture/resume (2N captures + 2N resumes). The native/embedding
  // columns run the same arithmetic as a plain loop — the vm/embed ratio
  // is therefore the *whole* cost of first-class effects in the VM.
  {
    constexpr int64_t N = 2'000;
    int64_t NatV = 0, RtV = 0;
    std::string PmlOut;
    int64_t Captured = 0, Resumed = 0;
    auto Loop = [] {
      volatile int64_t Acc = 0;
      for (int64_t I = 0; I < N; ++I)
        Acc += I * 2 + 1;
      return static_cast<int64_t>(Acc);
    };
    double Nat = timeNat(Loop, Reps, &NatV);
    double Rt = timeRt(Loop, Reps, &RtV);
    const char *Src = EffSrc;
    double Pml = timePmlEff(Src, Reps, &PmlOut, &Captured, &Resumed);
    MPL_CHECK(NatV == RtV && PmlOut == std::to_string(NatV) + "\n",
              "pipeline results disagree");
    MPL_CHECK(Captured == 2 * N && Resumed == 2 * N,
              "pipeline capture/resume counts off");
    double Cp = pmlCpPct(Src);
    T.addRow({"eff-pipeline 2k", Table::fmtSec(Nat), Table::fmtSec(Rt),
              Table::fmtSec(Pml), Table::fmtRatio(Pml / Rt),
              Table::fmtRatio(Rt / Nat), CpCell(Cp)});
    char Extra[256];
    std::snprintf(Extra, sizeof(Extra),
                  "\"native_s\":%.9g,\"embedding_s\":%.9g,\"cp_pct\":%.4g,"
                  "\"em\":{\"cont_captured\":%lld,\"cont_resumed\":%lld},"
                  "\"checksum\":%lld",
                  Nat, Rt, Cp, (long long)Captured, (long long)Resumed,
                  (long long)NatV);
    J.addCustomRow("eff-pipeline-2k", "pml-vm-w1", Pml, Extra);
  }

  T.print();
  std::printf("\nvm/embed isolates bytecode-interpretation cost; the "
              "paper's MPL compiles to\nnative code, so its carrier "
              "overhead corresponds to our 'C++ embedding' column.\n");

  // JIT ablation: the same four kernels, interpreter vs template JIT,
  // under each barrier mode. The interp and jit runs of a config must
  // print/return identical results (the differential contract, enforced
  // here at bench scale too) and leak zero pins; the JSON rows carry the
  // pml.jit.* counters and per-rep times so CI can arm the stddev-aware
  // time gate for the jit rows (tools/ci.sh, --time-gate-config pml-jit).
  {
    struct Kernel {
      const char *Name;
      const char *Src;
    };
    const Kernel Kernels[] = {{"fib-25", FibSrc},
                              {"sum-3m", SumSrc},
                              {"primes-200k", SieveSrc},
                              {"eff-pipeline-2k", EffSrc}};
    struct ModeCase {
      em::Mode Mode;
      const char *Name;
    };
    const ModeCase Modes[] = {{em::Mode::Off, "off"},
                              {em::Mode::Detect, "detect"},
                              {em::Mode::Manage, "manage"}};

    std::printf("\n== JIT ablation: interp vs jit x barrier mode "
                "(1 worker, MPL_JIT_THRESHOLD=1) ==\n");
    bool JitLive = [] {
      jit::setEnabled(true);
      bool On = jit::enabled();
      jit::setEnabled(false);
      return On;
    }();
    if (!JitLive)
      std::printf("note: jit unavailable in this build (tsan or non-x86-64) "
                  "— jit rows below run interpreted.\n");

    Table A({"benchmark", "mode", "interp", "jit", "speedup", "jit fns",
             "code KiB"});
    for (const Kernel &K : Kernels) {
      for (const ModeCase &M : Modes) {
        TierRun In = timePmlTier(K.Src, Reps, M.Mode, /*UseJit=*/false);
        TierRun Jt = timePmlTier(K.Src, Reps, M.Mode, /*UseJit=*/true);
        MPL_CHECK(In.Output == Jt.Output && In.Value == Jt.Value,
                  "interp and jit runs disagree");
        MPL_CHECK(tierChecksum(In) == tierChecksum(Jt),
                  "interp and jit checksums disagree");
        MPL_CHECK(In.LeakedPins == 0 && Jt.LeakedPins == 0,
                  "ablation run leaked pins");
        MPL_CHECK(In.ContCaptured == Jt.ContCaptured &&
                      In.ContResumed == Jt.ContResumed,
                  "interp and jit continuation traffic disagree");
        // Total JIT loss (env plumbing broken, tiering never fires) must
        // fail here deterministically: the counter gate is upward-only,
        // so a drop to zero compiled functions would pass it, and the
        // time gate's floor is too wide to catch it on the flatter
        // kernels.
        MPL_CHECK(Jt.JitCompiled > 0 && Jt.JitEntries > 0,
                  "jit ablation cell did not tier any function");
        char KiB[32];
        std::snprintf(KiB, sizeof(KiB), "%.1f",
                      static_cast<double>(Jt.JitCodeBytes) / 1024.0);
        A.addRow({K.Name, M.Name, Table::fmtSec(In.Sec),
                  Table::fmtSec(Jt.Sec), Table::fmtRatio(In.Sec / Jt.Sec),
                  std::to_string(Jt.JitCompiled), KiB});
        auto AddAbl = [&](const std::string &Cfg, const TierRun &R) {
          std::string Extra =
              "\"em\":{\"cont_captured\":" + std::to_string(R.ContCaptured) +
              ",\"cont_resumed\":" + std::to_string(R.ContResumed) + "}";
          if (R.JitCompiled > 0)
            Extra += ",\"jit\":{\"compiled\":" +
                     std::to_string(R.JitCompiled) +
                     ",\"entries\":" + std::to_string(R.JitEntries) +
                     ",\"code_bytes\":" + std::to_string(R.JitCodeBytes) +
                     "}";
          Extra += ",\"profile\":{\"leaked_pins\":" +
                   std::to_string(R.LeakedPins) + ",\"leaked_bytes\":0}";
          Extra += ",\"checksum\":" + std::to_string(tierChecksum(R));
          J.addCustomRow(K.Name, Cfg, R.Sec, R.RepSec, Extra);
        };
        AddAbl(std::string("pml-interp-") + M.Name, In);
        AddAbl(std::string("pml-jit-") + M.Name, Jt);
      }
    }
    A.print();
    std::printf("\nspeedup = interp/jit at identical checksums and em "
                "counters; 'jit fns' is the\nnumber of functions tiered up "
                "at threshold 1, 'code KiB' the executable bytes.\n");
  }

  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
