//===- bench/bench_fig_spacetime.cpp - Figure F3: space over time -----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the space-over-time figure for an entangled run: a sampler
// thread records total residency and outstanding pinned bytes while the
// dedup benchmark executes; the series is printed as (ms, residency,
// pinned) rows suitable for plotting. The paper's claim: pinned (entangled)
// space rises while siblings communicate and drops back at joins — the
// space cost of entanglement is transient and bounded.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int64_t SampleUs = C.getInt("sample-us", 500);
  std::string JsonPath = C.getString("json", "");

  std::printf("== F3: residency and pinned bytes over time (dedup-ht, "
              "2 workers, scale=%.2f) ==\n",
              Scale);

  struct Sample {
    int64_t Ms;
    int64_t Residency;
    int64_t Pinned;
  };
  std::vector<Sample> Samples;
  std::atomic<bool> Done{false};

  StatRegistry::get().resetAll();
  int64_t Start = nowNs();
  std::thread Sampler([&] {
    StatRegistry &Reg = StatRegistry::get();
    while (!Done.load(std::memory_order_acquire)) {
      int64_t Pinned =
          Reg.valueOf("em.pinned.bytes") - Reg.valueOf("em.unpins.bytes");
      Samples.push_back({(nowNs() - Start) / 1'000'000,
                         rt::Runtime::residencyBytes(), Pinned});
      std::this_thread::sleep_for(std::chrono::microseconds(SampleUs));
    }
  });

  {
    rt::Config Cfg;
    Cfg.NumWorkers = 2;
    Cfg.Profile = false;
    rt::Runtime R(Cfg);
    const int64_t NDedup =
        std::max<int64_t>(1024, static_cast<int64_t>(1'000'000 * Scale));
    int64_t Distinct = 0;
    R.run([&] {
      Local K(wl::randomInts(NDedup, NDedup / 4, 23));
      Distinct = wl::dedup(K.get(), 512);
    });
    std::printf("distinct keys: %lld\n", static_cast<long long>(Distinct));
  }
  Done.store(true, std::memory_order_release);
  Sampler.join();

  // Thin the series to at most ~60 printed rows.
  size_t Step = std::max<size_t>(1, Samples.size() / 60);
  Table T({"t(ms)", "residency", "pinned"});
  for (size_t I = 0; I < Samples.size(); I += Step)
    T.addRow({Table::fmtInt(Samples[I].Ms),
              Table::fmtBytes(Samples[I].Residency),
              Table::fmtBytes(Samples[I].Pinned)});
  T.print();

  int64_t FinalPinned = StatRegistry::get().valueOf("em.pinned.bytes") -
                        StatRegistry::get().valueOf("em.unpins.bytes");
  std::printf("\nfinal outstanding pinned bytes: %lld (joins release "
              "entanglement)\n",
              static_cast<long long>(FinalPinned));

  if (!JsonPath.empty()) {
    BenchJson J("fig_spacetime", Scale, /*Reps=*/1);
    J.addMetaInt("sample_us", SampleUs);
    J.addMetaInt("final_pinned_bytes", FinalPinned);
    std::string Extra = "\"samples\":[";
    for (size_t I = 0; I < Samples.size(); ++I) {
      if (I)
        Extra += ",";
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf),
                    "{\"ms\":%lld,\"residency\":%lld,\"pinned\":%lld}",
                    static_cast<long long>(Samples[I].Ms),
                    static_cast<long long>(Samples[I].Residency),
                    static_cast<long long>(Samples[I].Pinned));
      Extra += Buf;
    }
    Extra += "]";
    J.addCustomRow("dedup-ht", "spacetime-w2",
                   Samples.empty()
                       ? 0.0
                       : static_cast<double>(Samples.back().Ms) * 1e-3,
                   Extra);
    if (!J.write(JsonPath))
      return 1;
  }
  return 0;
}
