//===- bench/Common.h - Shared benchmark harness ---------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite and measurement helpers shared by every bench
/// binary. Each binary regenerates one table/figure of the paper's
/// evaluation (see DESIGN.md §5 and EXPERIMENTS.md).
///
/// Measurement methodology (1-core container; DESIGN.md §2):
///  - T_s: the kernel with all parallel grains >= n, Mode::Off, 1 worker —
///    our analogue of the sequential-runtime (MLton) baseline. Entangled
///    benchmarks cannot run without management, so their T_s uses Manage
///    (that *is* the paper's point) and is flagged in the output.
///  - T_1: 1 worker, full entanglement management, profiled.
///  - T_P: Brent bound W/P + S from the measured work W and span S.
///  - R_*: peak chunk-pool residency (mm.bytes.peak).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_BENCH_COMMON_H
#define MPL_BENCH_COMMON_H

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "workloads/Collections.h"
#include "workloads/Entangled.h"
#include "workloads/Graph.h"
#include "workloads/Kernels.h"
#include "workloads/Quickhull.h"

#include <functional>
#include <string>
#include <vector>

namespace mpl {
namespace bench {

/// One benchmark of the suite. `Run(Sequential)` executes the kernel —
/// sequentially (grain >= n, for the T_s baseline) or with its parallel
/// grain — and returns a checksum used to validate the run.
struct SuiteEntry {
  std::string Name;
  bool Entangled = false;
  std::function<int64_t(bool Sequential)> Run;
};

/// Builds the benchmark suite. \p Scale in (0, 1] shrinks the default
/// problem sizes (which target ~0.2-1s per run on one core).
std::vector<SuiteEntry> makeSuite(double Scale = 1.0);

/// Snapshot of the entanglement/GC statistics relevant to the tables.
struct StatSnap {
  int64_t EntangledReads = 0;
  int64_t PinsDown = 0;
  int64_t PinsCross = 0;
  int64_t PinsHolder = 0;
  int64_t PinnedObjects = 0;
  int64_t PinnedBytes = 0;
  int64_t Unpins = 0;
  int64_t GcCount = 0;
  int64_t GcMaxPauseNs = 0;
  int64_t GcTotalPauseNs = 0;
  int64_t GcInPlaceBytes = 0;
  int64_t PeakResidency = 0;

  static StatSnap read();
};

/// Result of one measured execution.
struct RunResult {
  double Seconds = 0;
  WorkSpan WS;
  int64_t Checksum = 0;
  StatSnap Stats;
};

/// Runs \p Entry once under the given configuration, with stats reset
/// before the timed region. When \p Reps > 1, the minimum time (and its
/// accompanying data) is reported, the standard practice for wall-clock
/// tables on shared machines.
RunResult measure(const SuiteEntry &Entry, bool Sequential, int Workers,
                  em::Mode Mode, bool Profile, int Reps = 3);

} // namespace bench
} // namespace mpl

#endif // MPL_BENCH_COMMON_H
