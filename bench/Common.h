//===- bench/Common.h - Shared benchmark harness ---------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite and measurement helpers shared by every bench
/// binary. Each binary regenerates one table/figure of the paper's
/// evaluation (see DESIGN.md §5 and EXPERIMENTS.md).
///
/// Measurement methodology (1-core container; DESIGN.md §2):
///  - T_s: the kernel with all parallel grains >= n, Mode::Off, 1 worker —
///    our analogue of the sequential-runtime (MLton) baseline. Entangled
///    benchmarks cannot run without management, so their T_s uses Manage
///    (that *is* the paper's point) and is flagged in the output.
///  - T_1: 1 worker, full entanglement management, profiled.
///  - T_P: Brent bound W/P + S from the measured work W and span S.
///  - R_*: peak chunk-pool residency (mm.bytes.peak).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_BENCH_COMMON_H
#define MPL_BENCH_COMMON_H

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "workloads/Collections.h"
#include "workloads/Entangled.h"
#include "workloads/Graph.h"
#include "workloads/Kernels.h"
#include "workloads/Quickhull.h"

#include <functional>
#include <string>
#include <vector>

namespace mpl {
namespace bench {

/// One benchmark of the suite. `Run(Sequential)` executes the kernel —
/// sequentially (grain >= n, for the T_s baseline) or with its parallel
/// grain — and returns a checksum used to validate the run.
struct SuiteEntry {
  std::string Name;
  bool Entangled = false;
  std::function<int64_t(bool Sequential)> Run;
};

/// Builds the benchmark suite. \p Scale in (0, 1] shrinks the default
/// problem sizes (which target ~0.2-1s per run on one core).
std::vector<SuiteEntry> makeSuite(double Scale = 1.0);

/// Snapshot of the entanglement/GC statistics relevant to the tables.
struct StatSnap {
  int64_t EntangledReads = 0;
  int64_t PinsDown = 0;
  int64_t PinsCross = 0;
  int64_t PinsHolder = 0;
  int64_t PinnedObjects = 0;
  int64_t PinnedBytes = 0;
  int64_t Unpins = 0;
  int64_t ContCaptured = 0; ///< pml continuations captured (em.cont.captured).
  int64_t ContResumed = 0;  ///< pml continuations resumed (em.cont.resumed).
  int64_t JitCompiled = 0;  ///< pml functions tiered up (pml.jit.compiled).
  int64_t JitEntries = 0;   ///< dispatcher entries into native code.
  int64_t JitCodeBytes = 0; ///< executable bytes published (pml.jit.code_bytes).
  int64_t GcCount = 0;
  int64_t GcMaxPauseNs = 0;
  int64_t GcTotalPauseNs = 0;
  int64_t GcInPlaceBytes = 0;
  int64_t PeakResidency = 0;

  static StatSnap read();
};

/// One entanglement-profiler site row (obs/Profile.h) carried into the
/// bench JSON records.
struct ProfileSiteRow {
  std::string Name;
  int64_t Events = 0;
  int64_t Bytes = 0;
  int64_t LifetimeP50Ns = 0;
  int64_t LifetimeP99Ns = 0;
};

/// Span-ledger snapshot (obs/Span.h) from one extra *untimed* repetition
/// run with the causal span ledger armed — attached only when measure()
/// is called with Spans=true, so the published times never carry the
/// ledger's overhead. CriticalPathSec/WorkSec come from the ledger DAG;
/// AgreementPct is the ledger-vs-scheduler consistency check.
struct SpanSnap {
  bool Valid = false;
  int64_t Tasks = 0;
  int64_t Stolen = 0;
  double WorkSec = 0;
  double CriticalPathSec = 0;
  double AgreementPct = 0;

  /// Critical-path fraction CP/W in percent — the table column. 100% on
  /// one worker means a serial schedule; low % means slack to steal.
  double cpPct() const {
    return WorkSec > 0 ? 100.0 * CriticalPathSec / WorkSec : 0;
  }
};

/// Result of one measured configuration.
///
/// Headline statistic: the (lower) median across the timed repetitions —
/// Seconds is always one actually-measured rep, so WS/Stats/profile data
/// come from that same rep and stay mutually consistent. MinSeconds /
/// StddevSeconds / RepSeconds carry the full spread for the JSON records.
struct RunResult {
  double Seconds = 0;        ///< Median (lower) across timed reps.
  double MinSeconds = 0;
  double StddevSeconds = 0;  ///< Sample stddev (0 when Reps == 1).
  std::vector<double> RepSeconds;
  WorkSpan WS;               ///< From the median rep.
  int64_t Checksum = 0;
  StatSnap Stats;            ///< From the median rep.

  /// Site-attributed entanglement profile of the median rep (empty unless
  /// measured with SiteProfile; empty for disentangled runs regardless).
  std::vector<ProfileSiteRow> ProfileSites;
  int64_t ProfileLeakedPins = 0;
  int64_t ProfileLeakedBytes = 0;

  /// Sum of bytes attributed to pin sites ("em.pin.*" / "hh.pin"): equals
  /// Stats.PinnedBytes when the profiler attributed every pin.
  int64_t profilePinnedBytes() const;

  /// Span-ledger snapshot of the extra untimed rep (Valid only when
  /// measured with Spans=true and the ledger captured a complete DAG).
  SpanSnap Spans;
};

/// Runs \p Entry under the given configuration, with stats reset before
/// every timed region. Rep -1 is an untimed warmup (chunk pool + page
/// faults); the reported statistic is the lower median across the \p Reps
/// timed repetitions. With \p SiteProfile the entanglement profiler
/// (obs/Profile.h) is armed around every rep and the median rep's site
/// table is attached to the result — this adds slow-path overhead, so time
/// tables keep it off except for entanglement-focused rows. With \p Spans
/// one extra untimed rep runs with the causal span ledger armed and its
/// DAG summary is attached as RunResult::Spans (the cp%% table column).
RunResult measure(const SuiteEntry &Entry, bool Sequential, int Workers,
                  em::Mode Mode, bool Profile, int Reps = 3,
                  bool SiteProfile = false, bool Spans = false);

/// The one-line methodology statement every bench table prints under its
/// header, so the text and JSON outputs agree on the statistic.
std::string methodologyLine(int Reps);

/// "12.3ms +-0.4" — median with sample stddev, for time-table cells.
std::string fmtSecPm(double MedianSec, double StddevSec);

/// Accumulates schema-versioned benchmark records and writes the `-json`
/// output file. Schema "mpl-bench/1": see tools/mpl_report.cpp (the
/// renderer / regression gate) for the consumer side.
class BenchJson {
public:
  BenchJson(std::string BenchId, double Scale, int Reps);

  /// Extra top-level metadata (string / integer valued).
  void addMeta(const std::string &Key, const std::string &Value);
  void addMetaInt(const std::string &Key, int64_t Value);

  /// One full measured row. (\p Name, \p Config) must be unique: the
  /// regression gate joins baseline and current on that key.
  void addRow(const std::string &Name, const std::string &Config,
              bool Entangled, const RunResult &R);

  /// Escape hatch for binaries with hand-rolled measurement loops
  /// (bench_table_lang, bench_table_pml, bench_fig_spacetime):
  /// \p ExtraJson is a pre-rendered fragment of additional fields, e.g.
  /// "\"native_s\":0.123" (may be empty).
  void addCustomRow(const std::string &Name, const std::string &Config,
                    double MedianSec, const std::string &ExtraJson);

  /// addCustomRow variant that also records the per-rep times (and the
  /// sample stddev recomputed from them), so hand-rolled rows can feed the
  /// stddev-aware time gate like measure()d rows do (BENCH_T3 jit rows).
  void addCustomRow(const std::string &Name, const std::string &Config,
                    double MedianSec, const std::vector<double> &RepSeconds,
                    const std::string &ExtraJson);

  std::string dump() const;

  /// Writes dump() to \p Path; prints a diagnostic and returns false on
  /// I/O failure.
  bool write(const std::string &Path) const;

private:
  std::string Header;
  std::vector<std::string> Rows;
};

} // namespace bench
} // namespace mpl

#endif // MPL_BENCH_COMMON_H
