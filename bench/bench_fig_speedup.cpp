//===- bench/bench_fig_speedup.cpp - Paper figure F1: speedup curves -------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the speedup-vs-processors figure for selected benchmarks.
// Work W and span S are measured on one core with the scheduler's DAG
// profiler; T_P is the greedy-scheduler bound W/P + S, the model MPL's
// work-stealing scheduler provably achieves within constant factors
// (DESIGN.md §2 documents this substitution for the authors' 72-core
// machine). Speedups are relative to the sequential baseline T_s, as in
// the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  std::string JsonPath = C.getString("json", "");

  const int Procs[] = {1, 2, 4, 8, 16, 32, 64, 72};
  const char *Selected[] = {"fib", "msort", "primes", "bfs", "dedup-ht"};

  std::printf("== F1: speedup curves, T_s / (W/P + S) (scale=%.2f) ==\n%s\n",
              Scale, methodologyLine(Reps).c_str());
  BenchJson J("fig_speedup", Scale, Reps);

  std::vector<std::string> Header{"benchmark"};
  for (int P : Procs)
    Header.push_back("P=" + std::to_string(P));
  Table T(std::move(Header));

  for (const SuiteEntry &E : makeSuite(Scale)) {
    bool Wanted = false;
    for (const char *S : Selected)
      Wanted |= E.Name == S;
    if (!Wanted)
      continue;

    em::Mode SeqMode = E.Entangled ? em::Mode::Manage : em::Mode::Off;
    RunResult Seq = measure(E, true, 1, SeqMode, false, Reps);
    RunResult Par = measure(E, false, 1, em::Mode::Manage, true, Reps);

    std::vector<std::string> Row{E.Name};
    std::string Curve = "\"speedup\":[";
    for (size_t I = 0; I < sizeof(Procs) / sizeof(Procs[0]); ++I) {
      int P = Procs[I];
      double S = Seq.Seconds / Par.WS.predictedTime(P);
      Row.push_back(Table::fmtRatio(S));
      if (I)
        Curve += ",";
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "{\"p\":%d,\"x\":%.4g}", P, S);
      Curve += Buf;
    }
    Curve += "]";
    T.addRow(std::move(Row));
    J.addRow(E.Name, "seq", E.Entangled, Seq);
    J.addRow(E.Name, "par-w1", E.Entangled, Par);
    J.addCustomRow(E.Name, "speedup-curve", Par.Seconds, Curve);
  }
  T.print();
  std::printf("\nEach cell is the predicted speedup over the sequential "
              "baseline. Curves flatten\nwhere W/P approaches S — the "
              "paper's figures show the same saturation shape.\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
