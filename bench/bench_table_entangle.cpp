//===- bench/bench_table_entangle.cpp - Paper table T4: entanglement stats -===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the entanglement-statistics table: per benchmark, how many
// entangled reads the read barrier observed, how many objects each pin
// class pinned, total pinned bytes, and how many pins the joins released.
// The paper's claims this table tests:
//   * the disentangled suite has (near-)zero entanglement events — they pay
//     only the barrier checks ("shielding");
//   * the entangled suite's pins are all released by joins (no leak);
//   * pinned bytes (the space cost) are small relative to the heap.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);

  std::printf("== T4: entanglement statistics (scale=%.2f, 2 workers) ==\n",
              Scale);

  Table T({"benchmark", "ent-reads", "pins-down", "pins-cross", "pins-holder",
           "pinned-objs", "pinned-bytes", "unpins", "leaked-pins"});

  for (const SuiteEntry &E : makeSuite(Scale)) {
    RunResult R = measure(E, /*Sequential=*/false, /*Workers=*/2,
                          em::Mode::Manage, /*Profile=*/false, /*Reps=*/1);
    int64_t PinnedObjects = R.Stats.PinnedObjects;

    T.addRow({E.Name + (E.Entangled ? " (ent)" : ""),
              Table::fmtInt(R.Stats.EntangledReads),
              Table::fmtInt(R.Stats.PinsDown),
              Table::fmtInt(R.Stats.PinsCross),
              Table::fmtInt(R.Stats.PinsHolder),
              Table::fmtInt(PinnedObjects),
              Table::fmtBytes(R.Stats.PinnedBytes),
              Table::fmtInt(R.Stats.Unpins),
              Table::fmtInt(PinnedObjects - R.Stats.Unpins)});
  }
  T.print();
  std::printf("\npins-down/cross/holder count barrier *events* (re-pins "
              "included); pinned-objs\ncounts distinct objects. leaked-pins "
              "= pinned-objs - unpins must be 0: every\nentanglement "
              "candidate is released by a join.\n");
  return 0;
}
