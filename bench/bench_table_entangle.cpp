//===- bench/bench_table_entangle.cpp - Paper table T4: entanglement stats -===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the entanglement-statistics table: per benchmark, how many
// entangled reads the read barrier observed, how many objects each pin
// class pinned, total pinned bytes, and how many pins the joins released.
// The paper's claims this table tests:
//   * the disentangled suite has (near-)zero entanglement events — they pay
//     only the barrier checks ("shielding");
//   * the entangled suite's pins are all released by joins (no leak);
//   * pinned bytes (the space cost) are small relative to the heap.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  std::string JsonPath = C.getString("json", "");

  std::printf("== T4: entanglement statistics (scale=%.2f, 2 workers) ==\n%s\n",
              Scale, methodologyLine(1).c_str());

  Table T({"benchmark", "ent-reads", "pins-down", "pins-cross", "pins-holder",
           "pinned-objs", "pinned-bytes", "prof-bytes", "unpins",
           "leaked-pins"});
  BenchJson J("table_entangle", Scale, /*Reps=*/1);
  J.addMetaInt("workers", 2);

  for (const SuiteEntry &E : makeSuite(Scale)) {
    // SiteProfile: every pin in this table must be attributed to a named
    // barrier site, and the live-pin table must drain to zero at the join.
    RunResult R = measure(E, /*Sequential=*/false, /*Workers=*/2,
                          em::Mode::Manage, /*Profile=*/false, /*Reps=*/1,
                          /*SiteProfile=*/true);
    int64_t PinnedObjects = R.Stats.PinnedObjects;
    // The profiler and the em counters observe the same chokepoint
    // (Heap::addPinned), and both are read from the same rep: the profiler
    // must attribute 100% of the pinned bytes to named sites.
    MPL_CHECK(R.profilePinnedBytes() == R.Stats.PinnedBytes,
              "profiler lost track of pinned bytes");
    MPL_CHECK(R.ProfileLeakedPins == 0, "pins survived final join");

    T.addRow({E.Name + (E.Entangled ? " (ent)" : ""),
              Table::fmtInt(R.Stats.EntangledReads),
              Table::fmtInt(R.Stats.PinsDown),
              Table::fmtInt(R.Stats.PinsCross),
              Table::fmtInt(R.Stats.PinsHolder),
              Table::fmtInt(PinnedObjects),
              Table::fmtBytes(R.Stats.PinnedBytes),
              Table::fmtBytes(R.profilePinnedBytes()),
              Table::fmtInt(R.Stats.Unpins),
              Table::fmtInt(PinnedObjects - R.Stats.Unpins)});
    J.addRow(E.Name, "par-w2", E.Entangled, R);
  }
  T.print();
  std::printf("\npins-down/cross/holder count barrier *events* (re-pins "
              "included); pinned-objs\ncounts distinct objects. leaked-pins "
              "= pinned-objs - unpins must be 0: every\nentanglement "
              "candidate is released by a join. prof-bytes is the site-"
              "attributed\nprofiler total (obs/Profile.h) and must equal "
              "pinned-bytes.\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
