//===- bench/Common.cpp - Shared benchmark harness --------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace bench {

namespace {
int64_t scaled(double Scale, int64_t N) {
  return std::max<int64_t>(1024, static_cast<int64_t>(N * Scale));
}
} // namespace

std::vector<SuiteEntry> makeSuite(double Scale) {
  std::vector<SuiteEntry> Suite;

  const int64_t NTab = scaled(Scale, 20'000'000);
  const int64_t NScan = scaled(Scale, 8'000'000);
  const int64_t NSort = scaled(Scale, 2'000'000);
  const int64_t NQSort = scaled(Scale, 1'000'000);
  const int64_t NPrimes = scaled(Scale, 8'000'000);
  const int64_t NText = scaled(Scale, 30'000'000);
  const int64_t NHist = scaled(Scale, 15'000'000);
  const int64_t NGraph = scaled(Scale, 500'000);
  const int64_t NDedup = scaled(Scale, 1'000'000);
  const int64_t NChan = scaled(Scale, 150'000);
  const int64_t NExch = scaled(Scale, 200'000);
  const int64_t FibN = Scale >= 1.0 ? 33 : (Scale >= 0.25 ? 30 : 26);

  Suite.push_back({"fib", false, [=](bool Seq) {
                     return wl::fib(FibN, Seq ? FibN : 18);
                   }});

  Suite.push_back({"tabulate", false, [=](bool Seq) {
                     Local A(wl::tabulate(
                         NTab,
                         [](int64_t I) {
                           return boxInt(static_cast<int64_t>(hash64(
                               static_cast<uint64_t>(I))));
                         },
                         Seq ? NTab : wl::DefaultGrain));
                     return static_cast<int64_t>(arrLen(A.get()));
                   }});

  Suite.push_back({"map-reduce", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NTab : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NTab, [](int64_t I) { return boxInt(I & 0xff); },
                         Grain));
                     return wl::sumInts(A.get(), Grain);
                   }});

  Suite.push_back({"scan", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NScan : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NScan, [](int64_t I) { return boxInt(I & 0xf); },
                         Grain));
                     Local S(wl::scanPlus(A.get(), Grain));
                     return unboxInt(recGet(S.get(), 1));
                   }});

  Suite.push_back({"filter", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NScan : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NScan,
                         [](int64_t I) {
                           return boxInt(static_cast<int64_t>(
                               hash64(static_cast<uint64_t>(I)) & 0xffff));
                         },
                         Grain));
                     Local F(wl::filterInts(
                         A.get(), [](int64_t V) { return V % 3 == 0; },
                         Grain));
                     return static_cast<int64_t>(arrLen(F.get()));
                   }});

  Suite.push_back({"msort", false, [=](bool Seq) {
                     Local A(wl::randomInts(NSort, int64_t(1) << 40, 42));
                     Local S(wl::mergesortInts(A.get(), 4096,
                                               /*Parallel=*/!Seq));
                     MPL_CHECK(wl::isSortedInts(S.get()), "msort broken");
                     return unboxInt(arrGet(S.get(), 0));
                   }});

  Suite.push_back({"quicksort", false, [=](bool Seq) {
                     Local A(wl::randomInts(NQSort, int64_t(1) << 40, 7));
                     Local S(wl::quicksortInts(A.get(), 8192,
                                               /*Parallel=*/!Seq));
                     MPL_CHECK(wl::isSortedInts(S.get()), "qsort broken");
                     return unboxInt(arrGet(S.get(), 0));
                   }});

  Suite.push_back({"nqueens", false, [=](bool Seq) {
                     return wl::nqueens(11, /*Parallel=*/!Seq);
                   }});

  Suite.push_back({"primes", false, [=](bool Seq) {
                     Local P(wl::primesUpTo(NPrimes,
                                            Seq ? NPrimes + 2 : 8192));
                     return static_cast<int64_t>(arrLen(P.get()));
                   }});

  Suite.push_back({"tokens", false, [=](bool Seq) {
                     Local T(wl::randomText(NText, 3));
                     return wl::tokens(T.get(), Seq ? NText : 8192);
                   }});

  Suite.push_back({"histogram", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NHist : wl::DefaultGrain;
                     Local A(wl::randomInts(NHist, 256, 5));
                     Local H(wl::histogram(A.get(), 256, Grain));
                     return unboxInt(arrGet(H.get(), 0));
                   }});

  Suite.push_back({"bfs", false, [=](bool Seq) {
                     Local G(wl::buildRandomGraph(NGraph, 4, 11));
                     Local P(wl::bfs(G.get(), 0,
                                     Seq ? NGraph : 64));
                     return wl::countReached(P.get());
                   }});

  const int64_t NHull = scaled(Scale, 1'000'000);
  Suite.push_back({"quickhull", false, [=](bool Seq) {
                     Local P(wl::randomPoints(NHull, 31));
                     return wl::quickhullCount(P.get(),
                                               Seq ? NHull + 1 : 4096);
                   }});

  // Entangled benchmarks: tasks communicate through effects. These are
  // the programs this paper newly supports.
  Suite.push_back({"dedup-ht", true, [=](bool Seq) {
                     Local K(wl::randomInts(NDedup, NDedup / 4, 23));
                     return wl::dedup(K.get(), Seq ? NDedup : 512);
                   }});

  Suite.push_back({"channel", true, [=](bool Seq) {
                     (void)Seq; // Two tasks by construction.
                     return wl::channelPipeline(NChan);
                   }});

  Suite.push_back({"exchange", true, [=](bool Seq) {
                     (void)Seq;
                     return wl::exchange(NExch);
                   }});

  return Suite;
}

StatSnap StatSnap::read() {
  StatRegistry &Reg = StatRegistry::get();
  StatSnap S;
  S.EntangledReads = Reg.valueOf("em.reads.entangled");
  S.PinsDown = Reg.valueOf("em.pins.down");
  S.PinsCross = Reg.valueOf("em.pins.cross");
  S.PinsHolder = Reg.valueOf("em.pins.holder");
  S.PinnedObjects = Reg.valueOf("em.pins.objects");
  S.PinnedBytes = Reg.valueOf("em.pinned.bytes");
  S.Unpins = Reg.valueOf("em.unpins");
  S.ContCaptured = Reg.valueOf("em.cont.captured");
  S.ContResumed = Reg.valueOf("em.cont.resumed");
  S.JitCompiled = Reg.valueOf("pml.jit.compiled");
  S.JitEntries = Reg.valueOf("pml.jit.entries");
  S.JitCodeBytes = Reg.valueOf("pml.jit.code_bytes");
  S.GcCount = Reg.valueOf("gc.collections");
  S.GcMaxPauseNs = Reg.valueOf("gc.pause.max.ns");
  S.GcTotalPauseNs = Reg.valueOf("gc.pause.ns");
  S.GcInPlaceBytes = Reg.valueOf("gc.bytes.inplace");
  S.PeakResidency = Reg.valueOf("mm.bytes.peak");
  return S;
}

namespace {
/// MPL_TRACE_DIR / MPL_METRICS_DIR: after the timed repetitions, run one
/// extra instrumented repetition and write <dir>/<name>.trace.json and/or
/// <dir>/<name>.metrics.json. Kept out of the timed reps so the published
/// numbers are never measured with the tracer armed.
void dumpObservability(const SuiteEntry &Entry, bool Sequential,
                       const rt::Config &Cfg) {
  const char *TraceDir = std::getenv("MPL_TRACE_DIR");
  const char *MetricsDir = std::getenv("MPL_METRICS_DIR");
  if (!TraceDir && !MetricsDir)
    return;
  auto &Tr = obs::Tracer::get();
  auto &Ms = obs::MetricsSampler::get();
  Tr.clear();
  Ms.clearSeries();
  if (TraceDir)
    Tr.enable(obs::TraceOptions{});
  bool StartedSampler = false;
  if (MetricsDir && !Ms.running()) {
    Ms.start(/*IntervalUs=*/1000);
    StartedSampler = true;
  }
  {
    rt::Runtime R(Cfg);
    R.run([&] { (void)Entry.Run(Sequential); });
    // A run shorter than one sampling interval would leave the series
    // empty; take a final sample while the runtime's gauges are live.
    if (MetricsDir)
      Ms.sampleOnce();
  }
  if (StartedSampler)
    Ms.stop();
  if (TraceDir) {
    Tr.disable();
    Tr.writeChromeTrace(std::string(TraceDir) + "/" + Entry.Name +
                        ".trace.json");
    Tr.clear();
  }
  if (MetricsDir)
    Ms.writeJson(std::string(MetricsDir) + "/" + Entry.Name +
                 ".metrics.json");
}
} // namespace

namespace {
/// Per-rep capture so the reported row is one internally consistent rep.
struct RepData {
  double Seconds = 0;
  WorkSpan WS;
  StatSnap Stats;
  std::vector<ProfileSiteRow> Sites;
  int64_t LeakedPins = 0;
  int64_t LeakedBytes = 0;
};

std::vector<ProfileSiteRow> snapshotProfileRows() {
  std::vector<ProfileSiteRow> Rows;
  for (const obs::ProfileSiteSnap &S : obs::Profiler::get().snapshot()) {
    ProfileSiteRow R;
    R.Name = S.Name;
    R.Events = S.Events;
    R.Bytes = S.Bytes;
    R.LifetimeP50Ns = S.durQuantileNs(0.50);
    R.LifetimeP99Ns = S.durQuantileNs(0.99);
    Rows.push_back(std::move(R));
  }
  return Rows;
}
} // namespace

int64_t RunResult::profilePinnedBytes() const {
  int64_t N = 0;
  for (const ProfileSiteRow &S : ProfileSites)
    if (S.Name.rfind("em.pin.", 0) == 0 || S.Name == "hh.pin")
      N += S.Bytes;
  return N;
}

RunResult measure(const SuiteEntry &Entry, bool Sequential, int Workers,
                  em::Mode Mode, bool Profile, int Reps, bool SiteProfile,
                  bool Spans) {
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Mode = Mode;
  Cfg.Profile = Profile;
  // Honour an env-armed profiler (MPL_PROFILE) even when the caller did
  // not ask, so any bench binary can be site-profiled ad hoc.
  bool ProfWasEnabled = obs::profileEnabled();
  bool Prof = SiteProfile || ProfWasEnabled;

  std::vector<RepData> Data;
  int64_t Checksum = 0;
  // Rep -1 is an untimed warmup: it populates the chunk pool and faults in
  // the pages, so later configurations are not advantaged by reuse.
  for (int Rep = -1; Rep < Reps; ++Rep) {
    if (Prof) {
      // Reset per rep so the captured profile belongs to exactly one rep
      // (pin bytes can differ across reps under real parallelism).
      obs::Profiler::get().reset();
      obs::Profiler::get().enable();
    }
    rt::Runtime R(Cfg);
    StatRegistry::get().resetAll();
    int64_t RepChecksum = 0;
    Timer T;
    WorkSpan WS = R.run([&] { RepChecksum = Entry.Run(Sequential); });
    double Sec = T.elapsedSec();
    if (Rep < 0)
      continue; // Warmup: discard.
    if (Rep > 0 && Checksum != RepChecksum)
      MPL_CHECK(false, "benchmark checksum varies across repetitions");
    Checksum = RepChecksum;
    RepData D;
    D.Seconds = Sec;
    D.WS = WS;
    D.Stats = StatSnap::read();
    if (Prof) {
      D.Sites = snapshotProfileRows();
      D.LeakedPins = obs::Profiler::get().livePinCount();
      D.LeakedBytes = obs::Profiler::get().livePinBytes();
    }
    Data.push_back(std::move(D));
  }
  if (Prof && !ProfWasEnabled)
    obs::Profiler::get().disable();

  // Lower median: index (N-1)/2 of the sorted times — always a measured
  // rep, so every reported field comes from the same execution.
  std::vector<int> Order(Data.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    return Data[A].Seconds < Data[B].Seconds;
  });
  const RepData &Med = Data[Order[(Data.size() - 1) / 2]];

  RunResult Out;
  Out.Seconds = Med.Seconds;
  Out.MinSeconds = Data[Order.front()].Seconds;
  Out.WS = Med.WS;
  Out.Stats = Med.Stats;
  Out.Checksum = Checksum;
  Out.ProfileSites = Med.Sites;
  Out.ProfileLeakedPins = Med.LeakedPins;
  Out.ProfileLeakedBytes = Med.LeakedBytes;
  for (const RepData &D : Data)
    Out.RepSeconds.push_back(D.Seconds);
  if (Data.size() > 1) {
    double Mean = 0;
    for (double S : Out.RepSeconds)
      Mean += S;
    Mean /= static_cast<double>(Out.RepSeconds.size());
    double Var = 0;
    for (double S : Out.RepSeconds)
      Var += (S - Mean) * (S - Mean);
    Out.StddevSeconds =
        std::sqrt(Var / static_cast<double>(Out.RepSeconds.size() - 1));
  }

  if (Spans) {
    // One extra untimed rep with the span ledger armed, mirroring the
    // dumpObservability pattern: the ledger's per-task bookkeeping never
    // contaminates the timed reps, and the DAG belongs to exactly one run.
    auto &Ledger = obs::SpanLedger::get();
    bool WasEnabled = Ledger.enabled();
    Ledger.enable();
    {
      rt::Runtime R(Cfg);
      R.run([&] { (void)Entry.Run(Sequential); });
    }
    if (!WasEnabled)
      Ledger.disable();
    obs::SpanRunSummary Sum = Ledger.lastRun();
    Out.Spans.Valid = Sum.Valid;
    Out.Spans.Tasks = Sum.Tasks;
    Out.Spans.Stolen = Sum.Stolen;
    Out.Spans.WorkSec = Sum.LedgerWorkSec;
    Out.Spans.CriticalPathSec = Sum.CriticalPathSec;
    Out.Spans.AgreementPct = Sum.agreementPct();
  }

  dumpObservability(Entry, Sequential, Cfg);
  return Out;
}

std::string methodologyLine(int Reps) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "methodology: lower median of %d timed rep%s "
                "(1 untimed warmup rep discarded); spread as +-stddev, "
                "full per-rep times in -json output",
                Reps, Reps == 1 ? "" : "s");
  return Buf;
}

std::string fmtSecPm(double MedianSec, double StddevSec) {
  std::string S = Table::fmtSec(MedianSec);
  if (StddevSec > 0) {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "+-%.0f%%",
                  100.0 * StddevSec / std::max(MedianSec, 1e-12));
    S += Buf;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// BenchJson
//===----------------------------------------------------------------------===//

BenchJson::BenchJson(std::string BenchId, double Scale, int Reps) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "\"schema\":\"mpl-bench/1\",\"bench\":\"%s\","
                "\"scale\":%g,\"reps\":%d,\"warmup_reps\":1,"
                "\"statistic\":\"median_lower\"",
                json::escape(BenchId).c_str(), Scale, Reps);
  Header = Buf;
}

void BenchJson::addMeta(const std::string &Key, const std::string &Value) {
  Header += ",\"" + json::escape(Key) + "\":\"" + json::escape(Value) + "\"";
}

void BenchJson::addMetaInt(const std::string &Key, int64_t Value) {
  Header += ",\"" + json::escape(Key) + "\":" + std::to_string(Value);
}

namespace {
std::string jsonDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}
} // namespace

void BenchJson::addRow(const std::string &Name, const std::string &Config,
                       bool Entangled, const RunResult &R) {
  std::string S;
  S += "{\"name\":\"" + json::escape(Name) + "\",";
  S += "\"config\":\"" + json::escape(Config) + "\",";
  S += std::string("\"entangled\":") + (Entangled ? "true" : "false") + ",";
  S += "\"time\":{\"median_s\":" + jsonDouble(R.Seconds) +
       ",\"min_s\":" + jsonDouble(R.MinSeconds) +
       ",\"stddev_s\":" + jsonDouble(R.StddevSeconds) + ",\"rep_s\":[";
  for (size_t I = 0; I < R.RepSeconds.size(); ++I) {
    if (I)
      S += ",";
    S += jsonDouble(R.RepSeconds[I]);
  }
  S += "]},";
  S += "\"work_span\":{\"work_s\":" + jsonDouble(R.WS.WorkSec) +
       ",\"span_s\":" + jsonDouble(R.WS.SpanSec) + "},";
  const StatSnap &St = R.Stats;
  S += "\"em\":{\"entangled_reads\":" + std::to_string(St.EntangledReads) +
       ",\"pins_down\":" + std::to_string(St.PinsDown) +
       ",\"pins_cross\":" + std::to_string(St.PinsCross) +
       ",\"pins_holder\":" + std::to_string(St.PinsHolder) +
       ",\"pinned_objects\":" + std::to_string(St.PinnedObjects) +
       ",\"pinned_bytes\":" + std::to_string(St.PinnedBytes) +
       ",\"unpins\":" + std::to_string(St.Unpins) +
       ",\"cont_captured\":" + std::to_string(St.ContCaptured) +
       ",\"cont_resumed\":" + std::to_string(St.ContResumed) + "},";
  // Additive like "spans": only rows that actually ran the JIT tier carry
  // the block, so existing baselines keep parsing unchanged.
  if (St.JitCompiled > 0)
    S += "\"jit\":{\"compiled\":" + std::to_string(St.JitCompiled) +
         ",\"entries\":" + std::to_string(St.JitEntries) +
         ",\"code_bytes\":" + std::to_string(St.JitCodeBytes) + "},";
  S += "\"gc\":{\"collections\":" + std::to_string(St.GcCount) +
       ",\"max_pause_ns\":" + std::to_string(St.GcMaxPauseNs) +
       ",\"total_pause_ns\":" + std::to_string(St.GcTotalPauseNs) +
       ",\"inplace_bytes\":" + std::to_string(St.GcInPlaceBytes) + "},";
  S += "\"max_residency_bytes\":" + std::to_string(St.PeakResidency) + ",";
  S += "\"checksum\":" + std::to_string(R.Checksum) + ",";
  // Additive: rows measured without Spans carry no block, so existing
  // baselines keep parsing and the gate's join is unaffected.
  if (R.Spans.Valid)
    S += "\"spans\":{\"tasks\":" + std::to_string(R.Spans.Tasks) +
         ",\"stolen\":" + std::to_string(R.Spans.Stolen) +
         ",\"work_s\":" + jsonDouble(R.Spans.WorkSec) +
         ",\"critical_path_s\":" + jsonDouble(R.Spans.CriticalPathSec) +
         ",\"agreement_pct\":" + jsonDouble(R.Spans.AgreementPct) + "},";
  S += "\"profile\":{\"leaked_pins\":" + std::to_string(R.ProfileLeakedPins) +
       ",\"leaked_bytes\":" + std::to_string(R.ProfileLeakedBytes) +
       ",\"pin_bytes_attributed\":" + std::to_string(R.profilePinnedBytes()) +
       ",\"sites\":[";
  for (size_t I = 0; I < R.ProfileSites.size(); ++I) {
    const ProfileSiteRow &P = R.ProfileSites[I];
    if (I)
      S += ",";
    S += "{\"name\":\"" + json::escape(P.Name) + "\",\"events\":" +
         std::to_string(P.Events) + ",\"bytes\":" + std::to_string(P.Bytes) +
         ",\"lifetime_p50_ns\":" + std::to_string(P.LifetimeP50Ns) +
         ",\"lifetime_p99_ns\":" + std::to_string(P.LifetimeP99Ns) + "}";
  }
  S += "]}}";
  Rows.push_back(std::move(S));
}

void BenchJson::addCustomRow(const std::string &Name,
                             const std::string &Config, double MedianSec,
                             const std::string &ExtraJson) {
  std::string S;
  S += "{\"name\":\"" + json::escape(Name) + "\",";
  S += "\"config\":\"" + json::escape(Config) + "\",";
  S += "\"time\":{\"median_s\":" + jsonDouble(MedianSec) + "}";
  if (!ExtraJson.empty())
    S += "," + ExtraJson;
  S += "}";
  Rows.push_back(std::move(S));
}

void BenchJson::addCustomRow(const std::string &Name,
                             const std::string &Config, double MedianSec,
                             const std::vector<double> &RepSeconds,
                             const std::string &ExtraJson) {
  double Mean = 0;
  for (double R : RepSeconds)
    Mean += R;
  Mean /= std::max<size_t>(RepSeconds.size(), 1);
  double Var = 0;
  for (double R : RepSeconds)
    Var += (R - Mean) * (R - Mean);
  double Stddev = RepSeconds.size() > 1
                      ? std::sqrt(Var / static_cast<double>(RepSeconds.size() - 1))
                      : 0;
  std::string S;
  S += "{\"name\":\"" + json::escape(Name) + "\",";
  S += "\"config\":\"" + json::escape(Config) + "\",";
  S += "\"time\":{\"median_s\":" + jsonDouble(MedianSec) +
       ",\"stddev_s\":" + jsonDouble(Stddev) + ",\"rep_s\":[";
  for (size_t I = 0; I < RepSeconds.size(); ++I) {
    if (I)
      S += ",";
    S += jsonDouble(RepSeconds[I]);
  }
  S += "]}";
  if (!ExtraJson.empty())
    S += "," + ExtraJson;
  S += "}";
  Rows.push_back(std::move(S));
}

std::string BenchJson::dump() const {
  std::string S = "{" + Header + ",\"rows\":[\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (I)
      S += ",\n";
    S += Rows[I];
  }
  S += "\n]}\n";
  return S;
}

bool BenchJson::write(const std::string &Path) const {
  std::string S = dump();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench: cannot open -json path '%s'\n", Path.c_str());
    return false;
  }
  size_t W = std::fwrite(S.data(), 1, S.size(), F);
  std::fclose(F);
  if (W != S.size()) {
    std::fprintf(stderr, "bench: short write to '%s'\n", Path.c_str());
    return false;
  }
  std::printf("json: wrote %s\n", Path.c_str());
  return true;
}

} // namespace bench
} // namespace mpl
