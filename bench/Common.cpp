//===- bench/Common.cpp - Shared benchmark harness --------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cstdlib>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace bench {

namespace {
int64_t scaled(double Scale, int64_t N) {
  return std::max<int64_t>(1024, static_cast<int64_t>(N * Scale));
}
} // namespace

std::vector<SuiteEntry> makeSuite(double Scale) {
  std::vector<SuiteEntry> Suite;

  const int64_t NTab = scaled(Scale, 20'000'000);
  const int64_t NScan = scaled(Scale, 8'000'000);
  const int64_t NSort = scaled(Scale, 2'000'000);
  const int64_t NQSort = scaled(Scale, 1'000'000);
  const int64_t NPrimes = scaled(Scale, 8'000'000);
  const int64_t NText = scaled(Scale, 30'000'000);
  const int64_t NHist = scaled(Scale, 15'000'000);
  const int64_t NGraph = scaled(Scale, 500'000);
  const int64_t NDedup = scaled(Scale, 1'000'000);
  const int64_t NChan = scaled(Scale, 150'000);
  const int64_t NExch = scaled(Scale, 200'000);
  const int64_t FibN = Scale >= 1.0 ? 33 : (Scale >= 0.25 ? 30 : 26);

  Suite.push_back({"fib", false, [=](bool Seq) {
                     return wl::fib(FibN, Seq ? FibN : 18);
                   }});

  Suite.push_back({"tabulate", false, [=](bool Seq) {
                     Local A(wl::tabulate(
                         NTab,
                         [](int64_t I) {
                           return boxInt(static_cast<int64_t>(hash64(
                               static_cast<uint64_t>(I))));
                         },
                         Seq ? NTab : wl::DefaultGrain));
                     return static_cast<int64_t>(arrLen(A.get()));
                   }});

  Suite.push_back({"map-reduce", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NTab : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NTab, [](int64_t I) { return boxInt(I & 0xff); },
                         Grain));
                     return wl::sumInts(A.get(), Grain);
                   }});

  Suite.push_back({"scan", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NScan : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NScan, [](int64_t I) { return boxInt(I & 0xf); },
                         Grain));
                     Local S(wl::scanPlus(A.get(), Grain));
                     return unboxInt(recGet(S.get(), 1));
                   }});

  Suite.push_back({"filter", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NScan : wl::DefaultGrain;
                     Local A(wl::tabulate(
                         NScan,
                         [](int64_t I) {
                           return boxInt(static_cast<int64_t>(
                               hash64(static_cast<uint64_t>(I)) & 0xffff));
                         },
                         Grain));
                     Local F(wl::filterInts(
                         A.get(), [](int64_t V) { return V % 3 == 0; },
                         Grain));
                     return static_cast<int64_t>(arrLen(F.get()));
                   }});

  Suite.push_back({"msort", false, [=](bool Seq) {
                     Local A(wl::randomInts(NSort, int64_t(1) << 40, 42));
                     Local S(wl::mergesortInts(A.get(), 4096,
                                               /*Parallel=*/!Seq));
                     MPL_CHECK(wl::isSortedInts(S.get()), "msort broken");
                     return unboxInt(arrGet(S.get(), 0));
                   }});

  Suite.push_back({"quicksort", false, [=](bool Seq) {
                     Local A(wl::randomInts(NQSort, int64_t(1) << 40, 7));
                     Local S(wl::quicksortInts(A.get(), 8192,
                                               /*Parallel=*/!Seq));
                     MPL_CHECK(wl::isSortedInts(S.get()), "qsort broken");
                     return unboxInt(arrGet(S.get(), 0));
                   }});

  Suite.push_back({"nqueens", false, [=](bool Seq) {
                     return wl::nqueens(11, /*Parallel=*/!Seq);
                   }});

  Suite.push_back({"primes", false, [=](bool Seq) {
                     Local P(wl::primesUpTo(NPrimes,
                                            Seq ? NPrimes + 2 : 8192));
                     return static_cast<int64_t>(arrLen(P.get()));
                   }});

  Suite.push_back({"tokens", false, [=](bool Seq) {
                     Local T(wl::randomText(NText, 3));
                     return wl::tokens(T.get(), Seq ? NText : 8192);
                   }});

  Suite.push_back({"histogram", false, [=](bool Seq) {
                     int64_t Grain = Seq ? NHist : wl::DefaultGrain;
                     Local A(wl::randomInts(NHist, 256, 5));
                     Local H(wl::histogram(A.get(), 256, Grain));
                     return unboxInt(arrGet(H.get(), 0));
                   }});

  Suite.push_back({"bfs", false, [=](bool Seq) {
                     Local G(wl::buildRandomGraph(NGraph, 4, 11));
                     Local P(wl::bfs(G.get(), 0,
                                     Seq ? NGraph : 64));
                     return wl::countReached(P.get());
                   }});

  const int64_t NHull = scaled(Scale, 1'000'000);
  Suite.push_back({"quickhull", false, [=](bool Seq) {
                     Local P(wl::randomPoints(NHull, 31));
                     return wl::quickhullCount(P.get(),
                                               Seq ? NHull + 1 : 4096);
                   }});

  // Entangled benchmarks: tasks communicate through effects. These are
  // the programs this paper newly supports.
  Suite.push_back({"dedup-ht", true, [=](bool Seq) {
                     Local K(wl::randomInts(NDedup, NDedup / 4, 23));
                     return wl::dedup(K.get(), Seq ? NDedup : 512);
                   }});

  Suite.push_back({"channel", true, [=](bool Seq) {
                     (void)Seq; // Two tasks by construction.
                     return wl::channelPipeline(NChan);
                   }});

  Suite.push_back({"exchange", true, [=](bool Seq) {
                     (void)Seq;
                     return wl::exchange(NExch);
                   }});

  return Suite;
}

StatSnap StatSnap::read() {
  StatRegistry &Reg = StatRegistry::get();
  StatSnap S;
  S.EntangledReads = Reg.valueOf("em.reads.entangled");
  S.PinsDown = Reg.valueOf("em.pins.down");
  S.PinsCross = Reg.valueOf("em.pins.cross");
  S.PinsHolder = Reg.valueOf("em.pins.holder");
  S.PinnedObjects = Reg.valueOf("em.pins.objects");
  S.PinnedBytes = Reg.valueOf("em.pinned.bytes");
  S.Unpins = Reg.valueOf("em.unpins");
  S.GcCount = Reg.valueOf("gc.collections");
  S.GcMaxPauseNs = Reg.valueOf("gc.pause.max.ns");
  S.GcTotalPauseNs = Reg.valueOf("gc.pause.ns");
  S.GcInPlaceBytes = Reg.valueOf("gc.bytes.inplace");
  S.PeakResidency = Reg.valueOf("mm.bytes.peak");
  return S;
}

namespace {
/// MPL_TRACE_DIR / MPL_METRICS_DIR: after the timed repetitions, run one
/// extra instrumented repetition and write <dir>/<name>.trace.json and/or
/// <dir>/<name>.metrics.json. Kept out of the timed reps so the published
/// numbers are never measured with the tracer armed.
void dumpObservability(const SuiteEntry &Entry, bool Sequential,
                       const rt::Config &Cfg) {
  const char *TraceDir = std::getenv("MPL_TRACE_DIR");
  const char *MetricsDir = std::getenv("MPL_METRICS_DIR");
  if (!TraceDir && !MetricsDir)
    return;
  auto &Tr = obs::Tracer::get();
  auto &Ms = obs::MetricsSampler::get();
  Tr.clear();
  Ms.clearSeries();
  if (TraceDir)
    Tr.enable(obs::TraceOptions{});
  bool StartedSampler = false;
  if (MetricsDir && !Ms.running()) {
    Ms.start(/*IntervalUs=*/1000);
    StartedSampler = true;
  }
  {
    rt::Runtime R(Cfg);
    R.run([&] { (void)Entry.Run(Sequential); });
    // A run shorter than one sampling interval would leave the series
    // empty; take a final sample while the runtime's gauges are live.
    if (MetricsDir)
      Ms.sampleOnce();
  }
  if (StartedSampler)
    Ms.stop();
  if (TraceDir) {
    Tr.disable();
    Tr.writeChromeTrace(std::string(TraceDir) + "/" + Entry.Name +
                        ".trace.json");
    Tr.clear();
  }
  if (MetricsDir)
    Ms.writeJson(std::string(MetricsDir) + "/" + Entry.Name +
                 ".metrics.json");
}
} // namespace

RunResult measure(const SuiteEntry &Entry, bool Sequential, int Workers,
                  em::Mode Mode, bool Profile, int Reps) {
  RunResult Best;
  Best.Seconds = 1e100;
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Mode = Mode;
  Cfg.Profile = Profile;
  // Rep -1 is an untimed warmup: it populates the chunk pool and faults in
  // the pages, so later configurations are not advantaged by reuse.
  for (int Rep = -1; Rep < Reps; ++Rep) {
    rt::Runtime R(Cfg);
    StatRegistry::get().resetAll();
    int64_t Checksum = 0;
    Timer T;
    WorkSpan WS = R.run([&] { Checksum = Entry.Run(Sequential); });
    double Sec = T.elapsedSec();
    if (Rep < 0)
      continue; // Warmup: discard.
    if (Rep > 0 && Best.Checksum != Checksum)
      MPL_CHECK(false, "benchmark checksum varies across repetitions");
    if (Sec < Best.Seconds) {
      Best.Seconds = Sec;
      Best.WS = WS;
      Best.Stats = StatSnap::read();
    }
    Best.Checksum = Checksum;
  }
  dumpObservability(Entry, Sequential, Cfg);
  return Best;
}

} // namespace bench
} // namespace mpl
