//===- bench/bench_server.cpp - Open-loop server load bench ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load against an in-process request server (src/net): arrivals
/// are scheduled on a fixed-rate clock *independent of completions* — the
/// defining property of open-loop load, so a slow server accumulates
/// backlog instead of silently slowing the offered rate (closed-loop
/// coordinated omission). Latency is measured from each request's
/// *scheduled* arrival, so queueing behind a stalled connection counts.
///
/// Reports client-observed P50/P95/P99/P999 latency, the shed rate, the
/// server's drain totals, and the server-side stage breakdown (queue vs
/// exec p50/p99, fetched via the live stats frame before drain). Exits 1
/// if queue p99 exceeds the deadline with zero sheds — a coordinated-
/// omission check: a backlog that deep with no pushback means admission
/// control is blind. `-json` emits an mpl-bench/1 record (rows
/// keyed "request_latency"/"open-loop" with p*_ns and shed_rate fields) so
/// the GateLib regression gate can hold tail latency and shed rate to a
/// baseline. Chaos flags mirror mpl_server's, making this the one-command
/// reproduction of the robustness acceptance scenario:
///
///   MPL_MEM_LIMIT_MB=16 bench_server -rate 300 -duration-ms 4000 \
///     -chaos-seed 7 -wire-permille 20 -fault-every-n 5 -json out.json
///
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "chaos/ChaosSchedule.h"
#include "net/Client.h"
#include "net/Server.h"
#include "obs/Profile.h"
#include "support/Cli.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace mpl;
using namespace mpl::net;

namespace {

struct Tally {
  std::atomic<int64_t> Ok{0};
  std::atomic<int64_t> Shed{0};
  std::atomic<int64_t> DeadlineExpired{0};
  std::atomic<int64_t> Error{0};
  std::atomic<int64_t> Draining{0};
  std::atomic<int64_t> Undelivered{0};
  std::atomic<int64_t> Late{0}; ///< Arrivals dispatched behind schedule.
};

/// Server-side stage breakdown (queue vs exec p50/p99), read from the live
/// stats frame ('I') after the load ends but before drain wipes the
/// server. Valid == false when the frame could not be fetched or parsed.
struct StageBreakdown {
  bool Valid = false;
  int64_t QueueP50 = 0;
  int64_t QueueP99 = 0;
  int64_t ExecP50 = 0;
  int64_t ExecP99 = 0;
};

StageBreakdown fetchStageBreakdown(uint16_t Port) {
  StageBreakdown B;
  Client Cl;
  Response Resp;
  if (!Cl.connect(Port) || !Cl.introspect("", Resp) ||
      Resp.St != Status::Ok)
    return B;
  json::Value Root;
  std::string Err;
  if (!json::parse(Resp.Body, Root, Err))
    return B;
  const json::Value *Stats = Root.field("mpl-stats/1");
  const json::Value *Stage = Stats ? Stats->field("stage") : nullptr;
  if (!Stage)
    return B;
  auto Pct = [](const json::Value *H, const char *Name) -> int64_t {
    const json::Value *F = H ? H->field(Name) : nullptr;
    return F && F->isNumber() ? static_cast<int64_t>(F->NumV) : 0;
  };
  const json::Value *Q = Stage->field("queue");
  const json::Value *E = Stage->field("exec");
  if (!Q || !E)
    return B;
  B.QueueP50 = Pct(Q, "p50");
  B.QueueP99 = Pct(Q, "p99");
  B.ExecP50 = Pct(E, "p50");
  B.ExecP99 = Pct(E, "p99");
  B.Valid = true;
  return B;
}

Request mixRequest(uint64_t Id, uint32_t DeadlineMs) {
  Request R;
  R.Id = Id;
  R.DeadlineMs = DeadlineMs;
  switch (Id % 5) {
  case 0:
    R.Kind = RequestKind::Workload;
    R.Body = "fib 22";
    break;
  case 1:
    R.Kind = RequestKind::Workload;
    R.Body = "sort 20000";
    break;
  case 2:
    R.Kind = RequestKind::Workload;
    R.Body = "primes 20000";
    break;
  case 3:
    R.Kind = RequestKind::Pml;
    R.Body = "fun f n = if n < 2 then n else f (n-1) + f (n-2)\nf 15";
    break;
  default:
    R.Kind = RequestKind::Ping;
    break;
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  int64_t Rate = C.getInt("rate", 200); // offered load, requests/sec
  int64_t DurationMs = C.getInt("duration-ms", 3000);
  int Conns = static_cast<int>(C.getInt("conns", 8));
  uint32_t DeadlineMs = static_cast<uint32_t>(C.getInt("deadline-ms", 1000));
  uint64_t Seed = static_cast<uint64_t>(C.getInt("chaos-seed", 0));
  int64_t WirePermille = C.getInt("wire-permille", 0);
  int64_t FaultEveryN = C.getInt("fault-every-n", 0);
  std::string JsonPath = C.getString("json", "");

  ServerConfig SC;
  SC.NumWorkers = static_cast<int>(C.getInt("workers", 2));
  SC.QueueCap = static_cast<int>(C.getInt("queue-cap", 64));
  SC.BatchMax = static_cast<int>(C.getInt("batch-max", 8));

  if (Seed != 0 || WirePermille > 0 || FaultEveryN > 0) {
    chaos::Config CC;
    CC.Seed = Seed != 0 ? Seed : 1;
    if (WirePermille > 0)
      CC.WirePermille = static_cast<uint32_t>(WirePermille);
    if (FaultEveryN > 0) {
      CC.InjectFault = chaos::Fault::FailChunkAlloc;
      CC.FaultEveryN = static_cast<uint32_t>(FaultEveryN);
    }
    chaos::enable(CC);
  }
  obs::Profiler::get().enable();

  Server Srv(SC);
  if (!Srv.start()) {
    std::fprintf(stderr, "bench_server: bind failed\n");
    return 2;
  }
  uint16_t Port = Srv.port();

  Histogram Latency("bench.server.latency.ns");
  Tally T;
  std::atomic<int64_t> NextTicket{0};
  int64_t PeriodNs = 1000000000 / (Rate > 0 ? Rate : 1);
  int64_t Planned = DurationMs * 1000000 / PeriodNs;
  int64_t StartNs = nowNs();

  std::vector<std::thread> Senders;
  for (int S = 0; S < Conns; ++S) {
    Senders.emplace_back([&, S] {
      Client Cl;
      RetryPolicy P;
      P.JitterSeed = hash64(0xbe7cull ^ static_cast<uint64_t>(S));
      for (;;) {
        int64_t I = NextTicket.fetch_add(1, std::memory_order_relaxed);
        if (I >= Planned)
          return;
        int64_t Due = StartNs + I * PeriodNs;
        int64_t Now = nowNs();
        if (Due > Now)
          std::this_thread::sleep_for(std::chrono::nanoseconds(Due - Now));
        else
          T.Late.fetch_add(1);
        Request Req = mixRequest(static_cast<uint64_t>(I) + 1, DeadlineMs);
        CallResult R = callWithRetry(Cl, Port, Req, P);
        Latency.record(nowNs() - Due); // from *scheduled* arrival
        if (!R.Delivered) {
          T.Undelivered.fetch_add(1);
          continue;
        }
        switch (R.St) {
        case Status::Ok:
          T.Ok.fetch_add(1);
          break;
        case Status::Shed:
          T.Shed.fetch_add(1);
          break;
        case Status::DeadlineExpired:
          T.DeadlineExpired.fetch_add(1);
          break;
        case Status::Error:
          T.Error.fetch_add(1);
          break;
        case Status::Draining:
          T.Draining.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto &Th : Senders)
    Th.join();
  StageBreakdown SB = fetchStageBreakdown(Port);
  Srv.waitUntilDrained();

  ServerTotals ST = Srv.totals();
  int64_t LeakedPins = obs::Profiler::get().livePinCount();
  Histogram::Percentiles P = Latency.percentiles();
  int64_t Total = Planned;
  double ShedRate =
      Total > 0 ? static_cast<double>(T.Shed.load()) / Total : 0;

  std::printf("== bench_server: open-loop %lld req/s for %lldms "
              "(%d conns, %d workers) ==\n",
              static_cast<long long>(Rate),
              static_cast<long long>(DurationMs), Conns, SC.NumWorkers);
  Table Tab({"metric", "value"});
  Tab.addRow({"requests", Table::fmtInt(Total)});
  Tab.addRow({"ok", Table::fmtInt(T.Ok.load())});
  Tab.addRow({"shed", Table::fmtInt(T.Shed.load())});
  Tab.addRow({"deadline_expired", Table::fmtInt(T.DeadlineExpired.load())});
  Tab.addRow({"error", Table::fmtInt(T.Error.load())});
  Tab.addRow({"undelivered", Table::fmtInt(T.Undelivered.load())});
  Tab.addRow({"late_dispatch", Table::fmtInt(T.Late.load())});
  Tab.addRow({"p50_us", Table::fmtInt(P.P50 / 1000)});
  Tab.addRow({"p95_us", Table::fmtInt(P.P95 / 1000)});
  Tab.addRow({"p99_us", Table::fmtInt(P.P99 / 1000)});
  Tab.addRow({"p999_us", Table::fmtInt(P.P999 / 1000)});
  if (SB.Valid) {
    Tab.addRow({"stage_queue_p50_us", Table::fmtInt(SB.QueueP50 / 1000)});
    Tab.addRow({"stage_queue_p99_us", Table::fmtInt(SB.QueueP99 / 1000)});
    Tab.addRow({"stage_exec_p50_us", Table::fmtInt(SB.ExecP50 / 1000)});
    Tab.addRow({"stage_exec_p99_us", Table::fmtInt(SB.ExecP99 / 1000)});
  }
  Tab.addRow({"wire_faults", Table::fmtInt(ST.WireFaults)});
  Tab.addRow({"leaked_pins", Table::fmtInt(LeakedPins)});
  Tab.print();

  // Coordinated-omission sanity: if the server-side queue stage alone ate
  // the whole deadline budget yet *nothing* was shed, admission control
  // never saw the backlog — the latency numbers above are lies told by a
  // queue that absorbed the overload invisibly.
  bool QueueOverDeadline = SB.Valid && T.Shed.load() == 0 &&
                           ST.Shed == 0 &&
                           SB.QueueP99 > int64_t(DeadlineMs) * 1000000;
  if (QueueOverDeadline)
    std::fprintf(stderr,
                 "bench_server: FAIL: stage queue p99 (%lld ns) exceeds "
                 "the %u ms deadline with zero sheds — coordinated "
                 "omission: backlog absorbed without admission pushback\n",
                 static_cast<long long>(SB.QueueP99), DeadlineMs);

  if (!JsonPath.empty()) {
    bench::BenchJson J("server", /*Scale=*/1.0, /*Reps=*/1);
    J.addMetaInt("rate", Rate);
    J.addMetaInt("duration_ms", DurationMs);
    J.addMetaInt("conns", Conns);
    J.addMetaInt("workers", SC.NumWorkers);
    J.addMetaInt("chaos_seed", static_cast<int64_t>(Seed));
    J.addMetaInt("wire_permille", WirePermille);
    J.addMetaInt("fault_every_n", FaultEveryN);
    std::string Extra =
        "\"p50_ns\":" + std::to_string(P.P50) +
        ",\"p95_ns\":" + std::to_string(P.P95) +
        ",\"p99_ns\":" + std::to_string(P.P99) +
        ",\"p999_ns\":" + std::to_string(P.P999) +
        ",\"shed_rate\":" + std::to_string(ShedRate) +
        ",\"ok\":" + std::to_string(T.Ok.load()) +
        ",\"shed\":" + std::to_string(T.Shed.load()) +
        ",\"deadline_expired\":" + std::to_string(T.DeadlineExpired.load()) +
        ",\"undelivered\":" + std::to_string(T.Undelivered.load()) +
        ",\"wire_faults\":" + std::to_string(ST.WireFaults) +
        ",\"leaked_pins\":" + std::to_string(LeakedPins);
    if (SB.Valid)
      Extra += ",\"queue_p50_ns\":" + std::to_string(SB.QueueP50) +
               ",\"queue_p99_ns\":" + std::to_string(SB.QueueP99) +
               ",\"exec_p50_ns\":" + std::to_string(SB.ExecP50) +
               ",\"exec_p99_ns\":" + std::to_string(SB.ExecP99);
    J.addCustomRow("request_latency", "open-loop",
                   static_cast<double>(P.P50) * 1e-9, Extra);
    J.write(JsonPath);
  }
  if (chaos::active())
    chaos::disable();
  return LeakedPins == 0 && !QueueOverDeadline ? 0 : 1;
}
