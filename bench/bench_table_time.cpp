//===- bench/bench_table_time.cpp - Paper table T1: execution times --------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the paper's main time table: for every benchmark, the
// sequential-baseline time T_s, the single-worker time T_1, the overhead
// T_1/T_s, the predicted 72-processor time T_72 (Brent bound from measured
// work and span — see DESIGN.md §2 for why), and the speedup T_s/T_72.
//
// The paper's headline claims this table tests:
//   * small time overhead over sequential runs (T_1/T_s close to 1),
//   * good scalability (large T_s/T_72 for the parallel benchmarks),
//   * entangled programs run (pre-paper MPL rejects the last three rows).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  int P = static_cast<int>(C.getInt("procs", 72));
  std::string JsonPath = C.getString("json", "");

  std::printf("== T1: time overhead and scalability (scale=%.2f, "
              "T_%d via Brent bound) ==\n%s\n",
              Scale, P, methodologyLine(Reps).c_str());

  Table T({"benchmark", "T_s", "T_1", "ovhd(T_1/T_s)", "W/S",
           "T_" + std::to_string(P), "speedup(T_s/T_P)", "cp%"});
  BenchJson J("table_time", Scale, Reps);
  J.addMetaInt("procs", P);

  for (const SuiteEntry &E : makeSuite(Scale)) {
    // Sequential baseline: barriers off for disentangled programs; the
    // entangled ones *require* management (that is the paper's point).
    em::Mode SeqMode = E.Entangled ? em::Mode::Manage : em::Mode::Off;
    RunResult Seq = measure(E, /*Sequential=*/true, /*Workers=*/1, SeqMode,
                            /*Profile=*/false, Reps);
    // This is the timing table, so the site profiler stays disarmed: its
    // per-event attribution would inflate the entangled T_1 it reports.
    // MPL_PROFILE=1 opts in (measure() honors it); the attribution datum
    // lives in bench_table_entangle, which always arms it.
    // Spans=true attaches the causal span ledger's critical-path fraction
    // (cp% column) from one extra untimed rep — the timed T_1 never runs
    // with the ledger armed.
    RunResult Par = measure(E, /*Sequential=*/false, /*Workers=*/1,
                            em::Mode::Manage, /*Profile=*/true, Reps,
                            /*SiteProfile=*/false, /*Spans=*/true);
    MPL_CHECK(Seq.Checksum == Par.Checksum,
              "sequential and parallel runs disagree");

    double TP = Par.WS.predictedTime(P);
    double Parallelism = Par.WS.SpanSec > 0
                             ? Par.WS.WorkSec / Par.WS.SpanSec
                             : 0;
    T.addRow({E.Name + (E.Entangled ? " (ent)" : ""),
              fmtSecPm(Seq.Seconds, Seq.StddevSeconds),
              fmtSecPm(Par.Seconds, Par.StddevSeconds),
              Table::fmtRatio(Par.Seconds / Seq.Seconds),
              Table::fmtRatio(Parallelism), Table::fmtSec(TP),
              Table::fmtRatio(Seq.Seconds / TP),
              Par.Spans.Valid ? Table::fmtPct(Par.Spans.cpPct()) : "-"});
    J.addRow(E.Name, "seq", E.Entangled, Seq);
    J.addRow(E.Name, "par-w1", E.Entangled, Par);
  }
  T.print();
  std::printf("\n(ent) = entangled benchmark: its T_s runs with management "
              "enabled because\npre-paper MPL cannot run it at all; "
              "see bench_table_entangle for its stats.\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
