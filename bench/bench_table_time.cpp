//===- bench/bench_table_time.cpp - Paper table T1: execution times --------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the paper's main time table: for every benchmark, the
// sequential-baseline time T_s, the single-worker time T_1, the overhead
// T_1/T_s, the predicted 72-processor time T_72 (Brent bound from measured
// work and span — see DESIGN.md §2 for why), and the speedup T_s/T_72.
//
// The paper's headline claims this table tests:
//   * small time overhead over sequential runs (T_1/T_s close to 1),
//   * good scalability (large T_s/T_72 for the parallel benchmarks),
//   * entangled programs run (pre-paper MPL rejects the last three rows).
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "pml/Vm.h"
#include "pml/jit/Jit.h"
#include "support/Cli.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  int P = static_cast<int>(C.getInt("procs", 72));
  std::string JsonPath = C.getString("json", "");

  std::printf("== T1: time overhead and scalability (scale=%.2f, "
              "T_%d via Brent bound) ==\n%s\n",
              Scale, P, methodologyLine(Reps).c_str());

  Table T({"benchmark", "T_s", "T_1", "ovhd(T_1/T_s)", "W/S",
           "T_" + std::to_string(P), "speedup(T_s/T_P)", "cp%"});
  BenchJson J("table_time", Scale, Reps);
  J.addMetaInt("procs", P);

  for (const SuiteEntry &E : makeSuite(Scale)) {
    // Sequential baseline: barriers off for disentangled programs; the
    // entangled ones *require* management (that is the paper's point).
    em::Mode SeqMode = E.Entangled ? em::Mode::Manage : em::Mode::Off;
    RunResult Seq = measure(E, /*Sequential=*/true, /*Workers=*/1, SeqMode,
                            /*Profile=*/false, Reps);
    // This is the timing table, so the site profiler stays disarmed: its
    // per-event attribution would inflate the entangled T_1 it reports.
    // MPL_PROFILE=1 opts in (measure() honors it); the attribution datum
    // lives in bench_table_entangle, which always arms it.
    // Spans=true attaches the causal span ledger's critical-path fraction
    // (cp% column) from one extra untimed rep — the timed T_1 never runs
    // with the ledger armed.
    RunResult Par = measure(E, /*Sequential=*/false, /*Workers=*/1,
                            em::Mode::Manage, /*Profile=*/true, Reps,
                            /*SiteProfile=*/false, /*Spans=*/true);
    MPL_CHECK(Seq.Checksum == Par.Checksum,
              "sequential and parallel runs disagree");

    double TP = Par.WS.predictedTime(P);
    double Parallelism = Par.WS.SpanSec > 0
                             ? Par.WS.WorkSec / Par.WS.SpanSec
                             : 0;
    T.addRow({E.Name + (E.Entangled ? " (ent)" : ""),
              fmtSecPm(Seq.Seconds, Seq.StddevSeconds),
              fmtSecPm(Par.Seconds, Par.StddevSeconds),
              Table::fmtRatio(Par.Seconds / Seq.Seconds),
              Table::fmtRatio(Parallelism), Table::fmtSec(TP),
              Table::fmtRatio(Seq.Seconds / TP),
              Par.Spans.Valid ? Table::fmtPct(Par.Spans.cpPct()) : "-"});
    J.addRow(E.Name, "seq", E.Entangled, Seq);
    J.addRow(E.Name, "par-w1", E.Entangled, Par);
  }
  // The pml carrier, interpreted and JIT-tiered, as two extra rows: T1 is
  // the headline time table, so the carrier the pml suite pays for should
  // be visible next to the C++ embedding rows it wraps. Both configs run
  // the identical program under full management at one worker; the jit
  // config compiles at threshold 1 (tools/ci.sh time-gates its BENCH_T3
  // twin, these rows are informational context here).
  {
    const char *Src = "fun fib n = if n < 2 then n else fib (n-1) + "
                      "fib (n-2)\nfib 25";
    auto timeVm = [&](bool UseJit, std::string &Value,
                      std::vector<double> &RepsOut) {
      std::vector<double> Times;
      for (int I = 0; I < Reps; ++I) {
        jit::setCompileThreshold(1);
        jit::setEnabled(UseJit);
        rt::Config Cfg;
        Cfg.NumWorkers = 1;
        Cfg.Profile = false;
        rt::Runtime R(Cfg);
        Timer Tm;
        R.run([&] {
          std::string Output, TypeStr;
          std::vector<std::string> Errors;
          bool Ok = pml::evalSource(Src, Output, Value, TypeStr, Errors);
          MPL_CHECK(Ok, "pml carrier row failed");
        });
        Times.push_back(Tm.elapsedSec());
        jit::setEnabled(false);
      }
      RepsOut = Times;
      std::sort(Times.begin(), Times.end());
      return Times[(Times.size() - 1) / 2];
    };
    std::string InterpV, JitV;
    std::vector<double> InterpReps, JitReps;
    double Interp = timeVm(false, InterpV, InterpReps);
    double Jit = timeVm(true, JitV, JitReps);
    MPL_CHECK(InterpV == JitV, "pml carrier interp/jit values disagree");
    T.addRow({"pml-fib-25 (vm)", Table::fmtSec(Interp), Table::fmtSec(Jit),
              Table::fmtRatio(Jit / Interp), "-", "-", "-", "-"});
    J.addCustomRow("pml-fib-25", "vm-interp-w1", Interp, InterpReps, "");
    J.addCustomRow("pml-fib-25", "vm-jit-w1", Jit, JitReps, "");
  }

  T.print();
  std::printf("\n(ent) = entangled benchmark: its T_s runs with management "
              "enabled because\npre-paper MPL cannot run it at all; "
              "see bench_table_entangle for its stats.\n"
              "pml-fib-25 (vm): the pml carrier itself — T_s column = "
              "interpreted, T_1 column = JIT tier;\nthe ovhd column is "
              "jit/interp (the tier's speedup as a fraction).\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
