//===- bench/bench_table_lang.cpp - Paper table T3: cross-language ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the cross-language comparison. The paper compares MPL with
// C++, Go, Java, and OCaml; only the C++ column is reproducible in this
// offline container (DESIGN.md §2), so the table reports:
//   * C++ idiomatic:  what a practitioner writes (std::sort, etc.);
//   * C++ alloc-match: allocation behaviour matched to the functional code;
//   * mpl-em T_1:     our runtime, one worker, full management.
// The paper's claim being tested: the managed functional runtime is in the
// same ballpark as procedural C++ (typically within 1-3x of idiomatic).
//
//===----------------------------------------------------------------------===//

#include "baseline/Native.h"
#include "bench/Common.h"
#include "support/Cli.h"

#include <algorithm>
#include <cstdio>

using namespace mpl;
using namespace mpl::bench;
using namespace mpl::ops;

namespace {

/// Lower median across \p Reps timed calls — same statistic as
/// bench::measure so columns are comparable across tables.
double medianOf(std::vector<double> Times) {
  std::sort(Times.begin(), Times.end());
  return Times[(Times.size() - 1) / 2];
}

double timeMedian(int Reps, const std::function<int64_t()> &Fn,
                  int64_t *Checksum) {
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    int64_t Sum = Fn();
    Times.push_back(T.elapsedSec());
    *Checksum = Sum;
  }
  return medianOf(std::move(Times));
}

} // namespace

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 2));
  std::string JsonPath = C.getString("json", "");

  const int64_t NSort = std::max<int64_t>(1024, int64_t(2'000'000 * Scale));
  const int64_t NPrimes = std::max<int64_t>(1024, int64_t(8'000'000 * Scale));
  const int64_t NText = std::max<int64_t>(1024, int64_t(30'000'000 * Scale));
  const int64_t NDedup = std::max<int64_t>(1024, int64_t(1'000'000 * Scale));
  const int64_t NGraph = std::max<int64_t>(1024, int64_t(500'000 * Scale));
  const int64_t FibN = Scale >= 1.0 ? 33 : (Scale >= 0.25 ? 30 : 26);

  std::printf("== T3: cross-language comparison (scale=%.2f; Go/Java/OCaml "
              "columns not reproducible offline) ==\n%s\n",
              Scale, methodologyLine(Reps).c_str());
  BenchJson J("table_lang", Scale, Reps);

  Table T({"benchmark", "C++ idiomatic", "C++ alloc-match", "mpl-em T_1",
           "mpl/idiomatic"});

  struct Row {
    const char *Name;
    std::function<int64_t()> Idiomatic;
    std::function<int64_t()> AllocMatch;
    std::function<int64_t()> Mpl; // Runs inside a Runtime.
  };

  std::vector<Row> Rows;

  Rows.push_back(
      {"fib", [&] { return nat::fib(FibN); }, [&] { return nat::fib(FibN); },
       [&] { return wl::fib(FibN, 18); }});

  Rows.push_back({"msort",
                  [&] {
                    auto V = nat::randomInts(NSort, int64_t(1) << 40, 42);
                    return nat::sortIdiomatic(std::move(V))[0];
                  },
                  [&] {
                    auto V = nat::randomInts(NSort, int64_t(1) << 40, 42);
                    return nat::msortFunctional(V)[0];
                  },
                  [&] {
                    Local A(wl::randomInts(NSort, int64_t(1) << 40, 42));
                    Local S(wl::mergesortInts(A.get(), 4096));
                    return unboxInt(arrGet(S.get(), 0));
                  }});

  Rows.push_back({"primes", [&] { return nat::primesCount(NPrimes); },
                  [&] { return nat::primesCount(NPrimes); },
                  [&] {
                    Local P(wl::primesUpTo(NPrimes, 8192));
                    return static_cast<int64_t>(arrLen(P.get()));
                  }});

  Rows.push_back({"tokens",
                  [&] { return nat::tokens(nat::randomText(NText, 3)); },
                  [&] { return nat::tokens(nat::randomText(NText, 3)); },
                  [&] {
                    Local S(wl::randomText(NText, 3));
                    return wl::tokens(S.get(), 8192);
                  }});

  Rows.push_back(
      {"dedup",
       [&] {
         return nat::dedupIdiomatic(nat::randomInts(NDedup, NDedup / 4, 23));
       },
       [&] {
         return nat::dedupIdiomatic(nat::randomInts(NDedup, NDedup / 4, 23));
       },
       [&] {
         Local K(wl::randomInts(NDedup, NDedup / 4, 23));
         return wl::dedup(K.get(), 512);
       }});

  Rows.push_back({"bfs",
                  [&] {
                    auto G = nat::buildRandomGraph(NGraph, 4, 11);
                    return nat::bfsReached(G, 0);
                  },
                  [&] {
                    auto G = nat::buildRandomGraph(NGraph, 4, 11);
                    return nat::bfsReached(G, 0);
                  },
                  [&] {
                    Local G(wl::buildRandomGraph(NGraph, 4, 11));
                    Local P(wl::bfs(G.get(), 0, 64));
                    return wl::countReached(P.get());
                  }});

  for (const Row &R : Rows) {
    int64_t CkI = 0, CkA = 0, CkM = 0;
    double TI = timeMedian(Reps, R.Idiomatic, &CkI);
    double TA = timeMedian(Reps, R.AllocMatch, &CkA);

    std::vector<double> MplTimes;
    for (int I = 0; I < Reps; ++I) {
      rt::Config Cfg;
      Cfg.NumWorkers = 1;
      Cfg.Profile = false;
      rt::Runtime Rt(Cfg);
      Timer T;
      Rt.run([&] { CkM = R.Mpl(); });
      MplTimes.push_back(T.elapsedSec());
    }
    double TM = medianOf(std::move(MplTimes));
    MPL_CHECK(CkI == CkM && CkA == CkM,
              "cross-language kernels computed different results");

    T.addRow({R.Name, Table::fmtSec(TI), Table::fmtSec(TA),
              Table::fmtSec(TM), Table::fmtRatio(TM / TI)});
    char Extra[160];
    std::snprintf(Extra, sizeof(Extra),
                  "\"idiomatic_s\":%.9g,\"alloc_match_s\":%.9g,"
                  "\"checksum\":%lld",
                  TI, TA, static_cast<long long>(CkM));
    J.addCustomRow(R.Name, "mpl-w1", TM, Extra);
  }
  T.print();
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
