//===- bench/bench_table_space.cpp - Paper table T2: space ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Regenerates the space table: maximum residency of the sequential baseline
// (R_s) and of the managed single-worker run (R_1), their blowup, and the
// entanglement-specific retention (bytes kept in place by pinned closures).
// The paper's claim: space overhead over sequential runs is small, and the
// extra space of entanglement is bounded by the pinned (entangled) data.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "support/Cli.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::bench;

int main(int Argc, char **Argv) {
  Cli C(Argc, Argv);
  double Scale = C.getDouble("scale", 0.25);
  int Reps = static_cast<int>(C.getInt("reps", 1));
  std::string JsonPath = C.getString("json", "");

  std::printf("== T2: maximum residency (scale=%.2f) ==\n%s\n", Scale,
              methodologyLine(Reps).c_str());

  Table T({"benchmark", "R_s", "R_1", "blowup", "pinned", "gc-inplace",
           "gc-count", "max-pause"});
  BenchJson J("table_space", Scale, Reps);

  for (const SuiteEntry &E : makeSuite(Scale)) {
    em::Mode SeqMode = E.Entangled ? em::Mode::Manage : em::Mode::Off;
    RunResult Seq = measure(E, true, 1, SeqMode, false, Reps);
    RunResult Par = measure(E, false, 1, em::Mode::Manage, false, Reps);

    std::string Blowup =
        Seq.Stats.PeakResidency > 0
            ? Table::fmtRatio(static_cast<double>(Par.Stats.PeakResidency) /
                              static_cast<double>(Seq.Stats.PeakResidency))
            : "-"; // Allocation-free benchmark (e.g. fib).
    T.addRow({E.Name + (E.Entangled ? " (ent)" : ""),
              Table::fmtBytes(Seq.Stats.PeakResidency),
              Table::fmtBytes(Par.Stats.PeakResidency), Blowup,
              Table::fmtBytes(Par.Stats.PinnedBytes),
              Table::fmtBytes(Par.Stats.GcInPlaceBytes),
              Table::fmtInt(Par.Stats.GcCount),
              Table::fmtSec(static_cast<double>(Par.Stats.GcMaxPauseNs) *
                            1e-9)});
    J.addRow(E.Name, "seq", E.Entangled, Seq);
    J.addRow(E.Name, "par-w1", E.Entangled, Par);
  }
  T.print();
  std::printf("\ngc-inplace = bytes preserved in place for pinned "
              "(entangled) closures across\nall collections — the paper's "
              "space cost of entanglement. ~0 for the\ndisentangled suite "
              "(the shielding claim).\n");
  if (!JsonPath.empty() && !J.write(JsonPath))
    return 1;
  return 0;
}
