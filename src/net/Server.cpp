//===- net/Server.cpp - Entanglement-managed request server ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "chaos/ChaosSchedule.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "mm/Chunk.h"
#include "mm/MemoryGovernor.h"
#include "obs/Exposition.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "pml/Vm.h"
#include "support/EmCounters.h"
#include "support/Histogram.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "workloads/Collections.h"
#include "workloads/Kernels.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

using namespace mpl;
using namespace mpl::net;

namespace {

/// One admitted request in flight between a connection thread (producer,
/// waits on Prom's future) and the executor (consumer, fulfills it). The
/// DeadlineCtx is armed at enqueue so queueing time counts against the
/// deadline, and shared so an aborted strand's polls stay valid while the
/// connection thread still holds the future.
struct Pending {
  Request Req;
  DeadlineCtx DL;
  std::promise<Response> Prom;
  // Latency-stage stamps (DESIGN.md §16): queue = Dequeue-Enqueue, exec =
  // ExecEnd-ExecStart; the reply stage is measured on the connection
  // thread as send-done minus ExecEnd. Zero = the stage never ran (e.g. a
  // drain-shed request has no exec stage).
  int64_t EnqueueNs = 0;
  int64_t DequeueNs = 0;
  int64_t ExecStartNs = 0;
  std::atomic<int64_t> ExecEndNs{0};
  std::atomic<bool> Fulfilled{false};
};

std::string fmtPressure(Pressure P, int64_t Depth, int64_t Cap) {
  std::ostringstream OS;
  OS << "pressure=" << pressureName(P) << " queue=" << Depth << "/" << Cap;
  return OS.str();
}

} // namespace

struct Server::Impl {
  ServerConfig Cfg;
  Server *Owner;

  int ListenFd = -1;
  std::thread AcceptThread;
  std::thread ExecThread;
  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::atomic<int> LiveConns{0};
  std::atomic<uint64_t> NextConnId{0};
  std::atomic<bool> AcceptStopped{false};
  bool Started = false;
  bool Joined = false;
  std::mutex JoinMu;

  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<std::shared_ptr<Pending>> Queue;
  std::atomic<int64_t> QueueDepth{0};
  std::atomic<int64_t> Inflight{0};

  // net.* observability surface (registry-backed, so tests/tools can read
  // them via StatRegistry::valueOf and the metrics exporters pick them up).
  Stat Accepted{"net.conns.accepted"};
  Stat Requests{"net.requests"};
  Stat RespOk{"net.resp.ok"};
  Stat RespShed{"net.resp.shed"};
  Stat RespDeadline{"net.resp.deadline_expired"};
  Stat RespError{"net.resp.error"};
  Stat RespDraining{"net.resp.draining"};
  Stat ProtocolErrors{"net.protocol.errors"};
  Stat WireFaults{"net.wire.faults"};
  /// Stats frames served. Deliberately NOT part of Requests/Resp* — the
  /// introspection plane must not disturb the request-counter balance
  /// invariant (net.requests == sum of net.resp.*) that trace_check
  /// --check-net-balance asserts.
  Stat Introspects{"net.introspect"};
  Histogram LatencyNs{"net.request.latency.ns"};
  Histogram StageQueueNs{"net.stage.queue.ns"};
  Histogram StageExecNs{"net.stage.exec.ns"};
  Histogram StageReplyNs{"net.stage.reply.ns"};
  /// Rolling windows (10 slots x 1s): percentiles over the last ~10s, so a
  /// long-lived server's stats frame reflects what is happening *now*
  /// rather than the process-lifetime average. Rotated from the accept
  /// loop's poll tick.
  static constexpr int WindowSlots = 10;
  static constexpr int64_t WindowSlotNs = 1000000000;
  RollingWindow WinLatency{LatencyNs, WindowSlots, WindowSlotNs};
  RollingWindow WinQueue{StageQueueNs, WindowSlots, WindowSlotNs};
  RollingWindow WinExec{StageExecNs, WindowSlots, WindowSlotNs};

  /// Tail exemplars: the K worst-latency requests so far, each annotated
  /// (post-batch, once the span ledger has merged the run) with the run's
  /// hottest critical-path source line.
  struct Exemplar {
    uint64_t Id = 0;
    int64_t TotalNs = 0;
    int64_t QueueNs = 0;
    int64_t ExecNs = 0;
    std::string CpLine;
  };
  static constexpr size_t MaxExemplars = 4;
  std::mutex ExemplarMu;
  std::vector<Exemplar> Exemplars; ///< Sorted worst-first, <= MaxExemplars.

  int QueueGaugeId = 0;
  int InflightGaugeId = 0;

  explicit Impl(const ServerConfig &C, Server *S) : Cfg(C), Owner(S) {
    QueueGaugeId = obs::MetricsSampler::get().registerGauge(
        "net.queue.depth",
        [this] { return QueueDepth.load(std::memory_order_relaxed); });
    InflightGaugeId = obs::MetricsSampler::get().registerGauge(
        "net.inflight",
        [this] { return Inflight.load(std::memory_order_relaxed); });
  }

  ~Impl() {
    obs::MetricsSampler::get().unregisterGauge(QueueGaugeId);
    obs::MetricsSampler::get().unregisterGauge(InflightGaugeId);
  }

  //===--------------------------------------------------------------------===//
  // Socket I/O with wire-chaos injection
  //===--------------------------------------------------------------------===//

  /// Sends all of \p Data, consulting the wire-fault channel first: Drop
  /// closes without writing, Truncate writes half a frame then gives up
  /// (the peer sees a mid-frame connection loss). Returns false when the
  /// connection is no longer usable.
  bool sendAll(int Fd, const std::string &Data) {
    chaos::preemptPoint(chaos::Point::WireWrite);
    size_t Limit = Data.size();
    bool FaultAfter = false;
    switch (chaos::wireFaultNow()) {
    case chaos::Fault::WireDrop:
      WireFaults.inc();
      return false;
    case chaos::Fault::WireTruncate:
      WireFaults.inc();
      Limit = Data.size() / 2;
      FaultAfter = true;
      break;
    case chaos::Fault::WireSlowRead:
      WireFaults.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      break;
    default:
      break;
    }
    size_t Off = 0;
    while (Off < Limit) {
      ssize_t N = ::send(Fd, Data.data() + Off, Limit - Off, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return !FaultAfter;
  }

  //===--------------------------------------------------------------------===//
  // Connection threads
  //===--------------------------------------------------------------------===//

  void serveConn(int Fd, uint64_t ConnId) {
    obs::emit(obs::Ev::NetAccept, ConnId);
    // Bounded recv so the loop notices drain within ~100ms.
    timeval TV{};
    TV.tv_usec = 100 * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));

    FrameReader FR;
    std::string Payload;
    char Buf[4096];
    bool Alive = true;
    while (Alive) {
      chaos::preemptPoint(chaos::Point::WireRead);
      switch (chaos::wireFaultNow()) {
      case chaos::Fault::WireDrop:
      case chaos::Fault::WireTruncate: // mid-request drop, seen from reads
        WireFaults.inc();
        Alive = false;
        continue;
      case chaos::Fault::WireSlowRead:
        WireFaults.inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      default:
        break;
      }
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N == 0)
        break; // peer closed
      if (N < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Idle tick. Once draining, stop waiting for more requests: the
          // peer gets a clean close and retries elsewhere.
          if (Owner->draining())
            break;
          continue;
        }
        if (errno == EINTR)
          continue;
        break;
      }
      FR.feed(Buf, static_cast<size_t>(N));
      DecodeStatus S = DecodeStatus::NeedMore;
      while (Alive && (S = FR.next(Payload)) == DecodeStatus::Ok) {
        // Stats frames ('I') are answered right here on the connection
        // thread from relaxed counter/gauge reads — no queue, no executor,
        // no runtime locks — so they keep working under Critical pressure
        // and during drain. They never count as Requests/Resp*, keeping
        // the net-balance invariant intact.
        if (!Payload.empty() && Payload[0] == 'I') {
          Introspect Q;
          if (decodeIntrospect(Payload, Q) != DecodeStatus::Ok) {
            ProtocolErrors.inc();
            Alive = false;
            break;
          }
          Introspects.inc();
          Response Resp;
          Resp.Id = Q.Id;
          Resp.St = Status::Ok;
          Resp.Body = Q.Options.find("format=prom") != std::string::npos
                          ? obs::renderPrometheus()
                          : statsJson();
          if (!sendAll(Fd, encodeFrame(encodeResponse(Resp))))
            Alive = false;
          continue;
        }
        Request Req;
        if (decodeRequest(Payload, Req) != DecodeStatus::Ok) {
          ProtocolErrors.inc();
          Alive = false;
          break;
        }
        Requests.inc();
        int64_t ExecEndNs = 0;
        Response Resp = dispatch(Req, ExecEndNs);
        if (!sendAll(Fd, encodeFrame(encodeResponse(Resp))))
          Alive = false;
        else if (ExecEndNs > 0)
          StageReplyNs.record(nowNs() - ExecEndNs);
      }
      if (S == DecodeStatus::Malformed || S == DecodeStatus::Oversized) {
        ProtocolErrors.inc();
        break;
      }
    }
    ::close(Fd);
    LiveConns.fetch_sub(1, std::memory_order_acq_rel);
    QCv.notify_all(); // executor may be waiting for quiescence
  }

  /// Admission + enqueue + wait: turns one decoded request into a
  /// response. \p ExecEndNs receives the executed request's exec-end stamp
  /// (0 when the request never reached the executor), so the caller can
  /// measure the reply stage after the response hits the wire.
  Response dispatch(const Request &Req, int64_t &ExecEndNs) {
    Response Resp;
    Resp.Id = Req.Id;

    if (Req.Kind == RequestKind::Ping) { // liveness: never touches the queue
      Resp.St = Status::Ok;
      Resp.Body = "pong";
      RespOk.inc();
      return Resp;
    }

    if (Owner->draining()) {
      Resp.St = Status::Draining;
      Resp.RetryAfterMs = 500;
      Resp.Body = "server draining";
      RespDraining.inc();
      return Resp;
    }

    int64_t Depth = QueueDepth.load(std::memory_order_relaxed);
    auto D = MemoryGovernor::get().adviseAdmission(Depth, Cfg.QueueCap);
    if (!D.Admit) {
      Resp.St = Status::Shed;
      Resp.RetryAfterMs = static_cast<uint32_t>(D.RetryAfterMs);
      Resp.Body = fmtPressure(D.Level, Depth, Cfg.QueueCap);
      RespShed.inc();
      obs::emit(obs::Ev::NetShed, Req.Id,
                static_cast<uint64_t>(D.Level));
      return Resp;
    }

    auto P = std::make_shared<Pending>();
    P->Req = Req;
    P->EnqueueNs = nowNs();
    if (Req.DeadlineMs > 0)
      P->DL.armAfter(static_cast<int64_t>(Req.DeadlineMs) * 1000000);
    std::future<Response> Fut = P->Prom.get_future();
    {
      std::lock_guard<std::mutex> L(QMu);
      Queue.push_back(P);
      QueueDepth.store(static_cast<int64_t>(Queue.size()),
                       std::memory_order_relaxed);
    }
    obs::emit(obs::Ev::NetFlowOut, Req.Id);
    QCv.notify_one();
    Response R = Fut.get(); // the executor always fulfills (or sheds)
    ExecEndNs = P->ExecEndNs.load(std::memory_order_acquire);
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Executor: owns the Runtime, runs batches as fork-join tasks
  //===--------------------------------------------------------------------===//

  void fulfill(Pending &P, Response &&Resp) {
    if (P.Fulfilled.exchange(true, std::memory_order_acq_rel))
      return;
    int64_t Now = nowNs();
    P.ExecEndNs.store(Now, std::memory_order_release);
    int64_t TotalNs = Now - P.EnqueueNs;
    int64_t QueueNs = P.DequeueNs > 0 ? P.DequeueNs - P.EnqueueNs : TotalNs;
    int64_t ExecNs = P.ExecStartNs > 0 ? Now - P.ExecStartNs : 0;
    LatencyNs.record(TotalNs);
    StageQueueNs.record(QueueNs);
    if (P.ExecStartNs > 0)
      StageExecNs.record(ExecNs);
    noteExemplar(P.Req.Id, TotalNs, QueueNs, ExecNs);
    switch (Resp.St) {
    case Status::Ok:
      RespOk.inc();
      break;
    case Status::Shed:
      RespShed.inc();
      break;
    case Status::DeadlineExpired:
      RespDeadline.inc();
      break;
    case Status::Error:
      RespError.inc();
      break;
    case Status::Draining:
      RespDraining.inc();
      break;
    }
    P.Prom.set_value(std::move(Resp));
  }

  /// Keeps the K worst-latency requests, sorted worst-first.
  void noteExemplar(uint64_t Id, int64_t TotalNs, int64_t QueueNs,
                    int64_t ExecNs) {
    std::lock_guard<std::mutex> G(ExemplarMu);
    if (Exemplars.size() >= MaxExemplars &&
        TotalNs <= Exemplars.back().TotalNs)
      return;
    Exemplar E;
    E.Id = Id;
    E.TotalNs = TotalNs;
    E.QueueNs = QueueNs;
    E.ExecNs = ExecNs;
    auto It = std::upper_bound(
        Exemplars.begin(), Exemplars.end(), TotalNs,
        [](int64_t V, const Exemplar &X) { return V > X.TotalNs; });
    Exemplars.insert(It, std::move(E));
    if (Exemplars.size() > MaxExemplars)
      Exemplars.pop_back();
  }

  /// Post-batch: attach the run's hottest critical-path source line to any
  /// exemplar this batch produced. Runs on the executor thread right after
  /// Runtime::run returned, while SpanLedger::lastRun() still describes
  /// this batch's DAG (no-op unless MPL_SPANS armed the ledger).
  void annotateExemplars(const std::vector<std::shared_ptr<Pending>> &Batch) {
    obs::SpanRunSummary Sum = obs::SpanLedger::get().lastRun();
    if (!Sum.Valid || Sum.Lines.empty())
      return;
    uint32_t BestLoc = 0;
    int64_t BestCp = -1;
    for (const auto &[Loc, LS] : Sum.Lines)
      if (LS.CpSelfNs > BestCp) {
        BestCp = LS.CpSelfNs;
        BestLoc = Loc;
      }
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "L%u:%u cp_self_ns=%lld", BestLoc >> 8,
                  BestLoc & 0xffu, static_cast<long long>(BestCp));
    std::lock_guard<std::mutex> G(ExemplarMu);
    for (const auto &P : Batch)
      for (Exemplar &E : Exemplars)
        if (E.Id == P->Req.Id && E.CpLine.empty())
          E.CpLine = Buf;
  }

  static void appendHistJson(std::string &Out, const char *Key,
                             const Histogram &H) {
    Histogram::Percentiles P = H.percentiles();
    char Buf[200];
    std::snprintf(Buf, sizeof(Buf),
                  "\"%s\":{\"count\":%lld,\"p50\":%lld,\"p95\":%lld,"
                  "\"p99\":%lld,\"p999\":%lld}",
                  Key, static_cast<long long>(H.count()),
                  static_cast<long long>(P.P50), static_cast<long long>(P.P95),
                  static_cast<long long>(P.P99),
                  static_cast<long long>(P.P999));
    Out += Buf;
  }

  static void appendWindowJson(std::string &Out, const char *Key,
                               const RollingWindow::WindowStats &W) {
    char Buf[200];
    std::snprintf(Buf, sizeof(Buf),
                  "\"%s\":{\"count\":%lld,\"p50\":%lld,\"p95\":%lld,"
                  "\"p99\":%lld,\"p999\":%lld}",
                  Key, static_cast<long long>(W.Count),
                  static_cast<long long>(W.Pct.P50),
                  static_cast<long long>(W.Pct.P95),
                  static_cast<long long>(W.Pct.P99),
                  static_cast<long long>(W.Pct.P999));
    Out += Buf;
  }

  /// The mpl-stats/1 snapshot: everything here is a relaxed atomic read, a
  /// registry snapshot under its own short lock, or the rolling windows'
  /// small internal mutex — never the queue lock, the executor, or any
  /// runtime lock, so this answers at full speed mid-load, under Critical
  /// pressure, and during drain.
  std::string statsJson() {
    int64_t Now = nowNs();
    MemoryGovernor &MG = MemoryGovernor::get();
    char Buf[512];
    std::string Out = "{\"mpl-stats/1\":{";
    std::snprintf(Buf, sizeof(Buf),
                  "\"t_ns\":%lld,\"status\":\"%s\",\"pressure\":\"%s\","
                  "\"queue_depth\":%lld,\"queue_cap\":%d,\"inflight\":%lld",
                  static_cast<long long>(Now),
                  Owner->draining() ? "draining" : "serving",
                  pressureName(MG.pressure()),
                  static_cast<long long>(
                      QueueDepth.load(std::memory_order_relaxed)),
                  Cfg.QueueCap,
                  static_cast<long long>(
                      Inflight.load(std::memory_order_relaxed)));
    Out += Buf;

    Out += ",\"counters\":{";
    const Stat *Counters[] = {&Accepted,      &Requests,  &RespOk,
                              &RespShed,      &RespDeadline, &RespError,
                              &RespDraining,  &ProtocolErrors, &WireFaults,
                              &Introspects};
    bool First = true;
    for (const Stat *S : Counters) {
      if (!First)
        Out += ",";
      First = false;
      std::snprintf(Buf, sizeof(Buf), "\"%s\":%lld", S->name(),
                    static_cast<long long>(S->get()));
      Out += Buf;
    }
    Out += "}";

    em::CounterSnapshot E = em::Counts.snapshot();
    std::snprintf(
        Buf, sizeof(Buf),
        ",\"em\":{\"entangled_reads\":%lld,\"pins_down\":%lld,"
        "\"pins_cross\":%lld,\"pins_holder\":%lld,\"pinned_bytes\":%lld,"
        "\"live_pinned_objects\":%lld,\"live_pinned_bytes\":%lld,"
        "\"cont_captured\":%lld,\"cont_resumed\":%lld}",
        static_cast<long long>(E.EntangledReads),
        static_cast<long long>(E.DownPointerPins),
        static_cast<long long>(E.CrossPointerPins),
        static_cast<long long>(E.PinnedHolderPins),
        static_cast<long long>(E.PinnedBytes),
        static_cast<long long>(E.livePinnedObjects()),
        static_cast<long long>(E.livePinnedBytes()),
        static_cast<long long>(E.ContCaptured),
        static_cast<long long>(E.ContResumed));
    Out += Buf;

    std::snprintf(Buf, sizeof(Buf),
                  ",\"mm\":{\"outstanding_bytes\":%lld,\"limit_bytes\":%lld,"
                  "\"pinned_bytes\":%lld}",
                  static_cast<long long>(ChunkPool::get().outstandingBytes()),
                  static_cast<long long>(MG.config().LimitBytes),
                  static_cast<long long>(MG.pinnedBytes()));
    Out += Buf;

    Out += ",";
    appendHistJson(Out, "latency", LatencyNs);

    Out += ",\"stage\":{";
    appendHistJson(Out, "queue", StageQueueNs);
    Out += ",";
    appendHistJson(Out, "exec", StageExecNs);
    Out += ",";
    appendHistJson(Out, "reply", StageReplyNs);
    Out += "}";

    RollingWindow::WindowStats WL = WinLatency.window(Now);
    std::snprintf(Buf, sizeof(Buf), ",\"window\":{\"window_ns\":%lld,",
                  static_cast<long long>(WL.WindowNs));
    Out += Buf;
    appendWindowJson(Out, "latency", WL);
    Out += ",";
    appendWindowJson(Out, "queue", WinQueue.window(Now));
    Out += ",";
    appendWindowJson(Out, "exec", WinExec.window(Now));
    Out += "}";

    Out += ",\"exemplars\":[";
    {
      std::lock_guard<std::mutex> G(ExemplarMu);
      for (size_t I = 0; I < Exemplars.size(); ++I) {
        const Exemplar &X = Exemplars[I];
        if (I)
          Out += ",";
        std::snprintf(Buf, sizeof(Buf),
                      "{\"id\":%llu,\"total_ns\":%lld,\"queue_ns\":%lld,"
                      "\"exec_ns\":%lld,\"cp\":\"%s\"}",
                      static_cast<unsigned long long>(X.Id),
                      static_cast<long long>(X.TotalNs),
                      static_cast<long long>(X.QueueNs),
                      static_cast<long long>(X.ExecNs), X.CpLine.c_str());
        Out += Buf;
      }
    }
    Out += "]}}";
    return Out;
  }

  /// The request body proper; runs on a strand inside Runtime::run with the
  /// request's DeadlineCtx attached. Throws on evaluation failure.
  std::string runBody(const Request &Req) {
    if (Req.Kind == RequestKind::Pml) {
      std::string Out, Rendered, Ty;
      std::vector<std::string> Errs;
      if (!pml::evalSource(Req.Body, Out, Rendered, Ty, Errs))
        throw std::runtime_error(Errs.empty() ? "pml evaluation failed"
                                              : Errs.front());
      return Out + Rendered + " : " + Ty;
    }
    // Workload: "<name> <n>".
    std::istringstream IS(Req.Body);
    std::string Name;
    int64_t N = 0;
    IS >> Name >> N;
    if (Name == "fib")
      return std::to_string(wl::fib(N > 0 ? N : 25));
    if (Name == "nqueens")
      return std::to_string(wl::nqueens(N > 0 ? static_cast<int>(N) : 8));
    if (Name == "primes") {
      Object *A = wl::primesUpTo(N > 0 ? N : 100000);
      return std::to_string(ops::arrLen(A));
    }
    if (Name == "sort") {
      int64_t Len = N > 0 ? N : 100000;
      Object *A = wl::randomInts(Len, 1 << 20, 0x5eedull + Req.Id);
      Object *S = wl::mergesortInts(A);
      return std::to_string(wl::sumInts(S));
    }
    throw std::runtime_error("unknown workload: " + Name);
  }

  /// Leaf of the batch fan-out: one request on its own strand/leaf heap.
  void runOne(Pending &P) {
    obs::emit(obs::Ev::NetFlowIn, P.Req.Id);
    P.ExecStartNs = nowNs();
    Inflight.fetch_add(1, std::memory_order_relaxed);
    rt::ScopedDeadline SD(&P.DL);
    Response Resp;
    Resp.Id = P.Req.Id;
    try {
      rt::checkDeadline(); // expired while queued
      Resp.Body = runBody(P.Req);
      Resp.St = Status::Ok;
    } catch (const DeadlineError &E) {
      Resp.St = Status::DeadlineExpired;
      Resp.Body =
          "deadline overrun by " + std::to_string(E.overrunNs()) + "ns";
      obs::emit(obs::Ev::NetDeadlineExpired, P.Req.Id,
                static_cast<uint64_t>(E.overrunNs()));
    } catch (const OutOfMemoryError &E) {
      auto D = MemoryGovernor::get().adviseAdmission(0, 1);
      Resp.St = Status::Shed;
      Resp.RetryAfterMs = static_cast<uint32_t>(
          D.RetryAfterMs > 0 ? D.RetryAfterMs : 100);
      Resp.Body = "oom: requested=" + std::to_string(E.requestedBytes()) +
                  " outstanding=" + std::to_string(E.outstandingBytes());
      obs::emit(obs::Ev::NetShed, P.Req.Id,
                static_cast<uint64_t>(MemoryGovernor::get().pressure()));
    } catch (const std::exception &E) {
      Resp.St = Status::Error;
      Resp.Body = E.what();
    }
    Inflight.fetch_sub(1, std::memory_order_relaxed);
    fulfill(P, std::move(Resp));
  }

  /// Binary fan-out so each request lands on its own rt::par leaf heap.
  void execRange(std::vector<std::shared_ptr<Pending>> &Batch, size_t Lo,
                 size_t Hi) {
    if (Hi - Lo == 1) {
      runOne(*Batch[Lo]);
      return;
    }
    size_t Mid = Lo + (Hi - Lo) / 2;
    rt::par([&] { execRange(Batch, Lo, Mid); return 0; },
            [&] { execRange(Batch, Mid, Hi); return 0; });
  }

  void execLoop() {
    rt::Config RC;
    RC.NumWorkers = Cfg.NumWorkers;
    auto R = std::make_unique<rt::Runtime>(RC);
    int64_t DrainStartNs = -1;
    for (;;) {
      std::vector<std::shared_ptr<Pending>> Batch;
      {
        std::unique_lock<std::mutex> L(QMu);
        QCv.wait_for(L, std::chrono::milliseconds(50),
                     [&] { return !Queue.empty(); });
        int64_t PopNs = nowNs();
        while (!Queue.empty() &&
               Batch.size() < static_cast<size_t>(Cfg.BatchMax)) {
          Queue.front()->DequeueNs = PopNs;
          Batch.push_back(std::move(Queue.front()));
          Queue.pop_front();
        }
        QueueDepth.store(static_cast<int64_t>(Queue.size()),
                         std::memory_order_relaxed);
      }
      bool Draining = Owner->draining();
      if (Draining && DrainStartNs < 0) {
        DrainStartNs = nowNs();
        obs::emit(obs::Ev::NetDrain,
                  static_cast<uint64_t>(Batch.size() +
                                        QueueDepth.load()));
      }
      if (!Batch.empty()) {
        bool DrainExpired =
            DrainStartNs >= 0 &&
            nowNs() - DrainStartNs >
                static_cast<int64_t>(Cfg.DrainTimeoutMs) * 1000000;
        if (DrainExpired) {
          // Past the drain budget: shed instead of running.
          for (auto &P : Batch) {
            Response Resp;
            Resp.Id = P->Req.Id;
            Resp.St = Status::Draining;
            Resp.RetryAfterMs = 500;
            Resp.Body = "drain timeout";
            fulfill(*P, std::move(Resp));
          }
        } else {
          try {
            R->run([&] { execRange(Batch, 0, Batch.size()); });
          } catch (...) {
            // Batch-level failure (e.g. OOM in the fan-out itself, before
            // any request's own catch): shed whatever wasn't fulfilled.
          }
          for (auto &P : Batch) {
            if (!P->Fulfilled.load(std::memory_order_acquire)) {
              Response Resp;
              Resp.Id = P->Req.Id;
              Resp.St = Status::Shed;
              Resp.RetryAfterMs = 100;
              Resp.Body = "batch aborted under memory pressure";
              obs::emit(obs::Ev::NetShed, P->Req.Id,
                        static_cast<uint64_t>(
                            MemoryGovernor::get().pressure()));
              fulfill(*P, std::move(Resp));
            }
          }
          annotateExemplars(Batch);
        }
        continue; // drain the queue before checking for exit
      }
      // Exit once drain has begun, the accept loop is gone, every
      // connection has unwound (so nothing can enqueue), and the queue is
      // empty. Destroying the Runtime below flushes the obs exports.
      if (Draining && AcceptStopped.load(std::memory_order_acquire) &&
          LiveConns.load(std::memory_order_acquire) == 0) {
        std::lock_guard<std::mutex> L(QMu);
        if (Queue.empty())
          break;
      }
    }
    R.reset(); // Runtime dtor: trace/metrics/span export flush
  }

  //===--------------------------------------------------------------------===//
  // Accept loop
  //===--------------------------------------------------------------------===//

  void acceptLoop() {
    pollfd PF{};
    PF.fd = ListenFd;
    PF.events = POLLIN;
    while (!Owner->draining()) {
      // The accept loop doubles as the introspection plane's periodic
      // driver: rotate the rolling-window snapshots and service a pending
      // MPL_STATS_DUMP each ~100ms tick. Both are O(buckets) and touch no
      // executor state.
      int64_t Tick = nowNs();
      WinLatency.maybeRotate(Tick);
      WinQueue.maybeRotate(Tick);
      WinExec.maybeRotate(Tick);
      obs::serviceStatsDump();
      int R = ::poll(&PF, 1, 100);
      if (R <= 0)
        continue;
      sockaddr_in Peer{};
      socklen_t PeerLen = sizeof(Peer);
      int Fd = ::accept(ListenFd, reinterpret_cast<sockaddr *>(&Peer),
                        &PeerLen);
      if (Fd < 0)
        continue;
      if (LiveConns.load(std::memory_order_relaxed) >= Cfg.MaxConns) {
        ::close(Fd);
        continue;
      }
      Accepted.inc();
      LiveConns.fetch_add(1, std::memory_order_acq_rel);
      uint64_t ConnId = NextConnId.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> L(ConnMu);
      ConnThreads.emplace_back([this, Fd, ConnId] { serveConn(Fd, ConnId); });
    }
    ::close(ListenFd);
    ListenFd = -1;
    AcceptStopped.store(true, std::memory_order_release);
    QCv.notify_all();
  }
};

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(const ServerConfig &C) : I(new Impl(C, this)) {}

Server::~Server() {
  if (I->Started)
    waitUntilDrained();
  delete I;
}

bool Server::start() {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(I->Cfg.Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    ::close(Fd);
    return false;
  }
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  BoundPort = ntohs(Addr.sin_port);
  I->ListenFd = Fd;
  I->Started = true;
  I->AcceptThread = std::thread([this] { I->acceptLoop(); });
  I->ExecThread = std::thread([this] { I->execLoop(); });
  return true;
}

void Server::waitUntilDrained() {
  requestDrain();
  std::lock_guard<std::mutex> JL(I->JoinMu);
  if (I->Joined || !I->Started)
    return;
  I->AcceptThread.join();
  // The accept thread is gone, so ConnThreads is stable now.
  {
    std::lock_guard<std::mutex> L(I->ConnMu);
    for (auto &T : I->ConnThreads)
      T.join();
    I->ConnThreads.clear();
  }
  I->ExecThread.join();
  I->Joined = true;
}

ServerTotals Server::totals() const {
  ServerTotals T;
  T.Accepted = I->Accepted.get();
  T.Requests = I->Requests.get();
  T.Ok = I->RespOk.get();
  T.Shed = I->RespShed.get();
  T.DeadlineExpired = I->RespDeadline.get();
  T.Errors = I->RespError.get();
  T.Draining = I->RespDraining.get();
  T.WireFaults = I->WireFaults.get();
  T.ProtocolErrors = I->ProtocolErrors.get();
  T.Introspects = I->Introspects.get();
  return T;
}
