//===- net/Server.cpp - Entanglement-managed request server ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "chaos/ChaosSchedule.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "mm/MemoryGovernor.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pml/Vm.h"
#include "support/Histogram.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "workloads/Collections.h"
#include "workloads/Kernels.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

using namespace mpl;
using namespace mpl::net;

namespace {

/// One admitted request in flight between a connection thread (producer,
/// waits on Prom's future) and the executor (consumer, fulfills it). The
/// DeadlineCtx is armed at enqueue so queueing time counts against the
/// deadline, and shared so an aborted strand's polls stay valid while the
/// connection thread still holds the future.
struct Pending {
  Request Req;
  DeadlineCtx DL;
  std::promise<Response> Prom;
  int64_t EnqueueNs = 0;
  std::atomic<bool> Fulfilled{false};
};

std::string fmtPressure(Pressure P, int64_t Depth, int64_t Cap) {
  std::ostringstream OS;
  OS << "pressure=" << pressureName(P) << " queue=" << Depth << "/" << Cap;
  return OS.str();
}

} // namespace

struct Server::Impl {
  ServerConfig Cfg;
  Server *Owner;

  int ListenFd = -1;
  std::thread AcceptThread;
  std::thread ExecThread;
  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::atomic<int> LiveConns{0};
  std::atomic<uint64_t> NextConnId{0};
  std::atomic<bool> AcceptStopped{false};
  bool Started = false;
  bool Joined = false;
  std::mutex JoinMu;

  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<std::shared_ptr<Pending>> Queue;
  std::atomic<int64_t> QueueDepth{0};
  std::atomic<int64_t> Inflight{0};

  // net.* observability surface (registry-backed, so tests/tools can read
  // them via StatRegistry::valueOf and the metrics exporters pick them up).
  Stat Accepted{"net.conns.accepted"};
  Stat Requests{"net.requests"};
  Stat RespOk{"net.resp.ok"};
  Stat RespShed{"net.resp.shed"};
  Stat RespDeadline{"net.resp.deadline_expired"};
  Stat RespError{"net.resp.error"};
  Stat RespDraining{"net.resp.draining"};
  Stat ProtocolErrors{"net.protocol.errors"};
  Stat WireFaults{"net.wire.faults"};
  Histogram LatencyNs{"net.request.latency.ns"};
  int QueueGaugeId = 0;
  int InflightGaugeId = 0;

  explicit Impl(const ServerConfig &C, Server *S) : Cfg(C), Owner(S) {
    QueueGaugeId = obs::MetricsSampler::get().registerGauge(
        "net.queue.depth",
        [this] { return QueueDepth.load(std::memory_order_relaxed); });
    InflightGaugeId = obs::MetricsSampler::get().registerGauge(
        "net.inflight",
        [this] { return Inflight.load(std::memory_order_relaxed); });
  }

  ~Impl() {
    obs::MetricsSampler::get().unregisterGauge(QueueGaugeId);
    obs::MetricsSampler::get().unregisterGauge(InflightGaugeId);
  }

  //===--------------------------------------------------------------------===//
  // Socket I/O with wire-chaos injection
  //===--------------------------------------------------------------------===//

  /// Sends all of \p Data, consulting the wire-fault channel first: Drop
  /// closes without writing, Truncate writes half a frame then gives up
  /// (the peer sees a mid-frame connection loss). Returns false when the
  /// connection is no longer usable.
  bool sendAll(int Fd, const std::string &Data) {
    chaos::preemptPoint(chaos::Point::WireWrite);
    size_t Limit = Data.size();
    bool FaultAfter = false;
    switch (chaos::wireFaultNow()) {
    case chaos::Fault::WireDrop:
      WireFaults.inc();
      return false;
    case chaos::Fault::WireTruncate:
      WireFaults.inc();
      Limit = Data.size() / 2;
      FaultAfter = true;
      break;
    case chaos::Fault::WireSlowRead:
      WireFaults.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      break;
    default:
      break;
    }
    size_t Off = 0;
    while (Off < Limit) {
      ssize_t N = ::send(Fd, Data.data() + Off, Limit - Off, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return !FaultAfter;
  }

  //===--------------------------------------------------------------------===//
  // Connection threads
  //===--------------------------------------------------------------------===//

  void serveConn(int Fd, uint64_t ConnId) {
    obs::emit(obs::Ev::NetAccept, ConnId);
    // Bounded recv so the loop notices drain within ~100ms.
    timeval TV{};
    TV.tv_usec = 100 * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));

    FrameReader FR;
    std::string Payload;
    char Buf[4096];
    bool Alive = true;
    while (Alive) {
      chaos::preemptPoint(chaos::Point::WireRead);
      switch (chaos::wireFaultNow()) {
      case chaos::Fault::WireDrop:
      case chaos::Fault::WireTruncate: // mid-request drop, seen from reads
        WireFaults.inc();
        Alive = false;
        continue;
      case chaos::Fault::WireSlowRead:
        WireFaults.inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      default:
        break;
      }
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N == 0)
        break; // peer closed
      if (N < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Idle tick. Once draining, stop waiting for more requests: the
          // peer gets a clean close and retries elsewhere.
          if (Owner->draining())
            break;
          continue;
        }
        if (errno == EINTR)
          continue;
        break;
      }
      FR.feed(Buf, static_cast<size_t>(N));
      DecodeStatus S = DecodeStatus::NeedMore;
      while (Alive && (S = FR.next(Payload)) == DecodeStatus::Ok) {
        Request Req;
        if (decodeRequest(Payload, Req) != DecodeStatus::Ok) {
          ProtocolErrors.inc();
          Alive = false;
          break;
        }
        Requests.inc();
        Response Resp = dispatch(Req);
        if (!sendAll(Fd, encodeFrame(encodeResponse(Resp))))
          Alive = false;
      }
      if (S == DecodeStatus::Malformed || S == DecodeStatus::Oversized) {
        ProtocolErrors.inc();
        break;
      }
    }
    ::close(Fd);
    LiveConns.fetch_sub(1, std::memory_order_acq_rel);
    QCv.notify_all(); // executor may be waiting for quiescence
  }

  /// Admission + enqueue + wait: turns one decoded request into a response.
  Response dispatch(const Request &Req) {
    Response Resp;
    Resp.Id = Req.Id;

    if (Req.Kind == RequestKind::Ping) { // liveness: never touches the queue
      Resp.St = Status::Ok;
      Resp.Body = "pong";
      RespOk.inc();
      return Resp;
    }

    if (Owner->draining()) {
      Resp.St = Status::Draining;
      Resp.RetryAfterMs = 500;
      Resp.Body = "server draining";
      RespDraining.inc();
      return Resp;
    }

    int64_t Depth = QueueDepth.load(std::memory_order_relaxed);
    auto D = MemoryGovernor::get().adviseAdmission(Depth, Cfg.QueueCap);
    if (!D.Admit) {
      Resp.St = Status::Shed;
      Resp.RetryAfterMs = static_cast<uint32_t>(D.RetryAfterMs);
      Resp.Body = fmtPressure(D.Level, Depth, Cfg.QueueCap);
      RespShed.inc();
      obs::emit(obs::Ev::NetShed, Req.Id,
                static_cast<uint64_t>(D.Level));
      return Resp;
    }

    auto P = std::make_shared<Pending>();
    P->Req = Req;
    P->EnqueueNs = nowNs();
    if (Req.DeadlineMs > 0)
      P->DL.armAfter(static_cast<int64_t>(Req.DeadlineMs) * 1000000);
    std::future<Response> Fut = P->Prom.get_future();
    {
      std::lock_guard<std::mutex> L(QMu);
      Queue.push_back(P);
      QueueDepth.store(static_cast<int64_t>(Queue.size()),
                       std::memory_order_relaxed);
    }
    obs::emit(obs::Ev::NetFlowOut, Req.Id);
    QCv.notify_one();
    return Fut.get(); // the executor always fulfills (or sheds on drain)
  }

  //===--------------------------------------------------------------------===//
  // Executor: owns the Runtime, runs batches as fork-join tasks
  //===--------------------------------------------------------------------===//

  void fulfill(Pending &P, Response &&Resp) {
    if (P.Fulfilled.exchange(true, std::memory_order_acq_rel))
      return;
    LatencyNs.record(nowNs() - P.EnqueueNs);
    switch (Resp.St) {
    case Status::Ok:
      RespOk.inc();
      break;
    case Status::Shed:
      RespShed.inc();
      break;
    case Status::DeadlineExpired:
      RespDeadline.inc();
      break;
    case Status::Error:
      RespError.inc();
      break;
    case Status::Draining:
      RespDraining.inc();
      break;
    }
    P.Prom.set_value(std::move(Resp));
  }

  /// The request body proper; runs on a strand inside Runtime::run with the
  /// request's DeadlineCtx attached. Throws on evaluation failure.
  std::string runBody(const Request &Req) {
    if (Req.Kind == RequestKind::Pml) {
      std::string Out, Rendered, Ty;
      std::vector<std::string> Errs;
      if (!pml::evalSource(Req.Body, Out, Rendered, Ty, Errs))
        throw std::runtime_error(Errs.empty() ? "pml evaluation failed"
                                              : Errs.front());
      return Out + Rendered + " : " + Ty;
    }
    // Workload: "<name> <n>".
    std::istringstream IS(Req.Body);
    std::string Name;
    int64_t N = 0;
    IS >> Name >> N;
    if (Name == "fib")
      return std::to_string(wl::fib(N > 0 ? N : 25));
    if (Name == "nqueens")
      return std::to_string(wl::nqueens(N > 0 ? static_cast<int>(N) : 8));
    if (Name == "primes") {
      Object *A = wl::primesUpTo(N > 0 ? N : 100000);
      return std::to_string(ops::arrLen(A));
    }
    if (Name == "sort") {
      int64_t Len = N > 0 ? N : 100000;
      Object *A = wl::randomInts(Len, 1 << 20, 0x5eedull + Req.Id);
      Object *S = wl::mergesortInts(A);
      return std::to_string(wl::sumInts(S));
    }
    throw std::runtime_error("unknown workload: " + Name);
  }

  /// Leaf of the batch fan-out: one request on its own strand/leaf heap.
  void runOne(Pending &P) {
    obs::emit(obs::Ev::NetFlowIn, P.Req.Id);
    Inflight.fetch_add(1, std::memory_order_relaxed);
    rt::ScopedDeadline SD(&P.DL);
    Response Resp;
    Resp.Id = P.Req.Id;
    try {
      rt::checkDeadline(); // expired while queued
      Resp.Body = runBody(P.Req);
      Resp.St = Status::Ok;
    } catch (const DeadlineError &E) {
      Resp.St = Status::DeadlineExpired;
      Resp.Body =
          "deadline overrun by " + std::to_string(E.overrunNs()) + "ns";
      obs::emit(obs::Ev::NetDeadlineExpired, P.Req.Id,
                static_cast<uint64_t>(E.overrunNs()));
    } catch (const OutOfMemoryError &E) {
      auto D = MemoryGovernor::get().adviseAdmission(0, 1);
      Resp.St = Status::Shed;
      Resp.RetryAfterMs = static_cast<uint32_t>(
          D.RetryAfterMs > 0 ? D.RetryAfterMs : 100);
      Resp.Body = "oom: requested=" + std::to_string(E.requestedBytes()) +
                  " outstanding=" + std::to_string(E.outstandingBytes());
      obs::emit(obs::Ev::NetShed, P.Req.Id,
                static_cast<uint64_t>(MemoryGovernor::get().pressure()));
    } catch (const std::exception &E) {
      Resp.St = Status::Error;
      Resp.Body = E.what();
    }
    Inflight.fetch_sub(1, std::memory_order_relaxed);
    fulfill(P, std::move(Resp));
  }

  /// Binary fan-out so each request lands on its own rt::par leaf heap.
  void execRange(std::vector<std::shared_ptr<Pending>> &Batch, size_t Lo,
                 size_t Hi) {
    if (Hi - Lo == 1) {
      runOne(*Batch[Lo]);
      return;
    }
    size_t Mid = Lo + (Hi - Lo) / 2;
    rt::par([&] { execRange(Batch, Lo, Mid); return 0; },
            [&] { execRange(Batch, Mid, Hi); return 0; });
  }

  void execLoop() {
    rt::Config RC;
    RC.NumWorkers = Cfg.NumWorkers;
    auto R = std::make_unique<rt::Runtime>(RC);
    int64_t DrainStartNs = -1;
    for (;;) {
      std::vector<std::shared_ptr<Pending>> Batch;
      {
        std::unique_lock<std::mutex> L(QMu);
        QCv.wait_for(L, std::chrono::milliseconds(50),
                     [&] { return !Queue.empty(); });
        while (!Queue.empty() &&
               Batch.size() < static_cast<size_t>(Cfg.BatchMax)) {
          Batch.push_back(std::move(Queue.front()));
          Queue.pop_front();
        }
        QueueDepth.store(static_cast<int64_t>(Queue.size()),
                         std::memory_order_relaxed);
      }
      bool Draining = Owner->draining();
      if (Draining && DrainStartNs < 0) {
        DrainStartNs = nowNs();
        obs::emit(obs::Ev::NetDrain,
                  static_cast<uint64_t>(Batch.size() +
                                        QueueDepth.load()));
      }
      if (!Batch.empty()) {
        bool DrainExpired =
            DrainStartNs >= 0 &&
            nowNs() - DrainStartNs >
                static_cast<int64_t>(Cfg.DrainTimeoutMs) * 1000000;
        if (DrainExpired) {
          // Past the drain budget: shed instead of running.
          for (auto &P : Batch) {
            Response Resp;
            Resp.Id = P->Req.Id;
            Resp.St = Status::Draining;
            Resp.RetryAfterMs = 500;
            Resp.Body = "drain timeout";
            fulfill(*P, std::move(Resp));
          }
        } else {
          try {
            R->run([&] { execRange(Batch, 0, Batch.size()); });
          } catch (...) {
            // Batch-level failure (e.g. OOM in the fan-out itself, before
            // any request's own catch): shed whatever wasn't fulfilled.
          }
          for (auto &P : Batch) {
            if (!P->Fulfilled.load(std::memory_order_acquire)) {
              Response Resp;
              Resp.Id = P->Req.Id;
              Resp.St = Status::Shed;
              Resp.RetryAfterMs = 100;
              Resp.Body = "batch aborted under memory pressure";
              obs::emit(obs::Ev::NetShed, P->Req.Id,
                        static_cast<uint64_t>(
                            MemoryGovernor::get().pressure()));
              fulfill(*P, std::move(Resp));
            }
          }
        }
        continue; // drain the queue before checking for exit
      }
      // Exit once drain has begun, the accept loop is gone, every
      // connection has unwound (so nothing can enqueue), and the queue is
      // empty. Destroying the Runtime below flushes the obs exports.
      if (Draining && AcceptStopped.load(std::memory_order_acquire) &&
          LiveConns.load(std::memory_order_acquire) == 0) {
        std::lock_guard<std::mutex> L(QMu);
        if (Queue.empty())
          break;
      }
    }
    R.reset(); // Runtime dtor: trace/metrics/span export flush
  }

  //===--------------------------------------------------------------------===//
  // Accept loop
  //===--------------------------------------------------------------------===//

  void acceptLoop() {
    pollfd PF{};
    PF.fd = ListenFd;
    PF.events = POLLIN;
    while (!Owner->draining()) {
      int R = ::poll(&PF, 1, 100);
      if (R <= 0)
        continue;
      sockaddr_in Peer{};
      socklen_t PeerLen = sizeof(Peer);
      int Fd = ::accept(ListenFd, reinterpret_cast<sockaddr *>(&Peer),
                        &PeerLen);
      if (Fd < 0)
        continue;
      if (LiveConns.load(std::memory_order_relaxed) >= Cfg.MaxConns) {
        ::close(Fd);
        continue;
      }
      Accepted.inc();
      LiveConns.fetch_add(1, std::memory_order_acq_rel);
      uint64_t ConnId = NextConnId.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> L(ConnMu);
      ConnThreads.emplace_back([this, Fd, ConnId] { serveConn(Fd, ConnId); });
    }
    ::close(ListenFd);
    ListenFd = -1;
    AcceptStopped.store(true, std::memory_order_release);
    QCv.notify_all();
  }
};

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(const ServerConfig &C) : I(new Impl(C, this)) {}

Server::~Server() {
  if (I->Started)
    waitUntilDrained();
  delete I;
}

bool Server::start() {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(I->Cfg.Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    ::close(Fd);
    return false;
  }
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  BoundPort = ntohs(Addr.sin_port);
  I->ListenFd = Fd;
  I->Started = true;
  I->AcceptThread = std::thread([this] { I->acceptLoop(); });
  I->ExecThread = std::thread([this] { I->execLoop(); });
  return true;
}

void Server::waitUntilDrained() {
  requestDrain();
  std::lock_guard<std::mutex> JL(I->JoinMu);
  if (I->Joined || !I->Started)
    return;
  I->AcceptThread.join();
  // The accept thread is gone, so ConnThreads is stable now.
  {
    std::lock_guard<std::mutex> L(I->ConnMu);
    for (auto &T : I->ConnThreads)
      T.join();
    I->ConnThreads.clear();
  }
  I->ExecThread.join();
  I->Joined = true;
}

ServerTotals Server::totals() const {
  ServerTotals T;
  T.Accepted = I->Accepted.get();
  T.Requests = I->Requests.get();
  T.Ok = I->RespOk.get();
  T.Shed = I->RespShed.get();
  T.DeadlineExpired = I->RespDeadline.get();
  T.Errors = I->RespError.get();
  T.Draining = I->RespDraining.get();
  T.WireFaults = I->WireFaults.get();
  T.ProtocolErrors = I->ProtocolErrors.get();
  return T;
}
