//===- net/Server.h - Entanglement-managed request server ------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TCP front-end on the runtime: every request runs a pml program or a
/// named workload as a fork-join task with its own leaf heap, so
/// per-request collection is sync-free and per-request failure is
/// recoverable. The robustness ladder (DESIGN.md §15):
///
///  - *admission*: connection threads consult the MemoryGovernor's
///    pressure ladder before enqueueing (adviseAdmission); refused
///    requests get a structured SHED response with a Retry-After hint and
///    never touch the runtime;
///  - *execution*: one executor thread owns the (singleton) Runtime and
///    runs admitted requests in batches — a binary rt::par fan-out gives
///    each request a leaf heap. A request that runs out of memory or past
///    its deadline unwinds at its own branch boundary (SHED /
///    DEADLINE_EXPIRED); the rest of the batch is unaffected;
///  - *deadlines*: each request carries a DeadlineCtx, attached via
///    rt::ScopedDeadline and inherited across every fork; the scheduler's
///    strand-quanta poll latches expiry, the safe-point checks throw, and
///    the join rule releases the aborted task's pins (leaked pins == 0 is
///    asserted by the smoke harness);
///  - *drain*: requestDrain() (SIGTERM-safe: one relaxed store) stops the
///    accept loop, lets queued requests finish — or sheds them as DRAINING
///    once the drain timeout passes — and flushes trace/metrics/span
///    exports by destroying the Runtime at quiescence;
///  - *wire chaos*: the socket read/write paths consult
///    chaos::wireFaultNow() (truncated frames, mid-request drops,
///    slow-loris stalls), so the whole failure surface is replayable by
///    seed like every other chaos point.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_NET_SERVER_H
#define MPL_NET_SERVER_H

#include "net/Frame.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace mpl {
namespace net {

struct ServerConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t Port = 0;

  /// Runtime worker threads for request execution.
  int NumWorkers = 2;

  /// Bounded request queue; the admission ladder shrinks the usable
  /// fraction as pressure rises (full / half / quarter / none).
  int QueueCap = 64;

  /// Max requests fanned out per Runtime::run batch.
  int BatchMax = 8;

  /// Max simultaneously served connections; excess accepts are closed.
  int MaxConns = 128;

  /// After drain starts, queued requests have this long to finish before
  /// being shed with DRAINING.
  int DrainTimeoutMs = 5000;
};

/// Totals for the ops story (mirrored as net.* Stats / gauges).
struct ServerTotals {
  int64_t Accepted = 0;        ///< Connections accepted.
  int64_t Requests = 0;        ///< Requests decoded off the wire.
  int64_t Ok = 0;
  int64_t Shed = 0;            ///< Admission or mid-run OOM sheds.
  int64_t DeadlineExpired = 0;
  int64_t Errors = 0;          ///< Evaluation errors (structured ERROR).
  int64_t Draining = 0;        ///< Requests refused/shed during drain.
  int64_t WireFaults = 0;      ///< Chaos faults injected on this server.
  int64_t ProtocolErrors = 0;  ///< Malformed/oversized frames received.
  /// Stats ('I') frames served. Not part of Requests or any Resp* total:
  /// the introspection plane never perturbs the request-counter balance
  /// (Requests == Ok + Shed + DeadlineExpired + Errors + Draining).
  int64_t Introspects = 0;
};

/// The server. Lifecycle: construct → start() → (requests flow) →
/// requestDrain() → waitUntilDrained() → destroy. start() may be called
/// once.
class Server {
public:
  explicit Server(const ServerConfig &C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the accept loop and the executor (which
  /// constructs the process's Runtime — at most one Server may run at a
  /// time, same constraint as Runtime itself). False on bind failure.
  bool start();

  /// The bound port (valid after start(); useful with Port = 0).
  uint16_t port() const { return BoundPort; }

  /// Begins graceful drain. Async-signal-safe: one atomic store — install
  /// it directly in a SIGTERM handler. Idempotent.
  void requestDrain() { DrainFlag.store(true, std::memory_order_release); }

  bool draining() const { return DrainFlag.load(std::memory_order_acquire); }

  /// Blocks until the accept loop, all connections and the executor have
  /// shut down and the Runtime has been destroyed (exports flushed).
  /// Implies requestDrain().
  void waitUntilDrained();

  ServerTotals totals() const;

private:
  struct Impl;
  Impl *I;
  std::atomic<bool> DrainFlag{false};
  uint16_t BoundPort = 0;
};

} // namespace net
} // namespace mpl

#endif // MPL_NET_SERVER_H
