//===- net/Frame.cpp - Varint-framed wire protocol ------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Frame.h"

#include <cstring>

using namespace mpl;
using namespace mpl::net;

const char *net::decodeStatusName(DecodeStatus S) {
  switch (S) {
  case DecodeStatus::Ok:
    return "ok";
  case DecodeStatus::NeedMore:
    return "need-more";
  case DecodeStatus::Malformed:
    return "malformed";
  case DecodeStatus::Oversized:
    return "oversized";
  }
  return "?";
}

const char *net::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "OK";
  case Status::Shed:
    return "SHED";
  case Status::DeadlineExpired:
    return "DEADLINE_EXPIRED";
  case Status::Error:
    return "ERROR";
  case Status::Draining:
    return "DRAINING";
  }
  return "?";
}

void net::putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

DecodeStatus net::getVarint64(const uint8_t *P, size_t Len, uint64_t &V,
                              size_t &Used) {
  V = 0;
  int Shift = 0;
  for (size_t I = 0; I < Len; ++I) {
    if (Shift >= 64)
      return DecodeStatus::Malformed;
    uint8_t B = P[I];
    // Guard the final byte: at shift 63 only the low bit fits.
    if (Shift == 63 && (B & 0x7e) != 0)
      return DecodeStatus::Malformed;
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80)) {
      // Reject non-canonical zero continuation ("0x80 0x00" for 0): a
      // trailing zero byte that contributed nothing means the encoder is
      // broken or the stream is garbage.
      if (B == 0 && I > 0)
        return DecodeStatus::Malformed;
      Used = I + 1;
      return DecodeStatus::Ok;
    }
    Shift += 7;
  }
  return DecodeStatus::NeedMore;
}

DecodeStatus net::getVarint(const uint8_t *P, size_t Len, uint32_t &V,
                            size_t &Used) {
  uint64_t V64 = 0;
  size_t N = Len < static_cast<size_t>(MaxVarintBytes)
                 ? Len
                 : static_cast<size_t>(MaxVarintBytes);
  DecodeStatus S = getVarint64(P, N, V64, Used);
  if (S == DecodeStatus::NeedMore && Len >= static_cast<size_t>(MaxVarintBytes))
    return DecodeStatus::Malformed; // 5 continuation bytes: not a u32.
  if (S != DecodeStatus::Ok)
    return S;
  if (V64 > 0xffffffffull)
    return DecodeStatus::Malformed;
  V = static_cast<uint32_t>(V64);
  return DecodeStatus::Ok;
}

std::string net::encodeFrame(const std::string &Payload) {
  std::string Out;
  Out.reserve(Payload.size() + MaxVarintBytes);
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

void FrameReader::feed(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Buf.insert(Buf.end(), P, P + Len);
}

DecodeStatus FrameReader::next(std::string &Payload) {
  if (Stuck != DecodeStatus::Ok)
    return Stuck;
  uint32_t FrameLen = 0;
  size_t Used = 0;
  DecodeStatus S = getVarint(Buf.data() + Off, Buf.size() - Off, FrameLen,
                             Used);
  if (S != DecodeStatus::Ok) {
    if (S != DecodeStatus::NeedMore)
      Stuck = S;
    return S;
  }
  if (FrameLen > MaxFrameBytes) {
    Stuck = DecodeStatus::Oversized;
    return Stuck;
  }
  if (Buf.size() - Off - Used < FrameLen)
    return DecodeStatus::NeedMore;
  Payload.assign(reinterpret_cast<const char *>(Buf.data() + Off + Used),
                 FrameLen);
  Off += Used + FrameLen;
  // Compact once the consumed prefix dominates (amortized O(1) per byte).
  if (Off > 4096 && Off * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Off));
    Off = 0;
  }
  return DecodeStatus::Ok;
}

namespace {

void putBytes(std::string &Out, const std::string &B) {
  net::putVarint(Out, B.size());
  Out += B;
}

/// Cursor over a complete payload; any NeedMore inside it is Malformed.
struct Cursor {
  const uint8_t *P;
  size_t Len;
  size_t Pos = 0;

  bool u8(uint8_t &V) {
    if (Pos >= Len)
      return false;
    V = P[Pos++];
    return true;
  }
  bool varint32(uint32_t &V) {
    size_t Used = 0;
    if (net::getVarint(P + Pos, Len - Pos, V, Used) != DecodeStatus::Ok)
      return false;
    Pos += Used;
    return true;
  }
  bool varint64(uint64_t &V) {
    size_t Used = 0;
    if (net::getVarint64(P + Pos, Len - Pos, V, Used) != DecodeStatus::Ok)
      return false;
    Pos += Used;
    return true;
  }
  bool bytes(std::string &B) {
    uint32_t N = 0;
    if (!varint32(N) || Len - Pos < N)
      return false;
    B.assign(reinterpret_cast<const char *>(P + Pos), N);
    Pos += N;
    return true;
  }
  bool done() const { return Pos == Len; }
};

} // namespace

std::string net::encodeRequest(const Request &R) {
  std::string Out;
  Out.reserve(16 + R.Body.size());
  Out.push_back('Q');
  putVarint(Out, R.Id);
  Out.push_back(static_cast<char>(R.Kind));
  putVarint(Out, R.DeadlineMs);
  putBytes(Out, R.Body);
  return Out;
}

std::string net::encodeResponse(const Response &R) {
  std::string Out;
  Out.reserve(16 + R.Body.size());
  Out.push_back('S');
  putVarint(Out, R.Id);
  Out.push_back(static_cast<char>(R.St));
  putVarint(Out, R.RetryAfterMs);
  putBytes(Out, R.Body);
  return Out;
}

std::string net::encodeIntrospect(const Introspect &I) {
  std::string Out;
  Out.reserve(8 + I.Options.size());
  Out.push_back('I');
  putVarint(Out, I.Id);
  putBytes(Out, I.Options);
  return Out;
}

DecodeStatus net::decodeIntrospect(const std::string &Payload, Introspect &I) {
  Cursor C{reinterpret_cast<const uint8_t *>(Payload.data()), Payload.size()};
  uint8_t Tag = 0;
  if (!C.u8(Tag) || Tag != 'I' || !C.varint64(I.Id) || !C.bytes(I.Options) ||
      !C.done())
    return DecodeStatus::Malformed;
  return DecodeStatus::Ok;
}

DecodeStatus net::decodeRequest(const std::string &Payload, Request &R) {
  Cursor C{reinterpret_cast<const uint8_t *>(Payload.data()), Payload.size()};
  uint8_t Tag = 0, Kind = 0;
  if (!C.u8(Tag) || Tag != 'Q' || !C.varint64(R.Id) || !C.u8(Kind) ||
      Kind > static_cast<uint8_t>(RequestKind::Workload) ||
      !C.varint32(R.DeadlineMs) || !C.bytes(R.Body) || !C.done())
    return DecodeStatus::Malformed;
  R.Kind = static_cast<RequestKind>(Kind);
  return DecodeStatus::Ok;
}

DecodeStatus net::decodeResponse(const std::string &Payload, Response &R) {
  Cursor C{reinterpret_cast<const uint8_t *>(Payload.data()), Payload.size()};
  uint8_t Tag = 0, St = 0;
  if (!C.u8(Tag) || Tag != 'S' || !C.varint64(R.Id) || !C.u8(St) ||
      St > static_cast<uint8_t>(Status::Draining) ||
      !C.varint32(R.RetryAfterMs) || !C.bytes(R.Body) || !C.done())
    return DecodeStatus::Malformed;
  R.St = static_cast<Status>(St);
  return DecodeStatus::Ok;
}
