//===- net/Client.cpp - Request-server client with retry ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "support/Random.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

using namespace mpl;
using namespace mpl::net;

bool Client::connect(uint16_t Port) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    close();
    return false;
  }
  Reader = FrameReader();
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Reader = FrameReader();
}

bool Client::recvResponse(Response &Resp) {
  std::string Payload;
  char Buf[4096];
  for (;;) {
    DecodeStatus S = Reader.next(Payload);
    if (S == DecodeStatus::Ok)
      return decodeResponse(Payload, Resp) == DecodeStatus::Ok;
    if (S != DecodeStatus::NeedMore)
      return false; // framing error: the stream is unrecoverable
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return false; // server closed (drop fault or drain)
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Reader.feed(Buf, static_cast<size_t>(N));
  }
}

bool Client::sendFrame(const std::string &Payload) {
  if (Fd < 0)
    return false;
  std::string Frame = encodeFrame(Payload);
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t N =
        ::send(Fd, Frame.data() + Off, Frame.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      close();
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::call(const Request &Req, Response &Resp) {
  if (!sendFrame(encodeRequest(Req)))
    return false;
  if (!recvResponse(Resp)) {
    close();
    return false;
  }
  return true;
}

bool Client::introspect(const std::string &Options, Response &Resp,
                        uint64_t Id) {
  Introspect Q;
  Q.Id = Id;
  Q.Options = Options;
  if (!sendFrame(encodeIntrospect(Q)))
    return false;
  if (!recvResponse(Resp)) {
    close();
    return false;
  }
  return true;
}

int64_t RetryPolicy::backoffMs(int Attempt, int64_t ServerHintMs) {
  int64_t Exp = BaseBackoffMs;
  for (int I = 1; I < Attempt && Exp < MaxBackoffMs; ++I)
    Exp *= 2;
  if (Exp > MaxBackoffMs)
    Exp = MaxBackoffMs;
  // Full jitter on the exponential part: desynchronizes the herd of
  // clients a shed wave just turned away.
  Rng R(hash64(JitterSeed ^ static_cast<uint64_t>(Attempt)));
  JitterSeed = R.next();
  int64_t Jittered = 1 + static_cast<int64_t>(
                             R.nextBounded(static_cast<uint64_t>(Exp)));
  return Jittered > ServerHintMs ? Jittered : ServerHintMs;
}

CallResult net::callWithRetry(Client &C, uint16_t Port, const Request &Req,
                              RetryPolicy &P) {
  CallResult R;
  for (int Attempt = 1; Attempt <= P.MaxAttempts; ++Attempt) {
    R.Attempts = Attempt;
    if (!C.connected() && !C.connect(Port)) {
      int64_t W = P.backoffMs(Attempt, 0);
      R.BackoffMsTotal += W;
      std::this_thread::sleep_for(std::chrono::milliseconds(W));
      continue;
    }
    Response Resp;
    if (!C.call(Req, Resp)) {
      // Transport failure (wire chaos, drain close): reconnect + retry.
      int64_t W = P.backoffMs(Attempt, 0);
      R.BackoffMsTotal += W;
      std::this_thread::sleep_for(std::chrono::milliseconds(W));
      continue;
    }
    R.Delivered = true;
    R.St = Resp.St;
    R.Resp = std::move(Resp);
    if (R.St != Status::Shed && R.St != Status::Draining)
      return R; // terminal: OK / DEADLINE_EXPIRED / ERROR
    int64_t W = P.backoffMs(Attempt, R.Resp.RetryAfterMs);
    R.BackoffMsTotal += W;
    std::this_thread::sleep_for(std::chrono::milliseconds(W));
  }
  return R; // gave up; R.St is the last status seen
}
