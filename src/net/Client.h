//===- net/Client.h - Request-server client with retry ---------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the wire protocol (net/Frame.h): a blocking one-request-
/// at-a-time connection, plus the retry loop the robustness story needs —
/// jittered exponential backoff that *honors the server's Retry-After
/// hint*: a SHED response carries the admission ladder's suggested wait,
/// and sleeping at least that long is what turns an overload spike into a
/// smooth recovery instead of a retry storm. Transport failures (the
/// server's wire-chaos drops and truncations land here) reconnect and
/// retry the same request id, so the server-side flow pairing stays
/// intact.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_NET_CLIENT_H
#define MPL_NET_CLIENT_H

#include "net/Frame.h"

#include <cstdint>
#include <string>

namespace mpl {
namespace net {

/// One TCP connection speaking the frame protocol. Not thread-safe.
class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to 127.0.0.1:\p Port. Idempotent reconnect: closes first.
  bool connect(uint16_t Port);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends \p Req and blocks for its response. False on any transport or
  /// framing failure (the connection is closed and must be reconnected).
  bool call(const Request &Req, Response &Resp);

  /// Sends a live stats frame ('I') and blocks for the snapshot response
  /// (Body = mpl-stats/1 JSON, or Prometheus text with "format=prom" in
  /// \p Options). Same failure semantics as call().
  bool introspect(const std::string &Options, Response &Resp,
                  uint64_t Id = 0);

private:
  int Fd = -1;
  FrameReader Reader;
  bool sendFrame(const std::string &Payload);
  bool recvResponse(Response &Resp);
};

/// Jittered exponential backoff honoring server Retry-After hints.
struct RetryPolicy {
  int MaxAttempts = 6;
  int64_t BaseBackoffMs = 20;  ///< First retry wait (doubles per attempt).
  int64_t MaxBackoffMs = 2000; ///< Cap on any single wait.
  uint64_t JitterSeed = 0x9e3779b97f4a7c15ull;

  /// How long to sleep before retry number \p Attempt (1-based) given the
  /// server's hint (0 = none). Returns max(hint, jittered exponential):
  /// the hint is a floor, not a cap — the server knows how long pressure
  /// takes to clear, the client knows how often it has already failed.
  int64_t backoffMs(int Attempt, int64_t ServerHintMs);
};

/// Outcome of callWithRetry, for callers that tally result mixes.
struct CallResult {
  bool Delivered = false; ///< A well-formed response was received.
  Status St = Status::Error;
  Response Resp;
  int Attempts = 0;       ///< Total call attempts (>= 1).
  int64_t BackoffMsTotal = 0;
};

/// Drives \p Req to completion: reconnects on transport failure, backs off
/// and retries on SHED/DRAINING (honoring Retry-After), returns the first
/// terminal response (OK, DEADLINE_EXPIRED, ERROR). Gives up after
/// P.MaxAttempts, reporting the last status seen.
CallResult callWithRetry(Client &C, uint16_t Port, const Request &Req,
                         RetryPolicy &P);

} // namespace net
} // namespace mpl

#endif // MPL_NET_CLIENT_H
