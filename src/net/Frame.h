//===- net/Frame.h - Varint-framed wire protocol ---------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the request server, kept free of any socket code so
/// the codec is unit-testable byte-by-byte (tests/net_test.cpp feeds it
/// malformed varints, truncated frames and oversized lengths).
///
/// A connection is a stream of *frames*: a LEB128 varint payload length
/// followed by that many payload bytes. Lengths above MaxFrameBytes are a
/// protocol error (Oversized) — the receiver must drop the connection
/// rather than buffer unboundedly; a varint longer than 5 bytes (or one
/// that encodes > 32 bits) is Malformed.
///
/// Payloads are Request/Response messages, also varint-encoded:
///
///   Request    := 'Q' varint(Id) byte(Kind)   varint(DeadlineMs)   bytes(Body)
///   Response   := 'S' varint(Id) byte(Status) varint(RetryAfterMs) bytes(Body)
///   Introspect := 'I' varint(Id) bytes(Options)
///   bytes(B)   := varint(len(B)) B
///
/// Body semantics by kind: Pml = a pml program to evaluate; Workload =
/// "<name> <n>" naming a built-in kernel; Ping = ignored. Response body:
/// the rendered value / workload result on Ok, a human-readable reason
/// otherwise. RetryAfterMs is the server's backoff hint on Shed/Draining.
///
/// Introspect is the live stats frame (DESIGN.md §16): answered on the
/// connection thread from relaxed counter/gauge reads only — it never
/// enters the request queue, so it works at any pressure level and during
/// drain. Options is a space-separated list ("format=prom"); the reply is
/// a normal Response whose body is the mpl-stats/1 JSON snapshot (or
/// Prometheus text exposition with format=prom).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_NET_FRAME_H
#define MPL_NET_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mpl {
namespace net {

/// Hard cap on one frame's payload; a length above it is a protocol error.
constexpr uint32_t MaxFrameBytes = uint32_t(1) << 20;

/// Varints are LEB128 over uint32 lengths: at most 5 bytes.
constexpr int MaxVarintBytes = 5;

enum class DecodeStatus : uint8_t {
  Ok,        ///< A complete item was decoded.
  NeedMore,  ///< The buffer ends mid-item; feed more bytes.
  Malformed, ///< The bytes cannot be a valid item; drop the connection.
  Oversized, ///< Declared length exceeds MaxFrameBytes; drop the connection.
};

const char *decodeStatusName(DecodeStatus S);

//===----------------------------------------------------------------------===//
// Varints
//===----------------------------------------------------------------------===//

/// Appends the LEB128 encoding of \p V to \p Out.
void putVarint(std::string &Out, uint64_t V);

/// Decodes a varint from [\p P, \p End). On Ok, \p V holds the value and
/// \p Used the bytes consumed. Values above 32 bits are Malformed (the
/// protocol only carries lengths and small scalars... ids excepted, which
/// use putVarint64/getVarint64 below).
DecodeStatus getVarint(const uint8_t *P, size_t Len, uint32_t &V,
                       size_t &Used);

/// 64-bit variant (request ids). Up to 10 bytes.
DecodeStatus getVarint64(const uint8_t *P, size_t Len, uint64_t &V,
                         size_t &Used);

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

/// Wraps \p Payload in a length-prefixed frame.
std::string encodeFrame(const std::string &Payload);

/// Incremental frame extractor: feed() raw bytes as they arrive, then call
/// next() until it stops returning Ok. Malformed/Oversized are sticky —
/// the connection is unrecoverable past a framing error (the stream has no
/// resync marker, by design: cheap, and the client retries on a fresh
/// connection anyway).
class FrameReader {
public:
  void feed(const void *Data, size_t Len);

  /// Extracts the next complete payload into \p Payload.
  DecodeStatus next(std::string &Payload);

  /// Bytes buffered but not yet returned (tests).
  size_t pendingBytes() const { return Buf.size() - Off; }

private:
  std::vector<uint8_t> Buf;
  size_t Off = 0;
  DecodeStatus Stuck = DecodeStatus::Ok; ///< Sticky terminal status.
};

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

enum class RequestKind : uint8_t {
  Ping = 0,     ///< Liveness probe; body ignored.
  Pml = 1,      ///< Body is a pml program for pml::evalSource.
  Workload = 2, ///< Body is "<name> <n>" naming a built-in kernel.
};

enum class Status : uint8_t {
  Ok = 0,
  Shed = 1,            ///< Admission control refused the request.
  DeadlineExpired = 2, ///< The request's deadline fired mid-run.
  Error = 3,           ///< Evaluation failed (bad program, unknown kernel).
  Draining = 4,        ///< Server is draining; retry elsewhere/later.
};

const char *statusName(Status S);

struct Request {
  uint64_t Id = 0;
  RequestKind Kind = RequestKind::Ping;
  uint32_t DeadlineMs = 0; ///< 0 = no deadline.
  std::string Body;
};

struct Response {
  uint64_t Id = 0;
  Status St = Status::Ok;
  uint32_t RetryAfterMs = 0;
  std::string Body;
};

/// The live stats query ('I' payload). Options is free-form, parsed by the
/// server as space-separated key[=value] words; unknown options are
/// ignored (a newer client degrades gracefully against an older server).
struct Introspect {
  uint64_t Id = 0;
  std::string Options;
};

std::string encodeRequest(const Request &R);
std::string encodeResponse(const Response &R);
std::string encodeIntrospect(const Introspect &I);

/// Decode a full frame payload into a message. NeedMore from these means
/// the payload was internally truncated — for a *complete* frame that is a
/// Malformed connection, and both return Malformed in that case.
DecodeStatus decodeRequest(const std::string &Payload, Request &R);
DecodeStatus decodeResponse(const std::string &Payload, Response &R);
DecodeStatus decodeIntrospect(const std::string &Payload, Introspect &I);

} // namespace net
} // namespace mpl

#endif // MPL_NET_FRAME_H
