//===- hh/Heap.cpp - Hierarchical heaps -----------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "hh/Heap.h"

#include "chaos/ChaosSchedule.h"
#include "mm/MemoryGovernor.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/EmCounters.h"
#include "support/Stats.h"

using namespace mpl;

namespace {
Stat HeapsCreated("hh.heaps.created");
Stat JoinsPerformed("hh.joins");
Stat ObjectsUnpinned("em.unpins");
Stat BytesUnpinned("em.unpins.bytes");
} // namespace

void Heap::pushChunk(Chunk *C) {
  C->Owner.store(this, std::memory_order_release);
  C->Next = Chunks;
  Chunks = C;
  Current = C;
  ChunkBytesGauge.fetch_add(static_cast<int64_t>(C->TotalBytes),
                            std::memory_order_relaxed);
}

void *Heap::allocate(size_t Bytes) {
  Bytes = (Bytes + 7) & ~static_cast<size_t>(7);
  BytesAllocated += static_cast<int64_t>(Bytes);
  if (Current)
    if (void *P = Current->tryAllocate(Bytes))
      return P;
  // Slow path: oversized objects get a dedicated chunk; otherwise start a
  // fresh bump chunk.
  if (Bytes > Chunk::SizeBytes / 2) {
    Chunk *C = ChunkPool::get().acquireLarge(Bytes);
    // Keep the allocation chunk: insert the large chunk *behind* it so
    // subsequent small allocations still hit the bump chunk.
    C->Owner.store(this, std::memory_order_release);
    if (Current) {
      C->Next = Current->Next;
      Current->Next = C;
    } else {
      C->Next = Chunks;
      Chunks = C;
    }
    ChunkBytesGauge.fetch_add(static_cast<int64_t>(C->TotalBytes),
                              std::memory_order_relaxed);
    void *P = C->tryAllocate(Bytes);
    MPL_CHECK(P, "large chunk cannot fit its object");
    return P;
  }
  pushChunk(ChunkPool::get().acquire());
  void *P = Current->tryAllocate(Bytes);
  MPL_CHECK(P, "fresh chunk cannot fit a small object");
  return P;
}

Object *Heap::allocateObject(ObjKind K, bool Mutable, uint32_t Length,
                             uint16_t PtrMap) {
  MPL_DASSERT(K != ObjKind::Record || Length <= Object::MaxRecordFields,
              "record has too many fields for the pointer bitmap");
  void *Mem = allocate(Object::sizeBytesFor(Length));
  Object *O = new (Mem) Object();
  O->initHeader(Object::makeHeader(K, Mutable, Length, PtrMap));
  return O;
}

bool Heap::isAncestorOf(const Heap *A, const Heap *B) {
  MPL_DASSERT(A && B, "ancestor query on null heap");
  while (B && B->Depth > A->Depth)
    B = B->Parent;
  return B == A;
}

// offsetof on a non-standard-layout type is conditionally supported; GCC and
// Clang both define it for this shape (no virtual bases, ordinary members).
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif
size_t Heap::parentOffset() { return offsetof(Heap, Parent); }
size_t Heap::depthOffset() { return offsetof(Heap, Depth); }
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

uint32_t Heap::lcaDepth(const Heap *A, const Heap *B) {
  while (A->Depth > B->Depth)
    A = A->Parent;
  while (B->Depth > A->Depth)
    B = B->Parent;
  while (A != B) {
    MPL_DASSERT(A->Parent && B->Parent, "heaps in different hierarchies");
    A = A->Parent;
    B = B->Parent;
  }
  return A->Depth;
}

bool Heap::addPinned(Object *O, uint32_t UnpinDepth, obs::ProfileSite *Site) {
  std::lock_guard<std::mutex> G(PinLock);
  if (!O->pinMin(UnpinDepth))
    return false;
  Pinned.push_back(O);
  int64_t Size = static_cast<int64_t>(O->sizeBytes());
  PinnedObjsGauge.fetch_add(1, std::memory_order_relaxed);
  PinnedBytesGauge.fetch_add(Size, std::memory_order_relaxed);
  MemoryGovernor::get().notePinnedBytes(Size);
  obs::emit(obs::Ev::Pin, O->sizeBytes(), UnpinDepth);
  obs::profilePin(Site, O, Size, UnpinDepth);
  return true;
}

size_t Heap::footprintBytes() const {
  size_t Total = 0;
  for (const Chunk *C = Chunks; C; C = C->Next)
    Total += C->TotalBytes;
  return Total;
}

void Heap::releaseAllChunks() {
  Chunk *C = Chunks;
  while (C) {
    Chunk *Next = C->Next;
    if (C->Large)
      ChunkPool::get().releaseLarge(C);
    else
      ChunkPool::get().release(C);
    C = Next;
  }
  Chunks = nullptr;
  Current = nullptr;
  ChunkBytesGauge.store(0, std::memory_order_relaxed);
}

HeapManager::~HeapManager() {
  for (Heap *H : AllHeaps) {
    if (!H->isDead())
      H->releaseAllChunks();
    delete H;
  }
}

Heap *HeapManager::createRoot() {
  Heap *H = new Heap(nullptr, 0);
  HeapsCreated.inc();
  std::lock_guard<std::mutex> G(Lock);
  AllHeaps.push_back(H);
  return H;
}

Heap *HeapManager::forkChild(Heap *Parent) {
  MPL_CHECK(Parent->Depth + 1 < 255, "task tree too deep for unpin depths");
  Heap *H = new Heap(Parent, Parent->Depth + 1);
  HeapsCreated.inc();
  std::lock_guard<std::mutex> G(Lock);
  AllHeaps.push_back(H);
  return H;
}

int64_t HeapManager::join(Heap *Parent, Heap *Child) {
  MPL_CHECK(Child->Parent == Parent, "join of a non-child heap");
  MPL_CHECK(Child->activeForks() == 0, "joining a heap with live forks");
  JoinsPerformed.inc();
  obs::emit(obs::Ev::HeapJoinBegin, Child->Depth);

  // Schedule fuzzing: stretch the window between a join being decided and
  // the pin locks being taken — barriers may still be resolving Heap::of
  // against the child.
  chaos::preemptPoint(chaos::Point::JoinMerge);

  // Lock order: shallower heap first (matches the local collector).
  std::scoped_lock G(Parent->PinLock, Child->PinLock);

  // Re-home every chunk, then splice the list into the parent. The parent
  // keeps its own allocation chunk; the child's partially-used chunks
  // become retired parent chunks.
  int64_t Unpinned = 0;
  // Completely unused chunks go straight back to the pool; the rest are
  // re-homed and spliced into the parent.
  Chunk *Keep = nullptr;
  Chunk *C = Child->Chunks;
  while (C) {
    Chunk *Next = C->Next;
    if (C->usedBytes() == 0 && !C->Large) {
      ChunkPool::get().release(C);
    } else {
      C->Owner.store(Parent, std::memory_order_release);
      C->Next = Keep;
      Keep = C;
      Parent->ChunkBytesGauge.fetch_add(static_cast<int64_t>(C->TotalBytes),
                                        std::memory_order_relaxed);
    }
    C = Next;
  }
  if (Keep) {
    Chunk *Last = Keep;
    while (Last->Next)
      Last = Last->Next;
    Last->Next = Parent->Chunks;
    Parent->Chunks = Keep;
    if (!Parent->Current)
      Parent->Current = Keep;
  }
  Child->Chunks = nullptr;
  Child->Current = nullptr;
  Child->ChunkBytesGauge.store(0, std::memory_order_relaxed);
  Parent->BytesAllocated += Child->BytesAllocated;

  // The paper's join rule: entanglement with unpin depth >= the merged
  // depth is dead once the object lives at that depth; unpin those objects
  // so ordinary local collection can move (and eventually reclaim) them.
  int64_t UnpinnedBytes = 0;
  bool HadPins = !Child->Pinned.empty();
  for (Object *O : Child->Pinned) {
    if (!O->isPinned())
      continue; // Already unpinned by an earlier join (duplicate entry).
    int64_t Size = static_cast<int64_t>(O->sizeBytes());
    if (O->unpinDepth() >= Parent->Depth &&
        !chaos::faultFires(chaos::Fault::SkipUnpin)) {
      BytesUnpinned.add(Size);
      em::Counts.UnpinnedObjects.fetch_add(1, std::memory_order_relaxed);
      em::Counts.UnpinnedBytes.fetch_add(Size, std::memory_order_relaxed);
      MemoryGovernor::get().notePinnedBytes(-Size);
      obs::emit(obs::Ev::Unpin, O->sizeBytes());
      obs::profileUnpin(O, Size, Child->Depth);
      O->unpin();
      ++Unpinned;
      UnpinnedBytes += Size;
    } else {
      // Entanglement still (possibly) live at the parent's depth — or a
      // test-only SkipUnpin fault leaking the release on purpose.
      Parent->Pinned.push_back(O);
      Parent->PinnedObjsGauge.fetch_add(1, std::memory_order_relaxed);
      Parent->PinnedBytesGauge.fetch_add(Size, std::memory_order_relaxed);
    }
  }
  Child->Pinned.clear();
  Child->PinnedObjsGauge.store(0, std::memory_order_relaxed);
  Child->PinnedBytesGauge.store(0, std::memory_order_relaxed);
  ObjectsUnpinned.add(Unpinned);
  // Attribute the join's entanglement-release work — only joins that had
  // pinned entries to process, so disentangled runs keep an empty profile.
  if (HadPins)
    obs::profileEvent(MPL_SITE("hh.join.unpin"), UnpinnedBytes, Child->Depth);

  Child->Dead.store(true, std::memory_order_release);
  obs::emit(obs::Ev::HeapJoinEnd, static_cast<uint64_t>(Unpinned));
  return Unpinned;
}

size_t HeapManager::heapCount() const {
  std::lock_guard<std::mutex> G(Lock);
  return AllHeaps.size();
}

std::vector<Heap *> HeapManager::snapshotHeaps() const {
  std::lock_guard<std::mutex> G(Lock);
  return AllHeaps;
}
