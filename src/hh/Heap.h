//===- hh/Heap.h - Hierarchical heaps --------------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap hierarchy mirrors the fork-join task tree: a fork gives each
/// branch a fresh child heap; a join merges the child back into its parent.
/// Tasks allocate into (and locally collect) their own heaps without any
/// synchronization — the property that makes parallel functional programs
/// fast — and the entanglement machinery (em/) makes this safe in the
/// presence of arbitrary effects by pinning objects that concurrent tasks
/// may reach.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_HH_HEAP_H
#define MPL_HH_HEAP_H

#include "mm/Chunk.h"
#include "mm/Object.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mpl {

namespace obs {
class ProfileSite;
} // namespace obs

/// One heap in the hierarchy. Owned (allocated into / collected) by at most
/// one task at a time; shared ancestors are read-only for allocation until
/// their forks join.
class Heap {
public:
  Heap(Heap *Parent, uint32_t Depth) : Parent(Parent), Depth(Depth) {}

  Heap *parent() const { return Parent; }
  uint32_t depth() const { return Depth; }
  bool isDead() const { return Dead.load(std::memory_order_acquire); }

  /// Number of outstanding (un-joined) child branches. A heap with active
  /// forks is *shared*: it must not be locally collected, because sibling
  /// tasks hold references into it.
  int activeForks() const {
    return ActiveForks.load(std::memory_order_acquire);
  }
  void setActiveForks(int N) {
    ActiveForks.store(N, std::memory_order_release);
  }
  void decActiveForks() {
    ActiveForks.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Owner-thread-only bump allocation of \p Bytes (8-aligned).
  void *allocate(size_t Bytes);

  /// Allocates and initializes an object header; payload uninitialized.
  Object *allocateObject(ObjKind K, bool Mutable, uint32_t Length,
                         uint16_t PtrMap);

  /// The heap an object currently belongs to.
  static Heap *of(const Object *O) {
    return Chunk::chunkOf(O)->Owner.load(std::memory_order_acquire);
  }

  /// True when \p A is an ancestor of (or equal to) \p B in the hierarchy.
  /// A pointer whose target's heap is an ancestor of the reader's heap is
  /// disentangled; anything else is entanglement.
  static bool isAncestorOf(const Heap *A, const Heap *B);

  /// Byte offsets of Parent / Depth within a Heap, for generated code: the
  /// pml JIT (src/pml/jit) emits the read-barrier fast path — the same
  /// depth-guided ancestry walk isAncestorOf performs — inline, so it needs
  /// the field layout without making the fields public. Both fields are
  /// immutable after construction, so code baking these offsets in stays
  /// valid for the heap's whole lifetime.
  static size_t parentOffset();
  static size_t depthOffset();

  /// Depth of the least common ancestor of two heaps.
  static uint32_t lcaDepth(const Heap *A, const Heap *B);

  /// Registers \p O as pinned in this heap at depth \p UnpinDepth (callers:
  /// the entanglement write/read barriers). Takes the pin lock. Returns
  /// true when the object was newly pinned (not merely depth-deepened).
  /// \p Site, when non-null, is the profiler site the pin is attributed to
  /// (obs/Profile.h; ignored unless the profiler is armed).
  bool addPinned(Object *O, uint32_t UnpinDepth,
                 obs::ProfileSite *Site = nullptr);

  /// Sum of bytes bump-allocated into live chunks (fragmentation included).
  size_t footprintBytes() const;

  /// Releases every chunk back to the pool (runtime teardown or root-heap
  /// destruction).
  void releaseAllChunks();

  // The collector and the join operation manipulate these directly; they
  // are internal to the runtime but shared across gc/, em/ and hh/.

  /// Guards Pinned, pin/unpin transitions of objects in this heap, and
  /// excludes local collection from racing with remote pins.
  std::mutex PinLock;

  /// Entanglement candidates living in this heap (objects pinned by the
  /// barriers). The local collector treats them as in-place roots; joins
  /// filter them by unpin depth.
  std::vector<Object *> Pinned;

  /// Chunk list head (most recently acquired first) and allocation chunk.
  Chunk *Chunks = nullptr;
  Chunk *Current = nullptr;

  /// Bytes of objects bump-allocated into this heap since creation or the
  /// last collection (collection policy input).
  int64_t BytesAllocated = 0;

  /// True while the owning task's local collector is evacuating this heap.
  /// Written and read under PinLock (or by the owning thread only).
  bool InCollection = false;

  /// Relaxed-atomic mirrors of this heap's chunk and pin totals, updated
  /// at every transition (chunk acquire/release/re-home, pin/unpin/move,
  /// GC detach/retire). They exist so obs::snapshotHeapTree() can read a
  /// consistent-enough picture from *other* threads (the MetricsSampler,
  /// the OOM path) without taking PinLock or walking the chunk list —
  /// which would race the owner. Approximate across a join by design
  /// (stale duplicate pin entries move with their vector).
  std::atomic<int64_t> ChunkBytesGauge{0};
  std::atomic<int64_t> PinnedObjsGauge{0};
  std::atomic<int64_t> PinnedBytesGauge{0};

private:
  void pushChunk(Chunk *C);

  Heap *Parent;
  uint32_t Depth;
  std::atomic<bool> Dead{false};
  std::atomic<int> ActiveForks{0};

  friend class HeapManager;
};

/// Creates, forks, and joins heaps. Heap objects are retained (never freed)
/// until the manager is destroyed, so racy Heap::of reads during joins can
/// never observe a dangling heap.
class HeapManager {
public:
  HeapManager() = default;
  ~HeapManager();

  HeapManager(const HeapManager &) = delete;
  HeapManager &operator=(const HeapManager &) = delete;

  /// Creates the root heap (depth 0).
  Heap *createRoot();

  /// Creates a fresh child heap for one branch of a fork.
  Heap *forkChild(Heap *Parent);

  /// Merges \p Child into \p Parent: chunks are re-homed, pinned objects
  /// whose unpin depth is reached are unpinned (entanglement provably dead,
  /// the paper's join rule), the rest move to the parent's pinned set.
  /// Returns the number of objects unpinned.
  int64_t join(Heap *Parent, Heap *Child);

  /// Number of heaps ever created (stats).
  size_t heapCount() const;

  /// Every heap ever created (live and dead), copied under the manager
  /// lock. Heaps are never freed before the manager, so the pointers stay
  /// valid; used by the invariant checker (em::verifyInvariants).
  std::vector<Heap *> snapshotHeaps() const;

private:
  mutable std::mutex Lock;
  std::vector<Heap *> AllHeaps;
};

} // namespace mpl

#endif // MPL_HH_HEAP_H
