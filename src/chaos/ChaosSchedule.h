//===- chaos/ChaosSchedule.h - Seeded schedule fuzzing ---------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic schedule fuzzing for the entanglement runtime. The bugs
/// this runtime can have live in rare interleavings — a remote pin racing a
/// local collection, a join lowering an unpin depth while a barrier reads
/// the heap, a steal landing mid-merge. Wall-clock stress alone reaches
/// those windows by accident; this layer reaches them on purpose.
///
/// The scheduler, the barriers, the join rule and the collection policy
/// each expose *decision points* that consult this layer when it is active:
///
///  - Scheduler::tryStealAndRun asks pickVictim() — victim choices come
///    from the seed instead of the per-worker steal RNG;
///  - Scheduler::forkImpl / the join-wait loop / the steal loop call
///    preemptPoint() — the seed decides where extra yields and delays are
///    injected (delayed joins, steal storms);
///  - Runtime::maybeCollect asks forceGcNow() — the seed can force a
///    collection at any allocation poll, up to GC-at-every-allocation;
///  - the write barrier, read barrier, join merge, and collector entry are
///    preemption points too, so the windows *between* lock acquisitions
///    get stretched.
///
/// Every decision is drawn from a per-thread SplitMix64 stream derived from
/// (seed, thread index, decision counter) — no std::random_device, no
/// wall-clock. Re-running with the same seed and worker count replays the
/// same decision stream; with one worker the entire interleaving is exactly
/// reproducible, which is what the targeted fault-injection tests rely on.
///
/// Fault injection (test-only): Fault::SkipPin makes the write barrier
/// deliberately skip a pin, Fault::SkipUnpin makes a join deliberately skip
/// a release. These exist so the fuzz suite can prove it would catch a real
/// barrier regression — a clean tree never takes these paths, and they are
/// compiled in (not ifdef'd) so the fuzz binary exercises exactly the
/// production barrier code around them.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CHAOS_CHAOSSCHEDULE_H
#define MPL_CHAOS_CHAOSSCHEDULE_H

#include <atomic>
#include <cstdint>

namespace mpl {
namespace chaos {

/// Where a decision is being made. Each point has its own per-thread
/// decision stream so adding a hook never perturbs unrelated decisions.
enum class Point : uint8_t {
  Fork,         ///< Scheduler::forkImpl, after the child is stealable.
  JoinWait,     ///< Parent helping/waiting for a stolen child.
  StealLoop,    ///< Idle worker between steal attempts.
  WriteBarrier, ///< em::writeBarrierSlow entry (before the pin).
  ReadBarrier,  ///< em::readBarrierSlow entry (before the deepen).
  JoinMerge,    ///< HeapManager::join entry (before taking pin locks).
  GcStart,      ///< Collector::collectChain entry (before taking locks).
  ContCapture,  ///< pml Suspend: before the frame chain is captured/pinned.
  ContResume,   ///< pml Resume: after the one-shot claim, before restore.
  WireRead,     ///< net: before reading request bytes off a socket.
  WireWrite,    ///< net: before writing response bytes to a socket.
  JitPublish,   ///< pml jit: code compiled, before publishing to other strands.
  JitEnter,     ///< pml jit: dispatcher about to enter generated code.
  NumPoints
};

/// Deliberate bugs the fuzz suite must catch (see file comment). The Wire*
/// kinds live on their own decision channel (wireFaultNow) so arming them
/// never perturbs the alloc/barrier fault counters.
enum class Fault : uint8_t {
  None,
  SkipPin,        ///< Write barrier skips addPinned for one victim object.
  SkipUnpin,      ///< Join keeps an object pinned past its unpin depth.
  FailChunkAlloc, ///< ChunkPool treats the allocation attempt as failed.
  WireTruncate,   ///< net: cut the connection mid-frame (truncated frame).
  WireDrop,       ///< net: drop the connection mid-request, no response.
  WireSlowRead,   ///< net: slow-loris — stall between read chunks.
};

/// One seed fully describes a perturbation mix. Either fill the fields by
/// hand (targeted tests) or derive them all from the seed (fuzz corpus).
struct Config {
  uint64_t Seed = 1;

  /// Per-point probability (permille) of injecting a yield/short delay.
  uint32_t PreemptPermille = 0;

  /// Extra yields injected each time the join-wait loop polls Done.
  uint32_t DelayedJoinSpins = 0;

  /// Steal victims come from the seed stream instead of the worker RNG.
  bool ForceVictim = false;

  /// Idle workers retry stealing without yielding (steal storm).
  bool StealStorm = false;

  /// Probability (permille) that an allocation poll forces a collection;
  /// 1000 means GC at every allocation.
  uint32_t GcAtAllocPermille = 0;

  /// Test-only fault injection; fires on every FaultEveryN-th opportunity.
  Fault InjectFault = Fault::None;
  uint32_t FaultEveryN = 1;

  /// Wire-fault channel (src/net). Two arming modes, both explicit (never
  /// derived by fromSeed):
  ///  - deterministic: WireFault = a Wire* kind, fires every
  ///    WireFaultEveryN-th wire opportunity (targeted codec tests);
  ///  - seeded mix: WireFault = None and WirePermille > 0 — each wire
  ///    opportunity draws from the per-thread (seed, thread, counter)
  ///    stream, picking one of the three Wire* kinds. Replayable by seed.
  Fault WireFault = Fault::None;
  uint32_t WireFaultEveryN = 1;
  uint32_t WirePermille = 0;

  /// Derives a full perturbation mix from the seed alone, so a single
  /// printed uint64 reproduces a corpus run.
  static Config fromSeed(uint64_t Seed);

  /// Worker count a corpus run should use for this seed (1..4).
  int suggestedWorkers() const;
};

/// Decision/injection totals, for logging and for asserting that a
/// perturbation actually exercised its target.
struct Totals {
  int64_t Preemptions = 0;
  int64_t ForcedVictims = 0;
  int64_t ForcedGcs = 0;
  int64_t FaultsInjected = 0;
  int64_t WireFaults = 0;
};

namespace detail {
extern std::atomic<uint32_t> ActiveFlag;
void preemptPointSlow(Point P);
int pickVictimSlow(int Self, int NumWorkers);
uint32_t delayedJoinSpinsSlow();
bool forceGcNowSlow();
bool stealStormSlow();
bool faultFiresSlow(Fault F);
Fault wireFaultNowSlow();
} // namespace detail

/// Arms the layer with \p C. Not reentrant: one chaos session at a time.
/// Resets per-thread decision streams and the injection totals.
void enable(const Config &C);

/// Disarms every hook (they return to zero-cost no-ops).
void disable();

/// The active configuration (valid only while active()).
const Config &config();

/// Decision/injection totals since the last enable().
Totals totals();

/// Fast-path check compiled into every hook site.
inline bool active() {
  return detail::ActiveFlag.load(std::memory_order_acquire) != 0;
}

/// Maybe injects a yield or a short delay at \p P.
inline void preemptPoint(Point P) {
  if (active())
    detail::preemptPointSlow(P);
}

/// Steal-victim choice for worker \p Self of \p NumWorkers. Returns -1 when
/// the scheduler should use its own RNG (layer inactive or not forcing).
inline int pickVictim(int Self, int NumWorkers) {
  if (!active())
    return -1;
  return detail::pickVictimSlow(Self, NumWorkers);
}

/// Number of extra yields the join-wait loop should insert this poll.
inline uint32_t delayedJoinSpins() {
  if (!active())
    return 0;
  return detail::delayedJoinSpinsSlow();
}

/// True when the collection policy must collect at this allocation poll.
inline bool forceGcNow() {
  return active() && detail::forceGcNowSlow();
}

/// True when idle workers should retry stealing without yielding.
inline bool stealStorm() {
  return active() && detail::stealStormSlow();
}

/// True when the \p F fault is armed and fires at this opportunity.
/// Clean-tree behaviour: always false.
inline bool faultFires(Fault F) {
  return active() && detail::faultFiresSlow(F);
}

/// Wire-fault decision for this socket-I/O opportunity: Fault::None (the
/// overwhelmingly common answer) or one of the Wire* kinds. Clean-tree
/// behaviour: always None.
inline Fault wireFaultNow() {
  if (!active())
    return Fault::None;
  return detail::wireFaultNowSlow();
}

} // namespace chaos
} // namespace mpl

#endif // MPL_CHAOS_CHAOSSCHEDULE_H
