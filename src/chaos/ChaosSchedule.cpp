//===- chaos/ChaosSchedule.cpp - Seeded schedule fuzzing ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"

#include "support/Assert.h"
#include "support/Random.h"

#include <chrono>
#include <thread>

using namespace mpl;
using namespace mpl::chaos;

namespace {

Config ActiveConfig;

/// Bumped by every enable(); per-thread streams reseed when they see a new
/// epoch, so decision streams are a pure function of (seed, thread index).
std::atomic<uint64_t> Epoch{0};

/// Dense thread indices in arrival order. With a fixed worker count the
/// scheduler's threads enumerate identically across runs, so the index — and
/// with it the whole per-thread decision stream — replays from the seed.
std::atomic<uint32_t> NextThreadIndex{0};

std::atomic<int64_t> TotalPreemptions{0};
std::atomic<int64_t> TotalForcedVictims{0};
std::atomic<int64_t> TotalForcedGcs{0};
std::atomic<int64_t> TotalFaultsInjected{0};

/// Global fault-opportunity counter (fires on every FaultEveryN-th).
std::atomic<uint64_t> FaultOpportunities{0};

/// Separate opportunity counter for the wire channel so arming wire faults
/// never shifts the alloc/barrier fault cadence (and vice versa).
std::atomic<uint64_t> WireOpportunities{0};
std::atomic<int64_t> TotalWireFaults{0};

/// Per-thread decision streams, one per Point plus one for victim choice
/// and one for GC forcing, all derived from (seed, thread index).
struct ThreadStreams {
  uint64_t SeenEpoch = ~0ull;
  uint32_t Index = 0;
  Rng PointRng[static_cast<size_t>(Point::NumPoints)];
  Rng VictimRng;
  Rng GcRng;
  Rng WireRng;

  void reseed(uint64_t E, uint64_t Seed) {
    SeenEpoch = E;
    uint64_t Base = hash64(Seed ^ hash64(Index));
    for (size_t I = 0; I < static_cast<size_t>(Point::NumPoints); ++I)
      PointRng[I] = Rng(hash64(Base + I));
    VictimRng = Rng(hash64(Base ^ 0x51c71ull));
    GcRng = Rng(hash64(Base ^ 0x6cull));
    WireRng = Rng(hash64(Base ^ 0x317eull));
  }
};

ThreadStreams &streams() {
  // A pointer keeps the TLS segment small (the struct itself would blow
  // the static-library TPOFF32 relocation range). One leak per thread,
  // ~100 bytes, threads are few and long-lived.
  thread_local ThreadStreams *TS = nullptr;
  if (!TS) {
    TS = new ThreadStreams();
    TS->Index = NextThreadIndex.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t E = Epoch.load(std::memory_order_acquire);
  if (TS->SeenEpoch != E)
    TS->reseed(E, ActiveConfig.Seed);
  return *TS;
}

} // namespace

namespace mpl {
namespace chaos {
namespace detail {

std::atomic<uint32_t> ActiveFlag{0};

void preemptPointSlow(Point P) {
  ThreadStreams &TS = streams();
  Rng &R = TS.PointRng[static_cast<size_t>(P)];
  if (R.nextBounded(1000) >= ActiveConfig.PreemptPermille)
    return;
  TotalPreemptions.fetch_add(1, std::memory_order_relaxed);
  // Mostly plain yields; occasionally a real delay, long enough to push a
  // racing thread through the window this point guards.
  if (R.nextBounded(8) == 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(1 + R.nextBounded(50)));
  else
    std::this_thread::yield();
}

int pickVictimSlow(int Self, int NumWorkers) {
  if (!ActiveConfig.ForceVictim || NumWorkers <= 1)
    return -1;
  ThreadStreams &TS = streams();
  // Draw over the other workers so the choice is always valid.
  int V = static_cast<int>(
      TS.VictimRng.nextBounded(static_cast<uint64_t>(NumWorkers - 1)));
  if (V >= Self)
    ++V;
  TotalForcedVictims.fetch_add(1, std::memory_order_relaxed);
  return V;
}

uint32_t delayedJoinSpinsSlow() { return ActiveConfig.DelayedJoinSpins; }

bool forceGcNowSlow() {
  if (ActiveConfig.GcAtAllocPermille == 0)
    return false;
  ThreadStreams &TS = streams();
  if (TS.GcRng.nextBounded(1000) >= ActiveConfig.GcAtAllocPermille)
    return false;
  TotalForcedGcs.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool stealStormSlow() { return ActiveConfig.StealStorm; }

bool faultFiresSlow(Fault F) {
  if (ActiveConfig.InjectFault != F)
    return false;
  uint64_t N = FaultOpportunities.fetch_add(1, std::memory_order_relaxed);
  uint32_t Every = ActiveConfig.FaultEveryN ? ActiveConfig.FaultEveryN : 1;
  if ((N + 1) % Every != 0)
    return false;
  TotalFaultsInjected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Fault wireFaultNowSlow() {
  // Deterministic every-N channel: a specific Wire* kind armed by a test.
  if (ActiveConfig.WireFault != Fault::None) {
    uint64_t N = WireOpportunities.fetch_add(1, std::memory_order_relaxed);
    uint32_t Every =
        ActiveConfig.WireFaultEveryN ? ActiveConfig.WireFaultEveryN : 1;
    if ((N + 1) % Every != 0)
      return Fault::None;
    TotalWireFaults.fetch_add(1, std::memory_order_relaxed);
    return ActiveConfig.WireFault;
  }
  // Seeded mix channel: probability and kind both come from the per-thread
  // (seed, thread index, counter) stream, so a chaos run replays by seed.
  if (ActiveConfig.WirePermille == 0)
    return Fault::None;
  ThreadStreams &TS = streams();
  if (TS.WireRng.nextBounded(1000) >= ActiveConfig.WirePermille)
    return Fault::None;
  TotalWireFaults.fetch_add(1, std::memory_order_relaxed);
  static constexpr Fault Kinds[3] = {Fault::WireTruncate, Fault::WireDrop,
                                     Fault::WireSlowRead};
  return Kinds[TS.WireRng.nextBounded(3)];
}

} // namespace detail

Config Config::fromSeed(uint64_t Seed) {
  // Everything about the run — perturbation mix and worker count — is a
  // pure function of the seed, so printing the seed is a full repro.
  Rng R(hash64(Seed ^ 0xc4a05ull));
  Config C;
  C.Seed = Seed;
  static constexpr uint32_t PreemptChoices[] = {0, 5, 25, 120};
  static constexpr uint32_t JoinSpinChoices[] = {0, 1, 8, 64};
  static constexpr uint32_t GcChoices[] = {0, 2, 20, 200};
  C.PreemptPermille = PreemptChoices[R.nextBounded(4)];
  C.DelayedJoinSpins = JoinSpinChoices[R.nextBounded(4)];
  C.GcAtAllocPermille = GcChoices[R.nextBounded(4)];
  C.ForceVictim = R.nextBounded(2) == 0;
  C.StealStorm = R.nextBounded(4) == 0;
  // Never derive faults from a seed: faults are armed explicitly by tests.
  C.InjectFault = Fault::None;
  return C;
}

int Config::suggestedWorkers() const {
  return 1 + static_cast<int>(hash64(Seed ^ 0x90bbull) % 4);
}

void enable(const Config &C) {
  MPL_CHECK(!active(), "chaos::enable while already active");
  ActiveConfig = C;
  TotalPreemptions.store(0, std::memory_order_relaxed);
  TotalForcedVictims.store(0, std::memory_order_relaxed);
  TotalForcedGcs.store(0, std::memory_order_relaxed);
  TotalFaultsInjected.store(0, std::memory_order_relaxed);
  FaultOpportunities.store(0, std::memory_order_relaxed);
  WireOpportunities.store(0, std::memory_order_relaxed);
  TotalWireFaults.store(0, std::memory_order_relaxed);
  Epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::ActiveFlag.store(1, std::memory_order_release);
}

void disable() {
  detail::ActiveFlag.store(0, std::memory_order_release);
}

const Config &config() { return ActiveConfig; }

Totals totals() {
  Totals T;
  T.Preemptions = TotalPreemptions.load(std::memory_order_relaxed);
  T.ForcedVictims = TotalForcedVictims.load(std::memory_order_relaxed);
  T.ForcedGcs = TotalForcedGcs.load(std::memory_order_relaxed);
  T.FaultsInjected = TotalFaultsInjected.load(std::memory_order_relaxed);
  T.WireFaults = TotalWireFaults.load(std::memory_order_relaxed);
  return T;
}

} // namespace chaos
} // namespace mpl
