//===- workloads/Kernels.cpp - Benchmark kernels ---------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include "support/Random.h"
#include "workloads/Collections.h"

#include <algorithm>
#include <tuple>
#include <cctype>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace wl {

int64_t fib(int64_t N, int64_t Grain) {
  if (N < 2)
    return N;
  if (N <= Grain)
    return fib(N - 1, Grain) + fib(N - 2, Grain);
  auto [A, B] = rt::par([&] { return boxInt(fib(N - 1, Grain)); },
                        [&] { return boxInt(fib(N - 2, Grain)); });
  return unboxInt(A) + unboxInt(B);
}

namespace {

/// Copies In[Lo, Hi) into a fresh array.
Object *sliceInts(Object *In, int64_t Lo, int64_t Hi) {
  Local LIn(In);
  Local Out(newArray(static_cast<uint32_t>(Hi - Lo), boxInt(0)));
  for (int64_t I = Lo; I < Hi; ++I)
    Out.get()->setSlot(static_cast<uint32_t>(I - Lo),
                       LIn.get()->getSlot(static_cast<uint32_t>(I)));
  return Out.get();
}

/// Sequentially merges L[Li..Le) and R[Ri..Re) into Out starting at At.
/// Tagged integers compare like their untagged values, so raw slot
/// comparison is order-correct.
void seqMerge(Object *L, int64_t Li, int64_t Le, Object *R, int64_t Ri,
              int64_t Re, Object *Out, int64_t At) {
  while (Li < Le && Ri < Re) {
    int64_t A = unboxInt(L->getSlot(static_cast<uint32_t>(Li)));
    int64_t B = unboxInt(R->getSlot(static_cast<uint32_t>(Ri)));
    if (A <= B) {
      arrSet(Out, static_cast<uint32_t>(At++), boxInt(A));
      ++Li;
    } else {
      arrSet(Out, static_cast<uint32_t>(At++), boxInt(B));
      ++Ri;
    }
  }
  for (; Li < Le; ++Li)
    arrSet(Out, static_cast<uint32_t>(At++),
           L->getSlot(static_cast<uint32_t>(Li)));
  for (; Ri < Re; ++Ri)
    arrSet(Out, static_cast<uint32_t>(At++),
           R->getSlot(static_cast<uint32_t>(Ri)));
}

/// First index in A[Lo, Hi) with value > Key (upper bound).
int64_t upperBound(Object *A, int64_t Lo, int64_t Hi, int64_t Key) {
  while (Lo < Hi) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    if (unboxInt(A->getSlot(static_cast<uint32_t>(Mid))) <= Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

/// Parallel merge by binary-search splitting (span O(log^2 n)).
void parMerge(Object *L, int64_t Li, int64_t Le, Object *R, int64_t Ri,
              int64_t Re, Object *Out, int64_t At, int64_t Grain) {
  int64_t Total = (Le - Li) + (Re - Ri);
  if (Total <= Grain) {
    seqMerge(L, Li, Le, R, Ri, Re, Out, At);
    return;
  }
  // Split the larger input at its midpoint; find the split in the other.
  if (Le - Li < Re - Ri) {
    parMerge(R, Ri, Re, L, Li, Le, Out, At, Grain);
    return;
  }
  int64_t Lm = Li + (Le - Li) / 2;
  int64_t Key = unboxInt(L->getSlot(static_cast<uint32_t>(Lm)));
  int64_t Rm = upperBound(R, Ri, Re, Key);
  int64_t OutMid = At + (Lm - Li) + (Rm - Ri);
  Local LL(L), LR(R), LOut(Out);
  rt::par(
      [&] {
        parMerge(LL.get(), Li, Lm + 1, LR.get(), Ri, Rm, LOut.get(), At,
                 Grain);
        return unit();
      },
      [&] {
        parMerge(LL.get(), Lm + 1, Le, LR.get(), Rm, Re, LOut.get(),
                 OutMid + 1, Grain);
        return unit();
      });
}

Object *msortRec(Object *A, int64_t Grain, bool Parallel) {
  Local In(A);
  int64_t N = arrLen(A);
  if (N <= Grain) {
    Object *Out = sliceInts(In.get(), 0, N);
    // Tagging is monotone in the *signed* domain, so compare as int64.
    std::sort(Out->slots(), Out->slots() + N, [](Slot A, Slot B) {
      return static_cast<int64_t>(A) < static_cast<int64_t>(B);
    });
    return Out;
  }
  int64_t Mid = N / 2;
  Local L(sliceInts(In.get(), 0, Mid));
  Local R(sliceInts(In.get(), Mid, N));
  Slot SL, SR;
  if (Parallel) {
    std::tie(SL, SR) = rt::par(
        [&] { return Object::fromPointer(msortRec(L.get(), Grain, true)); },
        [&] { return Object::fromPointer(msortRec(R.get(), Grain, true)); });
  } else {
    // Sequential-baseline mode: same algorithm and allocation behaviour,
    // no forks (and so no child heaps).
    SL = Object::fromPointer(msortRec(L.get(), Grain, false));
    Local Hold(SL);
    SR = Object::fromPointer(msortRec(R.get(), Grain, false));
    SL = Hold.slot();
  }
  Local LS(SL), RS(SR);
  Local Out(newArray(static_cast<uint32_t>(N), boxInt(0)));
  parMerge(LS.get(), 0, arrLen(LS.get()), RS.get(), 0, arrLen(RS.get()),
           Out.get(), 0, Parallel ? std::max<int64_t>(Grain, 1024) : N + 1);
  return Out.get();
}

} // namespace

Object *mergesortInts(Object *A, int64_t Grain, bool Parallel) {
  return msortRec(A, Grain, Parallel);
}

namespace {

Object *qsortRec(Object *A, int64_t Grain, bool Parallel);

/// Parallel filter of A by comparison against Pivot, Mode in {<, ==, >}.
template <int Mode> Object *partitionBy(Object *A, int64_t Pivot) {
  int64_t N = arrLen(A);
  Local In(A);
  // Sequential partition per call; parallelism comes from sorting the two
  // sides in parallel (the functional-quicksort shape).
  Local Out(newArray(static_cast<uint32_t>(N), boxInt(0)));
  int64_t K = 0;
  for (int64_t I = 0; I < N; ++I) {
    int64_t V = unboxInt(arrGet(In.get(), static_cast<uint32_t>(I)));
    bool Keep = Mode < 0 ? V < Pivot : (Mode == 0 ? V == Pivot : V > Pivot);
    if (Keep)
      arrSet(Out.get(), static_cast<uint32_t>(K++), boxInt(V));
  }
  return sliceInts(Out.get(), 0, K);
}

Object *concat3(Object *A, Object *B, Object *C) {
  Local LA(A), LB(B), LC(C);
  int64_t N = arrLen(A) + arrLen(B) + arrLen(C);
  Local Out(newArray(static_cast<uint32_t>(N), boxInt(0)));
  int64_t At = 0;
  for (Object *Src : {LA.get(), LB.get(), LC.get()})
    for (uint32_t I = 0, E = arrLen(Src); I < E; ++I)
      Out.get()->setSlot(static_cast<uint32_t>(At++), Src->getSlot(I));
  return Out.get();
}

Object *qsortRec(Object *A, int64_t Grain, bool Parallel) {
  Local In(A);
  int64_t N = arrLen(A);
  if (N <= Grain) {
    Object *Out = sliceInts(In.get(), 0, N);
    std::sort(Out->slots(), Out->slots() + N, [](Slot A, Slot B) {
      return static_cast<int64_t>(A) < static_cast<int64_t>(B);
    });
    return Out;
  }
  // Median-of-three pivot.
  int64_t V0 = unboxInt(In.get()->getSlot(0));
  int64_t V1 = unboxInt(In.get()->getSlot(static_cast<uint32_t>(N / 2)));
  int64_t V2 = unboxInt(In.get()->getSlot(static_cast<uint32_t>(N - 1)));
  int64_t Pivot = std::max(std::min(V0, V1), std::min(std::max(V0, V1), V2));

  Local Less(partitionBy<-1>(In.get(), Pivot));
  Local Equal(partitionBy<0>(In.get(), Pivot));
  Local Greater(partitionBy<1>(In.get(), Pivot));

  Slot SL, SG;
  if (Parallel) {
    std::tie(SL, SG) = rt::par(
        [&] {
          return Object::fromPointer(qsortRec(Less.get(), Grain, true));
        },
        [&] {
          return Object::fromPointer(qsortRec(Greater.get(), Grain, true));
        });
  } else {
    SL = Object::fromPointer(qsortRec(Less.get(), Grain, false));
    Local Hold(SL);
    SG = Object::fromPointer(qsortRec(Greater.get(), Grain, false));
    SL = Hold.slot();
  }
  Local A1(SL), A3(SG);
  return concat3(A1.get(), Equal.get(), A3.get());
}

} // namespace

Object *quicksortInts(Object *A, int64_t Grain, bool Parallel) {
  return qsortRec(A, Grain, Parallel);
}

bool isSortedInts(Object *A) {
  for (uint32_t I = 1, E = arrLen(A); I < E; ++I)
    if (unboxInt(A->getSlot(I - 1)) > unboxInt(A->getSlot(I)))
      return false;
  return true;
}

namespace {

/// Board: immutable list node {col:int, rest:ptr}.
bool queenSafe(Object *Board, int64_t Col) {
  int64_t Dist = 1;
  for (Object *Cur = Board; Cur;
       Cur = Object::asPointer(recGet(Cur, 1)), ++Dist) {
    int64_t C = unboxInt(recGet(Cur, 0));
    if (C == Col || C == Col - Dist || C == Col + Dist)
      return false;
  }
  return true;
}

int64_t queensRec(int N, int Row, Object *Board, bool Parallel) {
  if (Row == N)
    return 1;
  Local LBoard(Board);
  int64_t Count = 0;
  if (!Parallel || Row >= 3) {
    // Deep rows: sequential.
    for (int64_t Col = 0; Col < N; ++Col) {
      if (!queenSafe(LBoard.get(), Col))
        continue;
      Local Node(newRecord(0b10, {boxInt(Col), LBoard.slot()}));
      Count += queensRec(N, Row + 1, Node.get(), Parallel);
    }
    return Count;
  }
  // Shallow rows: parallel over column halves.
  struct Range {
    static int64_t go(int N, int Row, Object *Board, int64_t Lo, int64_t Hi) {
      if (Hi - Lo == 1) {
        if (!queenSafe(Board, Lo))
          return 0;
        Local Node(newRecord(0b10, {boxInt(Lo),
                                    Object::fromPointer(Board)}));
        return queensRec(N, Row + 1, Node.get(), /*Parallel=*/true);
      }
      int64_t Mid = Lo + (Hi - Lo) / 2;
      Local LB(Board);
      auto [A, B] =
          rt::par([&] { return boxInt(go(N, Row, LB.get(), Lo, Mid)); },
                  [&] { return boxInt(go(N, Row, LB.get(), Mid, Hi)); });
      return unboxInt(A) + unboxInt(B);
    }
  };
  return Range::go(N, Row, LBoard.get(), 0, N);
}

} // namespace

int64_t nqueens(int N, bool Parallel) {
  return queensRec(N, 0, nullptr, Parallel);
}

Object *primesUpTo(int64_t N, int64_t Grain) {
  MPL_CHECK(N >= 2, "primesUpTo needs N >= 2");
  // Composite flags as raw bytes (no pointers: disentangled by
  // construction, and races on flag stores are benign).
  Local Flags(newRawArray(static_cast<size_t>(N + 1)));
  char *F = reinterpret_cast<char *>(Flags.get()->slots());
  std::fill(F, F + N + 1, 0);

  for (int64_t P = 2; P * P <= N; ++P) {
    if (F[P])
      continue;
    // Mark multiples of P in parallel blocks.
    int64_t First = P * P;
    int64_t Count = (N - First) / P + 1;
    char *FP = reinterpret_cast<char *>(Flags.get()->slots());
    rt::parFor(0, Count, 2 * Grain, [FP, First, P](int64_t K) {
      FP[First + K * P] = 1;
    });
  }

  // Collect primes with a parallel count-scan-fill over the flag blocks.
  int64_t NumBlocks = std::max<int64_t>(1, (N + Grain) / Grain);
  Local Counts(newArray(static_cast<uint32_t>(NumBlocks), boxInt(0)));
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    const char *Fl = reinterpret_cast<const char *>(Flags.get()->slots());
    int64_t Lo = B * Grain, Hi = std::min<int64_t>(N + 1, Lo + Grain);
    int64_t C = 0;
    for (int64_t I = std::max<int64_t>(Lo, 2); I < Hi; ++I)
      C += !Fl[I];
    arrSet(Counts.get(), static_cast<uint32_t>(B), boxInt(C));
  });
  int64_t Total = 0;
  for (int64_t B = 0; B < NumBlocks; ++B) {
    int64_t C = unboxInt(arrGet(Counts.get(), static_cast<uint32_t>(B)));
    arrSet(Counts.get(), static_cast<uint32_t>(B), boxInt(Total));
    Total += C;
  }
  Local Out(newArray(static_cast<uint32_t>(Total), boxInt(0)));
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    const char *Fl = reinterpret_cast<const char *>(Flags.get()->slots());
    int64_t Lo = B * Grain, Hi = std::min<int64_t>(N + 1, Lo + Grain);
    int64_t At = unboxInt(arrGet(Counts.get(), static_cast<uint32_t>(B)));
    for (int64_t I = std::max<int64_t>(Lo, 2); I < Hi; ++I)
      if (!Fl[I])
        arrSet(Out.get(), static_cast<uint32_t>(At++), boxInt(I));
  });
  return Out.get();
}

Object *randomText(int64_t Len, uint64_t Seed) {
  // Build into a host buffer first (strings are immutable raw arrays).
  std::string Buf(static_cast<size_t>(Len), ' ');
  Rng R(Seed);
  size_t I = 0;
  while (I < Buf.size()) {
    size_t WordLen = 1 + R.nextBounded(9);
    for (size_t J = 0; J < WordLen && I < Buf.size(); ++J, ++I)
      Buf[I] = static_cast<char>('a' + R.nextBounded(26));
    if (I < Buf.size())
      Buf[I++] = R.nextBounded(8) == 0 ? '\n' : ' ';
  }
  return newString(Buf.data(), Buf.size());
}

int64_t tokens(Object *Str, int64_t Grain) {
  Local S(Str);
  int64_t Len = static_cast<int64_t>(strLen(S.get()));
  int64_t NumBlocks = std::max<int64_t>(1, (Len + Grain - 1) / Grain);
  Local Counts(newArray(static_cast<uint32_t>(NumBlocks), boxInt(0)));
  auto IsSpace = [](char C) { return C == ' ' || C == '\n' || C == '\t'; };
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    const char *D = strBytes(S.get());
    int64_t Lo = B * Grain, Hi = std::min(Len, Lo + Grain);
    int64_t C = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      if (!IsSpace(D[I]) && (I == 0 || IsSpace(D[I - 1])))
        ++C;
    arrSet(Counts.get(), static_cast<uint32_t>(B), boxInt(C));
  });
  return sumInts(Counts.get(), 64);
}

Object *randomInts(int64_t N, int64_t Range, uint64_t Seed) {
  return tabulate(N, [=](int64_t I) {
    return boxInt(static_cast<int64_t>(hash64(Seed ^ hash64(I)) %
                                       static_cast<uint64_t>(Range)));
  });
}

Object *histogram(Object *A, int64_t Buckets, int64_t Grain) {
  Local In(A);
  Local Out(newArray(static_cast<uint32_t>(Buckets), boxInt(0)));
  int64_t N = arrLen(In.get());
  rt::parFor(0, N, Grain, [&](int64_t I) {
    int64_t V = unboxInt(arrGet(In.get(), static_cast<uint32_t>(I)));
    MPL_DASSERT(V >= 0 && V < Buckets, "histogram value out of range");
    // Atomic add on a tagged int: adding (delta << 1) preserves the tag.
    std::atomic_ref<Slot>(Out.get()->slots()[V]).fetch_add(
        2, std::memory_order_relaxed);
  });
  return Out.get();
}

} // namespace wl
} // namespace mpl
