//===- workloads/Graph.h - Graph workloads ---------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSR graphs over raw arrays and a frontier-based parallel BFS with CAS on
/// a parents array — the irregular-parallel representative of the paper's
/// benchmark suite (bfs / centrality class).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_WORKLOADS_GRAPH_H
#define MPL_WORKLOADS_GRAPH_H

#include "core/Handles.h"
#include "core/Ops.h"

#include <cstdint>

namespace mpl {
namespace wl {

/// A graph is a record {n:int, m:int, offsets:RawArray, edges:RawArray}
/// in CSR form; offsets has n+1 int64 entries into edges.
struct GraphView {
  int64_t NumVertices;
  int64_t NumEdges;
  const int64_t *Offsets;
  const int64_t *Edges;

  /// Unpacks a graph record (no allocation; pointers are valid until the
  /// next allocation point).
  static GraphView of(Object *G);
};

/// Builds a deterministic random graph: \p N vertices, about \p AvgDeg
/// out-edges per vertex, plus a Hamiltonian path i -> i+1 so BFS from 0
/// reaches everything.
Object *buildRandomGraph(int64_t N, int64_t AvgDeg, uint64_t Seed);

/// Parallel frontier BFS from \p Src; returns a RawArray of int64 parents
/// (-1 for the root's parent; unreached is impossible by construction).
/// \p Grain controls the frontier-expansion grain; pass a huge value for a
/// fully sequential run.
Object *bfs(Object *G, int64_t Src, int64_t Grain = 64);

/// Number of vertices whose parent is set (reachability check).
int64_t countReached(Object *Parents);

/// Sum of BFS levels (a checksum that validates the traversal order).
int64_t bfsLevelSum(Object *G, Object *Parents, int64_t Src);

} // namespace wl
} // namespace mpl

#endif // MPL_WORKLOADS_GRAPH_H
