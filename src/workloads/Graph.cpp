//===- workloads/Graph.cpp - Graph workloads -------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Graph.h"

#include "core/Runtime.h"
#include "support/Random.h"

#include <atomic>
#include <vector>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace wl {

GraphView GraphView::of(Object *G) {
  GraphView V;
  V.NumVertices = unboxInt(recGet(G, 0));
  V.NumEdges = unboxInt(recGet(G, 1));
  Object *Off = Object::asPointer(recGet(G, 2));
  Object *Edg = Object::asPointer(recGet(G, 3));
  V.Offsets = reinterpret_cast<const int64_t *>(Off->slots());
  V.Edges = reinterpret_cast<const int64_t *>(Edg->slots());
  return V;
}

Object *buildRandomGraph(int64_t N, int64_t AvgDeg, uint64_t Seed) {
  MPL_CHECK(N >= 2, "graph needs at least two vertices");
  // Degree per vertex: AvgDeg random targets + 1 path edge.
  std::vector<int64_t> Deg(static_cast<size_t>(N), 0);
  for (int64_t U = 0; U < N; ++U)
    Deg[static_cast<size_t>(U)] =
        AvgDeg + (U + 1 < N ? 1 : 0);

  Local Offsets(newRawArray(static_cast<size_t>(N + 1) * 8));
  int64_t *Off = reinterpret_cast<int64_t *>(Offsets.get()->slots());
  Off[0] = 0;
  for (int64_t U = 0; U < N; ++U)
    Off[U + 1] = Off[U] + Deg[static_cast<size_t>(U)];
  int64_t M = Off[N];

  Local Edges(newRawArray(static_cast<size_t>(M) * 8));
  // Re-read offsets after the allocation above (it may have collected).
  Off = reinterpret_cast<int64_t *>(Offsets.get()->slots());
  int64_t *Edg = reinterpret_cast<int64_t *>(Edges.get()->slots());
  for (int64_t U = 0; U < N; ++U) {
    Rng R(hash64(Seed ^ static_cast<uint64_t>(U)));
    int64_t At = Off[U];
    for (int64_t K = 0; K < AvgDeg; ++K)
      Edg[At++] = static_cast<int64_t>(R.nextBounded(
          static_cast<uint64_t>(N)));
    if (U + 1 < N)
      Edg[At++] = U + 1; // Path edge guarantees reachability.
  }

  return newRecord(0b1100, {boxInt(N), boxInt(M),
                            Object::fromPointer(Offsets.get()),
                            Object::fromPointer(Edges.get())});
}

Object *bfs(Object *G, int64_t Src, int64_t Grain) {
  Local LG(G);
  GraphView V = GraphView::of(LG.get());
  int64_t N = V.NumVertices;

  Local Parents(newRawArray(static_cast<size_t>(N) * 8));
  {
    int64_t *P = reinterpret_cast<int64_t *>(Parents.get()->slots());
    rt::parFor(0, N, 1 << 14, [P](int64_t I) { P[I] = -2; });
    P[Src] = -1;
  }

  // Frontier as a host-side vector of vertex ids; per-round expansion is
  // a parallel loop with CAS claims on the parents array.
  std::vector<int64_t> Frontier{Src};
  while (!Frontier.empty()) {
    // Next-frontier segments per frontier slot, merged after the round.
    std::vector<std::vector<int64_t>> Next(Frontier.size());
    GraphView GV = GraphView::of(LG.get());
    int64_t *P = reinterpret_cast<int64_t *>(Parents.get()->slots());
    const int64_t *FrontierData = Frontier.data();
    std::vector<int64_t> *NextData = Next.data();
    rt::parFor(0, static_cast<int64_t>(Frontier.size()), Grain,
               [GV, P, FrontierData, NextData](int64_t I) {
                 int64_t U = FrontierData[I];
                 for (int64_t E = GV.Offsets[U]; E < GV.Offsets[U + 1]; ++E) {
                   int64_t W = GV.Edges[E];
                   int64_t Expected = -2;
                   if (std::atomic_ref<int64_t>(P[W]).compare_exchange_strong(
                           Expected, U, std::memory_order_acq_rel))
                     NextData[I].push_back(W);
                 }
               });
    Frontier.clear();
    for (auto &Seg : Next)
      Frontier.insert(Frontier.end(), Seg.begin(), Seg.end());
  }
  return Parents.get();
}

int64_t countReached(Object *Parents) {
  const int64_t *P = reinterpret_cast<const int64_t *>(Parents->slots());
  int64_t N = static_cast<int64_t>(Parents->length());
  int64_t C = 0;
  for (int64_t I = 0; I < N; ++I)
    C += P[I] != -2;
  return C;
}

int64_t bfsLevelSum(Object *G, Object *Parents, int64_t Src) {
  GraphView V = GraphView::of(G);
  const int64_t *P = reinterpret_cast<const int64_t *>(Parents->slots());
  std::vector<int64_t> Level(static_cast<size_t>(V.NumVertices), -1);
  // Levels by following parent chains (memoized).
  int64_t Sum = 0;
  for (int64_t U = 0; U < V.NumVertices; ++U) {
    // Walk up to a known level.
    int64_t Steps = 0;
    int64_t Cur = U;
    while (Cur != Src && Level[static_cast<size_t>(Cur)] < 0) {
      Cur = P[Cur];
      ++Steps;
      MPL_CHECK(Cur >= 0, "broken parent chain");
    }
    int64_t Base = Cur == Src ? 0 : Level[static_cast<size_t>(Cur)];
    // Second pass to fill in.
    int64_t L = Base + Steps;
    int64_t Fill = U;
    int64_t FillL = L;
    while (Fill != Cur) {
      Level[static_cast<size_t>(Fill)] = FillL--;
      Fill = P[Fill];
    }
    Sum += L;
  }
  return Sum;
}

} // namespace wl
} // namespace mpl
