//===- workloads/Collections.h - Parallel collection operations -*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat data-parallel combinators of the benchmark suite (tabulate,
/// map-reduce, scan, filter), written against the public runtime API with
/// full barriers — these are the operations whose *disentangled* cost the
/// paper shows to be unaffected by entanglement support.
///
/// GC discipline: combinator bodies may allocate; array handles are rooted
/// across every allocation point.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_WORKLOADS_COLLECTIONS_H
#define MPL_WORKLOADS_COLLECTIONS_H

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"

#include <algorithm>

namespace mpl {
namespace wl {

/// Default grain for the flat loops; tuned for ~10-100us leaves.
constexpr int64_t DefaultGrain = 2048;

/// Builds an array of length \p N with element I = Fn(I). Fn returns a
/// Slot and may allocate.
template <typename F>
Object *tabulate(int64_t N, const F &Fn, int64_t Grain = DefaultGrain) {
  Local Arr(ops::newArray(static_cast<uint32_t>(N), ops::boxInt(0)));
  rt::parFor(0, N, Grain, [&](int64_t I) {
    Slot V = Fn(I);
    ops::arrSet(Arr.get(), static_cast<uint32_t>(I), V);
  });
  return Arr.get();
}

/// Sum of Fn(element) over the array; Fn must not allocate.
template <typename F>
int64_t reduceMap(Object *A, const F &Fn, int64_t Grain = DefaultGrain) {
  struct Rec {
    static int64_t go(Object *Arr, int64_t Lo, int64_t Hi, const F &Fn,
                      int64_t Grain) {
      if (Hi - Lo <= Grain) {
        int64_t Acc = 0;
        for (int64_t I = Lo; I < Hi; ++I)
          Acc += Fn(ops::arrGet(Arr, static_cast<uint32_t>(I)));
        return Acc;
      }
      int64_t Mid = Lo + (Hi - Lo) / 2;
      Local LArr(Arr);
      auto [L, R] = rt::par(
          [&] { return ops::boxInt(go(LArr.get(), Lo, Mid, Fn, Grain)); },
          [&] { return ops::boxInt(go(LArr.get(), Mid, Hi, Fn, Grain)); });
      return ops::unboxInt(L) + ops::unboxInt(R);
    }
  };
  return Rec::go(A, 0, ops::arrLen(A), Fn, Grain);
}

/// Sum of an integer array.
inline int64_t sumInts(Object *A, int64_t Grain = DefaultGrain) {
  return reduceMap(A, [](Slot V) { return ops::unboxInt(V); }, Grain);
}

/// Exclusive prefix sums of an integer array (blocked two-pass scan).
/// Returns a record {sums array, total}.
Object *scanPlus(Object *A, int64_t Grain = DefaultGrain);

/// Keeps the elements satisfying \p Pred (on unboxed ints), preserving
/// order. Returns a (possibly shorter) integer array.
Object *filterInts(Object *A, bool (*Pred)(int64_t),
                   int64_t Grain = DefaultGrain);

/// Maximum of an integer array (reduce with max).
int64_t maxInts(Object *A, int64_t Grain = DefaultGrain);

} // namespace wl
} // namespace mpl

#endif // MPL_WORKLOADS_COLLECTIONS_H
