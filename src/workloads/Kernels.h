//===- workloads/Kernels.h - Benchmark kernels ------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark kernels of the evaluation (Section 6 of the paper). The
/// disentangled suite mirrors the PBBS-derived Parallel ML benchmarks:
/// irregular fork-join (fib, nqueens), sorting (mergesort, quicksort), flat
/// data parallelism (primes, tokens, histogram). All kernels run on the
/// hierarchical runtime with full barriers.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_WORKLOADS_KERNELS_H
#define MPL_WORKLOADS_KERNELS_H

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"

namespace mpl {
namespace wl {

/// Exponential Fibonacci via nested par (the classic scheduler stressor).
int64_t fib(int64_t N, int64_t Grain = 18);

/// Out-of-place parallel mergesort of an integer array; returns a new
/// sorted array (functional style — heavy allocation, the paper's GC
/// stressor).
Object *mergesortInts(Object *A, int64_t Grain = 4096,
                      bool Parallel = true);

/// Functional quicksort via parallel partition (filter-based); returns a
/// new sorted array.
Object *quicksortInts(Object *A, int64_t Grain = 4096,
                      bool Parallel = true);

/// Returns true when \p A is sorted ascending (sequential check).
bool isSortedInts(Object *A);

/// Number of solutions to the N-queens problem (parallel tree search over
/// immutable board lists); pass Parallel=false for the sequential-runtime
/// baseline (same allocation behaviour, no forks).
int64_t nqueens(int N, bool Parallel = true);

/// Array of all primes <= N (parallel sieve on a raw byte array, then a
/// parallel filter). Pass Grain >= N for a sequential run.
Object *primesUpTo(int64_t N, int64_t Grain = 8192);

/// Number of whitespace-separated tokens in a string object.
int64_t tokens(Object *Str, int64_t Grain = 8192);

/// Builds a deterministic pseudo-random text of \p Len bytes.
Object *randomText(int64_t Len, uint64_t Seed);

/// Builds a deterministic random integer array with values in [0, Range).
Object *randomInts(int64_t N, int64_t Range, uint64_t Seed);

/// Histogram: counts of A's values into \p Buckets buckets; values must be
/// in [0, Buckets). Uses concurrent atomic updates on a shared array.
Object *histogram(Object *A, int64_t Buckets, int64_t Grain = 2048);

} // namespace wl
} // namespace mpl

#endif // MPL_WORKLOADS_KERNELS_H
