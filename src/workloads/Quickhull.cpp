//===- workloads/Quickhull.cpp - 2D convex hull ------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Quickhull.h"

#include "core/Runtime.h"
#include "support/Random.h"

#include <algorithm>
#include <tuple>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace wl {

namespace {

struct PointsView {
  int64_t N;
  const int64_t *Xs;
  const int64_t *Ys;

  static PointsView of(Object *P) {
    PointsView V;
    V.N = unboxInt(recGet(P, 0));
    V.Xs = reinterpret_cast<const int64_t *>(
        Object::asPointer(recGet(P, 1))->slots());
    V.Ys = reinterpret_cast<const int64_t *>(
        Object::asPointer(recGet(P, 2))->slots());
    return V;
  }
};

/// Twice the signed area of triangle (a, b, c): > 0 when c is left of ab.
int64_t cross(int64_t Ax, int64_t Ay, int64_t Bx, int64_t By, int64_t Cx,
              int64_t Cy) {
  return (Bx - Ax) * (Cy - Ay) - (By - Ay) * (Cx - Ax);
}

/// Candidate index arrays are runtime int arrays (indices into the point
/// set); each recursion allocates the filtered flank sets functionally.
int64_t hullRec(Object *Points, Object *Candidates, int64_t Ax, int64_t Ay,
                int64_t Bx, int64_t By, int64_t Grain) {
  Local LP(Points), LC(Candidates);
  int64_t N = arrLen(LC.get());
  if (N == 0)
    return 0;

  // Find the farthest point from line ab (sequential scan per node; the
  // recursion supplies the parallelism, as in the PBBS version).
  PointsView V = PointsView::of(LP.get());
  int64_t BestIdx = -1, BestDist = -1;
  for (int64_t I = 0; I < N; ++I) {
    int64_t P = unboxInt(LC.get()->getSlot(static_cast<uint32_t>(I)));
    int64_t D = cross(Ax, Ay, Bx, By, V.Xs[P], V.Ys[P]);
    if (D > BestDist) {
      BestDist = D;
      BestIdx = P;
    }
  }
  if (BestDist <= 0)
    return 0; // No point strictly outside: ab is a hull edge.

  int64_t Px = V.Xs[BestIdx], Py = V.Ys[BestIdx];

  // Partition candidates into the two flanks (functional filters).
  auto filterFlank = [&](int64_t Qax, int64_t Qay, int64_t Qbx,
                         int64_t Qby) -> Object * {
    Local Out(newArray(static_cast<uint32_t>(N), boxInt(0)));
    PointsView W = PointsView::of(LP.get());
    int64_t K = 0;
    for (int64_t I = 0; I < N; ++I) {
      int64_t P = unboxInt(LC.get()->getSlot(static_cast<uint32_t>(I)));
      if (cross(Qax, Qay, Qbx, Qby, W.Xs[P], W.Ys[P]) > 0)
        Out.get()->setSlot(static_cast<uint32_t>(K++), boxInt(P));
    }
    // Shrink-copy to the exact size.
    Local Exact(newArray(static_cast<uint32_t>(K), boxInt(0)));
    for (int64_t I = 0; I < K; ++I)
      Exact.get()->setSlot(static_cast<uint32_t>(I),
                           Out.get()->getSlot(static_cast<uint32_t>(I)));
    return Exact.get();
  };

  Local Left(filterFlank(Ax, Ay, Px, Py));
  Local Right(filterFlank(Px, Py, Bx, By));

  int64_t CL, CR;
  if (N > Grain) {
    auto [SL, SR] = rt::par(
        [&] {
          return boxInt(hullRec(LP.get(), Left.get(), Ax, Ay, Px, Py,
                                Grain));
        },
        [&] {
          return boxInt(hullRec(LP.get(), Right.get(), Px, Py, Bx, By,
                                Grain));
        });
    CL = unboxInt(SL);
    CR = unboxInt(SR);
  } else {
    CL = hullRec(LP.get(), Left.get(), Ax, Ay, Px, Py, Grain);
    CR = hullRec(LP.get(), Right.get(), Px, Py, Bx, By, Grain);
  }
  return CL + CR + 1; // The farthest point is a hull vertex.
}

} // namespace

Object *randomPoints(int64_t N, uint64_t Seed) {
  MPL_CHECK(N >= 3, "need at least 3 points");
  Local Xs(newRawArray(static_cast<size_t>(N) * 8));
  Local Ys(newRawArray(static_cast<size_t>(N) * 8));
  int64_t *X = reinterpret_cast<int64_t *>(Xs.get()->slots());
  int64_t *Y = reinterpret_cast<int64_t *>(Ys.get()->slots());
  // Re-read after the second allocation.
  X = reinterpret_cast<int64_t *>(Xs.get()->slots());
  for (int64_t I = 0; I < N; ++I) {
    // Points in a disc (rejection-free approximation: square then clamp
    // radius by resampling the ring) — keeps hull size O(n^(1/3)).
    Rng R(hash64(Seed ^ static_cast<uint64_t>(I)));
    int64_t Vx, Vy;
    do {
      Vx = static_cast<int64_t>(R.nextBounded(2000001)) - 1000000;
      Vy = static_cast<int64_t>(R.nextBounded(2000001)) - 1000000;
    } while (Vx * Vx + Vy * Vy > 1000000ll * 1000000ll);
    X[I] = Vx;
    Y[I] = Vy;
  }
  return newRecord(0b110, {boxInt(N), Object::fromPointer(Xs.get()),
                           Object::fromPointer(Ys.get())});
}

int64_t quickhullCount(Object *Points, int64_t Grain) {
  Local LP(Points);
  PointsView V = PointsView::of(LP.get());
  // Extremal points in x (ties by y) anchor the two half-hulls.
  int64_t MinI = 0, MaxI = 0;
  for (int64_t I = 1; I < V.N; ++I) {
    if (std::make_pair(V.Xs[I], V.Ys[I]) <
        std::make_pair(V.Xs[MinI], V.Ys[MinI]))
      MinI = I;
    if (std::make_pair(V.Xs[I], V.Ys[I]) >
        std::make_pair(V.Xs[MaxI], V.Ys[MaxI]))
      MaxI = I;
  }
  int64_t Ax = V.Xs[MinI], Ay = V.Ys[MinI];
  int64_t Bx = V.Xs[MaxI], By = V.Ys[MaxI];

  // All indices as the initial candidate set.
  Local All(newArray(static_cast<uint32_t>(V.N), boxInt(0)));
  for (int64_t I = 0; I < V.N; ++I)
    All.get()->setSlot(static_cast<uint32_t>(I), boxInt(I));

  auto [Upper, Lower] = rt::par(
      [&] {
        return boxInt(hullRec(LP.get(), All.get(), Ax, Ay, Bx, By, Grain));
      },
      [&] {
        return boxInt(hullRec(LP.get(), All.get(), Bx, By, Ax, Ay, Grain));
      });
  return unboxInt(Upper) + unboxInt(Lower) + 2; // + the two anchors.
}

} // namespace wl
} // namespace mpl
