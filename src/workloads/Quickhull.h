//===- workloads/Quickhull.h - 2D convex hull -------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel quickhull over integer 2D points — the irregular geometric
/// member of the paper's benchmark suite. Points are stored as two raw
/// arrays (x, y); each recursion step partitions the candidate set with a
/// functional filter and recurses on both flanks in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_WORKLOADS_QUICKHULL_H
#define MPL_WORKLOADS_QUICKHULL_H

#include "core/Handles.h"
#include "core/Ops.h"

#include <cstdint>

namespace mpl {
namespace wl {

/// A point set: record {n:int, xs:RawArray, ys:RawArray}.
Object *randomPoints(int64_t N, uint64_t Seed);

/// Number of points on the convex hull of the set. \p Grain bounds the
/// sequential cutoff; pass >= N for a sequential run.
int64_t quickhullCount(Object *Points, int64_t Grain = 4096);

} // namespace wl
} // namespace mpl

#endif // MPL_WORKLOADS_QUICKHULL_H
