//===- workloads/Collections.cpp - Parallel collection operations ---------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Collections.h"

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace wl {

Object *scanPlus(Object *A, int64_t Grain) {
  int64_t N = arrLen(A);
  int64_t NumBlocks = (N + Grain - 1) / Grain;
  if (NumBlocks == 0)
    NumBlocks = 1;

  Local In(A);
  Local BlockSums(newArray(static_cast<uint32_t>(NumBlocks), boxInt(0)));

  // Pass 1: per-block sums.
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    int64_t Lo = B * Grain, Hi = std::min(N, Lo + Grain);
    int64_t Acc = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      Acc += unboxInt(arrGet(In.get(), static_cast<uint32_t>(I)));
    arrSet(BlockSums.get(), static_cast<uint32_t>(B), boxInt(Acc));
  });

  // Pass 2: sequential exclusive scan of the (few) block sums.
  int64_t Total = 0;
  for (int64_t B = 0; B < NumBlocks; ++B) {
    int64_t S = unboxInt(arrGet(BlockSums.get(), static_cast<uint32_t>(B)));
    arrSet(BlockSums.get(), static_cast<uint32_t>(B), boxInt(Total));
    Total += S;
  }

  // Pass 3: per-block exclusive prefix fill.
  Local Out(newArray(static_cast<uint32_t>(N), boxInt(0)));
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    int64_t Lo = B * Grain, Hi = std::min(N, Lo + Grain);
    int64_t Acc = unboxInt(arrGet(BlockSums.get(), static_cast<uint32_t>(B)));
    for (int64_t I = Lo; I < Hi; ++I) {
      int64_t V = unboxInt(arrGet(In.get(), static_cast<uint32_t>(I)));
      arrSet(Out.get(), static_cast<uint32_t>(I), boxInt(Acc));
      Acc += V;
    }
  });

  return newRecord(0b01, {Object::fromPointer(Out.get()), boxInt(Total)});
}

Object *filterInts(Object *A, bool (*Pred)(int64_t), int64_t Grain) {
  int64_t N = arrLen(A);
  int64_t NumBlocks = std::max<int64_t>(1, (N + Grain - 1) / Grain);

  Local In(A);
  Local Counts(newArray(static_cast<uint32_t>(NumBlocks), boxInt(0)));

  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    int64_t Lo = B * Grain, Hi = std::min(N, Lo + Grain);
    int64_t C = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      C += Pred(unboxInt(arrGet(In.get(), static_cast<uint32_t>(I))));
    arrSet(Counts.get(), static_cast<uint32_t>(B), boxInt(C));
  });

  int64_t Total = 0;
  for (int64_t B = 0; B < NumBlocks; ++B) {
    int64_t C = unboxInt(arrGet(Counts.get(), static_cast<uint32_t>(B)));
    arrSet(Counts.get(), static_cast<uint32_t>(B), boxInt(Total));
    Total += C;
  }

  Local Out(newArray(static_cast<uint32_t>(Total), boxInt(0)));
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    int64_t Lo = B * Grain, Hi = std::min(N, Lo + Grain);
    int64_t At = unboxInt(arrGet(Counts.get(), static_cast<uint32_t>(B)));
    for (int64_t I = Lo; I < Hi; ++I) {
      int64_t V = unboxInt(arrGet(In.get(), static_cast<uint32_t>(I)));
      if (Pred(V))
        arrSet(Out.get(), static_cast<uint32_t>(At++), boxInt(V));
    }
  });
  return Out.get();
}

int64_t maxInts(Object *A, int64_t Grain) {
  struct Rec {
    static int64_t go(Object *Arr, int64_t Lo, int64_t Hi, int64_t Grain) {
      if (Hi - Lo <= Grain) {
        int64_t M = INT64_MIN;
        for (int64_t I = Lo; I < Hi; ++I)
          M = std::max(M, unboxInt(arrGet(Arr, static_cast<uint32_t>(I))));
        return M;
      }
      int64_t Mid = Lo + (Hi - Lo) / 2;
      Local LArr(Arr);
      auto [L, R] =
          rt::par([&] { return boxInt(go(LArr.get(), Lo, Mid, Grain)); },
                  [&] { return boxInt(go(LArr.get(), Mid, Hi, Grain)); });
      return std::max(unboxInt(L), unboxInt(R));
    }
  };
  return Rec::go(A, 0, arrLen(A), Grain);
}

} // namespace wl
} // namespace mpl
