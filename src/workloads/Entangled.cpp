//===- workloads/Entangled.cpp - Effectful (entangled) workloads -----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Entangled.h"

#include "core/Runtime.h"
#include "support/Random.h"

#include <algorithm>
#include <thread>

using namespace mpl;
using namespace mpl::ops;

namespace mpl {
namespace wl {

// A table is an Array of slots: 0 = empty, otherwise a pointer to an
// immutable boxed key record {key:int}.

Object *HashSet::create(int64_t ExpectedKeys) {
  int64_t Cap = 16;
  while (Cap < 2 * ExpectedKeys)
    Cap <<= 1;
  return newArray(static_cast<uint32_t>(Cap), 0);
}

bool HashSet::insert(Object *Table, int64_t Key) {
  Local T(Table);
  // Allocate the box up front; probing never allocates, so raw pointers
  // below stay valid.
  Local Box(newRecord(0, {boxInt(Key)}));
  uint32_t Mask = arrLen(T.get()) - 1;
  uint32_t I = static_cast<uint32_t>(hash64(static_cast<uint64_t>(Key))) &
               Mask;
  for (uint32_t Probes = 0; Probes <= Mask; ++Probes, I = (I + 1) & Mask) {
    Slot Cur = arrGet(T.get(), I);
    if (Cur == 0) {
      // Publish our box: a down-pointer (or cross-pointer) CAS. The write
      // barrier pins the box before it becomes visible.
      if (arrCas(T.get(), I, 0, Box.slot()))
        return true;
      Cur = arrGet(T.get(), I); // Lost the race; re-examine.
    }
    Object *Other = Object::asPointer(Cur);
    MPL_DASSERT(Other, "table cell holds a non-pointer");
    // Reading the other task's box: barrier-free immutable field access of
    // a (pinned) entangled object.
    if (unboxInt(recGet(Other, 0)) == Key)
      return false;
  }
  MPL_UNREACHABLE("hash set is full");
}

bool HashSet::contains(Object *Table, int64_t Key) {
  uint32_t Mask = arrLen(Table) - 1;
  uint32_t I = static_cast<uint32_t>(hash64(static_cast<uint64_t>(Key))) &
               Mask;
  for (uint32_t Probes = 0; Probes <= Mask; ++Probes, I = (I + 1) & Mask) {
    Slot Cur = arrGet(Table, I);
    if (Cur == 0)
      return false;
    Object *Box = Object::asPointer(Cur);
    if (Box && unboxInt(recGet(Box, 0)) == Key)
      return true;
  }
  return false;
}

int64_t HashSet::size(Object *Table) {
  int64_t C = 0;
  for (uint32_t I = 0, E = arrLen(Table); I < E; ++I)
    C += arrGet(Table, I) != 0;
  return C;
}

int64_t dedup(Object *Keys, int64_t Grain) {
  Local LKeys(Keys);
  int64_t N = arrLen(LKeys.get());
  Local Table(HashSet::create(N));
  Local Inserted(newArray(static_cast<uint32_t>(
                              std::max<int64_t>(1, (N + Grain - 1) / Grain)),
                          boxInt(0)));
  int64_t NumBlocks = arrLen(Inserted.get());
  rt::parFor(0, NumBlocks, 1, [&](int64_t B) {
    int64_t Lo = B * Grain, Hi = std::min(N, Lo + Grain);
    int64_t C = 0;
    for (int64_t I = Lo; I < Hi; ++I) {
      int64_t Key = unboxInt(arrGet(LKeys.get(), static_cast<uint32_t>(I)));
      C += HashSet::insert(Table.get(), Key);
    }
    arrSet(Inserted.get(), static_cast<uint32_t>(B), boxInt(C));
  });
  int64_t Total = 0;
  for (int64_t B = 0; B < NumBlocks; ++B)
    Total += unboxInt(arrGet(Inserted.get(), static_cast<uint32_t>(B)));
  return Total;
}

int64_t channelPipeline(int64_t N) {
  // Shared state at the fork's depth: the stack head and a done flag.
  Local Head(newRef(0));
  Local Done(newRef(boxInt(0)));

  auto [ProducerRes, ConsumerRes] = rt::par(
      // Branch A (runs first under sequential scheduling): the producer.
      [&] {
        for (int64_t I = 0; I < N; ++I) {
          // Cons cell {val, next}; next is retried on CAS failure.
          Local Node(newMutRecord(0b10, {boxInt(I), 0}));
          while (true) {
            Slot Cur = refGet(Head.get());
            recSetMut(Node.get(), 1, Cur);
            if (refCas(Head.get(), Cur, Node.slot()))
              break;
          }
        }
        refSet(Done.get(), boxInt(1));
        return unit();
      },
      // Branch B: the consumer drains until done && empty.
      [&] {
        int64_t Sum = 0;
        while (true) {
          Slot Cur = refGet(Head.get());
          Object *Node = Object::asPointer(Cur);
          if (!Node) {
            if (unboxInt(refGet(Done.get())) == 1 &&
                !Object::asPointer(refGet(Head.get())))
              break;
            std::this_thread::yield();
            continue;
          }
          Slot Next = recGetMut(Node, 1);
          if (!refCas(Head.get(), Cur, Next))
            continue;
          Sum += unboxInt(recGetMut(Node, 0));
        }
        return boxInt(Sum);
      });
  (void)ProducerRes;
  return unboxInt(ConsumerRes);
}

int64_t exchange(int64_t N) {
  Local Board(newArray(static_cast<uint32_t>(N), 0));

  auto [A, B] = rt::par(
      // Branch A publishes boxed values.
      [&] {
        for (int64_t I = 0; I < N; ++I) {
          Local Box(newRecord(0, {boxInt(I * 3)}));
          arrSet(Board.get(), static_cast<uint32_t>(I), Box.slot());
        }
        return unit();
      },
      // Branch B consumes them (entangled reads), re-boxing into its own
      // heap and writing back (cross-pointer stores).
      [&] {
        int64_t Intact = 0;
        for (int64_t I = 0; I < N; ++I) {
          Slot V;
          while ((V = arrGet(Board.get(), static_cast<uint32_t>(I))) == 0)
            std::this_thread::yield();
          Object *Box = Object::asPointer(V);
          int64_t Val = unboxInt(recGet(Box, 0));
          if (Val == I * 3)
            ++Intact;
          Local Mine(newRecord(0, {boxInt(Val + 1)}));
          arrSet(Board.get(), static_cast<uint32_t>(I), Mine.slot());
        }
        return boxInt(Intact);
      });
  (void)A;

  // After the join all boxes are merged and unpinned; validate the board.
  int64_t Ok = 0;
  for (int64_t I = 0; I < N; ++I) {
    Object *Box = Object::asPointer(
        arrGet(Board.get(), static_cast<uint32_t>(I)));
    if (Box && unboxInt(recGet(Box, 0)) == I * 3 + 1)
      ++Ok;
  }
  int64_t Intact = unboxInt(B);
  return Intact == N ? Ok : -1;
}

} // namespace wl
} // namespace mpl
