//===- workloads/Entangled.h - Effectful (entangled) workloads -*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workloads this paper newly enables: parallel functional programs
/// whose tasks *communicate through memory effects*, creating entanglement.
/// Pre-paper MPL (Detect mode) rejects them; with entanglement management
/// they run safely and efficiently.
///
///  - dedup: parallel deduplication through a shared phase-concurrent hash
///    table (Shun & Blelloch style). Inserting tasks allocate boxed keys
///    and publish them by CAS into the shared table (down-pointer pins);
///    probing tasks read concurrent tasks' boxes (entangled reads).
///  - channel pipeline: producer/consumer over a Treiber stack of cons
///    cells — futures-with-effects style communication.
///  - exchange: two sibling tasks that concurrently publish and consume
///    boxed values through a shared board array (cross-pointer stress).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_WORKLOADS_ENTANGLED_H
#define MPL_WORKLOADS_ENTANGLED_H

#include "core/Handles.h"
#include "core/Ops.h"

#include <cstdint>

namespace mpl {
namespace wl {

/// A phase-concurrent hash set of boxed int keys living in the runtime
/// heap. Insertions may run concurrently with each other and with lookups
/// of already-inserted keys.
class HashSet {
public:
  /// Creates a set with capacity for about \p ExpectedKeys.
  static Object *create(int64_t ExpectedKeys);

  /// Inserts \p Key; returns true when the key was not present. Allocates
  /// a boxed key record and publishes it into the shared table.
  static bool insert(Object *Table, int64_t Key);

  /// True when \p Key is in the set.
  static bool contains(Object *Table, int64_t Key);

  /// Number of occupied cells (sequential scan).
  static int64_t size(Object *Table);
};

/// Deduplicates \p Keys (an Array of tagged ints) through a shared HashSet
/// with a parallel loop; returns the number of distinct keys.
int64_t dedup(Object *Keys, int64_t Grain = 512);

/// Producer/consumer pipeline: the producer pushes \p N boxed items onto a
/// shared Treiber stack; the consumer concurrently drains it. Returns the
/// sum of consumed values (== N*(N-1)/2).
int64_t channelPipeline(int64_t N);

/// Two sibling tasks exchange \p N boxed values through a shared board;
/// returns the number of values whose round-trip was intact.
int64_t exchange(int64_t N);

} // namespace wl
} // namespace mpl

#endif // MPL_WORKLOADS_ENTANGLED_H
