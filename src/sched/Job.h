//===- sched/Job.h - Stealable fork-join jobs ------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MPL_SCHED_JOB_H
#define MPL_SCHED_JOB_H

#include <atomic>
#include <cstdint>

namespace mpl {

/// A type-erased unit of stealable work. Jobs are stack-allocated in the
/// fork2join frame that creates them, so their lifetime covers execution.
struct Job {
  /// Runs the job body. Set by fork2join to a thunk trampoline.
  void (*Run)(Job *J) = nullptr;

  /// Closure environment for Run.
  void *Env = nullptr;

  /// Span (critical path) in nanoseconds measured by whoever executed the
  /// job; written before Done is released.
  double SpanOutNs = 0;

  /// Span-ledger identity, stamped by forkImpl when the ledger is armed
  /// (obs/Span.h): this job's task id, its parent's, and the packed pml
  /// location of the spawning `par`. All 0 when spans are off.
  uint64_t SpanId = 0;
  uint64_t SpanParent = 0;
  uint32_t SpanLoc = 0;

  /// Set (release) once the job body has finished.
  std::atomic<uint32_t> Done{0};
};

} // namespace mpl

#endif // MPL_SCHED_JOB_H
