//===- sched/Deque.h - Chase-Lev work-stealing deque -----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Chase-Lev lock-free work-stealing deque (Chase & Lev, SPAA
/// 2005), with the C11-style memory orderings of Lê et al. (PPoPP 2013).
/// The owner pushes and pops at the bottom; thieves steal from the top.
///
/// Capacity is fixed: entries outstanding at once are bounded by the fork
/// depth of the computation (each fork2join holds at most one job), which is
/// logarithmic for all our workloads.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SCHED_DEQUE_H
#define MPL_SCHED_DEQUE_H

#include "support/Assert.h"

#include <atomic>
#include <cstdint>

namespace mpl {

struct Job;

/// Fixed-capacity Chase-Lev deque of Job pointers.
class Deque {
public:
  static constexpr int64_t Capacity = 1 << 13;

  /// Owner-only: pushes a job at the bottom.
  void push(Job *J) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t T = Top.load(std::memory_order_acquire);
    MPL_CHECK(B - T < Capacity, "work-stealing deque overflow");
    Buffer[B & Mask].store(J, std::memory_order_relaxed);
    // Release store (not fence + relaxed, as in the x86-tuned original):
    // publishing Bottom must carry the job body the owner just wrote, and
    // the release store is the form of that edge ThreadSanitizer models.
    Bottom.store(B + 1, std::memory_order_release);
  }

  /// Owner-only: pops the most recently pushed job, or returns null when the
  /// deque is empty or the last job was stolen.
  Job *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t T = Top.load(std::memory_order_relaxed);
    if (T > B) {
      // Deque was empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Job *J = Buffer[B & Mask].load(std::memory_order_relaxed);
    if (T != B)
      return J; // More than one job: no race with thieves.
    // Exactly one job left: race against thieves for it.
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      J = nullptr; // Lost the race.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return J;
  }

  /// Thief: steals the oldest job, or returns null on empty/conflict.
  Job *steal() {
    int64_t T = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (T >= B)
      return nullptr;
    Job *J = Buffer[T & Mask].load(std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr; // Another thief (or the owner) won.
    return J;
  }

  /// Approximate emptiness check (racy; used only as a steal heuristic).
  bool looksEmpty() const {
    return Top.load(std::memory_order_relaxed) >=
           Bottom.load(std::memory_order_relaxed);
  }

  /// Approximate number of queued jobs (racy; metrics sampling only).
  int64_t size() const {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t T = Top.load(std::memory_order_relaxed);
    return B > T ? B - T : 0;
  }

private:
  static constexpr int64_t Mask = Capacity - 1;

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Job *> Buffer[Capacity] = {};
};

} // namespace mpl

#endif // MPL_SCHED_DEQUE_H
