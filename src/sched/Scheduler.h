//===- sched/Scheduler.h - Work-stealing fork-join scheduler ---*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing fork-join scheduler in the style of MPL's (and Cilk's):
/// child-stealing with helping joins. It also embeds the *work-span
/// profiler* used to reproduce the paper's scalability results on a machine
/// with fewer cores than the authors' 72-core server: every strand of user
/// code is timed, total work W and critical-path span S are accumulated
/// compositionally at forks/joins, and T_P is then reported through the
/// greedy-scheduler (Brent) bound T_P = W/P + S, which is the model MPL's
/// scheduler provably achieves up to constant factors.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SCHED_SCHEDULER_H
#define MPL_SCHED_SCHEDULER_H

#include "sched/Deque.h"
#include "sched/Job.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace mpl {

/// Per-worker scheduler state. Worker 0 is the main thread; workers 1..P-1
/// own std::threads that run the steal loop.
struct Worker {
  int Id = 0;
  Deque Dq;
  Rng StealRng;

  // Work-span profiler state.
  double SpanAccNs = 0;     ///< Span of the current strand sequence.
  int64_t StrandStartNs = 0; ///< Start of the running strand, 0 if paused.
  double WorkAccNs = 0;     ///< Total user-code nanoseconds on this worker.

  /// Opaque per-worker slot for the runtime layer (current heap etc.).
  void *RtCtx = nullptr;
};

/// Aggregate work-span measurement for one top-level computation.
struct WorkSpan {
  double WorkSec = 0;
  double SpanSec = 0;

  /// Brent bound: predicted wall-clock on P processors.
  double predictedTime(int P) const {
    return WorkSec / static_cast<double>(P) + SpanSec;
  }
};

/// The process-wide scheduler. Create one (typically via rt::Runtime), call
/// run() from the main thread, and destroy it to join the worker threads.
class Scheduler {
public:
  struct Config {
    int NumWorkers = 1;
    bool Profile = true;
  };

  explicit Scheduler(const Config &Cfg);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// The scheduler the current thread belongs to (null outside run()).
  static Scheduler *current();

  /// The worker bound to the current thread (null outside run()).
  static Worker *currentWorker();

  int numWorkers() const { return static_cast<int>(Workers.size()); }
  bool profiling() const { return ProfileEnabled; }

  /// Executes \p Root on worker 0 with all workers active; returns the
  /// work-span measurement of the whole computation.
  template <typename Fn> WorkSpan run(Fn &&Root) {
    return runImpl(
        [](void *Env) { (*static_cast<Fn *>(Env))(); },
        static_cast<void *>(&Root));
  }

  /// Fork-join: runs A and B, potentially in parallel; returns when both
  /// are done. Must be called from within run().
  template <typename FnA, typename FnB> void fork2join(FnA &&A, FnB &&B) {
    Job JB;
    JB.Run = [](Job *J) { (*static_cast<FnB *>(J->Env))(); };
    JB.Env = static_cast<void *>(&B);
    forkImpl(
        [](void *Env) { (*static_cast<FnA *>(Env))(); },
        static_cast<void *>(&A), JB);
  }

  /// Divide-and-conquer parallel loop over [Lo, Hi) with the given grain.
  template <typename Body>
  void parallelFor(int64_t Lo, int64_t Hi, int64_t Grain, const Body &B) {
    if (Hi - Lo <= Grain) {
      for (int64_t I = Lo; I < Hi; ++I)
        B(I);
      return;
    }
    int64_t Mid = Lo + (Hi - Lo) / 2;
    fork2join([&] { parallelFor(Lo, Mid, Grain, B); },
              [&] { parallelFor(Mid, Hi, Grain, B); });
  }

  /// Work-span totals of the last completed run().
  WorkSpan lastRun() const { return Last; }

  /// Installs a poll run at every strand quantum boundary (strandPause),
  /// i.e. each time user code yields the worker at a fork or join. The
  /// runtime layer uses it to latch request-deadline expiry; it runs on
  /// worker threads mid-schedule, so it must never throw or block. Null
  /// uninstalls.
  static void setStrandPollHook(void (*Hook)());

private:
  using Thunk = void (*)(void *);

  WorkSpan runImpl(Thunk Root, void *Env);
  void forkImpl(Thunk A, void *EnvA, Job &JB);

  void stealLoop(Worker *W);
  bool tryStealAndRun(Worker *W);
  void executeJob(Worker *W, Job *J);

  void strandPause(Worker *W);
  void strandResume(Worker *W);

  std::vector<Worker *> Workers;
  std::vector<std::thread> Threads;
  std::vector<int> MetricsGaugeIds; ///< Per-worker deque-depth gauges.
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Active{false};
  bool ProfileEnabled;
  WorkSpan Last;
};

} // namespace mpl

#endif // MPL_SCHED_SCHEDULER_H
