//===- sched/Scheduler.cpp - Work-stealing fork-join scheduler ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "chaos/ChaosSchedule.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/Histogram.h"
#include "support/Stats.h"

#include <algorithm>
#include <string>

using namespace mpl;

namespace {
thread_local Scheduler *CurScheduler = nullptr;
thread_local Worker *CurWorker = nullptr;

Stat NumSteals("sched.steals");
Stat NumForks("sched.forks");

/// Latency of *successful* steal attempts: entering tryStealAndRun to
/// acquiring a job (failed probe rounds would swamp the distribution).
Histogram StealLatencyNs("sched.steal.latency.ns");

/// Strand-quantum poll installed by the runtime layer (deadline latching).
/// Read on every strandPause; the write happens at Runtime setup/teardown
/// while workers are quiescent, but an atomic keeps TSan happy.
std::atomic<void (*)()> StrandPollHook{nullptr};
} // namespace

Scheduler *Scheduler::current() { return CurScheduler; }
Worker *Scheduler::currentWorker() { return CurWorker; }

Scheduler::Scheduler(const Config &Cfg) : ProfileEnabled(Cfg.Profile) {
  // The span ledger rides the strand clock, so an armed ledger forces
  // profiling on even when the caller turned it off (e.g. the REPL).
  // initFromEnv is idempotent; calling it here means MPL_SPANS is honored
  // even for the first Runtime (whose Scheduler is constructed before the
  // Runtime constructor body runs).
  obs::initFromEnv();
  if (obs::spansEnabled())
    ProfileEnabled = true;
  int N = std::max(1, Cfg.NumWorkers);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I) {
    Worker *W = new Worker();
    W->Id = I;
    W->StealRng = Rng(0x9e3779b9u + static_cast<uint64_t>(I) * 77);
    Workers.push_back(W);
  }
  // Deque-depth gauges for the metrics sampler (one per worker).
  for (Worker *W : Workers)
    MetricsGaugeIds.push_back(obs::MetricsSampler::get().registerGauge(
        "sched.deque.w" + std::to_string(W->Id),
        [W] { return W->Dq.size(); }));
  // Worker 0 is the caller's thread; start threads for the rest.
  for (int I = 1; I < N; ++I)
    Threads.emplace_back([this, I] {
      CurScheduler = this;
      CurWorker = Workers[I];
      obs::labelCurrentThread(I);
      stealLoop(Workers[I]);
      CurWorker = nullptr;
      CurScheduler = nullptr;
    });
}

Scheduler::~Scheduler() {
  // Gauges read the workers' deques; stop sampling them before teardown.
  for (int Id : MetricsGaugeIds)
    obs::MetricsSampler::get().unregisterGauge(Id);
  ShuttingDown.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (Worker *W : Workers)
    delete W;
}

void Scheduler::setStrandPollHook(void (*Hook)()) {
  StrandPollHook.store(Hook, std::memory_order_release);
}

void Scheduler::strandPause(Worker *W) {
  // The quantum boundary is the deadline poll point: it runs whether or not
  // the profiler is on, so expired requests are latched even in -noprofile
  // runs. The hook never throws (flag-latch only).
  if (void (*Hook)() = StrandPollHook.load(std::memory_order_acquire))
    Hook();
  if (!ProfileEnabled || W->StrandStartNs == 0)
    return;
  obs::emit(obs::Ev::StrandEnd);
  int64_t ElapsedNs = nowNs() - W->StrandStartNs;
  double Elapsed = static_cast<double>(ElapsedNs);
  W->StrandStartNs = 0;
  W->SpanAccNs += Elapsed;
  W->WorkAccNs += Elapsed;
  // The ledger's per-task self time is built from the same quanta, so its
  // critical path and the scheduler's S agree by construction.
  obs::spanAddSelf(ElapsedNs);
}

void Scheduler::strandResume(Worker *W) {
  if (!ProfileEnabled)
    return;
  obs::emit(obs::Ev::StrandBegin);
  W->StrandStartNs = nowNs();
}

WorkSpan Scheduler::runImpl(Thunk Root, void *Env) {
  MPL_CHECK(CurWorker == nullptr, "nested Scheduler::run is not supported");
  Worker *W = Workers[0];
  CurScheduler = this;
  CurWorker = W;
  obs::labelCurrentThread(0);
  for (Worker *Each : Workers) {
    Each->SpanAccNs = 0;
    Each->WorkAccNs = 0;
    Each->StrandStartNs = 0;
  }
  // Arm the span ledger for this run. The check happens per run (not just
  // at construction) so tests and benches that enable the ledger after
  // building the Runtime still get a DAG; ProfileEnabled stays on for the
  // scheduler's lifetime once forced (it defaults on anyway).
  bool SpansOn = obs::spansEnabled();
  if (SpansOn) {
    ProfileEnabled = true;
    obs::SpanLedger::get().runBegin();
  }
  Active.store(true, std::memory_order_release);

  obs::SpanTask RootTask;
  obs::SpanTask *SavedTask = nullptr;
  if (SpansOn)
    SavedTask = obs::spanEnterTask(&RootTask, obs::spanAllocIds(1),
                                   ~uint64_t(0), /*Loc=*/0);
  strandResume(W);
  Root(Env);
  strandPause(W);
  if (SpansOn)
    obs::spanExitTask(&RootTask, SavedTask);

  Active.store(false, std::memory_order_release);
  CurWorker = nullptr;
  CurScheduler = nullptr;

  Last.SpanSec = W->SpanAccNs * 1e-9;
  double TotalWork = 0;
  for (Worker *Each : Workers)
    TotalWork += Each->WorkAccNs;
  Last.WorkSec = TotalWork * 1e-9;
  if (SpansOn)
    obs::SpanLedger::get().runEnd(Last.WorkSec, Last.SpanSec);
  return Last;
}

void Scheduler::executeJob(Worker *W, Job *J) {
  // Strand clock must be paused on entry. Spans of distinct jobs must not
  // blend, so the accumulator is saved around the body; the ledger's task
  // state nests the same way (helping joins run jobs inside jobs).
  double Saved = W->SpanAccNs;
  W->SpanAccNs = 0;
  obs::SpanTask Task;
  obs::SpanTask *SavedTask = nullptr;
  bool SpansOn = J->SpanId != 0 && obs::spansEnabled();
  if (SpansOn) {
    SavedTask = obs::spanEnterTask(&Task, J->SpanId, J->SpanParent,
                                   J->SpanLoc);
    obs::emit(obs::Ev::FlowIn, J->SpanId);
  }
  strandResume(W);
  J->Run(J);
  strandPause(W);
  if (SpansOn)
    obs::spanExitTask(&Task, SavedTask);
  J->SpanOutNs = W->SpanAccNs;
  W->SpanAccNs = Saved;
  J->Done.store(1, std::memory_order_release);
}

void Scheduler::forkImpl(Thunk A, void *EnvA, Job &JB) {
  Worker *W = CurWorker;
  MPL_CHECK(W != nullptr, "fork2join called outside Scheduler::run");
  NumForks.inc();

  strandPause(W);
  double SpanBefore = W->SpanAccNs;
  W->SpanAccNs = 0;

  // Span ledger: allocate the fork's task-id pair (A = n, B = n+1) before
  // JB becomes stealable, so a thief records the right identity. Both
  // children inherit the pml location of the spawning `par` (the VM's
  // current instruction on this thread).
  uint64_t IdA = 0;
  bool SpansOn = obs::spansEnabled();
  if (SpansOn) {
    IdA = obs::spanAllocIds(2);
    JB.SpanId = IdA + 1;
    JB.SpanParent = obs::spanCurrentId();
    JB.SpanLoc = obs::spanCurrentLoc();
  }

  W->Dq.push(&JB);
  obs::emit(obs::Ev::Fork);
  if (SpansOn) {
    obs::emit(obs::Ev::FlowOut, IdA);
    obs::emit(obs::Ev::FlowOut, IdA + 1);
  }
  // Schedule fuzzing: widen the window in which JB is stealable.
  chaos::preemptPoint(chaos::Point::Fork);

  // Run branch A inline (work-first).
  obs::SpanTask TaskA;
  obs::SpanTask *SavedTask = nullptr;
  if (SpansOn) {
    SavedTask = obs::spanEnterTask(&TaskA, IdA, JB.SpanParent, JB.SpanLoc);
    obs::emit(obs::Ev::FlowIn, IdA);
  }
  strandResume(W);
  A(EnvA);
  strandPause(W);
  if (SpansOn)
    obs::spanExitTask(&TaskA, SavedTask);
  double SpanA = W->SpanAccNs;

  double SpanB;
  Job *Popped = W->Dq.pop();
  if (Popped == &JB) {
    // Not stolen: run B inline.
    executeJob(W, &JB);
    SpanB = JB.SpanOutNs;
  } else {
    MPL_CHECK(Popped == nullptr,
              "fork2join: unbalanced deque (nested job leaked)");
    // Stolen: help until the thief finishes.
    obs::emit(obs::Ev::JoinWaitBegin);
    while (!JB.Done.load(std::memory_order_acquire)) {
      // Schedule fuzzing: delayed joins hold the parent here so the thief
      // (and its heap) outlive the window the join rule expects.
      for (uint32_t S = chaos::delayedJoinSpins(); S > 0; --S)
        std::this_thread::yield();
      chaos::preemptPoint(chaos::Point::JoinWait);
      if (!tryStealAndRun(W))
        std::this_thread::yield();
    }
    obs::emit(obs::Ev::JoinWaitEnd);
    SpanB = JB.SpanOutNs;
  }

  W->SpanAccNs = SpanBefore + std::max(SpanA, SpanB);
  strandResume(W);
}

bool Scheduler::tryStealAndRun(Worker *W) {
  int N = numWorkers();
  if (N <= 1)
    return false;
  int64_t AttemptStartNs = nowNs();
  // A few random probes; returning false lets the caller back off.
  for (int Attempt = 0; Attempt < 2 * N; ++Attempt) {
    // Schedule fuzzing: victim choices come from the seed when forced.
    int Victim = chaos::pickVictim(W->Id, N);
    if (Victim < 0)
      Victim =
          static_cast<int>(W->StealRng.nextBounded(static_cast<uint64_t>(N)));
    if (Victim == W->Id)
      continue;
    Worker *V = Workers[Victim];
    if (V->Dq.looksEmpty())
      continue;
    if (Job *J = V->Dq.steal()) {
      NumSteals.inc();
      StealLatencyNs.record(nowNs() - AttemptStartNs);
      obs::emit(obs::Ev::Steal, static_cast<uint64_t>(Victim));
      executeJob(W, J);
      return true;
    }
  }
  return false;
}

void Scheduler::stealLoop(Worker *W) {
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (!Active.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      continue;
    }
    chaos::preemptPoint(chaos::Point::StealLoop);
    if (!tryStealAndRun(W) && !chaos::stealStorm())
      std::this_thread::yield();
  }
}
