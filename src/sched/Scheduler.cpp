//===- sched/Scheduler.cpp - Work-stealing fork-join scheduler ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "chaos/ChaosSchedule.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/Histogram.h"
#include "support/Stats.h"

#include <algorithm>
#include <string>

using namespace mpl;

namespace {
thread_local Scheduler *CurScheduler = nullptr;
thread_local Worker *CurWorker = nullptr;

Stat NumSteals("sched.steals");
Stat NumForks("sched.forks");

/// Latency of *successful* steal attempts: entering tryStealAndRun to
/// acquiring a job (failed probe rounds would swamp the distribution).
Histogram StealLatencyNs("sched.steal.latency.ns");
} // namespace

Scheduler *Scheduler::current() { return CurScheduler; }
Worker *Scheduler::currentWorker() { return CurWorker; }

Scheduler::Scheduler(const Config &Cfg) : ProfileEnabled(Cfg.Profile) {
  int N = std::max(1, Cfg.NumWorkers);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I) {
    Worker *W = new Worker();
    W->Id = I;
    W->StealRng = Rng(0x9e3779b9u + static_cast<uint64_t>(I) * 77);
    Workers.push_back(W);
  }
  // Deque-depth gauges for the metrics sampler (one per worker).
  for (Worker *W : Workers)
    MetricsGaugeIds.push_back(obs::MetricsSampler::get().registerGauge(
        "sched.deque.w" + std::to_string(W->Id),
        [W] { return W->Dq.size(); }));
  // Worker 0 is the caller's thread; start threads for the rest.
  for (int I = 1; I < N; ++I)
    Threads.emplace_back([this, I] {
      CurScheduler = this;
      CurWorker = Workers[I];
      obs::labelCurrentThread(I);
      stealLoop(Workers[I]);
      CurWorker = nullptr;
      CurScheduler = nullptr;
    });
}

Scheduler::~Scheduler() {
  // Gauges read the workers' deques; stop sampling them before teardown.
  for (int Id : MetricsGaugeIds)
    obs::MetricsSampler::get().unregisterGauge(Id);
  ShuttingDown.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (Worker *W : Workers)
    delete W;
}

void Scheduler::strandPause(Worker *W) {
  if (!ProfileEnabled || W->StrandStartNs == 0)
    return;
  obs::emit(obs::Ev::StrandEnd);
  double Elapsed = static_cast<double>(nowNs() - W->StrandStartNs);
  W->StrandStartNs = 0;
  W->SpanAccNs += Elapsed;
  W->WorkAccNs += Elapsed;
}

void Scheduler::strandResume(Worker *W) {
  if (!ProfileEnabled)
    return;
  obs::emit(obs::Ev::StrandBegin);
  W->StrandStartNs = nowNs();
}

WorkSpan Scheduler::runImpl(Thunk Root, void *Env) {
  MPL_CHECK(CurWorker == nullptr, "nested Scheduler::run is not supported");
  Worker *W = Workers[0];
  CurScheduler = this;
  CurWorker = W;
  obs::labelCurrentThread(0);
  for (Worker *Each : Workers) {
    Each->SpanAccNs = 0;
    Each->WorkAccNs = 0;
    Each->StrandStartNs = 0;
  }
  Active.store(true, std::memory_order_release);

  strandResume(W);
  Root(Env);
  strandPause(W);

  Active.store(false, std::memory_order_release);
  CurWorker = nullptr;
  CurScheduler = nullptr;

  Last.SpanSec = W->SpanAccNs * 1e-9;
  double TotalWork = 0;
  for (Worker *Each : Workers)
    TotalWork += Each->WorkAccNs;
  Last.WorkSec = TotalWork * 1e-9;
  return Last;
}

void Scheduler::executeJob(Worker *W, Job *J) {
  // Strand clock must be paused on entry. Spans of distinct jobs must not
  // blend, so the accumulator is saved around the body.
  double Saved = W->SpanAccNs;
  W->SpanAccNs = 0;
  strandResume(W);
  J->Run(J);
  strandPause(W);
  J->SpanOutNs = W->SpanAccNs;
  W->SpanAccNs = Saved;
  J->Done.store(1, std::memory_order_release);
}

void Scheduler::forkImpl(Thunk A, void *EnvA, Job &JB) {
  Worker *W = CurWorker;
  MPL_CHECK(W != nullptr, "fork2join called outside Scheduler::run");
  NumForks.inc();

  strandPause(W);
  double SpanBefore = W->SpanAccNs;
  W->SpanAccNs = 0;

  W->Dq.push(&JB);
  obs::emit(obs::Ev::Fork);
  // Schedule fuzzing: widen the window in which JB is stealable.
  chaos::preemptPoint(chaos::Point::Fork);

  // Run branch A inline (work-first).
  strandResume(W);
  A(EnvA);
  strandPause(W);
  double SpanA = W->SpanAccNs;

  double SpanB;
  Job *Popped = W->Dq.pop();
  if (Popped == &JB) {
    // Not stolen: run B inline.
    executeJob(W, &JB);
    SpanB = JB.SpanOutNs;
  } else {
    MPL_CHECK(Popped == nullptr,
              "fork2join: unbalanced deque (nested job leaked)");
    // Stolen: help until the thief finishes.
    obs::emit(obs::Ev::JoinWaitBegin);
    while (!JB.Done.load(std::memory_order_acquire)) {
      // Schedule fuzzing: delayed joins hold the parent here so the thief
      // (and its heap) outlive the window the join rule expects.
      for (uint32_t S = chaos::delayedJoinSpins(); S > 0; --S)
        std::this_thread::yield();
      chaos::preemptPoint(chaos::Point::JoinWait);
      if (!tryStealAndRun(W))
        std::this_thread::yield();
    }
    obs::emit(obs::Ev::JoinWaitEnd);
    SpanB = JB.SpanOutNs;
  }

  W->SpanAccNs = SpanBefore + std::max(SpanA, SpanB);
  strandResume(W);
}

bool Scheduler::tryStealAndRun(Worker *W) {
  int N = numWorkers();
  if (N <= 1)
    return false;
  int64_t AttemptStartNs = nowNs();
  // A few random probes; returning false lets the caller back off.
  for (int Attempt = 0; Attempt < 2 * N; ++Attempt) {
    // Schedule fuzzing: victim choices come from the seed when forced.
    int Victim = chaos::pickVictim(W->Id, N);
    if (Victim < 0)
      Victim =
          static_cast<int>(W->StealRng.nextBounded(static_cast<uint64_t>(N)));
    if (Victim == W->Id)
      continue;
    Worker *V = Workers[Victim];
    if (V->Dq.looksEmpty())
      continue;
    if (Job *J = V->Dq.steal()) {
      NumSteals.inc();
      StealLatencyNs.record(nowNs() - AttemptStartNs);
      obs::emit(obs::Ev::Steal, static_cast<uint64_t>(Victim));
      executeJob(W, J);
      return true;
    }
  }
  return false;
}

void Scheduler::stealLoop(Worker *W) {
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (!Active.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      continue;
    }
    chaos::preemptPoint(chaos::Point::StealLoop);
    if (!tryStealAndRun(W) && !chaos::stealStorm())
      std::this_thread::yield();
  }
}
