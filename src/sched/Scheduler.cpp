//===- sched/Scheduler.cpp - Work-stealing fork-join scheduler ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "chaos/ChaosSchedule.h"
#include "support/Assert.h"
#include "support/Stats.h"

#include <algorithm>

using namespace mpl;

namespace {
thread_local Scheduler *CurScheduler = nullptr;
thread_local Worker *CurWorker = nullptr;

Stat NumSteals("sched.steals");
Stat NumForks("sched.forks");
} // namespace

Scheduler *Scheduler::current() { return CurScheduler; }
Worker *Scheduler::currentWorker() { return CurWorker; }

Scheduler::Scheduler(const Config &Cfg) : ProfileEnabled(Cfg.Profile) {
  int N = std::max(1, Cfg.NumWorkers);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I) {
    Worker *W = new Worker();
    W->Id = I;
    W->StealRng = Rng(0x9e3779b9u + static_cast<uint64_t>(I) * 77);
    Workers.push_back(W);
  }
  // Worker 0 is the caller's thread; start threads for the rest.
  for (int I = 1; I < N; ++I)
    Threads.emplace_back([this, I] {
      CurScheduler = this;
      CurWorker = Workers[I];
      stealLoop(Workers[I]);
      CurWorker = nullptr;
      CurScheduler = nullptr;
    });
}

Scheduler::~Scheduler() {
  ShuttingDown.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (Worker *W : Workers)
    delete W;
}

void Scheduler::strandPause(Worker *W) {
  if (!ProfileEnabled || W->StrandStartNs == 0)
    return;
  double Elapsed = static_cast<double>(nowNs() - W->StrandStartNs);
  W->StrandStartNs = 0;
  W->SpanAccNs += Elapsed;
  W->WorkAccNs += Elapsed;
}

void Scheduler::strandResume(Worker *W) {
  if (!ProfileEnabled)
    return;
  W->StrandStartNs = nowNs();
}

WorkSpan Scheduler::runImpl(Thunk Root, void *Env) {
  MPL_CHECK(CurWorker == nullptr, "nested Scheduler::run is not supported");
  Worker *W = Workers[0];
  CurScheduler = this;
  CurWorker = W;
  for (Worker *Each : Workers) {
    Each->SpanAccNs = 0;
    Each->WorkAccNs = 0;
    Each->StrandStartNs = 0;
  }
  Active.store(true, std::memory_order_release);

  strandResume(W);
  Root(Env);
  strandPause(W);

  Active.store(false, std::memory_order_release);
  CurWorker = nullptr;
  CurScheduler = nullptr;

  Last.SpanSec = W->SpanAccNs * 1e-9;
  double TotalWork = 0;
  for (Worker *Each : Workers)
    TotalWork += Each->WorkAccNs;
  Last.WorkSec = TotalWork * 1e-9;
  return Last;
}

void Scheduler::executeJob(Worker *W, Job *J) {
  // Strand clock must be paused on entry. Spans of distinct jobs must not
  // blend, so the accumulator is saved around the body.
  double Saved = W->SpanAccNs;
  W->SpanAccNs = 0;
  strandResume(W);
  J->Run(J);
  strandPause(W);
  J->SpanOutNs = W->SpanAccNs;
  W->SpanAccNs = Saved;
  J->Done.store(1, std::memory_order_release);
}

void Scheduler::forkImpl(Thunk A, void *EnvA, Job &JB) {
  Worker *W = CurWorker;
  MPL_CHECK(W != nullptr, "fork2join called outside Scheduler::run");
  NumForks.inc();

  strandPause(W);
  double SpanBefore = W->SpanAccNs;
  W->SpanAccNs = 0;

  W->Dq.push(&JB);
  // Schedule fuzzing: widen the window in which JB is stealable.
  chaos::preemptPoint(chaos::Point::Fork);

  // Run branch A inline (work-first).
  strandResume(W);
  A(EnvA);
  strandPause(W);
  double SpanA = W->SpanAccNs;

  double SpanB;
  Job *Popped = W->Dq.pop();
  if (Popped == &JB) {
    // Not stolen: run B inline.
    executeJob(W, &JB);
    SpanB = JB.SpanOutNs;
  } else {
    MPL_CHECK(Popped == nullptr,
              "fork2join: unbalanced deque (nested job leaked)");
    // Stolen: help until the thief finishes.
    while (!JB.Done.load(std::memory_order_acquire)) {
      // Schedule fuzzing: delayed joins hold the parent here so the thief
      // (and its heap) outlive the window the join rule expects.
      for (uint32_t S = chaos::delayedJoinSpins(); S > 0; --S)
        std::this_thread::yield();
      chaos::preemptPoint(chaos::Point::JoinWait);
      if (!tryStealAndRun(W))
        std::this_thread::yield();
    }
    SpanB = JB.SpanOutNs;
  }

  W->SpanAccNs = SpanBefore + std::max(SpanA, SpanB);
  strandResume(W);
}

bool Scheduler::tryStealAndRun(Worker *W) {
  int N = numWorkers();
  if (N <= 1)
    return false;
  // A few random probes; returning false lets the caller back off.
  for (int Attempt = 0; Attempt < 2 * N; ++Attempt) {
    // Schedule fuzzing: victim choices come from the seed when forced.
    int Victim = chaos::pickVictim(W->Id, N);
    if (Victim < 0)
      Victim =
          static_cast<int>(W->StealRng.nextBounded(static_cast<uint64_t>(N)));
    if (Victim == W->Id)
      continue;
    Worker *V = Workers[Victim];
    if (V->Dq.looksEmpty())
      continue;
    if (Job *J = V->Dq.steal()) {
      NumSteals.inc();
      executeJob(W, J);
      return true;
    }
  }
  return false;
}

void Scheduler::stealLoop(Worker *W) {
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    if (!Active.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      continue;
    }
    chaos::preemptPoint(chaos::Point::StealLoop);
    if (!tryStealAndRun(W) && !chaos::stealStorm())
      std::this_thread::yield();
  }
}
