//===- gc/ShadowStack.h - Explicit GC root stacks --------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++ has no precise stack maps, so the runtime keeps explicit per-worker
/// root stacks. Handles (rt::Local) push one slot; the PML virtual machine
/// registers whole value-stack ranges. Slots hold tagged values: anything
/// that does not look like an aligned pointer is ignored by the collector.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_GC_SHADOWSTACK_H
#define MPL_GC_SHADOWSTACK_H

#include "mm/Object.h"
#include "support/Assert.h"

#include <cstddef>
#include <vector>

namespace mpl {

/// A per-worker stack of GC root slots and root ranges.
class ShadowStack {
public:
  /// Registers a single rooted slot. Slots must be popped in LIFO order.
  void pushSlot(Slot *S) { Slots.push_back(S); }

  void popSlot(Slot *S) {
    MPL_DASSERT(!Slots.empty() && Slots.back() == S,
                "shadow stack pop out of order");
    Slots.pop_back();
  }

  /// Registers a contiguous range of rooted slots (e.g. a VM stack). Both
  /// the base and the length are re-read through the given locations at
  /// collection time, so the range may grow, shrink, and even reallocate
  /// while registered.
  void pushRange(Slot *const *BasePtr, const size_t *Len) {
    Ranges.push_back({BasePtr, Len});
  }

  void popRange(Slot *const *BasePtr) {
    MPL_DASSERT(!Ranges.empty() && Ranges.back().BasePtr == BasePtr,
                "shadow stack range pop out of order");
    Ranges.pop_back();
  }

  /// Invokes \p Fn on every rooted slot; Fn may rewrite the slot.
  template <typename Fn> void forEachRoot(Fn &&F) {
    for (Slot *S : Slots)
      F(S);
    for (const Range &R : Ranges) {
      Slot *Base = *R.BasePtr;
      for (size_t I = 0, E = *R.Len; I < E; ++I)
        F(Base + I);
    }
  }

  size_t size() const { return Slots.size(); }

private:
  struct Range {
    Slot *const *BasePtr;
    const size_t *Len;
  };

  std::vector<Slot *> Slots;
  std::vector<Range> Ranges;
};

} // namespace mpl

#endif // MPL_GC_SHADOWSTACK_H
