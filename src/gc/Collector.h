//===- gc/Collector.h - Local copying collection ---------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local (per-task) collector. A task collects its *private chain*: the
/// maximal suffix of heaps, from its current leaf up, that have no active
/// forks — no concurrent task can allocate into or (except through
/// entanglement) reach those heaps, so they can be evacuated without any
/// global synchronization. This is the hierarchical-heap performance model
/// that the paper preserves in the presence of effects.
///
/// Entanglement changes the picture in exactly one way: *pinned* objects
/// (entanglement candidates, pinned by the barriers in core/Barriers.h
/// before they ever become visible to a concurrent task) and everything
/// reachable from them are kept **in place**. A concurrent reader may
/// traverse a pinned object's fields without barriers (immutable fields),
/// so the whole pinned closure must neither move nor have its slots
/// rewritten — which the copy phase guarantees because a pinned closure can
/// only point to other in-place or out-of-chain objects. The retained
/// bytes of pinned closures are precisely the paper's space cost of
/// entanglement, and are reported as gc.inplace.bytes.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_GC_COLLECTOR_H
#define MPL_GC_COLLECTOR_H

#include "gc/ShadowStack.h"
#include "hh/Heap.h"

#include <cstdint>
#include <vector>

namespace mpl {

/// Result of one local collection.
struct GcOutcome {
  int64_t HeapsCollected = 0;
  int64_t BytesCopied = 0;      ///< Live, moved to to-space.
  int64_t BytesInPlace = 0;     ///< Pinned closures kept in place.
  int64_t BytesReclaimed = 0;   ///< Chunk bytes returned to the pool.
  int64_t ObjectsCopied = 0;
  int64_t ObjectsInPlace = 0;
  int64_t PauseNs = 0;

  int64_t liveBytes() const { return BytesCopied + BytesInPlace; }
};

/// Collects private heap chains. Stateless apart from statistics; one
/// instance per runtime.
class Collector {
public:
  /// Collects the private chain whose leaf is \p Leaf, using \p Roots as
  /// the mutator root set. Must be called by the task owning \p Leaf, at a
  /// safe point (all live references rooted).
  GcOutcome collectChain(Heap *Leaf, ShadowStack &Roots);

  /// Traces one slot against the currently collected chain; exposed for
  /// tests via collectChain only.
private:
  struct ChainState;

  static void markInPlaceClosure(ChainState &CS);
  static Slot traceSlot(ChainState &CS, Slot V);
  static Object *copyObject(ChainState &CS, Object *O);
};

} // namespace mpl

#endif // MPL_GC_COLLECTOR_H
