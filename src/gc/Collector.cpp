//===- gc/Collector.cpp - Local copying collection ------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "chaos/ChaosSchedule.h"
#include "mm/MemoryGovernor.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Histogram.h"
#include "support/Stats.h"
#include "support/Timer.h"

using namespace mpl;

namespace {
Stat NumCollections("gc.collections");
Stat TotalBytesCopied("gc.bytes.copied");
Stat TotalBytesInPlace("gc.bytes.inplace");
Stat TotalBytesReclaimed("gc.bytes.reclaimed");
Stat TotalPauseNs("gc.pause.ns");
Stat MaxPauseNs("gc.pause.max.ns");
Histogram GcPauseHist("gc.pause.hist.ns");
} // namespace

/// Per-collection working state.
struct Collector::ChainState {
  std::vector<Heap *> Chain;          ///< Leaf-to-top, all InCollection.
  std::vector<Chunk *> OldChunks;     ///< From-space chunks, all heaps.
  std::vector<Object *> InPlace;      ///< Marked in-place survivors.
  std::vector<Object *> ScanQueue;    ///< Copied-but-unscanned objects.
  GcOutcome Out;
};

static bool inChain(const Object *O) {
  Heap *H = Heap::of(O);
  return H && H->InCollection;
}

/// Phase A: mark the pinned closures of every chain heap in place.
/// Anything reachable from a pinned object must not move (a concurrent
/// task may traverse it barrier-free through immutable fields).
void Collector::markInPlaceClosure(ChainState &CS) {
  std::vector<Object *> Work;
  for (Heap *H : CS.Chain)
    for (Object *P : H->Pinned) {
      MPL_DASSERT(P->isPinned(), "stale entry in pinned set");
      if (P->isMarked())
        continue;
      P->setMark();
      CS.InPlace.push_back(P);
      Work.push_back(P);
    }

  while (!Work.empty()) {
    Object *O = Work.back();
    Work.pop_back();
    if (O->kind() == ObjKind::RawArray)
      continue;
    uint32_t Len = O->length();
    for (uint32_t I = 0; I < Len; ++I) {
      if (!O->slotHoldsPointer(I))
        continue;
      Object *Q = Object::asPointer(O->getSlot(I));
      if (!Q || !inChain(Q) || Q->isMarked())
        continue;
      Q->setMark();
      CS.InPlace.push_back(Q);
      Work.push_back(Q);
    }
  }

  for (Object *O : CS.InPlace) {
    Chunk::chunkOf(O)->PinnedCount++;
    CS.Out.BytesInPlace += static_cast<int64_t>(O->sizeBytes());
    CS.Out.ObjectsInPlace++;
  }
}

Object *Collector::copyObject(ChainState &CS, Object *O) {
  Heap *H = Heap::of(O);
  size_t Bytes = O->sizeBytes();
  void *Mem = H->allocate(Bytes);
  Object *New = reinterpret_cast<Object *>(Mem);
  __builtin_memcpy(New, O, Bytes);
  O->forwardTo(New);
  CS.Out.BytesCopied += static_cast<int64_t>(Bytes);
  CS.Out.ObjectsCopied++;
  CS.ScanQueue.push_back(New);
  return New;
}

/// Resolves one slot value: forwards moved objects, copies unvisited chain
/// objects, and leaves pinned / in-place / out-of-chain objects alone.
Slot Collector::traceSlot(ChainState &CS, Slot V) {
  Object *O = Object::asPointer(V);
  if (!O)
    return V;
  if (O->isForwarded())
    return Object::fromPointer(O->forwardee());
  if (!inChain(O))
    return V;
  if (O->isMarked() || O->isPinned())
    return V; // In-place survivor: address is stable by construction.
  return Object::fromPointer(copyObject(CS, O));
}

GcOutcome Collector::collectChain(Heap *Leaf, ShadowStack &Roots) {
  Timer Pause;
  ChainState CS;

  // A copying collection cannot unwind mid-evacuation (chain pin locks are
  // held, from-space is detached), so to-space acquisitions must bypass
  // the governor's hard limit and never recurse into emergency GC.
  MemoryGovernor::ScopedGcExempt Exempt;

  // Schedule fuzzing: stretch the window between the collection being
  // decided and the chain locks being taken — remote pins may land here.
  chaos::preemptPoint(chaos::Point::GcStart);

  // Discover the private chain: leaf upward while heaps are unshared.
  for (Heap *H = Leaf; H && H->activeForks() == 0; H = H->parent())
    CS.Chain.push_back(H);
  if (CS.Chain.empty())
    return CS.Out;
  obs::emit(obs::Ev::GcBegin, CS.Chain.size());

  // Lock shallowest-first (the global heap-lock order), flip heaps into
  // collection mode, and detach from-space.
  for (auto It = CS.Chain.rbegin(); It != CS.Chain.rend(); ++It)
    (*It)->PinLock.lock();
  for (Heap *H : CS.Chain) {
    H->InCollection = true;
    for (Chunk *C = H->Chunks; C; C = C->Next) {
      C->PinnedCount = 0;
      CS.OldChunks.push_back(C);
    }
    H->Chunks = nullptr;
    H->Current = nullptr;
    H->ChunkBytesGauge.store(0, std::memory_order_relaxed);
  }

  // Phase A: pinned closures stay in place.
  obs::emit(obs::Ev::GcMarkBegin);
  int64_t MarkStartNs = Pause.elapsedNs();
  markInPlaceClosure(CS);
  int64_t MarkEndNs = Pause.elapsedNs();
  obs::emit(obs::Ev::GcMarkEnd, static_cast<uint64_t>(CS.Out.ObjectsInPlace));

  // Phase B: evacuate everything reachable from the mutator roots. Slots
  // whose target did not move (out-of-chain, marked, or pinned objects)
  // must not be stored back: unchanged slots are exactly the ones a
  // concurrent task may be reading (shared ancestor roots, pinned
  // survivors), and a same-value blind store is still a data race.
  obs::emit(obs::Ev::GcEvacBegin);
  Roots.forEachRoot([&](Slot *S) {
    Slot V = *S;
    Slot NV = traceSlot(CS, V);
    if (NV != V)
      *S = NV;
  });
  while (!CS.ScanQueue.empty()) {
    Object *O = CS.ScanQueue.back();
    CS.ScanQueue.pop_back();
    if (O->kind() == ObjKind::RawArray)
      continue;
    uint32_t Len = O->length();
    for (uint32_t I = 0; I < Len; ++I)
      if (O->slotHoldsPointer(I)) {
        Slot V = O->getSlot(I);
        Slot NV = traceSlot(CS, V);
        if (NV != V)
          O->setSlot(I, NV);
      }
  }
  int64_t EvacEndNs = Pause.elapsedNs();
  obs::emit(obs::Ev::GcEvacEnd, static_cast<uint64_t>(CS.Out.BytesCopied));

  // Phase C: reclaim from-space chunks with no in-place survivors; retire
  // the rest (they stay resident — the space cost of entanglement).
  obs::emit(obs::Ev::GcReclaimBegin);
  for (Chunk *C : CS.OldChunks) {
    if (C->PinnedCount == 0) {
      CS.Out.BytesReclaimed += static_cast<int64_t>(C->TotalBytes);
      if (C->Large)
        ChunkPool::get().releaseLarge(C);
      else
        ChunkPool::get().release(C);
      continue;
    }
    // Retired chunk: keep it on its heap, closed for allocation.
    Heap *H = C->Owner.load(std::memory_order_relaxed);
    C->Frontier = C->Limit;
    C->Next = H->Chunks;
    H->Chunks = C;
    H->ChunkBytesGauge.fetch_add(static_cast<int64_t>(C->TotalBytes),
                                 std::memory_order_relaxed);
    if (!H->Current)
      H->Current = nullptr; // Allocation will open a fresh chunk.
  }
  obs::emit(obs::Ev::GcReclaimEnd, static_cast<uint64_t>(CS.Out.BytesReclaimed));

  // Clear transient marks; pinned bits persist until their unpin join.
  for (Object *O : CS.InPlace)
    O->clearMark();

  for (Heap *H : CS.Chain) {
    H->BytesAllocated = 0;
    H->InCollection = false;
  }
  for (Heap *H : CS.Chain)
    H->PinLock.unlock();

  CS.Out.HeapsCollected = static_cast<int64_t>(CS.Chain.size());
  CS.Out.PauseNs = Pause.elapsedNs();
  obs::emit(obs::Ev::GcEnd, static_cast<uint64_t>(CS.Out.BytesCopied),
            static_cast<uint64_t>(CS.Out.BytesReclaimed));
  GcPauseHist.record(CS.Out.PauseNs);
  // Site-attribute only collections that paid an entanglement cost (some
  // pinned closure survived in place): a disentangled run's collections
  // keep the profile empty, so the profile isolates exactly the GC work
  // entanglement induced (in-place marking, evacuation around pinned
  // survivors, retired-chunk accounting).
  if (CS.Out.ObjectsInPlace > 0 && obs::profileEnabled()) {
    uint32_t D = Leaf->depth();
    obs::profileEvent(MPL_SITE("gc.mark.inplace"), CS.Out.BytesInPlace, D,
                      MarkEndNs - MarkStartNs);
    obs::profileEvent(MPL_SITE("gc.evac"), CS.Out.BytesCopied, D,
                      EvacEndNs - MarkEndNs);
    obs::profileEvent(MPL_SITE("gc.reclaim"), CS.Out.BytesReclaimed, D,
                      CS.Out.PauseNs - EvacEndNs);
  }
  NumCollections.inc();
  TotalBytesCopied.add(CS.Out.BytesCopied);
  TotalBytesInPlace.add(CS.Out.BytesInPlace);
  TotalBytesReclaimed.add(CS.Out.BytesReclaimed);
  TotalPauseNs.add(CS.Out.PauseNs);
  MaxPauseNs.noteMax(CS.Out.PauseNs);
  return CS.Out;
}
