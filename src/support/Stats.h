//===- support/Stats.h - Named atomic counters -----------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named atomic counters. The entanglement-management paper
/// defines cost metrics (entangled reads, pinned objects, pinned bytes,
/// unpin events); the runtime reports them through this registry so tests
/// and benches can assert on them.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_STATS_H
#define MPL_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mpl {

/// A single named statistic. Instances register themselves in StatRegistry
/// on construction and unregister on destruction, so both static-duration
/// counters and dynamically constructed ones (e.g. created from worker
/// threads) are safe.
class Stat {
public:
  explicit Stat(const char *Name);
  ~Stat();

  Stat(const Stat &) = delete;
  Stat &operator=(const Stat &) = delete;

  void add(int64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  void inc() { add(1); }

  /// Records a high-water mark: keeps the maximum of all observed values.
  void noteMax(int64_t Observed) {
    int64_t Cur = Value.load(std::memory_order_relaxed);
    while (Observed > Cur &&
           !Value.compare_exchange_weak(Cur, Observed,
                                        std::memory_order_relaxed))
      ;
  }

  int64_t get() const { return Value.load(std::memory_order_relaxed); }
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  const char *name() const { return StatName; }

private:
  const char *StatName;
  std::atomic<int64_t> Value{0};
};

/// Global registry of all statistics; used to reset between benchmark runs
/// and to dump a report. Thread-safe: registration, unregistration and
/// iteration all take the registry lock (Stats may be constructed from
/// worker threads while another thread reads a report).
class StatRegistry {
public:
  static StatRegistry &get();

  void registerStat(Stat *S);
  void unregisterStat(Stat *S);
  void resetAll();

  /// Returns the current value of the statistic named \p Name, or 0 when no
  /// such statistic exists. Live instances only — retired totals are not
  /// included, so per-component code can probe whether an owner is alive.
  int64_t valueOf(const std::string &Name) const;

  /// One (name, total) pair per distinct name, sorted, under the registry
  /// lock. Totals sum every live instance plus the final values of retired
  /// ones: counters are process-lifetime monotone, so a component tearing
  /// down (e.g. a net::Server unregistering its net.* Stats) must not make
  /// its events vanish from exports flushed later (trace counters block,
  /// Prometheus exposition, MPL_STATS_DUMP at exit).
  std::vector<std::pair<std::string, int64_t>> snapshotAll() const;

  /// Renders "name = value" lines for all non-zero statistics.
  std::string report() const;

private:
  mutable std::mutex Lock;
  std::vector<Stat *> Stats;
  /// Final values of destroyed Stats, keyed by name; folded into
  /// snapshotAll() and cleared by resetAll().
  std::map<std::string, int64_t> Retired;
};

} // namespace mpl

#endif // MPL_SUPPORT_STATS_H
