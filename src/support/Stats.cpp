//===- support/Stats.cpp - Named atomic counters --------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cstdio>
#include <cstring>

using namespace mpl;

Stat::Stat(const char *Name) : StatName(Name) {
  StatRegistry::get().registerStat(this);
}

StatRegistry &StatRegistry::get() {
  // Function-local static avoids global-constructor ordering issues while
  // still giving Stat instances a registry to attach to on first use.
  static StatRegistry Instance;
  return Instance;
}

void StatRegistry::registerStat(Stat *S) { Stats.push_back(S); }

void StatRegistry::resetAll() {
  for (Stat *S : Stats)
    S->set(0);
}

int64_t StatRegistry::valueOf(const std::string &Name) const {
  for (const Stat *S : Stats)
    if (Name == S->name())
      return S->get();
  return 0;
}

std::string StatRegistry::report() const {
  std::string Out;
  char Line[256];
  for (const Stat *S : Stats) {
    if (S->get() == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-32s %12lld\n", S->name(),
                  static_cast<long long>(S->get()));
    Out += Line;
  }
  return Out;
}
