//===- support/Stats.cpp - Named atomic counters --------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace mpl;

Stat::Stat(const char *Name) : StatName(Name) {
  StatRegistry::get().registerStat(this);
}

Stat::~Stat() { StatRegistry::get().unregisterStat(this); }

StatRegistry &StatRegistry::get() {
  // Function-local static avoids global-constructor ordering issues while
  // still giving Stat instances a registry to attach to on first use.
  static StatRegistry Instance;
  return Instance;
}

void StatRegistry::registerStat(Stat *S) {
  std::lock_guard<std::mutex> G(Lock);
  Stats.push_back(S);
}

void StatRegistry::unregisterStat(Stat *S) {
  std::lock_guard<std::mutex> G(Lock);
  Stats.erase(std::remove(Stats.begin(), Stats.end(), S), Stats.end());
  if (int64_t V = S->get())
    Retired[S->name()] += V;
}

void StatRegistry::resetAll() {
  std::lock_guard<std::mutex> G(Lock);
  for (Stat *S : Stats)
    S->set(0);
  Retired.clear();
}

int64_t StatRegistry::valueOf(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  for (const Stat *S : Stats)
    if (Name == S->name())
      return S->get();
  return 0;
}

std::vector<std::pair<std::string, int64_t>> StatRegistry::snapshotAll() const {
  std::lock_guard<std::mutex> G(Lock);
  // One entry per name: live instances summed on top of retired totals, so
  // consumers emitting keyed formats (JSON objects, Prometheus series)
  // never see duplicate keys.
  std::map<std::string, int64_t> Agg(Retired);
  for (const Stat *S : Stats)
    Agg[S->name()] += S->get();
  return {Agg.begin(), Agg.end()};
}

std::string StatRegistry::report() const {
  std::lock_guard<std::mutex> G(Lock);
  std::string Out;
  char Line[256];
  for (const Stat *S : Stats) {
    if (S->get() == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-32s %12lld\n", S->name(),
                  static_cast<long long>(S->get()));
    Out += Line;
  }
  return Out;
}
