//===- support/EmCounters.h - Entanglement cost counters -------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-wide entanglement cost counters (the paper's cost metrics:
/// entangled reads, pins by kind, pinned/unpinned bytes). They live in the
/// support layer — below em/, hh/ and gc/ — because both the barriers
/// (core/Em.cpp) and the join rule (hh/Heap.cpp) account into them.
///
/// Tests and the invariant checker use snapshot()/reset() instead of
/// hand-reading the atomics: a snapshot is a plain value type that can be
/// compared, subtracted, and printed without ordering concerns.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_EMCOUNTERS_H
#define MPL_SUPPORT_EMCOUNTERS_H

#include <atomic>
#include <cstdint>

namespace mpl {
namespace em {

/// A plain-value copy of the counters at one instant. All fields are
/// cumulative event counts; live quantities are differences (see
/// livePinnedBytes / livePinnedObjects).
struct CounterSnapshot {
  int64_t EntangledReads = 0;
  /// Entangled reads that found their target UNPINNED. Pin-before-publish
  /// guarantees this never happens in a correct tree: any pointer a
  /// concurrent task can load was pinned by the write that published it.
  /// Nonzero means a write barrier lost a pin — the fuzz suite's primary
  /// detector for barrier regressions.
  int64_t EntangledReadsUnpinned = 0;
  int64_t DownPointerPins = 0;
  int64_t CrossPointerPins = 0;
  int64_t PinnedHolderPins = 0;
  int64_t PinnedObjects = 0;
  int64_t PinnedBytes = 0;
  int64_t UnpinnedObjects = 0;
  int64_t UnpinnedBytes = 0;
  /// Effect-handler continuations captured (pml Suspend) / resumed.
  int64_t ContCaptured = 0;
  int64_t ContResumed = 0;

  /// Bytes currently retained in place by live pins. Zero at any quiescent
  /// point where the whole task tree has joined (every pin released).
  int64_t livePinnedBytes() const { return PinnedBytes - UnpinnedBytes; }
  int64_t livePinnedObjects() const { return PinnedObjects - UnpinnedObjects; }
};

/// Counters exposed for tests/benches (see also support/Stats registry).
struct Counters {
  std::atomic<int64_t> EntangledReads{0};
  std::atomic<int64_t> EntangledReadsUnpinned{0};
  std::atomic<int64_t> DownPointerPins{0};
  std::atomic<int64_t> CrossPointerPins{0};
  std::atomic<int64_t> PinnedHolderPins{0};
  std::atomic<int64_t> PinnedObjects{0};
  std::atomic<int64_t> PinnedBytes{0};
  std::atomic<int64_t> UnpinnedObjects{0};
  std::atomic<int64_t> UnpinnedBytes{0};
  std::atomic<int64_t> ContCaptured{0};
  std::atomic<int64_t> ContResumed{0};

  /// Reads every counter (relaxed; exact at quiescent points).
  CounterSnapshot snapshot() const {
    CounterSnapshot S;
    S.EntangledReads = EntangledReads.load(std::memory_order_relaxed);
    S.EntangledReadsUnpinned =
        EntangledReadsUnpinned.load(std::memory_order_relaxed);
    S.DownPointerPins = DownPointerPins.load(std::memory_order_relaxed);
    S.CrossPointerPins = CrossPointerPins.load(std::memory_order_relaxed);
    S.PinnedHolderPins = PinnedHolderPins.load(std::memory_order_relaxed);
    S.PinnedObjects = PinnedObjects.load(std::memory_order_relaxed);
    S.PinnedBytes = PinnedBytes.load(std::memory_order_relaxed);
    S.UnpinnedObjects = UnpinnedObjects.load(std::memory_order_relaxed);
    S.UnpinnedBytes = UnpinnedBytes.load(std::memory_order_relaxed);
    S.ContCaptured = ContCaptured.load(std::memory_order_relaxed);
    S.ContResumed = ContResumed.load(std::memory_order_relaxed);
    return S;
  }

  /// Zeroes every counter (between tests / benchmark phases).
  void reset() {
    EntangledReads.store(0, std::memory_order_relaxed);
    EntangledReadsUnpinned.store(0, std::memory_order_relaxed);
    DownPointerPins.store(0, std::memory_order_relaxed);
    CrossPointerPins.store(0, std::memory_order_relaxed);
    PinnedHolderPins.store(0, std::memory_order_relaxed);
    PinnedObjects.store(0, std::memory_order_relaxed);
    PinnedBytes.store(0, std::memory_order_relaxed);
    UnpinnedObjects.store(0, std::memory_order_relaxed);
    UnpinnedBytes.store(0, std::memory_order_relaxed);
    ContCaptured.store(0, std::memory_order_relaxed);
    ContResumed.store(0, std::memory_order_relaxed);
  }
};

extern Counters Counts;

} // namespace em
} // namespace mpl

#endif // MPL_SUPPORT_EMCOUNTERS_H
