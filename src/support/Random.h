//===- support/Random.h - Deterministic pseudo-random numbers -*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG. Benchmark workload generation and
/// property tests must be reproducible across runs and worker counts, so we
/// never use std::random_device in the library.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_RANDOM_H
#define MPL_SUPPORT_RANDOM_H

#include <cstdint>

namespace mpl {

/// Mixes a 64-bit value into a well-distributed hash (SplitMix64 finalizer).
inline uint64_t hash64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Small deterministic RNG (SplitMix64). Cheap to seed and to fork: parallel
/// workloads derive per-index streams with \c fork so results do not depend
/// on the schedule.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x853c49e6748fea9bULL) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return hash64(State);
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBounded(uint64_t Bound) {
    return Bound == 0 ? 0 : next() % Bound;
  }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent stream for element \p Index; used by parallel
  /// loops so each iteration gets schedule-independent randomness.
  Rng fork(uint64_t Index) const { return Rng(hash64(State ^ hash64(Index))); }

private:
  uint64_t State;
};

} // namespace mpl

#endif // MPL_SUPPORT_RANDOM_H
