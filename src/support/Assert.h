//===- support/Assert.h - Runtime invariant checking ----------*- C++ -*-===//
//
// Part of mpl-em, a reproduction of "Efficient Parallel Functional
// Programming with Effects" (Arora, Westrick, Acar; PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers used throughout the runtime. Invariant violations in
/// the memory manager are programming errors: we abort immediately with a
/// message rather than attempting recovery (the library never throws).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_ASSERT_H
#define MPL_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace mpl {

/// Aborts with a formatted message. Used for invariant violations that must
/// be caught even in release builds (e.g. heap corruption detection).
[[noreturn]] inline void fatalError(const char *File, int Line,
                                    const char *Msg) {
  std::fprintf(stderr, "mpl fatal error at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace mpl

/// Checked in all build modes; the memory-safety invariants of the
/// hierarchical heap are too important to compile out.
#define MPL_CHECK(Cond, Msg)                                                   \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::mpl::fatalError(__FILE__, __LINE__, Msg);                              \
  } while (false)

/// Debug-only assertion for hot paths (barriers, allocation).
#ifdef NDEBUG
#define MPL_DASSERT(Cond, Msg) ((void)0)
#else
#define MPL_DASSERT(Cond, Msg) MPL_CHECK(Cond, Msg)
#endif

#define MPL_UNREACHABLE(Msg) ::mpl::fatalError(__FILE__, __LINE__, Msg)

#endif // MPL_SUPPORT_ASSERT_H
