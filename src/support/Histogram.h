//===- support/Histogram.h - Log2-bucketed latency histograms --*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free latency histograms: 64 power-of-two buckets of atomic counts,
/// so a record() is one relaxed fetch_add — cheap enough for the scheduler's
/// steal path and the collector's pause accounting. Like Stat, instances
/// register themselves in a global registry; the table printers and the
/// observability metrics exporter (src/obs/Metrics.cpp) report them.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_HISTOGRAM_H
#define MPL_SUPPORT_HISTOGRAM_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace mpl {

/// A log2-bucketed histogram of non-negative int64 samples (typically
/// nanoseconds). Bucket B holds samples whose value V satisfies
/// bit_width(V) == B, i.e. V in [2^(B-1), 2^B); bucket 0 holds V <= 0.
class Histogram {
public:
  static constexpr int NumBuckets = 64;

  explicit Histogram(const char *Name);
  ~Histogram();

  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  static int bucketOf(int64_t V) {
    if (V <= 0)
      return 0;
    return std::bit_width(static_cast<uint64_t>(V));
  }

  /// Lower bound of bucket \p B (inclusive); 0 for bucket 0.
  static int64_t bucketLo(int B) {
    return B <= 0 ? 0 : static_cast<int64_t>(1) << (B - 1);
  }

  void record(int64_t V) {
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
  }

  int64_t bucketCount(int B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }
  int64_t count() const;
  int64_t sum() const { return Sum.load(std::memory_order_relaxed); }

  /// Smallest bucket upper bound below which at least \p Q of the samples
  /// fall (a coarse quantile: exact only up to bucket granularity).
  int64_t approxQuantile(double Q) const;

  /// The standard latency-report quantiles, extracted in one pass over
  /// the buckets (same bucket-upper-bound semantics as approxQuantile).
  /// P999 (the 99.9th percentile) is what tail-latency gates care about:
  /// at serving rates of thousands of requests, P99 still hides the
  /// stalls that pages an operator.
  struct Percentiles {
    int64_t P50 = 0;
    int64_t P95 = 0;
    int64_t P99 = 0;
    int64_t P999 = 0;
  };
  Percentiles percentiles() const;

  /// Same quantile extraction over a caller-provided bucket-count array
  /// (e.g. the difference of two snapshots — RollingWindow's windowed
  /// percentiles). \p FallbackTail is returned for quantiles past the
  /// highest non-empty bucket (use the sample sum, matching percentiles()).
  static Percentiles percentilesFrom(const int64_t Counts[NumBuckets],
                                     int64_t FallbackTail);

  /// Copies the current bucket counts into \p Out (relaxed loads).
  void snapshotCounts(int64_t Out[NumBuckets]) const {
    for (int B = 0; B < NumBuckets; ++B)
      Out[B] = bucketCount(B);
  }

  void reset();
  const char *name() const { return HistName; }

private:
  const char *HistName;
  std::atomic<int64_t> Buckets[NumBuckets] = {};
  std::atomic<int64_t> Sum{0};
};

/// A rolling-window view over a Histogram: a ring of periodic bucket
/// snapshots, so percentiles can be computed over *recent* samples (current
/// counts minus the oldest retained snapshot) instead of process lifetime.
/// A long-lived server's lifetime P99 converges to a constant and stops
/// reflecting what operators are looking at; the windowed view answers
/// "what was P99 over the last N seconds".
///
/// The owning component drives rotation from any periodic thread it already
/// has (the request server uses its accept loop's poll tick); record() on
/// the underlying Histogram stays lock-free — only rotation and reads take
/// the window's small internal mutex, which is never held across blocking
/// work.
class RollingWindow {
public:
  /// Watches \p H with \p Slots snapshots taken every \p SlotNs. The
  /// covered window converges to Slots * SlotNs once the ring fills.
  RollingWindow(const Histogram &H, int Slots, int64_t SlotNs);

  /// Takes a snapshot if at least SlotNs elapsed since the last one.
  void maybeRotate(int64_t NowNs);

  struct WindowStats {
    int64_t Count = 0;    ///< Samples recorded inside the window.
    int64_t WindowNs = 0; ///< Time actually covered (ramp-up < full window).
    Histogram::Percentiles Pct;
  };

  /// Percentiles of the samples recorded since the oldest retained
  /// snapshot. \p NowNs bounds WindowNs.
  WindowStats window(int64_t NowNs) const;

private:
  struct Snap {
    int64_t TimeNs = 0;
    int64_t Sum = 0;
    int64_t Counts[Histogram::NumBuckets] = {};
  };

  const Histogram &Hist;
  const size_t NumSlots;
  const int64_t SlotNs;
  mutable std::mutex Mu;
  std::vector<Snap> Ring; ///< Oldest = Ring[(Head + 1) % size] when full.
  size_t Head = 0;
  size_t Filled = 1; ///< Construction takes the first (empty-ish) snapshot.
};

/// Global registry of all histograms, mirroring StatRegistry. Thread-safe:
/// histograms may be constructed/destroyed from worker threads.
class HistogramRegistry {
public:
  static HistogramRegistry &get();

  void registerHistogram(Histogram *H);
  void unregisterHistogram(Histogram *H);
  void resetAll();

  /// Runs \p Fn for every live histogram, under the registry lock.
  void forEach(const std::function<void(const Histogram &)> &Fn) const;

  /// Renders a text report of every non-empty histogram: one header line
  /// (count/sum/p50/p99 estimate) plus one line per non-empty bucket.
  std::string report() const;

private:
  mutable std::mutex Lock;
  std::vector<Histogram *> Histograms;
};

} // namespace mpl

#endif // MPL_SUPPORT_HISTOGRAM_H
