//===- support/Cli.h - Minimal command-line flag parsing -------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny flag parser for the bench and example binaries:
/// \code
///   mpl::Cli Cli(Argc, Argv);
///   int64_t N = Cli.getInt("n", 1000000);
///   bool Verbose = Cli.getBool("verbose");
/// \endcode
/// Flags are written as `-name value` or `-name=value`; bools as `-name`.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_CLI_H
#define MPL_SUPPORT_CLI_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mpl {

/// Parses argv into name/value pairs and answers typed lookups.
class Cli {
public:
  Cli(int Argc, char **Argv);

  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;
  std::string getString(const std::string &Name,
                        const std::string &Default) const;
  bool getBool(const std::string &Name) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string> &positional() const { return Positional; }

private:
  const std::string *find(const std::string &Name) const;

  std::vector<std::pair<std::string, std::string>> Flags;
  std::vector<std::string> Positional;
};

} // namespace mpl

#endif // MPL_SUPPORT_CLI_H
