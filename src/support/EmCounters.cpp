//===- support/EmCounters.cpp - Entanglement cost counters ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/EmCounters.h"

namespace mpl {
namespace em {

Counters Counts;

} // namespace em
} // namespace mpl
