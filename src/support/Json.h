//===- support/Json.h - Minimal JSON value, parser, writer -----*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON library for the observability layer: the trace
/// and metrics exporters escape strings through it, and the trace checker
/// (tools/trace_check.cpp) and tests parse exported files back to validate
/// well-formedness. Header-only, no dependencies beyond the STL; not a
/// general-purpose library (no \uXXXX surrogate pairs, numbers parse as
/// double).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_JSON_H
#define MPL_SUPPORT_JSON_H

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mpl {
namespace json {

/// One parsed JSON value (tree-owned children).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;

  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Value> Items;                       ///< Kind::Array
  std::vector<std::pair<std::string, Value>> Fields; ///< Kind::Object

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object field lookup; null when absent or not an object.
  const Value *field(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &F : Fields)
      if (F.first == Name)
        return &F.second;
    return nullptr;
  }
};

/// Escapes \p S for embedding in a JSON string literal.
inline std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace detail {

class Parser {
public:
  Parser(const char *Begin, const char *End) : P(Begin), End(End) {}

  bool parse(Value &Out, std::string &Err) {
    skipWs();
    if (!parseValue(Out, Err))
      return false;
    skipWs();
    if (P != End) {
      Err = "trailing garbage after top-level value";
      return false;
    }
    return true;
  }

private:
  const char *P;
  const char *End;

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool fail(std::string &Err, const std::string &What) {
    Err = What;
    return false;
  }

  bool literal(const char *Lit, std::string &Err) {
    for (; *Lit; ++Lit, ++P)
      if (P == End || *P != *Lit)
        return fail(Err, "bad literal");
    return true;
  }

  bool parseValue(Value &Out, std::string &Err) {
    if (P == End)
      return fail(Err, "unexpected end of input");
    switch (*P) {
    case '{':
      return parseObject(Out, Err);
    case '[':
      return parseArray(Out, Err);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.StrV, Err);
    case 't':
      Out.K = Value::Kind::Bool;
      Out.BoolV = true;
      return literal("true", Err);
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.BoolV = false;
      return literal("false", Err);
    case 'n':
      Out.K = Value::Kind::Null;
      return literal("null", Err);
    default:
      return parseNumber(Out, Err);
    }
  }

  bool parseString(std::string &Out, std::string &Err) {
    ++P; // consume '"'
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return fail(Err, "unterminated escape");
        switch (*P) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (End - P < 5)
            return fail(Err, "truncated \\u escape");
          unsigned V = 0;
          for (int I = 1; I <= 4; ++I) {
            char C = P[I];
            V <<= 4;
            if (C >= '0' && C <= '9')
              V |= static_cast<unsigned>(C - '0');
            else if (C >= 'a' && C <= 'f')
              V |= static_cast<unsigned>(C - 'a' + 10);
            else if (C >= 'A' && C <= 'F')
              V |= static_cast<unsigned>(C - 'A' + 10);
            else
              return fail(Err, "bad \\u escape");
          }
          P += 4;
          // ASCII only (enough for our own exports); others become '?'.
          Out += V < 0x80 ? static_cast<char>(V) : '?';
          break;
        }
        default:
          return fail(Err, "unknown escape");
        }
        ++P;
      } else {
        Out += *P++;
      }
    }
    if (P == End)
      return fail(Err, "unterminated string");
    ++P; // consume closing '"'
    return true;
  }

  bool parseNumber(Value &Out, std::string &Err) {
    const char *Start = P;
    if (P != End && (*P == '-' || *P == '+'))
      ++P;
    bool Any = false;
    while (P != End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                        *P == '.' || *P == 'e' || *P == 'E' || *P == '-' ||
                        *P == '+')) {
      Any = true;
      ++P;
    }
    if (!Any)
      return fail(Err, "expected a value");
    Out.K = Value::Kind::Number;
    Out.NumV = std::strtod(std::string(Start, P).c_str(), nullptr);
    return true;
  }

  bool parseArray(Value &Out, std::string &Err) {
    Out.K = Value::Kind::Array;
    ++P; // consume '['
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    while (true) {
      Value Item;
      skipWs();
      if (!parseValue(Item, Err))
        return false;
      Out.Items.push_back(std::move(Item));
      skipWs();
      if (P == End)
        return fail(Err, "unterminated array");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return fail(Err, "expected ',' or ']' in array");
    }
  }

  bool parseObject(Value &Out, std::string &Err) {
    Out.K = Value::Kind::Object;
    ++P; // consume '{'
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (P == End || *P != '"')
        return fail(Err, "expected object key");
      std::string Key;
      if (!parseString(Key, Err))
        return false;
      skipWs();
      if (P == End || *P != ':')
        return fail(Err, "expected ':' after key");
      ++P;
      skipWs();
      Value V;
      if (!parseValue(V, Err))
        return false;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (P == End)
        return fail(Err, "unterminated object");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return fail(Err, "expected ',' or '}' in object");
    }
  }
};

} // namespace detail

/// Parses \p Text into \p Out; on failure returns false and sets \p Err.
inline bool parse(const std::string &Text, Value &Out, std::string &Err) {
  detail::Parser Pr(Text.data(), Text.data() + Text.size());
  return Pr.parse(Out, Err);
}

} // namespace json
} // namespace mpl

#endif // MPL_SUPPORT_JSON_H
