//===- support/Table.h - Aligned text tables for bench output -*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned plain-text table printer. Every bench binary prints the
/// rows of the paper table it regenerates through this class so that
/// EXPERIMENTS.md can quote the output verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_TABLE_H
#define MPL_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace mpl {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Cells);

  /// Formats helpers for numeric cells.
  static std::string fmtSec(double Seconds);
  static std::string fmtRatio(double Ratio);
  static std::string fmtPct(double Pct);
  static std::string fmtBytes(int64_t Bytes);
  static std::string fmtInt(int64_t V);

  /// Renders the table (header, separator, rows) as a string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace mpl

#endif // MPL_SUPPORT_TABLE_H
