//===- support/Histogram.cpp - Log2-bucketed latency histograms -----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cstdio>

using namespace mpl;

Histogram::Histogram(const char *Name) : HistName(Name) {
  HistogramRegistry::get().registerHistogram(this);
}

Histogram::~Histogram() {
  HistogramRegistry::get().unregisterHistogram(this);
}

int64_t Histogram::count() const {
  int64_t Total = 0;
  for (int B = 0; B < NumBuckets; ++B)
    Total += bucketCount(B);
  return Total;
}

int64_t Histogram::approxQuantile(double Q) const {
  int64_t Total = count();
  if (Total == 0)
    return 0;
  int64_t Target = static_cast<int64_t>(Q * static_cast<double>(Total));
  int64_t Seen = 0;
  for (int B = 0; B < NumBuckets; ++B) {
    Seen += bucketCount(B);
    if (Seen > Target)
      return B == 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
  }
  return sum();
}

Histogram::Percentiles Histogram::percentiles() const {
  int64_t Counts[NumBuckets];
  snapshotCounts(Counts);
  return percentilesFrom(Counts, sum());
}

Histogram::Percentiles Histogram::percentilesFrom(
    const int64_t Counts[NumBuckets], int64_t FallbackTail) {
  Percentiles P;
  int64_t Total = 0;
  for (int B = 0; B < NumBuckets; ++B)
    Total += Counts[B];
  if (Total == 0)
    return P;
  // One scan, four targets: approxQuantile semantics (first bucket whose
  // cumulative count strictly exceeds Q * Total; value is the bucket's
  // inclusive upper bound).
  constexpr int NumQs = 4;
  const double Qs[NumQs] = {0.50, 0.95, 0.99, 0.999};
  int64_t *Out[NumQs] = {&P.P50, &P.P95, &P.P99, &P.P999};
  int Next = 0;
  int64_t Seen = 0;
  for (int B = 0; B < NumBuckets && Next < NumQs; ++B) {
    Seen += Counts[B];
    while (Next < NumQs &&
           Seen > static_cast<int64_t>(Qs[Next] * static_cast<double>(Total))) {
      *Out[Next] = B == 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
      ++Next;
    }
  }
  for (; Next < NumQs; ++Next)
    *Out[Next] = FallbackTail;
  return P;
}

//===----------------------------------------------------------------------===//
// RollingWindow
//===----------------------------------------------------------------------===//

RollingWindow::RollingWindow(const Histogram &H, int Slots, int64_t SlotNanos)
    : Hist(H), NumSlots(static_cast<size_t>(Slots > 1 ? Slots : 2)),
      SlotNs(SlotNanos > 0 ? SlotNanos : 1) {
  Ring.resize(NumSlots);
  Ring[0].TimeNs = 0; // stamped on the first maybeRotate
  Hist.snapshotCounts(Ring[0].Counts);
  Ring[0].Sum = Hist.sum();
}

void RollingWindow::maybeRotate(int64_t NowNs) {
  std::lock_guard<std::mutex> G(Mu);
  if (Ring[Head].TimeNs == 0) {
    // First rotation stamps the construction-time baseline so WindowNs is
    // measured from real time, not from 0.
    Ring[Head].TimeNs = NowNs;
    return;
  }
  // Catch up if the driver stalled: rotate once per elapsed slot so a long
  // gap retires stale snapshots instead of stretching the window.
  while (NowNs - Ring[Head].TimeNs >= SlotNs) {
    int64_t SnapTime = Ring[Head].TimeNs + SlotNs;
    if (NowNs - SnapTime >= SlotNs)
      SnapTime = NowNs; // collapse a multi-slot stall into one snapshot
    Head = (Head + 1) % NumSlots;
    if (Filled < NumSlots)
      ++Filled;
    Ring[Head].TimeNs = SnapTime;
    Hist.snapshotCounts(Ring[Head].Counts);
    Ring[Head].Sum = Hist.sum();
  }
}

RollingWindow::WindowStats RollingWindow::window(int64_t NowNs) const {
  std::lock_guard<std::mutex> G(Mu);
  const Snap &Base =
      Filled < NumSlots ? Ring[0] : Ring[(Head + 1) % NumSlots];
  int64_t Diff[Histogram::NumBuckets];
  int64_t Cur[Histogram::NumBuckets];
  Hist.snapshotCounts(Cur);
  WindowStats W;
  for (int B = 0; B < Histogram::NumBuckets; ++B) {
    Diff[B] = Cur[B] - Base.Counts[B];
    W.Count += Diff[B];
  }
  W.WindowNs = Base.TimeNs > 0 ? NowNs - Base.TimeNs : 0;
  W.Pct = Histogram::percentilesFrom(Diff, Hist.sum() - Base.Sum);
  return W;
}

void Histogram::reset() {
  for (int B = 0; B < NumBuckets; ++B)
    Buckets[B].store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

HistogramRegistry &HistogramRegistry::get() {
  static HistogramRegistry Instance;
  return Instance;
}

void HistogramRegistry::registerHistogram(Histogram *H) {
  std::lock_guard<std::mutex> G(Lock);
  Histograms.push_back(H);
}

void HistogramRegistry::unregisterHistogram(Histogram *H) {
  std::lock_guard<std::mutex> G(Lock);
  Histograms.erase(std::remove(Histograms.begin(), Histograms.end(), H),
                   Histograms.end());
}

void HistogramRegistry::resetAll() {
  std::lock_guard<std::mutex> G(Lock);
  for (Histogram *H : Histograms)
    H->reset();
}

void HistogramRegistry::forEach(
    const std::function<void(const Histogram &)> &Fn) const {
  std::lock_guard<std::mutex> G(Lock);
  for (const Histogram *H : Histograms)
    Fn(*H);
}

std::string HistogramRegistry::report() const {
  std::lock_guard<std::mutex> G(Lock);
  std::string Out;
  char Line[256];
  for (const Histogram *H : Histograms) {
    int64_t N = H->count();
    if (N == 0)
      continue;
    std::snprintf(Line, sizeof(Line),
                  "%-32s n=%lld sum=%lld p50<=%lld p99<=%lld\n", H->name(),
                  static_cast<long long>(N), static_cast<long long>(H->sum()),
                  static_cast<long long>(H->approxQuantile(0.50)),
                  static_cast<long long>(H->approxQuantile(0.99)));
    Out += Line;
    for (int B = 0; B < Histogram::NumBuckets; ++B) {
      int64_t C = H->bucketCount(B);
      if (C == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "  [>=%-13lld] %12lld\n",
                    static_cast<long long>(Histogram::bucketLo(B)),
                    static_cast<long long>(C));
      Out += Line;
    }
  }
  return Out;
}
