//===- support/Histogram.cpp - Log2-bucketed latency histograms -----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cstdio>

using namespace mpl;

Histogram::Histogram(const char *Name) : HistName(Name) {
  HistogramRegistry::get().registerHistogram(this);
}

Histogram::~Histogram() {
  HistogramRegistry::get().unregisterHistogram(this);
}

int64_t Histogram::count() const {
  int64_t Total = 0;
  for (int B = 0; B < NumBuckets; ++B)
    Total += bucketCount(B);
  return Total;
}

int64_t Histogram::approxQuantile(double Q) const {
  int64_t Total = count();
  if (Total == 0)
    return 0;
  int64_t Target = static_cast<int64_t>(Q * static_cast<double>(Total));
  int64_t Seen = 0;
  for (int B = 0; B < NumBuckets; ++B) {
    Seen += bucketCount(B);
    if (Seen > Target)
      return B == 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
  }
  return sum();
}

Histogram::Percentiles Histogram::percentiles() const {
  Percentiles P;
  int64_t Total = count();
  if (Total == 0)
    return P;
  // One scan, four targets: approxQuantile semantics (first bucket whose
  // cumulative count strictly exceeds Q * Total; value is the bucket's
  // inclusive upper bound).
  constexpr int NumQs = 4;
  const double Qs[NumQs] = {0.50, 0.95, 0.99, 0.999};
  int64_t *Out[NumQs] = {&P.P50, &P.P95, &P.P99, &P.P999};
  int Next = 0;
  int64_t Seen = 0;
  for (int B = 0; B < NumBuckets && Next < NumQs; ++B) {
    Seen += bucketCount(B);
    while (Next < NumQs &&
           Seen > static_cast<int64_t>(Qs[Next] * static_cast<double>(Total))) {
      *Out[Next] = B == 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
      ++Next;
    }
  }
  for (; Next < NumQs; ++Next)
    *Out[Next] = sum();
  return P;
}

void Histogram::reset() {
  for (int B = 0; B < NumBuckets; ++B)
    Buckets[B].store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

HistogramRegistry &HistogramRegistry::get() {
  static HistogramRegistry Instance;
  return Instance;
}

void HistogramRegistry::registerHistogram(Histogram *H) {
  std::lock_guard<std::mutex> G(Lock);
  Histograms.push_back(H);
}

void HistogramRegistry::unregisterHistogram(Histogram *H) {
  std::lock_guard<std::mutex> G(Lock);
  Histograms.erase(std::remove(Histograms.begin(), Histograms.end(), H),
                   Histograms.end());
}

void HistogramRegistry::resetAll() {
  std::lock_guard<std::mutex> G(Lock);
  for (Histogram *H : Histograms)
    H->reset();
}

void HistogramRegistry::forEach(
    const std::function<void(const Histogram &)> &Fn) const {
  std::lock_guard<std::mutex> G(Lock);
  for (const Histogram *H : Histograms)
    Fn(*H);
}

std::string HistogramRegistry::report() const {
  std::lock_guard<std::mutex> G(Lock);
  std::string Out;
  char Line[256];
  for (const Histogram *H : Histograms) {
    int64_t N = H->count();
    if (N == 0)
      continue;
    std::snprintf(Line, sizeof(Line),
                  "%-32s n=%lld sum=%lld p50<=%lld p99<=%lld\n", H->name(),
                  static_cast<long long>(N), static_cast<long long>(H->sum()),
                  static_cast<long long>(H->approxQuantile(0.50)),
                  static_cast<long long>(H->approxQuantile(0.99)));
    Out += Line;
    for (int B = 0; B < Histogram::NumBuckets; ++B) {
      int64_t C = H->bucketCount(B);
      if (C == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "  [>=%-13lld] %12lld\n",
                    static_cast<long long>(Histogram::bucketLo(B)),
                    static_cast<long long>(C));
      Out += Line;
    }
  }
  return Out;
}
