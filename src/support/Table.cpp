//===- support/Table.cpp - Aligned text tables ----------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cstdio>

using namespace mpl;

Table::Table(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::fmtSec(double Seconds) {
  char Buf[64];
  if (Seconds < 1e-3)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", Seconds * 1e6);
  else if (Seconds < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Seconds * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3fs", Seconds);
  return Buf;
}

std::string Table::fmtRatio(double Ratio) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", Ratio);
  return Buf;
}

std::string Table::fmtPct(double Pct) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Pct);
  return Buf;
}

std::string Table::fmtBytes(int64_t Bytes) {
  char Buf[64];
  double B = static_cast<double>(Bytes);
  if (Bytes < (1 << 10))
    std::snprintf(Buf, sizeof(Buf), "%lldB", static_cast<long long>(Bytes));
  else if (Bytes < (1 << 20))
    std::snprintf(Buf, sizeof(Buf), "%.1fK", B / (1 << 10));
  else if (Bytes < (1 << 30))
    std::snprintf(Buf, sizeof(Buf), "%.1fM", B / (1 << 20));
  else
    std::snprintf(Buf, sizeof(Buf), "%.2fG", B / (1 << 30));
  return Buf;
}

std::string Table::fmtInt(int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  return Buf;
}

std::string Table::render() const {
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  std::string Out;
  for (size_t R = 0; R < Rows.size(); ++R) {
    const auto &Row = Rows[R];
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += Row[I];
      if (I + 1 < Row.size())
        Out.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out += '\n';
    if (R == 0) {
      size_t Total = 0;
      for (size_t I = 0; I < Widths.size(); ++I)
        Total += Widths[I] + (I + 1 < Widths.size() ? 2 : 0);
      Out.append(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void Table::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
  std::fflush(stdout);
}
