//===- support/Cli.cpp - Minimal command-line flag parsing ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Cli.h"

#include <cstdlib>
#include <cstring>

using namespace mpl;

Cli::Cli(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-') {
      Positional.push_back(Arg);
      continue;
    }
    while (*Arg == '-')
      ++Arg;
    std::string Name(Arg);
    std::string Value;
    size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
    } else if (I + 1 < Argc && Argv[I + 1][0] != '-') {
      Value = Argv[++I];
    }
    Flags.emplace_back(std::move(Name), std::move(Value));
  }
}

const std::string *Cli::find(const std::string &Name) const {
  for (const auto &KV : Flags)
    if (KV.first == Name)
      return &KV.second;
  return nullptr;
}

int64_t Cli::getInt(const std::string &Name, int64_t Default) const {
  const std::string *V = find(Name);
  return V && !V->empty() ? std::strtoll(V->c_str(), nullptr, 10) : Default;
}

double Cli::getDouble(const std::string &Name, double Default) const {
  const std::string *V = find(Name);
  return V && !V->empty() ? std::strtod(V->c_str(), nullptr) : Default;
}

std::string Cli::getString(const std::string &Name,
                           const std::string &Default) const {
  const std::string *V = find(Name);
  return V && !V->empty() ? *V : Default;
}

bool Cli::getBool(const std::string &Name) const {
  const std::string *V = find(Name);
  if (!V)
    return false;
  return *V != "0" && *V != "false" && *V != "no";
}
