//===- support/Timer.h - Wall-clock timing utilities -----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic timers used by the benchmark harness and by the scheduler's
/// work-span profiler.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_SUPPORT_TIMER_H
#define MPL_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace mpl {

/// Returns monotonic time in nanoseconds.
inline int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A simple stopwatch measuring elapsed wall-clock time.
class Timer {
public:
  Timer() : Start(nowNs()) {}

  void reset() { Start = nowNs(); }

  /// Elapsed time since construction or the last \c reset, in nanoseconds.
  int64_t elapsedNs() const { return nowNs() - Start; }

  double elapsedSec() const {
    return static_cast<double>(elapsedNs()) * 1e-9;
  }

private:
  int64_t Start;
};

} // namespace mpl

#endif // MPL_SUPPORT_TIMER_H
