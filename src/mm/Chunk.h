//===- mm/Chunk.h - Aligned allocation chunks ------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap memory is carved into 64 KiB chunks aligned to their size, exactly
/// as in MPL's runtime. Alignment makes `chunkOf(obj)` a single mask, and
/// the chunk header stores the owning heap — this is how the entanglement
/// barriers map an object to its heap (and hence its depth) in O(1).
///
/// Objects larger than half a chunk get a dedicated "large" chunk whose
/// header is still at a 64 KiB boundary, so `chunkOf` keeps working on
/// object headers (we never take `chunkOf` of an interior pointer).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_MM_CHUNK_H
#define MPL_MM_CHUNK_H

#include "support/Assert.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mpl {

class Heap;

/// A contiguous slab of allocatable memory with an in-band header.
class Chunk {
public:
  // 16 KiB balances barrier-friendly aligned lookup against per-task-heap
  // fragmentation: every task heap that allocates at all holds at least
  // one chunk until its join, so deep fork trees multiply this number.
  static constexpr size_t SizeBytes = 1 << 14;
  static constexpr uintptr_t AddrMask = ~(static_cast<uintptr_t>(SizeBytes) - 1);

  /// The heap whose objects live in this chunk. Atomic because heap joins
  /// re-home chunks while concurrent barriers may be resolving heapOf().
  std::atomic<Heap *> Owner{nullptr};

  /// Next chunk in the owning heap's list.
  Chunk *Next = nullptr;

  /// Bump-allocation frontier and limit.
  char *Frontier = nullptr;
  char *Limit = nullptr;

  /// Number of pinned / kept-in-place survivors found by the last local
  /// collection; a chunk with survivors is retained instead of freed.
  uint32_t PinnedCount = 0;

  /// True for a dedicated oversized chunk holding exactly one object.
  bool Large = false;

  /// Total footprint including the header.
  size_t TotalBytes = 0;

  /// First allocatable byte.
  char *begin() { return reinterpret_cast<char *>(this + 1); }

  /// Bytes currently bump-allocated in this chunk.
  size_t usedBytes() const {
    return static_cast<size_t>(Frontier -
                               reinterpret_cast<const char *>(this + 1));
  }

  /// Attempts to bump-allocate \p Bytes; returns null when full.
  void *tryAllocate(size_t Bytes) {
    if (Frontier + Bytes > Limit)
      return nullptr;
    void *Result = Frontier;
    Frontier += Bytes;
    return Result;
  }

  /// Maps an object header address to its containing chunk.
  static Chunk *chunkOf(const void *ObjHeader) {
    return reinterpret_cast<Chunk *>(reinterpret_cast<uintptr_t>(ObjHeader) &
                                     AddrMask);
  }
};

static_assert(sizeof(Chunk) <= 128, "chunk header grew unexpectedly large");

/// Process-wide pool of normal-size chunks. Chunk churn is rare (one pool
/// hit per chunk of allocation), so a mutex-protected free list suffices.
///
/// Acquisition never aborts on a failed `aligned_alloc` or a breached
/// memory limit: each attempt consults the MemoryGovernor, and failures
/// run its staged recovery (trim the free list, force an emergency
/// collection, bounded backoff-retry) before a recoverable
/// mpl::OutOfMemoryError is raised. The free-list cache is bounded by the
/// governor's MPL_CHUNK_CACHE_MB cap; chunks released beyond the cap go
/// straight back to the OS.
class ChunkPool {
public:
  static ChunkPool &get();

  /// Fetches a fresh normal-size chunk (from the free list or the OS).
  /// Throws mpl::OutOfMemoryError once the governor's recovery ladder is
  /// exhausted (fatal instead on a collecting thread — see
  /// MemoryGovernor::ScopedGcExempt).
  Chunk *acquire();

  /// Returns a normal-size chunk to the free list (or the OS, when the
  /// free-list cache is at its cap).
  void release(Chunk *C);

  /// Allocates a dedicated chunk for one object of \p PayloadBytes.
  Chunk *acquireLarge(size_t PayloadBytes);

  /// Frees a large chunk back to the OS.
  void releaseLarge(Chunk *C);

  /// Returns cached free chunks to the OS until at most \p TargetBytes
  /// remain cached; returns the number of bytes released.
  int64_t trim(size_t TargetBytes = 0);

  /// Total bytes currently handed out (live chunks), for residency stats.
  int64_t outstandingBytes() const {
    return Outstanding.load(std::memory_order_relaxed);
  }

  /// Bytes cached on the free list (not in Outstanding), for the
  /// mm.freelist.bytes gauge.
  int64_t freeListBytes() const {
    return FreeBytes.load(std::memory_order_relaxed);
  }

  ~ChunkPool();

private:
  Chunk *initChunk(void *Mem, size_t Total, bool Large);
  Chunk *acquireImpl(size_t Total, bool Large);
  void *tryAcquireOnce(size_t Total, bool Large);

  std::mutex Lock;
  std::vector<Chunk *> FreeList;
  std::atomic<int64_t> Outstanding{0};
  std::atomic<int64_t> FreeBytes{0};
};

} // namespace mpl

#endif // MPL_MM_CHUNK_H
