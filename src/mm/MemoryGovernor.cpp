//===- mm/MemoryGovernor.cpp - Memory-pressure governor -------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mm/MemoryGovernor.h"

#include "mm/Chunk.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Histogram.h"
#include "support/Stats.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

using namespace mpl;

namespace {
Stat PressureTransitions("mm.pressure.transitions");
Stat EmergencyGcs("mm.emergency.gcs");
Stat AllocRetries("mm.alloc.retries");
Stat OomRaised("mm.oom.raised");
Histogram AllocRetryNs("mm.alloc.retry.ns");

thread_local int GcExemptDepth = 0;

std::string describeOom(size_t Requested, int64_t Outstanding, int64_t Limit,
                        int64_t Pinned) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "out of memory: %zu-byte chunk refused (outstanding=%lld, "
                "limit=%lld, live pinned=%lld bytes)",
                Requested, static_cast<long long>(Outstanding),
                static_cast<long long>(Limit), static_cast<long long>(Pinned));
  return Buf;
}
} // namespace

OutOfMemoryError::OutOfMemoryError(size_t RequestedBytes,
                                   int64_t OutstandingBytes, int64_t LimitBytes,
                                   int64_t PinnedBytes)
    : std::runtime_error(
          describeOom(RequestedBytes, OutstandingBytes, LimitBytes,
                      PinnedBytes)),
      Requested(RequestedBytes), Outstanding(OutstandingBytes),
      Limit(LimitBytes), Pinned(PinnedBytes) {}

const char *mpl::pressureName(Pressure P) {
  switch (P) {
  case Pressure::None:
    return "none";
  case Pressure::Soft:
    return "soft";
  case Pressure::Hard:
    return "hard";
  case Pressure::Critical:
    return "critical";
  }
  return "?";
}

MemoryGovernor &MemoryGovernor::get() {
  static MemoryGovernor Instance;
  return Instance;
}

void MemoryGovernor::configure(const Config &C) {
  {
    std::lock_guard<std::mutex> G(Mu);
    SoftFracValue = std::clamp(C.SoftFrac, 0.0, 1.0);
  }
  LimitBytes.store(std::max<int64_t>(0, C.LimitBytes),
                   std::memory_order_relaxed);
  SoftBytes.store(
      static_cast<int64_t>(static_cast<double>(std::max<int64_t>(
                               0, C.LimitBytes)) *
                           std::clamp(C.SoftFrac, 0.0, 1.0)),
      std::memory_order_relaxed);
  CacheBytes.store(std::max<int64_t>(0, C.ChunkCacheBytes),
                   std::memory_order_relaxed);
  MaxAttempts.store(std::max(1, C.MaxAllocAttempts), std::memory_order_relaxed);
  BackoffUs.store(std::max<int64_t>(0, C.RetryBackoffUs),
                  std::memory_order_relaxed);
  updatePressure();
}

MemoryGovernor::Config MemoryGovernor::config() const {
  Config C;
  C.LimitBytes = LimitBytes.load(std::memory_order_relaxed);
  C.ChunkCacheBytes = CacheBytes.load(std::memory_order_relaxed);
  C.MaxAllocAttempts = MaxAttempts.load(std::memory_order_relaxed);
  C.RetryBackoffUs = BackoffUs.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(Mu);
  C.SoftFrac = SoftFracValue;
  return C;
}

void MemoryGovernor::initFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [this] {
    // The live introspection plane (stats frames, Prometheus exposition)
    // reads memory pressure through the gauge registry: obs depends only
    // on support, so the governor pushes its gauges up rather than obs
    // reaching down. All four are relaxed loads. Never unregistered — the
    // governor and the chunk pool are process-lifetime singletons.
    obs::MetricsSampler &MS = obs::MetricsSampler::get();
    MS.registerGauge("mm.pressure", [this] {
      return static_cast<int64_t>(pressure());
    });
    MS.registerGauge("mm.outstanding.bytes", [] {
      return ChunkPool::get().outstandingBytes();
    });
    MS.registerGauge("mm.limit.bytes", [this] {
      return LimitBytes.load(std::memory_order_relaxed);
    });
    MS.registerGauge("mm.pinned.bytes", [this] { return pinnedBytes(); });
    Config C = config();
    bool Any = false;
    if (const char *S = std::getenv("MPL_MEM_LIMIT_MB"))
      if (long long Mb = std::atoll(S); Mb > 0) {
        C.LimitBytes = static_cast<int64_t>(Mb) << 20;
        Any = true;
      }
    if (const char *S = std::getenv("MPL_MEM_SOFT_FRAC"))
      if (double F = std::atof(S); F > 0.0 && F <= 1.0) {
        C.SoftFrac = F;
        Any = true;
      }
    if (const char *S = std::getenv("MPL_CHUNK_CACHE_MB"))
      if (long long Mb = std::atoll(S); Mb >= 0) {
        C.ChunkCacheBytes = static_cast<int64_t>(Mb) << 20;
        Any = true;
      }
    if (Any)
      configure(C);
  });
}

double MemoryGovernor::allocBudgetScale() const {
  switch (pressure()) {
  case Pressure::None:
    return 1.0;
  case Pressure::Soft:
    return 0.5;
  case Pressure::Hard:
    return 0.25;
  case Pressure::Critical:
    return 0.125;
  }
  return 1.0;
}

int MemoryGovernor::registerEmergencyGc(std::function<bool()> Fn) {
  std::lock_guard<std::mutex> G(Mu);
  int Id = NextHookId++;
  GcHooks.push_back({Id, std::move(Fn)});
  return Id;
}

void MemoryGovernor::unregisterEmergencyGc(int Id) {
  std::lock_guard<std::mutex> G(Mu);
  for (size_t I = 0; I < GcHooks.size(); ++I)
    if (GcHooks[I].Id == Id) {
      GcHooks.erase(GcHooks.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
}

MemoryGovernor::AdmissionDecision
MemoryGovernor::adviseAdmission(int64_t QueueDepth, int64_t QueueCap) {
  // Refresh the level first: admission is often the only caller between
  // allocations (an idle server under external memory movement would
  // otherwise judge on a stale level).
  updatePressure();
  AdmissionDecision D;
  D.Level = pressure();
  int64_t Allowed;
  switch (D.Level) {
  case Pressure::None:
    Allowed = QueueCap;
    break;
  case Pressure::Soft:
    Allowed = QueueCap / 2;
    break;
  case Pressure::Hard:
    Allowed = QueueCap / 4;
    break;
  case Pressure::Critical:
  default:
    Allowed = 0;
    break;
  }
  D.Admit = QueueDepth < Allowed;
  if (!D.Admit) {
    // Retry hints grow with severity: a full-but-unpressured queue clears
    // in milliseconds; Critical means an emergency collection has to win
    // back headroom first.
    static constexpr int64_t HintMs[] = {10, 50, 200, 1000};
    D.RetryAfterMs = HintMs[static_cast<size_t>(D.Level)];
  }
  return D;
}

void MemoryGovernor::setPressureFrom(int64_t WouldBeOutstanding) {
  int64_t Limit = LimitBytes.load(std::memory_order_relaxed);
  Pressure Want = Pressure::None;
  if (Limit > 0) {
    if (WouldBeOutstanding >= Limit)
      Want = Pressure::Hard;
    else if (WouldBeOutstanding >= SoftBytes.load(std::memory_order_relaxed))
      Want = Pressure::Soft;
  }
  uint8_t Cur = Level.load(std::memory_order_relaxed);
  // Critical is set only by the recovery ladder; it decays like any other
  // level once residency drops back below the watermarks.
  if (Cur == static_cast<uint8_t>(Pressure::Critical) &&
      Want == Pressure::Hard)
    return;
  if (Cur == static_cast<uint8_t>(Want))
    return;
  Level.store(static_cast<uint8_t>(Want), std::memory_order_relaxed);
  PressureTransitions.inc();
  obs::emit(obs::Ev::PressureChange, static_cast<uint64_t>(Want),
            static_cast<uint64_t>(std::max<int64_t>(0, WouldBeOutstanding)));
}

void MemoryGovernor::updatePressure() {
  setPressureFrom(ChunkPool::get().outstandingBytes());
}

bool MemoryGovernor::admitChunk(size_t Bytes) {
  int64_t Limit = LimitBytes.load(std::memory_order_relaxed);
  if (Limit <= 0)
    return true; // Unlimited: the common fast path, one load + branch.
  int64_t Would =
      ChunkPool::get().outstandingBytes() + static_cast<int64_t>(Bytes);
  setPressureFrom(Would);
  if (Would <= Limit)
    return true;
  // Collecting threads must be allowed to allocate to-space past the
  // limit: a copying collection frees at least as much as it copies, and
  // cannot unwind mid-evacuation.
  return gcExemptOnThisThread();
}

bool MemoryGovernor::runEmergencyGc() {
  std::vector<Hook> Hooks;
  {
    std::lock_guard<std::mutex> G(Mu);
    Hooks = GcHooks;
  }
  bool Ran = false;
  for (const Hook &H : Hooks) {
    int64_t Before = ChunkPool::get().outstandingBytes();
    if (H.Fn()) {
      Ran = true;
      EmergencyGcs.inc();
      obs::emit(obs::Ev::EmergencyGc,
                static_cast<uint64_t>(std::max<int64_t>(0, Before)),
                static_cast<uint64_t>(std::max<int64_t>(
                    0, ChunkPool::get().outstandingBytes())));
    }
  }
  return Ran;
}

bool MemoryGovernor::recoverStage(int Attempt, size_t Bytes) {
  if (Attempt + 1 >= MaxAttempts.load(std::memory_order_relaxed))
    return false;
  AllocRetries.inc();
  obs::emit(obs::Ev::AllocRetry, static_cast<uint64_t>(Attempt),
            static_cast<uint64_t>(Bytes));
  switch (Attempt) {
  case 0:
    // Stage 1: give every cached free chunk back to the OS.
    ChunkPool::get().trim(0);
    break;
  case 1:
    // Stage 2: force a local collection of the calling task's private
    // chain. Unreachable from a collecting thread (its pin locks are
    // held); trim again instead so the retry still has a chance.
    if (gcExemptOnThisThread() || !runEmergencyGc())
      ChunkPool::get().trim(0);
    break;
  default: {
    // Stage 3: bounded retry with exponential backoff, re-running the
    // earlier stages — a concurrent task may have released memory, and
    // transient faults (chaos::Fault::FailChunkAlloc) resolve on re-poll.
    int64_t Us = BackoffUs.load(std::memory_order_relaxed);
    if (Us > 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(Us << std::min(Attempt - 2, 10)));
    ChunkPool::get().trim(0);
    if (!gcExemptOnThisThread())
      runEmergencyGc();
    break;
  }
  }
  updatePressure();
  return true;
}

void MemoryGovernor::raiseOom(size_t Bytes) {
  uint8_t Prev = Level.exchange(static_cast<uint8_t>(Pressure::Critical),
                                std::memory_order_relaxed);
  if (Prev != static_cast<uint8_t>(Pressure::Critical)) {
    PressureTransitions.inc();
    obs::emit(obs::Ev::PressureChange,
              static_cast<uint64_t>(Pressure::Critical),
              static_cast<uint64_t>(
                  std::max<int64_t>(0, ChunkPool::get().outstandingBytes())));
  }
  OomRaised.inc();
  // Post-mortem introspection: dump the live heap tree before unwinding so
  // the operator can see *where* the bytes were pinned when the limit was
  // hit (MPL_OOM_HEAP_TREE=<path>; off by default because the pressure
  // tests raise OOM on purpose). ScopedGcExempt threads never reach here,
  // so no heap lock is held and the snapshot cannot deadlock.
  if (const char *Path = std::getenv("MPL_OOM_HEAP_TREE"))
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::string Tree = obs::snapshotHeapTree();
      std::fwrite(Tree.data(), 1, Tree.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    }
  throw OutOfMemoryError(Bytes, ChunkPool::get().outstandingBytes(),
                         LimitBytes.load(std::memory_order_relaxed),
                         pinnedBytes());
}

void MemoryGovernor::noteRetrySettled(int64_t StallNs) {
  AllocRetryNs.record(StallNs);
}

MemoryGovernor::ScopedGcExempt::ScopedGcExempt() { ++GcExemptDepth; }
MemoryGovernor::ScopedGcExempt::~ScopedGcExempt() { --GcExemptDepth; }

bool MemoryGovernor::gcExemptOnThisThread() { return GcExemptDepth > 0; }
