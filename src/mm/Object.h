//===- mm/Object.h - Heap object model -------------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every heap object is a one-word header followed by 64-bit slots:
///
///   bit  0      : forwarded   (header is `newAddr | 1` when set)
///   bits 1-2    : kind        (Record / Array / RawArray / Ref)
///   bit  3      : mutable     (reads through it are entanglement-checked)
///   bit  4      : pinned      (local GC must not move the object)
///   bit  5      : in-place GC mark (transient within one collection)
///   bits 8-15   : unpin depth (valid while pinned; see em/)
///   bits 16-47  : length in slots
///   bits 48-63  : pointer bitmap for Record (slot I is a pointer iff bit I)
///
/// Pinning and the unpin depth are the paper's central mechanism: a pinned
/// object is an *entanglement candidate* that concurrent tasks may hold; it
/// must stay in place until the task tree joins back to its unpin depth,
/// at which point the entanglement is provably dead.
///
/// Slot values: pointers are 8-byte-aligned Object addresses; anything with
/// a low bit set (or null) is a non-pointer immediate. This allows the GC
/// to scan uniformly-tagged slots (used by the PML virtual machine) as well
/// as bitmap-described record fields.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_MM_OBJECT_H
#define MPL_MM_OBJECT_H

#include "support/Assert.h"

#include <atomic>
#include <cstdint>

namespace mpl {

using Slot = uint64_t;

enum class ObjKind : uint8_t {
  Record = 0,   ///< Fixed shape; pointer bitmap in the header.
  Array = 1,    ///< All slots are (tag-checked) pointers or immediates.
  RawArray = 2, ///< No pointers; payload is opaque bytes.
  Ref = 3,      ///< A single mutable cell.
};

/// A heap object. Instances live only inside chunks; this class is a view
/// over the header word plus the trailing payload slots.
class Object {
public:
  static constexpr uint64_t FwdBit = 1ull << 0;
  static constexpr uint64_t KindShift = 1;
  static constexpr uint64_t KindMask = 0x3ull << KindShift;
  static constexpr uint64_t MutableBit = 1ull << 3;
  static constexpr uint64_t PinnedBit = 1ull << 4;
  static constexpr uint64_t MarkBit = 1ull << 5;
  static constexpr uint64_t UnpinShift = 8;
  static constexpr uint64_t UnpinMask = 0xffull << UnpinShift;
  static constexpr uint64_t LenShift = 16;
  static constexpr uint64_t LenMask = 0xffffffffull << LenShift;
  static constexpr uint64_t MapShift = 48;

  static constexpr uint32_t MaxLength = 0xffffffffu;
  static constexpr uint32_t MaxRecordFields = 16;

  static uint64_t makeHeader(ObjKind K, bool Mutable, uint32_t Length,
                             uint16_t PtrMap) {
    return (static_cast<uint64_t>(K) << KindShift) |
           (Mutable ? MutableBit : 0) |
           (static_cast<uint64_t>(Length) << LenShift) |
           (static_cast<uint64_t>(PtrMap) << MapShift);
  }

  /// Initializes the header of a freshly allocated (unpublished) object.
  void initHeader(uint64_t H) { Header.store(H, std::memory_order_relaxed); }

  uint64_t header() const { return Header.load(std::memory_order_acquire); }

  bool isForwarded() const { return header() & FwdBit; }

  Object *forwardee() const {
    uint64_t H = header();
    MPL_DASSERT(H & FwdBit, "forwardee of non-forwarded object");
    return reinterpret_cast<Object *>(H & ~FwdBit);
  }

  /// Installs a forwarding pointer to \p To (GC-internal; the owning
  /// collector holds the heap locks, so a plain store suffices).
  void forwardTo(Object *To) {
    Header.store(reinterpret_cast<uint64_t>(To) | FwdBit,
                 std::memory_order_release);
  }

  ObjKind kind() const {
    return static_cast<ObjKind>((header() & KindMask) >> KindShift);
  }
  bool isMutable() const { return header() & MutableBit; }
  bool isPinned() const { return header() & PinnedBit; }
  bool isMarked() const { return header() & MarkBit; }
  uint32_t length() const {
    return static_cast<uint32_t>((header() & LenMask) >> LenShift);
  }
  uint16_t ptrMap() const { return static_cast<uint16_t>(header() >> MapShift); }
  uint32_t unpinDepth() const {
    return static_cast<uint32_t>((header() & UnpinMask) >> UnpinShift);
  }

  /// Pins at depth \p Depth, or deepens an existing pin to the *minimum*
  /// depth (an object stays pinned as long as any entanglement that can
  /// reach it is alive). Returns true when the object was newly pinned.
  /// Callers must hold the owning heap's pin lock (see Heap::PinLock).
  bool pinMin(uint32_t Depth) {
    uint64_t H = header();
    MPL_DASSERT(!(H & FwdBit), "pinning a forwarded object");
    if (H & PinnedBit) {
      uint32_t Old = static_cast<uint32_t>((H & UnpinMask) >> UnpinShift);
      if (Depth < Old)
        Header.store((H & ~UnpinMask) |
                         (static_cast<uint64_t>(Depth) << UnpinShift),
                     std::memory_order_release);
      return false;
    }
    Header.store((H & ~UnpinMask) | PinnedBit |
                     (static_cast<uint64_t>(Depth) << UnpinShift),
                 std::memory_order_release);
    return true;
  }

  /// Clears the pin (used when a join reaches the unpin depth).
  void unpin() {
    uint64_t H = header();
    Header.store(H & ~(PinnedBit | UnpinMask), std::memory_order_release);
  }

  void setMark() {
    Header.store(header() | MarkBit, std::memory_order_relaxed);
  }
  void clearMark() {
    Header.store(header() & ~MarkBit, std::memory_order_relaxed);
  }

  /// Payload access. Slot I of the object.
  Slot *slots() { return reinterpret_cast<Slot *>(this + 1); }
  const Slot *slots() const { return reinterpret_cast<const Slot *>(this + 1); }

  Slot getSlot(uint32_t I) const {
    MPL_DASSERT(I < length(), "slot index out of range");
    return slots()[I];
  }
  void setSlot(uint32_t I, Slot V) {
    MPL_DASSERT(I < length(), "slot index out of range");
    slots()[I] = V;
  }

  /// Atomic slot access for mutable cells shared across tasks.
  Slot loadSlotAcquire(uint32_t I) const {
    // atomic_ref<const T> is C++23; the cast is safe for an atomic load.
    return std::atomic_ref<Slot>(const_cast<Slot &>(slots()[I]))
        .load(std::memory_order_acquire);
  }
  void storeSlotRelease(uint32_t I, Slot V) {
    std::atomic_ref<Slot>(slots()[I]).store(V, std::memory_order_release);
  }

  /// Object footprint in bytes (header + payload).
  size_t sizeBytes() const {
    return sizeof(Object) + static_cast<size_t>(length()) * sizeof(Slot);
  }
  static size_t sizeBytesFor(uint32_t Length) {
    return sizeof(Object) + static_cast<size_t>(Length) * sizeof(Slot);
  }

  /// True when slot I holds a traceable pointer given this object's kind.
  /// Immediates (tagged ints, null) are filtered by the pointer test.
  bool slotHoldsPointer(uint32_t I) const {
    switch (kind()) {
    case ObjKind::RawArray:
      return false;
    case ObjKind::Record:
      return (ptrMap() >> I) & 1;
    case ObjKind::Array:
    case ObjKind::Ref:
      return true;
    }
    MPL_UNREACHABLE("covered switch");
  }

  /// Interprets slot value \p V as an object pointer if it looks like one.
  /// Slot values produced by the runtime keep pointers 8-aligned and
  /// non-null; tagged immediates always have a low bit set.
  static Object *asPointer(Slot V) {
    if (V == 0 || (V & 7) != 0)
      return nullptr;
    return reinterpret_cast<Object *>(V);
  }

  static Slot fromPointer(const Object *O) {
    return reinterpret_cast<Slot>(O);
  }

private:
  std::atomic<uint64_t> Header{0};
};

static_assert(sizeof(Object) == 8, "object header must be one word");

} // namespace mpl

#endif // MPL_MM_OBJECT_H
