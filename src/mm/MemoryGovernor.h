//===- mm/MemoryGovernor.h - Memory-pressure governor ----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's memory-pressure governor. Entanglement has a *memory*
/// cost — pinned objects are retained in place until a join reaches their
/// unpin depth — so a production runtime must know when memory is scarce
/// and degrade gracefully instead of aborting on the first failed
/// `aligned_alloc`. The governor watches two accounted gauges:
///
///  - chunk bytes outstanding (ChunkPool residency, already tracked), the
///    quantity the soft/hard limits are enforced against;
///  - live pinned bytes (maintained by Heap::addPinned and the join rule's
///    unpin path), the portion of residency that *cannot* be reclaimed
///    early without breaking the pin-before-publish soundness argument —
///    reported for observability and OOM diagnostics.
///
/// Pressure ladder. `MPL_MEM_LIMIT_MB` sets a hard limit on chunk bytes;
/// `MPL_MEM_SOFT_FRAC` (default 0.85) places a soft watermark below it.
/// The level transitions None → Soft → Hard → Critical as residency
/// crosses the watermarks, each transition shrinking the collection-policy
/// allocation budget (allocBudgetScale) so tasks collect more eagerly
/// under pressure. When an allocation would breach the hard limit — or the
/// OS refuses memory outright — the chunk pool runs a staged response
/// instead of aborting:
///
///   1. trim the chunk free list back to the OS (the steady-state cache is
///      also capped at `MPL_CHUNK_CACHE_MB`);
///   2. force a local collection of the calling task's private chain via
///      the emergency-GC hook the Runtime registers;
///   3. bounded retry with exponential backoff (faults and transient
///      spikes resolve; the `mm.alloc.retry.ns` histogram records how
///      long rescued allocations stalled).
///
/// Only when every stage fails does the governor raise a *recoverable*
/// mpl::OutOfMemoryError: the failing strand unwinds (rt::par propagates
/// the error through the joins), Runtime::run rethrows it to the caller,
/// and the process survives. The one exception is an allocation failure
/// inside the collector itself (to-space exhaustion with every retry
/// spent): a copying collection cannot unwind mid-evacuation, so that path
/// remains fatal — the governor therefore exempts collecting threads from
/// the hard limit entirely (GC must be allowed to allocate to make
/// progress; it frees at least as much as it copies).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_MM_MEMORYGOVERNOR_H
#define MPL_MM_MEMORYGOVERNOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpl {

/// Recoverable allocation failure: every recovery stage (free-list trim,
/// emergency collection, bounded retry) was exhausted. Thrown by the chunk
/// pool, propagated through rt::par joins, and rethrown by Runtime::run.
class OutOfMemoryError : public std::runtime_error {
public:
  OutOfMemoryError(size_t RequestedBytes, int64_t OutstandingBytes,
                   int64_t LimitBytes, int64_t PinnedBytes);

  size_t requestedBytes() const { return Requested; }
  int64_t outstandingBytes() const { return Outstanding; }
  int64_t limitBytes() const { return Limit; }
  /// Live pinned bytes at the time of failure: the part of residency the
  /// runtime could not shed without breaking entanglement soundness.
  int64_t pinnedBytes() const { return Pinned; }

private:
  size_t Requested;
  int64_t Outstanding;
  int64_t Limit;
  int64_t Pinned;
};

/// Memory-pressure level, derived from chunk residency against the limit.
enum class Pressure : uint8_t {
  None = 0,     ///< Below the soft watermark (or no limit configured).
  Soft = 1,     ///< At or above the soft watermark.
  Hard = 2,     ///< At or above the hard limit; recovery stages engaged.
  Critical = 3, ///< Recovery failing; OutOfMemoryError imminent.
};

const char *pressureName(Pressure P);

/// Process-wide memory-pressure governor (one per process, like ChunkPool).
class MemoryGovernor {
public:
  struct Config {
    /// Hard limit on chunk bytes outstanding; 0 disables limit enforcement
    /// (the free-list cache cap still applies).
    int64_t LimitBytes = 0;

    /// Soft watermark as a fraction of LimitBytes.
    double SoftFrac = 0.85;

    /// Steady-state cap on the chunk pool's free-list cache; beyond it,
    /// released chunks go straight back to the OS.
    int64_t ChunkCacheBytes = int64_t(64) << 20;

    /// Total allocation attempts before OutOfMemoryError (>= 1).
    int MaxAllocAttempts = 4;

    /// Base backoff between late retries (doubles per extra attempt).
    int64_t RetryBackoffUs = 50;
  };

  static MemoryGovernor &get();

  /// Replaces the configuration (tests / embedders). Quiescent callers
  /// only; also recomputes the pressure level.
  void configure(const Config &C);

  /// Applies MPL_MEM_LIMIT_MB / MPL_MEM_SOFT_FRAC / MPL_CHUNK_CACHE_MB on
  /// top of the current configuration. Once per process; called by the
  /// first rt::Runtime.
  void initFromEnv();

  Config config() const;

  bool limited() const {
    return LimitBytes.load(std::memory_order_relaxed) > 0;
  }
  /// Steady-state free-list cache cap, consulted by ChunkPool::release.
  int64_t chunkCacheBytes() const {
    return CacheBytes.load(std::memory_order_relaxed);
  }
  Pressure pressure() const {
    return static_cast<Pressure>(Level.load(std::memory_order_relaxed));
  }

  /// Collection-policy multiplier: 1.0 at None, halving per level, so
  /// tasks under pressure exhaust their allocation budget (and therefore
  /// collect) sooner.
  double allocBudgetScale() const;

  /// Live pinned-bytes gauge, maintained by Heap::addPinned (+) and the
  /// join rule's unpin path (-).
  void notePinnedBytes(int64_t Delta) {
    PinnedBytes.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t pinnedBytes() const {
    return PinnedBytes.load(std::memory_order_relaxed);
  }
  /// Test-only: clears the pinned gauge between unrelated phases.
  void resetPinnedBytes() {
    PinnedBytes.store(0, std::memory_order_relaxed);
  }

  /// Registers the emergency-collection hook (rt::Runtime: force a local
  /// collection of the calling task's private chain). Returns an id for
  /// unregisterEmergencyGc. The hook returns true when a collection ran.
  int registerEmergencyGc(std::function<bool()> Fn);
  void unregisterEmergencyGc(int Id);

  //===--------------------------------------------------------------------===//
  // Admission control (the request server's front door, src/net)
  //===--------------------------------------------------------------------===//

  /// What to do with an incoming request given memory pressure and queue
  /// occupancy.
  struct AdmissionDecision {
    bool Admit = true;
    /// When !Admit: how long the client should wait before retrying, the
    /// server's Retry-After hint. Scales with pressure severity.
    int64_t RetryAfterMs = 0;
    /// Pressure level the decision was made at (structured SHED payloads).
    Pressure Level = Pressure::None;
  };

  /// Admission ladder: maps the pressure level to a shrinking fraction of
  /// the request queue the server may fill —
  ///   None: full queue · Soft: 1/2 · Hard: 1/4 · Critical: shed all.
  /// Shedding at the door under pressure is strictly cheaper than admitting
  /// a request whose allocations will stall in the recovery ladder and
  /// likely end in a mid-flight OutOfMemoryError anyway.
  AdmissionDecision adviseAdmission(int64_t QueueDepth, int64_t QueueCap);

  //===--------------------------------------------------------------------===//
  // Chunk-pool protocol (called by ChunkPool::acquire / acquireLarge)
  //===--------------------------------------------------------------------===//

  /// Admission check for a chunk of \p Bytes: updates the pressure level
  /// and returns false when the allocation would breach the hard limit.
  /// Collecting threads (ScopedGcExempt) are always admitted.
  bool admitChunk(size_t Bytes);

  /// Runs recovery stage \p Attempt (0-based): trim, emergency GC, then
  /// backoff + both. Returns false once MaxAllocAttempts is exhausted —
  /// the caller must give up (raiseOom / fatal).
  bool recoverStage(int Attempt, size_t Bytes);

  /// Throws OutOfMemoryError describing the exhausted request.
  [[noreturn]] void raiseOom(size_t Bytes);

  /// Records how long an allocation that needed recovery stalled before
  /// eventually succeeding (the mm.alloc.retry.ns histogram).
  void noteRetrySettled(int64_t StallNs);

  /// Recomputes the pressure level from current residency (chunk releases
  /// and trims lower it).
  void updatePressure();

  /// Marks the current thread as collecting: its chunk acquisitions bypass
  /// the hard limit (to-space must be allocatable for GC to make progress)
  /// and skip the emergency-GC recovery stage (a collector cannot be
  /// reentered on the same thread — its pin locks are held).
  class ScopedGcExempt {
  public:
    ScopedGcExempt();
    ~ScopedGcExempt();
    ScopedGcExempt(const ScopedGcExempt &) = delete;
    ScopedGcExempt &operator=(const ScopedGcExempt &) = delete;
  };
  static bool gcExemptOnThisThread();

private:
  MemoryGovernor() = default;

  void setPressureFrom(int64_t WouldBeOutstanding);
  bool runEmergencyGc();

  // Hot fields are plain atomics so admitChunk never takes a lock.
  std::atomic<int64_t> LimitBytes{0};
  std::atomic<int64_t> SoftBytes{0};
  std::atomic<int64_t> CacheBytes{Config{}.ChunkCacheBytes};
  std::atomic<int> MaxAttempts{Config{}.MaxAllocAttempts};
  std::atomic<int64_t> BackoffUs{Config{}.RetryBackoffUs};
  std::atomic<uint8_t> Level{static_cast<uint8_t>(Pressure::None)};
  std::atomic<int64_t> PinnedBytes{0};

  mutable std::mutex Mu; ///< Guards SoftFracValue and the hook list.
  double SoftFracValue = Config{}.SoftFrac;
  struct Hook {
    int Id;
    std::function<bool()> Fn;
  };
  std::vector<Hook> GcHooks;
  int NextHookId = 1;

  friend class ChunkPool;
};

} // namespace mpl

#endif // MPL_MM_MEMORYGOVERNOR_H
