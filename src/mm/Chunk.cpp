//===- mm/Chunk.cpp - Aligned allocation chunks ---------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mm/Chunk.h"

#include "support/Stats.h"

#include <cstdlib>

using namespace mpl;

namespace {
Stat ChunksAllocated("mm.chunks.allocated");
Stat ChunksReused("mm.chunks.reused");
Stat PeakOutstanding("mm.bytes.peak");
} // namespace

ChunkPool &ChunkPool::get() {
  static ChunkPool Instance;
  return Instance;
}

Chunk *ChunkPool::initChunk(void *Mem, size_t Total, bool Large) {
  Chunk *C = new (Mem) Chunk();
  C->Frontier = C->begin();
  C->Limit = reinterpret_cast<char *>(Mem) + Total;
  C->Large = Large;
  C->TotalBytes = Total;
  Outstanding.fetch_add(static_cast<int64_t>(Total),
                        std::memory_order_relaxed);
  PeakOutstanding.noteMax(Outstanding.load(std::memory_order_relaxed));
  return C;
}

Chunk *ChunkPool::acquire() {
  {
    std::lock_guard<std::mutex> G(Lock);
    if (!FreeList.empty()) {
      Chunk *C = FreeList.back();
      FreeList.pop_back();
      ChunksReused.inc();
      return initChunk(C, Chunk::SizeBytes, /*Large=*/false);
    }
  }
  void *Mem = std::aligned_alloc(Chunk::SizeBytes, Chunk::SizeBytes);
  MPL_CHECK(Mem != nullptr, "out of memory acquiring chunk");
  ChunksAllocated.inc();
  return initChunk(Mem, Chunk::SizeBytes, /*Large=*/false);
}

void ChunkPool::release(Chunk *C) {
  MPL_CHECK(!C->Large, "normal release of a large chunk");
  Outstanding.fetch_sub(static_cast<int64_t>(C->TotalBytes),
                        std::memory_order_relaxed);
  C->Owner.store(nullptr, std::memory_order_relaxed);
  C->Next = nullptr;
  std::lock_guard<std::mutex> G(Lock);
  FreeList.push_back(C);
}

Chunk *ChunkPool::acquireLarge(size_t PayloadBytes) {
  size_t Total = sizeof(Chunk) + PayloadBytes;
  // Round up to the chunk alignment so chunkOf() stays a mask.
  Total = (Total + Chunk::SizeBytes - 1) & Chunk::AddrMask;
  void *Mem = std::aligned_alloc(Chunk::SizeBytes, Total);
  MPL_CHECK(Mem != nullptr, "out of memory acquiring large chunk");
  ChunksAllocated.inc();
  return initChunk(Mem, Total, /*Large=*/true);
}

void ChunkPool::releaseLarge(Chunk *C) {
  MPL_CHECK(C->Large, "large release of a normal chunk");
  Outstanding.fetch_sub(static_cast<int64_t>(C->TotalBytes),
                        std::memory_order_relaxed);
  std::free(C);
}

ChunkPool::~ChunkPool() {
  for (Chunk *C : FreeList)
    std::free(C);
}
