//===- mm/Chunk.cpp - Aligned allocation chunks ---------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mm/Chunk.h"

#include "chaos/ChaosSchedule.h"
#include "mm/MemoryGovernor.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <cstdlib>

using namespace mpl;

namespace {
Stat ChunksAllocated("mm.chunks.allocated");
Stat ChunksReused("mm.chunks.reused");
Stat ChunksTrimmed("mm.chunks.trimmed");
Stat PeakOutstanding("mm.bytes.peak");
} // namespace

ChunkPool &ChunkPool::get() {
  static ChunkPool Instance;
  return Instance;
}

Chunk *ChunkPool::initChunk(void *Mem, size_t Total, bool Large) {
  Chunk *C = new (Mem) Chunk();
  C->Frontier = C->begin();
  C->Limit = reinterpret_cast<char *>(Mem) + Total;
  C->Large = Large;
  C->TotalBytes = Total;
  Outstanding.fetch_add(static_cast<int64_t>(Total),
                        std::memory_order_relaxed);
  PeakOutstanding.noteMax(Outstanding.load(std::memory_order_relaxed));
  return C;
}

/// One allocation attempt: governor admission, then the free list, then the
/// OS. Null means this attempt failed (limit breach, injected fault, or the
/// OS refusing memory) and the caller should run a recovery stage.
void *ChunkPool::tryAcquireOnce(size_t Total, bool Large) {
  if (!MemoryGovernor::get().admitChunk(Total))
    return nullptr;
  if (chaos::faultFires(chaos::Fault::FailChunkAlloc)) [[unlikely]]
    return nullptr;
  if (!Large) {
    std::lock_guard<std::mutex> G(Lock);
    if (!FreeList.empty()) {
      Chunk *C = FreeList.back();
      FreeList.pop_back();
      FreeBytes.fetch_sub(static_cast<int64_t>(Chunk::SizeBytes),
                          std::memory_order_relaxed);
      ChunksReused.inc();
      return C;
    }
  }
  void *Mem = std::aligned_alloc(Chunk::SizeBytes, Total);
  if (Mem)
    ChunksAllocated.inc();
  return Mem;
}

Chunk *ChunkPool::acquireImpl(size_t Total, bool Large) {
  void *Mem = tryAcquireOnce(Total, Large);
  if (Mem) [[likely]]
    return initChunk(Mem, Total, Large);

  // Slow path: staged recovery (trim → emergency GC → backoff retry),
  // then a recoverable OutOfMemoryError. A collecting thread cannot
  // unwind mid-evacuation, so exhaustion there stays fatal.
  MemoryGovernor &Gov = MemoryGovernor::get();
  Timer Stall;
  for (int Attempt = 0;; ++Attempt) {
    if (!Gov.recoverStage(Attempt, Total)) {
      MPL_CHECK(!MemoryGovernor::gcExemptOnThisThread(),
                "out of memory acquiring to-space chunk during collection");
      Gov.raiseOom(Total);
    }
    Mem = tryAcquireOnce(Total, Large);
    if (Mem) {
      Gov.noteRetrySettled(Stall.elapsedNs());
      return initChunk(Mem, Total, Large);
    }
  }
}

Chunk *ChunkPool::acquire() {
  return acquireImpl(Chunk::SizeBytes, /*Large=*/false);
}

void ChunkPool::release(Chunk *C) {
  MPL_CHECK(!C->Large, "normal release of a large chunk");
  Outstanding.fetch_sub(static_cast<int64_t>(C->TotalBytes),
                        std::memory_order_relaxed);
  C->Owner.store(nullptr, std::memory_order_relaxed);
  C->Next = nullptr;
  MemoryGovernor &Gov = MemoryGovernor::get();
  int64_t Cap = Gov.chunkCacheBytes();
  bool Cached = false;
  {
    std::lock_guard<std::mutex> G(Lock);
    if (FreeBytes.load(std::memory_order_relaxed) +
            static_cast<int64_t>(Chunk::SizeBytes) <=
        Cap) {
      FreeList.push_back(C);
      FreeBytes.fetch_add(static_cast<int64_t>(Chunk::SizeBytes),
                          std::memory_order_relaxed);
      Cached = true;
    }
  }
  if (!Cached) {
    ChunksTrimmed.inc();
    std::free(C);
  }
  if (Gov.limited())
    Gov.updatePressure();
}

Chunk *ChunkPool::acquireLarge(size_t PayloadBytes) {
  size_t Total = sizeof(Chunk) + PayloadBytes;
  // Round up to the chunk alignment so chunkOf() stays a mask.
  Total = (Total + Chunk::SizeBytes - 1) & Chunk::AddrMask;
  return acquireImpl(Total, /*Large=*/true);
}

void ChunkPool::releaseLarge(Chunk *C) {
  MPL_CHECK(C->Large, "large release of a normal chunk");
  Outstanding.fetch_sub(static_cast<int64_t>(C->TotalBytes),
                        std::memory_order_relaxed);
  std::free(C);
  MemoryGovernor &Gov = MemoryGovernor::get();
  if (Gov.limited())
    Gov.updatePressure();
}

int64_t ChunkPool::trim(size_t TargetBytes) {
  std::vector<Chunk *> Victims;
  {
    std::lock_guard<std::mutex> G(Lock);
    while (!FreeList.empty() &&
           FreeBytes.load(std::memory_order_relaxed) >
               static_cast<int64_t>(TargetBytes)) {
      Victims.push_back(FreeList.back());
      FreeList.pop_back();
      FreeBytes.fetch_sub(static_cast<int64_t>(Chunk::SizeBytes),
                          std::memory_order_relaxed);
    }
  }
  for (Chunk *C : Victims) {
    ChunksTrimmed.inc();
    std::free(C);
  }
  return static_cast<int64_t>(Victims.size() * Chunk::SizeBytes);
}

ChunkPool::~ChunkPool() {
  for (Chunk *C : FreeList)
    std::free(C);
}
