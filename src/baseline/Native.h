//===- baseline/Native.h - Native C++ comparison kernels -------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written C++ (malloc + STL) implementations of the comparison
/// kernels for the paper's cross-language table (MPL vs C++/Go/Java/OCaml).
/// Only the C++ column is reproducible offline; see DESIGN.md §2.
///
/// Two flavours where it matters:
///  - `*Idiomatic`: the straightforward C++ a practitioner would write
///    (std::sort, unordered_set) — the paper's "C++" column;
///  - `*Functional`: allocation-matched variants with the same allocation
///    behaviour as the functional kernels, isolating language/runtime cost
///    from algorithmic differences.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_BASELINE_NATIVE_H
#define MPL_BASELINE_NATIVE_H

#include <cstdint>
#include <string>
#include <vector>

namespace mpl {
namespace nat {

int64_t fib(int64_t N);

std::vector<int64_t> randomInts(int64_t N, int64_t Range, uint64_t Seed);

/// std::sort (the idiomatic C++ baseline).
std::vector<int64_t> sortIdiomatic(std::vector<int64_t> V);

/// Out-of-place top-down mergesort that allocates fresh buffers at every
/// level, matching the functional kernel's allocation behaviour.
std::vector<int64_t> msortFunctional(const std::vector<int64_t> &V);

int64_t nqueens(int N);

/// Number of primes <= N (sieve).
int64_t primesCount(int64_t N);

std::string randomText(int64_t Len, uint64_t Seed);
int64_t tokens(const std::string &S);

/// Distinct count via unordered_set.
int64_t dedupIdiomatic(const std::vector<int64_t> &Keys);

/// Histogram into Buckets; returns the bucket counts.
std::vector<int64_t> histogram(const std::vector<int64_t> &V,
                               int64_t Buckets);

/// CSR graph matching wl::buildRandomGraph's topology exactly (same seed
/// derivation), so BFS results are comparable.
struct Graph {
  int64_t N = 0;
  std::vector<int64_t> Offsets;
  std::vector<int64_t> Edges;
};
Graph buildRandomGraph(int64_t N, int64_t AvgDeg, uint64_t Seed);

/// Sequential BFS; returns number of reached vertices.
int64_t bfsReached(const Graph &G, int64_t Src);

/// Random points in a disc, identical to wl::randomPoints' derivation.
void randomPoints(int64_t N, uint64_t Seed, std::vector<int64_t> &Xs,
                  std::vector<int64_t> &Ys);

/// Convex hull size via Andrew's monotone chain (collinear points are not
/// counted as vertices, matching the quickhull kernel).
int64_t convexHullCount(const std::vector<int64_t> &Xs,
                        const std::vector<int64_t> &Ys);

} // namespace nat
} // namespace mpl

#endif // MPL_BASELINE_NATIVE_H
