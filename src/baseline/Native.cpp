//===- baseline/Native.cpp - Native C++ comparison kernels -----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "baseline/Native.h"

#include "support/Random.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace mpl {
namespace nat {

int64_t fib(int64_t N) { return N < 2 ? N : fib(N - 1) + fib(N - 2); }

std::vector<int64_t> randomInts(int64_t N, int64_t Range, uint64_t Seed) {
  std::vector<int64_t> V(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    V[static_cast<size_t>(I)] = static_cast<int64_t>(
        hash64(Seed ^ hash64(static_cast<uint64_t>(I))) %
        static_cast<uint64_t>(Range));
  return V;
}

std::vector<int64_t> sortIdiomatic(std::vector<int64_t> V) {
  std::sort(V.begin(), V.end());
  return V;
}

std::vector<int64_t> msortFunctional(const std::vector<int64_t> &V) {
  if (V.size() <= 4096) {
    std::vector<int64_t> Out(V);
    std::sort(Out.begin(), Out.end());
    return Out;
  }
  size_t Mid = V.size() / 2;
  std::vector<int64_t> L = msortFunctional({V.begin(), V.begin() + Mid});
  std::vector<int64_t> R = msortFunctional({V.begin() + Mid, V.end()});
  std::vector<int64_t> Out(V.size());
  std::merge(L.begin(), L.end(), R.begin(), R.end(), Out.begin());
  return Out;
}

namespace {
bool queenSafe(const std::vector<int> &Board, int Col) {
  int Row = static_cast<int>(Board.size());
  for (int R = 0; R < Row; ++R) {
    int C = Board[static_cast<size_t>(R)];
    int Dist = Row - R;
    if (C == Col || C == Col - Dist || C == Col + Dist)
      return false;
  }
  return true;
}

int64_t queensRec(int N, std::vector<int> &Board) {
  if (static_cast<int>(Board.size()) == N)
    return 1;
  int64_t Count = 0;
  for (int Col = 0; Col < N; ++Col) {
    if (!queenSafe(Board, Col))
      continue;
    Board.push_back(Col);
    Count += queensRec(N, Board);
    Board.pop_back();
  }
  return Count;
}
} // namespace

int64_t nqueens(int N) {
  std::vector<int> Board;
  return queensRec(N, Board);
}

int64_t primesCount(int64_t N) {
  std::vector<char> Composite(static_cast<size_t>(N + 1), 0);
  for (int64_t P = 2; P * P <= N; ++P) {
    if (Composite[static_cast<size_t>(P)])
      continue;
    for (int64_t M = P * P; M <= N; M += P)
      Composite[static_cast<size_t>(M)] = 1;
  }
  int64_t Count = 0;
  for (int64_t I = 2; I <= N; ++I)
    Count += !Composite[static_cast<size_t>(I)];
  return Count;
}

std::string randomText(int64_t Len, uint64_t Seed) {
  std::string Buf(static_cast<size_t>(Len), ' ');
  Rng R(Seed);
  size_t I = 0;
  while (I < Buf.size()) {
    size_t WordLen = 1 + R.nextBounded(9);
    for (size_t J = 0; J < WordLen && I < Buf.size(); ++J, ++I)
      Buf[I] = static_cast<char>('a' + R.nextBounded(26));
    if (I < Buf.size())
      Buf[I++] = R.nextBounded(8) == 0 ? '\n' : ' ';
  }
  return Buf;
}

int64_t tokens(const std::string &S) {
  auto Sp = [](char C) { return C == ' ' || C == '\n' || C == '\t'; };
  int64_t Count = 0;
  for (size_t I = 0; I < S.size(); ++I)
    if (!Sp(S[I]) && (I == 0 || Sp(S[I - 1])))
      ++Count;
  return Count;
}

int64_t dedupIdiomatic(const std::vector<int64_t> &Keys) {
  std::unordered_set<int64_t> Set(Keys.begin(), Keys.end());
  return static_cast<int64_t>(Set.size());
}

std::vector<int64_t> histogram(const std::vector<int64_t> &V,
                               int64_t Buckets) {
  std::vector<int64_t> H(static_cast<size_t>(Buckets), 0);
  for (int64_t X : V)
    ++H[static_cast<size_t>(X)];
  return H;
}

Graph buildRandomGraph(int64_t N, int64_t AvgDeg, uint64_t Seed) {
  Graph G;
  G.N = N;
  G.Offsets.resize(static_cast<size_t>(N + 1), 0);
  for (int64_t U = 0; U < N; ++U)
    G.Offsets[static_cast<size_t>(U + 1)] =
        G.Offsets[static_cast<size_t>(U)] + AvgDeg + (U + 1 < N ? 1 : 0);
  G.Edges.resize(static_cast<size_t>(G.Offsets[static_cast<size_t>(N)]));
  for (int64_t U = 0; U < N; ++U) {
    Rng R(hash64(Seed ^ static_cast<uint64_t>(U)));
    int64_t At = G.Offsets[static_cast<size_t>(U)];
    for (int64_t K = 0; K < AvgDeg; ++K)
      G.Edges[static_cast<size_t>(At++)] =
          static_cast<int64_t>(R.nextBounded(static_cast<uint64_t>(N)));
    if (U + 1 < N)
      G.Edges[static_cast<size_t>(At++)] = U + 1;
  }
  return G;
}

int64_t bfsReached(const Graph &G, int64_t Src) {
  std::vector<int64_t> Parent(static_cast<size_t>(G.N), -2);
  Parent[static_cast<size_t>(Src)] = -1;
  std::deque<int64_t> Queue{Src};
  int64_t Reached = 1;
  while (!Queue.empty()) {
    int64_t U = Queue.front();
    Queue.pop_front();
    for (int64_t E = G.Offsets[static_cast<size_t>(U)];
         E < G.Offsets[static_cast<size_t>(U + 1)]; ++E) {
      int64_t W = G.Edges[static_cast<size_t>(E)];
      if (Parent[static_cast<size_t>(W)] != -2)
        continue;
      Parent[static_cast<size_t>(W)] = U;
      ++Reached;
      Queue.push_back(W);
    }
  }
  return Reached;
}

void randomPoints(int64_t N, uint64_t Seed, std::vector<int64_t> &Xs,
                  std::vector<int64_t> &Ys) {
  Xs.resize(static_cast<size_t>(N));
  Ys.resize(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    Rng R(hash64(Seed ^ static_cast<uint64_t>(I)));
    int64_t Vx, Vy;
    do {
      Vx = static_cast<int64_t>(R.nextBounded(2000001)) - 1000000;
      Vy = static_cast<int64_t>(R.nextBounded(2000001)) - 1000000;
    } while (Vx * Vx + Vy * Vy > 1000000ll * 1000000ll);
    Xs[static_cast<size_t>(I)] = Vx;
    Ys[static_cast<size_t>(I)] = Vy;
  }
}

int64_t convexHullCount(const std::vector<int64_t> &Xs,
                        const std::vector<int64_t> &Ys) {
  size_t N = Xs.size();
  std::vector<size_t> Idx(N);
  for (size_t I = 0; I < N; ++I)
    Idx[I] = I;
  std::sort(Idx.begin(), Idx.end(), [&](size_t A, size_t B) {
    return std::make_pair(Xs[A], Ys[A]) < std::make_pair(Xs[B], Ys[B]);
  });
  Idx.erase(std::unique(Idx.begin(), Idx.end(),
                        [&](size_t A, size_t B) {
                          return Xs[A] == Xs[B] && Ys[A] == Ys[B];
                        }),
            Idx.end());
  N = Idx.size();
  if (N < 3)
    return static_cast<int64_t>(N);
  auto Cross = [&](size_t O, size_t A, size_t B) {
    return (Xs[A] - Xs[O]) * (Ys[B] - Ys[O]) -
           (Ys[A] - Ys[O]) * (Xs[B] - Xs[O]);
  };
  std::vector<size_t> Hull(2 * N);
  size_t K = 0;
  for (size_t I = 0; I < N; ++I) { // Lower hull.
    while (K >= 2 && Cross(Hull[K - 2], Hull[K - 1], Idx[I]) <= 0)
      --K;
    Hull[K++] = Idx[I];
  }
  for (size_t I = N - 1, T = K + 1; I-- > 0;) { // Upper hull.
    while (K >= T && Cross(Hull[K - 2], Hull[K - 1], Idx[I]) <= 0)
      --K;
    Hull[K++] = Idx[I];
  }
  return static_cast<int64_t>(K - 1);
}

} // namespace nat
} // namespace mpl
