//===- core/WorkerCtx.h - Per-thread runtime context -----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_WORKERCTX_H
#define MPL_CORE_WORKERCTX_H

#include "gc/ShadowStack.h"
#include "hh/Heap.h"

#include <cstdint>

namespace mpl {

struct DeadlineCtx;

/// Mutator state of one OS thread: the heap it is allocating into, its GC
/// root stack, and its collection-policy counters. Tasks migrate between
/// threads only at fork boundaries, and every branch wrapper re-points
/// CurrentHeap (and CurrentDeadline), so thread-locality is safe.
struct WorkerCtx {
  Heap *CurrentHeap = nullptr;

  /// Deadline of the request this strand is serving, or null outside a
  /// request scope. Inherited across rt::par exactly like CurrentHeap.
  DeadlineCtx *CurrentDeadline = nullptr;

  ShadowStack Roots;

  /// Bytes allocated by this thread since its last local collection.
  int64_t AllocSinceGc = 0;

  /// Live bytes (copied + in-place) found by this thread's last collection.
  int64_t LiveAfterGc = 0;
};

} // namespace mpl

#endif // MPL_CORE_WORKERCTX_H
