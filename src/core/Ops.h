//===- core/Ops.h - Typed heap operations ----------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation and access operations over runtime values, mirroring the
/// Parallel ML surface the paper supports:
///
///  - tagged 63-bit integers (immediates, never traced);
///  - `ref` cells with `refGet` (`!`) and `refSet` (`:=`) — mutable, so
///    loads run the entanglement read barrier and stores the write barrier;
///  - mutable arrays (`arrGet`/`arrSet`), ditto;
///  - immutable records (tuples, list/tree nodes) — reads are barrier-free,
///    which is exactly the paper's "shielding" of disentangled data;
///  - raw byte arrays and strings (no pointers, never scanned).
///
/// Every ops::new* may trigger a local collection, so object references
/// held across them must be rooted (Local / RootedBuf); the helpers here
/// root their own arguments internally.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_OPS_H
#define MPL_CORE_OPS_H

#include "core/Em.h"
#include "core/Handles.h"
#include "core/Runtime.h"

#include <cstring>
#include <initializer_list>

namespace mpl {
namespace ops {

//===----------------------------------------------------------------------===//
// Immediates
//===----------------------------------------------------------------------===//

/// Tags a 63-bit integer as an immediate slot value (low bit set).
inline Slot boxInt(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) | 1;
}
inline int64_t unboxInt(Slot S) { return static_cast<int64_t>(S) >> 1; }
inline bool isInt(Slot S) { return (S & 1) != 0; }

inline Slot boxBool(bool B) { return boxInt(B ? 1 : 0); }
inline bool unboxBool(Slot S) { return unboxInt(S) != 0; }

/// The unit value.
inline Slot unit() { return boxInt(0); }

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

/// Allocates an object in the calling task's heap, running the collection
/// policy first. Payload is uninitialized.
inline Object *allocObject(ObjKind K, bool Mutable, uint32_t Length,
                           uint16_t PtrMap) {
  rt::Runtime *R = rt::Runtime::current();
  MPL_DASSERT(R, "allocation outside Runtime::run");
  // The allocation poll is a safe point: an expired request deadline
  // unwinds here (like OOM) rather than buying more memory.
  rt::checkDeadline();
  R->maybeCollect();
  WorkerCtx *C = rt::Runtime::ctx();
  Object *O = C->CurrentHeap->allocateObject(K, Mutable, Length, PtrMap);
  C->AllocSinceGc += static_cast<int64_t>(Object::sizeBytesFor(Length));
  return O;
}

/// Allocates `ref Init`.
inline Object *newRef(Slot Init) {
  Local Tmp(Init);
  Object *O = allocObject(ObjKind::Ref, /*Mutable=*/true, 1, 0);
  em::writeBarrier(O, Tmp.slot());
  O->setSlot(0, Tmp.slot());
  return O;
}

/// Allocates a mutable array of \p N slots, all initialized to \p Init.
inline Object *newArray(uint32_t N, Slot Init) {
  Local Tmp(Init);
  Object *O = allocObject(ObjKind::Array, /*Mutable=*/true, N, 0);
  if (N > 0)
    em::writeBarrier(O, Tmp.slot());
  Slot V = Tmp.slot();
  for (uint32_t I = 0; I < N; ++I)
    O->setSlot(I, V);
  return O;
}

/// Allocates an immutable record whose pointer fields are described by
/// \p PtrMap (bit I set = field I is a pointer). Reads of immutable
/// records are barrier-free.
inline Object *newRecord(uint16_t PtrMap, std::initializer_list<Slot> Fields) {
  RootedBuf Tmp;
  for (Slot F : Fields)
    Tmp.push(F);
  Object *O = allocObject(ObjKind::Record, /*Mutable=*/false,
                          static_cast<uint32_t>(Fields.size()), PtrMap);
  for (uint32_t I = 0; I < Tmp.size(); ++I) {
    if ((PtrMap >> I) & 1)
      em::writeBarrier(O, Tmp[I]);
    O->setSlot(I, Tmp[I]);
  }
  return O;
}

/// Allocates a mutable record (fields settable with recSet).
inline Object *newMutRecord(uint16_t PtrMap,
                            std::initializer_list<Slot> Fields) {
  RootedBuf Tmp;
  for (Slot F : Fields)
    Tmp.push(F);
  Object *O = allocObject(ObjKind::Record, /*Mutable=*/true,
                          static_cast<uint32_t>(Fields.size()), PtrMap);
  for (uint32_t I = 0; I < Tmp.size(); ++I) {
    if ((PtrMap >> I) & 1)
      em::writeBarrier(O, Tmp[I]);
    O->setSlot(I, Tmp[I]);
  }
  return O;
}

/// Allocates an untraced byte buffer of \p Bytes (rounded up to slots).
inline Object *newRawArray(size_t Bytes) {
  uint32_t Slots = static_cast<uint32_t>((Bytes + 7) / 8);
  return allocObject(ObjKind::RawArray, /*Mutable=*/true, Slots, 0);
}

/// Allocates a string: a raw array whose slot 0 is the byte length.
inline Object *newString(const char *Data, size_t Len) {
  Object *O = newRawArray(8 + Len);
  O->setSlot(0, static_cast<Slot>(Len));
  std::memcpy(reinterpret_cast<char *>(O->slots() + 1), Data, Len);
  return O;
}

inline size_t strLen(const Object *S) { return S->getSlot(0); }
inline const char *strBytes(const Object *S) {
  return reinterpret_cast<const char *>(S->slots() + 1);
}
inline char *strBytes(Object *S) {
  return reinterpret_cast<char *>(S->slots() + 1);
}

//===----------------------------------------------------------------------===//
// Access (never allocates; raw Object* arguments are safe)
//===----------------------------------------------------------------------===//

/// `!R` — entanglement-checked mutable load.
inline Slot refGet(Object *R) {
  MPL_DASSERT(R->kind() == ObjKind::Ref, "refGet on non-ref");
  Slot V = R->loadSlotAcquire(0);
  em::readBarrier(rt::Runtime::ctx()->CurrentHeap, V);
  return V;
}

/// `R := V` — entanglement-managed mutable store.
inline void refSet(Object *R, Slot V) {
  MPL_DASSERT(R->kind() == ObjKind::Ref, "refSet on non-ref");
  em::writeBarrier(R, V);
  R->storeSlotRelease(0, V);
}

/// Atomic compare-and-swap on a ref cell (Parallel ML's compareAndSwap
/// primitive; the building block of the entangled benchmarks).
inline bool refCas(Object *R, Slot Expected, Slot Desired) {
  MPL_DASSERT(R->kind() == ObjKind::Ref, "refCas on non-ref");
  em::writeBarrier(R, Desired);
  bool Ok = std::atomic_ref<Slot>(R->slots()[0])
                .compare_exchange_strong(Expected, Desired,
                                         std::memory_order_acq_rel);
  return Ok;
}

inline uint32_t arrLen(const Object *A) { return A->length(); }

inline Slot arrGet(Object *A, uint32_t I) {
  MPL_DASSERT(A->kind() == ObjKind::Array, "arrGet on non-array");
  Slot V = A->loadSlotAcquire(I);
  em::readBarrier(rt::Runtime::ctx()->CurrentHeap, V);
  return V;
}

inline void arrSet(Object *A, uint32_t I, Slot V) {
  MPL_DASSERT(A->kind() == ObjKind::Array, "arrSet on non-array");
  em::writeBarrier(A, V);
  A->storeSlotRelease(I, V);
}

/// Array CAS (phase-concurrent hash tables are built on this).
inline bool arrCas(Object *A, uint32_t I, Slot Expected, Slot Desired) {
  MPL_DASSERT(A->kind() == ObjKind::Array, "arrCas on non-array");
  em::writeBarrier(A, Desired);
  return std::atomic_ref<Slot>(A->slots()[I])
      .compare_exchange_strong(Expected, Desired, std::memory_order_acq_rel);
}

/// Immutable record load: no barrier — the paper's shielded fast path.
inline Slot recGet(const Object *R, uint32_t I) {
  MPL_DASSERT(R->kind() == ObjKind::Record, "recGet on non-record");
  return R->getSlot(I);
}

/// Mutable record load/store (barriered like refs).
inline Slot recGetMut(Object *R, uint32_t I) {
  Slot V = R->loadSlotAcquire(I);
  em::readBarrier(rt::Runtime::ctx()->CurrentHeap, V);
  return V;
}
inline void recSetMut(Object *R, uint32_t I, Slot V) {
  MPL_DASSERT(R->isMutable(), "recSetMut on immutable record");
  em::writeBarrier(R, V);
  R->storeSlotRelease(I, V);
}

} // namespace ops
} // namespace mpl

#endif // MPL_CORE_OPS_H
