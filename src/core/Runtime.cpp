//===- core/Runtime.cpp - The mpl-em public runtime API -------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "chaos/ChaosSchedule.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <unordered_map>

using namespace mpl;
using namespace mpl::rt;

namespace {
Runtime *TheRuntime = nullptr;
thread_local WorkerCtx *TlsCtx = nullptr;

Stat PeakResidency("rt.residency.peak");

/// Gauge ids registered by the live Runtime (empty when none exists).
std::vector<int> RtGaugeIds;

/// Emergency-GC hook id registered with the MemoryGovernor (0 = none).
int GovGcHookId = 0;

/// The heap-tree walker behind obs::snapshotHeapTree(). Reads only the
/// per-heap relaxed-atomic gauges plus immutable parent/depth links, so it
/// is safe to run from the MetricsSampler thread or the OOM path while
/// workers fork, join and collect (hh/Heap.h, gauge comment).
std::string heapTreeJson(HeapManager &HM) {
  std::vector<Heap *> All = HM.snapshotHeaps();
  std::unordered_map<const Heap *, int> Id;
  std::vector<Heap *> Live;
  for (Heap *H : All) {
    if (H->isDead())
      continue;
    Id.emplace(H, static_cast<int>(Live.size()));
    Live.push_back(H);
  }
  std::vector<std::vector<int>> Children(Live.size());
  for (size_t I = 0; I < Live.size(); ++I) {
    auto It = Id.find(Live[I]->parent());
    if (It != Id.end())
      Children[It->second].push_back(static_cast<int>(I));
  }
  Pressure P = MemoryGovernor::get().pressure();
  std::string S;
  S += "{\"schema\":\"mpl-heap-tree/1\",";
  S += "\"t_ns\":" + std::to_string(nowNs()) + ",";
  S += "\"pressure_level\":" + std::to_string(static_cast<int>(P)) + ",";
  S += "\"pressure\":\"" + std::string(mpl::pressureName(P)) + "\",";
  S += "\"live_heaps\":" + std::to_string(Live.size()) + ",";
  S += "\"heaps\":[";
  for (size_t I = 0; I < Live.size(); ++I) {
    Heap *H = Live[I];
    if (I)
      S += ",";
    S += "{\"id\":" + std::to_string(I) + ",";
    auto PIt = Id.find(H->parent());
    S += "\"parent\":" +
         std::to_string(PIt == Id.end() ? -1 : PIt->second) + ",";
    S += "\"depth\":" + std::to_string(H->depth()) + ",";
    S += "\"chunk_bytes\":" +
         std::to_string(H->ChunkBytesGauge.load(std::memory_order_relaxed)) +
         ",";
    S += "\"pinned_objects\":" +
         std::to_string(H->PinnedObjsGauge.load(std::memory_order_relaxed)) +
         ",";
    S += "\"pinned_bytes\":" +
         std::to_string(H->PinnedBytesGauge.load(std::memory_order_relaxed)) +
         ",";
    S += "\"active_forks\":" + std::to_string(H->activeForks()) + ",";
    S += "\"children\":[";
    for (size_t C = 0; C < Children[I].size(); ++C) {
      if (C)
        S += ",";
      S += std::to_string(Children[I][C]);
    }
    S += "]}";
  }
  S += "]}";
  return S;
}
} // namespace

Runtime::Runtime(const Config &C)
    : Cfg(C), Sched(Scheduler::Config{C.NumWorkers, C.Profile}) {
  MPL_CHECK(TheRuntime == nullptr, "only one Runtime may exist at a time");
  em::setMode(Cfg.Mode);
  TheRuntime = this;
  // Observability: honour MPL_TRACE / MPL_METRICS on the first Runtime and
  // expose the memory-side gauges to the sampler.
  obs::initFromEnv();
  MemoryGovernor::get().initFromEnv();
  auto &Sampler = obs::MetricsSampler::get();
  RtGaugeIds.push_back(
      Sampler.registerGauge("mm.residency.bytes", [] { return residencyBytes(); }));
  RtGaugeIds.push_back(Sampler.registerGauge(
      "hh.heaps", [this] { return static_cast<int64_t>(Heaps.heapCount()); }));
  RtGaugeIds.push_back(Sampler.registerGauge("mm.pressure.level", [] {
    return static_cast<int64_t>(MemoryGovernor::get().pressure());
  }));
  RtGaugeIds.push_back(Sampler.registerGauge(
      "mm.pinned.bytes", [] { return MemoryGovernor::get().pinnedBytes(); }));
  RtGaugeIds.push_back(Sampler.registerGauge("mm.freelist.bytes", [] {
    return ChunkPool::get().freeListBytes();
  }));
  // Recovery stage 2: the governor forces a local collection of the
  // allocating task's private chain when trimming alone cannot admit a
  // chunk.
  GovGcHookId = MemoryGovernor::get().registerEmergencyGc(
      [this] { return maybeCollect(/*Force=*/true); });
  // Heap-tree introspection: obs cannot see hh, so the walker is injected
  // here (same inversion as the gauges above).
  obs::setHeapTreeProvider([this] { return heapTreeJson(Heaps); });
  // Deadline latching at strand-quantum boundaries: sched cannot see core,
  // so the poll is injected (same inversion again). Non-throwing by
  // contract — it only flips DeadlineCtx::Expired.
  Scheduler::setStrandPollHook(&rt::deadlinePollCurrent);
}

Runtime::~Runtime() {
  Scheduler::setStrandPollHook(nullptr);
  if (GovGcHookId) {
    MemoryGovernor::get().unregisterEmergencyGc(GovGcHookId);
    GovGcHookId = 0;
  }
  auto &Sampler = obs::MetricsSampler::get();
  for (int Id : RtGaugeIds)
    Sampler.unregisterGauge(Id);
  RtGaugeIds.clear();
  TheRuntime = nullptr;
  // Flush env-configured sinks now, at quiescence: the workers still exist
  // (Sched is destroyed after this body) but are idle outside run(), and
  // idle workers emit no trace events. The heap-tree provider is cleared
  // only after the flush so the metrics dump can embed a final snapshot;
  // setHeapTreeProvider blocks until any in-flight snapshot finishes.
  obs::flushEnvSinks();
  obs::setHeapTreeProvider({});
}

Runtime *Runtime::current() { return TheRuntime; }

WorkerCtx *Runtime::ctx() {
  if (!TlsCtx)
    TlsCtx = new WorkerCtx();
  return TlsCtx;
}

void Runtime::beginRun() {
  RootHeap = Heaps.createRoot();
  WorkerCtx *C = ctx();
  C->CurrentHeap = RootHeap;
  C->AllocSinceGc = 0;
  C->LiveAfterGc = 0;
}

void Runtime::finishRootTask() {
  // Runs as the tail of the root task, still on worker 0.
  WorkerCtx *C = ctx();
  C->CurrentHeap = nullptr;
}

void Runtime::endRun() {
  if (RootHeap) {
    RootHeap->releaseAllChunks();
    RootHeap = nullptr;
  }
  // Workers are quiescent between runs (no barriers, joins or collections
  // execute), so this is the race-free point to fold the per-worker
  // profiler shards into the merged table.
  if (obs::profileEnabled())
    obs::Profiler::get().mergeThreadShards();
}

bool Runtime::maybeCollect(bool Force) {
  WorkerCtx *C = ctx();
  if (!C->CurrentHeap)
    return false;
  // Schedule fuzzing: the seed can force a collection at any poll, up to
  // GC-at-every-allocation.
  if (chaos::forceGcNow())
    Force = true;
  int64_t Budget =
      std::max(Cfg.GcMinBytes,
               static_cast<int64_t>(Cfg.GcFactor *
                                    static_cast<double>(C->LiveAfterGc)));
  // Under memory pressure the governor shrinks every task's allocation
  // budget (halving per level), so collections come sooner and residency
  // is pushed back below the watermarks.
  Budget = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(Budget) *
                              MemoryGovernor::get().allocBudgetScale()));
  if (!Force && C->AllocSinceGc < Budget)
    return false;
  GcOutcome Out = Gc.collectChain(C->CurrentHeap, C->Roots);
  C->AllocSinceGc = 0;
  C->LiveAfterGc = Out.liveBytes();
  PeakResidency.noteMax(residencyBytes());
  return true;
}

int64_t Runtime::residencyBytes() {
  return ChunkPool::get().outstandingBytes();
}
