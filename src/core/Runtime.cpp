//===- core/Runtime.cpp - The mpl-em public runtime API -------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "chaos/ChaosSchedule.h"
#include "support/Stats.h"

#include <algorithm>

using namespace mpl;
using namespace mpl::rt;

namespace {
Runtime *TheRuntime = nullptr;
thread_local WorkerCtx *TlsCtx = nullptr;

Stat PeakResidency("rt.residency.peak");
} // namespace

Runtime::Runtime(const Config &C)
    : Cfg(C), Sched(Scheduler::Config{C.NumWorkers, C.Profile}) {
  MPL_CHECK(TheRuntime == nullptr, "only one Runtime may exist at a time");
  em::setMode(Cfg.Mode);
  TheRuntime = this;
}

Runtime::~Runtime() { TheRuntime = nullptr; }

Runtime *Runtime::current() { return TheRuntime; }

WorkerCtx *Runtime::ctx() {
  if (!TlsCtx)
    TlsCtx = new WorkerCtx();
  return TlsCtx;
}

void Runtime::beginRun() {
  RootHeap = Heaps.createRoot();
  WorkerCtx *C = ctx();
  C->CurrentHeap = RootHeap;
  C->AllocSinceGc = 0;
  C->LiveAfterGc = 0;
}

void Runtime::finishRootTask() {
  // Runs as the tail of the root task, still on worker 0.
  WorkerCtx *C = ctx();
  C->CurrentHeap = nullptr;
}

void Runtime::endRun() {
  if (RootHeap) {
    RootHeap->releaseAllChunks();
    RootHeap = nullptr;
  }
}

bool Runtime::maybeCollect(bool Force) {
  WorkerCtx *C = ctx();
  if (!C->CurrentHeap)
    return false;
  // Schedule fuzzing: the seed can force a collection at any poll, up to
  // GC-at-every-allocation.
  if (chaos::forceGcNow())
    Force = true;
  int64_t Budget =
      std::max(Cfg.GcMinBytes,
               static_cast<int64_t>(Cfg.GcFactor *
                                    static_cast<double>(C->LiveAfterGc)));
  if (!Force && C->AllocSinceGc < Budget)
    return false;
  GcOutcome Out = Gc.collectChain(C->CurrentHeap, C->Roots);
  C->AllocSinceGc = 0;
  C->LiveAfterGc = Out.liveBytes();
  PeakResidency.noteMax(residencyBytes());
  return true;
}

int64_t Runtime::residencyBytes() {
  return ChunkPool::get().outstandingBytes();
}
