//===- core/Deadline.cpp - Request deadlines and cancellation -------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Deadline.h"

#include "core/Runtime.h"

#include <string>

using namespace mpl;

DeadlineError::DeadlineError(int64_t OverrunNs)
    : std::runtime_error("deadline expired (overrun " +
                         std::to_string(OverrunNs) + "ns)"),
      Overrun(OverrunNs) {}

void rt::checkDeadline() {
  WorkerCtx *C = Runtime::ctx();
  DeadlineCtx *D = C->CurrentDeadline;
  if (!D || !D->poll())
    return;
  int64_t DL = D->DeadlineNs.load(std::memory_order_relaxed);
  int64_t Overrun = DL ? std::max<int64_t>(0, nowNs() - DL) : 0;
  throw DeadlineError(Overrun);
}

void rt::deadlinePollCurrent() {
  WorkerCtx *C = Runtime::ctx();
  if (DeadlineCtx *D = C->CurrentDeadline)
    D->poll();
}

rt::ScopedDeadline::ScopedDeadline(DeadlineCtx *D)
    : Ctx(Runtime::ctx()), Saved(Ctx->CurrentDeadline) {
  Ctx->CurrentDeadline = D;
}

rt::ScopedDeadline::~ScopedDeadline() { Ctx->CurrentDeadline = Saved; }
