//===- core/Verify.cpp - Runtime invariant cross-checking -----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// em::verifyInvariants: walks every heap the manager has ever created and
/// cross-checks the entanglement bookkeeping against the heap structure.
/// The checks are deliberately redundant with what the barriers and joins
/// maintain — that redundancy is the point: a lost pin, a leaked release,
/// or a miscounted byte shows up as a disagreement between two independent
/// records of the same fact.
///
//===----------------------------------------------------------------------===//

#include "core/Em.h"

#include "hh/Heap.h"
#include "mm/Chunk.h"
#include "core/Runtime.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

using namespace mpl;

namespace mpl {
namespace em {

namespace {

void violation(InvariantReport &R, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  R.Violations.emplace_back(Buf);
}

} // namespace

std::string InvariantReport::str() const {
  std::string Out;
  for (const std::string &V : Violations) {
    Out += V;
    Out += '\n';
  }
  return Out;
}

InvariantReport verifyInvariants(HeapManager &HM, bool ExpectFullyJoined) {
  InvariantReport R;
  std::vector<Heap *> Heaps = HM.snapshotHeaps();

  // Pinned entries can appear in at most one live heap's set (joins move
  // them), but be defensive: dedup before summing bytes.
  std::unordered_set<const Object *> SeenPinned;
  int64_t LivePinnedBytes = 0;
  int64_t LivePinnedObjects = 0;

  for (Heap *H : Heaps) {
    // Structural checks that need no lock (atomics / immutable fields).
    if (H->parent() && H->depth() != H->parent()->depth() + 1)
      violation(R, "heap depth %u is not parent depth %u + 1", H->depth(),
                H->parent()->depth());
    int Forks = H->activeForks();
    if (Forks < 0 || Forks > 2)
      violation(R, "heap at depth %u has ActiveForks %d (expected 0..2)",
                H->depth(), Forks);

    std::lock_guard<std::mutex> G(H->PinLock);

    if (H->isDead()) {
      // A joined heap has been emptied into its parent: owning chunks or
      // pinned entries afterwards means the join lost track of them.
      if (H->Chunks)
        violation(R, "dead heap at depth %u still owns chunks", H->depth());
      if (!H->Pinned.empty())
        violation(R, "dead heap at depth %u still holds %zu pinned entries",
                  H->depth(), H->Pinned.size());
      if (Forks != 0)
        violation(R, "dead heap at depth %u has ActiveForks %d", H->depth(),
                  Forks);
      continue;
    }

    for (Chunk *C = H->Chunks; C; C = C->Next)
      if (C->Owner.load(std::memory_order_acquire) != H)
        violation(R, "chunk in depth-%u heap's list has a different owner",
                  H->depth());

    for (Object *O : H->Pinned) {
      if (!O->isPinned())
        continue; // Stale duplicate already released by a join.
      // A pin's unpin depth names the join that releases it; an entry
      // deeper than its heap could never be released by any join of that
      // heap — the pin would leak.
      if (O->unpinDepth() > H->depth())
        violation(R,
                  "pinned object has unpin depth %u above its heap depth %u",
                  O->unpinDepth(), H->depth());
      if (!SeenPinned.insert(O).second)
        continue;
      LivePinnedBytes += static_cast<int64_t>(O->sizeBytes());
      ++LivePinnedObjects;
    }
  }

  // The counters and the pinned sets are independent records of the same
  // events; they must agree byte for byte.
  CounterSnapshot S = Counts.snapshot();
  if (S.livePinnedBytes() != LivePinnedBytes)
    violation(R,
              "counter live pinned bytes %" PRId64
              " != %" PRId64 " bytes found in live pinned sets",
              S.livePinnedBytes(), LivePinnedBytes);
  if (S.livePinnedObjects() != LivePinnedObjects)
    violation(R,
              "counter live pinned objects %" PRId64
              " != %" PRId64 " found in live pinned sets",
              S.livePinnedObjects(), LivePinnedObjects);

  // Monotonicity: cumulative counts never go negative, and nothing can be
  // released more often than it was pinned.
  if (S.PinnedBytes < 0 || S.UnpinnedBytes < 0 || S.PinnedObjects < 0 ||
      S.UnpinnedObjects < 0 || S.EntangledReads < 0)
    violation(R, "negative cumulative counter");
  if (S.UnpinnedObjects > S.PinnedObjects)
    violation(R, "more unpins (%" PRId64 ") than pins (%" PRId64 ")",
              S.UnpinnedObjects, S.PinnedObjects);
  if (S.UnpinnedBytes > S.PinnedBytes)
    violation(R, "more unpinned bytes (%" PRId64 ") than pinned (%" PRId64 ")",
              S.UnpinnedBytes, S.PinnedBytes);

  // Pin-before-publish: an entangled read must never find its target
  // unpinned (see Counters::EntangledReadsUnpinned).
  if (S.EntangledReadsUnpinned != 0)
    violation(R,
              "%" PRId64 " entangled read(s) found their target unpinned "
              "(pin-before-publish violated)",
              S.EntangledReadsUnpinned);

  if (ExpectFullyJoined && LivePinnedObjects != 0)
    violation(R,
              "%" PRId64 " object(s) (%" PRId64 " bytes) still pinned after "
              "the task tree fully joined",
              LivePinnedObjects, LivePinnedBytes);

  return R;
}

InvariantReport verifyInvariants(bool ExpectFullyJoined) {
  rt::Runtime *R = rt::Runtime::current();
  MPL_CHECK(R, "verifyInvariants outside a Runtime");
  return verifyInvariants(R->heaps(), ExpectFullyJoined);
}

} // namespace em
} // namespace mpl
