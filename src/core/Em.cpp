//===- core/Em.cpp - Entanglement management barriers ---------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Em.h"

#include "chaos/ChaosSchedule.h"
#include "mm/MemoryGovernor.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

using namespace mpl;

namespace mpl {
namespace em {

std::atomic<Mode> CurrentMode{Mode::Manage};

namespace {
Stat StatEntangledReads("em.reads.entangled");
Stat StatDownPins("em.pins.down");
Stat StatCrossPins("em.pins.cross");
Stat StatHolderPins("em.pins.holder");
Stat StatPinnedObjects("em.pins.objects");
Stat StatPinnedBytes("em.pinned.bytes");
Stat StatDetectRejections("em.detect.rejections");
Stat StatContCaptured("em.cont.captured");
Stat StatContResumed("em.cont.resumed");

const char *objKindName(ObjKind K) {
  switch (K) {
  case ObjKind::Record:
    return "record";
  case ObjKind::Array:
    return "array";
  case ObjKind::RawArray:
    return "raw_array";
  case ObjKind::Ref:
    return "ref";
  }
  return "?";
}

std::string describeEntanglement(EntanglementError::Site S,
                                 uint32_t ReaderDepth, uint32_t PointeeDepth,
                                 ObjKind Kind) {
  char Buf[192];
  if (S == EntanglementError::Site::Write)
    std::snprintf(Buf, sizeof(Buf),
                  "entanglement created by write (Detect mode): cross-pointer "
                  "to a %s at depth %u from holder at depth %u",
                  objKindName(Kind), PointeeDepth, ReaderDepth);
  else
    std::snprintf(Buf, sizeof(Buf),
                  "entanglement detected (Detect mode models MPL before this "
                  "paper, which rejects entangled executions): read of a %s "
                  "at depth %u by reader at depth %u",
                  objKindName(Kind), PointeeDepth, ReaderDepth);
  return Buf;
}
} // namespace

EntanglementError::EntanglementError(Site S, uint32_t ReaderDepth,
                                     uint32_t PointeeDepth, ObjKind K)
    : std::runtime_error(
          describeEntanglement(S, ReaderDepth, PointeeDepth, K)),
      Where(S), Reader(ReaderDepth), Pointee(PointeeDepth), Kind(K) {}

void setMode(Mode M) { CurrentMode.store(M, std::memory_order_relaxed); }

void writeBarrierSlow(Object *X, Heap *HX, Object *P) {
  obs::emit(obs::Ev::WriteBarrierSlow);
  // Schedule fuzzing: stretch the window between the depth comparison and
  // the pin, where a concurrent join could re-home P's chunk.
  chaos::preemptPoint(chaos::Point::WriteBarrier);
  Heap *HP = Heap::of(P);
  uint32_t PinDepth = UINT32_MAX;
  obs::ProfileSite *PinSite = nullptr;

  if (HX != HP) {
    if (Heap::isAncestorOf(HX, HP)) {
      // Down-pointer: X is shallower, so tasks concurrent with P's
      // allocator may read P through X.
      PinDepth = HX->depth();
      Counts.DownPointerPins.fetch_add(1, std::memory_order_relaxed);
      StatDownPins.inc();
      PinSite = &MPL_SITE("em.pin.down");
    } else if (!Heap::isAncestorOf(HP, HX)) {
      // Cross-pointer between concurrent heaps: X itself was obtained via
      // entanglement; P becomes reachable from that entangled region.
      PinDepth = Heap::lcaDepth(HX, HP);
      Counts.CrossPointerPins.fetch_add(1, std::memory_order_relaxed);
      StatCrossPins.inc();
      PinSite = &MPL_SITE("em.pin.cross");
    }
    // Up-pointer (HP ancestor of HX): always disentangled, nothing to do —
    // unless X is pinned, handled below.
  }

  if (X->isPinned()) {
    // X is already visible to concurrent tasks; anything stored into it is
    // published to them and must survive, in place, at least as long as X.
    // Attribute the pin to the holder class when the holder's depth is the
    // binding constraint (or when no pointer class fired at all).
    if (X->unpinDepth() < PinDepth)
      PinSite = &MPL_SITE("em.pin.holder");
    PinDepth = std::min(PinDepth, X->unpinDepth());
    Counts.PinnedHolderPins.fetch_add(1, std::memory_order_relaxed);
    StatHolderPins.inc();
  }

  if (PinDepth == UINT32_MAX)
    return;
  if (mode() == Mode::Detect && PinDepth < HP->depth() &&
      !Heap::isAncestorOf(HX, HP)) {
    // Pre-paper MPL permits down-pointers (they are the remembered-set
    // case) but has no mechanism for cross-pointers. Recoverable: the
    // strand unwinds and Runtime::run rethrows.
    StatDetectRejections.inc();
    throw EntanglementError(EntanglementError::Site::Write, HX->depth(),
                            HP->depth(), P->kind());
  }
  if (chaos::faultFires(chaos::Fault::SkipPin))
    return; // Test-only injected bug: publish without pinning.
  if (HP->addPinned(P, PinDepth, PinSite)) {
    Counts.PinnedObjects.fetch_add(1, std::memory_order_relaxed);
    Counts.PinnedBytes.fetch_add(static_cast<int64_t>(P->sizeBytes()),
                                 std::memory_order_relaxed);
    StatPinnedObjects.inc();
    StatPinnedBytes.add(static_cast<int64_t>(P->sizeBytes()));
    obs::spanNotePin();
  }
}

void readBarrierSlow(Heap *Reader, Object *P, Heap *HP) {
  obs::emit(obs::Ev::ReadBarrierSlow);
  // Schedule fuzzing: hold the reader between detection and the deepen so
  // joins/collections can race the pin adjustment.
  chaos::preemptPoint(chaos::Point::ReadBarrier);
  Counts.EntangledReads.fetch_add(1, std::memory_order_relaxed);
  StatEntangledReads.inc();
  if (mode() == Mode::Detect) {
    // Recoverable rejection (see EntanglementError): the read barrier has
    // taken no locks yet, so the strand can unwind cleanly.
    StatDetectRejections.inc();
    throw EntanglementError(EntanglementError::Site::Read, Reader->depth(),
                            HP->depth(), P->kind());
  }
  // Manage mode: the object is already pinned (pin-before-publish: the
  // write that made it visible pinned it). Deepen the pin to the LCA of
  // the reader and the object's heap in case the reader escapes higher
  // than the writer anticipated.
  if (!P->isPinned())
    // Pin-before-publish violated: a write barrier lost this object's pin.
    // Count it (the fuzz suite asserts zero) and fall through to the
    // defensive re-pin below so the mutator can still make progress.
    Counts.EntangledReadsUnpinned.fetch_add(1, std::memory_order_relaxed);
  obs::profileEvent(MPL_SITE("em.read.entangled"),
                    static_cast<int64_t>(P->sizeBytes()), HP->depth());
  // Span ledger: count the entangled read against the executing task and
  // the pml source line whose instruction triggered the barrier.
  obs::spanNoteEmRead();
  uint32_t Lca = Heap::lcaDepth(Reader, HP);
  if (P->isPinned() && P->unpinDepth() <= Lca)
    return;
  if (HP->addPinned(P, Lca, &MPL_SITE("em.pin.read"))) {
    Counts.PinnedObjects.fetch_add(1, std::memory_order_relaxed);
    Counts.PinnedBytes.fetch_add(static_cast<int64_t>(P->sizeBytes()),
                                 std::memory_order_relaxed);
    StatPinnedObjects.inc();
    StatPinnedBytes.add(static_cast<int64_t>(P->sizeBytes()));
    obs::spanNotePin();
  }
}

bool pinContCapture(Object *P, Heap *CaptureHeap) {
  if (mode() != Mode::Manage)
    return false;
  uint32_t Depth = CaptureHeap->depth();
  if (Depth == 0)
    return false; // A depth-0 pin would outlive every join; GC keeps the
                  // root heap's objects alive through the rooted cont anyway.
  if (Heap::of(P) != CaptureHeap)
    return false; // Ancestor-heap objects: ordinary barriers cover them.
  if (!CaptureHeap->addPinned(P, Depth, &MPL_SITE("em.cont.capture")))
    return false; // Already pinned (entanglement or an earlier capture).
  Counts.PinnedObjects.fetch_add(1, std::memory_order_relaxed);
  Counts.PinnedBytes.fetch_add(static_cast<int64_t>(P->sizeBytes()),
                               std::memory_order_relaxed);
  StatPinnedObjects.inc();
  StatPinnedBytes.add(static_cast<int64_t>(P->sizeBytes()));
  return true;
}

bool unpinContResume(Object *P, uint32_t CaptureDepth) {
  if (mode() != Mode::Manage)
    return false;
  Heap *HP = Heap::of(P);
  std::lock_guard<std::mutex> G(HP->PinLock);
  if (!P->isPinned() || P->unpinDepth() != CaptureDepth)
    return false; // Released by a join already, or deepened by a barrier —
                  // entanglement owns the pin now; the join rule releases it.
  // Mirror the join rule's release bookkeeping (hh/Heap.cpp), plus the
  // per-heap gauge decrements a join does wholesale.
  int64_t Size = static_cast<int64_t>(P->sizeBytes());
  Counts.UnpinnedObjects.fetch_add(1, std::memory_order_relaxed);
  Counts.UnpinnedBytes.fetch_add(Size, std::memory_order_relaxed);
  MemoryGovernor::get().notePinnedBytes(-Size);
  obs::emit(obs::Ev::Unpin, P->sizeBytes());
  obs::profileUnpin(P, Size, CaptureDepth);
  HP->PinnedObjsGauge.fetch_sub(1, std::memory_order_relaxed);
  HP->PinnedBytesGauge.fetch_sub(Size, std::memory_order_relaxed);
  P->unpin();
  // The stale Pinned-vector entry is tolerated: joins and the invariant
  // checker both skip entries whose object is no longer pinned.
  return true;
}

void noteContCaptured(int64_t Bytes, uint32_t Depth) {
  Counts.ContCaptured.fetch_add(1, std::memory_order_relaxed);
  StatContCaptured.inc();
  obs::emit(obs::Ev::ContCapture, static_cast<uint64_t>(Bytes), Depth);
}

void noteContResumed(int64_t Bytes, uint32_t Depth) {
  Counts.ContResumed.fetch_add(1, std::memory_order_relaxed);
  StatContResumed.inc();
  obs::emit(obs::Ev::ContResume, static_cast<uint64_t>(Bytes), Depth);
}

} // namespace em
} // namespace mpl
