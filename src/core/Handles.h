//===- core/Handles.h - Rooted GC handles ----------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GC-safe handles. A Local registers one slot on the calling thread's
/// shadow stack; the collector traces and updates it. Any object reference
/// held across an allocation (every ops::new* call may collect) must live
/// in a Local (or a RootedBuf).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_HANDLES_H
#define MPL_CORE_HANDLES_H

#include "core/Runtime.h"
#include "mm/Object.h"

#include <cstddef>

namespace mpl {

/// A single rooted slot. Handles are strictly scoped (LIFO), which the
/// shadow stack asserts in debug builds.
class Local {
public:
  explicit Local(Object *O = nullptr) : Val(Object::fromPointer(O)) {
    rt::Runtime::ctx()->Roots.pushSlot(&Val);
  }
  explicit Local(Slot V) : Val(V) {
    rt::Runtime::ctx()->Roots.pushSlot(&Val);
  }
  ~Local() { rt::Runtime::ctx()->Roots.popSlot(&Val); }

  Local(const Local &) = delete;
  Local &operator=(const Local &) = delete;

  Object *get() const { return Object::asPointer(Val); }
  Slot slot() const { return Val; }

  void set(Object *O) { Val = Object::fromPointer(O); }
  void setSlot(Slot V) { Val = V; }

private:
  Slot Val;
};

/// A small fixed buffer of rooted slots, for allocation helpers that take
/// several potentially-pointer arguments.
class RootedBuf {
public:
  static constexpr size_t Capacity = Object::MaxRecordFields;

  RootedBuf() : Base(Buf) {
    rt::Runtime::ctx()->Roots.pushRange(&Base, &Count);
  }
  ~RootedBuf() { rt::Runtime::ctx()->Roots.popRange(&Base); }

  RootedBuf(const RootedBuf &) = delete;
  RootedBuf &operator=(const RootedBuf &) = delete;

  void push(Slot V) {
    MPL_DASSERT(Count < Capacity, "RootedBuf overflow");
    Buf[Count++] = V;
  }

  Slot operator[](size_t I) const { return Buf[I]; }
  size_t size() const { return Count; }

private:
  Slot Buf[Capacity] = {};
  Slot *Base;
  size_t Count = 0;
};

} // namespace mpl

#endif // MPL_CORE_HANDLES_H
