//===- core/Em.h - Entanglement management barriers ------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core mechanism: read and write barriers that (1) detect
/// entanglement at the granularity of individual objects, and (2) manage it
/// by *pinning* objects before they can become visible to concurrent tasks
/// ("pin before publish").
///
/// Write barrier (on every mutable pointer store `X.f := P`):
///  - down-pointer (heap(X) strictly shallower ancestor of heap(P)): any
///    task that can see X may later read P, so P is pinned with unpin depth
///    = depth(heap(X));
///  - cross-pointer (heaps concurrent): P is pinned at the LCA depth;
///  - store into an already-pinned X: X itself is visible to concurrent
///    tasks, so P inherits X's exposure and is pinned at X's unpin depth.
/// Pins are *sticky*: even if the field is overwritten, P stays pinned (and
/// therefore retained, in place) until a join reaches its unpin depth —
/// that retention is precisely the paper's space cost of entanglement.
///
/// Read barrier (on every mutable pointer load yielding P): if heap(P) is
/// not an ancestor of the reader's heap, the read is *entangled*. In
/// Detect mode (modeling MPL before this paper, ICFP 2022) this is a fatal
/// error; in Manage mode it is counted and P's unpin depth is lowered to
/// the LCA if needed. Disentangled programs pay exactly one ancestor check
/// per mutable pointer load and never take a lock — the "shielding" the
/// paper claims, measured by bench_fig_ablation.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_EM_H
#define MPL_CORE_EM_H

#include "hh/Heap.h"
#include "mm/Object.h"

#include <atomic>
#include <cstdint>

namespace mpl {
namespace em {

/// Entanglement policy for the whole runtime.
enum class Mode : uint8_t {
  Off,    ///< No barriers. Sound only for disentangled programs (ablation).
  Detect, ///< Detect entanglement and abort (pre-paper MPL behaviour).
  Manage, ///< Full entanglement management (the paper; default).
};

/// Current mode; relaxed-read on the barrier fast path.
extern std::atomic<Mode> CurrentMode;

inline Mode mode() { return CurrentMode.load(std::memory_order_relaxed); }
void setMode(Mode M);

/// Counters exposed for tests/benches (see also support/Stats registry).
struct Counters {
  std::atomic<int64_t> EntangledReads{0};
  std::atomic<int64_t> DownPointerPins{0};
  std::atomic<int64_t> CrossPointerPins{0};
  std::atomic<int64_t> PinnedHolderPins{0};
  std::atomic<int64_t> PinnedBytes{0};
};
extern Counters Counts;

/// Slow path of the write barrier; see writeBarrier.
void writeBarrierSlow(Object *X, Heap *HX, Object *P);

/// Must run before storing pointer value \p V into mutable object \p X.
inline void writeBarrier(Object *X, Slot V) {
  if (mode() == Mode::Off)
    return;
  Object *P = Object::asPointer(V);
  if (!P)
    return;
  Heap *HX = Heap::of(X);
  // Fast path: intra-heap store into an unexposed object needs nothing.
  if (HX == Heap::of(P) && !X->isPinned())
    return;
  writeBarrierSlow(X, HX, P);
}

/// Slow path of the read barrier; see readBarrier.
void readBarrierSlow(Heap *Reader, Object *P, Heap *HP);

/// Must run after loading pointer value \p V from a mutable object, with
/// \p Reader the reading task's current heap.
inline void readBarrier(Heap *Reader, Slot V) {
  if (mode() == Mode::Off)
    return;
  Object *P = Object::asPointer(V);
  if (!P)
    return;
  Heap *HP = Heap::of(P);
  if (Heap::isAncestorOf(HP, Reader))
    return; // Disentangled: the common, cheap case.
  readBarrierSlow(Reader, P, HP);
}

} // namespace em
} // namespace mpl

#endif // MPL_CORE_EM_H
