//===- core/Em.h - Entanglement management barriers ------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core mechanism: read and write barriers that (1) detect
/// entanglement at the granularity of individual objects, and (2) manage it
/// by *pinning* objects before they can become visible to concurrent tasks
/// ("pin before publish").
///
/// Write barrier (on every mutable pointer store `X.f := P`):
///  - down-pointer (heap(X) strictly shallower ancestor of heap(P)): any
///    task that can see X may later read P, so P is pinned with unpin depth
///    = depth(heap(X));
///  - cross-pointer (heaps concurrent): P is pinned at the LCA depth;
///  - store into an already-pinned X: X itself is visible to concurrent
///    tasks, so P inherits X's exposure and is pinned at X's unpin depth.
/// Pins are *sticky*: even if the field is overwritten, P stays pinned (and
/// therefore retained, in place) until a join reaches its unpin depth —
/// that retention is precisely the paper's space cost of entanglement.
///
/// Read barrier (on every mutable pointer load yielding P): if heap(P) is
/// not an ancestor of the reader's heap, the read is *entangled*. In
/// Detect mode (modeling MPL before this paper, ICFP 2022) this is a fatal
/// error; in Manage mode it is counted and P's unpin depth is lowered to
/// the LCA if needed. Disentangled programs pay exactly one ancestor check
/// per mutable pointer load and never take a lock — the "shielding" the
/// paper claims, measured by bench_fig_ablation.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_EM_H
#define MPL_CORE_EM_H

#include "hh/Heap.h"
#include "mm/Object.h"
#include "support/EmCounters.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpl {
namespace em {

/// Entanglement policy for the whole runtime.
enum class Mode : uint8_t {
  Off,    ///< No barriers. Sound only for disentangled programs (ablation).
  Detect, ///< Detect entanglement and fail (pre-paper MPL behaviour).
  Manage, ///< Full entanglement management (the paper; default).
};

/// Recoverable Detect-mode failure: pre-paper MPL rejects entangled
/// executions, and this runtime models that rejection as a structured
/// error instead of a process abort. Thrown by the barrier slow paths,
/// propagated through the rt::par joins, and rethrown by Runtime::run —
/// so Detect mode is usable as a CI gate for disentanglement.
class EntanglementError : public std::runtime_error {
public:
  /// Which barrier rejected the execution.
  enum class Site : uint8_t {
    Read, ///< Entangled read: pointee's heap not an ancestor of the reader.
    Write ///< Cross-pointer write: no pre-paper mechanism can handle it.
  };

  EntanglementError(Site S, uint32_t ReaderDepth, uint32_t PointeeDepth,
                    ObjKind Kind);

  Site site() const { return Where; }
  /// Depth of the heap doing the access (reader / holder heap).
  uint32_t readerDepth() const { return Reader; }
  /// Depth of the heap owning the entangled object.
  uint32_t pointeeDepth() const { return Pointee; }
  /// Kind of the entangled object.
  ObjKind objectKind() const { return Kind; }

private:
  Site Where;
  uint32_t Reader;
  uint32_t Pointee;
  ObjKind Kind;
};

/// Current mode; relaxed-read on the barrier fast path.
extern std::atomic<Mode> CurrentMode;

inline Mode mode() { return CurrentMode.load(std::memory_order_relaxed); }
void setMode(Mode M);

// Counters / CounterSnapshot (and the global `Counts`) live in
// support/EmCounters.h so the join rule in hh/ can account unpins into the
// same structure the barriers pin into.

/// One invariant-checker run: empty Violations means every cross-checked
/// runtime invariant held.
struct InvariantReport {
  std::vector<std::string> Violations;
  bool ok() const { return Violations.empty(); }
  /// All violations joined into one printable block.
  std::string str() const;
};

/// Cross-checks the runtime's entanglement and heap invariants:
///  - every live pinned object's unpin depth is <= the depth of the heap
///    holding it (a pin survives exactly until its join);
///  - the PinnedBytes/UnpinnedBytes counters balance the live pinned sets
///    byte for byte;
///  - dead (joined) heaps own no chunks and no pinned entries;
///  - ActiveForks values are sane and chunk ownership is consistent;
///  - counters are monotone (pins >= unpins, nothing negative).
///
/// With \p ExpectFullyJoined, additionally requires that no live pin
/// remains anywhere — true exactly when the task tree has joined back to
/// the root (every unpin depth has been reached), e.g. between top-level
/// phases. This is what catches a join that "forgets" to release.
///
/// Takes each heap's PinLock one at a time; call it at quiescent points
/// (between top-level phases, after joins) — not from inside a barrier.
InvariantReport verifyInvariants(HeapManager &HM,
                                 bool ExpectFullyJoined = false);

/// Convenience overload for the current Runtime's heaps (aborts outside a
/// Runtime). Declared here, implemented in Verify.cpp.
InvariantReport verifyInvariants(bool ExpectFullyJoined = false);

/// Slow path of the write barrier; see writeBarrier.
void writeBarrierSlow(Object *X, Heap *HX, Object *P);

/// Must run before storing pointer value \p V into mutable object \p X.
inline void writeBarrier(Object *X, Slot V) {
  if (mode() == Mode::Off)
    return;
  Object *P = Object::asPointer(V);
  if (!P)
    return;
  Heap *HX = Heap::of(X);
  // Fast path: intra-heap store into an unexposed object needs nothing.
  if (HX == Heap::of(P) && !X->isPinned())
    return;
  writeBarrierSlow(X, HX, P);
}

/// Slow path of the read barrier; see readBarrier.
void readBarrierSlow(Heap *Reader, Object *P, Heap *HP);

/// Must run after loading pointer value \p V from a mutable object, with
/// \p Reader the reading task's current heap.
inline void readBarrier(Heap *Reader, Slot V) {
  if (mode() == Mode::Off)
    return;
  Object *P = Object::asPointer(V);
  if (!P)
    return;
  Heap *HP = Heap::of(P);
  if (Heap::isAncestorOf(HP, Reader))
    return; // Disentangled: the common, cheap case.
  readBarrierSlow(Reader, P, HP);
}

//===--------------------------------------------------------------------===//
// First-class continuations (pml effect handlers; DESIGN.md §13).
//
// A suspending strand captures its frame chain into a heap continuation
// object. The handler may drop that continuation, or resume it later —
// possibly from a different worker, inside a par branch forked after the
// capture. Until then the captured objects must survive *in place*: a
// local collection of the capture heap knows nothing about the snapshot
// and would otherwise move or reclaim them.
//===--------------------------------------------------------------------===//

/// Capture side of the continuation pin protocol: pins \p P at the capture
/// heap's own depth (attribution site "em.cont.capture"). Only objects that
/// live in \p CaptureHeap itself need this — ancestor-heap objects are
/// reachable by ancestors regardless and are covered by the ordinary
/// barrier discipline. No-op (returns false) in Detect/Off mode, at depth 0
/// (a depth-0 pin would never reach an unpin depth), or when \p P was
/// already pinned. Returns true exactly when this call newly pinned P, so
/// the capturer can record which pins it owns (and may release on resume).
bool pinContCapture(Object *P, Heap *CaptureHeap);

/// Resume side: releases a pin taken by pinContCapture, in place, without
/// waiting for the join. Only sound when the caller has established that
/// the continuation object itself was never published cross-heap (its pin
/// bit is sticky, so !isPinned() proves that) — then every path to \p P
/// runs through heaps that have the capture heap as ancestor, and the pin
/// is pure retention. Declines (returns false) when P's unpin depth no
/// longer equals \p CaptureDepth: a barrier deepened the pin since capture,
/// so entanglement owns it now and the join rule must release it.
bool unpinContResume(Object *P, uint32_t CaptureDepth);

/// Accounting for one capture / resume event: em.cont.* counters, stats
/// and trace events. \p Bytes is the continuation object's size.
void noteContCaptured(int64_t Bytes, uint32_t Depth);
void noteContResumed(int64_t Bytes, uint32_t Depth);

} // namespace em
} // namespace mpl

#endif // MPL_CORE_EM_H
