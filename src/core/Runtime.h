//===- core/Runtime.h - The mpl-em public runtime API ----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public embedding API. A Runtime owns the scheduler, the heap
/// hierarchy, and the collector. User code runs inside Runtime::run and
/// uses rt::par for fork-join parallelism; every par gives each branch a
/// fresh child heap and merges (joins) the heaps afterwards, driving the
/// unpinning of entanglement candidates whose unpin depth is reached.
///
/// Typical use:
/// \code
///   mpl::rt::Runtime R({.NumWorkers = 4});
///   R.run([] {
///     mpl::Local A(mpl::ops::newArray(1000, mpl::ops::boxInt(0)));
///     auto [L, Rr] = mpl::rt::par([&] { ... return Slot; },
///                                 [&] { ... return Slot; });
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_RUNTIME_H
#define MPL_CORE_RUNTIME_H

#include "core/Deadline.h"
#include "core/Em.h"
#include "core/WorkerCtx.h"
#include "gc/Collector.h"
#include "hh/Heap.h"
#include "mm/MemoryGovernor.h"
#include "obs/Span.h"
#include "sched/Scheduler.h"

#include <cstdint>
#include <exception>
#include <utility>

namespace mpl {
namespace rt {

/// Runtime configuration.
struct Config {
  int NumWorkers = 1;
  em::Mode Mode = em::Mode::Manage;

  /// Collection policy: collect the private chain once it has allocated
  /// more than max(GcMinBytes, GcFactor * live-after-last-GC).
  int64_t GcMinBytes = int64_t(1) << 21;
  double GcFactor = 2.0;

  /// Enable the work-span profiler (adds one clock read per fork).
  bool Profile = true;
};

/// The runtime instance. At most one may exist at a time.
class Runtime {
public:
  explicit Runtime(const Config &Cfg);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  static Runtime *current();

  /// Runs \p Root as the top-level task (fresh depth-0 heap) and returns
  /// the work-span measurement of the computation.
  ///
  /// Recoverable runtime errors (mpl::OutOfMemoryError once the governor's
  /// recovery ladder is spent, em::EntanglementError in Detect mode) unwind
  /// the failing strand, propagate through the rt::par joins, and are
  /// rethrown here after the run's heaps are torn down — the Runtime stays
  /// usable for another run().
  template <typename Fn> WorkSpan run(Fn &&Root) {
    beginRun();
    std::exception_ptr Err;
    WorkSpan WS = Sched.run([&] {
      try {
        Root();
      } catch (...) {
        Err = std::current_exception();
      }
      finishRootTask();
    });
    endRun();
    if (Err)
      std::rethrow_exception(Err);
    return WS;
  }

  /// Request-scoped run entry: like run(), but attaches \p DL to the root
  /// strand for the duration, so rt::checkDeadline() fires inside \p Root
  /// and all its par descendants. A null \p DL degrades to plain run().
  template <typename Fn> WorkSpan runWithDeadline(DeadlineCtx *DL, Fn &&Root) {
    return run([&] {
      ScopedDeadline SD(DL);
      checkDeadline();
      Root();
    });
  }

  /// The mutator context of the calling thread (created on first use).
  static WorkerCtx *ctx();

  Scheduler &scheduler() { return Sched; }
  HeapManager &heaps() { return Heaps; }
  Collector &collector() { return Gc; }
  const Config &config() const { return Cfg; }

  /// Runs the collection policy for the calling thread; collects the
  /// private chain when the allocation budget is exhausted (or always, if
  /// \p Force). Returns true when a collection ran.
  bool maybeCollect(bool Force = false);

  /// Current global residency (bytes held in chunks).
  static int64_t residencyBytes();

private:
  void beginRun();
  void endRun();
  void finishRootTask();

  Config Cfg;
  Scheduler Sched;
  HeapManager Heaps;
  Collector Gc;
  Heap *RootHeap = nullptr;
};

/// Fork-join with heap management: runs A and B in fresh sibling heaps
/// (potentially in parallel), joins the heaps, and returns both results as
/// tagged slots. Branch results that are objects are merged into the
/// calling task's heap by the join, so they may be used directly.
///
/// Branch bodies must return Slot and must root (mpl::Local) any object
/// reference they hold across an allocation.
///
/// A branch that throws is caught at the branch boundary (an exception must
/// never unwind a scheduler frame): both heaps still join normally — the
/// failed branch's allocations merge and become garbage — and the exception
/// is rethrown on the parent strand afterwards. When both branches throw,
/// A's exception wins and B's is dropped.
template <typename FA, typename FB>
std::pair<Slot, Slot> par(FA &&A, FB &&B) {
  Runtime *R = Runtime::current();
  MPL_CHECK(R, "rt::par outside Runtime::run");
  WorkerCtx *C = Runtime::ctx();
  Heap *H = C->CurrentHeap;
  MPL_CHECK(H, "rt::par outside a task");

  // A safe point: an expired request aborts before paying for the fork.
  checkDeadline();

  H->setActiveForks(2);
  Heap *HA = R->heaps().forkChild(H);
  Heap *HB = R->heaps().forkChild(H);

  // Branches inherit the forking strand's request deadline: a stolen branch
  // runs on another worker whose thread-local ctx knows nothing about the
  // request, so the wrapper re-points it (same discipline as CurrentHeap).
  DeadlineCtx *DL = C->CurrentDeadline;

  Slot RA = 0, RB = 0;
  std::exception_ptr EA, EB;
  R->scheduler().fork2join(
      [&] {
        WorkerCtx *Me = Runtime::ctx();
        Heap *Saved = Me->CurrentHeap;
        DeadlineCtx *SavedDl = Me->CurrentDeadline;
        Me->CurrentHeap = HA;
        Me->CurrentDeadline = DL;
        obs::spanNoteHeapDepth(HA->depth());
        try {
          RA = A();
        } catch (...) {
          EA = std::current_exception();
        }
        Me->CurrentHeap = Saved;
        Me->CurrentDeadline = SavedDl;
      },
      [&] {
        WorkerCtx *Me = Runtime::ctx();
        Heap *Saved = Me->CurrentHeap;
        DeadlineCtx *SavedDl = Me->CurrentDeadline;
        Me->CurrentHeap = HB;
        Me->CurrentDeadline = DL;
        obs::spanNoteHeapDepth(HB->depth());
        try {
          RB = B();
        } catch (...) {
          EB = std::current_exception();
        }
        Me->CurrentHeap = Saved;
        Me->CurrentDeadline = SavedDl;
      });

  R->heaps().join(H, HA);
  R->heaps().join(H, HB);
  H->setActiveForks(0);
  C->CurrentHeap = H;
  if (EA)
    std::rethrow_exception(EA);
  if (EB)
    std::rethrow_exception(EB);
  return {RA, RB};
}

/// Parallel loop with per-iteration heaps amortized by grain: the standard
/// divide-and-conquer reduction of parallelFor to par.
template <typename Body>
void parFor(int64_t Lo, int64_t Hi, int64_t Grain, const Body &B) {
  if (Hi - Lo <= Grain) {
    for (int64_t I = Lo; I < Hi; ++I)
      B(I);
    return;
  }
  int64_t Mid = Lo + (Hi - Lo) / 2;
  par([&] { parFor(Lo, Mid, Grain, B); return Slot(0); },
      [&] { parFor(Mid, Hi, Grain, B); return Slot(0); });
}

} // namespace rt
} // namespace mpl

#endif // MPL_CORE_RUNTIME_H
