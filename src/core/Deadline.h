//===- core/Deadline.h - Request deadlines and cancellation ----*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative deadlines for request-scoped tasks. A DeadlineCtx is attached
/// to the strand running a request (WorkerCtx::CurrentDeadline) and is
/// inherited by every rt::par branch, exactly like CurrentHeap — a stolen
/// strand still knows its request's deadline. Two kinds of poll consult it:
///
///  - *flagging* polls (Scheduler::strandPause, any non-unwindable context)
///    call deadlinePoll(), which only latches the Expired flag — exceptions
///    must never unwind a scheduler frame;
///  - *throwing* polls at safe points (rt::par entry, the allocation poll in
///    ops::allocObject, the pml Vm dispatch loop) call rt::checkDeadline(),
///    which throws DeadlineError once the flag is set (or the clock is past
///    the deadline). The error unwinds exactly like OutOfMemoryError: caught
///    at the branch boundary, heaps still join, pins released by the normal
///    join unpin rule, rethrown on the parent strand.
///
/// Cancellation (a client dropping its connection) is the same mechanism
/// with the flag set externally via DeadlineCtx::cancel().
///
//===----------------------------------------------------------------------===//

#ifndef MPL_CORE_DEADLINE_H
#define MPL_CORE_DEADLINE_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace mpl {

/// Deadline/cancellation state shared between the strands running one
/// request and the thread that owns the request's connection. All fields
/// are atomics: readers are worker threads mid-strand, the canceller is a
/// connection thread.
struct DeadlineCtx {
  /// Absolute steady-clock deadline (support/Timer nowNs domain); 0 means
  /// "no deadline, cancellation only".
  std::atomic<int64_t> DeadlineNs{0};

  /// Latched once the deadline passed or cancel() was called. Sticky: the
  /// request is doomed from the first observation.
  std::atomic<bool> Expired{false};

  void armAfter(int64_t RelNs) {
    DeadlineNs.store(RelNs > 0 ? nowNs() + RelNs : 0,
                     std::memory_order_relaxed);
  }

  void cancel() { Expired.store(true, std::memory_order_release); }

  /// Non-throwing poll: latches and reports expiry. Safe from any context,
  /// including under scheduler locks.
  bool poll() {
    if (Expired.load(std::memory_order_acquire))
      return true;
    int64_t D = DeadlineNs.load(std::memory_order_relaxed);
    if (D != 0 && nowNs() >= D) {
      Expired.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }
};

/// Recoverable deadline expiry: the request's budget ran out (or its client
/// went away) and a safe point noticed. Propagates through rt::par joins
/// and is rethrown by Runtime::run, leaving the runtime reusable.
class DeadlineError : public std::runtime_error {
public:
  explicit DeadlineError(int64_t OverrunNs);

  /// How far past the deadline the poll fired (0 for pure cancellation).
  int64_t overrunNs() const { return Overrun; }

private:
  int64_t Overrun;
};

struct WorkerCtx;

namespace rt {

/// Throwing deadline check for the calling strand's request. No-op when no
/// DeadlineCtx is attached. Call ONLY at safe points where an exception may
/// unwind user code (never a scheduler frame): rt::par entry, allocation
/// polls, VM dispatch.
void checkDeadline();

/// Non-throwing poll of the calling strand's DeadlineCtx (if any); latches
/// Expired so the next checkDeadline() throws. Safe from scheduler quanta.
void deadlinePollCurrent();

/// RAII attach of a request's DeadlineCtx to the calling strand (the
/// request-scoped entry used by the server's batch executor around each
/// request body). Forked branches inherit it via rt::par.
class ScopedDeadline {
public:
  explicit ScopedDeadline(DeadlineCtx *D);
  ~ScopedDeadline();
  ScopedDeadline(const ScopedDeadline &) = delete;
  ScopedDeadline &operator=(const ScopedDeadline &) = delete;

private:
  WorkerCtx *Ctx;
  DeadlineCtx *Saved;
};

} // namespace rt
} // namespace mpl

#endif // MPL_CORE_DEADLINE_H
