//===- pml/Parser.cpp - PML recursive-descent parser ------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/Parser.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::pml;

namespace {

struct Parser {
  const std::vector<Token> &Toks;
  std::vector<std::string> &Errors;
  size_t At = 0;

  Parser(const std::vector<Token> &T, std::vector<std::string> &E)
      : Toks(T), Errors(E) {}

  const Token &peek() const { return Toks[At]; }
  const Token &advance() { return Toks[At == Toks.size() - 1 ? At : At++]; }
  bool check(Tok K) const { return peek().Kind == K; }

  bool match(Tok K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  void error(const std::string &Msg) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%d:%d: ", peek().Line, peek().Col);
    Errors.push_back(std::string(Buf) + Msg);
  }

  bool expect(Tok K, const char *Ctx) {
    if (match(K))
      return true;
    error(std::string("expected ") + tokName(K) + " " + Ctx + ", found " +
          tokName(peek().Kind));
    return false;
  }

  ExprPtr node(ExprKind K) {
    auto E = std::make_unique<Expr>(K);
    E->Line = peek().Line;
    E->Col = peek().Col;
    return E;
  }

  //===--------------------------------------------------------------------===
  // Declarations (shared between `let` and the top level).
  //===--------------------------------------------------------------------===

  /// Parses one `val x = e` or `fun f x .. = e`; returns a LetVal/LetFun
  /// node with a null body (the caller chains bodies).
  ExprPtr parseDecl() {
    if (match(Tok::KwVal)) {
      ExprPtr D = node(ExprKind::LetVal);
      if (!check(Tok::Ident)) {
        error("expected identifier after 'val'");
        return nullptr;
      }
      D->Str = advance().Text;
      if (!expect(Tok::Eq, "after 'val' binder"))
        return nullptr;
      D->A = parseExpr();
      return D->A ? std::move(D) : nullptr;
    }
    if (match(Tok::KwFun)) {
      ExprPtr D = node(ExprKind::LetFun);
      if (!check(Tok::Ident)) {
        error("expected function name after 'fun'");
        return nullptr;
      }
      D->Str = advance().Text;
      while (check(Tok::Ident))
        D->Params.push_back(advance().Text);
      if (D->Params.empty()) {
        error("function '" + D->Str + "' needs at least one parameter");
        return nullptr;
      }
      if (!expect(Tok::Eq, "after function parameters"))
        return nullptr;
      D->A = parseExpr();
      return D->A ? std::move(D) : nullptr;
    }
    if (match(Tok::KwEffect)) {
      ExprPtr D = node(ExprKind::LetEffect);
      if (!check(Tok::Ident)) {
        error("expected effect name after 'effect'");
        return nullptr;
      }
      D->Str = advance().Text;
      return D;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===
  // Expressions.
  //===--------------------------------------------------------------------===

  ExprPtr parseExpr() {
    ExprPtr L = parseNonSeq();
    if (!L)
      return nullptr;
    if (match(Tok::Semi)) {
      ExprPtr S = std::make_unique<Expr>(ExprKind::Seq);
      S->Line = L->Line;
      S->Col = L->Col;
      S->A = std::move(L);
      S->B = parseExpr();
      return S->B ? std::move(S) : nullptr;
    }
    return L;
  }

  ExprPtr parseNonSeq() {
    if (check(Tok::KwLet))
      return parseLet();
    if (check(Tok::KwFn))
      return parseLambda();
    if (check(Tok::KwIf))
      return parseIf();
    if (check(Tok::KwCase))
      return parseCase();
    if (check(Tok::KwHandle))
      return parseHandle();
    return parseAssign();
  }

  /// handle e with [|] E x k => body | ... end
  ExprPtr parseHandle() {
    ExprPtr E = node(ExprKind::Handle);
    advance(); // handle
    E->A = parseExpr();
    if (!E->A || !expect(Tok::KwWith, "in handle expression"))
      return nullptr;
    match(Tok::Pipe); // Optional leading bar.
    while (true) {
      HArm Arm;
      Arm.Line = peek().Line;
      Arm.Col = peek().Col;
      if (!check(Tok::Ident)) {
        error("expected effect name in handler arm");
        return nullptr;
      }
      Arm.Eff = advance().Text;
      if (!check(Tok::Ident)) {
        error("expected payload binder in handler arm");
        return nullptr;
      }
      Arm.ValName = advance().Text;
      if (!check(Tok::Ident)) {
        error("expected continuation binder in handler arm");
        return nullptr;
      }
      Arm.KName = advance().Text;
      if (!expect(Tok::Arrow, "after handler arm binders"))
        return nullptr;
      Arm.Body = parseExpr();
      if (!Arm.Body)
        return nullptr;
      E->HandlerArms.push_back(std::move(Arm));
      if (!match(Tok::Pipe))
        break;
    }
    if (!expect(Tok::KwEnd, "to close 'handle'"))
      return nullptr;
    return E;
  }

  //===--------------------------------------------------------------------===
  // Patterns and case.
  //===--------------------------------------------------------------------===

  PatPtr patNode(PatKind K) {
    auto P = std::make_unique<Pat>(K);
    P->Line = peek().Line;
    P->Col = peek().Col;
    return P;
  }

  PatPtr parsePat() { return parseConsPat(); }

  PatPtr parseConsPat() {
    PatPtr L = parseAtomPat();
    if (!L)
      return nullptr;
    if (match(Tok::ConsOp)) {
      PatPtr C = std::make_unique<Pat>(PatKind::Cons);
      C->Line = L->Line;
      C->Col = L->Col;
      C->PA = std::move(L);
      C->PB = parseConsPat(); // Right-associative.
      return C->PB ? std::move(C) : nullptr;
    }
    return L;
  }

  PatPtr parseAtomPat() {
    const Token &T = peek();
    switch (T.Kind) {
    case Tok::Ident: {
      PatPtr P = patNode(T.Text == "_" ? PatKind::Wild : PatKind::Var);
      P->Str = advance().Text;
      return P;
    }
    case Tok::Int: {
      PatPtr P = patNode(PatKind::IntLit);
      P->IntVal = advance().IntVal;
      return P;
    }
    case Tok::KwTrue:
    case Tok::KwFalse: {
      PatPtr P = patNode(PatKind::BoolLit);
      P->IntVal = advance().Kind == Tok::KwTrue;
      return P;
    }
    case Tok::LBracket: {
      PatPtr P = patNode(PatKind::Nil);
      advance();
      if (!expect(Tok::RBracket, "in empty-list pattern"))
        return nullptr;
      return P;
    }
    case Tok::LParen: {
      int Line = T.Line, Col = T.Col;
      advance();
      if (match(Tok::RParen)) {
        PatPtr P = std::make_unique<Pat>(PatKind::Unit);
        P->Line = Line;
        P->Col = Col;
        return P;
      }
      PatPtr Inner = parsePat();
      if (!Inner)
        return nullptr;
      if (match(Tok::Comma)) {
        PatPtr P = std::make_unique<Pat>(PatKind::Pair);
        P->Line = Line;
        P->Col = Col;
        P->PA = std::move(Inner);
        P->PB = parsePat();
        if (!P->PB || !expect(Tok::RParen, "to close pair pattern"))
          return nullptr;
        return P;
      }
      if (!expect(Tok::RParen, "to close pattern"))
        return nullptr;
      return Inner;
    }
    default:
      error(std::string("expected a pattern, found ") + tokName(T.Kind));
      return nullptr;
    }
  }

  ExprPtr parseCase() {
    ExprPtr E = node(ExprKind::Case);
    advance(); // case
    E->A = parseExpr();
    if (!E->A || !expect(Tok::KwOf, "in case expression"))
      return nullptr;
    match(Tok::Pipe); // Optional leading bar.
    while (true) {
      PatPtr P = parsePat();
      if (!P)
        return nullptr;
      if (!expect(Tok::Arrow, "after case pattern"))
        return nullptr;
      ExprPtr Body = parseExpr();
      if (!Body)
        return nullptr;
      E->Arms.emplace_back(std::move(P), std::move(Body));
      if (!match(Tok::Pipe))
        break;
    }
    return E;
  }

  ExprPtr parseLet() {
    advance(); // let
    std::vector<ExprPtr> Decls;
    while (check(Tok::KwVal) || check(Tok::KwFun) || check(Tok::KwEffect)) {
      ExprPtr D = parseDecl();
      if (!D)
        return nullptr;
      Decls.push_back(std::move(D));
    }
    if (Decls.empty()) {
      error("expected 'val', 'fun' or 'effect' after 'let'");
      return nullptr;
    }
    if (!expect(Tok::KwIn, "after let declarations"))
      return nullptr;
    ExprPtr Body = parseExpr();
    if (!Body)
      return nullptr;
    if (!expect(Tok::KwEnd, "to close 'let'"))
      return nullptr;
    // Chain declarations innermost-last.
    for (auto It = Decls.rbegin(); It != Decls.rend(); ++It) {
      (*It)->B = std::move(Body);
      Body = std::move(*It);
    }
    return Body;
  }

  ExprPtr parseLambda() {
    ExprPtr L = node(ExprKind::Lambda);
    advance(); // fn
    while (check(Tok::Ident))
      L->Params.push_back(advance().Text);
    if (L->Params.empty()) {
      error("expected parameter after 'fn'");
      return nullptr;
    }
    if (!expect(Tok::Arrow, "after 'fn' parameters"))
      return nullptr;
    L->A = parseExpr();
    return L->A ? std::move(L) : nullptr;
  }

  ExprPtr parseIf() {
    ExprPtr E = node(ExprKind::If);
    advance(); // if
    E->A = parseExpr();
    if (!E->A || !expect(Tok::KwThen, "in conditional"))
      return nullptr;
    E->B = parseExpr();
    if (!E->B || !expect(Tok::KwElse, "in conditional"))
      return nullptr;
    E->C = parseExpr();
    return E->C ? std::move(E) : nullptr;
  }

  ExprPtr parseAssign() {
    ExprPtr L = parseOrelse();
    if (!L)
      return nullptr;
    if (match(Tok::Assign)) {
      ExprPtr A = std::make_unique<Expr>(ExprKind::Assign);
      A->Line = L->Line;
      A->Col = L->Col;
      A->A = std::move(L);
      A->B = parseAssign();
      return A->B ? std::move(A) : nullptr;
    }
    return L;
  }

  ExprPtr parseBinChain(ExprPtr (Parser::*Sub)(),
                        std::initializer_list<Tok> Ops, bool Chainable) {
    ExprPtr L = (this->*Sub)();
    if (!L)
      return nullptr;
    while (true) {
      Tok K = peek().Kind;
      bool Hit = false;
      for (Tok O : Ops)
        Hit |= K == O;
      if (!Hit)
        return L;
      advance();
      ExprPtr B = std::make_unique<Expr>(ExprKind::Binop);
      B->Line = L->Line;
      B->Col = L->Col;
      B->Op = K;
      B->A = std::move(L);
      B->B = (this->*Sub)();
      if (!B->B)
        return nullptr;
      L = std::move(B);
      if (!Chainable)
        return L; // Comparisons do not associate.
    }
  }

  ExprPtr parseOrelse() {
    return parseBinChain(&Parser::parseAndalso, {Tok::KwOrelse}, true);
  }
  ExprPtr parseAndalso() {
    return parseBinChain(&Parser::parseCmp, {Tok::KwAndalso}, true);
  }
  ExprPtr parseCmp() {
    return parseBinChain(&Parser::parseConsE,
                         {Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt,
                          Tok::Ge},
                         false);
  }

  /// h :: t (right-associative), between comparisons and addition.
  ExprPtr parseConsE() {
    ExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    if (match(Tok::ConsOp)) {
      ExprPtr C = std::make_unique<Expr>(ExprKind::Cons);
      C->Line = L->Line;
      C->Col = L->Col;
      C->A = std::move(L);
      C->B = parseConsE();
      return C->B ? std::move(C) : nullptr;
    }
    return L;
  }
  ExprPtr parseAdd() {
    return parseBinChain(&Parser::parseMul, {Tok::Plus, Tok::Minus}, true);
  }
  ExprPtr parseMul() {
    return parseBinChain(&Parser::parseApp,
                         {Tok::Star, Tok::Slash, Tok::Percent}, true);
  }

  static bool startsAtom(Tok K) {
    switch (K) {
    case Tok::Int:
    case Tok::String:
    case Tok::KwTrue:
    case Tok::KwFalse:
    case Tok::Ident:
    case Tok::LParen:
    case Tok::LBracket:
    case Tok::KwPar:
    case Tok::Bang:
    case Tok::KwNot:
    case Tok::KwRef:
      return true;
    default:
      return false;
    }
  }

  ExprPtr parseApp() {
    ExprPtr F = parsePrefix();
    if (!F)
      return nullptr;
    // Application arguments must start on the same line as the preceding
    // token: juxtaposition application would otherwise greedily swallow
    // the next top-level declaration or expression.
    while (startsAtom(peek().Kind) && At > 0 &&
           peek().Line == Toks[At - 1].Line) {
      ExprPtr A = std::make_unique<Expr>(ExprKind::App);
      A->Line = F->Line;
      A->Col = F->Col;
      A->A = std::move(F);
      A->B = parsePrefix();
      if (!A->B)
        return nullptr;
      F = std::move(A);
    }
    return F;
  }

  ExprPtr parsePrefix() {
    if (check(Tok::Bang)) {
      ExprPtr E = node(ExprKind::Deref);
      advance();
      E->A = parsePrefix();
      return E->A ? std::move(E) : nullptr;
    }
    if (check(Tok::KwNot)) {
      ExprPtr E = node(ExprKind::Not);
      advance();
      E->A = parsePrefix();
      return E->A ? std::move(E) : nullptr;
    }
    if (check(Tok::Minus)) {
      ExprPtr E = node(ExprKind::Neg);
      advance();
      E->A = parsePrefix();
      return E->A ? std::move(E) : nullptr;
    }
    if (check(Tok::KwRef)) {
      ExprPtr E = node(ExprKind::RefNew);
      advance();
      E->A = parsePrefix();
      return E->A ? std::move(E) : nullptr;
    }
    if (check(Tok::KwPerform)) {
      ExprPtr E = node(ExprKind::Perform);
      advance();
      if (!check(Tok::Ident)) {
        error("expected effect name after 'perform'");
        return nullptr;
      }
      E->Str = advance().Text;
      E->A = parsePrefix();
      return E->A ? std::move(E) : nullptr;
    }
    if (check(Tok::KwResume)) {
      ExprPtr E = node(ExprKind::Resume);
      advance();
      E->A = parseAtom();
      if (!E->A)
        return nullptr;
      E->B = parseAtom();
      return E->B ? std::move(E) : nullptr;
    }
    return parseAtom();
  }

  ExprPtr parseAtom() {
    const Token &T = peek();
    switch (T.Kind) {
    case Tok::Int: {
      ExprPtr E = node(ExprKind::IntLit);
      E->IntVal = advance().IntVal;
      return E;
    }
    case Tok::String: {
      ExprPtr E = node(ExprKind::StrLit);
      E->Str = advance().Text;
      return E;
    }
    case Tok::KwTrue:
    case Tok::KwFalse: {
      ExprPtr E = node(ExprKind::BoolLit);
      E->IntVal = advance().Kind == Tok::KwTrue;
      return E;
    }
    case Tok::Ident: {
      ExprPtr E = node(ExprKind::Var);
      E->Str = advance().Text;
      return E;
    }
    case Tok::LBracket: {
      int Line = T.Line, Col = T.Col;
      advance();
      std::vector<ExprPtr> Elems;
      if (!check(Tok::RBracket)) {
        while (true) {
          ExprPtr El = parseExpr();
          if (!El)
            return nullptr;
          Elems.push_back(std::move(El));
          if (!match(Tok::Comma))
            break;
        }
      }
      if (!expect(Tok::RBracket, "to close list literal"))
        return nullptr;
      ExprPtr Tail = std::make_unique<Expr>(ExprKind::NilLit);
      Tail->Line = Line;
      Tail->Col = Col;
      for (auto It = Elems.rbegin(); It != Elems.rend(); ++It) {
        ExprPtr C = std::make_unique<Expr>(ExprKind::Cons);
        C->Line = (*It)->Line;
        C->Col = (*It)->Col;
        C->A = std::move(*It);
        C->B = std::move(Tail);
        Tail = std::move(C);
      }
      return Tail;
    }
    case Tok::KwPar: {
      ExprPtr E = node(ExprKind::Par);
      advance();
      if (!expect(Tok::LParen, "after 'par'"))
        return nullptr;
      E->A = parseExpr();
      if (!E->A || !expect(Tok::Comma, "between 'par' branches"))
        return nullptr;
      E->B = parseExpr();
      if (!E->B || !expect(Tok::RParen, "to close 'par'"))
        return nullptr;
      return E;
    }
    case Tok::LParen: {
      int Line = T.Line, Col = T.Col;
      advance();
      if (match(Tok::RParen)) {
        ExprPtr E = std::make_unique<Expr>(ExprKind::UnitLit);
        E->Line = Line;
        E->Col = Col;
        return E;
      }
      ExprPtr Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (match(Tok::Comma)) {
        ExprPtr P = std::make_unique<Expr>(ExprKind::Pair);
        P->Line = Line;
        P->Col = Col;
        P->A = std::move(Inner);
        P->B = parseExpr();
        if (!P->B || !expect(Tok::RParen, "to close pair"))
          return nullptr;
        return P;
      }
      if (!expect(Tok::RParen, "to close parenthesized expression"))
        return nullptr;
      return Inner;
    }
    default:
      error(std::string("expected an expression, found ") +
            tokName(T.Kind));
      return nullptr;
    }
  }
};

} // namespace

ExprPtr mpl::pml::parseProgram(const std::string &Source,
                               std::vector<std::string> &Errors) {
  std::vector<Token> Toks = lex(Source, Errors);
  if (!Errors.empty())
    return nullptr;
  Parser P(Toks, Errors);

  // Top-level declarations followed by the main expression.
  std::vector<ExprPtr> Decls;
  while (P.check(Tok::KwVal) || P.check(Tok::KwFun) ||
         P.check(Tok::KwEffect)) {
    ExprPtr D = P.parseDecl();
    if (!D)
      return nullptr;
    Decls.push_back(std::move(D));
  }
  ExprPtr Main = P.parseExpr();
  if (!Main)
    return nullptr;
  if (!P.check(Tok::Eof)) {
    P.error(std::string("unexpected ") + tokName(P.peek().Kind) +
            " after the main expression");
    return nullptr;
  }
  for (auto It = Decls.rbegin(); It != Decls.rend(); ++It) {
    (*It)->B = std::move(Main);
    Main = std::move(*It);
  }
  return Main;
}
