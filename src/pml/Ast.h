//===- pml/Ast.h - PML abstract syntax -------------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PML AST: a single tagged node type (the language is small enough
/// that a class hierarchy would only add boilerplate). Children A/B/C are
/// owned; which are populated depends on the kind (documented per kind).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_AST_H
#define MPL_PML_AST_H

#include "pml/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace mpl {
namespace pml {

enum class ExprKind : uint8_t {
  IntLit,  ///< IntVal.
  BoolLit, ///< IntVal (0/1).
  StrLit,  ///< Str.
  UnitLit,
  Var,    ///< Str = name.
  Lambda, ///< Params (curried left to right), A = body.
  LetVal, ///< Str = binder, A = bound expr, B = body.
  LetFun, ///< Str = function name, Params, A = fn body, B = let body.
  If,     ///< A = cond, B = then, C = else.
  App,    ///< A = function, B = argument.
  Binop,  ///< Op, A, B (arith/compare/andalso/orelse).
  Not,    ///< A.
  Neg,    ///< A.
  Deref,  ///< A (`!a`).
  RefNew, ///< A (`ref a`).
  Assign, ///< A := B.
  Pair,   ///< (A, B).
  Par,    ///< par (A, B) — evaluates both in parallel, yields a pair.
  Seq,    ///< A ; B.
  NilLit, ///< [].
  Cons,   ///< A :: B.
  Case,   ///< case A of Arms.
  // Effect handlers (DESIGN.md §13).
  LetEffect, ///< effect Str [in B end]; B = scope body.
  Perform,   ///< perform Str A — suspend to the innermost handler of Str.
  Handle,    ///< handle A with HArms end.
  Resume,    ///< resume A B — resume continuation A with value B.
};

enum class PatKind : uint8_t {
  Wild,    ///< _
  Var,     ///< Str = binder.
  IntLit,  ///< IntVal.
  BoolLit, ///< IntVal (0/1).
  Unit,    ///< ()
  Nil,     ///< []
  Cons,    ///< PA :: PB.
  Pair,    ///< (PA, PB).
};

/// A pattern in a `case` arm.
struct Pat {
  PatKind Kind;
  int Line = 0, Col = 0;
  int64_t IntVal = 0;
  std::string Str;
  std::unique_ptr<Pat> PA, PB;

  explicit Pat(PatKind K) : Kind(K) {}
};

using PatPtr = std::unique_ptr<Pat>;

/// One handler arm: `Eff ValName KName => Body`. ValName binds the
/// performed payload, KName the one-shot continuation.
struct HArm {
  std::string Eff;
  std::string ValName;
  std::string KName;
  std::unique_ptr<struct Expr> Body;
  int Line = 0, Col = 0;
};

/// One AST node. Position is the source location of the introducing token.
struct Expr {
  ExprKind Kind;
  int Line = 0, Col = 0;

  int64_t IntVal = 0;
  std::string Str;
  std::vector<std::string> Params;
  Tok Op = Tok::Eof;

  std::unique_ptr<Expr> A, B, C;

  /// Case arms (pattern, body), tried in order.
  std::vector<std::pair<PatPtr, std::unique_ptr<Expr>>> Arms;

  /// Handler arms (Kind == Handle only), matched by effect identity.
  std::vector<HArm> HandlerArms;

  explicit Expr(ExprKind K) : Kind(K) {}
};

using ExprPtr = std::unique_ptr<Expr>;

} // namespace pml
} // namespace mpl

#endif // MPL_PML_AST_H
