//===- pml/Types.cpp - Hindley-Milner type inference for PML ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/Types.h"

#include "support/Assert.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::pml;

Ty *TypeChecker::alloc(TyTag Tag, Ty *A, Ty *B) {
  Arena.push_back(std::make_unique<Ty>());
  Ty *T = Arena.back().get();
  T->Tag = Tag;
  T->A = A;
  T->B = B;
  return T;
}

Ty *TypeChecker::freshVar() {
  Ty *T = alloc(TyTag::Var);
  T->Level = CurLevel;
  T->Id = NextId++;
  return T;
}

Ty *TypeChecker::resolve(Ty *T) {
  while (T->Tag == TyTag::Var && T->Link) {
    // Path compression.
    if (T->Link->Tag == TyTag::Var && T->Link->Link)
      T->Link = T->Link->Link;
    T = T->Link;
  }
  return T;
}

bool TypeChecker::occurs(Ty *Var, Ty *T) {
  T = resolve(T);
  if (T == Var)
    return true;
  if (T->A && occurs(Var, T->A))
    return true;
  return T->B && occurs(Var, T->B);
}

void TypeChecker::updateLevels(Ty *T, int Level) {
  T = resolve(T);
  if (T->Tag == TyTag::Var) {
    if (T->Level > Level)
      T->Level = Level;
    return;
  }
  if (T->A)
    updateLevels(T->A, Level);
  if (T->B)
    updateLevels(T->B, Level);
}

void TypeChecker::errorAt(const Expr &E, const std::string &Msg) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%d:%d: ", E.Line, E.Col);
  Errors->push_back(std::string(Buf) + Msg);
  Failed = true;
}

bool TypeChecker::unify(Ty *X, Ty *Y, const Expr &At) {
  X = resolve(X);
  Y = resolve(Y);
  if (X == Y)
    return true;
  if (X->Tag == TyTag::Var || Y->Tag == TyTag::Var) {
    if (X->Tag != TyTag::Var)
      std::swap(X, Y);
    if (occurs(X, Y)) {
      errorAt(At, "cannot construct the infinite type " + show(X) + " = " +
                      show(Y));
      return false;
    }
    updateLevels(Y, X->Level);
    X->Link = Y;
    return true;
  }
  if (X->Tag != Y->Tag) {
    errorAt(At, "type mismatch: " + show(X) + " vs " + show(Y));
    return false;
  }
  if (X->A && !unify(X->A, Y->A, At))
    return false;
  if (X->B && !unify(X->B, Y->B, At))
    return false;
  return true;
}

TypeChecker::Scheme TypeChecker::generalize(Ty *T) {
  Scheme S;
  S.Body = T;
  // Collect unbound vars deeper than the current level.
  struct Walk {
    TypeChecker &TC;
    Scheme &S;
    void go(Ty *T) {
      T = resolve(T);
      if (T->Tag == TyTag::Var) {
        if (T->Level <= TC.CurLevel)
          return;
        for (Ty *Q : S.Quantified)
          if (Q == T)
            return;
        S.Quantified.push_back(T);
        return;
      }
      if (T->A)
        go(T->A);
      if (T->B)
        go(T->B);
    }
  };
  Walk W{*this, S};
  W.go(T);
  return S;
}

Ty *TypeChecker::instantiate(const Scheme &S) {
  if (S.Quantified.empty())
    return S.Body;
  std::vector<std::pair<Ty *, Ty *>> Subst;
  for (Ty *Q : S.Quantified)
    Subst.emplace_back(Q, freshVar());
  struct Copy {
    TypeChecker &TC;
    std::vector<std::pair<Ty *, Ty *>> &Subst;
    Ty *go(Ty *T) {
      T = resolve(T);
      if (T->Tag == TyTag::Var) {
        for (auto &KV : Subst)
          if (KV.first == T)
            return KV.second;
        return T;
      }
      if (!T->A && !T->B)
        return T;
      return TC.alloc(T->Tag, T->A ? go(T->A) : nullptr,
                      T->B ? go(T->B) : nullptr);
    }
  };
  Copy C{*this, Subst};
  return C.go(S.Body);
}

bool TypeChecker::isSyntacticValue(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::StrLit:
  case ExprKind::UnitLit:
  case ExprKind::NilLit:
  case ExprKind::Var:
  case ExprKind::Lambda:
    return true;
  case ExprKind::Pair:
  case ExprKind::Cons:
    return isSyntacticValue(*E.A) && isSyntacticValue(*E.B);
  default:
    return false;
  }
}

/// Checks pattern \p P against scrutinee type \p Scrut, pushing variable
/// bindings (monomorphic) and counting them in \p Bound.
void TypeChecker::checkPat(const Pat &P, Ty *Scrut, size_t &Bound) {
  // Report pattern errors at the pattern's own location.
  Expr At(ExprKind::UnitLit);
  At.Line = P.Line;
  At.Col = P.Col;
  switch (P.Kind) {
  case PatKind::Wild:
    return;
  case PatKind::Var:
    Env.push_back({P.Str, {Scrut, {}}});
    ++Bound;
    return;
  case PatKind::IntLit:
    unify(Scrut, alloc(TyTag::Int), At);
    return;
  case PatKind::BoolLit:
    unify(Scrut, alloc(TyTag::Bool), At);
    return;
  case PatKind::Unit:
    unify(Scrut, alloc(TyTag::Unit), At);
    return;
  case PatKind::Nil:
    unify(Scrut, alloc(TyTag::List, freshVar()), At);
    return;
  case PatKind::Cons: {
    Ty *Elem = freshVar();
    Ty *ListT = alloc(TyTag::List, Elem);
    unify(Scrut, ListT, At);
    checkPat(*P.PA, Elem, Bound);
    checkPat(*P.PB, ListT, Bound);
    return;
  }
  case PatKind::Pair: {
    Ty *A = freshVar();
    Ty *B = freshVar();
    unify(Scrut, alloc(TyTag::Pair, A, B), At);
    checkPat(*P.PA, A, Bound);
    checkPat(*P.PB, B, Bound);
    return;
  }
  }
  MPL_UNREACHABLE("covered switch");
}

void TypeChecker::pushBuiltins() {
  auto Poly1 = [&](const char *Name, auto MakeBody) {
    ++CurLevel;
    Ty *A = freshVar();
    Ty *Body = MakeBody(A);
    --CurLevel;
    Scheme S = generalize(Body);
    Env.push_back({Name, S});
  };
  auto Poly2 = [&](const char *Name, auto MakeBody) {
    ++CurLevel;
    Ty *A = freshVar();
    Ty *B = freshVar();
    Ty *Body = MakeBody(A, B);
    --CurLevel;
    Env.push_back({Name, generalize(Body)});
  };
  Ty *TInt = alloc(TyTag::Int);
  Ty *TUnit = alloc(TyTag::Unit);
  Ty *TString = alloc(TyTag::String);

  // fst : 'a * 'b -> 'a ;  snd : 'a * 'b -> 'b
  Poly2("fst", [&](Ty *A, Ty *B) {
    return alloc(TyTag::Arrow, alloc(TyTag::Pair, A, B), A);
  });
  Poly2("snd", [&](Ty *A, Ty *B) {
    return alloc(TyTag::Arrow, alloc(TyTag::Pair, A, B), B);
  });
  // alloc : int -> 'a -> 'a array
  Poly1("alloc", [&](Ty *A) {
    return alloc(TyTag::Arrow, TInt,
                 alloc(TyTag::Arrow, A, alloc(TyTag::Array, A)));
  });
  // get : 'a array -> int -> 'a
  Poly1("get", [&](Ty *A) {
    return alloc(TyTag::Arrow, alloc(TyTag::Array, A),
                 alloc(TyTag::Arrow, TInt, A));
  });
  // set : 'a array -> int -> 'a -> unit
  Poly1("set", [&](Ty *A) {
    return alloc(TyTag::Arrow, alloc(TyTag::Array, A),
                 alloc(TyTag::Arrow, TInt, alloc(TyTag::Arrow, A, TUnit)));
  });
  // length : 'a array -> int
  Poly1("length", [&](Ty *A) {
    return alloc(TyTag::Arrow, alloc(TyTag::Array, A), TInt);
  });
  // print : string -> unit ; printInt : int -> unit
  Env.push_back({"print", {alloc(TyTag::Arrow, TString, TUnit), {}}});
  Env.push_back({"printInt", {alloc(TyTag::Arrow, TInt, TUnit), {}}});
}

TypeChecker::EffectBinding *TypeChecker::lookupEffect(const Expr &E,
                                                      const std::string &Name) {
  for (auto It = EffEnv.rbegin(); It != EffEnv.rend(); ++It)
    if (It->Name == Name)
      return &*It;
  errorAt(E, "unbound effect '" + Name + "'");
  return nullptr;
}

Ty *TypeChecker::lookupVar(const Expr &E) {
  for (auto It = Env.rbegin(); It != Env.rend(); ++It)
    if (It->Name == E.Str)
      return instantiate(It->S);
  errorAt(E, "unbound variable '" + E.Str + "'");
  return freshVar();
}

Ty *TypeChecker::inferExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return alloc(TyTag::Int);
  case ExprKind::BoolLit:
    return alloc(TyTag::Bool);
  case ExprKind::StrLit:
    return alloc(TyTag::String);
  case ExprKind::UnitLit:
    return alloc(TyTag::Unit);
  case ExprKind::Var:
    return lookupVar(E);

  case ExprKind::Lambda: {
    size_t Saved = Env.size();
    std::vector<Ty *> ParamTys;
    for (const std::string &P : E.Params) {
      Ty *V = freshVar();
      ParamTys.push_back(V);
      Env.push_back({P, {V, {}}});
    }
    Ty *Body = inferExpr(*E.A);
    Env.resize(Saved);
    for (auto It = ParamTys.rbegin(); It != ParamTys.rend(); ++It)
      Body = alloc(TyTag::Arrow, *It, Body);
    return Body;
  }

  case ExprKind::LetVal: {
    ++CurLevel;
    Ty *Bound = inferExpr(*E.A);
    --CurLevel;
    Scheme S = isSyntacticValue(*E.A) ? generalize(Bound)
                                      : Scheme{Bound, {}};
    Env.push_back({E.Str, S});
    Ty *Body = inferExpr(*E.B);
    Env.pop_back();
    return Body;
  }

  case ExprKind::LetFun: {
    // fun f x.. = e1 in e2: f is monomorphic inside its own body,
    // generalized in the let body.
    ++CurLevel;
    Ty *FnVar = freshVar();
    Env.push_back({E.Str, {FnVar, {}}});
    size_t Saved = Env.size();
    std::vector<Ty *> ParamTys;
    for (const std::string &P : E.Params) {
      Ty *V = freshVar();
      ParamTys.push_back(V);
      Env.push_back({P, {V, {}}});
    }
    Ty *Body = inferExpr(*E.A);
    Env.resize(Saved);
    for (auto It = ParamTys.rbegin(); It != ParamTys.rend(); ++It)
      Body = alloc(TyTag::Arrow, *It, Body);
    unify(FnVar, Body, E);
    Env.pop_back(); // f (monomorphic binding)
    --CurLevel;
    Env.push_back({E.Str, generalize(FnVar)});
    Ty *LetBody = inferExpr(*E.B);
    Env.pop_back();
    return LetBody;
  }

  case ExprKind::If: {
    Ty *C = inferExpr(*E.A);
    unify(C, alloc(TyTag::Bool), *E.A);
    Ty *T = inferExpr(*E.B);
    Ty *F = inferExpr(*E.C);
    unify(T, F, E);
    return T;
  }

  case ExprKind::App: {
    Ty *Fn = inferExpr(*E.A);
    Ty *Arg = inferExpr(*E.B);
    Ty *Res = freshVar();
    unify(Fn, alloc(TyTag::Arrow, Arg, Res), E);
    return Res;
  }

  case ExprKind::Binop: {
    Ty *L = inferExpr(*E.A);
    Ty *R = inferExpr(*E.B);
    switch (E.Op) {
    case Tok::Plus:
    case Tok::Minus:
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent:
      unify(L, alloc(TyTag::Int), *E.A);
      unify(R, alloc(TyTag::Int), *E.B);
      return alloc(TyTag::Int);
    case Tok::Lt:
    case Tok::Le:
    case Tok::Gt:
    case Tok::Ge:
      unify(L, alloc(TyTag::Int), *E.A);
      unify(R, alloc(TyTag::Int), *E.B);
      return alloc(TyTag::Bool);
    case Tok::Eq:
    case Tok::Ne:
      // Equality is polymorphic (structural on immediates and strings,
      // identity otherwise).
      unify(L, R, E);
      return alloc(TyTag::Bool);
    case Tok::KwAndalso:
    case Tok::KwOrelse:
      unify(L, alloc(TyTag::Bool), *E.A);
      unify(R, alloc(TyTag::Bool), *E.B);
      return alloc(TyTag::Bool);
    default:
      MPL_UNREACHABLE("unknown binary operator");
    }
  }

  case ExprKind::Not: {
    unify(inferExpr(*E.A), alloc(TyTag::Bool), *E.A);
    return alloc(TyTag::Bool);
  }
  case ExprKind::Neg: {
    unify(inferExpr(*E.A), alloc(TyTag::Int), *E.A);
    return alloc(TyTag::Int);
  }
  case ExprKind::Deref: {
    Ty *V = freshVar();
    unify(inferExpr(*E.A), alloc(TyTag::Ref, V), *E.A);
    return V;
  }
  case ExprKind::RefNew:
    return alloc(TyTag::Ref, inferExpr(*E.A));
  case ExprKind::Assign: {
    Ty *V = freshVar();
    unify(inferExpr(*E.A), alloc(TyTag::Ref, V), *E.A);
    unify(inferExpr(*E.B), V, *E.B);
    return alloc(TyTag::Unit);
  }
  case ExprKind::Pair:
    return alloc(TyTag::Pair, inferExpr(*E.A), inferExpr(*E.B));
  case ExprKind::NilLit:
    return alloc(TyTag::List, freshVar());
  case ExprKind::Cons: {
    Ty *H = inferExpr(*E.A);
    Ty *T = inferExpr(*E.B);
    unify(T, alloc(TyTag::List, H), E);
    return T;
  }
  case ExprKind::Case: {
    Ty *Scrut = inferExpr(*E.A);
    Ty *Result = freshVar();
    MPL_CHECK(!E.Arms.empty(), "case with no arms");
    for (const auto &Arm : E.Arms) {
      size_t Bound = 0;
      checkPat(*Arm.first, Scrut, Bound);
      Ty *Body = inferExpr(*Arm.second);
      unify(Result, Body, *Arm.second);
      Env.resize(Env.size() - Bound);
    }
    return Result;
  }
  case ExprKind::Par:
    // The paper's fork-join primitive: both branches may perform effects.
    return alloc(TyTag::Pair, inferExpr(*E.A), inferExpr(*E.B));
  case ExprKind::Seq: {
    unify(inferExpr(*E.A), alloc(TyTag::Unit), *E.A);
    return inferExpr(*E.B);
  }

  case ExprKind::LetEffect: {
    // The payload/resume types are monomorphic vars fixed here, so every
    // perform and every handler arm of this effect must agree on both.
    EffEnv.push_back({E.Str, freshVar(), freshVar()});
    Ty *Body = inferExpr(*E.B);
    EffEnv.pop_back();
    return Body;
  }

  case ExprKind::Perform: {
    Ty *Arg = inferExpr(*E.A);
    EffectBinding *Eff = lookupEffect(E, E.Str);
    if (!Eff)
      return freshVar();
    unify(Arg, Eff->Payload, *E.A);
    return Eff->ResumeTy;
  }

  case ExprKind::Handle: {
    // Deep handlers: the handled body, every arm body, and `resume` all
    // produce the same answer type, which is the handle's result.
    Ty *Ans = inferExpr(*E.A);
    MPL_CHECK(!E.HandlerArms.empty(), "handle with no arms");
    for (const HArm &Arm : E.HandlerArms) {
      Expr At(ExprKind::UnitLit);
      At.Line = Arm.Line;
      At.Col = Arm.Col;
      At.Str = Arm.Eff;
      EffectBinding *Eff = lookupEffect(At, Arm.Eff);
      Ty *Payload = Eff ? Eff->Payload : freshVar();
      Ty *ResumeTy = Eff ? Eff->ResumeTy : freshVar();
      size_t Saved = Env.size();
      Env.push_back({Arm.ValName, {Payload, {}}});
      Env.push_back({Arm.KName, {alloc(TyTag::Cont, ResumeTy, Ans), {}}});
      Ty *Body = inferExpr(*Arm.Body);
      Env.resize(Saved);
      unify(Body, Ans, *Arm.Body);
    }
    return Ans;
  }

  case ExprKind::Resume: {
    Ty *K = inferExpr(*E.A);
    Ty *V = inferExpr(*E.B);
    Ty *R = freshVar();
    Ty *Ans = freshVar();
    unify(K, alloc(TyTag::Cont, R, Ans), *E.A);
    unify(V, R, *E.B);
    return Ans;
  }
  }
  MPL_UNREACHABLE("covered switch");
}

Ty *TypeChecker::infer(const Expr &Program,
                       std::vector<std::string> &Errs) {
  Errors = &Errs;
  Failed = false;
  Env.clear();
  EffEnv.clear();
  pushBuiltins();
  Ty *T = inferExpr(Program);
  return Failed ? nullptr : resolve(T);
}

std::string TypeChecker::show(Ty *T) {
  T = resolve(T);
  switch (T->Tag) {
  case TyTag::Var: {
    std::string S = "'";
    int Id = T->Id;
    S += static_cast<char>('a' + Id % 26);
    if (Id >= 26)
      S += std::to_string(Id / 26);
    return S;
  }
  case TyTag::Int:
    return "int";
  case TyTag::Bool:
    return "bool";
  case TyTag::Unit:
    return "unit";
  case TyTag::String:
    return "string";
  case TyTag::Ref:
    return show(T->A) + " ref";
  case TyTag::Array:
    return show(T->A) + " array";
  case TyTag::List:
    return show(T->A) + " list";
  case TyTag::Pair:
    return "(" + show(T->A) + " * " + show(T->B) + ")";
  case TyTag::Arrow:
    return "(" + show(T->A) + " -> " + show(T->B) + ")";
  case TyTag::Cont:
    return "(" + show(T->A) + ", " + show(T->B) + ") cont";
  }
  return "?";
}
