//===- pml/Compiler.cpp - PML bytecode compiler -----------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/Compiler.h"

#include "support/Assert.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::pml;

namespace {

/// Builtin table: name, argument count, opcode.
struct BuiltinInfo {
  const char *Name;
  int Arity;
  Op Opcode;
};

const BuiltinInfo Builtins[] = {
    {"fst", 1, Op::Fst},      {"snd", 1, Op::Snd},
    {"alloc", 2, Op::Alloc},  {"get", 2, Op::AGet},
    {"set", 3, Op::ASet},     {"length", 1, Op::ALen},
    {"print", 1, Op::Print},  {"printInt", 1, Op::PrintInt},
};

const BuiltinInfo *findBuiltin(const std::string &Name) {
  for (const BuiltinInfo &B : Builtins)
    if (Name == B.Name)
      return &B;
  return nullptr;
}

struct Compiler {
  Program &P;
  std::vector<std::string> &Errors;
  bool Failed = false;

  struct Binding {
    std::string Name;
    int Slot;
  };

  /// Per-function compile state; functions nest through Parent.
  struct FnState {
    FnState *Parent = nullptr;
    FnProto Proto;
    std::vector<Binding> Locals;
    std::vector<std::string> Captures;
    /// Name the closure refers to itself by (LetFun), or empty.
    std::string SelfName;
  };

  FnState *Cur = nullptr;

  /// Lexically scoped `effect` declarations (name -> static effect id).
  /// Lives on the compiler, not the FnState: compilation of nested
  /// functions happens inline, so effects stay visible across function
  /// boundaries exactly as lexical scoping demands.
  std::vector<std::pair<std::string, int>> EffectScope;

  Compiler(Program &P, std::vector<std::string> &E) : P(P), Errors(E) {}

  int resolveEffect(const std::string &Name) {
    for (auto It = EffectScope.rbegin(); It != EffectScope.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return -1;
  }

  void errorAt(const Expr &E, const std::string &Msg) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%d:%d: ", E.Line, E.Col);
    Errors.push_back(std::string(Buf) + Msg);
    Failed = true;
  }

  /// Packed location of the innermost expression being compiled; every
  /// emitted instruction carries it into the function's source map.
  uint32_t CurLoc = 0;

  int emit(Op O, int32_t A = 0, int32_t B = 0) {
    Cur->Proto.Code.push_back({O, A, B});
    Cur->Proto.Src.push_back(CurLoc);
    return static_cast<int>(Cur->Proto.Code.size()) - 1;
  }

  void patch(int At, int32_t Target) { Cur->Proto.Code[At].A = Target; }
  int here() const { return static_cast<int>(Cur->Proto.Code.size()); }

  int newLocal(const std::string &Name) {
    int Slot = Cur->Proto.NumLocals++;
    Cur->Locals.push_back({Name, Slot});
    return Slot;
  }

  enum class Where { Local, Capture, Unbound };
  struct Loc {
    Where W = Where::Unbound;
    int Idx = 0;
  };

  /// Resolves \p Name in function \p F, threading captures through every
  /// enclosing function as needed.
  Loc resolveIn(FnState *F, const std::string &Name) {
    for (auto It = F->Locals.rbegin(); It != F->Locals.rend(); ++It)
      if (It->Name == Name)
        return {Where::Local, It->Slot};
    for (size_t I = 0; I < F->Captures.size(); ++I)
      if (F->Captures[I] == Name)
        return {Where::Capture, static_cast<int>(I)};
    if (Name == F->SelfName) {
      // Recursive self-reference: captured and fixed up after creation.
      F->Captures.push_back(Name);
      return {Where::Capture, static_cast<int>(F->Captures.size()) - 1};
    }
    if (!F->Parent)
      return {Where::Unbound, 0};
    // Only capture what an enclosing scope actually binds.
    Loc Up = resolveIn(F->Parent, Name);
    if (Up.W == Where::Unbound)
      return Up;
    F->Captures.push_back(Name);
    return {Where::Capture, static_cast<int>(F->Captures.size()) - 1};
  }

  void emitLoad(const Expr &E, const std::string &Name) {
    Loc L = resolveIn(Cur, Name);
    switch (L.W) {
    case Where::Local:
      emit(Op::LoadLocal, L.Idx);
      return;
    case Where::Capture:
      emit(Op::LoadCapture, L.Idx);
      return;
    case Where::Unbound:
      if (findBuiltin(Name)) {
        errorAt(E, "builtin '" + Name +
                       "' must be fully applied (eta-expand with fn to "
                       "pass it as a value)");
      } else {
        errorAt(E, "unbound variable '" + Name + "' (compiler)");
      }
      emit(Op::PushUnit);
      return;
    }
  }

  /// Compiles a function body in a fresh FnState and returns its index.
  /// \p SelfName makes the function's own closure visible recursively.
  template <typename BodyFn>
  int compileFunction(const std::string &Name, const std::string &SelfName,
                      BodyFn &&EmitBody) {
    FnState Sub;
    Sub.Parent = Cur;
    Sub.Proto.Name = Name;
    Sub.Proto.NumLocals = 1; // Slot 0 is the parameter.
    Sub.SelfName = SelfName;

    FnState *Saved = Cur;
    Cur = &Sub;
    EmitBody();
    emit(Op::Ret);
    Cur = Saved;

    int FnIdx = static_cast<int>(P.Fns.size());
    P.Fns.push_back(std::move(Sub.Proto));

    // Materialize the closure in the enclosing function: load captures
    // (self-captures get a placeholder fixed after creation), MkClosure.
    std::vector<int> SelfFixups;
    for (size_t I = 0; I < Sub.Captures.size(); ++I) {
      if (!SelfName.empty() && Sub.Captures[I] == SelfName) {
        emit(Op::PushUnit);
        SelfFixups.push_back(static_cast<int>(I));
        continue;
      }
      // Note: enclosing loads may add captures to *Cur* transitively.
      Expr Dummy(ExprKind::Var);
      Dummy.Str = Sub.Captures[I];
      emitLoad(Dummy, Sub.Captures[I]);
    }
    emit(Op::MkClosure, FnIdx, static_cast<int32_t>(Sub.Captures.size()));
    for (int CapIdx : SelfFixups)
      emit(Op::FixSelf, CapIdx);
    return FnIdx;
  }

  /// Curried lambda: parameter ParamAt of E.Params; the innermost level
  /// compiles the body.
  void compileLambdaFrom(const Expr &E, size_t ParamAt,
                         const std::string &SelfName) {
    compileFunction(
        (SelfName.empty() ? "fn" : SelfName) +
            (ParamAt ? "$" + std::to_string(ParamAt) : ""),
        ParamAt == 0 ? SelfName : "", [&] {
          Cur->Locals.push_back({E.Params[ParamAt], 0});
          if (ParamAt + 1 < E.Params.size())
            compileLambdaFrom(E, ParamAt + 1, SelfName);
          else
            compileExpr(*E.A, /*Tail=*/true);
        });
  }

  /// Application spine handling: builtins are recognized at the head.
  /// When \p Tail, the last call of the spine reuses the current frame.
  void compileApp(const Expr &E, bool Tail) {
    // Unwind the spine.
    std::vector<const Expr *> Args;
    const Expr *Head = &E;
    while (Head->Kind == ExprKind::App) {
      Args.push_back(Head->B.get());
      Head = Head->A.get();
    }
    // Innermost argument is last in Args; reverse to evaluation order.
    std::vector<const Expr *> Ordered(Args.rbegin(), Args.rend());

    const BuiltinInfo *B = nullptr;
    if (Head->Kind == ExprKind::Var &&
        resolveIn(Cur, Head->Str).W == Where::Unbound)
      B = findBuiltin(Head->Str);

    if (B) {
      if (static_cast<int>(Ordered.size()) < B->Arity) {
        errorAt(*Head, "builtin '" + std::string(B->Name) +
                           "' expects " + std::to_string(B->Arity) +
                           " arguments (partial application is not "
                           "supported; wrap it in fn)");
        emit(Op::PushUnit);
        return;
      }
      for (int I = 0; I < B->Arity; ++I)
        compileExpr(*Ordered[static_cast<size_t>(I)]);
      emit(B->Opcode);
      // Extra arguments apply to the builtin's (function) result.
      for (size_t I = static_cast<size_t>(B->Arity); I < Ordered.size();
           ++I) {
        compileExpr(*Ordered[I]);
        emit(Tail && I + 1 == Ordered.size() ? Op::TailCall : Op::Call);
      }
      return;
    }

    compileExpr(*Head);
    for (size_t I = 0; I < Ordered.size(); ++I) {
      compileExpr(*Ordered[I]);
      emit(Tail && I + 1 == Ordered.size() ? Op::TailCall : Op::Call);
    }
  }

  /// Sets the source-map location for the duration of \p E's own emits;
  /// nested child expressions override it and restore on return, so each
  /// instruction is attributed to the innermost expression that needed it.
  void compileExpr(const Expr &E, bool Tail = false) {
    uint32_t SavedLoc = CurLoc;
    CurLoc = packSrcLoc(E.Line, E.Col);
    compileExprInner(E, Tail);
    CurLoc = SavedLoc;
  }

  void compileExprInner(const Expr &E, bool Tail) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      if (E.IntVal >= INT32_MIN && E.IntVal <= INT32_MAX) {
        emit(Op::PushInt, static_cast<int32_t>(E.IntVal));
      } else {
        P.IntPool.push_back(E.IntVal);
        emit(Op::PushBigInt, static_cast<int32_t>(P.IntPool.size()) - 1);
      }
      return;
    case ExprKind::BoolLit:
      emit(Op::PushBool, static_cast<int32_t>(E.IntVal));
      return;
    case ExprKind::StrLit:
      P.StrPool.push_back(E.Str);
      emit(Op::PushStr, static_cast<int32_t>(P.StrPool.size()) - 1);
      return;
    case ExprKind::UnitLit:
      emit(Op::PushUnit);
      return;
    case ExprKind::Var:
      emitLoad(E, E.Str);
      return;

    case ExprKind::Lambda:
      compileLambdaFrom(E, 0, "");
      return;

    case ExprKind::LetVal: {
      compileExpr(*E.A);
      size_t Saved = Cur->Locals.size();
      int Slot = newLocal(E.Str);
      emit(Op::StoreLocal, Slot);
      compileExpr(*E.B, Tail);
      Cur->Locals.resize(Saved);
      return;
    }

    case ExprKind::LetFun: {
      compileLambdaFrom(E, 0, E.Str); // Closure left on stack.
      size_t Saved = Cur->Locals.size();
      int Slot = newLocal(E.Str);
      emit(Op::StoreLocal, Slot);
      compileExpr(*E.B, Tail);
      Cur->Locals.resize(Saved);
      return;
    }

    case ExprKind::If: {
      compileExpr(*E.A);
      int JzAt = emit(Op::Jz);
      compileExpr(*E.B, Tail);
      int JmpAt = emit(Op::Jmp);
      patch(JzAt, here());
      compileExpr(*E.C, Tail);
      patch(JmpAt, here());
      return;
    }

    case ExprKind::App:
      compileApp(E, Tail);
      return;

    case ExprKind::Binop: {
      // Short-circuit forms first.
      if (E.Op == Tok::KwAndalso) {
        compileExpr(*E.A);
        int JzAt = emit(Op::Jz);
        compileExpr(*E.B);
        int JmpAt = emit(Op::Jmp);
        patch(JzAt, here());
        emit(Op::PushBool, 0);
        patch(JmpAt, here());
        return;
      }
      if (E.Op == Tok::KwOrelse) {
        compileExpr(*E.A);
        int JzAt = emit(Op::Jz);
        emit(Op::PushBool, 1);
        int JmpAt = emit(Op::Jmp);
        patch(JzAt, here());
        compileExpr(*E.B);
        patch(JmpAt, here());
        return;
      }
      compileExpr(*E.A);
      compileExpr(*E.B);
      switch (E.Op) {
      case Tok::Plus:
        emit(Op::Add);
        return;
      case Tok::Minus:
        emit(Op::Sub);
        return;
      case Tok::Star:
        emit(Op::Mul);
        return;
      case Tok::Slash:
        emit(Op::Div);
        return;
      case Tok::Percent:
        emit(Op::Mod);
        return;
      case Tok::Eq:
        emit(Op::Eq);
        return;
      case Tok::Ne:
        emit(Op::Ne);
        return;
      case Tok::Lt:
        emit(Op::Lt);
        return;
      case Tok::Le:
        emit(Op::Le);
        return;
      case Tok::Gt:
        emit(Op::Gt);
        return;
      case Tok::Ge:
        emit(Op::Ge);
        return;
      default:
        MPL_UNREACHABLE("unknown binop in compiler");
      }
    }

    case ExprKind::Not:
      compileExpr(*E.A);
      emit(Op::Not);
      return;
    case ExprKind::Neg:
      compileExpr(*E.A);
      emit(Op::Neg);
      return;
    case ExprKind::Deref:
      compileExpr(*E.A);
      emit(Op::Deref);
      return;
    case ExprKind::RefNew:
      compileExpr(*E.A);
      emit(Op::MkRef);
      return;
    case ExprKind::Assign:
      compileExpr(*E.A);
      compileExpr(*E.B);
      emit(Op::Assign);
      return;
    case ExprKind::Pair:
      compileExpr(*E.A);
      compileExpr(*E.B);
      emit(Op::MkPair);
      return;

    case ExprKind::Par: {
      // Compile each branch as a zero-argument function ("thunk") and run
      // them under the runtime's fork-join with fresh heaps.
      Expr ThunkA(ExprKind::Lambda);
      ThunkA.Line = E.A->Line;
      ThunkA.Col = E.A->Col;
      ThunkA.Params.push_back("$unit");
      // Borrow the child without taking ownership.
      ThunkA.A = std::unique_ptr<Expr>(const_cast<Expr *>(E.A.get()));
      compileLambdaFrom(ThunkA, 0, "");
      (void)ThunkA.A.release();

      Expr ThunkB(ExprKind::Lambda);
      ThunkB.Line = E.B->Line;
      ThunkB.Col = E.B->Col;
      ThunkB.Params.push_back("$unit");
      ThunkB.A = std::unique_ptr<Expr>(const_cast<Expr *>(E.B.get()));
      compileLambdaFrom(ThunkB, 0, "");
      (void)ThunkB.A.release();

      emit(Op::ParCall);
      return;
    }

    case ExprKind::Seq:
      compileExpr(*E.A);
      emit(Op::Pop);
      compileExpr(*E.B, Tail);
      return;

    case ExprKind::NilLit:
      // [] is the immediate boxInt(0); cons cells are pair records, so
      // the nil test is a plain slot comparison.
      emit(Op::PushInt, 0);
      return;

    case ExprKind::Cons:
      compileExpr(*E.A);
      compileExpr(*E.B);
      emit(Op::MkPair);
      return;

    case ExprKind::LetEffect: {
      // A fresh static identity per declaration, so shadowing re-declares
      // a distinct effect rather than aliasing the outer one.
      int Id = static_cast<int>(P.EffectNames.size());
      P.EffectNames.push_back(E.Str);
      EffectScope.emplace_back(E.Str, Id);
      compileExpr(*E.B, Tail);
      EffectScope.pop_back();
      return;
    }

    case ExprKind::Perform: {
      compileExpr(*E.A);
      int Id = resolveEffect(E.Str);
      if (Id < 0) {
        errorAt(E, "unbound effect '" + E.Str + "' (compiler)");
        Id = 0;
      }
      emit(Op::Suspend, Id);
      return;
    }

    case ExprKind::Resume:
      compileExpr(*E.A);
      compileExpr(*E.B);
      emit(Op::Resume);
      return;

    case ExprKind::Handle: {
      // Arm effect identities resolve in the scope of the handle itself.
      HandlerTable Table;
      for (const HArm &Arm : E.HandlerArms) {
        int Id = resolveEffect(Arm.Eff);
        if (Id < 0) {
          errorAt(E, "unbound effect '" + Arm.Eff + "' (compiler)");
          Id = 0;
        }
        Table.EffectIds.push_back(Id);
      }
      int TableIdx = static_cast<int>(P.Handlers.size());
      P.Handlers.push_back(std::move(Table));

      // Each arm is one unary function whose parameter is the
      // (payload, continuation) pair the VM builds at capture time; the
      // arm closures sit on the stack below the body thunk for the whole
      // dynamic extent of the handled body.
      for (const HArm &Arm : E.HandlerArms) {
        compileFunction("handler$" + Arm.Eff, "", [&] {
          Cur->Locals.push_back({"$pk", 0});
          emit(Op::LoadLocal, 0);
          emit(Op::Fst);
          int ValSlot = newLocal(Arm.ValName);
          emit(Op::StoreLocal, ValSlot);
          emit(Op::LoadLocal, 0);
          emit(Op::Snd);
          int KSlot = newLocal(Arm.KName);
          emit(Op::StoreLocal, KSlot);
          compileExpr(*Arm.Body, /*Tail=*/true);
        });
      }

      // The handled body compiles to a thunk exactly like a par branch.
      Expr Thunk(ExprKind::Lambda);
      Thunk.Line = E.A->Line;
      Thunk.Col = E.A->Col;
      Thunk.Params.push_back("$unit");
      Thunk.A = std::unique_ptr<Expr>(const_cast<Expr *>(E.A.get()));
      compileLambdaFrom(Thunk, 0, "");
      (void)Thunk.A.release();

      emit(Op::Handle, TableIdx,
           static_cast<int32_t>(E.HandlerArms.size()));
      return;
    }

    case ExprKind::Case: {
      compileExpr(*E.A);
      int ScrutSlot = Cur->Proto.NumLocals++; // Anonymous local.
      emit(Op::StoreLocal, ScrutSlot);
      std::vector<int> EndJumps;
      for (const auto &Arm : E.Arms) {
        size_t SavedLocals = Cur->Locals.size();
        std::vector<int> FailJumps;
        compilePat(*Arm.first, ScrutSlot, FailJumps);
        compileExpr(*Arm.second, Tail);
        EndJumps.push_back(emit(Op::Jmp));
        for (int J : FailJumps)
          patch(J, here());
        Cur->Locals.resize(SavedLocals);
      }
      emit(Op::MatchFail);
      for (int J : EndJumps)
        patch(J, here());
      return;
    }
    }
    MPL_UNREACHABLE("covered switch");
  }

  /// Emits the test-and-bind sequence for pattern \p P against the value
  /// in frame slot \p ValueSlot. Mismatch jumps are collected in
  /// \p FailJumps (patched to the next arm).
  void compilePat(const Pat &P, int ValueSlot,
                  std::vector<int> &FailJumps) {
    switch (P.Kind) {
    case PatKind::Wild:
    case PatKind::Unit:
      return;
    case PatKind::Var: {
      emit(Op::LoadLocal, ValueSlot);
      int Slot = newLocal(P.Str);
      emit(Op::StoreLocal, Slot);
      return;
    }
    case PatKind::IntLit:
      emit(Op::LoadLocal, ValueSlot);
      if (P.IntVal >= INT32_MIN && P.IntVal <= INT32_MAX) {
        emit(Op::PushInt, static_cast<int32_t>(P.IntVal));
      } else {
        this->P.IntPool.push_back(P.IntVal);
        emit(Op::PushBigInt,
             static_cast<int32_t>(this->P.IntPool.size()) - 1);
      }
      emit(Op::Eq);
      FailJumps.push_back(emit(Op::Jz));
      return;
    case PatKind::BoolLit:
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::PushBool, static_cast<int32_t>(P.IntVal));
      emit(Op::Eq);
      FailJumps.push_back(emit(Op::Jz));
      return;
    case PatKind::Nil:
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::PushInt, 0);
      emit(Op::Eq);
      FailJumps.push_back(emit(Op::Jz));
      return;
    case PatKind::Cons: {
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::PushInt, 0);
      emit(Op::Eq);
      FailJumps.push_back(emit(Op::Jnz)); // Nil: no match.
      int Head = Cur->Proto.NumLocals++;
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::Fst);
      emit(Op::StoreLocal, Head);
      compilePat(*P.PA, Head, FailJumps);
      int Tail = Cur->Proto.NumLocals++;
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::Snd);
      emit(Op::StoreLocal, Tail);
      compilePat(*P.PB, Tail, FailJumps);
      return;
    }
    case PatKind::Pair: {
      int First = Cur->Proto.NumLocals++;
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::Fst);
      emit(Op::StoreLocal, First);
      compilePat(*P.PA, First, FailJumps);
      int Second = Cur->Proto.NumLocals++;
      emit(Op::LoadLocal, ValueSlot);
      emit(Op::Snd);
      emit(Op::StoreLocal, Second);
      compilePat(*P.PB, Second, FailJumps);
      return;
    }
    }
    MPL_UNREACHABLE("covered switch");
  }
};

} // namespace

bool mpl::pml::compile(const Expr &Root, Program &Out,
                       std::vector<std::string> &Errors) {
  Out = Program();
  Compiler C(Out, Errors);

  Compiler::FnState Main;
  Main.Proto.Name = "main";
  Main.Proto.NumLocals = 1;
  C.Cur = &Main;
  C.compileExpr(Root);
  C.emit(Op::Ret);
  MPL_CHECK(Main.Captures.empty(), "top level cannot capture");

  Out.Main = static_cast<int>(Out.Fns.size());
  Out.Fns.push_back(std::move(Main.Proto));
  return !C.Failed;
}

std::string mpl::pml::disassemble(const Program &P) {
  static const char *Names[] = {
      "PushInt", "PushBigInt", "PushBool", "PushUnit", "PushStr",
      "LoadLocal", "StoreLocal", "LoadCapture", "Pop", "MkClosure",
      "FixSelf", "Call", "TailCall", "Ret", "Jmp", "Jz", "Add", "Sub", "Mul", "Div",
      "Mod", "Neg", "Eq", "Ne", "Lt", "Le", "Gt", "Ge", "Not", "MkPair",
      "Fst", "Snd", "MkRef", "Deref", "Assign", "Alloc", "AGet", "ASet",
      "ALen", "ParCall", "Print", "PrintInt", "Jnz", "MatchFail",
      "Suspend", "Resume", "Handle"};
  std::string Out;
  char Buf[128];
  for (size_t F = 0; F < P.Fns.size(); ++F) {
    std::snprintf(Buf, sizeof(Buf), "fn %zu <%s> locals=%d%s\n", F,
                  P.Fns[F].Name.c_str(), P.Fns[F].NumLocals,
                  static_cast<int>(F) == P.Main ? " (main)" : "");
    Out += Buf;
    for (size_t I = 0; I < P.Fns[F].Code.size(); ++I) {
      const Instr &In = P.Fns[F].Code[I];
      std::snprintf(Buf, sizeof(Buf), "  %4zu  %-12s %d %d\n", I,
                    Names[static_cast<int>(In.O)], In.A, In.B);
      Out += Buf;
    }
  }
  return Out;
}
