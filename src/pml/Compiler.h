//===- pml/Compiler.h - PML bytecode compiler -------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles type-checked PML to a stack bytecode executed by pml::Vm on
/// the hierarchical-heap runtime. Closure conversion is flat: each
/// lambda's free variables are copied into a closure object at creation.
/// `par (e1, e2)` compiles both branches to zero-argument functions and
/// emits ParCall, which the VM maps onto rt::par — giving every PML task
/// its own heap, full effects included.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_COMPILER_H
#define MPL_PML_COMPILER_H

#include "pml/Ast.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mpl {

namespace jit {
class ProgramJit;
} // namespace jit

namespace pml {

enum class Op : uint8_t {
  PushInt,     ///< A = small int value (fits int32).
  PushBigInt,  ///< A = index into the int pool.
  PushBool,    ///< A = 0/1.
  PushUnit,
  PushStr,     ///< A = index into the string pool.
  LoadLocal,   ///< A = frame slot.
  StoreLocal,  ///< A = frame slot (pops).
  LoadCapture, ///< A = capture index.
  Pop,
  MkClosure, ///< A = function index, B = capture count (pops captures).
  FixSelf,   ///< A = capture index; closure.captures[A] := closure (top).
  Call,      ///< Pops argument then closure; pushes result.
  TailCall,  ///< Like Call, but replaces the current frame (proper TCO).
  Ret,
  Jmp, ///< A = absolute target.
  Jz,  ///< A = absolute target; pops condition.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  MkPair,
  Fst,
  Snd,
  MkRef,
  Deref,
  Assign,
  Alloc,
  AGet,
  ASet,
  ALen,
  ParCall, ///< Pops closure B then closure A; runs in parallel; pushes pair.
  Print,
  PrintInt,
  Jnz,       ///< A = absolute target; pops condition, jumps when true.
  MatchFail, ///< Traps: no case arm matched.
  // Effect handlers (DESIGN.md §13).
  Suspend, ///< A = effect id. Pops payload; captures the frame chain up to
           ///< the innermost matching handler into a heap continuation
           ///< object and invokes the handler arm with (payload, cont).
  Resume,  ///< Pops value then continuation; reinstates the captured
           ///< frames (one-shot) and delivers the value to the suspended
           ///< perform. Yields the reinstated computation's final answer.
  Handle,  ///< A = handler table index, B = arm count. Pops the body
           ///< thunk; the B arm closures below it stay on the stack for
           ///< the dynamic extent of the body.
};

struct Instr {
  Op O;
  int32_t A = 0;
  int32_t B = 0;
};

/// Packed source location for the bytecode source map: (Line << 8) | Col,
/// both clamped (line to 16 bits, column to 8). 0 means "no location".
/// The span ledger (obs/Span.h) stores the same encoding in its records.
inline uint32_t packSrcLoc(int Line, int Col) {
  uint32_t L = Line < 0 ? 0 : (Line > 0xffff ? 0xffff : uint32_t(Line));
  uint32_t C = Col < 0 ? 0 : (Col > 0xff ? 0xff : uint32_t(Col));
  return (L << 8) | C;
}

/// One compiled function: unary (curried), with a fixed local frame.
struct FnProto {
  std::string Name;
  int NumLocals = 0; ///< Frame size including the parameter at slot 0.
  std::vector<Instr> Code;
  /// Source map, parallel to Code: packSrcLoc of the innermost expression
  /// each instruction was emitted for. Always the same length as Code.
  std::vector<uint32_t> Src;
};

/// One handler's arm table: EffectIds[I] is the static effect identity
/// the I-th arm (closure) handles. Arm order matches the stack order the
/// Handle opcode expects.
struct HandlerTable {
  std::vector<int> EffectIds;
};

/// A compiled program. Fns[Main] is the zero-argument entry function.
struct Program {
  std::vector<FnProto> Fns;
  std::vector<std::string> StrPool;
  std::vector<int64_t> IntPool;
  std::vector<HandlerTable> Handlers;
  /// Effect declaration names, indexed by static effect id (diagnostics).
  std::vector<std::string> EffectNames;
  int Main = 0;
  /// Tier state for the template JIT (pml/jit/Jit.h), created lazily by the
  /// first root Vm when MPL_JIT is armed and shared by every ParCall sub-VM
  /// running this program. Mutable: attaching JIT state does not make the
  /// program any less logically const.
  mutable std::shared_ptr<jit::ProgramJit> Jit;
};

/// Compiles \p Root (already type-checked). Returns false and appends to
/// \p Errors on failure (e.g. partial application of a builtin).
bool compile(const Expr &Root, Program &Out,
             std::vector<std::string> &Errors);

/// Disassembles a program for tests and debugging.
std::string disassemble(const Program &P);

} // namespace pml
} // namespace mpl

#endif // MPL_PML_COMPILER_H
