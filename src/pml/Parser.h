//===- pml/Parser.h - PML recursive-descent parser --------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for PML. Grammar (lowest to highest precedence):
///
///   program  ::= topdecl* expr
///   topdecl  ::= "val" id "=" expr | "fun" id id+ "=" expr
///   expr     ::= nonseq (";" expr)?
///   nonseq   ::= "let" decl+ "in" expr "end"
///              | "fn" id+ "=>" expr
///              | "if" expr "then" expr "else" expr
///              | assign
///   decl     ::= "val" id "=" expr | "fun" id id+ "=" expr
///   assign   ::= orelse (":=" assign)?
///   orelse   ::= andalso ("orelse" andalso)*
///   andalso  ::= cmp ("andalso" cmp)*
///   cmp      ::= add (("="|"<>"|"<"|"<="|">"|">=") add)?
///   add      ::= mul (("+"|"-") mul)*
///   mul      ::= app (("*"|"/"|"%") app)*
///   app      ::= prefix prefix*   (left-assoc; arguments must begin on
///                                  the same source line as the function)
///   prefix   ::= ("!" | "not" | "-" | "ref") prefix | atom
///   atom     ::= int | string | "true" | "false" | id
///              | "(" ")" | "(" expr ")" | "(" expr "," expr ")"
///              | "par" "(" expr "," expr ")"
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_PARSER_H
#define MPL_PML_PARSER_H

#include "pml/Ast.h"

#include <string>
#include <vector>

namespace mpl {
namespace pml {

/// Parses a whole program (top-level declarations desugar to nested lets
/// around the final expression). Returns null and fills \p Errors on
/// failure.
ExprPtr parseProgram(const std::string &Source,
                     std::vector<std::string> &Errors);

} // namespace pml
} // namespace mpl

#endif // MPL_PML_PARSER_H
