//===- pml/Vm.h - PML bytecode interpreter ----------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PML virtual machine. All PML values live in the hierarchical heap:
/// closures are mutable arrays (slot 0 = function index, then captures),
/// pairs are immutable records, refs/arrays map directly onto runtime
/// refs/arrays. Every mutable access goes through the entanglement
/// barriers, and ParCall maps onto rt::par — so compiled PML programs get
/// exactly the semantics the paper gives Parallel ML: fork-join
/// parallelism with unrestricted effects, managed entanglement included.
///
/// Guest calls run on an explicit frame stack (no native recursion), which
/// is what makes first-class effect handlers possible: Suspend slices the
/// frame chain between the perform and the innermost matching handler out
/// of the Frames/value stacks into a heap continuation object, and Resume
/// splices it back in — on whichever strand holds the continuation, which
/// need not be the strand (or worker, or heap) that captured it. The pin
/// protocol for those captured frames lives in core/Em (DESIGN.md §13).
/// Only ParCall recurses natively, via a sub-VM per branch; effects are
/// delimited by rt::par — a perform in a branch cannot be answered by a
/// handler outside it.
///
/// The VM's value stack is registered as a GC root range; a collection can
/// safely happen at any allocation point during execution.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_VM_H
#define MPL_PML_VM_H

#include "mm/Object.h"
#include "pml/Compiler.h"
#include "pml/Types.h"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpl {

namespace jit {
struct VmJit;
} // namespace jit

namespace pml {

/// Shared trap state: a runtime error in any parallel branch aborts the
/// whole program evaluation.
struct TrapState {
  std::atomic<bool> Trapped{false};
  std::mutex Lock;
  std::string Message;

  void trap(const std::string &Msg) {
    std::lock_guard<std::mutex> G(Lock);
    if (!Trapped.exchange(true))
      Message = Msg;
  }
};

struct VmBranch;

/// Executes a compiled program. Must run inside rt::Runtime::run (the VM
/// allocates from the calling task's heap).
class Vm {
public:
  struct Result {
    bool Ok = false;
    Slot Value = 0;
    std::string Error;
  };

  /// \p CaptureOut, when non-null, receives print output instead of stdout.
  explicit Vm(const Program &P, std::string *CaptureOut = nullptr);
  ~Vm();

  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Runs the main function to completion.
  Result run();

private:
  friend struct VmBranch;
  /// The JIT's out-of-line helpers (pml/jit/Jit.h) run interpreter opcode
  /// bodies on this VM's state from native code.
  friend struct jit::VmJit;
  Vm(const Program &P, std::string *CaptureOut,
     std::shared_ptr<TrapState> Trap);

  /// One guest frame. The value-stack layout at Base is
  /// [closure, param, locals..., operands...]; a call reuses the caller's
  /// [fn, arg] operand slots as the callee's [closure, param], so Ret
  /// restoring Sp = Base removes them for free. OperandsToPop covers extra
  /// protocol slots *below* Base that belong to this frame: zero for a
  /// plain call, the arm count for a Handle body thunk (whose arm closures
  /// sit just below the thunk for the body's dynamic extent).
  struct Frame {
    const FnProto *Fn = nullptr;
    int FnIdx = 0;
    size_t Ip = 0;
    size_t Base = 0;
    int HandlerIdx = -1; ///< Handlers entry this frame owns (pops on Ret).
    uint32_t OperandsToPop = 0;
  };

  /// One installed `handle ... with ... end`. ArmsBase is where the arm
  /// closures sit on the value stack — and where the handle expression's
  /// result lands, whether the body returns normally or an arm answers for
  /// it. FrameIdx is the body-thunk frame: Suspend captures Frames[FrameIdx
  /// ..] when this handler answers a perform.
  struct HandlerEnt {
    int TableIdx = 0;
    size_t ArmsBase = 0;
    int NumArms = 0;
    size_t FrameIdx = 0;
  };

  /// Pushes [Closure, Arg], runs to completion, returns the result.
  Slot callFunction(int FnIdx, Slot Closure, Slot Arg);
  /// Executes until the frame stack shrinks back to \p Floor.
  void runLoop(size_t Floor);
  /// Expects [closure, arg] on top of the value stack; false on trap.
  bool pushFrame(int FnIdx, int HandlerIdx, uint32_t OperandsToPop);
  void doSuspend(int32_t EffectId);
  void doResume();
  void push(Slot V);
  Slot pop();

  const Program &P;
  std::string *CaptureOut;
  std::shared_ptr<TrapState> Trap;

  static constexpr size_t StackCap = 1 << 16;
  // Guest calls are frame-stack entries, not native recursion, so this
  // bound is about guest resource sanity; but ParCall still nests a native
  // sub-VM per branch, and under ASan redzones inflate those native frames
  // enough that deeply nested par must trip proportionally earlier.
#if defined(__SANITIZE_ADDRESS__)
  static constexpr int MaxCallDepth = 3000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  static constexpr int MaxCallDepth = 3000;
#else
  static constexpr int MaxCallDepth = 8000;
#endif
#else
  static constexpr int MaxCallDepth = 8000;
#endif

  std::unique_ptr<Slot[]> Stack;
  Slot *StackBase = nullptr;
  size_t Sp = 0;
  std::vector<Frame> Frames;
  std::vector<HandlerEnt> Handlers;

  /// Exception captured by a JIT helper (Detect-mode EntanglementError,
  /// deadline expiry, OOM). Native frames must never be unwound through, so
  /// helpers catch here and the dispatcher rethrows from its own C++ frame
  /// once the generated code has returned.
  std::exception_ptr PendingExc;
};

/// Renders a PML value of (resolved) type \p T for display, e.g.
/// "(3, true)". Refs/arrays/functions/continuations render opaquely.
std::string renderValue(Slot V, Ty *T);

/// One-stop evaluation: parse, type-check, compile, and run \p Source.
/// Must be called inside rt::Runtime::run. On success fills \p Rendered
/// (the value) and \p TypeStr; print output is appended to \p Output.
/// Returns false and fills \p Errors otherwise.
bool evalSource(const std::string &Source, std::string &Output,
                std::string &Rendered, std::string &TypeStr,
                std::vector<std::string> &Errors);

} // namespace pml
} // namespace mpl

#endif // MPL_PML_VM_H
