//===- pml/Vm.h - PML bytecode interpreter ----------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PML virtual machine. All PML values live in the hierarchical heap:
/// closures are mutable arrays (slot 0 = function index, then captures),
/// pairs are immutable records, refs/arrays map directly onto runtime
/// refs/arrays. Every mutable access goes through the entanglement
/// barriers, and ParCall maps onto rt::par — so compiled PML programs get
/// exactly the semantics the paper gives Parallel ML: fork-join
/// parallelism with unrestricted effects, managed entanglement included.
///
/// The VM's value stack is registered as a GC root range; a collection can
/// safely happen at any allocation point during execution.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_VM_H
#define MPL_PML_VM_H

#include "mm/Object.h"
#include "pml/Compiler.h"
#include "pml/Types.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

namespace mpl {
namespace pml {

/// Shared trap state: a runtime error in any parallel branch aborts the
/// whole program evaluation.
struct TrapState {
  std::atomic<bool> Trapped{false};
  std::mutex Lock;
  std::string Message;

  void trap(const std::string &Msg) {
    std::lock_guard<std::mutex> G(Lock);
    if (!Trapped.exchange(true))
      Message = Msg;
  }
};

struct VmBranch;

/// Executes a compiled program. Must run inside rt::Runtime::run (the VM
/// allocates from the calling task's heap).
class Vm {
public:
  struct Result {
    bool Ok = false;
    Slot Value = 0;
    std::string Error;
  };

  /// \p CaptureOut, when non-null, receives print output instead of stdout.
  explicit Vm(const Program &P, std::string *CaptureOut = nullptr);
  ~Vm();

  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Runs the main function to completion.
  Result run();

private:
  friend struct VmBranch;
  Vm(const Program &P, std::string *CaptureOut,
     std::shared_ptr<TrapState> Trap);

  Slot execFunction(int FnIdx, Slot Closure, Slot Arg, int Depth);
  void push(Slot V);
  Slot pop();

  const Program &P;
  std::string *CaptureOut;
  std::shared_ptr<TrapState> Trap;

  static constexpr size_t StackCap = 1 << 16;
  // The guest call-depth guard must trip before the *native* stack runs
  // out (execFunction recurses for guest calls). ASan redzones inflate
  // each native frame by roughly an order of magnitude, so the guard has
  // to be proportionally lower there.
#if defined(__SANITIZE_ADDRESS__)
  static constexpr int MaxCallDepth = 3000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  static constexpr int MaxCallDepth = 3000;
#else
  static constexpr int MaxCallDepth = 8000;
#endif
#else
  static constexpr int MaxCallDepth = 8000;
#endif

  std::unique_ptr<Slot[]> Stack;
  Slot *StackBase = nullptr;
  size_t Sp = 0;
};

/// Renders a PML value of (resolved) type \p T for display, e.g.
/// "(3, true)". Refs/arrays/functions render opaquely.
std::string renderValue(Slot V, Ty *T);

/// One-stop evaluation: parse, type-check, compile, and run \p Source.
/// Must be called inside rt::Runtime::run. On success fills \p Rendered
/// (the value) and \p TypeStr; print output is appended to \p Output.
/// Returns false and fills \p Errors otherwise.
bool evalSource(const std::string &Source, std::string &Output,
                std::string &Rendered, std::string &TypeStr,
                std::vector<std::string> &Errors);

} // namespace pml
} // namespace mpl

#endif // MPL_PML_VM_H
