//===- pml/Lexer.cpp - PML tokenizer ----------------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/Lexer.h"

#include <cctype>
#include <cstdio>

using namespace mpl;
using namespace mpl::pml;

namespace {

struct Scanner {
  const std::string &Src;
  std::vector<std::string> &Errors;
  size_t At = 0;
  int Line = 1, Col = 1;

  Scanner(const std::string &S, std::vector<std::string> &E)
      : Src(S), Errors(E) {}

  bool done() const { return At >= Src.size(); }
  char peek() const { return done() ? '\0' : Src[At]; }
  char peek2() const { return At + 1 < Src.size() ? Src[At + 1] : '\0'; }

  char advance() {
    char C = Src[At++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void error(const std::string &Msg) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%d:%d: ", Line, Col);
    Errors.push_back(std::string(Buf) + Msg);
  }

  /// Skips whitespace and comments; reports unterminated block comments.
  void skipTrivia() {
    while (!done()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '-' && peek2() == '-') {
        while (!done() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '(' && peek2() == '*') {
        int StartLine = Line;
        advance();
        advance();
        int Depth = 1;
        while (!done() && Depth > 0) {
          if (peek() == '(' && peek2() == '*') {
            advance();
            advance();
            ++Depth;
          } else if (peek() == '*' && peek2() == ')') {
            advance();
            advance();
            --Depth;
          } else {
            advance();
          }
        }
        if (Depth > 0) {
          char Buf[80];
          std::snprintf(Buf, sizeof(Buf),
                        "unterminated comment starting at line %d",
                        StartLine);
          error(Buf);
        }
        continue;
      }
      break;
    }
  }

  Token make(Tok K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    T.Col = Col;
    return T;
  }
};

Tok keywordOf(const std::string &S) {
  if (S == "let")
    return Tok::KwLet;
  if (S == "val")
    return Tok::KwVal;
  if (S == "fun")
    return Tok::KwFun;
  if (S == "fn")
    return Tok::KwFn;
  if (S == "in")
    return Tok::KwIn;
  if (S == "end")
    return Tok::KwEnd;
  if (S == "if")
    return Tok::KwIf;
  if (S == "then")
    return Tok::KwThen;
  if (S == "else")
    return Tok::KwElse;
  if (S == "true")
    return Tok::KwTrue;
  if (S == "false")
    return Tok::KwFalse;
  if (S == "par")
    return Tok::KwPar;
  if (S == "ref")
    return Tok::KwRef;
  if (S == "not")
    return Tok::KwNot;
  if (S == "andalso")
    return Tok::KwAndalso;
  if (S == "orelse")
    return Tok::KwOrelse;
  if (S == "case")
    return Tok::KwCase;
  if (S == "of")
    return Tok::KwOf;
  if (S == "effect")
    return Tok::KwEffect;
  if (S == "perform")
    return Tok::KwPerform;
  if (S == "handle")
    return Tok::KwHandle;
  if (S == "with")
    return Tok::KwWith;
  if (S == "resume")
    return Tok::KwResume;
  return Tok::Ident;
}

} // namespace

std::vector<Token> mpl::pml::lex(const std::string &Source,
                                 std::vector<std::string> &Errors) {
  Scanner S(Source, Errors);
  std::vector<Token> Out;

  while (true) {
    S.skipTrivia();
    if (S.done())
      break;
    Token T = S.make(Tok::Eof);
    char C = S.peek();

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      bool Overflow = false;
      while (!S.done() && std::isdigit(static_cast<unsigned char>(S.peek()))) {
        int64_t D = S.advance() - '0';
        if (V > (INT64_MAX - D) / 10)
          Overflow = true;
        else
          V = V * 10 + D;
      }
      if (Overflow)
        S.error("integer literal overflows 63 bits");
      T.Kind = Tok::Int;
      T.IntVal = V;
      Out.push_back(T);
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name;
      while (!S.done() &&
             (std::isalnum(static_cast<unsigned char>(S.peek())) ||
              S.peek() == '_' || S.peek() == '\''))
        Name += S.advance();
      T.Kind = keywordOf(Name);
      T.Text = Name;
      Out.push_back(T);
      continue;
    }

    if (C == '"') {
      S.advance();
      std::string Body;
      bool Closed = false;
      while (!S.done()) {
        char D = S.advance();
        if (D == '"') {
          Closed = true;
          break;
        }
        if (D == '\\' && !S.done()) {
          char E = S.advance();
          Body += E == 'n' ? '\n' : (E == 't' ? '\t' : E);
          continue;
        }
        Body += D;
      }
      if (!Closed)
        S.error("unterminated string literal");
      T.Kind = Tok::String;
      T.Text = Body;
      Out.push_back(T);
      continue;
    }

    S.advance();
    switch (C) {
    case '(':
      T.Kind = Tok::LParen;
      break;
    case ')':
      T.Kind = Tok::RParen;
      break;
    case '[':
      T.Kind = Tok::LBracket;
      break;
    case ']':
      T.Kind = Tok::RBracket;
      break;
    case '|':
      T.Kind = Tok::Pipe;
      break;
    case ',':
      T.Kind = Tok::Comma;
      break;
    case ';':
      T.Kind = Tok::Semi;
      break;
    case '!':
      T.Kind = Tok::Bang;
      break;
    case '+':
      T.Kind = Tok::Plus;
      break;
    case '-':
      T.Kind = Tok::Minus;
      break;
    case '*':
      T.Kind = Tok::Star;
      break;
    case '/':
      T.Kind = Tok::Slash;
      break;
    case '%':
      T.Kind = Tok::Percent;
      break;
    case '=':
      if (S.peek() == '>') {
        S.advance();
        T.Kind = Tok::Arrow;
      } else {
        T.Kind = Tok::Eq;
      }
      break;
    case ':':
      if (S.peek() == '=') {
        S.advance();
        T.Kind = Tok::Assign;
      } else if (S.peek() == ':') {
        S.advance();
        T.Kind = Tok::ConsOp;
      } else {
        S.error("expected ':=' or '::'");
        continue;
      }
      break;
    case '<':
      if (S.peek() == '>') {
        S.advance();
        T.Kind = Tok::Ne;
      } else if (S.peek() == '=') {
        S.advance();
        T.Kind = Tok::Le;
      } else {
        T.Kind = Tok::Lt;
      }
      break;
    case '>':
      if (S.peek() == '=') {
        S.advance();
        T.Kind = Tok::Ge;
      } else {
        T.Kind = Tok::Gt;
      }
      break;
    default:
      S.error(std::string("unexpected character '") + C + "'");
      continue;
    }
    Out.push_back(T);
  }

  Out.push_back(S.make(Tok::Eof));
  return Out;
}

const char *mpl::pml::tokName(Tok K) {
  switch (K) {
  case Tok::Int:
    return "integer";
  case Tok::String:
    return "string";
  case Tok::Ident:
    return "identifier";
  case Tok::KwLet:
    return "'let'";
  case Tok::KwVal:
    return "'val'";
  case Tok::KwFun:
    return "'fun'";
  case Tok::KwFn:
    return "'fn'";
  case Tok::KwIn:
    return "'in'";
  case Tok::KwEnd:
    return "'end'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwThen:
    return "'then'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwTrue:
    return "'true'";
  case Tok::KwFalse:
    return "'false'";
  case Tok::KwPar:
    return "'par'";
  case Tok::KwRef:
    return "'ref'";
  case Tok::KwNot:
    return "'not'";
  case Tok::KwAndalso:
    return "'andalso'";
  case Tok::KwOrelse:
    return "'orelse'";
  case Tok::KwCase:
    return "'case'";
  case Tok::KwOf:
    return "'of'";
  case Tok::KwEffect:
    return "'effect'";
  case Tok::KwPerform:
    return "'perform'";
  case Tok::KwHandle:
    return "'handle'";
  case Tok::KwWith:
    return "'with'";
  case Tok::KwResume:
    return "'resume'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Pipe:
    return "'|'";
  case Tok::ConsOp:
    return "'::'";
  case Tok::Comma:
    return "','";
  case Tok::Semi:
    return "';'";
  case Tok::Arrow:
    return "'=>'";
  case Tok::Assign:
    return "':='";
  case Tok::Bang:
    return "'!'";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::Slash:
    return "'/'";
  case Tok::Percent:
    return "'%'";
  case Tok::Eq:
    return "'='";
  case Tok::Ne:
    return "'<>'";
  case Tok::Lt:
    return "'<'";
  case Tok::Le:
    return "'<='";
  case Tok::Gt:
    return "'>'";
  case Tok::Ge:
    return "'>='";
  case Tok::Eof:
    return "end of input";
  }
  return "?";
}
