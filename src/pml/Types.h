//===- pml/Types.h - Hindley-Milner type inference for PML -----*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type inference for PML: algorithm W with level-based generalization
/// (Rémy) and the ML value restriction — crucial here, because PML has
/// first-class refs and arrays and unsound polymorphic refs would let
/// programs corrupt the runtime heap.
///
/// Types: int, bool, unit, string, 'a ref, 'a array, t1 * t2, t1 -> t2.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_TYPES_H
#define MPL_PML_TYPES_H

#include "pml/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace mpl {
namespace pml {

enum class TyTag : uint8_t {
  Var,
  Int,
  Bool,
  Unit,
  String,
  Ref,   // A
  Array, // A
  List,  // A
  Pair,  // A * B
  Arrow, // A -> B
  Cont,  // (A, B) cont: resume-value type A, answer type B.
};

/// A type term. Var nodes form a union-find structure through Link.
struct Ty {
  TyTag Tag;
  Ty *A = nullptr;
  Ty *B = nullptr;
  // Var-only:
  Ty *Link = nullptr; ///< Union-find forwarding (null when unbound).
  int Level = 0;      ///< Binding level for generalization.
  int Id = 0;         ///< Stable id for printing.
};

/// Owns all type terms created during one inference run.
class TypeChecker {
public:
  /// Infers the type of \p Program. Returns null and records diagnostics
  /// on error; otherwise returns the (resolved) program type.
  Ty *infer(const Expr &Program, std::vector<std::string> &Errors);

  /// Renders a type for diagnostics, e.g. "(int * 'a) -> 'a array".
  static std::string show(Ty *T);

private:
  struct Scheme {
    Ty *Body = nullptr;
    std::vector<Ty *> Quantified; ///< Unbound vars generalized at the let.
  };
  struct Binding {
    std::string Name;
    Scheme S;
  };
  /// One lexically scoped `effect E` declaration. Effects are monomorphic:
  /// the payload and resume types are fresh vars fixed at the declaration,
  /// so every perform/handle of E agrees on both.
  struct EffectBinding {
    std::string Name;
    Ty *Payload = nullptr;
    Ty *ResumeTy = nullptr;
  };

  Ty *alloc(TyTag Tag, Ty *A = nullptr, Ty *B = nullptr);
  Ty *freshVar();
  static Ty *resolve(Ty *T);

  bool unify(Ty *X, Ty *Y, const Expr &At);
  bool occurs(Ty *Var, Ty *T);
  void updateLevels(Ty *T, int Level);

  Scheme generalize(Ty *T);
  Ty *instantiate(const Scheme &S);

  Ty *inferExpr(const Expr &E);
  Ty *lookupVar(const Expr &E);
  EffectBinding *lookupEffect(const Expr &E, const std::string &Name);
  void checkPat(const Pat &P, Ty *Scrut, size_t &Bound);
  void errorAt(const Expr &E, const std::string &Msg);

  static bool isSyntacticValue(const Expr &E);

  void pushBuiltins();

  std::vector<std::unique_ptr<Ty>> Arena;
  std::vector<Binding> Env;          ///< Scoped stack of bindings.
  std::vector<EffectBinding> EffEnv; ///< Scoped stack of effect decls.
  std::vector<std::string> *Errors = nullptr;
  int CurLevel = 0;
  int NextId = 0;
  bool Failed = false;
};

} // namespace pml
} // namespace mpl

#endif // MPL_PML_TYPES_H
