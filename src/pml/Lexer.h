//===- pml/Lexer.h - PML tokenizer ------------------------------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for PML, the small strict functional language whose programs
/// run on the hierarchical-heap runtime. PML plays the role of Parallel ML
/// in the paper: the carrier language whose compiler (this module) targets
/// the entanglement-managed runtime. Syntax is ML-flavoured:
///
/// \code
///   fun fib n = if n < 2 then n else
///     let val p = par (fib (n-1), fib (n-2)) in fst p + snd p end
///   fib 20
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_LEXER_H
#define MPL_PML_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace mpl {
namespace pml {

enum class Tok : uint8_t {
  // Literals and identifiers.
  Int,
  String,
  Ident,
  // Keywords.
  KwLet,
  KwVal,
  KwFun,
  KwFn,
  KwIn,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwTrue,
  KwFalse,
  KwPar,
  KwRef,
  KwNot,
  KwAndalso,
  KwOrelse,
  KwCase,
  KwOf,
  KwEffect,
  KwPerform,
  KwHandle,
  KwWith,
  KwResume,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Pipe,      // |
  ConsOp,    // ::
  Semi,
  Arrow,     // =>
  Assign,    // :=
  Bang,      // !
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Eq,        // =
  Ne,        // <>
  Lt,
  Le,
  Gt,
  Ge,
  Eof,
};

/// A lexed token with source position (1-based line/column).
struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;   ///< Identifier or string body.
  int64_t IntVal = 0; ///< For Tok::Int.
  int Line = 1;
  int Col = 1;
};

/// Tokenizes \p Source. On a lexical error, appends a message to
/// \p Errors and resynchronizes. Comments are `(* ... *)` (nesting) and
/// `--` to end of line.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

/// Human-readable token-kind name (diagnostics).
const char *tokName(Tok K);

} // namespace pml
} // namespace mpl

#endif // MPL_PML_LEXER_H
