//===- pml/Vm.cpp - PML bytecode interpreter ---------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/Vm.h"

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "pml/Parser.h"

#include <cstdio>

using namespace mpl;
using namespace mpl::ops;
using namespace mpl::pml;

Vm::Vm(const Program &P, std::string *CaptureOut)
    : Vm(P, CaptureOut, std::make_shared<TrapState>()) {}

Vm::Vm(const Program &P, std::string *CaptureOut,
       std::shared_ptr<TrapState> Trap)
    : P(P), CaptureOut(CaptureOut), Trap(std::move(Trap)) {
  Stack = std::make_unique<Slot[]>(StackCap);
  StackBase = Stack.get();
  rt::Runtime::ctx()->Roots.pushRange(&StackBase, &Sp);
}

Vm::~Vm() { rt::Runtime::ctx()->Roots.popRange(&StackBase); }

void Vm::push(Slot V) {
  if (Sp >= StackCap) {
    Trap->trap("value stack overflow");
    return;
  }
  Stack[Sp++] = V;
}

Slot Vm::pop() {
  MPL_DASSERT(Sp > 0, "value stack underflow");
  return Stack[--Sp];
}

namespace {

/// Closure representation helpers: mutable array [fnIdx, captures...].
int closureFn(Object *C) { return static_cast<int>(unboxInt(C->getSlot(0))); }

bool isClosure(Slot V) {
  Object *O = Object::asPointer(V);
  return O && O->kind() == ObjKind::Array && O->length() >= 1 &&
         isInt(O->getSlot(0));
}

/// Structural equality: immediates by value, strings by bytes, immutable
/// pairs recursively, everything mutable by identity (the ML semantics).
bool slotsEqual(Slot A, Slot B) {
  if (A == B)
    return true;
  Object *OA = Object::asPointer(A);
  Object *OB = Object::asPointer(B);
  if (!OA || !OB)
    return false;
  if (OA->kind() != OB->kind())
    return false;
  if (OA->kind() == ObjKind::RawArray) {
    size_t LA = strLen(OA), LB = strLen(OB);
    return LA == LB && std::memcmp(strBytes(OA), strBytes(OB), LA) == 0;
  }
  if (OA->kind() == ObjKind::Record && !OA->isMutable() &&
      !OB->isMutable() && OA->length() == OB->length()) {
    for (uint32_t I = 0, E = OA->length(); I < E; ++I)
      if (!slotsEqual(OA->getSlot(I), OB->getSlot(I)))
        return false;
    return true;
  }
  return false;
}

/// Branch thunk for ParCall (shares the parent's program and trap).
struct BranchEnv {
  const Program *P;
  std::string *CaptureOut;
  std::shared_ptr<TrapState> Trap;
  Slot Closure;
};

} // namespace

struct mpl::pml::VmBranch {
  static Slot run(BranchEnv &Env) {
    Vm Sub(*Env.P, Env.CaptureOut, Env.Trap);
    Object *C = Object::asPointer(Env.Closure);
    if (!C) {
      Env.Trap->trap("par branch is not a closure");
      return unit();
    }
    return Sub.execFunction(closureFn(C), Env.Closure, unit(), 0);
  }
};

Slot Vm::execFunction(int FnIdx, Slot Closure, Slot Arg, int Depth) {
  if (Depth > MaxCallDepth) {
    Trap->trap("call depth limit exceeded");
    return unit();
  }
  const FnProto *Fn = &P.Fns[static_cast<size_t>(FnIdx)];

  // Frame layout: [closure, param, locals..., operands...]. TailCall
  // rebuilds this frame in place instead of recursing.
  size_t Base = Sp;
  push(Closure);
  push(Arg);
  for (int I = 1; I < Fn->NumLocals; ++I)
    push(unit());
  if (Trap->Trapped.load(std::memory_order_relaxed)) {
    Sp = Base;
    return unit();
  }
  auto Local = [&](int32_t I) -> Slot & {
    return Stack[Base + 1 + static_cast<size_t>(I)];
  };

  size_t Ip = 0;
  while (true) {
    MPL_DASSERT(Ip < Fn->Code.size(), "instruction pointer out of range");
    if (Trap->Trapped.load(std::memory_order_relaxed)) {
      Sp = Base;
      return unit();
    }
    const Instr &In = Fn->Code[Ip++];
    switch (In.O) {
    case Op::PushInt:
      push(boxInt(In.A));
      break;
    case Op::PushBigInt:
      push(boxInt(P.IntPool[static_cast<size_t>(In.A)]));
      break;
    case Op::PushBool:
      push(boxBool(In.A != 0));
      break;
    case Op::PushUnit:
      push(unit());
      break;
    case Op::PushStr: {
      const std::string &S = P.StrPool[static_cast<size_t>(In.A)];
      push(Object::fromPointer(newString(S.data(), S.size())));
      break;
    }
    case Op::LoadLocal:
      push(Local(In.A));
      break;
    case Op::StoreLocal:
      Local(In.A) = pop();
      break;
    case Op::LoadCapture: {
      Object *C = Object::asPointer(Stack[Base]);
      MPL_DASSERT(C, "missing closure for capture load");
      push(arrGet(C, static_cast<uint32_t>(In.A) + 1));
      break;
    }
    case Op::Pop:
      pop();
      break;

    case Op::MkClosure: {
      uint32_t N = static_cast<uint32_t>(In.B);
      // Captures are the top N stack slots (rooted); allocate then fill.
      Object *C = newArray(N + 1, boxInt(In.A));
      for (uint32_t I = 0; I < N; ++I)
        arrSet(C, I + 1, Stack[Sp - N + I]);
      Sp -= N;
      push(Object::fromPointer(C));
      break;
    }
    case Op::FixSelf: {
      Object *C = Object::asPointer(Stack[Sp - 1]);
      MPL_DASSERT(C, "FixSelf on non-closure");
      arrSet(C, static_cast<uint32_t>(In.A) + 1, Stack[Sp - 1]);
      break;
    }

    case Op::Call: {
      // Keep operands on the stack (rooted) while reading them.
      Slot ArgV = Stack[Sp - 1];
      Slot FnV = Stack[Sp - 2];
      if (!isClosure(FnV)) {
        Trap->trap("calling a non-function value");
        Sp = Base;
        return unit();
      }
      Object *C = Object::asPointer(FnV);
      Slot R = execFunction(closureFn(C), FnV, ArgV, Depth + 1);
      Sp -= 2;
      push(R);
      if (Trap->Trapped.load(std::memory_order_relaxed)) {
        Sp = Base;
        return unit();
      }
      break;
    }

    case Op::TailCall: {
      Slot ArgV = Stack[Sp - 1];
      Slot FnV = Stack[Sp - 2];
      if (!isClosure(FnV)) {
        Trap->trap("calling a non-function value");
        Sp = Base;
        return unit();
      }
      // Rebuild the frame in place: proper tail calls give PML loops
      // constant stack space (both value stack and native stack).
      Fn = &P.Fns[static_cast<size_t>(
          closureFn(Object::asPointer(FnV)))];
      Sp = Base;
      push(FnV);
      push(ArgV);
      for (int I = 1; I < Fn->NumLocals; ++I)
        push(unit());
      if (Trap->Trapped.load(std::memory_order_relaxed)) {
        Sp = Base;
        return unit();
      }
      Ip = 0;
      break;
    }

    case Op::Ret: {
      Slot R = Stack[Sp - 1];
      Sp = Base;
      return R;
    }

    case Op::Jmp:
      Ip = static_cast<size_t>(In.A);
      break;
    case Op::Jz:
      if (!unboxBool(pop()))
        Ip = static_cast<size_t>(In.A);
      break;
    case Op::Jnz:
      if (unboxBool(pop()))
        Ip = static_cast<size_t>(In.A);
      break;
    case Op::MatchFail:
      Trap->trap("match failure: no case arm matched");
      Sp = Base;
      return unit();

#define MPL_ARITH(OPNAME, EXPR)                                              \
  case Op::OPNAME: {                                                         \
    int64_t B2 = unboxInt(pop());                                            \
    int64_t A2 = unboxInt(pop());                                            \
    (void)A2;                                                                \
    (void)B2;                                                                \
    push(EXPR);                                                              \
    break;                                                                   \
  }
      MPL_ARITH(Add, boxInt(A2 + B2))
      MPL_ARITH(Sub, boxInt(A2 - B2))
      MPL_ARITH(Mul, boxInt(A2 * B2))
      MPL_ARITH(Lt, boxBool(A2 < B2))
      MPL_ARITH(Le, boxBool(A2 <= B2))
      MPL_ARITH(Gt, boxBool(A2 > B2))
      MPL_ARITH(Ge, boxBool(A2 >= B2))
#undef MPL_ARITH

    case Op::Div:
    case Op::Mod: {
      int64_t B2 = unboxInt(pop());
      int64_t A2 = unboxInt(pop());
      if (B2 == 0) {
        Trap->trap("division by zero");
        Sp = Base;
        return unit();
      }
      push(boxInt(In.O == Op::Div ? A2 / B2 : A2 % B2));
      break;
    }

    case Op::Neg:
      push(boxInt(-unboxInt(pop())));
      break;
    case Op::Not:
      push(boxBool(!unboxBool(pop())));
      break;

    case Op::Eq: {
      Slot B2 = pop(), A2 = pop();
      push(boxBool(slotsEqual(A2, B2)));
      break;
    }
    case Op::Ne: {
      Slot B2 = pop(), A2 = pop();
      push(boxBool(!slotsEqual(A2, B2)));
      break;
    }

    case Op::MkPair: {
      // Operands stay rooted on the stack across the allocation.
      Object *Pr = newRecord(0b11, {Stack[Sp - 2], Stack[Sp - 1]});
      Sp -= 2;
      push(Object::fromPointer(Pr));
      break;
    }
    case Op::Fst: {
      Object *Pr = Object::asPointer(pop());
      MPL_DASSERT(Pr, "fst of non-pair");
      push(recGet(Pr, 0));
      break;
    }
    case Op::Snd: {
      Object *Pr = Object::asPointer(pop());
      MPL_DASSERT(Pr, "snd of non-pair");
      push(recGet(Pr, 1));
      break;
    }

    case Op::MkRef: {
      Object *R = newRef(Stack[Sp - 1]);
      Stack[Sp - 1] = Object::fromPointer(R);
      break;
    }
    case Op::Deref: {
      Object *R = Object::asPointer(pop());
      MPL_DASSERT(R && R->kind() == ObjKind::Ref, "! of non-ref");
      push(refGet(R));
      break;
    }
    case Op::Assign: {
      Slot V = pop();
      Object *R = Object::asPointer(pop());
      MPL_DASSERT(R && R->kind() == ObjKind::Ref, ":= on non-ref");
      refSet(R, V);
      push(unit());
      break;
    }

    case Op::Alloc: {
      // Stack: [n, init]; newArray roots its init argument internally.
      Slot Init = pop();
      int64_t N = unboxInt(pop());
      if (N < 0 || N > int64_t(Object::MaxLength)) {
        Trap->trap("alloc size out of range");
        Sp = Base;
        return unit();
      }
      push(Object::fromPointer(newArray(static_cast<uint32_t>(N), Init)));
      break;
    }
    case Op::AGet: {
      int64_t I = unboxInt(pop());
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "get on non-array");
      if (I < 0 || I >= int64_t(arrLen(A))) {
        Trap->trap("array index out of bounds");
        Sp = Base;
        return unit();
      }
      push(arrGet(A, static_cast<uint32_t>(I)));
      break;
    }
    case Op::ASet: {
      Slot V = pop();
      int64_t I = unboxInt(pop());
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "set on non-array");
      if (I < 0 || I >= int64_t(arrLen(A))) {
        Trap->trap("array index out of bounds");
        Sp = Base;
        return unit();
      }
      arrSet(A, static_cast<uint32_t>(I), V);
      push(unit());
      break;
    }
    case Op::ALen: {
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "length on non-array");
      push(boxInt(arrLen(A)));
      break;
    }

    case Op::ParCall: {
      // Closures stay rooted on the parent's stack during the fork.
      BranchEnv EnvA{&P, CaptureOut, Trap, Stack[Sp - 2]};
      BranchEnv EnvB{&P, CaptureOut, Trap, Stack[Sp - 1]};
      auto [RA, RB] = rt::par([&] { return VmBranch::run(EnvA); },
                              [&] { return VmBranch::run(EnvB); });
      // Results are rooted by re-using the two operand slots.
      Stack[Sp - 2] = RA;
      Stack[Sp - 1] = RB;
      Object *Pr = newRecord(0b11, {Stack[Sp - 2], Stack[Sp - 1]});
      Sp -= 2;
      push(Object::fromPointer(Pr));
      if (Trap->Trapped.load(std::memory_order_relaxed)) {
        Sp = Base;
        return unit();
      }
      break;
    }

    case Op::Print: {
      Object *S = Object::asPointer(pop());
      MPL_DASSERT(S, "print of non-string");
      if (CaptureOut)
        CaptureOut->append(strBytes(S), strLen(S));
      else
        std::fwrite(strBytes(S), 1, strLen(S), stdout);
      push(unit());
      break;
    }
    case Op::PrintInt: {
      char Buf[32];
      int Len = std::snprintf(Buf, sizeof(Buf), "%lld\n",
                              static_cast<long long>(unboxInt(pop())));
      if (CaptureOut)
        CaptureOut->append(Buf, static_cast<size_t>(Len));
      else
        std::fwrite(Buf, 1, static_cast<size_t>(Len), stdout);
      push(unit());
      break;
    }
    }
  }
}

Vm::Result Vm::run() {
  Result R;
  Slot V = execFunction(P.Main, /*Closure=*/0, unit(), 0);
  if (Trap->Trapped.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> G(Trap->Lock);
    R.Error = Trap->Message;
    return R;
  }
  R.Ok = true;
  R.Value = V;
  return R;
}

std::string mpl::pml::renderValue(Slot V, Ty *T) {
  // Resolve through the checker's union-find.
  while (T && T->Tag == TyTag::Var && T->Link)
    T = T->Link;
  if (!T)
    return "?";
  switch (T->Tag) {
  case TyTag::Int:
    return std::to_string(unboxInt(V));
  case TyTag::Bool:
    return unboxBool(V) ? "true" : "false";
  case TyTag::Unit:
    return "()";
  case TyTag::String: {
    Object *S = Object::asPointer(V);
    if (!S)
      return "\"\"";
    return "\"" + std::string(strBytes(S), strLen(S)) + "\"";
  }
  case TyTag::Pair: {
    Object *Pr = Object::asPointer(V);
    if (!Pr)
      return "(?, ?)";
    return "(" + renderValue(Pr->getSlot(0), T->A) + ", " +
           renderValue(Pr->getSlot(1), T->B) + ")";
  }
  case TyTag::List: {
    std::string Out = "[";
    bool First = true;
    for (Slot Cur = V; Cur != ops::boxInt(0);) {
      Object *Cell = Object::asPointer(Cur);
      if (!Cell)
        break;
      if (!First)
        Out += ", ";
      First = false;
      Out += renderValue(Cell->getSlot(0), T->A);
      Cur = Cell->getSlot(1);
    }
    return Out + "]";
  }
  case TyTag::Ref:
    return "ref";
  case TyTag::Array:
    return "<array>";
  case TyTag::Arrow:
    return "<fn>";
  case TyTag::Var:
    return "<poly>";
  }
  return "?";
}

bool mpl::pml::evalSource(const std::string &Source, std::string &Output,
                          std::string &Rendered, std::string &TypeStr,
                          std::vector<std::string> &Errors) {
  ExprPtr Ast = parseProgram(Source, Errors);
  if (!Ast)
    return false;
  TypeChecker TC;
  Ty *T = TC.infer(*Ast, Errors);
  if (!T)
    return false;
  TypeStr = TypeChecker::show(T);

  Program Prog;
  if (!compile(*Ast, Prog, Errors))
    return false;

  Vm M(Prog, &Output);
  Vm::Result R = M.run();
  if (!R.Ok) {
    Errors.push_back("runtime error: " + R.Error);
    return false;
  }
  Rendered = renderValue(R.Value, T);
  return true;
}
