//===- pml/Vm.cpp - PML bytecode interpreter ---------------------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Continuation representation (DESIGN.md §13): a captured continuation is
/// one mutable heap array with uniformly tagged slots —
///
///   [0]  state: 0 fresh, 1 consumed (one-shot; claimed by CAS)
///   [1]  handler table index        [2] arm count
///   [3]  captured frame count       [4] captured inner-handler count
///   [5]  captured value-slot count  [6] capture-heap depth
///   [7]  W = pin-bitmap word count
///   [8 .. 8+W)                      bitmap: which captured values this
///                                   capture newly pinned (32 bits/word,
///                                   arms first, then the segment)
///   [8+W ..]                        the arm closures,
///   then per frame  5 ints: fn idx, ip, base offset, handler idx
///                   (relative to the captured handler, -1 = none),
///                   operands-to-pop,
///   then per inner handler 4 ints: table idx, arms offset, arm count,
///                   frame index relative to the first captured frame,
///   then the captured value-stack segment.
///
/// Everything is either a tagged int or an ordinary value, so the GC traces
/// a parked continuation like any other array — captured frames stay alive
/// (and updated, if a local collection moves their objects) no matter how
/// long the handler sits on it or which strand finally resumes it.
///
//===----------------------------------------------------------------------===//

#include "pml/Vm.h"

#include "chaos/ChaosSchedule.h"
#include "core/Em.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "obs/Span.h"
#include "pml/Parser.h"
#include "pml/jit/Jit.h"

#include <cstddef>
#include <cstdio>

using namespace mpl;
using namespace mpl::ops;
using namespace mpl::pml;

Vm::Vm(const Program &P, std::string *CaptureOut)
    : Vm(P, CaptureOut, std::make_shared<TrapState>()) {
  // Attach the JIT tier before any parallelism exists: only the root Vm
  // runs this ctor (ParCall sub-VMs use the private one), so the shared
  // ProgramJit is published to every future strand via the Program.
  if (!P.Jit && jit::enabled())
    P.Jit = jit::createProgramJit(P);
}

Vm::Vm(const Program &P, std::string *CaptureOut,
       std::shared_ptr<TrapState> Trap)
    : P(P), CaptureOut(CaptureOut), Trap(std::move(Trap)) {
  Stack = std::make_unique<Slot[]>(StackCap);
  StackBase = Stack.get();
  rt::Runtime::ctx()->Roots.pushRange(&StackBase, &Sp);
}

Vm::~Vm() { rt::Runtime::ctx()->Roots.popRange(&StackBase); }

void Vm::push(Slot V) {
  if (Sp >= StackCap) {
    Trap->trap("value stack overflow");
    return;
  }
  Stack[Sp++] = V;
}

Slot Vm::pop() {
  MPL_DASSERT(Sp > 0, "value stack underflow");
  return Stack[--Sp];
}

namespace {

/// Closure representation helpers: mutable array [fnIdx, captures...].
int closureFn(Object *C) { return static_cast<int>(unboxInt(C->getSlot(0))); }

bool isClosure(Slot V) {
  Object *O = Object::asPointer(V);
  return O && O->kind() == ObjKind::Array && O->length() >= 1 &&
         isInt(O->getSlot(0));
}

/// Fixed continuation-array header slots (see file comment).
enum ContSlot : uint32_t {
  ContState = 0,
  ContTable = 1,
  ContNumArms = 2,
  ContNumFrames = 3,
  ContNumInner = 4,
  ContSegLen = 5,
  ContDepth = 6,
  ContBitmapWords = 7,
  ContHeader = 8,
};

/// Structural equality: immediates by value, strings by bytes, immutable
/// pairs recursively, everything mutable by identity (the ML semantics).
bool slotsEqual(Slot A, Slot B) {
  if (A == B)
    return true;
  Object *OA = Object::asPointer(A);
  Object *OB = Object::asPointer(B);
  if (!OA || !OB)
    return false;
  if (OA->kind() != OB->kind())
    return false;
  if (OA->kind() == ObjKind::RawArray) {
    size_t LA = strLen(OA), LB = strLen(OB);
    return LA == LB && std::memcmp(strBytes(OA), strBytes(OB), LA) == 0;
  }
  if (OA->kind() == ObjKind::Record && !OA->isMutable() &&
      !OB->isMutable() && OA->length() == OB->length()) {
    for (uint32_t I = 0, E = OA->length(); I < E; ++I)
      if (!slotsEqual(OA->getSlot(I), OB->getSlot(I)))
        return false;
    return true;
  }
  return false;
}

/// Branch thunk for ParCall (shares the parent's program and trap).
struct BranchEnv {
  const Program *P;
  std::string *CaptureOut;
  std::shared_ptr<TrapState> Trap;
  Slot Closure;
};

} // namespace

struct mpl::pml::VmBranch {
  static Slot run(BranchEnv &Env) {
    Vm Sub(*Env.P, Env.CaptureOut, Env.Trap);
    Object *C = Object::asPointer(Env.Closure);
    if (!C) {
      Env.Trap->trap("par branch is not a closure");
      return unit();
    }
    return Sub.callFunction(closureFn(C), Env.Closure, unit());
  }
};

bool Vm::pushFrame(int FnIdx, int HandlerIdx, uint32_t OperandsToPop) {
  if (Frames.size() > static_cast<size_t>(MaxCallDepth)) {
    Trap->trap("call depth limit exceeded");
    return false;
  }
  if (P.Jit)
    P.Jit->countCall(FnIdx); // Tier accounting (relaxed; see pml/jit/Jit.h).
  Frame F;
  F.Fn = &P.Fns[static_cast<size_t>(FnIdx)];
  F.FnIdx = FnIdx;
  F.Ip = 0;
  F.Base = Sp - 2; // Reuses the caller's [fn, arg] as [closure, param].
  F.HandlerIdx = HandlerIdx;
  F.OperandsToPop = OperandsToPop;
  Frames.push_back(F);
  for (int I = 1; I < F.Fn->NumLocals; ++I)
    push(unit());
  return !Trap->Trapped.load(std::memory_order_relaxed);
}

Slot Vm::callFunction(int FnIdx, Slot Closure, Slot Arg) {
  size_t Floor = Frames.size();
  size_t HandlerFloor = Handlers.size();
  size_t EntrySp = Sp;
  push(Closure);
  push(Arg);
  if (pushFrame(FnIdx, -1, 0))
    runLoop(Floor);
  if (Trap->Trapped.load(std::memory_order_relaxed)) {
    Frames.resize(Floor);
    Handlers.resize(HandlerFloor);
    Sp = EntrySp;
    return unit();
  }
  return pop(); // The floor frame's Ret left the result on top.
}

void Vm::doSuspend(int32_t EffectId) {
  // Dynamic handler search: innermost installed handler whose table
  // contains this effect. Effects are delimited by rt::par (each branch is
  // a fresh sub-VM), so an unhandled perform is a structured trap, never an
  // escape into another strand's handlers.
  int EntIdx = -1, ArmPos = -1;
  for (int I = static_cast<int>(Handlers.size()) - 1; I >= 0 && EntIdx < 0;
       --I) {
    const std::vector<int> &Ids =
        P.Handlers[static_cast<size_t>(Handlers[static_cast<size_t>(I)]
                                           .TableIdx)]
            .EffectIds;
    for (size_t J = 0; J < Ids.size(); ++J)
      if (Ids[J] == EffectId) {
        EntIdx = I;
        ArmPos = static_cast<int>(J);
        break;
      }
  }
  if (EntIdx < 0) {
    Trap->trap("unhandled effect '" +
               P.EffectNames[static_cast<size_t>(EffectId)] + "'");
    return;
  }
  // Schedule fuzzing: stretch the window between deciding to capture and
  // publishing the continuation to the handler arm.
  chaos::preemptPoint(chaos::Point::ContCapture);

  const HandlerEnt Ent = Handlers[static_cast<size_t>(EntIdx)];
  size_t B = Ent.FrameIdx; // First captured frame: the handle body thunk.
  size_t SegBase = Frames[B].Base;
  size_t PayloadIdx = Sp - 1; // Payload rides to the arm, not the cont.
  size_t SegLen = PayloadIdx - SegBase;
  size_t NumFrames = Frames.size() - B;
  size_t NumInner = Handlers.size() - static_cast<size_t>(EntIdx) - 1;
  size_t NumArms = static_cast<size_t>(Ent.NumArms);
  size_t W = (NumArms + SegLen + 31) / 32;
  size_t Len = ContHeader + W + NumArms + 5 * NumFrames + 4 * NumInner +
               SegLen;
  if (Len > Object::MaxLength) {
    Trap->trap("continuation too large");
    return;
  }

  // Everything captured is still on the (rooted) value stack, so the
  // allocation below may collect — and move objects — safely; stack slots
  // and frame Base indices survive, raw pointers would not.
  Object *C = newArray(static_cast<uint32_t>(Len), boxInt(0));
  push(Object::fromPointer(C)); // Root the cont for the pair allocation.
  if (Trap->Trapped.load(std::memory_order_relaxed))
    return;

  auto SetInt = [&](size_t I, int64_t V) {
    C->setSlot(static_cast<uint32_t>(I), boxInt(V));
  };
  SetInt(ContState, 0);
  SetInt(ContTable, Ent.TableIdx);
  SetInt(ContNumArms, static_cast<int64_t>(NumArms));
  SetInt(ContNumFrames, static_cast<int64_t>(NumFrames));
  SetInt(ContNumInner, static_cast<int64_t>(NumInner));
  SetInt(ContSegLen, static_cast<int64_t>(SegLen));
  Heap *CapHeap = rt::Runtime::ctx()->CurrentHeap;
  uint32_t CapDepth = CapHeap->depth();
  SetInt(ContDepth, CapDepth);
  SetInt(ContBitmapWords, static_cast<int64_t>(W));

  // Arm closures and the value segment. arrSet's write barrier sees only
  // intra-heap or up-pointer stores here (the cont is a fresh leaf-heap
  // object), so building the snapshot itself pins nothing.
  size_t ArmsSlot = ContHeader + W;
  for (size_t I = 0; I < NumArms; ++I)
    arrSet(C, static_cast<uint32_t>(ArmsSlot + I), Stack[Ent.ArmsBase + I]);
  size_t FrameSlot = ArmsSlot + NumArms;
  for (size_t I = 0; I < NumFrames; ++I) {
    const Frame &F = Frames[B + I];
    SetInt(FrameSlot + 5 * I + 0, F.FnIdx);
    SetInt(FrameSlot + 5 * I + 1, static_cast<int64_t>(F.Ip));
    SetInt(FrameSlot + 5 * I + 2, static_cast<int64_t>(F.Base - SegBase));
    SetInt(FrameSlot + 5 * I + 3,
           F.HandlerIdx < 0 ? -1 : F.HandlerIdx - EntIdx);
    SetInt(FrameSlot + 5 * I + 4, F.OperandsToPop);
  }
  size_t InnerSlot = FrameSlot + 5 * NumFrames;
  for (size_t I = 0; I < NumInner; ++I) {
    const HandlerEnt &IE = Handlers[static_cast<size_t>(EntIdx) + 1 + I];
    SetInt(InnerSlot + 4 * I + 0, IE.TableIdx);
    SetInt(InnerSlot + 4 * I + 1, static_cast<int64_t>(IE.ArmsBase - SegBase));
    SetInt(InnerSlot + 4 * I + 2, IE.NumArms);
    SetInt(InnerSlot + 4 * I + 3, static_cast<int64_t>(IE.FrameIdx - B));
  }
  size_t SegSlot = InnerSlot + 4 * NumInner;
  for (size_t I = 0; I < SegLen; ++I)
    arrSet(C, static_cast<uint32_t>(SegSlot + I), Stack[SegBase + I]);

  // Capture-pin pass (Manage mode; see em::pinContCapture): the captured
  // objects must survive *in place* until the resume — the handler may park
  // the continuation past this strand's join, where a local collection of
  // the merged heap would otherwise move them out from under the snapshot.
  // The bitmap records exactly the pins this capture took, so the resume
  // can release them early when the continuation stayed private.
  int64_t PinnedHere = 0;
  for (size_t I = 0; I < NumArms + SegLen; ++I) {
    Slot V = I < NumArms ? Stack[Ent.ArmsBase + I]
                         : Stack[SegBase + (I - NumArms)];
    Object *O = Object::asPointer(V);
    if (O && em::pinContCapture(O, CapHeap)) {
      uint32_t WordIdx = static_cast<uint32_t>(ContHeader + I / 32);
      int64_t Word = unboxInt(C->getSlot(WordIdx));
      SetInt(WordIdx, Word | (int64_t(1) << (I % 32)));
      ++PinnedHere;
    }
  }
  (void)PinnedHere;
  int64_t ContBytes = static_cast<int64_t>(C->sizeBytes());

  // (payload, cont) for the arm. Both operands are rooted on the stack;
  // after this allocation C may be stale — read everything via the stack.
  Object *Pair = newRecord(0b11, {Stack[PayloadIdx], Stack[PayloadIdx + 1]});
  Slot ArmV = Stack[Ent.ArmsBase + static_cast<size_t>(ArmPos)];
  MPL_DASSERT(isClosure(ArmV), "handler arm is not a closure");

  // Uninstall the handler and everything above it, then run the arm where
  // the handle expression's result belongs: the enclosing frame's Ip is
  // already past the Handle, so the arm's Ret lands as its result.
  Frames.resize(B);
  Handlers.resize(static_cast<size_t>(EntIdx));
  Sp = Ent.ArmsBase;
  push(ArmV);
  push(Object::fromPointer(Pair));
  pushFrame(closureFn(Object::asPointer(ArmV)), -1, 0);
  em::noteContCaptured(ContBytes, CapDepth);
}

void Vm::doResume() {
  // Stack: [..., k, v].
  Object *C = Object::asPointer(Stack[Sp - 2]);
  if (!C || C->kind() != ObjKind::Array || C->length() < ContHeader) {
    Trap->trap("resume of a non-continuation value");
    return;
  }
  for (uint32_t I = 0; I < ContHeader; ++I)
    if (!isInt(C->getSlot(I))) {
      Trap->trap("resume of a non-continuation value");
      return;
    }
  size_t W = static_cast<size_t>(unboxInt(C->getSlot(ContBitmapWords)));
  int TableIdx = static_cast<int>(unboxInt(C->getSlot(ContTable)));
  size_t NumArms = static_cast<size_t>(unboxInt(C->getSlot(ContNumArms)));
  size_t NumFrames = static_cast<size_t>(unboxInt(C->getSlot(ContNumFrames)));
  size_t NumInner = static_cast<size_t>(unboxInt(C->getSlot(ContNumInner)));
  size_t SegLen = static_cast<size_t>(unboxInt(C->getSlot(ContSegLen)));
  uint32_t CapDepth = static_cast<uint32_t>(unboxInt(C->getSlot(ContDepth)));
  if (C->length() != ContHeader + W + NumArms + 5 * NumFrames +
                         4 * NumInner + SegLen ||
      TableIdx < 0 || static_cast<size_t>(TableIdx) >= P.Handlers.size()) {
    Trap->trap("resume of a non-continuation value");
    return;
  }
  if (Sp + NumArms + SegLen + 1 > StackCap) {
    Trap->trap("value stack overflow");
    return;
  }
  if (Frames.size() + NumFrames > static_cast<size_t>(MaxCallDepth)) {
    Trap->trap("call depth limit exceeded");
    return;
  }

  // One-shot claim: exactly one resume wins, even when racing another
  // strand holding the same continuation.
  Slot Fresh = boxInt(0);
  if (!std::atomic_ref<Slot>(C->slots()[ContState])
           .compare_exchange_strong(Fresh, boxInt(1),
                                    std::memory_order_acq_rel)) {
    Trap->trap("continuation already resumed (one-shot)");
    return;
  }
  // Schedule fuzzing: the claim is published; stretch the window before the
  // frames are spliced back in (another strand may be failing its CAS, a
  // join may be releasing the capture pins).
  chaos::preemptPoint(chaos::Point::ContResume);

  // Nothing below allocates (arrGet barriers pin but never allocate), so
  // raw locals are safe across the whole splice.
  Slot ResumeV = Stack[Sp - 1];
  size_t ArmsBase = Sp - 2; // k's slot: where the final answer lands.
  Sp = ArmsBase;

  // Re-push the arms and the captured segment. Reading them out of the
  // continuation goes through the read barrier: when the resumer's heap is
  // not a descendant of the capture heap this is where entanglement is
  // re-established (Manage deepens pins to the LCA, Detect rejects).
  size_t ArmsSlot = ContHeader + W;
  for (size_t I = 0; I < NumArms; ++I)
    push(arrGet(C, static_cast<uint32_t>(ArmsSlot + I)));
  size_t SegStart = Sp;
  size_t SegSlot = ArmsSlot + NumArms + 5 * NumFrames + 4 * NumInner;
  for (size_t I = 0; I < SegLen; ++I)
    push(arrGet(C, static_cast<uint32_t>(SegSlot + I)));

  // Reinstall the handler (deep handler semantics: further performs in the
  // reinstated computation are answered by the same arms) and the captured
  // inner handlers, then the frames.
  int TargetEnt = static_cast<int>(Handlers.size());
  size_t FrameStart = Frames.size();
  Handlers.push_back(
      {TableIdx, ArmsBase, static_cast<int>(NumArms), FrameStart});
  size_t InnerSlot = ArmsSlot + NumArms + 5 * NumFrames;
  for (size_t I = 0; I < NumInner; ++I) {
    auto Rd = [&](size_t K) {
      return unboxInt(C->getSlot(static_cast<uint32_t>(InnerSlot + 4 * I + K)));
    };
    Handlers.push_back({static_cast<int>(Rd(0)),
                        SegStart + static_cast<size_t>(Rd(1)),
                        static_cast<int>(Rd(2)),
                        FrameStart + static_cast<size_t>(Rd(3))});
  }
  size_t FrameSlot = ArmsSlot + NumArms;
  for (size_t I = 0; I < NumFrames; ++I) {
    auto Rd = [&](size_t K) {
      return unboxInt(C->getSlot(static_cast<uint32_t>(FrameSlot + 5 * I + K)));
    };
    int FnIdx = static_cast<int>(Rd(0));
    if (FnIdx < 0 || static_cast<size_t>(FnIdx) >= P.Fns.size()) {
      Trap->trap("resume of a non-continuation value");
      return;
    }
    int HRel = static_cast<int>(Rd(3));
    Frame F;
    F.Fn = &P.Fns[static_cast<size_t>(FnIdx)];
    F.FnIdx = FnIdx;
    F.Ip = static_cast<size_t>(Rd(1));
    F.Base = SegStart + static_cast<size_t>(Rd(2));
    F.HandlerIdx = HRel < 0 ? -1 : TargetEnt + HRel;
    F.OperandsToPop = static_cast<uint32_t>(Rd(4));
    Frames.push_back(F);
  }

  // Early pin release: only for pins this capture took (the bitmap), only
  // while they still sit at the capture depth, and only when the cont was
  // never published cross-heap — its pin bit is sticky, so !isPinned()
  // proves every path to the captured objects goes through this strand.
  // Otherwise the pins stay and the join rule releases them (always sound).
  if (em::mode() == em::Mode::Manage && CapDepth > 0 && !C->isPinned()) {
    for (size_t I = 0; I < NumArms + SegLen; ++I) {
      int64_t Word = unboxInt(
          C->getSlot(static_cast<uint32_t>(ContHeader + I / 32)));
      if (!(Word & (int64_t(1) << (I % 32))))
        continue;
      Slot V = I < NumArms ? Stack[ArmsBase + I]
                           : Stack[SegStart + (I - NumArms)];
      if (Object *O = Object::asPointer(V))
        em::unpinContResume(O, CapDepth);
    }
  }
  em::noteContResumed(static_cast<int64_t>(C->sizeBytes()), CapDepth);

  // The innermost restored frame's Ip is already past its Suspend; v is
  // the perform expression's result.
  push(ResumeV);
}

void Vm::runLoop(size_t Floor) {
  // Deadline poll cadence: cheap enough to be invisible (one decrement per
  // dispatch), frequent enough that a tight pml loop that never allocates
  // still notices an expired request within ~256 instructions. The throw
  // unwinds like OOM: out of the VM to the rt::par branch boundary.
  constexpr uint32_t DeadlinePollEvery = 256;
  uint32_t PollBudget = DeadlinePollEvery;
  // JIT tier gate, latched per runLoop activation. Span-armed runs pin to
  // the interpreter: native templates do not publish per-instruction source
  // locations, and exact pml Line:Col attribution is the ledger's contract.
  jit::ProgramJit *PJ =
      (P.Jit && jit::enabled() && !obs::spansEnabled()) ? P.Jit.get() : nullptr;
  // Re-check the tier only at frame boundaries (every Call/TailCall/Ret/
  // Handle/Suspend/Resume re-arms this): tiering decisions happen where the
  // interpreter counts calls, so interp-vs-JIT transitions are deterministic
  // for a given schedule.
  bool TryJit = PJ != nullptr;
  while (true) {
    if (Trap->Trapped.load(std::memory_order_relaxed))
      return; // callFunction unwinds the stacks to its entry state.
    if (--PollBudget == 0) {
      PollBudget = DeadlinePollEvery;
      rt::checkDeadline();
    }
    if (PJ && TryJit) {
      TryJit = false;
      Frame &JF = Frames.back();
      const jit::CompiledFn *CF = jit::hotOrCompile(*PJ, P, JF.FnIdx);
      if (CF && JF.Ip < CF->NativeOff.size()) {
        // Schedule fuzzing: the interp->native handoff is a visible
        // scheduling edge (another strand may be publishing code, trapping,
        // or expiring a deadline right here).
        chaos::preemptPoint(chaos::Point::JitEnter);
        jit::noteEntry();
        size_t EntryIp = JF.Ip;
        uint64_t EntryBase = JF.Base;
        // JF dies here: helpers running under invoke() may grow Frames.
        CF->invoke(this, EntryIp, rt::Runtime::ctx()->CurrentHeap, EntryBase);
        if (PendingExc) {
          // Helpers never unwind through native frames; rethrow from this
          // C++ frame so Detect errors / deadline expiry / OOM propagate
          // exactly as they do from the interpreter's own opcode bodies.
          std::exception_ptr Ex = std::move(PendingExc);
          PendingExc = nullptr;
          std::rethrow_exception(Ex);
        }
        TryJit = true;
        if (Frames.size() == Floor)
          return; // Native Ret settled the floor frame's result.
        continue;
      }
    }
    Frame &F = Frames.back();
    MPL_DASSERT(F.Ip < F.Fn->Code.size(), "instruction pointer out of range");
    const Instr &In = F.Fn->Code[F.Ip++];
    // Span ledger: publish this instruction's source location so barrier
    // slow paths and forks can attribute events to pml Line:Col. One TLS
    // store, behind the same armed check every obs hook uses.
    if (obs::spansEnabled()) [[unlikely]]
      obs::spanSetPmlLoc(F.Fn->Src[F.Ip - 1]);
    auto Local = [&](int32_t I) -> Slot & {
      return Stack[F.Base + 1 + static_cast<size_t>(I)];
    };
    switch (In.O) {
    case Op::PushInt:
      push(boxInt(In.A));
      break;
    case Op::PushBigInt:
      push(boxInt(P.IntPool[static_cast<size_t>(In.A)]));
      break;
    case Op::PushBool:
      push(boxBool(In.A != 0));
      break;
    case Op::PushUnit:
      push(unit());
      break;
    case Op::PushStr: {
      const std::string &S = P.StrPool[static_cast<size_t>(In.A)];
      push(Object::fromPointer(newString(S.data(), S.size())));
      break;
    }
    case Op::LoadLocal:
      push(Local(In.A));
      break;
    case Op::StoreLocal:
      Local(In.A) = pop();
      break;
    case Op::LoadCapture: {
      Object *C = Object::asPointer(Stack[F.Base]);
      MPL_DASSERT(C, "missing closure for capture load");
      push(arrGet(C, static_cast<uint32_t>(In.A) + 1));
      break;
    }
    case Op::Pop:
      pop();
      break;

    case Op::MkClosure: {
      uint32_t N = static_cast<uint32_t>(In.B);
      // Captures are the top N stack slots (rooted); allocate then fill.
      Object *C = newArray(N + 1, boxInt(In.A));
      for (uint32_t I = 0; I < N; ++I)
        arrSet(C, I + 1, Stack[Sp - N + I]);
      Sp -= N;
      push(Object::fromPointer(C));
      break;
    }
    case Op::FixSelf: {
      Object *C = Object::asPointer(Stack[Sp - 1]);
      MPL_DASSERT(C, "FixSelf on non-closure");
      arrSet(C, static_cast<uint32_t>(In.A) + 1, Stack[Sp - 1]);
      break;
    }

    case Op::Call: {
      Slot FnV = Stack[Sp - 2];
      if (!isClosure(FnV)) {
        Trap->trap("calling a non-function value");
        break;
      }
      // The callee's frame adopts the [fn, arg] slots in place; its Ret
      // pops back to them and pushes the result.
      pushFrame(closureFn(Object::asPointer(FnV)), -1, 0);
      TryJit = true;
      break;
    }

    case Op::TailCall: {
      Slot ArgV = Stack[Sp - 1];
      Slot FnV = Stack[Sp - 2];
      if (!isClosure(FnV)) {
        Trap->trap("calling a non-function value");
        break;
      }
      // Rebuild the frame in place: proper tail calls give PML loops
      // constant stack space. HandlerIdx/OperandsToPop carry over — the
      // final Ret still settles this frame's protocol slots.
      int NewFn = closureFn(Object::asPointer(FnV));
      if (P.Jit)
        P.Jit->countCall(NewFn);
      F.Fn = &P.Fns[static_cast<size_t>(NewFn)];
      F.FnIdx = NewFn;
      F.Ip = 0;
      Sp = F.Base;
      push(FnV);
      push(ArgV);
      for (int I = 1; I < F.Fn->NumLocals; ++I)
        push(unit());
      TryJit = true;
      break;
    }

    case Op::Ret: {
      Slot R = Stack[Sp - 1];
      Frame Popped = Frames.back();
      Frames.pop_back();
      Sp = Popped.Base;
      if (Popped.HandlerIdx >= 0)
        Handlers.resize(static_cast<size_t>(Popped.HandlerIdx));
      Sp -= Popped.OperandsToPop;
      push(R);
      if (Frames.size() == Floor)
        return;
      TryJit = true;
      break;
    }

    case Op::Jmp:
      F.Ip = static_cast<size_t>(In.A);
      break;
    case Op::Jz:
      if (!unboxBool(pop()))
        F.Ip = static_cast<size_t>(In.A);
      break;
    case Op::Jnz:
      if (unboxBool(pop()))
        F.Ip = static_cast<size_t>(In.A);
      break;
    case Op::MatchFail:
      Trap->trap("match failure: no case arm matched");
      break;

#define MPL_ARITH(OPNAME, EXPR)                                              \
  case Op::OPNAME: {                                                         \
    int64_t B2 = unboxInt(pop());                                            \
    int64_t A2 = unboxInt(pop());                                            \
    (void)A2;                                                                \
    (void)B2;                                                                \
    push(EXPR);                                                              \
    break;                                                                   \
  }
      MPL_ARITH(Add, boxInt(A2 + B2))
      MPL_ARITH(Sub, boxInt(A2 - B2))
      MPL_ARITH(Mul, boxInt(A2 * B2))
      MPL_ARITH(Lt, boxBool(A2 < B2))
      MPL_ARITH(Le, boxBool(A2 <= B2))
      MPL_ARITH(Gt, boxBool(A2 > B2))
      MPL_ARITH(Ge, boxBool(A2 >= B2))
#undef MPL_ARITH

    case Op::Div:
    case Op::Mod: {
      int64_t B2 = unboxInt(pop());
      int64_t A2 = unboxInt(pop());
      if (B2 == 0) {
        Trap->trap("division by zero");
        break;
      }
      push(boxInt(In.O == Op::Div ? A2 / B2 : A2 % B2));
      break;
    }

    case Op::Neg:
      push(boxInt(-unboxInt(pop())));
      break;
    case Op::Not:
      push(boxBool(!unboxBool(pop())));
      break;

    case Op::Eq: {
      Slot B2 = pop(), A2 = pop();
      push(boxBool(slotsEqual(A2, B2)));
      break;
    }
    case Op::Ne: {
      Slot B2 = pop(), A2 = pop();
      push(boxBool(!slotsEqual(A2, B2)));
      break;
    }

    case Op::MkPair: {
      // Operands stay rooted on the stack across the allocation.
      Object *Pr = newRecord(0b11, {Stack[Sp - 2], Stack[Sp - 1]});
      Sp -= 2;
      push(Object::fromPointer(Pr));
      break;
    }
    case Op::Fst: {
      Object *Pr = Object::asPointer(pop());
      MPL_DASSERT(Pr, "fst of non-pair");
      push(recGet(Pr, 0));
      break;
    }
    case Op::Snd: {
      Object *Pr = Object::asPointer(pop());
      MPL_DASSERT(Pr, "snd of non-pair");
      push(recGet(Pr, 1));
      break;
    }

    case Op::MkRef: {
      Object *R = newRef(Stack[Sp - 1]);
      Stack[Sp - 1] = Object::fromPointer(R);
      break;
    }
    case Op::Deref: {
      Object *R = Object::asPointer(pop());
      MPL_DASSERT(R && R->kind() == ObjKind::Ref, "! of non-ref");
      push(refGet(R));
      break;
    }
    case Op::Assign: {
      Slot V = pop();
      Object *R = Object::asPointer(pop());
      MPL_DASSERT(R && R->kind() == ObjKind::Ref, ":= on non-ref");
      refSet(R, V);
      push(unit());
      break;
    }

    case Op::Alloc: {
      // Stack: [n, init]; newArray roots its init argument internally.
      Slot Init = pop();
      int64_t N = unboxInt(pop());
      if (N < 0 || N > int64_t(Object::MaxLength)) {
        Trap->trap("alloc size out of range");
        break;
      }
      push(Object::fromPointer(newArray(static_cast<uint32_t>(N), Init)));
      break;
    }
    case Op::AGet: {
      int64_t I = unboxInt(pop());
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "get on non-array");
      if (I < 0 || I >= int64_t(arrLen(A))) {
        Trap->trap("array index out of bounds");
        break;
      }
      push(arrGet(A, static_cast<uint32_t>(I)));
      break;
    }
    case Op::ASet: {
      Slot V = pop();
      int64_t I = unboxInt(pop());
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "set on non-array");
      if (I < 0 || I >= int64_t(arrLen(A))) {
        Trap->trap("array index out of bounds");
        break;
      }
      arrSet(A, static_cast<uint32_t>(I), V);
      push(unit());
      break;
    }
    case Op::ALen: {
      Object *A = Object::asPointer(pop());
      MPL_DASSERT(A && A->kind() == ObjKind::Array, "length on non-array");
      push(boxInt(arrLen(A)));
      break;
    }

    case Op::ParCall: {
      // Closures stay rooted on the parent's stack during the fork.
      BranchEnv EnvA{&P, CaptureOut, Trap, Stack[Sp - 2]};
      BranchEnv EnvB{&P, CaptureOut, Trap, Stack[Sp - 1]};
      auto [RA, RB] = rt::par([&] { return VmBranch::run(EnvA); },
                              [&] { return VmBranch::run(EnvB); });
      // Results are rooted by re-using the two operand slots.
      Stack[Sp - 2] = RA;
      Stack[Sp - 1] = RB;
      Object *Pr = newRecord(0b11, {Stack[Sp - 2], Stack[Sp - 1]});
      Sp -= 2;
      push(Object::fromPointer(Pr));
      break;
    }

    case Op::Print: {
      Object *S = Object::asPointer(pop());
      MPL_DASSERT(S, "print of non-string");
      if (CaptureOut)
        CaptureOut->append(strBytes(S), strLen(S));
      else
        std::fwrite(strBytes(S), 1, strLen(S), stdout);
      push(unit());
      break;
    }
    case Op::PrintInt: {
      char Buf[32];
      int Len = std::snprintf(Buf, sizeof(Buf), "%lld\n",
                              static_cast<long long>(unboxInt(pop())));
      if (CaptureOut)
        CaptureOut->append(Buf, static_cast<size_t>(Len));
      else
        std::fwrite(Buf, 1, static_cast<size_t>(Len), stdout);
      push(unit());
      break;
    }

    case Op::Handle: {
      // Stack: [..., arms..., thunk]. The arms stay below the body's frame
      // for its dynamic extent; the frame's OperandsToPop settles them.
      Slot Thunk = Stack[Sp - 1];
      MPL_DASSERT(isClosure(Thunk), "handle body is not a thunk");
      int EntIdx = static_cast<int>(Handlers.size());
      HandlerEnt E;
      E.TableIdx = In.A;
      E.ArmsBase = Sp - 1 - static_cast<size_t>(In.B);
      E.NumArms = In.B;
      E.FrameIdx = Frames.size();
      Handlers.push_back(E);
      push(unit()); // The thunk's () argument.
      pushFrame(closureFn(Object::asPointer(Thunk)), EntIdx,
                static_cast<uint32_t>(In.B));
      TryJit = true;
      break;
    }
    case Op::Suspend:
      doSuspend(In.A);
      TryJit = true;
      break;
    case Op::Resume:
      doResume();
      TryJit = true;
      break;
    }
  }
}

Vm::Result Vm::run() {
  Result R;
  Slot V = callFunction(P.Main, /*Closure=*/0, unit());
  if (Trap->Trapped.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> G(Trap->Lock);
    R.Error = Trap->Message;
    return R;
  }
  R.Ok = true;
  R.Value = V;
  return R;
}

std::string mpl::pml::renderValue(Slot V, Ty *T) {
  // Resolve through the checker's union-find.
  while (T && T->Tag == TyTag::Var && T->Link)
    T = T->Link;
  if (!T)
    return "?";
  switch (T->Tag) {
  case TyTag::Int:
    return std::to_string(unboxInt(V));
  case TyTag::Bool:
    return unboxBool(V) ? "true" : "false";
  case TyTag::Unit:
    return "()";
  case TyTag::String: {
    Object *S = Object::asPointer(V);
    if (!S)
      return "\"\"";
    return "\"" + std::string(strBytes(S), strLen(S)) + "\"";
  }
  case TyTag::Pair: {
    Object *Pr = Object::asPointer(V);
    if (!Pr)
      return "(?, ?)";
    return "(" + renderValue(Pr->getSlot(0), T->A) + ", " +
           renderValue(Pr->getSlot(1), T->B) + ")";
  }
  case TyTag::List: {
    std::string Out = "[";
    bool First = true;
    for (Slot Cur = V; Cur != ops::boxInt(0);) {
      Object *Cell = Object::asPointer(Cur);
      if (!Cell)
        break;
      if (!First)
        Out += ", ";
      First = false;
      Out += renderValue(Cell->getSlot(0), T->A);
      Cur = Cell->getSlot(1);
    }
    return Out + "]";
  }
  case TyTag::Ref:
    return "ref";
  case TyTag::Array:
    return "<array>";
  case TyTag::Arrow:
    return "<fn>";
  case TyTag::Cont:
    return "<cont>";
  case TyTag::Var:
    return "<poly>";
  }
  return "?";
}

bool mpl::pml::evalSource(const std::string &Source, std::string &Output,
                          std::string &Rendered, std::string &TypeStr,
                          std::vector<std::string> &Errors) {
  ExprPtr Ast = parseProgram(Source, Errors);
  if (!Ast)
    return false;
  TypeChecker TC;
  Ty *T = TC.infer(*Ast, Errors);
  if (!T)
    return false;
  TypeStr = TypeChecker::show(T);

  Program Prog;
  if (!compile(*Ast, Prog, Errors))
    return false;

  Vm M(Prog, &Output);
  Vm::Result R = M.run();
  if (!R.Ok) {
    Errors.push_back("runtime error: " + R.Error);
    return false;
  }
  Rendered = renderValue(R.Value, T);
  return true;
}

//===----------------------------------------------------------------------===//
// JIT out-of-line helpers (pml/jit/Jit.h §17). Each body is the
// interpreter's own opcode code run on the synced VM state — same ops::
// allocation wrappers, same em:: barriers, same trap messages — which is
// what makes interpreter and JIT bit-identical down to the entanglement
// counters. Native frames must never be unwound through, so every body
// catches into Vm::PendingExc; the dispatcher rethrows after the generated
// code has returned.
//===----------------------------------------------------------------------===//

using mpl::jit::StExit;
using mpl::jit::StOk;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
size_t jit::VmJit::spOffset() { return offsetof(Vm, Sp); }
size_t jit::VmJit::stackBaseOffset() { return offsetof(Vm, StackBase); }
#pragma GCC diagnostic pop

size_t jit::VmJit::stackCap() { return Vm::StackCap; }

/// Shared epilogue of every continue-helper: a trap raised by the body (or
/// by another strand, noticed here) sends the native code to its exit.
#define MPL_JIT_OK_UNLESS_TRAPPED(V)                                         \
  ((V)->Trap->Trapped.load(std::memory_order_relaxed) ? StExit : StOk)

uint64_t jit::VmJit::opPushStr(Vm *V, uint64_t StrIdx) noexcept {
  try {
    const std::string &S = V->P.StrPool[static_cast<size_t>(StrIdx)];
    V->push(Object::fromPointer(newString(S.data(), S.size())));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opMkClosure(Vm *V, uint64_t FnIdx,
                                 uint64_t NumCaps) noexcept {
  try {
    uint32_t N = static_cast<uint32_t>(NumCaps);
    // Captures are the top N stack slots (rooted); allocate then fill.
    Object *C = newArray(N + 1, boxInt(static_cast<int64_t>(FnIdx)));
    for (uint32_t I = 0; I < N; ++I)
      arrSet(C, I + 1, V->Stack[V->Sp - N + I]);
    V->Sp -= N;
    V->push(Object::fromPointer(C));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opFixSelf(Vm *V, uint64_t CapIdx) noexcept {
  try {
    Object *C = Object::asPointer(V->Stack[V->Sp - 1]);
    MPL_DASSERT(C, "FixSelf on non-closure");
    arrSet(C, static_cast<uint32_t>(CapIdx) + 1, V->Stack[V->Sp - 1]);
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opMkPair(Vm *V) noexcept {
  try {
    // Operands stay rooted on the stack across the allocation.
    Object *Pr = newRecord(0b11, {V->Stack[V->Sp - 2], V->Stack[V->Sp - 1]});
    V->Sp -= 2;
    V->push(Object::fromPointer(Pr));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opMkRef(Vm *V) noexcept {
  try {
    Object *R = newRef(V->Stack[V->Sp - 1]);
    V->Stack[V->Sp - 1] = Object::fromPointer(R);
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opAlloc(Vm *V) noexcept {
  try {
    // Stack: [n, init]; newArray roots its init argument internally.
    Slot Init = V->pop();
    int64_t N = unboxInt(V->pop());
    if (N < 0 || N > int64_t(Object::MaxLength)) {
      V->Trap->trap("alloc size out of range");
      return StExit;
    }
    V->push(Object::fromPointer(newArray(static_cast<uint32_t>(N), Init)));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opParCall(Vm *V) noexcept {
  try {
    // Closures stay rooted on the parent's stack during the fork. rt::par
    // restores this strand's CurrentHeap before returning, so the native
    // caller's pinned heap register stays valid across the fork-join.
    BranchEnv EnvA{&V->P, V->CaptureOut, V->Trap, V->Stack[V->Sp - 2]};
    BranchEnv EnvB{&V->P, V->CaptureOut, V->Trap, V->Stack[V->Sp - 1]};
    auto [RA, RB] = rt::par([&] { return VmBranch::run(EnvA); },
                            [&] { return VmBranch::run(EnvB); });
    // Results are rooted by re-using the two operand slots.
    V->Stack[V->Sp - 2] = RA;
    V->Stack[V->Sp - 1] = RB;
    Object *Pr = newRecord(0b11, {V->Stack[V->Sp - 2], V->Stack[V->Sp - 1]});
    V->Sp -= 2;
    V->push(Object::fromPointer(Pr));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opPrint(Vm *V) noexcept {
  try {
    Object *S = Object::asPointer(V->pop());
    MPL_DASSERT(S, "print of non-string");
    if (V->CaptureOut)
      V->CaptureOut->append(strBytes(S), strLen(S));
    else
      std::fwrite(strBytes(S), 1, strLen(S), stdout);
    V->push(unit());
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opPrintInt(Vm *V) noexcept {
  try {
    char Buf[32];
    int Len = std::snprintf(Buf, sizeof(Buf), "%lld\n",
                            static_cast<long long>(unboxInt(V->pop())));
    if (V->CaptureOut)
      V->CaptureOut->append(Buf, static_cast<size_t>(Len));
    else
      std::fwrite(Buf, 1, static_cast<size_t>(Len), stdout);
    V->push(unit());
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opEqSlow(Vm *V, uint64_t Negate) noexcept {
  try {
    // Reached only for two distinct heap pointers (the template folds the
    // identity and immediate cases inline); writes the result and pops.
    bool Eq = slotsEqual(V->Stack[V->Sp - 2], V->Stack[V->Sp - 1]);
    V->Stack[V->Sp - 2] = boxBool(Negate ? !Eq : Eq);
    V->Sp -= 1;
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opReadBarrier(Vm *V, uint64_t Val,
                                   uint64_t Reader) noexcept {
  try {
    // Re-runs the full barrier (the inline fast path is a strict subset of
    // its skip conditions), so counters/pins/Detect errors are exactly the
    // interpreter's.
    em::readBarrier(reinterpret_cast<Heap *>(Reader), static_cast<Slot>(Val));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opWriteBarrier(Vm *V, uint64_t Holder,
                                    uint64_t Val) noexcept {
  try {
    em::writeBarrier(reinterpret_cast<Object *>(Holder),
                     static_cast<Slot>(Val));
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::poll(Vm *V) noexcept {
  try {
    rt::checkDeadline();
  } catch (...) {
    V->PendingExc = std::current_exception();
    return StExit;
  }
  return MPL_JIT_OK_UNLESS_TRAPPED(V);
}

uint64_t jit::VmJit::opCall(Vm *V, uint64_t IpAfter) noexcept {
  try {
    V->Frames.back().Ip = static_cast<size_t>(IpAfter);
    Slot FnV = V->Stack[V->Sp - 2];
    if (!isClosure(FnV))
      V->Trap->trap("calling a non-function value");
    else
      V->pushFrame(closureFn(Object::asPointer(FnV)), -1, 0);
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opTailCall(Vm *V) noexcept {
  try {
    // The template handles only the self-recursive shape inline; this is
    // the interpreter's general rebuild (different callee, or a frame too
    // large for the inline path).
    Vm::Frame &F = V->Frames.back();
    Slot ArgV = V->Stack[V->Sp - 1];
    Slot FnV = V->Stack[V->Sp - 2];
    if (!isClosure(FnV)) {
      V->Trap->trap("calling a non-function value");
      return StExit;
    }
    int NewFn = closureFn(Object::asPointer(FnV));
    if (V->P.Jit)
      V->P.Jit->countCall(NewFn);
    F.Fn = &V->P.Fns[static_cast<size_t>(NewFn)];
    F.FnIdx = NewFn;
    F.Ip = 0;
    V->Sp = F.Base;
    V->push(FnV);
    V->push(ArgV);
    for (int I = 1; I < F.Fn->NumLocals; ++I)
      V->push(unit());
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opRet(Vm *V) noexcept {
  try {
    Slot R = V->Stack[V->Sp - 1];
    Vm::Frame Popped = V->Frames.back();
    V->Frames.pop_back();
    V->Sp = Popped.Base;
    if (Popped.HandlerIdx >= 0)
      V->Handlers.resize(static_cast<size_t>(Popped.HandlerIdx));
    V->Sp -= Popped.OperandsToPop;
    V->push(R);
    // The dispatcher performs the Floor check after the native code exits.
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opHandle(Vm *V, uint64_t IpAfter, uint64_t TableIdx,
                              uint64_t NumArms) noexcept {
  try {
    V->Frames.back().Ip = static_cast<size_t>(IpAfter);
    Slot Thunk = V->Stack[V->Sp - 1];
    MPL_DASSERT(isClosure(Thunk), "handle body is not a thunk");
    int EntIdx = static_cast<int>(V->Handlers.size());
    Vm::HandlerEnt E;
    E.TableIdx = static_cast<int>(TableIdx);
    E.ArmsBase = V->Sp - 1 - static_cast<size_t>(NumArms);
    E.NumArms = static_cast<int>(NumArms);
    E.FrameIdx = V->Frames.size();
    V->Handlers.push_back(E);
    V->push(unit()); // The thunk's () argument.
    V->pushFrame(closureFn(Object::asPointer(Thunk)), EntIdx,
                 static_cast<uint32_t>(NumArms));
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opSuspend(Vm *V, uint64_t IpAfter,
                               uint64_t EffectId) noexcept {
  try {
    // The suspending frame's Ip must already be past the Suspend before the
    // capture walks the frame chain.
    V->Frames.back().Ip = static_cast<size_t>(IpAfter);
    V->doSuspend(static_cast<int32_t>(EffectId));
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opResume(Vm *V, uint64_t IpAfter) noexcept {
  try {
    V->Frames.back().Ip = static_cast<size_t>(IpAfter);
    V->doResume();
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}

uint64_t jit::VmJit::opTrap(Vm *V, uint64_t Code) noexcept {
  try {
    switch (Code) {
    case jit::TrapDivZero:
      V->Trap->trap("division by zero");
      break;
    case jit::TrapOob:
      V->Trap->trap("array index out of bounds");
      break;
    case jit::TrapMatchFail:
      V->Trap->trap("match failure: no case arm matched");
      break;
    default:
      V->Trap->trap("value stack overflow");
      break;
    }
  } catch (...) {
    V->PendingExc = std::current_exception();
  }
  return StExit;
}
