//===- pml/jit/Jit.cpp - Tiering driver and x64 template compiler ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Template compiler layout (one compiled function):
///
///   prologue        loads the pinned registers and jumps to the entry ip
///   templates       one per bytecode instruction, in program order; every
///                   instruction boundary is a valid native entry/target
///   trap stubs      one per inline trap kind, funneling into opTrap
///   poll thunk      the shared deadline-poll body (per-op countdown)
///   epilogue        restores callee-saved registers and returns
///
/// Pinned registers (SysV callee-saved, so helper calls preserve them):
///
///   rbx  Vm*                          r14  frame Base (slot index)
///   r12  value-stack base (Slot*)     r15  CurrentHeap*
///   r13  Sp (slot index)              ebp  poll countdown
///
/// r12 is stable because the VM never reallocates its value stack; r15 is
/// stable because every helper that can switch heaps (ParCall via rt::par)
/// restores CurrentHeap before returning. r13 is the only mirrored value:
/// it is written back to vm->Sp before every helper call (collections read
/// the stack through vm->Sp) and reloaded after every continue-helper.
///
//===----------------------------------------------------------------------===//

#include "pml/jit/Jit.h"

#include "chaos/ChaosSchedule.h"
#include "core/Em.h"
#include "hh/Heap.h"
#include "mm/Chunk.h"
#include "mm/Object.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "pml/Compiler.h"
#include "pml/jit/X64Emitter.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mpl;
using namespace mpl::jit;

#if defined(__SANITIZE_THREAD__)
#define MPL_JIT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MPL_JIT_TSAN 1
#endif
#endif
#ifndef MPL_JIT_TSAN
#define MPL_JIT_TSAN 0
#endif

namespace {

Stat JitCompiledStat("pml.jit.compiled");
Stat JitBailoutsStat("pml.jit.bailouts");
Stat JitEntriesStat("pml.jit.entries");
Stat JitCodeBytesStat("pml.jit.code_bytes");

/// -1 unresolved (read MPL_JIT on first query), else 0/1.
std::atomic<int> EnabledFlag{-1};
/// 0 unresolved (read MPL_JIT_THRESHOLD on first query), else the value.
std::atomic<uint64_t> ThresholdValue{0};
std::atomic<bool> TsanNoticePrinted{false};

bool envRequestsJit() {
  const char *Env = std::getenv("MPL_JIT");
  return Env && Env[0] == '1' && Env[1] == '\0';
}

} // namespace

bool jit::enabled() {
  int S = EnabledFlag.load(std::memory_order_acquire);
  if (S < 0) {
    setEnabled(envRequestsJit());
    S = EnabledFlag.load(std::memory_order_acquire);
  }
  return S == 1;
}

void jit::setEnabled(bool On) {
  if (On && (!MPL_JIT_SUPPORTED || MPL_JIT_TSAN)) {
    // Generated code is uninstrumented; running it under tsan would report
    // false races against instrumented accesses to the same memory. The
    // request is honored as "interpreter only" with a one-line notice.
    if (MPL_JIT_TSAN && !TsanNoticePrinted.exchange(true))
      std::fprintf(stderr, "mpl: pml jit disabled under ThreadSanitizer "
                           "(generated code is uninstrumented)\n");
    On = false;
  }
  EnabledFlag.store(On ? 1 : 0, std::memory_order_release);
}

bool jit::tsanForcedOff() { return MPL_JIT_TSAN != 0; }

uint64_t jit::compileThreshold() {
  uint64_t T = ThresholdValue.load(std::memory_order_acquire);
  if (T == 0) {
    uint64_t V = 64;
    if (const char *Env = std::getenv("MPL_JIT_THRESHOLD")) {
      char *End = nullptr;
      long long N = std::strtoll(Env, &End, 10);
      if (End && *End == '\0' && N > 0)
        V = static_cast<uint64_t>(N);
    }
    ThresholdValue.store(V, std::memory_order_release);
    T = V;
  }
  return T;
}

void jit::setCompileThreshold(uint64_t T) {
  ThresholdValue.store(T == 0 ? 1 : T, std::memory_order_release);
}

void jit::noteEntry() { JitEntriesStat.inc(); }

ProgramJit::ProgramJit(size_t NumFns)
    : Threshold(compileThreshold()), Fns(new FnState[NumFns]), N(NumFns) {}

ProgramJit::~ProgramJit() = default;

size_t ProgramJit::compiledCount() const {
  size_t C = 0;
  for (size_t I = 0; I < N; ++I)
    if (Fns[I].Phase.load(std::memory_order_acquire) == PhaseCompiled)
      ++C;
  return C;
}

std::shared_ptr<ProgramJit> jit::createProgramJit(const pml::Program &P) {
  if (!enabled())
    return nullptr;
  return std::make_shared<ProgramJit>(P.Fns.size());
}

//===----------------------------------------------------------------------===//
// Template compiler
//===----------------------------------------------------------------------===//

#if MPL_JIT_SUPPORTED

static_assert(sizeof(std::atomic<em::Mode>) == 1,
              "mode gate assumes a one-byte CurrentMode");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
static_assert(offsetof(Chunk, Owner) == 0,
              "heap-of fast path assumes Owner is the chunk's first word");
#pragma GCC diagnostic pop

namespace {

using pml::Instr;
using pml::Op;

// Pinned registers (see file comment).
constexpr Reg RegVm = RBX;
constexpr Reg RegStk = R12;
constexpr Reg RegSp = R13;
constexpr Reg RegBase = R14;
constexpr Reg RegHeap = R15;

constexpr uint32_t PollEvery = 256; // Matches the interpreter's cadence.

/// Chunk::AddrMask as a sign-extended imm32 (0xFFFF...C000).
constexpr int32_t AddrMaskImm = -static_cast<int32_t>(Chunk::SizeBytes);

uint64_t boxImm(int64_t V) { return (static_cast<uint64_t>(V) << 1) | 1; }

template <typename Fn> uint64_t addrOf(Fn *F) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(F));
}

/// One function's compilation state. Emission never fails mid-way: anything
/// unsupported bails before any code is kept.
struct FnCompiler {
  const pml::Program &P;
  const pml::FnProto &F;
  const int FnIdx;
  X64Emitter E;
  std::vector<X64Emitter::Label> Ips; // One per bytecode ip (jump targets).
  std::vector<uint32_t> NativeOff;
  X64Emitter::Label LEpilogue, LPollThunk, LTrapCommon;
  X64Emitter::Label LTrap[4];
  const int32_t SpOff, SbOff, StackCap;
  const int32_t DepthOff, ParentOff;
  const uint64_t ModeAddr;

  FnCompiler(const pml::Program &P, int FnIdx)
      : P(P), F(P.Fns[static_cast<size_t>(FnIdx)]), FnIdx(FnIdx),
        Ips(F.Code.size()),
        SpOff(static_cast<int32_t>(VmJit::spOffset())),
        SbOff(static_cast<int32_t>(VmJit::stackBaseOffset())),
        StackCap(static_cast<int32_t>(VmJit::stackCap())),
        DepthOff(static_cast<int32_t>(Heap::depthOffset())),
        ParentOff(static_cast<int32_t>(Heap::parentOffset())),
        ModeAddr(reinterpret_cast<uint64_t>(&em::CurrentMode)) {}

  void syncSp() { E.storeMR(RegVm, SpOff, RegSp); }
  void reloadSp() { E.loadRM(RegSp, RegVm, SpOff); }

  void callAbs(uint64_t Target) {
    E.movRI(R11, Target);
    E.callR(R11);
  }

  /// After a continue-helper: status in rax; nonzero exits, zero reloads Sp
  /// and continues inline.
  void checkOkReload() {
    E.testRR(RAX, RAX);
    E.jcc(CcNe, LEpilogue);
    reloadSp();
  }

  void helperOk0(uint64_t Fn) {
    syncSp();
    E.movRR(RDI, RegVm);
    callAbs(Fn);
    checkOkReload();
  }
  void helperOk1(uint64_t Fn, uint64_t A) {
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, A);
    callAbs(Fn);
    checkOkReload();
  }
  void helperOk2(uint64_t Fn, uint64_t A, uint64_t B) {
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, A);
    E.movRI(RDX, B);
    callAbs(Fn);
    checkOkReload();
  }

  void helperExit0(uint64_t Fn) {
    syncSp();
    E.movRR(RDI, RegVm);
    callAbs(Fn);
    E.jmp(LEpilogue);
  }
  void helperExit1(uint64_t Fn, uint64_t A) {
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, A);
    callAbs(Fn);
    E.jmp(LEpilogue);
  }
  void helperExit2(uint64_t Fn, uint64_t A, uint64_t B) {
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, A);
    E.movRI(RDX, B);
    callAbs(Fn);
    E.jmp(LEpilogue);
  }
  void helperExit3(uint64_t Fn, uint64_t A, uint64_t B, uint64_t C) {
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, A);
    E.movRI(RDX, B);
    E.movRI(RCX, C);
    callAbs(Fn);
    E.jmp(LEpilogue);
  }

  /// Sp >= StackCap would make the next push trap in the interpreter; the
  /// stub raises the identical "value stack overflow".
  void ovfCheck() {
    E.cmpRI(RegSp, StackCap);
    E.jcc(CcAe, LTrap[TrapStackOverflow]);
  }

  /// Pushes a compile-time-known boxed immediate.
  void emitPushImm(uint64_t BV) {
    ovfCheck();
    int64_t S = static_cast<int64_t>(BV);
    if (S >= INT32_MIN && S <= INT32_MAX) {
      E.storeMI32Idx8(RegStk, RegSp, 0, static_cast<int32_t>(S));
    } else {
      E.movRI(RAX, BV);
      E.storeMRIdx8(RegStk, RegSp, 0, RAX);
    }
    E.incR(RegSp);
  }

  /// Entanglement read-barrier fast path, emitted after the loaded value is
  /// already in its final stack slot (so the slow helper needs no operand
  /// reload). Value in rax; reader heap pinned in r15. Mirrors
  /// em::readBarrier exactly: skip for immediates/null/mode-Off, then the
  /// depth-guided ancestry walk of Heap::isAncestorOf; anything else goes
  /// to em::readBarrier in full via the helper (which re-runs the fast path
  /// — harmless — and then the counted/throwing slow path).
  void emitReadBarrier() {
    X64Emitter::Label LDone, LWalk, LCheck, LSlow;
    E.testR8I(RAX, 7);
    E.jcc(CcNe, LDone); // Tagged immediate.
    E.testRR(RAX, RAX);
    E.jcc(CcE, LDone); // Null.
    E.movRI(R11, ModeAddr);
    E.cmpMI8(R11, 0, 0);
    E.jcc(CcE, LDone); // Mode::Off.
    // HP = Heap::of(P): chunk header at the 16KiB boundary, Owner first.
    E.movRR(RCX, RAX);
    E.andRI(RCX, AddrMaskImm);
    E.loadRM(RCX, RCX, 0);
    // Walk: B = reader; while (B && B->Depth > HP->Depth) B = B->Parent.
    E.movRR(RDX, RegHeap);
    E.loadRM32(RSI, RCX, DepthOff);
    E.bind(LWalk);
    E.testRR(RDX, RDX);
    E.jcc(CcE, LSlow);
    E.cmpMR32(RDX, DepthOff, RSI);
    E.jcc(CcBe, LCheck);
    E.loadRM(RDX, RDX, ParentOff);
    E.jmp(LWalk);
    E.bind(LCheck);
    E.cmpRR(RDX, RCX);
    E.jcc(CcE, LDone); // Ancestor: disentangled.
    E.bind(LSlow);
    syncSp();
    E.movRR(RSI, RAX);     // Value.
    E.movRR(RDX, RegHeap); // Reader.
    E.movRR(RDI, RegVm);
    callAbs(addrOf(&VmJit::opReadBarrier));
    checkOkReload();
    E.bind(LDone);
  }

  /// Entanglement write-barrier fast path: X (holder object) in \p XReg,
  /// value in rax. Mirrors em::writeBarrier: skip for mode-Off /
  /// immediate / null value; same-heap store into an unpinned holder needs
  /// nothing; everything else calls the helper. \p Reload re-establishes
  /// the template's operand registers after the slow call (the helper
  /// never moves objects, but the call clobbers the scratch registers).
  template <typename ReloadFn>
  void emitWriteBarrier(Reg XReg, ReloadFn Reload) {
    X64Emitter::Label LDone, LSlow;
    E.movRI(R11, ModeAddr);
    E.cmpMI8(R11, 0, 0);
    E.jcc(CcE, LDone); // Mode::Off.
    E.testR8I(RAX, 7);
    E.jcc(CcNe, LDone); // Tagged immediate.
    E.testRR(RAX, RAX);
    E.jcc(CcE, LDone); // Null.
    E.movRR(RSI, XReg);
    E.andRI(RSI, AddrMaskImm);
    E.loadRM(RSI, RSI, 0); // HX
    E.movRR(RDI, RAX);
    E.andRI(RDI, AddrMaskImm);
    E.loadRM(RDI, RDI, 0); // HP
    E.cmpRR(RSI, RDI);
    E.jcc(CcNe, LSlow);
    E.testMI8(XReg, 0, static_cast<uint8_t>(Object::PinnedBit));
    E.jcc(CcE, LDone); // Intra-heap into an unexposed holder.
    E.bind(LSlow);
    syncSp();
    E.movRR(RSI, XReg); // Must precede the rdx write (XReg may be rdx).
    E.movRR(RDX, RAX);
    E.movRR(RDI, RegVm);
    callAbs(addrOf(&VmJit::opWriteBarrier));
    E.testRR(RAX, RAX);
    E.jcc(CcNe, LEpilogue);
    reloadSp();
    Reload();
    E.bind(LDone);
  }

  /// Binary arithmetic / comparison directly on tagged operands.
  /// box(v) = 2v+1, so add/sub fold the retag into one lea, and signed
  /// compares work on the boxed values unchanged (2v+1 is monotone).
  void emitArith(Op O) {
    E.loadRMIdx8(RAX, RegStk, RegSp, -8);  // boxed B
    E.loadRMIdx8(RCX, RegStk, RegSp, -16); // boxed A
    switch (O) {
    case Op::Add:
      E.leaIdx1(RAX, RCX, RAX, -1); // boxA + boxB - 1
      break;
    case Op::Sub:
      E.subRR(RCX, RAX); // boxA - boxB
      E.lea(RAX, RCX, 1);
      break;
    case Op::Mul:
      E.sarRI(RCX, 1);
      E.sarRI(RAX, 1);
      E.imulRR(RAX, RCX);
      E.leaIdx1(RAX, RAX, RAX, 1);
      break;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      Cond C = O == Op::Lt   ? CcL
               : O == Op::Le ? CcLe
               : O == Op::Gt ? CcG
                             : CcGe;
      E.cmpRR(RCX, RAX);
      E.setcc(C, RAX);
      E.movzxR8(RAX, RAX);
      E.leaIdx1(RAX, RAX, RAX, 1); // boxBool
      break;
    }
    default:
      __builtin_unreachable();
    }
    E.storeMRIdx8(RegStk, RegSp, -16, RAX);
    E.decR(RegSp);
  }

  void emitDivMod(bool IsDiv) {
    E.loadRMIdx8(RCX, RegStk, RegSp, -8);
    E.sarRI(RCX, 1); // Divisor; sar sets ZF.
    E.jcc(CcE, LTrap[TrapDivZero]);
    E.loadRMIdx8(RAX, RegStk, RegSp, -16);
    E.sarRI(RAX, 1);
    // Both operands are 63-bit after the sar, so idiv cannot fault on
    // INT64_MIN / -1 — overflow is impossible, matching the interpreter.
    E.cqo();
    E.idivR(RCX);
    if (IsDiv)
      E.leaIdx1(RAX, RAX, RAX, 1); // box quotient
    else
      E.leaIdx1(RAX, RDX, RDX, 1); // box remainder
    E.storeMRIdx8(RegStk, RegSp, -16, RAX);
    E.decR(RegSp);
  }

  /// Eq/Ne: identity and mixed immediate/pointer cases inline (exactly
  /// slotsEqual's prefix); two distinct pointers take the structural-
  /// equality helper, which writes the result and pops itself.
  void emitEq(bool Negate) {
    X64Emitter::Label LEq, LDiff, LStore, LNext;
    E.loadRMIdx8(RAX, RegStk, RegSp, -8);  // B
    E.loadRMIdx8(RCX, RegStk, RegSp, -16); // A
    E.cmpRR(RCX, RAX);
    E.jcc(CcE, LEq);
    E.movRR(RDX, RCX);
    E.orRR(RDX, RAX);
    E.testR8I(RDX, 7);
    E.jcc(CcNe, LDiff); // Either side tagged and A != B.
    E.testRR(RCX, RCX);
    E.jcc(CcE, LDiff);
    E.testRR(RAX, RAX);
    E.jcc(CcE, LDiff);
    syncSp();
    E.movRR(RDI, RegVm);
    E.movRI(RSI, Negate ? 1 : 0);
    callAbs(addrOf(&VmJit::opEqSlow));
    E.testRR(RAX, RAX);
    E.jcc(CcNe, LEpilogue);
    reloadSp();
    E.jmp(LNext);
    E.bind(LEq);
    E.movRI32(RAX, static_cast<uint32_t>(boxImm(Negate ? 0 : 1)));
    E.jmp(LStore);
    E.bind(LDiff);
    E.movRI32(RAX, static_cast<uint32_t>(boxImm(Negate ? 1 : 0)));
    E.bind(LStore);
    E.storeMRIdx8(RegStk, RegSp, -16, RAX);
    E.decR(RegSp);
    E.bind(LNext);
  }

  /// Loads the array-length field (header >> 16, low 32 bits) into \p D32
  /// from the object header in \p Obj.
  void emitLoadLen(Reg D, Reg Obj) {
    E.loadRM(D, Obj, 0);
    E.shrRI(D, 16);
    E.movRR32(D, D); // Mask to the 32-bit length field.
  }

  /// TailCall. Self-recursive tail calls — the hot shape of every compiled
  /// pml loop — rebuild the frame entirely in native code and jump back to
  /// ip 0; anything else (different callee, non-closure, oversized frame)
  /// exits through the generic helper.
  void emitTailCall() {
    const int NumLocals = F.NumLocals;
    const bool Fast = NumLocals >= 1 && NumLocals <= 16;
    X64Emitter::Label LGeneric;
    if (Fast) {
      const int32_t SpAdd = 2 + (NumLocals - 1);
      E.loadRMIdx8(RAX, RegStk, RegSp, -16); // FnV
      E.testR8I(RAX, 7);
      E.jcc(CcNe, LGeneric);
      E.testRR(RAX, RAX);
      E.jcc(CcE, LGeneric);
      E.loadRM(RDX, RAX, 0); // Header.
      E.movRR(RSI, RDX);
      E.andRI32(RSI, 6); // Kind bits; Array == 1 -> 0b010.
      E.cmpRI32(RSI, 2);
      E.jcc(CcNe, LGeneric);
      emitLoadLen(RSI, RAX);
      E.testRR(RSI, RSI);
      E.jcc(CcE, LGeneric); // Zero-length array is not a closure.
      E.cmpMI32q(RAX, 8, static_cast<int32_t>(boxImm(FnIdx)));
      E.jcc(CcNe, LGeneric); // Different callee (or non-int slot 0).
      E.lea(RCX, RegBase, SpAdd);
      E.cmpRI(RCX, StackCap);
      E.jcc(CcA, LTrap[TrapStackOverflow]);
      E.loadRMIdx8(RDX, RegStk, RegSp, -8); // ArgV
      E.storeMRIdx8(RegStk, RegBase, 0, RAX);
      E.storeMRIdx8(RegStk, RegBase, 8, RDX);
      for (int I = 1; I < NumLocals; ++I)
        E.storeMI32Idx8(RegStk, RegBase, 8 * (1 + I), 1); // unit()
      E.movRR(RegSp, RCX);
      E.jmp(Ips[0]);
      E.bind(LGeneric);
    }
    helperExit0(addrOf(&VmJit::opTailCall));
  }

  /// One bytecode instruction's template. \p IpAfter = ip + 1 (what the
  /// interpreter's post-increment would leave in F.Ip).
  void emitOp(const Instr &In, uint64_t IpAfter) {
    switch (In.O) {
    case Op::PushInt:
      emitPushImm(boxImm(In.A));
      break;
    case Op::PushBigInt:
      emitPushImm(boxImm(P.IntPool[static_cast<size_t>(In.A)]));
      break;
    case Op::PushBool:
      emitPushImm(boxImm(In.A != 0 ? 1 : 0));
      break;
    case Op::PushUnit:
      emitPushImm(boxImm(0));
      break;
    case Op::PushStr:
      helperOk1(addrOf(&VmJit::opPushStr), static_cast<uint64_t>(In.A));
      break;

    case Op::LoadLocal:
      ovfCheck();
      E.loadRMIdx8(RAX, RegStk, RegBase, 8 * (1 + In.A));
      E.storeMRIdx8(RegStk, RegSp, 0, RAX);
      E.incR(RegSp);
      break;
    case Op::StoreLocal:
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);
      E.decR(RegSp);
      E.storeMRIdx8(RegStk, RegBase, 8 * (1 + In.A), RAX);
      break;
    case Op::LoadCapture:
      // arrGet(closure, A+1): acquire load (plain mov on x86-TSO) + push +
      // read barrier once the value is in place.
      ovfCheck();
      E.loadRMIdx8(RCX, RegStk, RegBase, 0);  // Closure object.
      E.loadRM(RAX, RCX, 8 + 8 * (In.A + 1)); // Slot A+1.
      E.storeMRIdx8(RegStk, RegSp, 0, RAX);
      E.incR(RegSp);
      emitReadBarrier();
      break;
    case Op::Pop:
      E.decR(RegSp);
      break;

    case Op::MkClosure:
      helperOk2(addrOf(&VmJit::opMkClosure), static_cast<uint64_t>(In.A),
                static_cast<uint64_t>(In.B));
      break;
    case Op::FixSelf:
      helperOk1(addrOf(&VmJit::opFixSelf), static_cast<uint64_t>(In.A));
      break;

    case Op::Call:
      helperExit1(addrOf(&VmJit::opCall), IpAfter);
      break;
    case Op::TailCall:
      emitTailCall();
      break;
    case Op::Ret:
      helperExit0(addrOf(&VmJit::opRet));
      break;

    case Op::Jmp:
      E.jmp(Ips[static_cast<size_t>(In.A)]);
      break;
    case Op::Jz:
    case Op::Jnz:
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);
      E.decR(RegSp);
      E.sarRI(RAX, 1); // unboxInt; sets ZF — unboxBool is "!= 0".
      E.jcc(In.O == Op::Jz ? CcE : CcNe, Ips[static_cast<size_t>(In.A)]);
      break;
    case Op::MatchFail:
      E.jmp(LTrap[TrapMatchFail]);
      break;

    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      emitArith(In.O);
      break;
    case Op::Div:
      emitDivMod(/*IsDiv=*/true);
      break;
    case Op::Mod:
      emitDivMod(/*IsDiv=*/false);
      break;
    case Op::Neg:
      // box(-v) = 2 - box(v).
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);
      E.movRI(RCX, 2);
      E.subRR(RCX, RAX);
      E.storeMRIdx8(RegStk, RegSp, -8, RCX);
      break;
    case Op::Not:
      // unboxBool is false exactly for box(0) == 1 (bool-typed operand).
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);
      E.cmpRI(RAX, 1);
      E.setcc(CcE, RAX);
      E.movzxR8(RAX, RAX);
      E.leaIdx1(RAX, RAX, RAX, 1);
      E.storeMRIdx8(RegStk, RegSp, -8, RAX);
      break;
    case Op::Eq:
      emitEq(/*Negate=*/false);
      break;
    case Op::Ne:
      emitEq(/*Negate=*/true);
      break;

    case Op::MkPair:
      helperOk0(addrOf(&VmJit::opMkPair));
      break;
    case Op::Fst:
    case Op::Snd:
      // recGet on an immutable record: barrier-free by design.
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);
      E.loadRM(RAX, RAX, In.O == Op::Fst ? 8 : 16);
      E.storeMRIdx8(RegStk, RegSp, -8, RAX);
      break;

    case Op::MkRef:
      helperOk0(addrOf(&VmJit::opMkRef));
      break;
    case Op::Deref:
      E.loadRMIdx8(RCX, RegStk, RegSp, -8);
      E.loadRM(RAX, RCX, 8); // refGet slot 0 (acquire == mov on x86).
      E.storeMRIdx8(RegStk, RegSp, -8, RAX);
      emitReadBarrier();
      break;
    case Op::Assign:
      E.loadRMIdx8(RAX, RegStk, RegSp, -8);  // V
      E.loadRMIdx8(RCX, RegStk, RegSp, -16); // R
      emitWriteBarrier(RCX, [&] {
        E.loadRMIdx8(RAX, RegStk, RegSp, -8);
        E.loadRMIdx8(RCX, RegStk, RegSp, -16);
      });
      E.storeMR(RCX, 8, RAX); // Release store == mov on x86.
      E.decR(RegSp);
      E.storeMI32Idx8(RegStk, RegSp, -8, 1); // unit()
      break;

    case Op::Alloc:
      helperOk0(addrOf(&VmJit::opAlloc));
      break;
    case Op::AGet:
      E.loadRMIdx8(RCX, RegStk, RegSp, -8);
      E.sarRI(RCX, 1); // Index.
      E.loadRMIdx8(RDX, RegStk, RegSp, -16); // Array.
      emitLoadLen(RSI, RDX);
      E.cmpRR(RCX, RSI);
      E.jcc(CcAe, LTrap[TrapOob]); // Unsigned: negative index too.
      E.loadRMIdx8(RAX, RDX, RCX, 8);
      E.decR(RegSp);
      E.storeMRIdx8(RegStk, RegSp, -8, RAX);
      emitReadBarrier();
      break;
    case Op::ASet:
      E.loadRMIdx8(RAX, RegStk, RegSp, -8); // V
      E.loadRMIdx8(RCX, RegStk, RegSp, -16);
      E.sarRI(RCX, 1); // Index.
      E.loadRMIdx8(RDX, RegStk, RegSp, -24); // Array.
      emitLoadLen(RSI, RDX);
      E.cmpRR(RCX, RSI);
      E.jcc(CcAe, LTrap[TrapOob]);
      emitWriteBarrier(RDX, [&] {
        E.loadRMIdx8(RAX, RegStk, RegSp, -8);
        E.loadRMIdx8(RCX, RegStk, RegSp, -16);
        E.sarRI(RCX, 1);
        E.loadRMIdx8(RDX, RegStk, RegSp, -24);
      });
      E.storeMRIdx8(RDX, RCX, 8, RAX);
      E.subRI(RegSp, 2);
      E.storeMI32Idx8(RegStk, RegSp, -8, 1); // unit()
      break;
    case Op::ALen:
      E.loadRMIdx8(RCX, RegStk, RegSp, -8);
      emitLoadLen(RAX, RCX);
      E.leaIdx1(RAX, RAX, RAX, 1); // boxInt
      E.storeMRIdx8(RegStk, RegSp, -8, RAX);
      break;

    case Op::ParCall:
      // rt::par restores CurrentHeap on the calling thread before the
      // helper returns, so the pinned r15 stays valid across the fork.
      helperOk0(addrOf(&VmJit::opParCall));
      break;
    case Op::Print:
      helperOk0(addrOf(&VmJit::opPrint));
      break;
    case Op::PrintInt:
      helperOk0(addrOf(&VmJit::opPrintInt));
      break;

    case Op::Handle:
      helperExit3(addrOf(&VmJit::opHandle), IpAfter,
                  static_cast<uint64_t>(In.A), static_cast<uint64_t>(In.B));
      break;
    case Op::Suspend:
      helperExit2(addrOf(&VmJit::opSuspend), IpAfter,
                  static_cast<uint64_t>(In.A));
      break;
    case Op::Resume:
      helperExit1(addrOf(&VmJit::opResume), IpAfter);
      break;
    }
  }

  std::unique_ptr<CompiledFn> compile(CodePool &Pool) {
    const size_t N = F.Code.size();
    // Sanity-validate operands so bad bytecode bails to the interpreter
    // instead of emitting wild addressing.
    for (const Instr &In : F.Code) {
      switch (In.O) {
      case Op::Jmp:
      case Op::Jz:
      case Op::Jnz:
        if (In.A < 0 || static_cast<size_t>(In.A) >= N)
          return nullptr;
        break;
      case Op::PushBigInt:
        if (In.A < 0 || static_cast<size_t>(In.A) >= P.IntPool.size())
          return nullptr;
        break;
      case Op::LoadLocal:
      case Op::StoreLocal:
      case Op::LoadCapture:
      case Op::FixSelf:
        if (In.A < 0)
          return nullptr;
        break;
      case Op::MkClosure:
        if (In.B < 0)
          return nullptr;
        break;
      default:
        if (static_cast<int>(In.O) > static_cast<int>(Op::Handle))
          return nullptr;
        break;
      }
    }

    // Prologue. Six pushes + the 8-byte pad put rsp back on a 16-byte
    // boundary, so every in-template call site is ABI-aligned.
    E.pushR(RBP);
    E.pushR(RBX);
    E.pushR(R12);
    E.pushR(R13);
    E.pushR(R14);
    E.pushR(R15);
    E.subRI(RSP, 8);
    E.movRR(RegVm, RDI);
    E.movRR(RegHeap, RDX);
    E.movRR(RegBase, RCX);
    E.loadRM(RegStk, RegVm, SbOff);
    E.loadRM(RegSp, RegVm, SpOff);
    E.movRI32(RBP, PollEvery);
    E.jmpR(RSI); // Absolute native address of the entry ip's template.

    NativeOff.reserve(N);
    for (size_t Ip = 0; Ip < N; ++Ip) {
      NativeOff.push_back(static_cast<uint32_t>(E.size()));
      E.bind(Ips[Ip]);
      // Per-op deadline poll, same cadence as the interpreter's dispatch
      // counter.
      X64Emitter::Label LSkip;
      E.decR32(RBP);
      E.jcc(CcNe, LSkip);
      E.callL(LPollThunk);
      E.bind(LSkip);
      emitOp(F.Code[Ip], static_cast<uint64_t>(Ip) + 1);
    }

    // Trap stubs: code in esi, then the shared trap-and-exit tail.
    for (uint32_t T = 0; T < 4; ++T) {
      E.bind(LTrap[T]);
      E.movRI32(RSI, T);
      E.jmp(LTrapCommon);
    }
    E.bind(LTrapCommon);
    syncSp();
    E.movRR(RDI, RegVm);
    callAbs(addrOf(&VmJit::opTrap));
    E.jmp(LEpilogue);

    // Poll thunk: reached by a near call from any op's prelude. The extra
    // sub realigns rsp for the helper call; the exit path drops both the
    // pad and the return address before jumping to the epilogue.
    E.bind(LPollThunk);
    E.subRI(RSP, 8);
    syncSp();
    E.movRR(RDI, RegVm);
    callAbs(addrOf(&VmJit::poll));
    E.testRR(RAX, RAX);
    X64Emitter::Label LPollExit;
    E.jcc(CcNe, LPollExit);
    E.movRI32(RBP, PollEvery);
    E.addRI(RSP, 8);
    E.ret();
    E.bind(LPollExit);
    E.addRI(RSP, 16);
    E.jmp(LEpilogue);

    // Epilogue: the only way out. Sp was synced by whichever helper or
    // stub routed here, so r13 is never written back.
    E.bind(LEpilogue);
    E.movRI32(RAX, 0);
    E.addRI(RSP, 8);
    E.popR(R15);
    E.popR(R14);
    E.popR(R13);
    E.popR(R12);
    E.popR(RBX);
    E.popR(RBP);
    E.ret();
    E.int3(); // Guard: falling off the end is a bug, not silent decay.

    if (!E.finalize())
      return nullptr;
    const uint8_t *Code = Pool.publish(E.data(), E.size());
    if (!Code)
      return nullptr;
    auto CF = std::make_unique<CompiledFn>();
    CF->Code = Code;
    CF->CodeSize = E.size();
    CF->NativeOff = std::move(NativeOff);
    return CF;
  }
};

std::unique_ptr<CompiledFn> compileFunction(const pml::Program &P, int FnIdx,
                                            CodePool &Pool) {
  const pml::FnProto &F = P.Fns[static_cast<size_t>(FnIdx)];
  if (F.Code.empty() || F.Code.size() > (1u << 20))
    return nullptr;
  FnCompiler C(P, FnIdx);
  return C.compile(Pool);
}

} // namespace

#else // !MPL_JIT_SUPPORTED

namespace {
std::unique_ptr<CompiledFn> compileFunction(const pml::Program &, int,
                                            CodePool &) {
  return nullptr;
}
} // namespace

#endif

const CompiledFn *jit::hotOrCompile(ProgramJit &PJ, const pml::Program &P,
                                    int FnIdx) {
  FnState &S = PJ.fn(static_cast<size_t>(FnIdx));
  uint32_t Ph = S.Phase.load(std::memory_order_acquire);
  if (Ph == PhaseCompiled)
    return S.Fn.load(std::memory_order_acquire);
  if (Ph != PhaseCold)
    return nullptr; // Compiling elsewhere, or a recorded bailout.
  if (S.Calls.load(std::memory_order_relaxed) < PJ.Threshold)
    return nullptr;
  uint32_t Expected = PhaseCold;
  if (!S.Phase.compare_exchange_strong(Expected, PhaseCompiling,
                                       std::memory_order_acq_rel))
    return nullptr; // Another strand claimed the compile.

  std::unique_ptr<CompiledFn> CF = compileFunction(P, FnIdx, PJ.Pool);
  if (!CF) {
    JitBailoutsStat.inc();
    S.Phase.store(PhaseNoCompile, std::memory_order_release);
    return nullptr;
  }
  CompiledFn *Raw = CF.get();
  {
    std::lock_guard<std::mutex> G(PJ.CompiledMu);
    PJ.Owned.push_back(std::move(CF));
  }
  // Schedule fuzzing: stretch the window between finishing the code and
  // publishing it — other strands must keep interpreting identically.
  chaos::preemptPoint(chaos::Point::JitPublish);
  S.Fn.store(Raw, std::memory_order_release);
  S.Phase.store(PhaseCompiled, std::memory_order_release);
  JitCompiledStat.inc();
  JitCodeBytesStat.add(static_cast<int64_t>(Raw->CodeSize));
  obs::emit(obs::Ev::JitCompile, FnIdx, static_cast<int64_t>(Raw->CodeSize));
  obs::profileEvent(MPL_SITE("pml.jit.compile"),
                    static_cast<int64_t>(Raw->CodeSize), 0);
  return Raw;
}
