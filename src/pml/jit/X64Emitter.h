//===- pml/jit/X64Emitter.h - Minimal x86-64 instruction encoder -*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small append-only x86-64 encoder for the pml template JIT. It covers
/// exactly the instruction forms the per-opcode templates in Jit.cpp need —
/// 64-bit moves between registers and [base + disp] / [base + index*8 +
/// disp] memory, the tagged-integer ALU subset, rel32 branches with
/// back-patched labels, and absolute-address calls through a scratch
/// register — nothing more. Encodings follow the Intel SDM; REX prefixes
/// are emitted whenever an extended register or a 64-bit operand size
/// requires one.
///
/// The emitter produces position-independent code except for movabs
/// immediates (helper and global addresses baked in by the compiler), which
/// is fine because a compiled function is published once at a fixed address
/// and never moved (see JitRuntime.h).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_JIT_X64EMITTER_H
#define MPL_PML_JIT_X64EMITTER_H

#include "support/Assert.h"

#include <cstdint>
#include <vector>

namespace mpl {
namespace jit {

/// Register numbers as encoded in ModRM/SIB (REX.B/R/X supply bit 3).
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum Cond : uint8_t {
  CcO = 0x0,
  CcNo = 0x1,
  CcB = 0x2,  ///< unsigned <
  CcAe = 0x3, ///< unsigned >=
  CcE = 0x4,
  CcNe = 0x5,
  CcBe = 0x6, ///< unsigned <=
  CcA = 0x7,  ///< unsigned >
  CcS = 0x8,
  CcNs = 0x9,
  CcL = 0xc, ///< signed <
  CcGe = 0xd,
  CcLe = 0xe,
  CcG = 0xf,
};

class X64Emitter {
public:
  /// A forward-referenceable code position. Jumps to an unbound label
  /// record a fixup; bind() patches them all. Destroying an emitter with
  /// referenced-but-unbound labels is a bug the compiler must not commit —
  /// finalize() checks.
  struct Label {
    int32_t Bound = -1;
    std::vector<uint32_t> Fixups; ///< Offsets of rel32 fields to patch.
  };

  size_t size() const { return Buf.size(); }
  const uint8_t *data() const { return Buf.data(); }

  void bind(Label &L) {
    MPL_CHECK(L.Bound < 0, "label bound twice");
    L.Bound = static_cast<int32_t>(Buf.size());
    for (uint32_t Pos : L.Fixups)
      patch32(Pos, L.Bound - (static_cast<int32_t>(Pos) + 4));
    PendingFixups -= static_cast<int>(L.Fixups.size());
    L.Fixups.clear();
  }

  bool bound(const Label &L) const { return L.Bound >= 0; }

  //===--------------------------------------------------------------------===//
  // Moves
  //===--------------------------------------------------------------------===//

  /// mov r64, r64
  void movRR(Reg D, Reg S) {
    rex(1, S, 0, D);
    b(0x89);
    modrm(3, S, D);
  }

  /// mov r32, r32 (zero-extends into the full register)
  void movRR32(Reg D, Reg S) {
    rexOpt(0, S, 0, D);
    b(0x89);
    modrm(3, S, D);
  }

  /// mov r64, imm — movabs when needed, sign-extended imm32 form when it
  /// fits, xor for zero.
  void movRI(Reg D, uint64_t Imm) {
    int64_t S = static_cast<int64_t>(Imm);
    if (S >= INT32_MIN && S <= INT32_MAX) {
      rex(1, 0, 0, D);
      b(0xc7);
      modrm(3, 0, D);
      d32(static_cast<uint32_t>(S));
      return;
    }
    rex(1, 0, 0, D);
    b(0xb8 + (D & 7));
    d64(Imm);
  }

  /// mov r32, imm32 (zero-extends)
  void movRI32(Reg D, uint32_t Imm) {
    rexOpt(0, 0, 0, D);
    b(0xb8 + (D & 7));
    d32(Imm);
  }

  /// mov r64, [base + disp]
  void loadRM(Reg D, Reg Base, int32_t Disp) {
    rex(1, D, 0, Base);
    b(0x8b);
    mem(D, Base, Disp);
  }

  /// mov r32, [base + disp] (zero-extends)
  void loadRM32(Reg D, Reg Base, int32_t Disp) {
    rexOpt(0, D, 0, Base);
    b(0x8b);
    mem(D, Base, Disp);
  }

  /// mov [base + disp], r64
  void storeMR(Reg Base, int32_t Disp, Reg S) {
    rex(1, S, 0, Base);
    b(0x89);
    mem(S, Base, Disp);
  }

  /// mov r64, [base + index*8 + disp]
  void loadRMIdx8(Reg D, Reg Base, Reg Index, int32_t Disp) {
    rex(1, D, Index, Base);
    b(0x8b);
    memIdx(D, Base, Index, 3, Disp);
  }

  /// mov [base + index*8 + disp], r64
  void storeMRIdx8(Reg Base, Reg Index, int32_t Disp, Reg S) {
    rex(1, S, Index, Base);
    b(0x89);
    memIdx(S, Base, Index, 3, Disp);
  }

  /// mov qword [base + index*8 + disp], imm32 (sign-extended)
  void storeMI32Idx8(Reg Base, Reg Index, int32_t Disp, int32_t Imm) {
    rex(1, 0, Index, Base);
    b(0xc7);
    memIdx(0, Base, Index, 3, Disp);
    d32(static_cast<uint32_t>(Imm));
  }

  /// lea r64, [base + disp]
  void lea(Reg D, Reg Base, int32_t Disp) {
    rex(1, D, 0, Base);
    b(0x8d);
    mem(D, Base, Disp);
  }

  /// lea r64, [base + index*1 + disp]
  void leaIdx1(Reg D, Reg Base, Reg Index, int32_t Disp) {
    rex(1, D, Index, Base);
    b(0x8d);
    memIdx(D, Base, Index, 0, Disp);
  }

  //===--------------------------------------------------------------------===//
  // ALU
  //===--------------------------------------------------------------------===//

  void addRR(Reg D, Reg S) { aluRR(0x01, D, S); }
  void subRR(Reg D, Reg S) { aluRR(0x29, D, S); }
  void cmpRR(Reg D, Reg S) { aluRR(0x39, D, S); }
  void testRR(Reg D, Reg S) { aluRR(0x85, D, S); }
  void orRR(Reg D, Reg S) { aluRR(0x09, D, S); }

  void addRI(Reg D, int32_t Imm) { aluRI(0, D, Imm); }
  void andRI(Reg D, int32_t Imm) { aluRI(4, D, Imm); }
  void subRI(Reg D, int32_t Imm) { aluRI(5, D, Imm); }
  void cmpRI(Reg D, int32_t Imm) { aluRI(7, D, Imm); }

  /// and r32, imm8/imm32 (zero-extends)
  void andRI32(Reg D, int32_t Imm) {
    rexOpt(0, 0, 0, D);
    if (Imm >= -128 && Imm <= 127) {
      b(0x83);
      modrm(3, 4, D);
      b(static_cast<uint8_t>(Imm));
    } else {
      b(0x81);
      modrm(3, 4, D);
      d32(static_cast<uint32_t>(Imm));
    }
  }

  /// cmp r32, imm (for 32-bit compares of small values)
  void cmpRI32(Reg D, int32_t Imm) {
    rexOpt(0, 0, 0, D);
    if (Imm >= -128 && Imm <= 127) {
      b(0x83);
      modrm(3, 7, D);
      b(static_cast<uint8_t>(Imm));
    } else {
      b(0x81);
      modrm(3, 7, D);
      d32(static_cast<uint32_t>(Imm));
    }
  }

  /// cmp qword [base + disp], imm32 (sign-extended)
  void cmpMI32q(Reg Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, 0, Base);
    b(0x81);
    mem(7, Base, Disp);
    d32(static_cast<uint32_t>(Imm));
  }

  /// cmp byte [base + disp], imm8
  void cmpMI8(Reg Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, 0, 0, Base);
    b(0x80);
    mem(7, Base, Disp);
    b(Imm);
  }

  /// cmp dword [base + disp], r32
  void cmpMR32(Reg Base, int32_t Disp, Reg S) {
    rexOpt(0, S, 0, Base);
    b(0x39);
    mem(S, Base, Disp);
  }

  /// test byte [base + disp], imm8
  void testMI8(Reg Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, 0, 0, Base);
    b(0xf6);
    mem(0, Base, Disp);
    b(Imm);
  }

  /// test al/cl/dl/bl, imm8 (low-byte registers only — no REX-byte regs)
  void testR8I(Reg D, uint8_t Imm) {
    MPL_CHECK(D <= RBX, "testR8I limited to legacy low-byte registers");
    if (D == RAX) {
      b(0xa8);
      b(Imm);
      return;
    }
    b(0xf6);
    modrm(3, 0, D);
    b(Imm);
  }

  /// sar r64, imm8
  void sarRI(Reg D, uint8_t Imm) { shiftRI(7, D, Imm); }
  /// shr r64, imm8
  void shrRI(Reg D, uint8_t Imm) { shiftRI(5, D, Imm); }
  /// shl r64, imm8
  void shlRI(Reg D, uint8_t Imm) { shiftRI(4, D, Imm); }

  /// imul r64, r64 (D *= S)
  void imulRR(Reg D, Reg S) {
    rex(1, D, 0, S);
    b(0x0f);
    b(0xaf);
    modrm(3, D, S);
  }

  /// cqo (sign-extend rax into rdx:rax)
  void cqo() {
    b(0x48);
    b(0x99);
  }

  /// idiv r64 (rdx:rax / S -> rax quot, rdx rem)
  void idivR(Reg S) {
    rex(1, 0, 0, S);
    b(0xf7);
    modrm(3, 7, S);
  }

  /// inc r64 / dec r64
  void incR(Reg D) {
    rex(1, 0, 0, D);
    b(0xff);
    modrm(3, 0, D);
  }
  void decR(Reg D) {
    rex(1, 0, 0, D);
    b(0xff);
    modrm(3, 1, D);
  }
  /// dec r32
  void decR32(Reg D) {
    rexOpt(0, 0, 0, D);
    b(0xff);
    modrm(3, 1, D);
  }

  /// setcc on al/cl/dl/bl (no REX-byte registers needed by the templates)
  void setcc(Cond C, Reg D) {
    MPL_CHECK(D <= RBX, "setcc limited to legacy low-byte registers");
    b(0x0f);
    b(0x90 + C);
    modrm(3, 0, D);
  }

  /// movzx r32, r8 (al/cl/dl/bl)
  void movzxR8(Reg D, Reg S) {
    MPL_CHECK(S <= RBX, "movzxR8 limited to legacy low-byte registers");
    rexOpt(0, D, 0, S);
    b(0x0f);
    b(0xb6);
    modrm(3, D, S);
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void jcc(Cond C, Label &L) {
    b(0x0f);
    b(0x80 + C);
    rel32(L);
  }

  void jmp(Label &L) {
    b(0xe9);
    rel32(L);
  }

  void jmpR(Reg D) {
    rexOpt(0, 0, 0, D);
    b(0xff);
    modrm(3, 4, D);
  }

  void callR(Reg D) {
    rexOpt(0, 0, 0, D);
    b(0xff);
    modrm(3, 2, D);
  }

  void callL(Label &L) {
    b(0xe8);
    rel32(L);
  }

  void pushR(Reg D) {
    rexOpt(0, 0, 0, D);
    b(0x50 + (D & 7));
  }

  void popR(Reg D) {
    rexOpt(0, 0, 0, D);
    b(0x58 + (D & 7));
  }

  void ret() { b(0xc3); }
  void int3() { b(0xcc); }

  /// True when every referenced label was bound (call before publishing).
  bool finalize() const { return PendingFixups == 0; }

private:
  void b(uint8_t V) { Buf.push_back(V); }
  void d32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      b(static_cast<uint8_t>(V >> (8 * I)));
  }
  void d64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      b(static_cast<uint8_t>(V >> (8 * I)));
  }
  void patch32(uint32_t Pos, int32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf[Pos + static_cast<uint32_t>(I)] =
          static_cast<uint8_t>(static_cast<uint32_t>(V) >> (8 * I));
  }

  void rex(int W, int R, int X, int B2) {
    b(static_cast<uint8_t>(0x40 | (W << 3) | (((R >> 3) & 1) << 2) |
                           (((X >> 3) & 1) << 1) | ((B2 >> 3) & 1)));
  }
  /// REX only when an extended register forces it.
  void rexOpt(int W, int R, int X, int B2) {
    if (W || R >= 8 || X >= 8 || B2 >= 8)
      rex(W, R, X, B2);
  }

  void modrm(int Mod, int RegOp, int Rm) {
    b(static_cast<uint8_t>((Mod << 6) | ((RegOp & 7) << 3) | (Rm & 7)));
  }

  /// [base + disp] addressing for the /r or /digit field \p RegOp.
  void mem(int RegOp, Reg Base, int32_t Disp) {
    int B2 = Base & 7;
    bool NeedsSib = B2 == 4;             // rsp/r12 require a SIB byte.
    bool NoDisp0 = B2 == 5;              // rbp/r13 cannot use mod 00.
    int Mod = (Disp == 0 && !NoDisp0) ? 0 : (Disp >= -128 && Disp <= 127 ? 1 : 2);
    modrm(Mod, RegOp, NeedsSib ? 4 : B2);
    if (NeedsSib)
      b(0x24); // scale=0, index=none(100), base=rsp/r12
    if (Mod == 1)
      b(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      d32(static_cast<uint32_t>(Disp));
  }

  /// [base + index*2^scale + disp] addressing.
  void memIdx(int RegOp, Reg Base, Reg Index, int Scale, int32_t Disp) {
    MPL_CHECK((Index & 7) != 4 || Index >= 8,
              "rsp cannot be an index register");
    int B2 = Base & 7;
    bool NoDisp0 = B2 == 5; // rbp/r13 base needs an explicit disp.
    int Mod = (Disp == 0 && !NoDisp0) ? 0 : (Disp >= -128 && Disp <= 127 ? 1 : 2);
    modrm(Mod, RegOp, 4);
    b(static_cast<uint8_t>((Scale << 6) | ((Index & 7) << 3) | B2));
    if (Mod == 1)
      b(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      d32(static_cast<uint32_t>(Disp));
  }

  void aluRR(uint8_t Op, Reg D, Reg S) {
    rex(1, S, 0, D);
    b(Op);
    modrm(3, S, D);
  }

  void aluRI(int Digit, Reg D, int32_t Imm) {
    rex(1, 0, 0, D);
    if (Imm >= -128 && Imm <= 127) {
      b(0x83);
      modrm(3, Digit, D);
      b(static_cast<uint8_t>(Imm));
    } else {
      b(0x81);
      modrm(3, Digit, D);
      d32(static_cast<uint32_t>(Imm));
    }
  }

  void shiftRI(int Digit, Reg D, uint8_t Imm) {
    rex(1, 0, 0, D);
    if (Imm == 1) {
      b(0xd1);
      modrm(3, Digit, D);
    } else {
      b(0xc1);
      modrm(3, Digit, D);
      b(Imm);
    }
  }

  void rel32(Label &L) {
    if (L.Bound >= 0) {
      d32(static_cast<uint32_t>(L.Bound -
                                (static_cast<int32_t>(Buf.size()) + 4)));
      return;
    }
    L.Fixups.push_back(static_cast<uint32_t>(Buf.size()));
    ++PendingFixups; // Balanced when bind() resolves the label's fixups.
    d32(0);
  }

  std::vector<uint8_t> Buf;
  int PendingFixups = 0;
};

} // namespace jit
} // namespace mpl

#endif // MPL_PML_JIT_X64EMITTER_H
