//===- pml/jit/JitRuntime.cpp - W^X executable code pages ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "pml/jit/JitRuntime.h"

#include <cstring>

#if MPL_JIT_SUPPORTED
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace mpl;
using namespace mpl::jit;

#if MPL_JIT_SUPPORTED

namespace {
size_t pageRound(size_t Bytes) {
  static const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (Bytes + Page - 1) & ~(Page - 1);
}
} // namespace

const uint8_t *CodePool::publish(const uint8_t *Code, size_t Size) {
  if (Size == 0)
    return nullptr;
  size_t Total = pageRound(Size);
  // W^X step 1: a private RW mapping nobody else can see yet.
  void *Mem = ::mmap(nullptr, Total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  std::memcpy(Mem, Code, Size);
  // W^X step 2: flip to RX. The write permission is gone before the entry
  // address can escape this function; there is never a RWX state.
  if (::mprotect(Mem, Total, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(Mem, Total);
    return nullptr;
  }
  std::lock_guard<std::mutex> G(Mu);
  Blocks.emplace_back(Mem, Total);
  return static_cast<const uint8_t *>(Mem);
}

CodePool::~CodePool() {
  for (auto &[Mem, Total] : Blocks)
    ::munmap(Mem, Total);
}

#else // !MPL_JIT_SUPPORTED

const uint8_t *CodePool::publish(const uint8_t *, size_t) { return nullptr; }

CodePool::~CodePool() = default;

#endif

size_t CodePool::mappedBytes() const {
  std::lock_guard<std::mutex> G(Mu);
  size_t Total = 0;
  for (const auto &[Mem, Bytes] : Blocks) {
    (void)Mem;
    Total += Bytes;
  }
  return Total;
}

size_t CodePool::blockCount() const {
  std::lock_guard<std::mutex> G(Mu);
  return Blocks.size();
}
