//===- pml/jit/JitRuntime.h - W^X executable code pages --------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the executable memory behind compiled pml functions. The lifecycle
/// is strict W^X: a fresh anonymous mapping is created read-write, the
/// encoded instructions are copied in, and the mapping is flipped to
/// read-execute before the entry address escapes. No mapping is ever
/// readable-writable-executable at any point, and a published mapping is
/// never flipped back to writable — code is immutable once live, which is
/// also what makes publishing it to other strands a one-way release/acquire
/// handoff (the mprotect on the publishing thread plus the Phase
/// release-store in Jit.cpp order the code bytes before any consumer's
/// jump into them).
///
/// Mappings are only unmapped when the pool is destroyed, i.e. when the
/// owning ProgramJit (and hence every Vm that could run the code) is gone.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_JIT_JITRUNTIME_H
#define MPL_PML_JIT_JITRUNTIME_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mpl {
namespace jit {

/// Whether this build can emit and run native code at all (x86-64 with an
/// mmap/mprotect POSIX surface). On other targets every publish fails and
/// jit::enabled() is pinned false.
#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define MPL_JIT_SUPPORTED 1
#else
#define MPL_JIT_SUPPORTED 0
#endif

class CodePool {
public:
  CodePool() = default;
  ~CodePool();

  CodePool(const CodePool &) = delete;
  CodePool &operator=(const CodePool &) = delete;

  /// Maps \p Size bytes RW, copies \p Code in, flips the mapping to RX and
  /// returns the executable base. Returns null on mapping failure (the
  /// caller treats the function as uncompilable). Thread-safe.
  const uint8_t *publish(const uint8_t *Code, size_t Size);

  /// Total bytes currently mapped executable (page-rounded).
  size_t mappedBytes() const;

  /// Number of live published mappings.
  size_t blockCount() const;

private:
  mutable std::mutex Mu;
  std::vector<std::pair<void *, size_t>> Blocks;
};

} // namespace jit
} // namespace mpl

#endif // MPL_PML_JIT_JITRUNTIME_H
