//===- pml/jit/Jit.h - Tiered template JIT for the pml VM ------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiered x86-64 template JIT for hot pml functions (DESIGN.md §17).
/// Execution starts in the interpreter; every frame push counts the callee,
/// and once a function's call count crosses the tier threshold the
/// dispatcher compiles it — one native template per bytecode op, stitched
/// together with the interpreter's exact semantics:
///
///  - tagged-integer arithmetic, comparisons, jumps, locals and array
///    indexing run inline;
///  - the entanglement *fast paths* run inline too: the read barrier's
///    depth-guided heap-ancestry walk and the write barrier's same-heap/
///    unpinned test are emitted into the template, and only their slow
///    paths tail into the existing em:: machinery — so all three barrier
///    modes (Off/Detect/Manage) behave bit-identically to the interpreter,
///    counters included;
///  - anything that allocates, traps, switches frames or performs effects
///    calls an out-of-line helper (jit::VmJit, implemented next to the
///    interpreter in Vm.cpp) that runs the interpreter's own code on the
///    synced VM state.
///
/// The design is deopt-free at function granularity: a compiled function
/// has a native entry for *every* bytecode ip (templates are self-contained
/// at op boundaries), so the dispatcher can enter at any resume point and
/// any exit simply falls back to the dispatcher with the VM state
/// consistent. Functions that fail to compile are marked and stay
/// interpreted forever; there is no on-stack replacement and no state
/// reconstruction.
///
/// Safety invariants the templates maintain:
///  - vm->Sp is synced before every helper call and reloaded after, so a
///    collection triggered by an allocating helper sees the rooted value
///    stack exactly as the interpreter would;
///  - no Slot value is cached in a register across an allocating helper;
///  - exceptions (Detect-mode EntanglementError, deadline expiry, OOM)
///    never unwind through a native frame: helpers catch into
///    Vm::PendingExc and the dispatcher rethrows from its own C++ frame;
///  - a per-function poll countdown (one dec per op, same 256 cadence as
///    the interpreter) keeps deadline checks and trap exits timely in
///    allocation-free loops.
///
/// Gating: MPL_JIT=1 arms the tier (default off), MPL_JIT_THRESHOLD sets
/// the call count that triggers compilation (default 64, min 1). Tests and
/// benches use setEnabled()/setCompileThreshold(). Under ThreadSanitizer
/// the JIT is force-disabled with a one-line notice: generated code is
/// uninstrumented, so tsan would report false races against instrumented
/// accesses. Span-armed runs (obs::spansEnabled) pin execution to the
/// interpreter so pml source-line attribution stays exact.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_PML_JIT_JIT_H
#define MPL_PML_JIT_JIT_H

#include "pml/jit/JitRuntime.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mpl {

class Heap;

namespace pml {
class Vm;
struct Program;
} // namespace pml

namespace jit {

/// Helper status protocol: a native template calls a VmJit helper with
/// vm->Sp synced; StOk means "reload Sp and continue in native code",
/// anything else means "exit to the dispatcher" (frame switch, trap, or a
/// pending exception).
constexpr uint64_t StOk = 0;
constexpr uint64_t StExit = 1;

/// One compiled function: immutable RX code plus the per-bytecode-ip entry
/// table that makes every resume point enterable.
struct CompiledFn {
  const uint8_t *Code = nullptr; ///< Prologue entry (owned by the CodePool).
  size_t CodeSize = 0;
  std::vector<uint32_t> NativeOff; ///< NativeOff[ip] = template offset.

  /// Runs the function: the prologue loads the VM registers and jumps to
  /// the template for \p Ip. Returns when the code exits to the dispatcher.
  uint64_t invoke(pml::Vm *V, size_t Ip, Heap *CurHeap, uint64_t Base) const {
    using Entry = uint64_t (*)(pml::Vm *, const void *, Heap *, uint64_t);
    Entry E = reinterpret_cast<Entry>(reinterpret_cast<uintptr_t>(Code));
    return E(V, Code + NativeOff[Ip], CurHeap, Base);
  }
};

/// Tier state of one function. Phase moves Cold -> Compiling -> Compiled
/// (or Cold -> Compiling -> NoCompile when emission/publish fails); the
/// compile claim is a CAS so exactly one strand compiles while the rest
/// keep interpreting.
enum : uint32_t {
  PhaseCold = 0,
  PhaseCompiling = 1,
  PhaseCompiled = 2,
  PhaseNoCompile = 3,
};

struct FnState {
  std::atomic<uint64_t> Calls{0};
  std::atomic<uint32_t> Phase{PhaseCold};
  std::atomic<CompiledFn *> Fn{nullptr};
};

/// Per-Program JIT state, shared by the root Vm and every ParCall sub-VM
/// (they all hold the same Program). Created by the root Vm before any
/// parallelism exists; the FnState array is fixed-size so concurrent
/// strands index it without locks.
class ProgramJit {
public:
  explicit ProgramJit(size_t NumFns);
  ~ProgramJit();

  ProgramJit(const ProgramJit &) = delete;
  ProgramJit &operator=(const ProgramJit &) = delete;

  FnState &fn(size_t Idx) { return Fns[Idx]; }
  size_t numFns() const { return N; }

  /// Interpreter-side tier accounting: one relaxed add per frame push /
  /// tail call.
  void countCall(int FnIdx) {
    Fns[static_cast<size_t>(FnIdx)].Calls.fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Number of functions currently in PhaseCompiled (tier-determinism
  /// checks in the fuzz/property suites).
  size_t compiledCount() const;

  /// The executable pages backing this program's compiled functions.
  CodePool Pool;

  /// Call count that triggers compilation; latched from the process-wide
  /// threshold when the ProgramJit is created.
  uint64_t Threshold;

private:
  std::unique_ptr<FnState[]> Fns;
  size_t N;
  std::mutex CompiledMu;
  std::vector<std::unique_ptr<CompiledFn>> Owned;

  friend const CompiledFn *hotOrCompile(ProgramJit &, const pml::Program &,
                                        int);
};

/// Process-wide gates. enabled() reads MPL_JIT on first use; programmatic
/// setEnabled overrides it (tests, benches). Always false under tsan and
/// on non-x86-64 builds.
bool enabled();
void setEnabled(bool On);

/// True when this build force-disables the JIT under ThreadSanitizer.
bool tsanForcedOff();

/// Compile trigger threshold (MPL_JIT_THRESHOLD, default 64, min 1).
uint64_t compileThreshold();
void setCompileThreshold(uint64_t T);

/// Creates the shared per-program JIT state; null when the JIT is off.
std::shared_ptr<ProgramJit> createProgramJit(const pml::Program &P);

/// Dispatcher-side tier check: returns the compiled code for \p FnIdx when
/// it is (or just became) hot and compiled, null when the function should
/// keep interpreting. Claims and performs compilation when the threshold
/// is crossed; emits the pml.jit.* stats, the jit_compile trace event and
/// the chaos JitPublish point.
const CompiledFn *hotOrCompile(ProgramJit &PJ, const pml::Program &P,
                               int FnIdx);

/// Stats hook for one dispatcher entry into native code (pml.jit.entries).
void noteEntry();

/// The out-of-line helpers native code calls, plus the Vm field offsets the
/// templates bake in. Implemented in Vm.cpp (a friend of pml::Vm), so each
/// helper body is literally the interpreter's own code for that opcode.
/// All helpers return StOk / StExit per the protocol above and never let
/// an exception escape (they catch into Vm::PendingExc).
struct VmJit {
  static size_t spOffset();
  static size_t stackBaseOffset();
  static size_t stackCap();

  // Continue helpers (StOk unless a trap/exception occurred).
  static uint64_t opPushStr(pml::Vm *V, uint64_t StrIdx) noexcept;
  static uint64_t opMkClosure(pml::Vm *V, uint64_t FnIdx,
                              uint64_t NumCaps) noexcept;
  static uint64_t opFixSelf(pml::Vm *V, uint64_t CapIdx) noexcept;
  static uint64_t opMkPair(pml::Vm *V) noexcept;
  static uint64_t opMkRef(pml::Vm *V) noexcept;
  static uint64_t opAlloc(pml::Vm *V) noexcept;
  static uint64_t opParCall(pml::Vm *V) noexcept;
  static uint64_t opPrint(pml::Vm *V) noexcept;
  static uint64_t opPrintInt(pml::Vm *V) noexcept;
  static uint64_t opEqSlow(pml::Vm *V, uint64_t Negate) noexcept;
  static uint64_t opReadBarrier(pml::Vm *V, uint64_t Val,
                                uint64_t Reader) noexcept;
  static uint64_t opWriteBarrier(pml::Vm *V, uint64_t Holder,
                                 uint64_t Val) noexcept;
  static uint64_t poll(pml::Vm *V) noexcept;

  // Exit helpers (always StExit; the dispatcher re-dispatches).
  static uint64_t opCall(pml::Vm *V, uint64_t IpAfter) noexcept;
  static uint64_t opTailCall(pml::Vm *V) noexcept;
  static uint64_t opRet(pml::Vm *V) noexcept;
  static uint64_t opHandle(pml::Vm *V, uint64_t IpAfter, uint64_t TableIdx,
                           uint64_t NumArms) noexcept;
  static uint64_t opSuspend(pml::Vm *V, uint64_t IpAfter,
                            uint64_t EffectId) noexcept;
  static uint64_t opResume(pml::Vm *V, uint64_t IpAfter) noexcept;
  static uint64_t opTrap(pml::Vm *V, uint64_t Code) noexcept;
};

/// Inline-trap codes (opTrap), matching the interpreter's messages.
enum : uint32_t {
  TrapDivZero = 0,
  TrapOob = 1,
  TrapMatchFail = 2,
  TrapStackOverflow = 3,
};

} // namespace jit
} // namespace mpl

#endif // MPL_PML_JIT_JIT_H
