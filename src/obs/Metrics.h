//===- obs/Metrics.h - Cost-metric time-series sampler ---------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a background thread that
/// periodically snapshots the paper's cost metrics into an in-memory time
/// series. Each sample carries:
///
///  - the full em::CounterSnapshot (entangled reads, pins by kind,
///    cumulative and *live* pinned bytes/objects — the paper's space cost);
///  - every registered gauge. Gauges are callbacks the layers above
///    register (obs depends only on support, so it cannot reach into the
///    scheduler or the chunk pool itself): the scheduler registers one
///    deque-depth gauge per worker, the runtime registers chunk-pool
///    residency and heap count;
///  - a live-heap-tree summary (live heap count + deepest live depth)
///    parsed from obs::snapshotHeapTree(), so the series shows the heap
///    hierarchy growing and collapsing across forks and joins.
///
/// Exported as a JSON document ({"samples": [...], "histograms": [...]})
/// or CSV (one row per sample, union of gauge columns). Gated by
/// MPL_METRICS=<path> (+ MPL_METRICS_INTERVAL_US, default 1000); tests and
/// benches drive sampleOnce()/start() directly.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_OBS_METRICS_H
#define MPL_OBS_METRICS_H

#include "support/EmCounters.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mpl {
namespace obs {

/// One point of the cost-metric time series.
struct MetricsSample {
  int64_t TimeNs = 0;           ///< Steady-clock timestamp.
  em::CounterSnapshot Em;       ///< All entanglement cost counters.
  /// Registered gauges, sampled in registration order.
  std::vector<std::pair<std::string, int64_t>> Gauges;
  /// Live-heap-tree summary at the sample instant, parsed from
  /// obs::snapshotHeapTree(): how many heaps are live and the deepest
  /// live depth (0 / -1 when no runtime is alive).
  int64_t LiveHeaps = 0;
  int64_t MaxHeapDepth = -1;
  /// Live heaps per depth: DepthHist[d] heaps at depth d (empty when no
  /// runtime is alive). Sums to LiveHeaps; shows the *shape* of the task
  /// tree over time, not just its height — a wide fork fan-out and one
  /// deep spine have the same MaxHeapDepth but very different histograms.
  std::vector<int64_t> DepthHist;
  /// Cumulative finished tasks per heap depth, snapshotted from the span
  /// ledger (SpanLedger::taskDepthHistogram). Where DepthHist is the live
  /// tree *shape* at the sample instant, this is the *throughput* by depth:
  /// per-sample deltas show which tree levels completed work in the
  /// interval. Empty until the span ledger has been armed.
  std::vector<int64_t> TaskDepthHist;
};

/// Process-wide sampler. Start()/stop() manage the background thread;
/// sampleOnce() records a point synchronously (used by the thread, tests,
/// and end-of-run flushes).
class MetricsSampler {
public:
  static MetricsSampler &get();

  /// Registers a named gauge; returns an id for unregisterGauge. The
  /// callback runs on the sampler thread and must be safe for the object's
  /// lifetime — unregister before destroying what it reads (unregister
  /// blocks out a concurrent sample).
  int registerGauge(std::string Name, std::function<int64_t()> Fn);
  void unregisterGauge(int Id);

  /// Starts the background thread sampling every \p IntervalUs. \p Path is
  /// remembered for env-driven flushes ("" = explicit writes only).
  /// No-op when already running (the path/interval are kept).
  void start(int64_t IntervalUs, std::string Path = "");

  /// Stops and joins the background thread (idempotent).
  void stop();

  bool running() const;

  /// Takes one sample now and appends it to the series.
  MetricsSample sampleOnce();

  /// Runs every registered gauge callback once and returns the (name,
  /// value) pairs, without appending to the series — the exposition
  /// renderer's read path (obs/Exposition.cpp).
  std::vector<std::pair<std::string, int64_t>> gaugeSnapshot() const;

  /// Copy of the series so far.
  std::vector<MetricsSample> series() const;
  size_t sampleCount() const;
  void clearSeries();

  /// Writers. writeAuto dispatches on the extension (.csv → CSV, else
  /// JSON). All return false on I/O failure.
  bool writeJson(const std::string &Path) const;
  bool writeCsv(const std::string &Path) const;
  bool writeAuto(const std::string &Path) const;

  /// The whole series (plus every support/Histogram) as a JSON document.
  std::string jsonDump() const;

  const std::string &configuredPath() const { return Path; }

private:
  void threadMain(int64_t IntervalUs);
  MetricsSample recordSampleLocked();

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::vector<MetricsSample> Series;
  struct Gauge {
    int Id;
    std::string Name;
    std::function<int64_t()> Fn;
  };
  std::vector<Gauge> Gauges;
  int NextGaugeId = 1;
  std::thread Thread;
  bool Running = false;
  bool StopRequested = false;
  std::string Path;
};

} // namespace obs
} // namespace mpl

#endif // MPL_OBS_METRICS_H
