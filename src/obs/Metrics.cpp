//===- obs/Metrics.cpp - Cost-metric time-series sampler ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Exposition.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace mpl;
using namespace mpl::obs;

MetricsSampler &MetricsSampler::get() {
  static MetricsSampler Instance;
  return Instance;
}

int MetricsSampler::registerGauge(std::string Name,
                                  std::function<int64_t()> Fn) {
  std::lock_guard<std::mutex> G(Mu);
  int Id = NextGaugeId++;
  Gauges.push_back(Gauge{Id, std::move(Name), std::move(Fn)});
  return Id;
}

void MetricsSampler::unregisterGauge(int Id) {
  // Taking Mu also excludes an in-flight sample: after this returns the
  // callback will never run again, so its captures may be destroyed.
  std::lock_guard<std::mutex> G(Mu);
  Gauges.erase(std::remove_if(Gauges.begin(), Gauges.end(),
                              [Id](const Gauge &Ga) { return Ga.Id == Id; }),
               Gauges.end());
}

void MetricsSampler::start(int64_t IntervalUs, std::string P) {
  std::lock_guard<std::mutex> G(Mu);
  if (!P.empty())
    Path = std::move(P);
  if (Running)
    return;
  Running = true;
  StopRequested = false;
  Thread = std::thread([this, IntervalUs] { threadMain(IntervalUs); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> G(Mu);
    if (!Running)
      return;
    StopRequested = true;
  }
  Cv.notify_all();
  Thread.join();
  std::lock_guard<std::mutex> G(Mu);
  Running = false;
}

bool MetricsSampler::running() const {
  std::lock_guard<std::mutex> G(Mu);
  return Running;
}

void MetricsSampler::threadMain(int64_t IntervalUs) {
  std::unique_lock<std::mutex> L(Mu);
  while (!StopRequested) {
    Cv.wait_for(L, std::chrono::microseconds(IntervalUs),
                [this] { return StopRequested; });
    if (StopRequested)
      break;
    recordSampleLocked();
    // Service a pending MPL_STATS_DUMP request outside Mu: the exposition
    // renderer re-enters gaugeSnapshot(), which takes Mu.
    L.unlock();
    serviceStatsDump();
    L.lock();
  }
}

MetricsSample MetricsSampler::sampleOnce() {
  std::lock_guard<std::mutex> G(Mu);
  return recordSampleLocked();
}

std::vector<std::pair<std::string, int64_t>>
MetricsSampler::gaugeSnapshot() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<std::pair<std::string, int64_t>> Out;
  Out.reserve(Gauges.size());
  for (const Gauge &Ga : Gauges)
    Out.emplace_back(Ga.Name, Ga.Fn());
  return Out;
}

MetricsSample MetricsSampler::recordSampleLocked() {
  MetricsSample S;
  S.TimeNs = nowNs();
  S.Em = em::Counts.snapshot();
  S.Gauges.reserve(Gauges.size() + 1);
  for (const Gauge &Ga : Gauges)
    S.Gauges.emplace_back(Ga.Name, Ga.Fn());
  // Trace-ring overflow is a first-class health signal: a sample series
  // with rising drops means the capture window was too small for the
  // workload (tools/trace_check fails on it unless --allow-drops).
  // Tracer::Mu nests under Mu here; the tracer never takes Mu.
  S.Gauges.emplace_back("obs.trace.dropped",
                        static_cast<int64_t>(Tracer::get().totalDropped()));
  // Heap-tree summary: the walk is gauge loads only; keeping just the
  // parsed summary keeps per-sample storage flat. HeapTreeMu nests under
  // Mu here and nowhere takes Mu, so the order is acyclic.
  json::Value Tree;
  std::string Err;
  if (json::parse(snapshotHeapTree(), Tree, Err)) {
    if (const json::Value *Live = Tree.field("live_heaps"))
      S.LiveHeaps = static_cast<int64_t>(Live->NumV);
    if (const json::Value *Heaps = Tree.field("heaps"))
      if (Heaps->isArray())
        for (const json::Value &H : Heaps->Items)
          if (const json::Value *D = H.field("depth")) {
            int64_t Depth = static_cast<int64_t>(D->NumV);
            S.MaxHeapDepth = std::max(S.MaxHeapDepth, Depth);
            if (Depth >= 0) {
              if (S.DepthHist.size() <= static_cast<size_t>(Depth))
                S.DepthHist.resize(static_cast<size_t>(Depth) + 1, 0);
              ++S.DepthHist[static_cast<size_t>(Depth)];
            }
          }
  }
  // Task-depth throughput from the span ledger (atomic loads only; no lock
  // ordering concern — the ledger's Mu is never involved).
  S.TaskDepthHist = SpanLedger::taskDepthHistogram();
  Series.push_back(S);
  return S;
}

std::vector<MetricsSample> MetricsSampler::series() const {
  std::lock_guard<std::mutex> G(Mu);
  return Series;
}

size_t MetricsSampler::sampleCount() const {
  std::lock_guard<std::mutex> G(Mu);
  return Series.size();
}

void MetricsSampler::clearSeries() {
  std::lock_guard<std::mutex> G(Mu);
  Series.clear();
}

namespace {

void appendEmJson(std::string &Out, const em::CounterSnapshot &E) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"entangled_reads\":%lld,\"entangled_reads_unpinned\":%lld,"
      "\"pins_down\":%lld,\"pins_cross\":%lld,\"pins_holder\":%lld,"
      "\"pinned_objects\":%lld,\"pinned_bytes\":%lld,"
      "\"unpinned_objects\":%lld,\"unpinned_bytes\":%lld,"
      "\"live_pinned_objects\":%lld,\"live_pinned_bytes\":%lld,"
      "\"cont_captured\":%lld,\"cont_resumed\":%lld}",
      static_cast<long long>(E.EntangledReads),
      static_cast<long long>(E.EntangledReadsUnpinned),
      static_cast<long long>(E.DownPointerPins),
      static_cast<long long>(E.CrossPointerPins),
      static_cast<long long>(E.PinnedHolderPins),
      static_cast<long long>(E.PinnedObjects),
      static_cast<long long>(E.PinnedBytes),
      static_cast<long long>(E.UnpinnedObjects),
      static_cast<long long>(E.UnpinnedBytes),
      static_cast<long long>(E.livePinnedObjects()),
      static_cast<long long>(E.livePinnedBytes()),
      static_cast<long long>(E.ContCaptured),
      static_cast<long long>(E.ContResumed));
  Out += Buf;
}

const char *const EmCsvColumns =
    "entangled_reads,entangled_reads_unpinned,pins_down,pins_cross,"
    "pins_holder,pinned_objects,pinned_bytes,unpinned_objects,"
    "unpinned_bytes,live_pinned_objects,live_pinned_bytes,"
    "cont_captured,cont_resumed";

void appendEmCsv(std::string &Out, const em::CounterSnapshot &E) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,"
                "%lld,%lld",
                static_cast<long long>(E.EntangledReads),
                static_cast<long long>(E.EntangledReadsUnpinned),
                static_cast<long long>(E.DownPointerPins),
                static_cast<long long>(E.CrossPointerPins),
                static_cast<long long>(E.PinnedHolderPins),
                static_cast<long long>(E.PinnedObjects),
                static_cast<long long>(E.PinnedBytes),
                static_cast<long long>(E.UnpinnedObjects),
                static_cast<long long>(E.UnpinnedBytes),
                static_cast<long long>(E.livePinnedObjects()),
                static_cast<long long>(E.livePinnedBytes()),
                static_cast<long long>(E.ContCaptured),
                static_cast<long long>(E.ContResumed));
  Out += Buf;
}

bool writeFile(const std::string &Path, const std::string &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  return Written == Data.size();
}

} // namespace

std::string MetricsSampler::jsonDump() const {
  std::vector<MetricsSample> Snap = series();
  std::string Out;
  Out.reserve(256 + Snap.size() * 256);
  char Buf[128];
  Out += "{\"samples\":[\n";
  bool First = true;
  for (const MetricsSample &S : Snap) {
    if (!First)
      Out += ",\n";
    First = false;
    std::snprintf(Buf, sizeof(Buf), "{\"t_ns\":%lld,\"em\":",
                  static_cast<long long>(S.TimeNs));
    Out += Buf;
    appendEmJson(Out, S.Em);
    Out += ",\"gauges\":{";
    bool FirstG = true;
    for (const auto &[Name, V] : S.Gauges) {
      if (!FirstG)
        Out += ",";
      FirstG = false;
      Out += "\"" + json::escape(Name) + "\":";
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
      Out += Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "},\"heaps\":{\"live\":%lld,\"max_depth\":%lld,"
                  "\"depth_hist\":[",
                  static_cast<long long>(S.LiveHeaps),
                  static_cast<long long>(S.MaxHeapDepth));
    Out += Buf;
    for (size_t D = 0; D < S.DepthHist.size(); ++D) {
      if (D)
        Out += ",";
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(S.DepthHist[D]));
      Out += Buf;
    }
    Out += "],\"task_depth_hist\":[";
    for (size_t D = 0; D < S.TaskDepthHist.size(); ++D) {
      if (D)
        Out += ",";
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(S.TaskDepthHist[D]));
      Out += Buf;
    }
    Out += "]}}";
  }
  Out += "\n],\"histograms\":[\n";
  bool FirstH = true;
  HistogramRegistry::get().forEach([&](const Histogram &H) {
    if (!FirstH)
      Out += ",\n";
    FirstH = false;
    Out += "{\"name\":\"" + json::escape(H.name()) + "\",";
    Histogram::Percentiles Pct = H.percentiles();
    std::snprintf(Buf, sizeof(Buf),
                  "\"count\":%lld,\"sum\":%lld,"
                  "\"p50\":%lld,\"p95\":%lld,\"p99\":%lld,\"p999\":%lld,",
                  static_cast<long long>(H.count()),
                  static_cast<long long>(H.sum()),
                  static_cast<long long>(Pct.P50),
                  static_cast<long long>(Pct.P95),
                  static_cast<long long>(Pct.P99),
                  static_cast<long long>(Pct.P999));
    Out += Buf;
    Out += "\"buckets\":[";
    bool FirstB = true;
    for (int B = 0; B < Histogram::NumBuckets; ++B) {
      int64_t C = H.bucketCount(B);
      if (C == 0)
        continue;
      if (!FirstB)
        Out += ",";
      FirstB = false;
      std::snprintf(Buf, sizeof(Buf), "{\"lo\":%lld,\"n\":%lld}",
                    static_cast<long long>(Histogram::bucketLo(B)),
                    static_cast<long long>(C));
      Out += Buf;
    }
    Out += "]}";
  });
  // A final live-heap-tree snapshot (empty when no runtime is alive); the
  // sampler thread may also take these mid-run via obs::snapshotHeapTree.
  Out += "\n],\"heap_tree\":";
  Out += snapshotHeapTree();
  Out += "}\n";
  return Out;
}

bool MetricsSampler::writeJson(const std::string &P) const {
  return writeFile(P, jsonDump());
}

bool MetricsSampler::writeCsv(const std::string &P) const {
  std::vector<MetricsSample> Snap = series();

  // Union of gauge columns, in first-seen order (the gauge set can change
  // mid-run as runtimes come and go).
  std::vector<std::string> GaugeCols;
  for (const MetricsSample &S : Snap)
    for (const auto &[Name, V] : S.Gauges)
      if (std::find(GaugeCols.begin(), GaugeCols.end(), Name) ==
          GaugeCols.end())
        GaugeCols.push_back(Name);

  // Depth-histogram columns: one per depth seen anywhere in the series
  // (short samples pad with zeros), mirroring the gauge-union policy.
  size_t DepthCols = 0;
  size_t TaskDepthCols = 0;
  for (const MetricsSample &S : Snap) {
    DepthCols = std::max(DepthCols, S.DepthHist.size());
    TaskDepthCols = std::max(TaskDepthCols, S.TaskDepthHist.size());
  }

  std::string Out = "t_ns,";
  Out += EmCsvColumns;
  Out += ",live_heaps,max_heap_depth";
  for (size_t D = 0; D < DepthCols; ++D)
    Out += ",heaps_d" + std::to_string(D);
  for (size_t D = 0; D < TaskDepthCols; ++D)
    Out += ",tasks_d" + std::to_string(D);
  for (const std::string &C : GaugeCols)
    Out += "," + C;
  Out += "\n";
  char Buf[64];
  for (const MetricsSample &S : Snap) {
    std::snprintf(Buf, sizeof(Buf), "%lld,", static_cast<long long>(S.TimeNs));
    Out += Buf;
    appendEmCsv(Out, S.Em);
    std::snprintf(Buf, sizeof(Buf), ",%lld,%lld",
                  static_cast<long long>(S.LiveHeaps),
                  static_cast<long long>(S.MaxHeapDepth));
    Out += Buf;
    for (size_t D = 0; D < DepthCols; ++D) {
      int64_t N = D < S.DepthHist.size() ? S.DepthHist[D] : 0;
      std::snprintf(Buf, sizeof(Buf), ",%lld", static_cast<long long>(N));
      Out += Buf;
    }
    for (size_t D = 0; D < TaskDepthCols; ++D) {
      int64_t N = D < S.TaskDepthHist.size() ? S.TaskDepthHist[D] : 0;
      std::snprintf(Buf, sizeof(Buf), ",%lld", static_cast<long long>(N));
      Out += Buf;
    }
    for (const std::string &C : GaugeCols) {
      Out += ",";
      for (const auto &[Name, V] : S.Gauges)
        if (Name == C) {
          std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
          Out += Buf;
          break;
        }
    }
    Out += "\n";
  }

  // Histogram summary block (blank-line separated so the time-series part
  // stays directly loadable); same percentile semantics as the JSON dump.
  Out += "\nhistogram,count,sum,p50,p95,p99,p999\n";
  HistogramRegistry::get().forEach([&](const Histogram &H) {
    int64_t N = H.count();
    if (N == 0)
      return;
    Histogram::Percentiles Pct = H.percentiles();
    char HBuf[256];
    std::snprintf(HBuf, sizeof(HBuf), "%s,%lld,%lld,%lld,%lld,%lld,%lld\n",
                  H.name(), static_cast<long long>(N),
                  static_cast<long long>(H.sum()),
                  static_cast<long long>(Pct.P50),
                  static_cast<long long>(Pct.P95),
                  static_cast<long long>(Pct.P99),
                  static_cast<long long>(Pct.P999));
    Out += HBuf;
  });
  return writeFile(P, Out);
}

bool MetricsSampler::writeAuto(const std::string &P) const {
  if (P.size() >= 4 && P.compare(P.size() - 4, 4, ".csv") == 0)
    return writeCsv(P);
  return writeJson(P);
}
