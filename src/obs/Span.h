//===- obs/Span.h - Causal span ledger for the fork-join DAG ---*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The causal layer of the observability stack. The scheduler's embedded
/// work-span profiler reduces a run to two scalars (W and S); the tracer
/// records *when* things happened but not *why*. This ledger records every
/// fork-join task as one 48-byte record — id, parent id, start/stop, self
/// (strand) time, heap depth, em-event counts, and the pml source location
/// of the `par` that spawned it — so at quiescence the full fork-join DAG
/// can be rebuilt, the critical path extracted, and hot pml source lines
/// named.
///
/// Design constraints mirror the tracer's (obs/Trace.h):
///
///  1. Disabled cost ~ zero: every hook is a relaxed atomic load and a
///     predictable not-taken branch. No state is touched until the ledger
///     is enabled (MPL_SPANS, or SpanLedger::enable()).
///  2. Armed cost is bounded: the live task state is a stack-allocated POD
///     in the scheduler frame that runs the task; finishing a task appends
///     one record to the executing thread's shard (single producer, no
///     lock). Self time reuses the exact strand-clock quanta the scheduler
///     already measures, so the ledger's critical path is *computed from
///     the same numbers* as the scheduler's S — the two are a consistency
///     oracle for each other (DESIGN.md §14).
///  3. Merge and analysis happen at quiescence, in runEnd(): shards are
///     merged into a DAG keyed by task id, CP(T) = Self(T) + Σ over fork
///     pairs max(CP(a), CP(b)) is computed iteratively, the winner tree is
///     marked, and a RunSummary (JSON-exportable as "mpl-spans/1") is
///     stored for tools/mpl_spans, the REPL's :spans command, and the
///     bench tables' critical-path-fraction column.
///
/// Task ids come from one global counter, allocated in consecutive pairs
/// at each fork (A = n, B = n+1); children of a parent sorted by id thus
/// reconstruct the fork pairs without storing per-fork edges. The stolen
/// flag is derived at merge time: a task was stolen iff it executed on a
/// different worker than its parent (the scheduler never steals from the
/// local deque).
///
//===----------------------------------------------------------------------===//

#ifndef MPL_OBS_SPAN_H
#define MPL_OBS_SPAN_H

#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mpl {
namespace obs {

/// One finished task, as stored in the per-thread shard. 48 bytes so a
/// million-task run costs 48 MB at worst and appends stay cache-friendly.
struct SpanRecord {
  uint64_t Id;        ///< Global task id (pairs at forks: A=n, B=n+1).
  uint64_t Parent;    ///< Parent task id; ~0 for the root task.
  int64_t StartNs;    ///< nowNs() at task begin.
  int64_t StopNs;     ///< nowNs() at task end.
  int64_t SelfNs;     ///< Strand time inside this task, children excluded.
  uint16_t EmReads;   ///< Entangled reads in this task (saturating).
  uint16_t Pins;      ///< Pins created by this task (saturating).
  uint16_t SrcLine;   ///< pml line of the spawning `par` (0 = none).
  uint8_t SrcCol;     ///< pml column of the spawning `par`.
  uint8_t HeapDepth;  ///< Depth of the task's heap (saturating at 255).
};
static_assert(sizeof(SpanRecord) == 48, "span record layout changed");

/// Live state of the task the current thread is executing. Stack-allocated
/// by the scheduler in the frame that runs the task; a TLS pointer tracks
/// the innermost one (helping joins nest tasks on one thread).
struct SpanTask {
  uint64_t Id = 0;
  uint64_t Parent = ~uint64_t(0);
  int64_t StartNs = 0;
  int64_t SelfNs = 0;
  uint32_t EmReads = 0;
  uint32_t Pins = 0;
  uint32_t Loc = 0; ///< Packed (Line << 8) | Col of the spawning `par`.
  uint32_t HeapDepth = 0;
};

/// Per-source-line aggregate in a run summary. EmReads/Pins count barrier
/// events attributed to the *instruction* location current when the event
/// fired (more precise than the task's fork location); SelfNs/CpSelfNs/
/// Tasks aggregate tasks whose spawning `par` sits on this line.
struct SpanLineStat {
  int64_t EmReads = 0;
  int64_t Pins = 0;
  int64_t SelfNs = 0;
  int64_t CpSelfNs = 0;
  int64_t Tasks = 0;
};

/// One merged task in a run summary, with the derived fields resolved.
struct SpanTaskOut {
  uint64_t Id = 0;
  uint64_t Parent = ~uint64_t(0);
  int64_t StartNs = 0; ///< Relative to run begin.
  int64_t StopNs = 0;
  int64_t SelfNs = 0;
  int Worker = 0;
  bool Stolen = false;
  bool OnCriticalPath = false;
  uint16_t EmReads = 0;
  uint16_t Pins = 0;
  uint16_t SrcLine = 0;
  uint8_t SrcCol = 0;
  uint8_t HeapDepth = 0;
};

/// The merged, analyzed result of one run. Valid until the next runBegin().
struct SpanRunSummary {
  bool Valid = false;
  int64_t Tasks = 0;
  int64_t Stolen = 0;
  int64_t Dropped = 0; ///< Records lost to the per-shard cap; CP skipped.
  double SchedWorkSec = 0;  ///< Scheduler's W for the same run.
  double SchedSpanSec = 0;  ///< Scheduler's S — the consistency oracle.
  double LedgerWorkSec = 0; ///< Σ Self over all tasks.
  double CriticalPathSec = 0;
  int64_t EmReads = 0;
  int64_t PinEvents = 0;

  /// All tasks, sorted by start time. Root first by construction.
  std::vector<SpanTaskOut> AllTasks;

  /// Ids of on-critical-path tasks, in start-time order (root first).
  std::vector<uint64_t> CriticalPath;

  /// Per-line aggregates, keyed by packed (Line << 8) | Col.
  std::vector<std::pair<uint32_t, SpanLineStat>> Lines;

  /// Ledger CP vs scheduler S, in percent (positive = ledger longer).
  /// Meaningless when !Valid or SchedSpanSec == 0.
  double agreementPct() const {
    if (SchedSpanSec <= 0)
      return 0;
    return 100.0 * (CriticalPathSec - SchedSpanSec) / SchedSpanSec;
  }

  /// "mpl-spans/1" JSON document (tools/mpl_spans input).
  std::string toJson() const;

  /// Short human-readable rendering (pml_repl :spans).
  std::string summaryText() const;
};

/// Process-wide ledger: owns every thread's shard and the last run's
/// merged summary.
class SpanLedger {
public:
  static SpanLedger &get();

  /// Arms the hooks. Unlike the tracer there are no options: capacity is
  /// fixed (records are never overwritten, only capped + counted).
  void enable();
  void disable();
  bool enabled() const;

  /// Clears all shards and resets the id counter. Called by the scheduler
  /// at the start of an armed run (quiescent workers only).
  void runBegin();

  /// Merges shards, rebuilds the DAG, extracts the critical path and
  /// stores the summary. \p WorkSec / \p SpanSec are the scheduler's W/S
  /// for the same run. Producers must be quiescent.
  void runEnd(double WorkSec, double SpanSec);

  /// The last runEnd() summary (Valid == false before the first run).
  SpanRunSummary lastRun() const;

  /// Env-driven flush target (MPL_SPANS=<path>); "" = none.
  void setConfiguredPath(const std::string &P);
  std::string configuredPath() const;

  /// Names the calling thread's shard after scheduler worker \p Id.
  void labelThread(int Id);

  /// Internal: append one finished task on the calling thread's shard.
  void append(const SpanRecord &R);

  /// Cumulative finished-task counts per heap depth since process start
  /// (depth >= TaskDepthBuckets-1 folds into the last bucket). Monotone,
  /// never reset by runBegin: the metrics sampler snapshots it per sample,
  /// so deltas between samples show *where in the tree* work is landing
  /// over time. All-zero while the ledger has never been armed.
  static constexpr int TaskDepthBuckets = 32;
  static std::vector<int64_t> taskDepthHistogram();

  /// Internal: attribute one barrier event to packed source loc \p Loc.
  void noteLineEvent(uint32_t Loc, bool Pin);

  /// Start-of-run timestamp (exported times are relative to it).
  int64_t runBaseNs() const { return RunBaseNs.load(std::memory_order_relaxed); }

private:
  struct Shard {
    int WorkerId = -1;
    std::vector<SpanRecord> Recs;
    std::unordered_map<uint32_t, SpanLineStat> LineEv;
    uint64_t Dropped = 0;
    std::atomic<bool> Retired{false};
  };

  Shard *threadShard();

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Shard>> Shards;
  SpanRunSummary LastRun;
  std::string Path;
  std::atomic<int64_t> RunBaseNs{0};
  int NextForeignWorker = 1000;
};

namespace detail {
extern std::atomic<uint32_t> SpanActiveFlag;
extern std::atomic<uint64_t> NextSpanId;
extern thread_local SpanTask *CurSpanTask;
extern thread_local uint32_t CurPmlLoc;
void finishTask(const SpanTask &T, int64_t StopNs);
} // namespace detail

/// The single branch-predictable check every hook compiles to.
inline bool spansEnabled() {
  return detail::SpanActiveFlag.load(std::memory_order_relaxed) != 0;
}

/// Packs a pml source location the way the ledger stores it. Matches the
/// pml compiler's source-map encoding (pml/Compiler.h, packSrcLoc).
inline uint32_t spanPackLoc(uint32_t Line, uint32_t Col) {
  return (std::min<uint32_t>(Line, 0xffff) << 8) | std::min<uint32_t>(Col, 0xff);
}

/// Allocates \p N consecutive task ids; returns the first. Forks allocate
/// pairs (A = n, B = n+1) so the merge can reconstruct fork edges.
inline uint64_t spanAllocIds(uint32_t N) {
  return detail::NextSpanId.fetch_add(N, std::memory_order_relaxed);
}

/// Id of the task the current thread is executing (~0 outside any task).
inline uint64_t spanCurrentId() {
  return detail::CurSpanTask ? detail::CurSpanTask->Id : ~uint64_t(0);
}

/// Packed pml location of the instruction the VM is currently executing
/// on this thread (0 outside pml code). Forks stamp it into child tasks.
inline uint32_t spanCurrentLoc() { return detail::CurPmlLoc; }

/// Sets the current thread's pml location (VM dispatch, armed runs only).
inline void spanSetPmlLoc(uint32_t Packed) { detail::CurPmlLoc = Packed; }

/// Enters task \p T (stack-allocated by the caller); returns the previous
/// innermost task so the caller can restore it via spanExitTask.
inline SpanTask *spanEnterTask(SpanTask *T, uint64_t Id, uint64_t Parent,
                               uint32_t Loc) {
  T->Id = Id;
  T->Parent = Parent;
  T->StartNs = nowNs();
  T->SelfNs = 0;
  T->EmReads = 0;
  T->Pins = 0;
  T->Loc = Loc;
  T->HeapDepth = 0;
  // Events attribute to the task's fork location until the VM dispatch
  // loop refines it; this also clears a stale location left by a previous
  // pml run when a native task starts on the same thread.
  detail::CurPmlLoc = Loc;
  SpanTask *Saved = detail::CurSpanTask;
  detail::CurSpanTask = T;
  return Saved;
}

/// Finishes \p T: appends its record to the thread shard and restores the
/// previous innermost task.
inline void spanExitTask(SpanTask *T, SpanTask *Saved) {
  detail::finishTask(*T, nowNs());
  detail::CurSpanTask = Saved;
}

/// Credits \p Ns of strand time to the current task. The scheduler calls
/// this with the *same* elapsed quantum it adds to SpanAccNs/WorkAccNs, so
/// ledger CP and scheduler S are built from identical numbers.
inline void spanAddSelf(int64_t Ns) {
  if (spansEnabled() && detail::CurSpanTask) [[unlikely]]
    detail::CurSpanTask->SelfNs += Ns;
}

/// em::readBarrierSlow hook: one entangled read in the current task,
/// attributed to the current pml location.
inline void spanNoteEmRead() {
  if (spansEnabled() && detail::CurSpanTask) [[unlikely]] {
    ++detail::CurSpanTask->EmReads;
    SpanLedger::get().noteLineEvent(detail::CurPmlLoc, /*Pin=*/false);
  }
}

/// em::writeBarrierSlow hook: one pin created by the current task.
inline void spanNotePin() {
  if (spansEnabled() && detail::CurSpanTask) [[unlikely]] {
    ++detail::CurSpanTask->Pins;
    SpanLedger::get().noteLineEvent(detail::CurPmlLoc, /*Pin=*/true);
  }
}

/// rt::par hook: depth of the heap the current task runs in.
inline void spanNoteHeapDepth(uint32_t Depth) {
  if (spansEnabled() && detail::CurSpanTask) [[unlikely]]
    detail::CurSpanTask->HeapDepth = Depth;
}

} // namespace obs
} // namespace mpl

#endif // MPL_OBS_SPAN_H
