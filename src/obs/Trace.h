//===- obs/Trace.h - Per-worker ring-buffer event tracer -------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's time-resolved observability layer. The cumulative counters
/// (em::Counts, support/Stats) say *how much* entanglement management cost a
/// run; this tracer says *when*: every scheduler fork/steal/join, every
/// barrier slow path, every pin/unpin, every heap join and every GC phase
/// is a 32-byte timestamped record in a per-thread ring buffer, exported as
/// Chrome trace-event JSON that Perfetto / chrome://tracing loads directly,
/// with one track per worker.
///
/// Design constraints, in order:
///
///  1. Disabled cost ~ zero. Every hook compiles to a relaxed atomic load
///     and a predictable not-taken branch (obs::emit). No Tracer state is
///     touched, no buffer is allocated, until tracing is enabled.
///  2. Enabled cost is bounded and allocation-free on the hot path: the
///     emitting thread owns its buffer (single producer, no CAS, no lock),
///     writes one 32-byte record and bumps an index. When the ring wraps,
///     the oldest events are overwritten and counted as dropped — tracing
///     keeps the most recent window, never blocks, never corrupts.
///  3. Export happens at quiescence. writeChromeTrace()/clear() must run
///     while no traced thread is actively emitting (after a run, after a
///     Runtime was destroyed, in a test harness); the producers' release
///     store on Head and the consumer's acquire load make the no-wrap case
///     race-free, and quiescence covers the wrap case.
///
/// Gating: MPL_TRACE=<path> arms the tracer process-wide (see
/// obs::initFromEnv, called by rt::Runtime) and the trace is flushed to
/// <path> on Runtime destruction and at exit. MPL_TRACE_CAPACITY overrides
/// the per-thread ring capacity (events, rounded up to a power of two).
/// Tests and the fuzz harness use Tracer::enable() directly.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_OBS_TRACE_H
#define MPL_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpl {
namespace obs {

/// Every traced runtime event. Begin/End pairs become Chrome "B"/"E"
/// duration slices; the rest are instant events on the worker's track.
enum class Ev : uint16_t {
  Fork,             ///< Scheduler::forkImpl: child job made stealable.
  Steal,            ///< Successful steal; Arg0 = victim worker id.
  StrandBegin,      ///< Worker starts running user code (strand resume).
  StrandEnd,        ///< Worker stops running user code (strand pause).
  JoinWaitBegin,    ///< Parent starts waiting/helping on a stolen child.
  JoinWaitEnd,      ///< Stolen child finished; parent resumes.
  WriteBarrierSlow, ///< em::writeBarrierSlow entered.
  ReadBarrierSlow,  ///< em::readBarrierSlow entered (an entangled read).
  Pin,              ///< Object newly pinned; Arg0 = bytes, Arg1 = depth.
  Unpin,            ///< Join released a pin; Arg0 = bytes.
  HeapJoinBegin,    ///< HeapManager::join entered; Arg0 = child depth.
  HeapJoinEnd,      ///< Join done; Arg0 = objects unpinned.
  GcBegin,          ///< Collector::collectChain entered; Arg0 = chain len.
  GcEnd,            ///< Collection done; Arg0 = bytes copied, Arg1 = freed.
  GcMarkBegin,      ///< GC phase A: mark pinned closures in place.
  GcMarkEnd,
  GcEvacBegin,      ///< GC phase B: evacuate from roots.
  GcEvacEnd,
  GcReclaimBegin,   ///< GC phase C: reclaim / retire from-space chunks.
  GcReclaimEnd,
  PressureChange,   ///< Governor level changed; Arg0 = level, Arg1 = bytes.
  EmergencyGc,      ///< Pressure-forced GC; Arg0/Arg1 = bytes before/after.
  AllocRetry,       ///< Chunk alloc recovery; Arg0 = attempt, Arg1 = bytes.
  ContCapture,      ///< Continuation captured; Arg0 = bytes, Arg1 = depth.
  ContResume,       ///< Continuation resumed; Arg0 = bytes, Arg1 = depth.
  FlowOut,          ///< Fork edge out (Chrome flow 's'); Arg0 = child id.
  FlowIn,           ///< Task begin (Chrome flow 'f'); Arg0 = task id.
  NetAccept,        ///< Connection accepted; Arg0 = connection id.
  NetShed,          ///< Request shed; Arg0 = request id, Arg1 = pressure.
  NetDeadlineExpired, ///< Request aborted; Arg0 = req id, Arg1 = overrun ns.
  NetDrain,         ///< Server began draining; Arg0 = in-flight requests.
  NetFlowOut,       ///< Request enqueued (flow 's'); Arg0 = request id.
  NetFlowIn,        ///< Request starts executing (flow 'f'); Arg0 = req id.
  JitCompile,       ///< pml fn tiered to native; Arg0 = fn idx, Arg1 = bytes.
  NumKinds
};

/// One trace record. 32 bytes so a 64 Ki-event ring is 2 MiB per worker
/// and an emit dirties at most one cache line beyond the index.
struct TraceEvent {
  int64_t TimeNs;  ///< Steady-clock timestamp (support/Timer nowNs).
  uint64_t Arg0;
  uint64_t Arg1;
  uint16_t Kind;   ///< An Ev value.
  uint16_t Pad16 = 0;
  uint32_t Pad32 = 0;
};
static_assert(sizeof(TraceEvent) == 32, "trace record layout changed");

/// A single-producer ring of TraceEvents owned by one thread. The producer
/// only ever writes Slots[Head & Mask] then publishes Head+1; when Head
/// exceeds the capacity the ring has wrapped and Head - Capacity events
/// have been dropped (overwritten). Consumers read at quiescence.
class TraceBuffer {
public:
  explicit TraceBuffer(uint64_t CapacityPow2);

  void emit(Ev K, int64_t TimeNs, uint64_t A0, uint64_t A1) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    TraceEvent &E = Slots[H & Mask];
    E.TimeNs = TimeNs;
    E.Arg0 = A0;
    E.Arg1 = A1;
    E.Kind = static_cast<uint16_t>(K);
    Head.store(H + 1, std::memory_order_release);
  }

  uint64_t capacity() const { return Mask + 1; }
  uint64_t head() const { return Head.load(std::memory_order_acquire); }

  /// Events currently held (<= capacity).
  uint64_t size() const { return std::min(head(), capacity()); }

  /// Events overwritten by ring wrap.
  uint64_t dropped() const {
    uint64_t H = head();
    return H > capacity() ? H - capacity() : 0;
  }

  /// Index of the oldest retained event; iterate [first, head()).
  uint64_t first() const {
    uint64_t H = head();
    return H > capacity() ? H - capacity() : 0;
  }

  const TraceEvent &at(uint64_t I) const { return Slots[I & Mask]; }

  /// Consumer-side reset (quiescent producers only).
  void reset() { Head.store(0, std::memory_order_release); }

  /// Reallocates the ring at a new capacity, dropping all events. Only
  /// valid while the owning producer is quiescent (enable() contract); the
  /// buffer's address stays stable so the owner's TLS pointer survives.
  void resize(uint64_t CapacityPow2) {
    Mask = CapacityPow2 - 1;
    Slots.reset(new TraceEvent[CapacityPow2]);
    Head.store(0, std::memory_order_release);
  }

  /// Track id: the scheduler worker id when the owning thread is a worker,
  /// otherwise 1000 + a registration ordinal.
  int TrackId = 0;

  /// Set by the owning thread's TLS destructor; clear() frees retired
  /// buffers (their events are kept until then so post-join flushes work).
  std::atomic<bool> Retired{false};

private:
  uint64_t Mask;
  std::atomic<uint64_t> Head{0};
  std::unique_ptr<TraceEvent[]> Slots;
};

/// Tracer options (programmatic enabling; env gating fills these from
/// MPL_TRACE / MPL_TRACE_CAPACITY).
struct TraceOptions {
  /// Per-thread ring capacity in events; rounded up to a power of two.
  uint64_t Capacity = uint64_t(1) << 16;

  /// Output path for env-driven flushes ("" = only explicit writes).
  std::string Path;
};

/// Process-wide tracer: owns every thread's ring buffer and the exporter.
class Tracer {
public:
  static Tracer &get();

  /// Arms tracing. Safe to call again to change options (quiescent only).
  void enable(const TraceOptions &O);

  /// Disarms every hook; buffers and their events are kept until clear().
  void disable();

  bool enabled() const;

  /// Drops all recorded events and frees buffers of exited threads.
  /// Producers must be quiescent.
  void clear();

  /// Total events currently retained / dropped across all buffers.
  uint64_t totalEvents() const;
  uint64_t totalDropped() const;

  /// Runs \p Fn over every buffer under the registry lock.
  void forEachBuffer(const std::function<void(const TraceBuffer &)> &Fn) const;

  /// Renders the whole trace as Chrome trace-event JSON.
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  const std::string &configuredPath() const { return Opts.Path; }

  // Internal: called from detail::emitSlow / labelCurrentThread.
  TraceBuffer *threadBuffer();
  void labelThread(int TrackId);

private:
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
  TraceOptions Opts;
  int64_t BaseTimeNs = 0; ///< enable() time; exported ts are relative.
  int NextForeignTrack = 1000;
};

namespace detail {
extern std::atomic<uint32_t> TraceActiveFlag;
void emitSlow(Ev K, uint64_t A0, uint64_t A1);
} // namespace detail

/// The single branch-predictable check every hook compiles to.
inline bool traceEnabled() {
  return detail::TraceActiveFlag.load(std::memory_order_relaxed) != 0;
}

/// Records one event on the calling thread's track (no-op when disabled).
inline void emit(Ev K, uint64_t A0 = 0, uint64_t A1 = 0) {
  if (traceEnabled()) [[unlikely]]
    detail::emitSlow(K, A0, A1);
}

/// Names the calling thread's trace track after scheduler worker \p Id.
/// Cheap and callable whether or not tracing is active; the scheduler calls
/// it when binding worker threads.
void labelCurrentThread(int Id);

/// Reads MPL_TRACE / MPL_METRICS (and their tuning knobs) once per process
/// and arms the tracer / metrics sampler accordingly. Called by
/// rt::Runtime's constructor; idempotent and cheap afterwards.
void initFromEnv();

/// Flushes the trace and metrics series to their env-configured paths, if
/// any. Called on Runtime destruction (quiescent) and at process exit.
void flushEnvSinks();

} // namespace obs
} // namespace mpl

#endif // MPL_OBS_TRACE_H
