//===- obs/Exposition.h - Prometheus text exposition -----------*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pull side of the live introspection plane (DESIGN.md §16): renders
/// every registered counter (support/Stats), gauge (obs/Metrics), em cost
/// counter and log2 histogram (support/Histogram) as Prometheus text
/// exposition format, so a scrape of the request server's stats frame
/// (`format=prom`) — or a signal-driven file dump — drops straight into a
/// Prometheus/Grafana stack.
///
/// Mapping rules:
///  - names are sanitized to [a-zA-Z0-9_] and prefixed `mpl_`
///    (`net.resp.ok` → `mpl_net_resp_ok_total`);
///  - Stats and em counters are monotone `counter` series (`_total`);
///  - registered gauges and live quantities (live pinned bytes, pressure
///    level) are `gauge` series;
///  - log2 histograms become `histogram` series: bucket B covers
///    [2^(B-1), 2^B), so its *inclusive* upper bound is 2^B - 1, which is
///    exactly a Prometheus `le` boundary. Counts are cumulated up to the
///    highest non-empty bucket, then `le="+Inf"`, `_sum`, `_count`.
///
/// Everything read is a relaxed atomic or a registry snapshot under that
/// registry's own short-lived lock — no runtime, scheduler or executor
/// lock is ever touched, so rendering is safe from a connection thread
/// while the runtime is under load.
///
/// `MPL_STATS_DUMP=<path>` arms a SIGUSR1-triggered dump: the handler is
/// one relaxed store (async-signal-safe); any periodic thread that calls
/// serviceStatsDump() (the metrics sampler thread and the request server's
/// accept loop both do) notices the flag and writes the exposition file.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_OBS_EXPOSITION_H
#define MPL_OBS_EXPOSITION_H

#include <string>

namespace mpl {
namespace obs {

/// Renders the full Prometheus text exposition of the process: all Stats
/// counters, em cost counters, registered gauges, and histograms.
std::string renderPrometheus();

/// Sanitizes \p Name into a Prometheus metric name (no `mpl_` prefix, no
/// type suffix) — exposed for tests and label construction.
std::string promSanitize(const std::string &Name);

/// Validates Prometheus text exposition \p Text: every sample line must be
/// numeric and preceded by a `# TYPE` for its metric, no duplicate series
/// (name + label set), histogram `le` buckets strictly increasing with
/// non-decreasing cumulative counts ending at `+Inf` (== `_count`), and
/// counter samples non-negative. On failure returns false and describes
/// the first problem in \p Err. \p SeriesOut (optional) receives the
/// number of sample lines checked.
bool checkExposition(const std::string &Text, std::string &Err,
                     int *SeriesOut = nullptr);

//===----------------------------------------------------------------------===//
// Signal-driven stats dump (MPL_STATS_DUMP)
//===----------------------------------------------------------------------===//

/// Remembers \p Path and installs a SIGUSR1 handler that calls
/// requestStatsDump(). Call once, before threads that might service the
/// request exist (obs::initFromEnv does this when MPL_STATS_DUMP is set).
void armStatsDump(const std::string &Path);

/// Flags that a dump is wanted. One relaxed atomic store:
/// async-signal-safe, callable from any context.
void requestStatsDump();

/// If a dump was requested (and a path is armed), writes renderPrometheus()
/// to the armed path and clears the flag. Returns true iff a file was
/// written. Periodic threads call this; it is cheap when idle.
bool serviceStatsDump();

/// The armed dump path ("" when unarmed).
std::string statsDumpPath();

} // namespace obs
} // namespace mpl

#endif // MPL_OBS_EXPOSITION_H
