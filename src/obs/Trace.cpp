//===- obs/Trace.cpp - Per-worker ring-buffer event tracer ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Exposition.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace mpl;
using namespace mpl::obs;

namespace mpl {
namespace obs {
namespace detail {
std::atomic<uint32_t> TraceActiveFlag{0};
} // namespace detail
} // namespace obs
} // namespace mpl

namespace {

/// Thread-local buffer handle. The destructor retires (does not free) the
/// buffer so a flush after the thread joined still sees its events.
struct TlsSlot {
  TraceBuffer *B = nullptr;
  ~TlsSlot() {
    if (B)
      B->Retired.store(true, std::memory_order_release);
  }
};
thread_local TlsSlot Tls;
thread_local int TlsTrackId = -1;

/// Static description of each Ev: display name, Chrome phase ('i' instant,
/// 'B' begin, 'E' end), and names for the two payload args (null = omit).
struct KindInfo {
  const char *Name;
  char Phase;
  const char *Arg0;
  const char *Arg1;
  /// Flow-binding category for 's'/'f' phases (flows bind by (cat, name,
  /// id)); the span flows predate the field, hence the default.
  const char *Cat = "spans";
};

constexpr KindInfo Kinds[] = {
    /* Fork             */ {"fork", 'i', nullptr, nullptr},
    /* Steal            */ {"steal", 'i', "victim", nullptr},
    /* StrandBegin      */ {"strand", 'B', nullptr, nullptr},
    /* StrandEnd        */ {"strand", 'E', nullptr, nullptr},
    /* JoinWaitBegin    */ {"join_wait", 'B', nullptr, nullptr},
    /* JoinWaitEnd      */ {"join_wait", 'E', nullptr, nullptr},
    /* WriteBarrierSlow */ {"write_barrier_slow", 'i', nullptr, nullptr},
    /* ReadBarrierSlow  */ {"read_barrier_slow", 'i', nullptr, nullptr},
    /* Pin              */ {"pin", 'i', "bytes", "unpin_depth"},
    /* Unpin            */ {"unpin", 'i', "bytes", nullptr},
    /* HeapJoinBegin    */ {"heap_join", 'B', "child_depth", nullptr},
    /* HeapJoinEnd      */ {"heap_join", 'E', "unpinned", nullptr},
    /* GcBegin          */ {"gc", 'B', "chain_heaps", nullptr},
    /* GcEnd            */ {"gc", 'E', "copied_bytes", "reclaimed_bytes"},
    /* GcMarkBegin      */ {"gc_mark", 'B', nullptr, nullptr},
    /* GcMarkEnd        */ {"gc_mark", 'E', nullptr, nullptr},
    /* GcEvacBegin      */ {"gc_evac", 'B', nullptr, nullptr},
    /* GcEvacEnd        */ {"gc_evac", 'E', nullptr, nullptr},
    /* GcReclaimBegin   */ {"gc_reclaim", 'B', nullptr, nullptr},
    /* GcReclaimEnd     */ {"gc_reclaim", 'E', nullptr, nullptr},
    /* PressureChange   */ {"pressure_change", 'i', "level", "bytes"},
    /* EmergencyGc      */ {"emergency_gc", 'i', "before_bytes", "after_bytes"},
    /* AllocRetry       */ {"alloc_retry", 'i', "attempt", "bytes"},
    /* ContCapture      */ {"cont_capture", 'i', "bytes", "depth"},
    /* ContResume       */ {"cont_resume", 'i', "bytes", "depth"},
    /* FlowOut          */ {"task_flow", 's', nullptr, nullptr},
    /* FlowIn           */ {"task_flow", 'f', nullptr, nullptr},
    /* NetAccept        */ {"net.accept", 'i', "conn", nullptr},
    /* NetShed          */ {"net.shed", 'i', "req", "pressure"},
    /* NetDeadlineExpired */ {"net.deadline_expired", 'i', "req", "overrun_ns"},
    /* NetDrain         */ {"net.drain", 'i', "inflight", nullptr},
    /* NetFlowOut       */ {"net.request_flow", 's', nullptr, nullptr, "net"},
    /* NetFlowIn        */ {"net.request_flow", 'f', nullptr, nullptr, "net"},
    /* JitCompile       */ {"jit_compile", 'i', "fn", "code_bytes"},
};
static_assert(sizeof(Kinds) / sizeof(Kinds[0]) ==
                  static_cast<size_t>(Ev::NumKinds),
              "KindInfo table out of sync with Ev");

uint64_t roundUpPow2(uint64_t V) {
  if (V < 2)
    return 2;
  return std::bit_ceil(V);
}

void appendEventJson(std::string &Out, const KindInfo &KI, int Track,
                     double TsUs, const TraceEvent &E, bool &First) {
  char Buf[256];
  if (!First)
    Out += ",\n";
  First = false;
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":0,\"tid\":%d,"
                "\"ts\":%.3f",
                KI.Name, KI.Phase, Track, TsUs);
  Out += Buf;
  if (KI.Phase == 'i')
    Out += ",\"s\":\"t\""; // Thread-scoped instant.
  if (KI.Phase == 's' || KI.Phase == 'f') {
    // Flow events bind by (cat, name, id); 'f' with bp:"e" attaches to the
    // enclosing slice at the receiving end.
    std::snprintf(Buf, sizeof(Buf), ",\"cat\":\"%s\",\"id\":%llu", KI.Cat,
                  static_cast<unsigned long long>(E.Arg0));
    Out += Buf;
    if (KI.Phase == 'f')
      Out += ",\"bp\":\"e\"";
    Out += "}";
    return;
  }
  if (KI.Arg0) {
    std::snprintf(Buf, sizeof(Buf), ",\"args\":{\"%s\":%llu", KI.Arg0,
                  static_cast<unsigned long long>(E.Arg0));
    Out += Buf;
    if (KI.Arg1) {
      std::snprintf(Buf, sizeof(Buf), ",\"%s\":%llu", KI.Arg1,
                    static_cast<unsigned long long>(E.Arg1));
      Out += Buf;
    }
    Out += "}";
  }
  Out += "}";
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceBuffer / Tracer
//===----------------------------------------------------------------------===//

TraceBuffer::TraceBuffer(uint64_t CapacityPow2)
    : Mask(CapacityPow2 - 1), Slots(new TraceEvent[CapacityPow2]) {}

Tracer &Tracer::get() {
  static Tracer Instance;
  return Instance;
}

void Tracer::enable(const TraceOptions &O) {
  {
    std::lock_guard<std::mutex> G(Mu);
    Opts = O;
    Opts.Capacity = roundUpPow2(O.Capacity);
    BaseTimeNs = nowNs();
    // Buffers of still-live threads persist across enable() calls; bring
    // them to the new capacity (producers are quiescent by contract).
    for (auto &B : Buffers)
      if (B->capacity() != Opts.Capacity)
        B->resize(Opts.Capacity);
  }
  detail::TraceActiveFlag.store(1, std::memory_order_release);
}

void Tracer::disable() {
  detail::TraceActiveFlag.store(0, std::memory_order_release);
}

bool Tracer::enabled() const {
  return detail::TraceActiveFlag.load(std::memory_order_acquire) != 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> G(Mu);
  Buffers.erase(std::remove_if(Buffers.begin(), Buffers.end(),
                               [](const std::unique_ptr<TraceBuffer> &B) {
                                 return B->Retired.load(
                                     std::memory_order_acquire);
                               }),
                Buffers.end());
  for (auto &B : Buffers)
    B->reset();
}

uint64_t Tracer::totalEvents() const {
  std::lock_guard<std::mutex> G(Mu);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->size();
  return N;
}

uint64_t Tracer::totalDropped() const {
  std::lock_guard<std::mutex> G(Mu);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->dropped();
  return N;
}

void Tracer::forEachBuffer(
    const std::function<void(const TraceBuffer &)> &Fn) const {
  std::lock_guard<std::mutex> G(Mu);
  for (const auto &B : Buffers)
    Fn(*B);
}

TraceBuffer *Tracer::threadBuffer() {
  if (Tls.B)
    return Tls.B;
  std::lock_guard<std::mutex> G(Mu);
  auto B = std::make_unique<TraceBuffer>(Opts.Capacity);
  B->TrackId = TlsTrackId >= 0 ? TlsTrackId : NextForeignTrack++;
  Tls.B = B.get();
  Buffers.push_back(std::move(B));
  return Tls.B;
}

void Tracer::labelThread(int TrackId) {
  TlsTrackId = TrackId;
  if (Tls.B)
    Tls.B->TrackId = TrackId;
}

std::string Tracer::chromeTraceJson() const {
  std::lock_guard<std::mutex> G(Mu);

  // Export timestamps relative to the earliest retained event so traces
  // open centered in Perfetto regardless of process uptime.
  int64_t Base = INT64_MAX;
  for (const auto &B : Buffers)
    for (uint64_t I = B->first(), E = B->head(); I != E; ++I)
      Base = std::min(Base, B->at(I).TimeNs);
  if (Base == INT64_MAX)
    Base = 0;

  uint64_t NEvents = 0;
  for (const auto &B : Buffers)
    NEvents += B->size();

  std::string Out;
  Out.reserve(1024 + NEvents * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool First = true;
  char Buf[256];
  uint64_t Dropped = 0;
  for (const auto &B : Buffers) {
    Dropped += B->dropped();
    // Track metadata: name the per-worker rows.
    if (!First)
      Out += ",\n";
    First = false;
    const char *Label = B->TrackId < 1000 ? "worker" : "thread";
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
                  B->TrackId, Label, B->TrackId);
    Out += Buf;

    // Ring wrap can orphan an 'E' whose 'B' was overwritten; skip
    // unmatched ends so the stream stays well-nested for the viewer.
    int Depth = 0;
    for (uint64_t I = B->first(), E = B->head(); I != E; ++I) {
      const TraceEvent &Rec = B->at(I);
      if (Rec.Kind >= static_cast<uint16_t>(Ev::NumKinds))
        continue; // Corrupt kind: never emitted by hooks; be defensive.
      const KindInfo &KI = Kinds[Rec.Kind];
      if (KI.Phase == 'B')
        ++Depth;
      else if (KI.Phase == 'E' && --Depth < 0) {
        Depth = 0;
        continue;
      }
      double TsUs = static_cast<double>(Rec.TimeNs - Base) / 1000.0;
      appendEventJson(Out, KI, B->TrackId, TsUs, Rec, First);
    }
  }
  Out += "\n],\"otherData\":{\"dropped_events\":\"";
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  // A counters block so post-mortem checkers (trace_check
  // --check-net-balance) can assert cross-counter invariants without a
  // separate metrics file. The registry folds retired Stats into
  // snapshotAll(), so even the final atexit flush — which runs after a
  // net::Server's Impl (and its net.* Stats) has been destroyed — still
  // reports the full net.* family.
  Out += "\",\"counters\":{";
  bool FirstC = true;
  for (const auto &[Name, V] : StatRegistry::get().snapshotAll()) {
    if (!FirstC)
      Out += ",";
    FirstC = false;
    std::snprintf(Buf, sizeof(Buf), "\"%s\":%lld", Name.c_str(),
                  static_cast<long long>(V));
    Out += Buf;
  }
  Out += "}}}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string Json = chromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  return Written == Json.size();
}

//===----------------------------------------------------------------------===//
// Free functions: emit slow path, thread labeling, env gating
//===----------------------------------------------------------------------===//

void detail::emitSlow(Ev K, uint64_t A0, uint64_t A1) {
  TraceBuffer *B = Tls.B;
  if (!B)
    B = Tracer::get().threadBuffer();
  B->emit(K, nowNs(), A0, A1);
}

void obs::labelCurrentThread(int Id) {
  Tracer::get().labelThread(Id);
  SpanLedger::get().labelThread(Id);
}

namespace {
void flushAtExit() {
  MetricsSampler::get().stop();
  flushEnvSinks();
}
} // namespace

void obs::initFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    bool AnySink = false;
    if (const char *Path = std::getenv("MPL_TRACE")) {
      TraceOptions O;
      O.Path = Path;
      if (const char *Cap = std::getenv("MPL_TRACE_CAPACITY"))
        if (long long V = std::atoll(Cap); V > 0)
          O.Capacity = static_cast<uint64_t>(V);
      Tracer::get().enable(O);
      AnySink = true;
    }
    if (const char *Path = std::getenv("MPL_METRICS")) {
      int64_t IntervalUs = 1000;
      if (const char *I = std::getenv("MPL_METRICS_INTERVAL_US"))
        if (long long V = std::atoll(I); V > 0)
          IntervalUs = V;
      MetricsSampler::get().start(IntervalUs, Path);
      AnySink = true;
    }
    // MPL_PROFILE: "0"/unset = off, "1" = armed (query via the Profiler
    // API), anything else = armed + merged profile JSON flushed to that
    // path at exit / Runtime destruction.
    if (const char *P = std::getenv("MPL_PROFILE")) {
      if (std::strcmp(P, "0") != 0) {
        Profiler::get().enable();
        if (std::strcmp(P, "1") != 0) {
          Profiler::get().setConfiguredPath(P);
          AnySink = true;
        }
      }
    }
    // MPL_SPANS mirrors MPL_PROFILE: "0"/unset = off, "1" = armed (query
    // via SpanLedger / tools), anything else = armed + the last run's
    // mpl-spans/1 JSON flushed to that path.
    if (const char *P = std::getenv("MPL_SPANS")) {
      if (std::strcmp(P, "0") != 0) {
        SpanLedger::get().enable();
        if (std::strcmp(P, "1") != 0) {
          SpanLedger::get().setConfiguredPath(P);
          AnySink = true;
        }
      }
    }
    // MPL_STATS_DUMP=<path>: arm the SIGUSR1-triggered Prometheus dump.
    // Not a quiescence sink — the file is written whenever a periodic
    // thread services the request — but a final service at exit catches a
    // signal that landed after the last tick.
    if (const char *Path = std::getenv("MPL_STATS_DUMP")) {
      armStatsDump(Path);
      AnySink = true;
    }
    if (AnySink)
      std::atexit(flushAtExit);
  });
}

void obs::flushEnvSinks() {
  serviceStatsDump();
  Tracer &T = Tracer::get();
  if (T.enabled() && !T.configuredPath().empty())
    T.writeChromeTrace(T.configuredPath());
  MetricsSampler &M = MetricsSampler::get();
  if (!M.configuredPath().empty())
    M.writeAuto(M.configuredPath());
  Profiler &P = Profiler::get();
  if (!P.configuredPath().empty())
    if (std::FILE *F = std::fopen(P.configuredPath().c_str(), "w")) {
      std::string Json = P.jsonDump();
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  SpanLedger &S = SpanLedger::get();
  if (std::string SpanPath = S.configuredPath(); !SpanPath.empty()) {
    SpanRunSummary Sum = S.lastRun();
    if (Sum.Valid || Sum.Tasks > 0)
      if (std::FILE *F = std::fopen(SpanPath.c_str(), "w")) {
        std::string Json = Sum.toJson();
        std::fwrite(Json.data(), 1, Json.size(), F);
        std::fclose(F);
      }
  }
}
