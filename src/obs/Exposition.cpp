//===- obs/Exposition.cpp - Prometheus text exposition --------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Exposition.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/EmCounters.h"
#include "support/Histogram.h"
#include "support/Stats.h"

#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <vector>

using namespace mpl;
using namespace mpl::obs;

std::string obs::promSanitize(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) != 0) ? C : '_';
  if (!Out.empty() && std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), '_');
  return Out;
}

namespace {

void appendI64(std::string &Out, int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  Out += Buf;
}

/// Emits one complete counter or gauge series: HELP, TYPE, sample.
void emitScalar(std::string &Out, std::set<std::string> &Emitted,
                const std::string &Metric, const char *Type,
                const std::string &SourceName, int64_t Value) {
  if (!Emitted.insert(Metric).second)
    return; // name collision across families — first writer wins
  Out += "# HELP " + Metric + " mpl " + Type + " " + SourceName + "\n";
  Out += "# TYPE " + Metric + " " + Type + "\n";
  Out += Metric + " ";
  appendI64(Out, Value);
  Out += "\n";
}

/// Inclusive upper bound of log2 bucket \p B, which is exactly the
/// Prometheus `le` boundary: bucket B holds [2^(B-1), 2^B), i.e. every
/// sample <= 2^B - 1 that no earlier bucket claimed (DESIGN.md §16).
int64_t bucketLe(int B) {
  return B <= 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
}

void emitHistogram(std::string &Out, std::set<std::string> &Emitted,
                   const Histogram &H) {
  int64_t Counts[Histogram::NumBuckets];
  H.snapshotCounts(Counts);
  int64_t Total = 0;
  int HighB = -1;
  for (int B = 0; B < Histogram::NumBuckets; ++B) {
    Total += Counts[B];
    if (Counts[B] != 0)
      HighB = B;
  }
  if (Total == 0)
    return; // untouched histograms would only bloat the scrape
  std::string Metric = "mpl_" + promSanitize(H.name());
  if (!Emitted.insert(Metric).second)
    return;
  Out += "# HELP " + Metric + " mpl histogram " + H.name() + "\n";
  Out += "# TYPE " + Metric + " histogram\n";
  int64_t Cum = 0;
  for (int B = 0; B <= HighB; ++B) {
    Cum += Counts[B];
    Out += Metric + "_bucket{le=\"";
    appendI64(Out, bucketLe(B));
    Out += "\"} ";
    appendI64(Out, Cum);
    Out += "\n";
  }
  Out += Metric + "_bucket{le=\"+Inf\"} ";
  appendI64(Out, Total);
  Out += "\n" + Metric + "_sum ";
  appendI64(Out, H.sum());
  Out += "\n" + Metric + "_count ";
  appendI64(Out, Total);
  Out += "\n";
}

} // namespace

std::string obs::renderPrometheus() {
  std::string Out;
  Out.reserve(8192);
  std::set<std::string> Emitted;

  // Registered Stats: monotone event counters (net.*, rt.*, chaos.*, ...).
  // snapshotAll() returns one total per name (live instances summed on top
  // of retired ones), so the exposition never emits the same series twice
  // and counters survive their owning component's teardown.
  for (const auto &[Name, V] : StatRegistry::get().snapshotAll())
    emitScalar(Out, Emitted, "mpl_" + promSanitize(Name) + "_total",
               "counter", Name, V);

  // The paper's entanglement cost counters. Cumulative ones are counters;
  // the live pinned footprint (cumulative pinned minus unpinned) is the
  // space cost operators watch, so it is exposed as a gauge.
  {
    em::CounterSnapshot E = em::Counts.snapshot();
    struct Row {
      const char *Name;
      int64_t V;
    };
    const Row CounterRows[] = {
        {"em.read.entangled", E.EntangledReads},
        {"em.read.entangled.unpinned", E.EntangledReadsUnpinned},
        {"em.pin.down", E.DownPointerPins},
        {"em.pin.cross", E.CrossPointerPins},
        {"em.pin.holder", E.PinnedHolderPins},
        {"em.pinned.objects", E.PinnedObjects},
        {"em.pinned.bytes", E.PinnedBytes},
        {"em.unpinned.objects", E.UnpinnedObjects},
        {"em.unpinned.bytes", E.UnpinnedBytes},
        {"em.cont.captured", E.ContCaptured},
        {"em.cont.resumed", E.ContResumed},
    };
    for (const Row &R : CounterRows)
      emitScalar(Out, Emitted, "mpl_" + promSanitize(R.Name) + "_total",
                 "counter", R.Name, R.V);
    const Row GaugeRows[] = {
        {"em.live.pinned.objects", E.livePinnedObjects()},
        {"em.live.pinned.bytes", E.livePinnedBytes()},
    };
    for (const Row &R : GaugeRows)
      emitScalar(Out, Emitted, "mpl_" + promSanitize(R.Name), "gauge", R.Name,
                 R.V);
  }

  // Registered gauges (scheduler deque depths, chunk-pool residency, net
  // queue depth/in-flight, mm pressure...) plus the trace-drop health
  // signal. Callbacks are relaxed loads by contract; first registration
  // wins on a name clash.
  {
    for (const auto &[Name, V] : MetricsSampler::get().gaugeSnapshot())
      emitScalar(Out, Emitted, "mpl_" + promSanitize(Name), "gauge", Name, V);
    emitScalar(Out, Emitted, "mpl_obs_trace_dropped", "gauge",
               "obs.trace.dropped",
               static_cast<int64_t>(Tracer::get().totalDropped()));
  }

  // Log2 histograms as cumulative-le Prometheus histograms.
  HistogramRegistry::get().forEach(
      [&](const Histogram &H) { emitHistogram(Out, Emitted, H); });

  return Out;
}

//===----------------------------------------------------------------------===//
// Exposition format checker
//===----------------------------------------------------------------------===//

namespace {

bool parseNumber(const std::string &Tok, double &Out) {
  if (Tok.empty())
    return false;
  if (Tok == "+Inf" || Tok == "Inf") {
    Out = std::numeric_limits<double>::infinity();
    return true;
  }
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End && *End == '\0' && !std::isnan(Out) && !std::isinf(Out);
}

struct HistCheck {
  double LastLe = -std::numeric_limits<double>::infinity();
  double LastCum = -1.0;
  bool SeenInf = false;
  double InfCount = 0.0;
  bool HasCount = false;
  double CountVal = 0.0;
};

} // namespace

bool obs::checkExposition(const std::string &Text, std::string &Err,
                          int *SeriesOut) {
  std::map<std::string, std::string> Types; // metric -> counter|gauge|histogram
  std::set<std::string> Series;             // name + label set, verbatim
  std::map<std::string, HistCheck> Hists;
  int Samples = 0;
  int LineNo = 0;

  auto fail = [&](const std::string &Msg) {
    Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      // "# TYPE <metric> <type>" declares the family; anything else under
      // '#' (HELP, comments) is free-form.
      if (Line.compare(0, 7, "# TYPE ") == 0) {
        std::string Rest = Line.substr(7);
        size_t Sp = Rest.find(' ');
        if (Sp == std::string::npos)
          return fail("malformed TYPE line");
        std::string Metric = Rest.substr(0, Sp);
        std::string Type = Rest.substr(Sp + 1);
        if (Type != "counter" && Type != "gauge" && Type != "histogram" &&
            Type != "summary" && Type != "untyped")
          return fail("unknown type '" + Type + "' for " + Metric);
        if (!Types.emplace(Metric, Type).second)
          return fail("duplicate # TYPE for " + Metric);
      }
      continue;
    }

    // Sample line: <name>[{labels}] <value>
    size_t ValSp = Line.rfind(' ');
    if (ValSp == std::string::npos || ValSp + 1 >= Line.size())
      return fail("sample line without value: " + Line);
    std::string SeriesKey = Line.substr(0, ValSp);
    std::string ValTok = Line.substr(ValSp + 1);
    double Value = 0;
    if (!parseNumber(ValTok, Value))
      return fail("non-numeric sample value '" + ValTok + "'");
    if (!Series.insert(SeriesKey).second)
      return fail("duplicate series: " + SeriesKey);
    ++Samples;

    size_t Brace = SeriesKey.find('{');
    std::string Name =
        Brace == std::string::npos ? SeriesKey : SeriesKey.substr(0, Brace);
    std::string Labels =
        Brace == std::string::npos ? "" : SeriesKey.substr(Brace);

    // Resolve the declared family: exact name, or a histogram child
    // (_bucket/_sum/_count of a metric typed histogram).
    std::string Type;
    std::string HistBase;
    auto TyIt = Types.find(Name);
    if (TyIt != Types.end()) {
      Type = TyIt->second;
    } else {
      static const char *const Suffixes[] = {"_bucket", "_sum", "_count"};
      for (const char *Suf : Suffixes) {
        size_t SufLen = std::strlen(Suf);
        if (Name.size() > SufLen &&
            Name.compare(Name.size() - SufLen, SufLen, Suf) == 0) {
          std::string Base = Name.substr(0, Name.size() - SufLen);
          auto BaseIt = Types.find(Base);
          if (BaseIt != Types.end() && BaseIt->second == "histogram") {
            Type = "histogram";
            HistBase = Base;
            break;
          }
        }
      }
      if (Type.empty())
        return fail("sample without preceding # TYPE: " + Name);
    }

    if (Type == "counter") {
      if (Value < 0)
        return fail("negative counter " + Name + " = " + ValTok);
    } else if (Type == "histogram") {
      HistCheck &HC = Hists[HistBase];
      if (Name == HistBase + "_bucket") {
        size_t LePos = Labels.find("le=\"");
        if (LePos == std::string::npos)
          return fail("histogram bucket without le label: " + SeriesKey);
        size_t LeEnd = Labels.find('"', LePos + 4);
        if (LeEnd == std::string::npos)
          return fail("unterminated le label: " + SeriesKey);
        std::string LeTok = Labels.substr(LePos + 4, LeEnd - LePos - 4);
        double Le = 0;
        if (LeTok == "+Inf") {
          Le = std::numeric_limits<double>::infinity();
        } else {
          char *End = nullptr;
          Le = std::strtod(LeTok.c_str(), &End);
          if (!End || *End != '\0' || std::isnan(Le))
            return fail("bad le value '" + LeTok + "'");
        }
        if (Le <= HC.LastLe)
          return fail("non-increasing le buckets for " + HistBase);
        if (Value < HC.LastCum)
          return fail("non-monotone cumulative bucket counts for " + HistBase);
        if (Value < 0)
          return fail("negative bucket count for " + HistBase);
        HC.LastLe = Le;
        HC.LastCum = Value;
        if (std::isinf(Le)) {
          HC.SeenInf = true;
          HC.InfCount = Value;
        }
      } else if (Name == HistBase + "_count") {
        if (Value < 0)
          return fail("negative _count for " + HistBase);
        HC.HasCount = true;
        HC.CountVal = Value;
      }
      // _sum may legitimately be anything for signed-sample histograms.
    }
  }

  for (const auto &[Base, HC] : Hists) {
    LineNo = 0;
    if (!HC.SeenInf)
      return fail("histogram " + Base + " missing le=\"+Inf\" bucket");
    if (!HC.HasCount)
      return fail("histogram " + Base + " missing _count");
    if (HC.InfCount != HC.CountVal)
      return fail("histogram " + Base + " +Inf bucket != _count");
  }

  if (SeriesOut)
    *SeriesOut = Samples;
  Err.clear();
  return true;
}

//===----------------------------------------------------------------------===//
// Signal-driven stats dump
//===----------------------------------------------------------------------===//

namespace {

std::atomic<bool> DumpRequested{false};
std::mutex DumpPathMu;
std::string DumpPath; // guarded by DumpPathMu

void onSigUsr1(int) {
  // Async-signal-safe by construction: one relaxed store, nothing else.
  obs::requestStatsDump();
}

} // namespace

void obs::armStatsDump(const std::string &Path) {
  {
    std::lock_guard<std::mutex> G(DumpPathMu);
    DumpPath = Path;
  }
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSigUsr1;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &SA, nullptr);
}

void obs::requestStatsDump() {
  DumpRequested.store(true, std::memory_order_relaxed);
}

bool obs::serviceStatsDump() {
  if (!DumpRequested.load(std::memory_order_relaxed))
    return false;
  if (!DumpRequested.exchange(false, std::memory_order_relaxed))
    return false;
  std::string Path;
  {
    std::lock_guard<std::mutex> G(DumpPathMu);
    Path = DumpPath;
  }
  if (Path.empty())
    return false;
  std::string Text = renderPrometheus();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

std::string obs::statsDumpPath() {
  std::lock_guard<std::mutex> G(DumpPathMu);
  return DumpPath;
}
