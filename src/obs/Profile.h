//===- obs/Profile.h - Site-attributed entanglement profiler ---*- C++ -*-===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attribution half of the observability layer. The counters
/// (support/EmCounters) say *how much* entanglement cost a run and the
/// tracer (obs/Trace.h) says *when*; this profiler says *where*: every pin
/// (down-pointer, cross-pointer, pinned-holder), every entangled read,
/// every join-driven unpin and every GC phase that paid for entanglement is
/// attributed to a static *site* — a named program point registered with
/// the MPL_SITE macro — together with the bytes involved and the heap depth
/// at which the entanglement lived.
///
/// This is an *entanglement* profiler: hooks fire only on the slow paths
/// where entanglement is created, serviced, or released. A disentangled
/// execution therefore produces an empty profile by construction — the
/// measurable form of the paper's shielding claim.
///
/// Design constraints, in order (mirroring obs/Trace.h):
///
///  1. Disabled cost ~ zero: every hook is a relaxed atomic load and a
///     predictable not-taken branch. MPL_PROFILE unset/0 means the barrier
///     fast paths are untouched (results/M1_barriers.txt records this).
///  2. Enabled cost is bounded: the recording thread owns a per-worker
///     shard of plain relaxed atomics (no locks on the event path); only
///     pin-lifetime tracking takes a sharded leaf mutex, and only on the
///     already-lock-protected pin/unpin slow paths.
///  3. Shards are merged at quiescence: rt::Runtime::endRun folds every
///     worker shard into the merged table (workers idle outside run()).
///
/// Pin lifetimes: notePin() records the pin instant keyed by object
/// address; noteUnpin() (the join rule) attributes the elapsed lifetime to
/// the site that created the pin. Entries still live at a quiescent point
/// are *leaked pins* — the fuzz suite's SkipUnpin fault shows up here.
///
/// Heap-tree introspection: snapshotHeapTree() returns a JSON dump of the
/// live heap hierarchy (depth, chunk/pinned bytes, children, governor
/// pressure level). The obs layer depends only on support, so the walker
/// itself is registered by rt::Runtime as a provider callback (the same
/// inversion the metrics gauges use); the function is thread-safe and is
/// called from the MetricsSampler thread (metrics JSON embeds a final
/// snapshot) and by the MemoryGovernor on OutOfMemoryError
/// (MPL_OOM_HEAP_TREE=<path>).
///
/// Gating: MPL_PROFILE=1 arms the profiler; any other non-"0" value is an
/// output path to which the merged profile JSON is flushed on Runtime
/// destruction / process exit (see obs::initFromEnv). Tests and benches
/// use Profiler::get().enable() directly.
///
//===----------------------------------------------------------------------===//

#ifndef MPL_OBS_PROFILE_H
#define MPL_OBS_PROFILE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mpl {
namespace obs {

/// One static program point costs are attributed to. Construct through
/// MPL_SITE, never directly: sites must have static storage duration (the
/// registry keeps raw pointers and per-site slots for the process
/// lifetime). The registry grows in fixed-size blocks on demand up to
/// Profiler::MaxSites (4096); registrations past the hard cap are counted
/// (Profiler::sitesDropped) but not attributed (index -1).
class ProfileSite {
public:
  /// \p Name defaults to "<basename(File)>:<Line>" when null (the
  /// MPL_SITE() spelling with no argument).
  ProfileSite(const char *File, int Line, const char *Name = nullptr);

  const std::string &name() const { return NameStr; }
  const char *file() const { return File; }
  int line() const { return Line; }
  int index() const { return Index; }

private:
  std::string NameStr;
  const char *File;
  int Line;
  int Index;
};

/// Registers (once, on first execution) and yields the enclosing scope's
/// static profile site. MPL_SITE("name") names it; MPL_SITE() defaults to
/// file:line.
#define MPL_SITE(...)                                                          \
  ([]() -> ::mpl::obs::ProfileSite & {                                         \
    static ::mpl::obs::ProfileSite MplSiteObj{                                 \
        __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__};                        \
    return MplSiteObj;                                                         \
  }())

/// Merged per-site profile data at one instant (Profiler::snapshot).
struct ProfileSiteSnap {
  std::string Name;
  std::string File;
  int Line = 0;
  int64_t Events = 0;
  int64_t Bytes = 0;

  /// Events by heap depth of the entanglement; depths >= DepthBuckets-1
  /// clamp into the last bucket.
  static constexpr int DepthBuckets = 16;
  int64_t Depth[DepthBuckets] = {};

  /// Log2-bucketed durations (ns): pin lifetimes for pin sites, phase
  /// pauses for GC sites. Bucket B as in support/Histogram::bucketOf.
  static constexpr int DurBuckets = 48;
  int64_t Dur[DurBuckets] = {};
  int64_t DurCount = 0;
  int64_t DurSumNs = 0;

  /// Coarse duration quantile (bucket upper bound), as in
  /// Histogram::approxQuantile.
  int64_t durQuantileNs(double Q) const;
};

/// Process-wide profiler: site registry, per-worker shards, live-pin table.
class Profiler {
public:
  /// Site storage grows in blocks of BlockSites cells, allocated on first
  /// touch, so per-thread shards stay small for the common few-dozen-site
  /// case while large programs (codegen'd sites, tests) scale to MaxSites
  /// without a rebuild. Cells never move once allocated — recorded indices
  /// and TLS shard pointers stay valid for the process lifetime.
  static constexpr int BlockSites = 64;
  static constexpr int MaxBlocks = 64;
  static constexpr int MaxSites = BlockSites * MaxBlocks; ///< Hard cap: 4096.

  static Profiler &get();

  /// Arms / disarms every hook. Enable is idempotent; disable leaves the
  /// recorded data in place for snapshot()/jsonDump().
  void enable();
  void disable();
  bool enabled() const;

  /// Drops all recorded data (shards, merged table, live-pin table).
  /// Recording threads must be quiescent (outside Runtime::run).
  void reset();

  /// Folds every worker shard into the merged table. Called by
  /// rt::Runtime::endRun at quiescence; cheap no-op when nothing recorded.
  void mergeThreadShards();

  /// mergeThreadShards() + a copy of every site with recorded events,
  /// sorted by attributed bytes (then events) descending.
  std::vector<ProfileSiteSnap> snapshot();

  /// Pins recorded by notePin and not yet released by noteUnpin.
  int64_t livePinCount() const;
  int64_t livePinBytes() const;

  /// Registered sites / registrations refused at the MaxSites hard cap.
  int siteCount() const;
  int64_t sitesDropped() const {
    return SitesDropped.load(std::memory_order_relaxed);
  }

  /// The merged profile as a schema-versioned JSON document.
  std::string jsonDump();

  /// Output path for env-driven flushes ("" = explicit only).
  const std::string &configuredPath() const { return Path; }
  void setConfiguredPath(std::string P) { Path = std::move(P); }

  // Recording slow paths — call through the obs::profile* inline gates.
  void noteEvent(ProfileSite &S, int64_t Bytes, uint32_t Depth,
                 int64_t DurNs = -1);
  void notePin(ProfileSite *S, const void *Obj, int64_t Bytes, uint32_t Depth);
  void noteUnpin(const void *Obj, int64_t Bytes, uint32_t Depth);

  // Internal: site registration (ProfileSite constructor).
  int registerSite(ProfileSite *S);

private:
  Profiler() = default;

  struct SiteCell {
    std::atomic<int64_t> Events{0};
    std::atomic<int64_t> Bytes{0};
    std::atomic<int64_t> Depth[ProfileSiteSnap::DepthBuckets] = {};
    std::atomic<int64_t> Dur[ProfileSiteSnap::DurBuckets] = {};
    std::atomic<int64_t> DurCount{0};
    std::atomic<int64_t> DurSumNs{0};
  };

  /// Block-growable site-cell storage: MaxBlocks lazily-allocated arrays
  /// of BlockSites cells each. Blocks are published with a release CAS and
  /// read with acquire loads, so any thread that learns a site index can
  /// safely reach its cell; blocks are never freed before the table dies.
  struct CellTable {
    std::atomic<SiteCell *> Blocks[MaxBlocks] = {};

    ~CellTable();
    /// The cell for \p Idx, allocating its block on first touch.
    SiteCell *cell(int Idx);
    /// The cell for \p Idx, or null when its block was never allocated
    /// (no recording ever touched it) — for snapshot/merge/reset walks.
    SiteCell *peek(int Idx) const;
  };

  /// One worker/thread's private accumulator. Relaxed atomics so the
  /// quiescent merge is race-free under TSan without locking the hot path
  /// (the owner is the only writer).
  struct Shard {
    CellTable Cells;
  };

  struct PinRec {
    int32_t SiteIdx = -1;
    int64_t TimeNs = 0;
    int64_t Bytes = 0;
  };

  /// The live-pin table, sharded by object address. Bucket mutexes are
  /// leaves: they nest under the heap PinLocks the pin/unpin paths already
  /// hold and never wrap another lock.
  static constexpr int PinShards = 16;
  struct PinBucket {
    mutable std::mutex Mu;
    std::unordered_map<const void *, PinRec> Live;
  };

  static thread_local Shard *TlsShard;

  Shard *threadShard();
  PinBucket &bucketOf(const void *Obj) {
    return PinTable[(reinterpret_cast<uintptr_t>(Obj) >> 4) % PinShards];
  }
  void mergeShardsLocked();

  mutable std::mutex Mu;
  std::vector<ProfileSite *> Sites;          ///< By index; static lifetime.
  std::vector<std::unique_ptr<Shard>> Shards; ///< All threads, ever.
  CellTable Merged;                           ///< Folded at quiescence.
  std::atomic<int64_t> SitesDropped{0};       ///< Registrations past MaxSites.
  PinBucket PinTable[PinShards];
  std::string Path;
};

namespace detail {
extern std::atomic<uint32_t> ProfileActiveFlag;
} // namespace detail

/// The single branch-predictable check every profiling hook compiles to.
inline bool profileEnabled() {
  return detail::ProfileActiveFlag.load(std::memory_order_relaxed) != 0;
}

/// Attributes one event (optionally with a duration) to \p S.
inline void profileEvent(ProfileSite &S, int64_t Bytes, uint32_t Depth,
                         int64_t DurNs = -1) {
  if (profileEnabled()) [[unlikely]]
    Profiler::get().noteEvent(S, Bytes, Depth, DurNs);
}

/// Records a new pin of \p Obj attributed to \p S (null: the generic
/// "hh.pin" site). Starts the pin-lifetime clock.
inline void profilePin(ProfileSite *S, const void *Obj, int64_t Bytes,
                       uint32_t Depth) {
  if (profileEnabled()) [[unlikely]]
    Profiler::get().notePin(S, Obj, Bytes, Depth);
}

/// Records the release of \p Obj's pin; the elapsed lifetime is attributed
/// to the site that created the pin.
inline void profileUnpin(const void *Obj, int64_t Bytes, uint32_t Depth = 0) {
  if (profileEnabled()) [[unlikely]]
    Profiler::get().noteUnpin(Obj, Bytes, Depth);
}

//===----------------------------------------------------------------------===//
// Heap-tree introspection
//===----------------------------------------------------------------------===//

/// Installs the live-heap-tree walker (rt::Runtime's constructor; pass an
/// empty function to uninstall on destruction). The provider must be
/// callable from any thread.
void setHeapTreeProvider(std::function<std::string()> Provider);

/// JSON dump of the live heap hierarchy via the registered provider.
/// Thread-safe (the provider cannot be uninstalled mid-call); returns a
/// valid empty-tree document when no runtime is alive.
std::string snapshotHeapTree();

} // namespace obs
} // namespace mpl

#endif // MPL_OBS_PROFILE_H
