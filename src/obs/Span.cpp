//===- obs/Span.cpp - Causal span ledger for the fork-join DAG ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Span.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

using namespace mpl;
using namespace mpl::obs;

namespace mpl {
namespace obs {
namespace detail {
std::atomic<uint32_t> SpanActiveFlag{0};
std::atomic<uint64_t> NextSpanId{1};
thread_local SpanTask *CurSpanTask = nullptr;
thread_local uint32_t CurPmlLoc = 0;
} // namespace detail
} // namespace obs
} // namespace mpl

namespace {

/// Records are capped per shard so a runaway workload bounds the ledger at
/// ~48 MB/thread; overflow is counted, and a run with drops reports an
/// unusable (Valid=false) DAG rather than a silently wrong critical path.
constexpr size_t MaxRecordsPerShard = size_t(1) << 20;
constexpr size_t MaxLineEntriesPerShard = 4096;

/// Thread-local shard handle, retired (not freed) on thread exit so a
/// post-join merge still sees the records.
struct SpanTlsSlot {
  void *S = nullptr; ///< SpanLedger::Shard*, opaque here.
  std::atomic<bool> *Retired = nullptr;
  ~SpanTlsSlot() {
    if (Retired)
      Retired->store(true, std::memory_order_release);
  }
};
thread_local SpanTlsSlot SpanTls;
thread_local int SpanTlsWorkerId = -1;

uint16_t sat16(uint32_t V) { return V > 0xffff ? 0xffff : uint16_t(V); }

/// Cumulative per-depth finished-task counters (SpanLedger::TaskDepthBuckets
/// buckets, last one saturating). Relaxed: sampled asynchronously by the
/// metrics thread, exactness per sample does not matter.
std::atomic<int64_t> TaskDepthCounts[SpanLedger::TaskDepthBuckets] = {};
uint8_t sat8(uint32_t V) { return V > 0xff ? 0xff : uint8_t(V); }

void appendJsonKV(std::string &Out, const char *Key, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"%s\":%.9f", Key, V);
  Out += Buf;
}

void appendJsonKV(std::string &Out, const char *Key, long long V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"%s\":%lld", Key, V);
  Out += Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// SpanLedger
//===----------------------------------------------------------------------===//

SpanLedger &SpanLedger::get() {
  static SpanLedger Instance;
  return Instance;
}

void SpanLedger::enable() {
  detail::SpanActiveFlag.store(1, std::memory_order_release);
}

void SpanLedger::disable() {
  detail::SpanActiveFlag.store(0, std::memory_order_release);
}

bool SpanLedger::enabled() const {
  return detail::SpanActiveFlag.load(std::memory_order_acquire) != 0;
}

SpanLedger::Shard *SpanLedger::threadShard() {
  if (SpanTls.S)
    return static_cast<Shard *>(SpanTls.S);
  std::lock_guard<std::mutex> G(Mu);
  auto S = std::make_unique<Shard>();
  S->WorkerId = SpanTlsWorkerId >= 0 ? SpanTlsWorkerId : NextForeignWorker++;
  S->Recs.reserve(1024);
  SpanTls.S = S.get();
  SpanTls.Retired = &S->Retired;
  Shards.push_back(std::move(S));
  return static_cast<Shard *>(SpanTls.S);
}

void SpanLedger::labelThread(int Id) {
  SpanTlsWorkerId = Id;
  if (SpanTls.S)
    static_cast<Shard *>(SpanTls.S)->WorkerId = Id;
}

void SpanLedger::append(const SpanRecord &R) {
  Shard *S = threadShard();
  if (S->Recs.size() >= MaxRecordsPerShard) {
    ++S->Dropped;
    return;
  }
  S->Recs.push_back(R);
}

void SpanLedger::noteLineEvent(uint32_t Loc, bool Pin) {
  Shard *S = threadShard();
  if (S->LineEv.size() >= MaxLineEntriesPerShard &&
      S->LineEv.find(Loc) == S->LineEv.end())
    return;
  SpanLineStat &L = S->LineEv[Loc];
  if (Pin)
    ++L.Pins;
  else
    ++L.EmReads;
}

void SpanLedger::runBegin() {
  std::lock_guard<std::mutex> G(Mu);
  Shards.erase(std::remove_if(Shards.begin(), Shards.end(),
                              [](const std::unique_ptr<Shard> &S) {
                                return S->Retired.load(
                                    std::memory_order_acquire);
                              }),
               Shards.end());
  for (auto &S : Shards) {
    S->Recs.clear();
    S->LineEv.clear();
    S->Dropped = 0;
  }
  detail::NextSpanId.store(1, std::memory_order_relaxed);
  RunBaseNs.store(nowNs(), std::memory_order_relaxed);
}

void SpanLedger::runEnd(double WorkSec, double SpanSec) {
  std::lock_guard<std::mutex> G(Mu);

  SpanRunSummary Sum;
  Sum.SchedWorkSec = WorkSec;
  Sum.SchedSpanSec = SpanSec;

  // Gather (record, worker) across shards and merge the line-event maps.
  struct Rec {
    SpanRecord R;
    int Worker;
  };
  std::vector<Rec> Recs;
  std::unordered_map<uint32_t, SpanLineStat> Lines;
  for (const auto &S : Shards) {
    Sum.Dropped += static_cast<int64_t>(S->Dropped);
    for (const SpanRecord &R : S->Recs)
      Recs.push_back({R, S->WorkerId});
    for (const auto &KV : S->LineEv) {
      SpanLineStat &L = Lines[KV.first];
      L.EmReads += KV.second.EmReads;
      L.Pins += KV.second.Pins;
    }
  }

  Sum.Tasks = static_cast<int64_t>(Recs.size());
  int64_t Base = RunBaseNs.load(std::memory_order_relaxed);

  // Index by id; find the root; collect children per parent.
  std::unordered_map<uint64_t, size_t> ById;
  ById.reserve(Recs.size() * 2);
  for (size_t I = 0; I < Recs.size(); ++I)
    ById.emplace(Recs[I].R.Id, I);

  size_t Root = Recs.size();
  std::vector<std::vector<size_t>> Children(Recs.size());
  bool Broken = Sum.Dropped > 0;
  for (size_t I = 0; I < Recs.size(); ++I) {
    const SpanRecord &R = Recs[I].R;
    if (R.Parent == ~uint64_t(0)) {
      if (Root != Recs.size())
        Broken = true; // Two roots: shards from different runs mixed.
      Root = I;
      continue;
    }
    auto It = ById.find(R.Parent);
    if (It == ById.end()) {
      Broken = true; // Parent record missing (dropped).
      continue;
    }
    Children[It->second].push_back(I);
  }
  for (auto &C : Children)
    std::sort(C.begin(), C.end(),
              [&](size_t A, size_t B) { return Recs[A].R.Id < Recs[B].R.Id; });

  int64_t TotalSelf = 0, TotalEm = 0, TotalPins = 0;
  for (const Rec &R : Recs) {
    TotalSelf += R.R.SelfNs;
    TotalEm += R.R.EmReads;
    TotalPins += R.R.Pins;
  }
  Sum.LedgerWorkSec = static_cast<double>(TotalSelf) * 1e-9;
  Sum.EmReads = TotalEm;
  Sum.PinEvents = TotalPins;

  std::vector<int64_t> Cp(Recs.size(), 0);
  std::vector<char> OnCp(Recs.size(), 0);
  if (Root != Recs.size() && !Broken) {
    // CP(T) = Self(T) + sum over fork pairs max(CP(a), CP(b)), computed
    // with an explicit post-order stack (recursion depth is the DAG depth,
    // which fib-style workloads make thousands deep).
    std::vector<std::pair<size_t, size_t>> Stack; // (node, next child pos)
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[N, Pos] = Stack.back();
      if (Pos < Children[N].size()) {
        size_t C = Children[N][Pos++];
        Stack.emplace_back(C, 0);
        continue;
      }
      int64_t V = Recs[N].R.SelfNs;
      const auto &Cs = Children[N];
      for (size_t I = 0; I + 1 < Cs.size(); I += 2)
        V += std::max(Cp[Cs[I]], Cp[Cs[I + 1]]);
      if (Cs.size() % 2 != 0) // Unpaired child: count it (defensive).
        V += Cp[Cs.back()];
      Cp[N] = V;
      Stack.pop_back();
    }
    Sum.CriticalPathSec = static_cast<double>(Cp[Root]) * 1e-9;

    // Winner tree: the root is on the CP; for each fork pair of an on-CP
    // task the child with the larger CP is on it too.
    std::vector<size_t> Mark;
    Mark.push_back(Root);
    while (!Mark.empty()) {
      size_t N = Mark.back();
      Mark.pop_back();
      OnCp[N] = 1;
      const auto &Cs = Children[N];
      for (size_t I = 0; I + 1 < Cs.size(); I += 2)
        Mark.push_back(Cp[Cs[I]] >= Cp[Cs[I + 1]] ? Cs[I] : Cs[I + 1]);
      if (Cs.size() % 2 != 0)
        Mark.push_back(Cs.back());
    }
    Sum.Valid = true;
  }

  // Per-line self/CP-self/task aggregates from the records themselves.
  for (size_t I = 0; I < Recs.size(); ++I) {
    const SpanRecord &R = Recs[I].R;
    uint32_t Loc = (uint32_t(R.SrcLine) << 8) | R.SrcCol;
    SpanLineStat &L = Lines[Loc];
    L.SelfNs += R.SelfNs;
    if (OnCp[I])
      L.CpSelfNs += R.SelfNs;
    ++L.Tasks;
  }

  // Flatten tasks sorted by start time (root first: it started earliest).
  std::vector<size_t> Order(Recs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Recs[A].R.StartNs < Recs[B].R.StartNs;
  });
  Sum.AllTasks.reserve(Recs.size());
  for (size_t I : Order) {
    const SpanRecord &R = Recs[I].R;
    SpanTaskOut T;
    T.Id = R.Id;
    T.Parent = R.Parent;
    T.StartNs = R.StartNs - Base;
    T.StopNs = R.StopNs - Base;
    T.SelfNs = R.SelfNs;
    T.Worker = Recs[I].Worker;
    if (R.Parent != ~uint64_t(0)) {
      auto It = ById.find(R.Parent);
      T.Stolen = It != ById.end() && Recs[It->second].Worker != Recs[I].Worker;
      if (T.Stolen)
        ++Sum.Stolen;
    }
    T.OnCriticalPath = OnCp[I] != 0;
    T.EmReads = R.EmReads;
    T.Pins = R.Pins;
    T.SrcLine = R.SrcLine;
    T.SrcCol = R.SrcCol;
    T.HeapDepth = R.HeapDepth;
    Sum.AllTasks.push_back(T);
    if (T.OnCriticalPath)
      Sum.CriticalPath.push_back(T.Id);
  }

  Sum.Lines.assign(Lines.begin(), Lines.end());
  std::sort(Sum.Lines.begin(), Sum.Lines.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  LastRun = std::move(Sum);
}

SpanRunSummary SpanLedger::lastRun() const {
  std::lock_guard<std::mutex> G(Mu);
  return LastRun;
}

void SpanLedger::setConfiguredPath(const std::string &P) {
  std::lock_guard<std::mutex> G(Mu);
  Path = P;
}

std::string SpanLedger::configuredPath() const {
  std::lock_guard<std::mutex> G(Mu);
  return Path;
}

void obs::detail::finishTask(const SpanTask &T, int64_t StopNs) {
  SpanRecord R;
  R.Id = T.Id;
  R.Parent = T.Parent;
  R.StartNs = T.StartNs;
  R.StopNs = StopNs;
  R.SelfNs = T.SelfNs;
  R.EmReads = sat16(T.EmReads);
  R.Pins = sat16(T.Pins);
  R.SrcLine = uint16_t(T.Loc >> 8);
  R.SrcCol = uint8_t(T.Loc & 0xff);
  R.HeapDepth = sat8(T.HeapDepth);
  uint32_t B = std::min<uint32_t>(T.HeapDepth, SpanLedger::TaskDepthBuckets - 1);
  TaskDepthCounts[B].fetch_add(1, std::memory_order_relaxed);
  SpanLedger::get().append(R);
}

std::vector<int64_t> SpanLedger::taskDepthHistogram() {
  std::vector<int64_t> H(TaskDepthBuckets, 0);
  int Last = -1;
  for (int B = 0; B < TaskDepthBuckets; ++B) {
    H[static_cast<size_t>(B)] =
        TaskDepthCounts[B].load(std::memory_order_relaxed);
    if (H[static_cast<size_t>(B)] != 0)
      Last = B;
  }
  H.resize(static_cast<size_t>(Last + 1));
  return H;
}

//===----------------------------------------------------------------------===//
// Exports
//===----------------------------------------------------------------------===//

std::string SpanRunSummary::toJson() const {
  std::string Out;
  Out.reserve(1024 + AllTasks.size() * 160);
  Out += "{\"schema\":\"mpl-spans/1\",\n \"sched\":{";
  appendJsonKV(Out, "work_s", SchedWorkSec);
  Out += ",";
  appendJsonKV(Out, "span_s", SchedSpanSec);
  Out += "},\n \"ledger\":{";
  appendJsonKV(Out, "valid", static_cast<long long>(Valid ? 1 : 0));
  Out += ",";
  appendJsonKV(Out, "tasks", static_cast<long long>(Tasks));
  Out += ",";
  appendJsonKV(Out, "stolen", static_cast<long long>(Stolen));
  Out += ",";
  appendJsonKV(Out, "dropped", static_cast<long long>(Dropped));
  Out += ",";
  appendJsonKV(Out, "work_s", LedgerWorkSec);
  Out += ",";
  appendJsonKV(Out, "critical_path_s", CriticalPathSec);
  Out += ",";
  appendJsonKV(Out, "agreement_pct", agreementPct());
  Out += ",";
  appendJsonKV(Out, "em_reads", static_cast<long long>(EmReads));
  Out += ",";
  appendJsonKV(Out, "pins", static_cast<long long>(PinEvents));
  Out += "},\n \"lines\":[";
  bool First = true;
  for (const auto &KV : Lines) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {";
    appendJsonKV(Out, "line", static_cast<long long>(KV.first >> 8));
    Out += ",";
    appendJsonKV(Out, "col", static_cast<long long>(KV.first & 0xff));
    Out += ",";
    appendJsonKV(Out, "em_reads", static_cast<long long>(KV.second.EmReads));
    Out += ",";
    appendJsonKV(Out, "pins", static_cast<long long>(KV.second.Pins));
    Out += ",";
    appendJsonKV(Out, "tasks", static_cast<long long>(KV.second.Tasks));
    Out += ",";
    appendJsonKV(Out, "self_s", static_cast<double>(KV.second.SelfNs) * 1e-9);
    Out += ",";
    appendJsonKV(Out, "cp_self_s",
                 static_cast<double>(KV.second.CpSelfNs) * 1e-9);
    Out += "}";
  }
  Out += "],\n \"critical_path\":[";
  First = true;
  for (uint64_t Id : CriticalPath) {
    if (!First)
      Out += ",";
    First = false;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(Id));
    Out += Buf;
  }
  Out += "],\n \"tasks\":[";
  First = true;
  for (const SpanTaskOut &T : AllTasks) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {";
    appendJsonKV(Out, "id", static_cast<long long>(T.Id));
    Out += ",";
    // ~0 (root) would not survive a double-typed JSON number; use -1.
    appendJsonKV(Out, "parent",
                 T.Parent == ~uint64_t(0) ? -1LL
                                          : static_cast<long long>(T.Parent));
    Out += ",";
    appendJsonKV(Out, "start_s", static_cast<double>(T.StartNs) * 1e-9);
    Out += ",";
    appendJsonKV(Out, "stop_s", static_cast<double>(T.StopNs) * 1e-9);
    Out += ",";
    appendJsonKV(Out, "self_s", static_cast<double>(T.SelfNs) * 1e-9);
    Out += ",";
    appendJsonKV(Out, "worker", static_cast<long long>(T.Worker));
    Out += ",";
    appendJsonKV(Out, "stolen", static_cast<long long>(T.Stolen ? 1 : 0));
    Out += ",";
    appendJsonKV(Out, "on_cp",
                 static_cast<long long>(T.OnCriticalPath ? 1 : 0));
    Out += ",";
    appendJsonKV(Out, "line", static_cast<long long>(T.SrcLine));
    Out += ",";
    appendJsonKV(Out, "col", static_cast<long long>(T.SrcCol));
    Out += ",";
    appendJsonKV(Out, "depth", static_cast<long long>(T.HeapDepth));
    Out += ",";
    appendJsonKV(Out, "em_reads", static_cast<long long>(T.EmReads));
    Out += ",";
    appendJsonKV(Out, "pins", static_cast<long long>(T.Pins));
    Out += "}";
  }
  Out += "]}\n";
  return Out;
}

std::string SpanRunSummary::summaryText() const {
  char Buf[256];
  std::string Out;
  if (!Valid && Tasks == 0) {
    Out = "spans: no run recorded (is the ledger armed? MPL_SPANS=1)\n";
    return Out;
  }
  std::snprintf(Buf, sizeof(Buf),
                "spans: %lld tasks (%lld stolen), ledger work %.3f ms, "
                "critical path %.3f ms (%.1f%% of work)\n",
                static_cast<long long>(Tasks), static_cast<long long>(Stolen),
                LedgerWorkSec * 1e3, CriticalPathSec * 1e3,
                LedgerWorkSec > 0 ? 100.0 * CriticalPathSec / LedgerWorkSec
                                  : 0.0);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "ledger CP vs scheduler S: %+.2f%% (S = %.3f ms)%s\n",
                agreementPct(), SchedSpanSec * 1e3,
                Valid ? "" : "  [DAG incomplete: records dropped]");
  Out += Buf;
  if (EmReads > 0 || PinEvents > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "em events: %lld entangled reads, %lld pins\n",
                  static_cast<long long>(EmReads),
                  static_cast<long long>(PinEvents));
    Out += Buf;
  }
  // Top lines by entangled reads, then by CP self time.
  std::vector<std::pair<uint32_t, SpanLineStat>> Sorted(Lines.begin(),
                                                        Lines.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second.EmReads != B.second.EmReads)
      return A.second.EmReads > B.second.EmReads;
    return A.second.CpSelfNs > B.second.CpSelfNs;
  });
  size_t Shown = 0;
  for (const auto &KV : Sorted) {
    if (Shown >= 5)
      break;
    if (KV.first == 0 && KV.second.EmReads == 0 && KV.second.Pins == 0)
      continue; // Skip the "no location" bucket unless it has em events.
    std::snprintf(Buf, sizeof(Buf),
                  "  L%u:%u  em_reads=%lld pins=%lld tasks=%lld "
                  "cp_self=%.3f ms\n",
                  KV.first >> 8, KV.first & 0xff,
                  static_cast<long long>(KV.second.EmReads),
                  static_cast<long long>(KV.second.Pins),
                  static_cast<long long>(KV.second.Tasks),
                  static_cast<double>(KV.second.CpSelfNs) * 1e-6);
    Out += Buf;
    ++Shown;
  }
  return Out;
}
