//===- obs/Profile.cpp - Site-attributed entanglement profiler -----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>

namespace mpl {
namespace obs {

namespace detail {
std::atomic<uint32_t> ProfileActiveFlag{0};
} // namespace detail

/// Pin lifetimes across every site, alongside gc.pause.hist.ns and
/// steal.latency.ns in the global histogram registry (so the metrics
/// exporters pick it up with no extra wiring).
static Histogram &pinLifetimeHist() {
  static Histogram H("em.pin.lifetime.ns");
  return H;
}

static std::string defaultSiteName(const char *File, int Line) {
  const char *Base = File;
  for (const char *P = File; *P; ++P)
    if (*P == '/' || *P == '\\')
      Base = P + 1;
  return std::string(Base) + ":" + std::to_string(Line);
}

ProfileSite::ProfileSite(const char *File, int Line, const char *Name)
    : NameStr(Name ? std::string(Name) : defaultSiteName(File, Line)),
      File(File), Line(Line), Index(Profiler::get().registerSite(this)) {}

Profiler &Profiler::get() {
  static Profiler P;
  return P;
}

int Profiler::registerSite(ProfileSite *S) {
  std::lock_guard<std::mutex> G(Mu);
  if (Sites.size() >= static_cast<size_t>(MaxSites)) {
    SitesDropped.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  Sites.push_back(S);
  return static_cast<int>(Sites.size()) - 1;
}

void Profiler::enable() {
  detail::ProfileActiveFlag.store(1, std::memory_order_relaxed);
}

void Profiler::disable() {
  detail::ProfileActiveFlag.store(0, std::memory_order_relaxed);
}

bool Profiler::enabled() const { return profileEnabled(); }

/// TLS shard handle. The shard itself is owned by the Profiler (threads
/// come and go across Runtimes; shards persist so a quiescent merge sees
/// every recording that ever happened).
thread_local Profiler::Shard *Profiler::TlsShard = nullptr;

Profiler::CellTable::~CellTable() {
  for (auto &B : Blocks)
    delete[] B.load(std::memory_order_relaxed);
}

Profiler::SiteCell *Profiler::CellTable::cell(int Idx) {
  std::atomic<SiteCell *> &Slot = Blocks[Idx / BlockSites];
  SiteCell *Blk = Slot.load(std::memory_order_acquire);
  if (!Blk) {
    SiteCell *Fresh = new SiteCell[BlockSites];
    if (Slot.compare_exchange_strong(Blk, Fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      Blk = Fresh;
    else
      delete[] Fresh; // Lost the race; another thread published first.
  }
  return &Blk[Idx % BlockSites];
}

Profiler::SiteCell *Profiler::CellTable::peek(int Idx) const {
  SiteCell *Blk = Blocks[Idx / BlockSites].load(std::memory_order_acquire);
  return Blk ? &Blk[Idx % BlockSites] : nullptr;
}

namespace {
void zeroCell(std::atomic<int64_t> &A) {
  A.store(0, std::memory_order_relaxed);
}
} // namespace

Profiler::Shard *Profiler::threadShard() {
  std::lock_guard<std::mutex> G(Mu);
  Shards.push_back(std::make_unique<Shard>());
  return Shards.back().get();
}

void Profiler::noteEvent(ProfileSite &S, int64_t Bytes, uint32_t Depth,
                         int64_t DurNs) {
  int Idx = S.index();
  if (Idx < 0)
    return;
  if (!TlsShard)
    TlsShard = threadShard();
  SiteCell &C = *TlsShard->Cells.cell(Idx);
  C.Events.fetch_add(1, std::memory_order_relaxed);
  C.Bytes.fetch_add(Bytes, std::memory_order_relaxed);
  int DB = std::min<uint32_t>(Depth, ProfileSiteSnap::DepthBuckets - 1);
  C.Depth[DB].fetch_add(1, std::memory_order_relaxed);
  if (DurNs >= 0) {
    int B = std::min(Histogram::bucketOf(DurNs),
                     ProfileSiteSnap::DurBuckets - 1);
    C.Dur[B].fetch_add(1, std::memory_order_relaxed);
    C.DurCount.fetch_add(1, std::memory_order_relaxed);
    C.DurSumNs.fetch_add(DurNs, std::memory_order_relaxed);
  }
}

void Profiler::notePin(ProfileSite *S, const void *Obj, int64_t Bytes,
                       uint32_t Depth) {
  if (!S)
    S = &MPL_SITE("hh.pin");
  noteEvent(*S, Bytes, Depth);
  PinBucket &B = bucketOf(Obj);
  std::lock_guard<std::mutex> G(B.Mu);
  B.Live[Obj] = PinRec{static_cast<int32_t>(S->index()), nowNs(), Bytes};
}

void Profiler::noteUnpin(const void *Obj, int64_t Bytes, uint32_t Depth) {
  PinRec R;
  {
    PinBucket &B = bucketOf(Obj);
    std::lock_guard<std::mutex> G(B.Mu);
    auto It = B.Live.find(Obj);
    if (It == B.Live.end())
      return; // Pinned before the profiler was armed; nothing to attribute.
    R = It->second;
    B.Live.erase(It);
  }
  int64_t LifeNs = std::max<int64_t>(0, nowNs() - R.TimeNs);
  pinLifetimeHist().record(LifeNs);
  if (R.SiteIdx < 0)
    return;
  if (!TlsShard)
    TlsShard = threadShard();
  SiteCell &C = *TlsShard->Cells.cell(R.SiteIdx);
  int B = std::min(Histogram::bucketOf(LifeNs), ProfileSiteSnap::DurBuckets - 1);
  C.Dur[B].fetch_add(1, std::memory_order_relaxed);
  C.DurCount.fetch_add(1, std::memory_order_relaxed);
  C.DurSumNs.fetch_add(LifeNs, std::memory_order_relaxed);
  (void)Bytes;
  (void)Depth;
}

void Profiler::mergeShardsLocked() {
  auto Fold = [](std::atomic<int64_t> &Dst, std::atomic<int64_t> &Src) {
    int64_t V = Src.exchange(0, std::memory_order_relaxed);
    if (V)
      Dst.fetch_add(V, std::memory_order_relaxed);
  };
  // Only blocks the shard actually touched exist; merging one allocates
  // the matching block in the merged table on demand.
  for (auto &Sh : Shards) {
    for (int B = 0; B < MaxBlocks; ++B) {
      SiteCell *SrcBlk = Sh->Cells.Blocks[B].load(std::memory_order_acquire);
      if (!SrcBlk)
        continue;
      for (int I = 0; I < BlockSites; ++I) {
        SiteCell &Src = SrcBlk[I];
        SiteCell &Dst = *Merged.cell(B * BlockSites + I);
        Fold(Dst.Events, Src.Events);
        Fold(Dst.Bytes, Src.Bytes);
        for (int D = 0; D < ProfileSiteSnap::DepthBuckets; ++D)
          Fold(Dst.Depth[D], Src.Depth[D]);
        for (int D = 0; D < ProfileSiteSnap::DurBuckets; ++D)
          Fold(Dst.Dur[D], Src.Dur[D]);
        Fold(Dst.DurCount, Src.DurCount);
        Fold(Dst.DurSumNs, Src.DurSumNs);
      }
    }
  }
}

void Profiler::mergeThreadShards() {
  std::lock_guard<std::mutex> G(Mu);
  mergeShardsLocked();
}

void Profiler::reset() {
  std::lock_guard<std::mutex> G(Mu);
  auto ZeroTable = [](CellTable &T) {
    for (int B = 0; B < MaxBlocks; ++B) {
      SiteCell *Blk = T.Blocks[B].load(std::memory_order_acquire);
      if (!Blk)
        continue;
      for (int I = 0; I < BlockSites; ++I) {
        SiteCell &C = Blk[I];
        zeroCell(C.Events);
        zeroCell(C.Bytes);
        for (auto &A : C.Depth)
          zeroCell(A);
        for (auto &A : C.Dur)
          zeroCell(A);
        zeroCell(C.DurCount);
        zeroCell(C.DurSumNs);
      }
    }
  };
  for (auto &Sh : Shards)
    ZeroTable(Sh->Cells);
  ZeroTable(Merged);
  for (PinBucket &B : PinTable) {
    std::lock_guard<std::mutex> BG(B.Mu);
    B.Live.clear();
  }
}

std::vector<ProfileSiteSnap> Profiler::snapshot() {
  std::lock_guard<std::mutex> G(Mu);
  mergeShardsLocked();
  std::vector<ProfileSiteSnap> Out;
  for (size_t I = 0; I < Sites.size(); ++I) {
    SiteCell *Cp = Merged.peek(static_cast<int>(I));
    if (!Cp)
      continue; // Block never touched: no recordings for this site range.
    SiteCell &C = *Cp;
    int64_t Events = C.Events.load(std::memory_order_relaxed);
    if (Events == 0)
      continue;
    ProfileSiteSnap S;
    S.Name = Sites[I]->name();
    S.File = Sites[I]->file();
    S.Line = Sites[I]->line();
    S.Events = Events;
    S.Bytes = C.Bytes.load(std::memory_order_relaxed);
    for (int D = 0; D < ProfileSiteSnap::DepthBuckets; ++D)
      S.Depth[D] = C.Depth[D].load(std::memory_order_relaxed);
    for (int D = 0; D < ProfileSiteSnap::DurBuckets; ++D)
      S.Dur[D] = C.Dur[D].load(std::memory_order_relaxed);
    S.DurCount = C.DurCount.load(std::memory_order_relaxed);
    S.DurSumNs = C.DurSumNs.load(std::memory_order_relaxed);
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end(),
            [](const ProfileSiteSnap &A, const ProfileSiteSnap &B) {
              if (A.Bytes != B.Bytes)
                return A.Bytes > B.Bytes;
              if (A.Events != B.Events)
                return A.Events > B.Events;
              return A.Name < B.Name;
            });
  return Out;
}

int64_t ProfileSiteSnap::durQuantileNs(double Q) const {
  if (DurCount <= 0)
    return 0;
  double Target = Q * static_cast<double>(DurCount);
  int64_t Seen = 0;
  for (int B = 0; B < DurBuckets; ++B) {
    Seen += Dur[B];
    if (static_cast<double>(Seen) >= Target)
      return B == 0 ? 0 : (static_cast<int64_t>(1) << B) - 1;
  }
  return DurSumNs;
}

int Profiler::siteCount() const {
  std::lock_guard<std::mutex> G(Mu);
  return static_cast<int>(Sites.size());
}

int64_t Profiler::livePinCount() const {
  int64_t N = 0;
  for (const PinBucket &B : PinTable) {
    std::lock_guard<std::mutex> G(B.Mu);
    N += static_cast<int64_t>(B.Live.size());
  }
  return N;
}

int64_t Profiler::livePinBytes() const {
  int64_t N = 0;
  for (const PinBucket &B : PinTable) {
    std::lock_guard<std::mutex> G(B.Mu);
    for (const auto &KV : B.Live)
      N += KV.second.Bytes;
  }
  return N;
}

std::string Profiler::jsonDump() {
  std::vector<ProfileSiteSnap> Snap = snapshot();
  std::string S;
  S += "{\"schema\":\"mpl-profile/1\",";
  S += "\"enabled\":" + std::string(enabled() ? "true" : "false") + ",";
  S += "\"leaked_pins\":" + std::to_string(livePinCount()) + ",";
  S += "\"leaked_bytes\":" + std::to_string(livePinBytes()) + ",";
  S += "\"sites_dropped\":" +
       std::to_string(SitesDropped.load(std::memory_order_relaxed)) + ",";
  S += "\"sites\":[";
  bool FirstSite = true;
  for (const ProfileSiteSnap &Row : Snap) {
    if (!FirstSite)
      S += ",";
    FirstSite = false;
    S += "{\"name\":\"" + json::escape(Row.Name) + "\",";
    S += "\"file\":\"" + json::escape(Row.File) + "\",";
    S += "\"line\":" + std::to_string(Row.Line) + ",";
    S += "\"events\":" + std::to_string(Row.Events) + ",";
    S += "\"bytes\":" + std::to_string(Row.Bytes) + ",";
    S += "\"depth_events\":{";
    bool FirstD = true;
    for (int D = 0; D < ProfileSiteSnap::DepthBuckets; ++D) {
      if (Row.Depth[D] == 0)
        continue;
      if (!FirstD)
        S += ",";
      FirstD = false;
      S += "\"" + std::to_string(D) + "\":" + std::to_string(Row.Depth[D]);
    }
    S += "},";
    S += "\"dur_ns\":{\"count\":" + std::to_string(Row.DurCount) + ",\"sum\":" +
         std::to_string(Row.DurSumNs) + ",\"p50\":" +
         std::to_string(Row.durQuantileNs(0.50)) + ",\"p95\":" +
         std::to_string(Row.durQuantileNs(0.95)) + ",\"p99\":" +
         std::to_string(Row.durQuantileNs(0.99)) + "}}";
  }
  S += "]}\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Heap-tree introspection
//===----------------------------------------------------------------------===//

namespace {
std::mutex HeapTreeMu;
std::function<std::string()> HeapTreeProvider;
} // namespace

void setHeapTreeProvider(std::function<std::string()> Provider) {
  std::lock_guard<std::mutex> G(HeapTreeMu);
  HeapTreeProvider = std::move(Provider);
}

std::string snapshotHeapTree() {
  // The lock is held across the provider call so a Runtime being destroyed
  // (which uninstalls the provider) blocks until an in-flight snapshot
  // finishes instead of racing it.
  std::lock_guard<std::mutex> G(HeapTreeMu);
  if (!HeapTreeProvider)
    return "{\"schema\":\"mpl-heap-tree/1\",\"live_heaps\":0,\"heaps\":[]}";
  return HeapTreeProvider();
}

} // namespace obs
} // namespace mpl
