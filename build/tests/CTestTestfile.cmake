# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[support_test]=] "/root/repo/build/tests/support_test")
set_tests_properties([=[support_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[sched_test]=] "/root/repo/build/tests/sched_test")
set_tests_properties([=[sched_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mm_test]=] "/root/repo/build/tests/mm_test")
set_tests_properties([=[mm_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[hh_test]=] "/root/repo/build/tests/hh_test")
set_tests_properties([=[hh_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[gc_test]=] "/root/repo/build/tests/gc_test")
set_tests_properties([=[gc_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_test]=] "/root/repo/build/tests/core_test")
set_tests_properties([=[core_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[workloads_test]=] "/root/repo/build/tests/workloads_test")
set_tests_properties([=[workloads_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[ops_test]=] "/root/repo/build/tests/ops_test")
set_tests_properties([=[ops_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[baseline_test]=] "/root/repo/build/tests/baseline_test")
set_tests_properties([=[baseline_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[pml_test]=] "/root/repo/build/tests/pml_test")
set_tests_properties([=[pml_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[em_test]=] "/root/repo/build/tests/em_test")
set_tests_properties([=[em_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[property_test]=] "/root/repo/build/tests/property_test")
set_tests_properties([=[property_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[stress_test]=] "/root/repo/build/tests/stress_test")
set_tests_properties([=[stress_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[samples_test]=] "/root/repo/build/tests/samples_test")
set_tests_properties([=[samples_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;mpl_add_test;/root/repo/tests/CMakeLists.txt;0;")
