file(REMOVE_RECURSE
  "CMakeFiles/pml_test.dir/pml_test.cpp.o"
  "CMakeFiles/pml_test.dir/pml_test.cpp.o.d"
  "pml_test"
  "pml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
