# Empty compiler generated dependencies file for pml_test.
# This may be replaced when dependencies are built.
