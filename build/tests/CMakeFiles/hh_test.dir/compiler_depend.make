# Empty compiler generated dependencies file for hh_test.
# This may be replaced when dependencies are built.
