file(REMOVE_RECURSE
  "CMakeFiles/hh_test.dir/hh_test.cpp.o"
  "CMakeFiles/hh_test.dir/hh_test.cpp.o.d"
  "hh_test"
  "hh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
