# Empty compiler generated dependencies file for pml_repl.
# This may be replaced when dependencies are built.
