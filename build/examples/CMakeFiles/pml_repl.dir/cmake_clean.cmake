file(REMOVE_RECURSE
  "CMakeFiles/pml_repl.dir/pml_repl.cpp.o"
  "CMakeFiles/pml_repl.dir/pml_repl.cpp.o.d"
  "pml_repl"
  "pml_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pml_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
