# Empty compiler generated dependencies file for pipeline_channels.
# This may be replaced when dependencies are built.
