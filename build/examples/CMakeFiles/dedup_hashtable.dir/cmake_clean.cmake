file(REMOVE_RECURSE
  "CMakeFiles/dedup_hashtable.dir/dedup_hashtable.cpp.o"
  "CMakeFiles/dedup_hashtable.dir/dedup_hashtable.cpp.o.d"
  "dedup_hashtable"
  "dedup_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
