# Empty dependencies file for dedup_hashtable.
# This may be replaced when dependencies are built.
