# Empty compiler generated dependencies file for mpl_workloads.
# This may be replaced when dependencies are built.
