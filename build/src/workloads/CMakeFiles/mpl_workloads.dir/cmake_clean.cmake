file(REMOVE_RECURSE
  "CMakeFiles/mpl_workloads.dir/Collections.cpp.o"
  "CMakeFiles/mpl_workloads.dir/Collections.cpp.o.d"
  "CMakeFiles/mpl_workloads.dir/Entangled.cpp.o"
  "CMakeFiles/mpl_workloads.dir/Entangled.cpp.o.d"
  "CMakeFiles/mpl_workloads.dir/Graph.cpp.o"
  "CMakeFiles/mpl_workloads.dir/Graph.cpp.o.d"
  "CMakeFiles/mpl_workloads.dir/Kernels.cpp.o"
  "CMakeFiles/mpl_workloads.dir/Kernels.cpp.o.d"
  "CMakeFiles/mpl_workloads.dir/Quickhull.cpp.o"
  "CMakeFiles/mpl_workloads.dir/Quickhull.cpp.o.d"
  "libmpl_workloads.a"
  "libmpl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
