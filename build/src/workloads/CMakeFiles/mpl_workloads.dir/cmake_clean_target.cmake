file(REMOVE_RECURSE
  "libmpl_workloads.a"
)
