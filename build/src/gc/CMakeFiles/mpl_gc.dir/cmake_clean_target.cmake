file(REMOVE_RECURSE
  "libmpl_gc.a"
)
