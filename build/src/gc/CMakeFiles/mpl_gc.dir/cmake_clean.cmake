file(REMOVE_RECURSE
  "CMakeFiles/mpl_gc.dir/Collector.cpp.o"
  "CMakeFiles/mpl_gc.dir/Collector.cpp.o.d"
  "libmpl_gc.a"
  "libmpl_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
