
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/Collector.cpp" "src/gc/CMakeFiles/mpl_gc.dir/Collector.cpp.o" "gcc" "src/gc/CMakeFiles/mpl_gc.dir/Collector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hh/CMakeFiles/mpl_hh.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/mpl_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
