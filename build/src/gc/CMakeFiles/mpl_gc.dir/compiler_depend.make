# Empty compiler generated dependencies file for mpl_gc.
# This may be replaced when dependencies are built.
