# Empty dependencies file for mpl_core.
# This may be replaced when dependencies are built.
