file(REMOVE_RECURSE
  "libmpl_core.a"
)
