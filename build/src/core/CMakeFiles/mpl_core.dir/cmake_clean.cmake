file(REMOVE_RECURSE
  "CMakeFiles/mpl_core.dir/Em.cpp.o"
  "CMakeFiles/mpl_core.dir/Em.cpp.o.d"
  "CMakeFiles/mpl_core.dir/Runtime.cpp.o"
  "CMakeFiles/mpl_core.dir/Runtime.cpp.o.d"
  "libmpl_core.a"
  "libmpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
