file(REMOVE_RECURSE
  "libmpl_support.a"
)
