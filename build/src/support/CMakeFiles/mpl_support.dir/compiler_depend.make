# Empty compiler generated dependencies file for mpl_support.
# This may be replaced when dependencies are built.
