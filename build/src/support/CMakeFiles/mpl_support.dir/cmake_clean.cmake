file(REMOVE_RECURSE
  "CMakeFiles/mpl_support.dir/Cli.cpp.o"
  "CMakeFiles/mpl_support.dir/Cli.cpp.o.d"
  "CMakeFiles/mpl_support.dir/Stats.cpp.o"
  "CMakeFiles/mpl_support.dir/Stats.cpp.o.d"
  "CMakeFiles/mpl_support.dir/Table.cpp.o"
  "CMakeFiles/mpl_support.dir/Table.cpp.o.d"
  "libmpl_support.a"
  "libmpl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
