# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sched")
subdirs("mm")
subdirs("hh")
subdirs("gc")
subdirs("core")
subdirs("workloads")
subdirs("baseline")
subdirs("pml")
