# Empty dependencies file for mpl_baseline.
# This may be replaced when dependencies are built.
