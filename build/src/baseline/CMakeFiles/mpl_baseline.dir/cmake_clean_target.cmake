file(REMOVE_RECURSE
  "libmpl_baseline.a"
)
