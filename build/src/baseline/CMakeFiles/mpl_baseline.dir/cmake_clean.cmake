file(REMOVE_RECURSE
  "CMakeFiles/mpl_baseline.dir/Native.cpp.o"
  "CMakeFiles/mpl_baseline.dir/Native.cpp.o.d"
  "libmpl_baseline.a"
  "libmpl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
