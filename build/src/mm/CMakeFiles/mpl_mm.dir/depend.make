# Empty dependencies file for mpl_mm.
# This may be replaced when dependencies are built.
