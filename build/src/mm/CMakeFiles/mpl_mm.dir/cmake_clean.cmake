file(REMOVE_RECURSE
  "CMakeFiles/mpl_mm.dir/Chunk.cpp.o"
  "CMakeFiles/mpl_mm.dir/Chunk.cpp.o.d"
  "libmpl_mm.a"
  "libmpl_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
