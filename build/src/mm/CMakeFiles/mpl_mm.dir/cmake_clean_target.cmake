file(REMOVE_RECURSE
  "libmpl_mm.a"
)
