
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pml/Compiler.cpp" "src/pml/CMakeFiles/mpl_pml.dir/Compiler.cpp.o" "gcc" "src/pml/CMakeFiles/mpl_pml.dir/Compiler.cpp.o.d"
  "/root/repo/src/pml/Lexer.cpp" "src/pml/CMakeFiles/mpl_pml.dir/Lexer.cpp.o" "gcc" "src/pml/CMakeFiles/mpl_pml.dir/Lexer.cpp.o.d"
  "/root/repo/src/pml/Parser.cpp" "src/pml/CMakeFiles/mpl_pml.dir/Parser.cpp.o" "gcc" "src/pml/CMakeFiles/mpl_pml.dir/Parser.cpp.o.d"
  "/root/repo/src/pml/Types.cpp" "src/pml/CMakeFiles/mpl_pml.dir/Types.cpp.o" "gcc" "src/pml/CMakeFiles/mpl_pml.dir/Types.cpp.o.d"
  "/root/repo/src/pml/Vm.cpp" "src/pml/CMakeFiles/mpl_pml.dir/Vm.cpp.o" "gcc" "src/pml/CMakeFiles/mpl_pml.dir/Vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mpl_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/hh/CMakeFiles/mpl_hh.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/mpl_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mpl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
