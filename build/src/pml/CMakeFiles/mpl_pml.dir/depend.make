# Empty dependencies file for mpl_pml.
# This may be replaced when dependencies are built.
