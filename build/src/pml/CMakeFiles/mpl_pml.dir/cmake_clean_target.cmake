file(REMOVE_RECURSE
  "libmpl_pml.a"
)
