file(REMOVE_RECURSE
  "CMakeFiles/mpl_pml.dir/Compiler.cpp.o"
  "CMakeFiles/mpl_pml.dir/Compiler.cpp.o.d"
  "CMakeFiles/mpl_pml.dir/Lexer.cpp.o"
  "CMakeFiles/mpl_pml.dir/Lexer.cpp.o.d"
  "CMakeFiles/mpl_pml.dir/Parser.cpp.o"
  "CMakeFiles/mpl_pml.dir/Parser.cpp.o.d"
  "CMakeFiles/mpl_pml.dir/Types.cpp.o"
  "CMakeFiles/mpl_pml.dir/Types.cpp.o.d"
  "CMakeFiles/mpl_pml.dir/Vm.cpp.o"
  "CMakeFiles/mpl_pml.dir/Vm.cpp.o.d"
  "libmpl_pml.a"
  "libmpl_pml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
