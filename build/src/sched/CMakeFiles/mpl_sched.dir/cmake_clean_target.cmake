file(REMOVE_RECURSE
  "libmpl_sched.a"
)
