# Empty dependencies file for mpl_sched.
# This may be replaced when dependencies are built.
