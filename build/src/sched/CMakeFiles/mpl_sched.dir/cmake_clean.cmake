file(REMOVE_RECURSE
  "CMakeFiles/mpl_sched.dir/Scheduler.cpp.o"
  "CMakeFiles/mpl_sched.dir/Scheduler.cpp.o.d"
  "libmpl_sched.a"
  "libmpl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
