file(REMOVE_RECURSE
  "libmpl_hh.a"
)
