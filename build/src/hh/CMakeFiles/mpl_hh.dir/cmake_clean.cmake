file(REMOVE_RECURSE
  "CMakeFiles/mpl_hh.dir/Heap.cpp.o"
  "CMakeFiles/mpl_hh.dir/Heap.cpp.o.d"
  "libmpl_hh.a"
  "libmpl_hh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_hh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
