# Empty dependencies file for mpl_hh.
# This may be replaced when dependencies are built.
