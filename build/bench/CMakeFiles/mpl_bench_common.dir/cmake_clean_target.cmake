file(REMOVE_RECURSE
  "../lib/libmpl_bench_common.a"
)
