file(REMOVE_RECURSE
  "../lib/libmpl_bench_common.a"
  "../lib/libmpl_bench_common.pdb"
  "CMakeFiles/mpl_bench_common.dir/Common.cpp.o"
  "CMakeFiles/mpl_bench_common.dir/Common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
