# Empty dependencies file for mpl_bench_common.
# This may be replaced when dependencies are built.
