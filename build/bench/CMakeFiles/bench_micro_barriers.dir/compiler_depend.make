# Empty compiler generated dependencies file for bench_micro_barriers.
# This may be replaced when dependencies are built.
