file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_barriers.dir/bench_micro_barriers.cpp.o"
  "CMakeFiles/bench_micro_barriers.dir/bench_micro_barriers.cpp.o.d"
  "bench_micro_barriers"
  "bench_micro_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
