file(REMOVE_RECURSE
  "CMakeFiles/bench_table_pml.dir/bench_table_pml.cpp.o"
  "CMakeFiles/bench_table_pml.dir/bench_table_pml.cpp.o.d"
  "bench_table_pml"
  "bench_table_pml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
