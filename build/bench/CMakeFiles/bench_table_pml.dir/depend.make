# Empty dependencies file for bench_table_pml.
# This may be replaced when dependencies are built.
