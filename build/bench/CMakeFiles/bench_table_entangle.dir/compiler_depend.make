# Empty compiler generated dependencies file for bench_table_entangle.
# This may be replaced when dependencies are built.
