file(REMOVE_RECURSE
  "CMakeFiles/bench_table_entangle.dir/bench_table_entangle.cpp.o"
  "CMakeFiles/bench_table_entangle.dir/bench_table_entangle.cpp.o.d"
  "bench_table_entangle"
  "bench_table_entangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_entangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
