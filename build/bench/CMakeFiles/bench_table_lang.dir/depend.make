# Empty dependencies file for bench_table_lang.
# This may be replaced when dependencies are built.
