file(REMOVE_RECURSE
  "CMakeFiles/bench_table_lang.dir/bench_table_lang.cpp.o"
  "CMakeFiles/bench_table_lang.dir/bench_table_lang.cpp.o.d"
  "bench_table_lang"
  "bench_table_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
