# Empty dependencies file for bench_table_space.
# This may be replaced when dependencies are built.
