# Empty dependencies file for bench_fig_speedup.
# This may be replaced when dependencies are built.
