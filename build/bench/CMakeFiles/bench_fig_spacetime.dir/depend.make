# Empty dependencies file for bench_fig_spacetime.
# This may be replaced when dependencies are built.
