//===- tests/mm_pressure_test.cpp - Memory-pressure governor --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The pressure ladder, end to end: the chunk free-list cap and trim(),
// fault-injected allocation failure recovering via retry, hard limits
// surfacing a recoverable mpl::OutOfMemoryError through Runtime::run (the
// process survives), emergency collection rescuing a limit breach, monotone
// pressure transitions under load, and the pinned-bytes gauge returning to
// zero once the task tree has fully joined.
//
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "mm/Chunk.h"
#include "mm/MemoryGovernor.h"
#include "support/Stats.h"
#include "workloads/Entangled.h"

#include <gtest/gtest.h>

#include <vector>

using namespace mpl;
using namespace mpl::ops;

namespace {

int64_t stat(const char *Name) { return StatRegistry::get().valueOf(Name); }

constexpr int64_t ChunkBytes = static_cast<int64_t>(Chunk::SizeBytes);

/// Saves/restores the process-wide governor configuration around each test
/// (the governor is a singleton, like the pool it governs) and starts from
/// an empty free list so byte arithmetic is exact.
class MmPressureTest : public ::testing::Test {
protected:
  void SetUp() override {
    Saved = MemoryGovernor::get().config();
    StatRegistry::get().resetAll();
    ChunkPool::get().trim(0);
  }

  void TearDown() override {
    chaos::disable();
    MemoryGovernor::get().configure(Saved);
    ChunkPool::get().trim(0);
  }

  rt::Config runtimeCfg(int Workers = 1) {
    rt::Config C;
    C.NumWorkers = Workers;
    C.Profile = false;
    return C;
  }

  MemoryGovernor::Config Saved;
};

//===----------------------------------------------------------------------===//
// Free-list bounding (trim + cache cap)
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, TrimReturnsFreeListToOs) {
  std::vector<Chunk *> Cs;
  for (int I = 0; I < 16; ++I)
    Cs.push_back(ChunkPool::get().acquire());
  for (Chunk *C : Cs)
    ChunkPool::get().release(C);
  EXPECT_EQ(ChunkPool::get().freeListBytes(), 16 * ChunkBytes);

  int64_t Trimmed = ChunkPool::get().trim(4 * Chunk::SizeBytes);
  EXPECT_EQ(Trimmed, 12 * ChunkBytes);
  EXPECT_EQ(ChunkPool::get().freeListBytes(), 4 * ChunkBytes);
  EXPECT_EQ(stat("mm.chunks.trimmed"), 12);

  EXPECT_EQ(ChunkPool::get().trim(0), 4 * ChunkBytes);
  EXPECT_EQ(ChunkPool::get().freeListBytes(), 0);
}

TEST_F(MmPressureTest, CacheCapBoundsFreeList) {
  MemoryGovernor::Config C = Saved;
  C.ChunkCacheBytes = 4 * ChunkBytes;
  MemoryGovernor::get().configure(C);

  std::vector<Chunk *> Cs;
  for (int I = 0; I < 16; ++I)
    Cs.push_back(ChunkPool::get().acquire());
  for (Chunk *Ch : Cs)
    ChunkPool::get().release(Ch);

  // Only the cap's worth stays cached; the rest went straight to the OS.
  EXPECT_EQ(ChunkPool::get().freeListBytes(), 4 * ChunkBytes);
  EXPECT_EQ(stat("mm.chunks.trimmed"), 12);
}

//===----------------------------------------------------------------------===//
// Fault-injected allocation failure (chaos::Fault::FailChunkAlloc)
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, FaultInjectedAllocFailureRecoversByRetry) {
  chaos::Config CC;
  CC.Seed = 42;
  CC.InjectFault = chaos::Fault::FailChunkAlloc;
  CC.FaultEveryN = 2; // Every other attempt fails; the retry succeeds.
  chaos::enable(CC);

  std::vector<Chunk *> Cs;
  for (int I = 0; I < 32; ++I) {
    Chunk *Ch = nullptr;
    EXPECT_NO_THROW(Ch = ChunkPool::get().acquire());
    ASSERT_NE(Ch, nullptr);
    Cs.push_back(Ch);
  }
  int64_t Injected = chaos::totals().FaultsInjected;
  chaos::disable();
  for (Chunk *Ch : Cs)
    ChunkPool::get().release(Ch);

  EXPECT_GT(Injected, 0) << "the fault must actually have fired";
  EXPECT_GT(stat("mm.alloc.retries"), 0)
      << "failed attempts must go through the recovery ladder";
  EXPECT_EQ(stat("mm.oom.raised"), 0)
      << "every-other-attempt faults must never exhaust the ladder";
}

//===----------------------------------------------------------------------===//
// Hard limit: recoverable OutOfMemoryError, not abort
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, HardLimitRaisesRecoverableOomWithDiagnostics) {
  const int64_t Base = ChunkPool::get().outstandingBytes();
  MemoryGovernor::Config C = Saved;
  C.LimitBytes = Base + 4 * ChunkBytes;
  C.RetryBackoffUs = 1; // Keep the doomed retries fast.
  MemoryGovernor::get().configure(C);

  std::vector<Chunk *> Cs;
  bool Caught = false;
  try {
    for (int I = 0; I < 8; ++I)
      Cs.push_back(ChunkPool::get().acquire());
  } catch (const OutOfMemoryError &E) {
    Caught = true;
    EXPECT_EQ(E.requestedBytes(), Chunk::SizeBytes);
    EXPECT_EQ(E.limitBytes(), C.LimitBytes);
    EXPECT_GE(E.outstandingBytes() + static_cast<int64_t>(E.requestedBytes()),
              C.LimitBytes);
    EXPECT_NE(std::string(E.what()).find("out of memory"), std::string::npos)
        << E.what();
  }
  EXPECT_TRUE(Caught) << "the 5th chunk must breach the 4-chunk limit";
  EXPECT_EQ(Cs.size(), 4u);
  EXPECT_EQ(MemoryGovernor::get().pressure(), Pressure::Critical);
  EXPECT_GT(stat("mm.oom.raised"), 0);

  // Recoverable: releasing memory lowers pressure and the pool serves
  // allocations again without any reconfiguration.
  for (Chunk *Ch : Cs)
    ChunkPool::get().release(Ch);
  ChunkPool::get().trim(0);
  EXPECT_EQ(MemoryGovernor::get().pressure(), Pressure::None);
  Chunk *Again = ChunkPool::get().acquire();
  ASSERT_NE(Again, nullptr);
  ChunkPool::get().release(Again);
}

TEST_F(MmPressureTest, OomPropagatesThroughRuntimeRunAndProcessSurvives) {
  const int64_t Base = ChunkPool::get().outstandingBytes();
  MemoryGovernor::Config C = Saved;
  C.LimitBytes = Base + (int64_t(1) << 20); // 1 MiB of headroom.
  C.RetryBackoffUs = 1;
  MemoryGovernor::get().configure(C);

  rt::Runtime R(runtimeCfg());
  // Live data exceeding the limit: emergency collection cannot shed it, so
  // the strand must fail with a recoverable error.
  EXPECT_THROW(R.run([&] {
    Local A(newArray(64 * 1024, boxInt(1)));
    Local B(newArray(64 * 1024, boxInt(2)));
    Local D(newArray(64 * 1024, boxInt(3)));
    Local E(newArray(64 * 1024, boxInt(4)));
  }),
               OutOfMemoryError);

  // The failed run's heaps were torn down; the Runtime remains usable for
  // a run that fits under the same limit.
  int64_t Got = 0;
  R.run([&] {
    Local Box(newRef(boxInt(9)));
    Got = unboxInt(refGet(Box.get()));
  });
  EXPECT_EQ(Got, 9);
}

//===----------------------------------------------------------------------===//
// Emergency collection rescues a limit breach
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, EmergencyGcRescuesLimitBreach) {
  const int64_t Base = ChunkPool::get().outstandingBytes();
  MemoryGovernor::Config C = Saved;
  C.LimitBytes = Base + (int64_t(1) << 20); // 1 MiB of headroom.
  MemoryGovernor::get().configure(C);

  rt::Config RC = runtimeCfg();
  RC.GcMinBytes = int64_t(1) << 30; // The normal policy never collects...
  rt::Runtime R(RC);
  R.run([&] {
    // ...yet several MiB of pure garbage fit under a 1 MiB limit, because
    // the governor forces collections when admission fails.
    for (int64_t I = 0; I < 100000; ++I) {
      Object *O = newRecord(0, {boxInt(I), boxInt(I + 1)});
      (void)O;
    }
  });
  EXPECT_GT(stat("mm.emergency.gcs"), 0)
      << "only the governor could have collected here";
  EXPECT_EQ(stat("mm.oom.raised"), 0);
}

//===----------------------------------------------------------------------===//
// Pressure-level transitions
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, PressureLevelsMonotoneUnderLoad) {
  const int64_t Base = ChunkPool::get().outstandingBytes();
  MemoryGovernor::Config C = Saved;
  C.LimitBytes = Base + 16 * ChunkBytes;
  C.SoftFrac = 0.5;
  MemoryGovernor::get().configure(C);
  EXPECT_EQ(MemoryGovernor::get().pressure(), Pressure::None);

  std::vector<Chunk *> Cs;
  Pressure Prev = Pressure::None;
  for (int I = 0; I < 15; ++I) {
    Cs.push_back(ChunkPool::get().acquire());
    Pressure Now = MemoryGovernor::get().pressure();
    EXPECT_GE(static_cast<int>(Now), static_cast<int>(Prev))
        << "pressure must not drop while residency only grows (chunk " << I
        << ")";
    Prev = Now;
  }
  EXPECT_GE(static_cast<int>(Prev), static_cast<int>(Pressure::Soft))
      << "15 of 16 chunks is past the 50% soft watermark";
  EXPECT_GT(stat("mm.pressure.transitions"), 0);

  // Scaled allocation budgets shrink as the ladder climbs.
  EXPECT_LT(MemoryGovernor::get().allocBudgetScale(), 1.0);

  for (Chunk *Ch : Cs)
    ChunkPool::get().release(Ch);
  EXPECT_EQ(MemoryGovernor::get().pressure(), Pressure::None)
      << "pressure decays when residency returns below the watermarks";
}

//===----------------------------------------------------------------------===//
// Pinned-bytes gauge
//===----------------------------------------------------------------------===//

TEST_F(MmPressureTest, PinnedBytesGaugeReturnsToZeroAfterJoins) {
  MemoryGovernor::get().resetPinnedBytes();
  rt::Runtime R(runtimeCfg(2));
  R.run([&] { EXPECT_EQ(wl::exchange(500), 500); });

  // The exchange workload entangles heavily, so the gauge must have moved;
  // a fully joined tree has released every pin.
  EXPECT_GT(stat("em.pinned.bytes"), 0);
  EXPECT_EQ(MemoryGovernor::get().pinnedBytes(), 0)
      << "every pin must be released once the task tree has joined";
}

} // namespace
