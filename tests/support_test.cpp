//===- tests/support_test.cpp - Unit tests for src/support ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Cli.h"
#include "support/Histogram.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace mpl;

TEST(RandomTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBounded(17), 17u);
}

TEST(RandomTest, ForkIsScheduleIndependent) {
  Rng Base(99);
  // Forking the same index twice gives the same stream regardless of what
  // happened to the parent in between.
  Rng F1 = Base.fork(5);
  Base.next();
  Base.next();
  Rng F2 = Rng(99).fork(5);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(F1.next(), F2.next());
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, Hash64Injective) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 10000; ++I)
    Seen.insert(hash64(I));
  EXPECT_EQ(Seen.size(), 10000u);
}

TEST(StatsTest, AddAndReport) {
  static Stat S("test.counter");
  S.set(0);
  S.add(5);
  S.inc();
  EXPECT_EQ(S.get(), 6);
  EXPECT_EQ(StatRegistry::get().valueOf("test.counter"), 6);
  EXPECT_NE(StatRegistry::get().report().find("test.counter"),
            std::string::npos);
}

TEST(StatsTest, NoteMaxKeepsMaximum) {
  static Stat S("test.max");
  S.set(0);
  S.noteMax(10);
  S.noteMax(3);
  S.noteMax(12);
  EXPECT_EQ(S.get(), 12);
}

TEST(StatsTest, ConcurrentAdds) {
  static Stat S("test.concurrent");
  S.set(0);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([] {
      for (int I = 0; I < 10000; ++I)
        S.inc();
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.get(), 40000);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer T;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(T.elapsedNs(), 5'000'000);
  EXPECT_LT(T.elapsedSec(), 5.0);
}

TEST(CliTest, ParsesFlagsAndPositional) {
  // A bare flag followed by a non-flag token consumes it as a value, so
  // positional arguments are listed first (documented in Cli.h).
  const char *Argv[] = {"prog", "input.txt", "-n", "42", "-name=msort",
                        "-verbose"};
  Cli C(6, const_cast<char **>(Argv));
  EXPECT_EQ(C.getInt("n", 0), 42);
  EXPECT_EQ(C.getString("name", ""), "msort");
  EXPECT_TRUE(C.getBool("verbose"));
  EXPECT_FALSE(C.getBool("quiet"));
  EXPECT_EQ(C.getInt("missing", 7), 7);
  ASSERT_EQ(C.positional().size(), 1u);
  EXPECT_EQ(C.positional()[0], "input.txt");
}

TEST(CliTest, DoubleFlags) {
  const char *Argv[] = {"prog", "-factor", "2.5"};
  Cli C(3, const_cast<char **>(Argv));
  EXPECT_DOUBLE_EQ(C.getDouble("factor", 0.0), 2.5);
}

TEST(TableTest, AlignsColumns) {
  Table T({"name", "time"});
  T.addRow({"fib", "1.5s"});
  T.addRow({"mergesort", "0.3s"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("mergesort"), std::string::npos);
  // Column 2 aligned: both time cells start at the same offset.
  size_t Line1 = Out.find("fib");
  size_t Line2 = Out.find("mergesort");
  EXPECT_NE(Line1, std::string::npos);
  EXPECT_NE(Line2, std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmtRatio(2.0), "2.00x");
  EXPECT_EQ(Table::fmtInt(42), "42");
  EXPECT_EQ(Table::fmtBytes(512), "512B");
  EXPECT_EQ(Table::fmtBytes(2048), "2.0K");
  EXPECT_NE(Table::fmtSec(0.5).find("ms"), std::string::npos);
  EXPECT_NE(Table::fmtSec(2.0).find("s"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Histogram percentiles
//===----------------------------------------------------------------------===//

TEST(HistogramTest, PercentilesMatchBucketBounds) {
  Histogram H("test.percentiles");
  // 90 samples land in bucket 4 (values in [8, 16), upper bound 15) and 10
  // in bucket 10 (values in [512, 1024), upper bound 1023).
  for (int I = 0; I < 90; ++I)
    H.record(10);
  for (int I = 0; I < 10; ++I)
    H.record(1000);
  Histogram::Percentiles P = H.percentiles();
  EXPECT_EQ(P.P50, 15);   // Cumulative 90 > 50.
  EXPECT_EQ(P.P95, 1023); // Cumulative 90 <= 95 < 100.
  EXPECT_EQ(P.P99, 1023);
  EXPECT_EQ(P.P999, 1023);
  // One-pass percentiles agree with the per-quantile walk.
  EXPECT_EQ(P.P50, H.approxQuantile(0.50));
  EXPECT_EQ(P.P95, H.approxQuantile(0.95));
  EXPECT_EQ(P.P99, H.approxQuantile(0.99));
  EXPECT_EQ(P.P999, H.approxQuantile(0.999));
}

TEST(HistogramTest, P999SeparatesFromP99InLongTail) {
  Histogram H("test.percentiles.tail");
  // 9990 fast samples, 10 slow outliers: P99 stays in the fast bucket
  // while P999 lands on the outliers.
  for (int I = 0; I < 9990; ++I)
    H.record(10); // Bucket 4, upper bound 15.
  for (int I = 0; I < 10; ++I)
    H.record(1'000'000); // Bucket 20: [2^19, 2^20), upper bound 2^20-1.
  Histogram::Percentiles P = H.percentiles();
  EXPECT_EQ(P.P99, 15);
  EXPECT_EQ(P.P999, (1 << 20) - 1);
}

TEST(HistogramTest, PercentilesOfEmptyAndSingleton) {
  Histogram H("test.percentiles.edge");
  Histogram::Percentiles P = H.percentiles();
  EXPECT_EQ(P.P50, 0);
  EXPECT_EQ(P.P95, 0);
  EXPECT_EQ(P.P99, 0);
  // A lone sample is every percentile (bucket upper-bound semantics).
  H.record(100); // Bucket 7: [64, 128), upper bound 127.
  P = H.percentiles();
  EXPECT_EQ(P.P50, 127);
  EXPECT_EQ(P.P95, 127);
  EXPECT_EQ(P.P99, 127);
  EXPECT_EQ(P.P999, 127);
}

TEST(HistogramTest, PercentilesZeroValuedSamplesUseBucketZero) {
  Histogram H("test.percentiles.zero");
  for (int I = 0; I < 10; ++I)
    H.record(0);
  Histogram::Percentiles P = H.percentiles();
  EXPECT_EQ(P.P50, 0);
  EXPECT_EQ(P.P99, 0);
}
