//===- tests/spans_test.cpp - Causal span ledger tests --------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The span ledger's two load-bearing claims (DESIGN.md §14):
//
//  1. Consistency: the critical path extracted from the merged fork-join
//     DAG equals the scheduler's online span S. Both accrue the *same*
//     strand quanta (Scheduler::strandPause adds each elapsed strand to
//     SpanAccNs and to the current span task's SelfNs), so the agreement
//     is exact, not approximate — any drift means the DAG is wrong.
//
//  2. Attribution: em events sampled in the read/write barrier slow paths
//     resolve to the pml source line of the expression that caused them,
//     via the compiler's bytecode -> (Line, Col) source map.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/Span.h"
#include "pml/Vm.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

using namespace mpl;

namespace {

/// Every test arms/disarms the process-wide ledger; serialize the state.
class SpansTest : public ::testing::Test {
protected:
  void SetUp() override { obs::SpanLedger::get().disable(); }
  void TearDown() override { SetUp(); }

  /// Runs \p Body in a fresh runtime with the ledger armed and returns the
  /// run's merged summary.
  template <typename Fn>
  obs::SpanRunSummary record(int Workers, Fn &&Body) {
    obs::SpanLedger::get().enable();
    {
      rt::Config Cfg;
      Cfg.NumWorkers = Workers;
      Cfg.Profile = true;
      rt::Runtime R(Cfg);
      R.run(Body);
    }
    obs::SpanLedger::get().disable();
    return obs::SpanLedger::get().lastRun();
  }
};

} // namespace

TEST_F(SpansTest, SingleTaskRunIsJustTheRoot) {
  obs::SpanRunSummary Sum = record(1, [] {
    volatile int64_t Acc = 0;
    for (int I = 0; I < 1000; ++I)
      Acc += I;
  });
  ASSERT_TRUE(Sum.Valid);
  EXPECT_EQ(Sum.Tasks, 1);
  EXPECT_EQ(Sum.Stolen, 0);
  ASSERT_EQ(Sum.AllTasks.size(), 1u);
  EXPECT_EQ(Sum.AllTasks[0].Parent, ~uint64_t(0));
  EXPECT_TRUE(Sum.AllTasks[0].OnCriticalPath);
  // A serial run's critical path IS its work.
  EXPECT_DOUBLE_EQ(Sum.CriticalPathSec, Sum.LedgerWorkSec);
}

TEST_F(SpansTest, CriticalPathMatchesSchedulerSpan) {
  obs::SpanRunSummary Sum = record(1, [] { (void)wl::fib(18, 5); });
  ASSERT_TRUE(Sum.Valid);
  EXPECT_GT(Sum.Tasks, 3);
  EXPECT_EQ(Sum.Stolen, 0); // One worker: nothing to steal.
  ASSERT_GT(Sum.SchedSpanSec, 0.0);
  // Same-quanta design: ledger CP and scheduler S are built from the same
  // strand measurements, so they agree exactly — 5% is the CI oracle's
  // slack, not an expected error.
  EXPECT_LT(std::fabs(Sum.agreementPct()), 5.0);
  EXPECT_NEAR(Sum.LedgerWorkSec, Sum.SchedWorkSec,
              1e-9 + 1e-6 * Sum.SchedWorkSec);
  EXPECT_NEAR(Sum.CriticalPathSec, Sum.SchedSpanSec,
              1e-9 + 1e-6 * Sum.SchedSpanSec);
}

TEST_F(SpansTest, DagShapeIsAWellFormedForkJoinTree) {
  obs::SpanRunSummary Sum = record(2, [] { (void)wl::fib(18, 5); });
  ASSERT_TRUE(Sum.Valid);

  // Exactly one root; every other task's parent is a recorded task.
  std::vector<uint64_t> Ids;
  int Roots = 0;
  for (const obs::SpanTaskOut &T : Sum.AllTasks) {
    Ids.push_back(T.Id);
    if (T.Parent == ~uint64_t(0))
      ++Roots;
  }
  EXPECT_EQ(Roots, 1);
  std::sort(Ids.begin(), Ids.end());
  for (const obs::SpanTaskOut &T : Sum.AllTasks)
    if (T.Parent != ~uint64_t(0))
      EXPECT_TRUE(std::binary_search(Ids.begin(), Ids.end(), T.Parent))
          << "task " << T.Id << " has unknown parent " << T.Parent;

  // Fork pairs: children are allocated in (A=n, B=n+1) pairs, so every
  // parent has an even child count.
  std::vector<std::pair<uint64_t, int>> ChildCount;
  for (const obs::SpanTaskOut &T : Sum.AllTasks) {
    if (T.Parent == ~uint64_t(0))
      continue;
    bool Hit = false;
    for (auto &[P, N] : ChildCount)
      if (P == T.Parent) {
        ++N;
        Hit = true;
        break;
      }
    if (!Hit)
      ChildCount.emplace_back(T.Parent, 1);
  }
  for (const auto &[P, N] : ChildCount)
    EXPECT_EQ(N % 2, 0) << "parent " << P << " has unpaired children";

  // The critical path starts at the root and only visits recorded tasks.
  ASSERT_FALSE(Sum.CriticalPath.empty());
  int OnCp = 0;
  for (const obs::SpanTaskOut &T : Sum.AllTasks)
    if (T.OnCriticalPath)
      ++OnCp;
  EXPECT_EQ(static_cast<size_t>(OnCp), Sum.CriticalPath.size());
}

TEST_F(SpansTest, AttributesEmEventsToPmlSourceLines) {
  // Deterministic entangling program: task A publishes a fresh ref through
  // a shared ref cell (line 5: the := becomes a pin), task B chases it
  // (line 6: the inner ! is an entangled read). On one worker A runs to
  // completion first, so the schedule — and the attribution — is fixed.
  const std::string Src = "let\n"
                          "  val r = ref (ref 0)\n"
                          "in\n"
                          "  par (\n"
                          "    (r := ref 7; 0),\n"
                          "    !(!r))\n"
                          "end";
  std::string Output, Rendered, TypeStr;
  std::vector<std::string> Errors;
  bool Ok = false;
  obs::SpanRunSummary Sum = record(1, [&] {
    Ok = pml::evalSource(Src, Output, Rendered, TypeStr, Errors);
  });
  ASSERT_TRUE(Ok) << (Errors.empty() ? "" : Errors[0]);
  EXPECT_EQ(Rendered, "(0, 7)");

  ASSERT_TRUE(Sum.Valid);
  EXPECT_EQ(Sum.Tasks, 3); // Root + the two par arms.
  EXPECT_EQ(Sum.EmReads, 1);
  EXPECT_GE(Sum.PinEvents, 1);

  // Per-line aggregates are keyed by packed (Line << 8) | Col.
  auto lineOf = [&](uint32_t Loc) -> const obs::SpanLineStat * {
    for (const auto &[L, S] : Sum.Lines)
      if (L == Loc)
        return &S;
    return nullptr;
  };
  int ReadLine = 0, PinLine = 0;
  for (const auto &[L, S] : Sum.Lines) {
    if (S.EmReads > 0)
      ReadLine = static_cast<int>(L >> 8);
    if (S.Pins > 0)
      PinLine = static_cast<int>(L >> 8);
  }
  EXPECT_EQ(ReadLine, 6) << "entangled read must attribute to `!(!r)`";
  EXPECT_EQ(PinLine, 5) << "pin must attribute to `r := ref 7`";

  // The par arms carry the fork site (line 4, the `par`).
  const obs::SpanLineStat *ParSite = nullptr;
  for (const auto &[L, S] : Sum.Lines)
    if (S.Tasks == 2)
      ParSite = lineOf(L);
  ASSERT_NE(ParSite, nullptr) << "no line owns the two par tasks";
}

TEST_F(SpansTest, DisabledLedgerRecordsNothing) {
  // A run without the ledger armed must leave lastRun() untouched and add
  // zero overhead records.
  obs::SpanRunSummary Before = obs::SpanLedger::get().lastRun();
  {
    rt::Config Cfg;
    Cfg.NumWorkers = 1;
    rt::Runtime R(Cfg);
    R.run([] { (void)wl::fib(14, 5); });
  }
  obs::SpanRunSummary After = obs::SpanLedger::get().lastRun();
  EXPECT_EQ(Before.Tasks, After.Tasks);
  EXPECT_EQ(Before.Valid, After.Valid);
}

TEST_F(SpansTest, JsonExportParsesBackAndIsSelfConsistent) {
  obs::SpanRunSummary Sum = record(2, [] { (void)wl::fib(16, 5); });
  ASSERT_TRUE(Sum.Valid);
  std::string Json = Sum.toJson();
  EXPECT_NE(Json.find("\"schema\":\"mpl-spans/1\""), std::string::npos);
  EXPECT_NE(Json.find("\"critical_path\""), std::string::npos);
  // The full parse-back contract is exercised in report_test (GateLib's
  // parseSpansJson); here just pin the schema tag and task count.
  EXPECT_NE(Json.find("\"tasks\":" + std::to_string(Sum.Tasks)),
            std::string::npos);
}
