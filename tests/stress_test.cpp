//===- tests/stress_test.cpp - Multi-worker stress tests ------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Concurrency stress: real worker threads, aggressive collection budgets,
// and entangled communication patterns, checking value integrity and
// statistic invariants. These tests are about races the deterministic
// suites cannot reach: remote pins during local collections, concurrent
// joins, barrier traffic against entangled reads.
//
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "core/Em.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Stats.h"
#include "workloads/Entangled.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace mpl;
using namespace mpl::ops;

namespace {
rt::Config stressCfg(int Workers) {
  rt::Config C;
  C.NumWorkers = Workers;
  C.Profile = false;
  C.GcMinBytes = 1 << 17; // Very aggressive: maximize GC interleavings.
  return C;
}

/// CI's memory-pressure stage runs this whole binary with
/// MPL_CHAOS_FAULT_EVERY_N=<n> (n >= 2) and a tight MPL_MEM_LIMIT_MB: every
/// n-th chunk acquisition fails and the governor's recovery ladder must
/// absorb it — all stress tests pass unchanged, zero process aborts. n == 1
/// is rejected (every retry would fail too; the ladder could never settle).
class ChunkFaultEnv : public ::testing::Environment {
public:
  void SetUp() override {
    const char *S = std::getenv("MPL_CHAOS_FAULT_EVERY_N");
    if (!S)
      return;
    int N = std::atoi(S);
    if (N < 2)
      return;
    chaos::Config C;
    C.Seed = 99;
    C.InjectFault = chaos::Fault::FailChunkAlloc;
    C.FaultEveryN = static_cast<uint32_t>(N);
    chaos::enable(C);
    Armed = true;
  }
  void TearDown() override {
    if (Armed)
      chaos::disable();
  }

private:
  bool Armed = false;
};

[[maybe_unused]] const auto *RegisteredEnv =
    ::testing::AddGlobalTestEnvironment(new ChunkFaultEnv);
} // namespace

TEST(StressTest, DeepNestedParWithChurn) {
  rt::Runtime R(stressCfg(4));
  int64_t Got = 0;
  R.run([&] {
    struct Rec {
      static int64_t go(int Depth) {
        if (Depth == 0) {
          // Churn: build and discard a list.
          Local List(nullptr);
          for (int I = 0; I < 200; ++I) {
            Local Node(newRecord(0b10, {boxInt(I), List.slot()}));
            List.set(Node.get());
          }
          int64_t Sum = 0;
          for (Object *Cur = List.get(); Cur;
               Cur = Object::asPointer(recGet(Cur, 1)))
            Sum += unboxInt(recGet(Cur, 0));
          return Sum;
        }
        auto [A, B] = rt::par([&] { return boxInt(go(Depth - 1)); },
                              [&] { return boxInt(go(Depth - 1)); });
        return unboxInt(A) + unboxInt(B);
      }
    };
    Got = Rec::go(6);
  });
  EXPECT_EQ(Got, 64 * (199 * 200 / 2));
}

TEST(StressTest, ManyRoundsOfEntangledExchange) {
  em::Counts.reset();
  rt::Runtime R(stressCfg(4));
  int64_t Bad = 0;
  R.run([&] {
    for (int Round = 0; Round < 20; ++Round)
      if (wl::exchange(500) != 500)
        ++Bad;
  });
  EXPECT_EQ(Bad, 0);
  // Everything pinned must have been released by the joins.
  em::CounterSnapshot S = em::Counts.snapshot();
  EXPECT_GT(S.PinnedBytes, 0);
  EXPECT_EQ(S.livePinnedBytes(), 0);
  EXPECT_EQ(S.livePinnedObjects(), 0);
}

TEST(StressTest, ConcurrentDedupUnderTinyGcBudget) {
  rt::Runtime R(stressCfg(4));
  int64_t Got = 0;
  R.run([&] {
    Local Keys(wl::randomInts(30000, 4000, 99));
    Got = wl::dedup(Keys.get(), 64);
  });
  // Reference count computed natively.
  std::vector<bool> Seen(4000, false);
  int64_t Expect = 0;
  for (int64_t I = 0; I < 30000; ++I) {
    auto V = static_cast<size_t>(
        hash64(99 ^ hash64(static_cast<uint64_t>(I))) % 4000);
    if (!Seen[V]) {
      Seen[V] = true;
      ++Expect;
    }
  }
  EXPECT_EQ(Got, Expect);
}

TEST(StressTest, PipelineRepeatedWithCollections) {
  rt::Runtime R(stressCfg(2));
  int64_t Total = 0;
  R.run([&] {
    for (int Round = 0; Round < 10; ++Round) {
      Total += wl::channelPipeline(2000);
      rt::Runtime::current()->maybeCollect(/*Force=*/true);
    }
  });
  EXPECT_EQ(Total, 10 * (2000 * 1999 / 2));
}

TEST(StressTest, MixedWorkloadsBackToBack) {
  // One runtime, many different kernels in sequence: shakes out state
  // leaking between phases (stale pins, heap accounting, root leaks).
  rt::Runtime R(stressCfg(4));
  R.run([&] {
    EXPECT_EQ(wl::fib(20, 8), 6765);
    Local A(wl::randomInts(20000, 1 << 20, 1));
    Local S(wl::mergesortInts(A.get(), 512));
    EXPECT_TRUE(wl::isSortedInts(S.get()));
    Local K(wl::randomInts(10000, 1500, 2));
    EXPECT_GT(wl::dedup(K.get(), 128), 0);
    EXPECT_EQ(wl::exchange(1000), 1000);
    Local P(wl::primesUpTo(20000));
    EXPECT_EQ(arrLen(P.get()), 2262u); // pi(2*10^4)
    EXPECT_EQ(wl::nqueens(9), 352);
  });
}

TEST(StressTest, SharedCountersWithCas) {
  // Many tasks CAS-increment shared refs: exercises refCas + barriers
  // under contention.
  rt::Runtime R(stressCfg(4));
  int64_t Total = -1;
  R.run([&] {
    Local Counter(newRef(boxInt(0)));
    rt::parFor(0, 4000, 16, [&](int64_t) {
      while (true) {
        Slot Cur = refGet(Counter.get());
        if (refCas(Counter.get(), Cur, boxInt(unboxInt(Cur) + 1)))
          break;
      }
    });
    Total = unboxInt(refGet(Counter.get()));
  });
  EXPECT_EQ(Total, 4000);
}

TEST(StressTest, EntangledTreePassing) {
  // Builds an immutable tree in one branch, publishes the root, and the
  // sibling traverses it fully (entangled immutable traversal) while the
  // builder collects aggressively.
  rt::Runtime R(stressCfg(2));
  int64_t SumA = -1, SumB = -2;
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    auto [RA, RB] = rt::par(
        [&]() -> Slot {
          struct Build {
            static Object *tree(int Depth, int64_t &Sum, int64_t Next) {
              if (Depth == 0) {
                Sum += Next;
                return newRecord(0, {boxInt(Next)});
              }
              Local L(tree(Depth - 1, Sum, Next * 2));
              Local Rr(tree(Depth - 1, Sum, Next * 2 + 1));
              return newRecord(0b11, {L.slot(), Rr.slot()});
            }
          };
          int64_t Sum = 0;
          Local Root(Build::tree(10, Sum, 1));
          refSet(Shared.get(), Root.slot());
          // Churn + collect after publishing.
          for (int I = 0; I < 30000; ++I)
            newRecord(0, {boxInt(I)});
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          return boxInt(Sum);
        },
        [&]() -> Slot {
          // Wait for the tree, then sum the leaves barrier-free through
          // immutable fields.
          Object *Root;
          while (!(Root = Object::asPointer(refGet(Shared.get()))))
            std::this_thread::yield();
          struct Walk {
            static int64_t sum(Object *N, int Depth) {
              if (Depth == 0)
                return unboxInt(recGet(N, 0));
              return sum(Object::asPointer(recGet(N, 0)), Depth - 1) +
                     sum(Object::asPointer(recGet(N, 1)), Depth - 1);
            }
          };
          return boxInt(Walk::sum(Root, 10));
        });
    SumA = unboxInt(RA);
    SumB = unboxInt(RB);
  });
  EXPECT_EQ(SumA, SumB) << "reader must observe the exact tree";
}

TEST(StressTest, RepeatedRuntimeLifecycles) {
  // Create/destroy runtimes repeatedly; the chunk pool and heap managers
  // must not leak or corrupt across lifecycles.
  for (int Cycle = 0; Cycle < 6; ++Cycle) {
    rt::Runtime R(stressCfg(1 + Cycle % 3));
    int64_t Got = 0;
    R.run([&] { Got = wl::fib(18, 8); });
    EXPECT_EQ(Got, 2584);
  }
  // All chunks returned (nothing outstanding between runtimes).
  EXPECT_EQ(rt::Runtime::residencyBytes(), 0);
}
