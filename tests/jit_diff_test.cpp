//===- tests/jit_diff_test.cpp - Interp-vs-JIT differential plane ---------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The JIT's correctness contract (DESIGN.md §17) is *bit-identical
// observable behavior* with the interpreter: same values, same print
// output, same trap messages, same Detect-mode rejections — and, because
// the templates inline the entanglement barrier fast paths, the same em
// counter totals, event for event. This suite enforces the contract
// differentially: every corpus program runs twice per barrier mode, once
// pinned to the interpreter and once with the JIT forced hot (threshold 1,
// so every function compiles on its first call), and the two outcomes must
// match field by field.
//
// Counter checksums are compared on successful single-worker runs (a
// deterministic schedule makes the event sequence exactly reproducible; a
// trapping run unwinds mid-program, where "how far did it get" is the
// interpreter's business, not the contract's). Every successful run must
// also end with zero leaked pins, in both tiers.
//
//===----------------------------------------------------------------------===//

#include "core/Em.h"
#include "core/Runtime.h"
#include "pml/Compiler.h"
#include "pml/Parser.h"
#include "pml/Types.h"
#include "pml/Vm.h"
#include "pml/jit/Jit.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mpl;
using namespace mpl::pml;

namespace {

//===----------------------------------------------------------------------===//
// Tiered run harness
//===----------------------------------------------------------------------===//

struct TierOutcome {
  bool Ok = false;
  std::string Value;
  std::string Output;
  std::string Error;
  em::CounterSnapshot Counters;
  size_t Compiled = 0;     ///< Functions the JIT tier compiled this run.
  int64_t JitEntries = 0;  ///< Dispatcher entries into native code.
};

/// Restores the process-wide JIT gates on scope exit so a failing test
/// cannot leak "JIT forced on" into unrelated suites.
struct JitGateGuard {
  ~JitGateGuard() {
    jit::setEnabled(false);
    jit::setCompileThreshold(64);
  }
};

TierOutcome runTier(const std::string &Src, int Workers, em::Mode Mode,
                    bool UseJit) {
  JitGateGuard Guard;
  jit::setCompileThreshold(1);
  jit::setEnabled(UseJit);

  TierOutcome R;
  std::vector<std::string> Errs;
  ExprPtr Ast = parseProgram(Src, Errs);
  EXPECT_TRUE(Ast) << (Errs.empty() ? "parse failed" : Errs[0]);
  if (!Ast)
    return R;
  TypeChecker TC;
  Ty *T = TC.infer(*Ast, Errs);
  EXPECT_TRUE(T) << (Errs.empty() ? "type error" : Errs[0]);
  if (!T)
    return R;
  Program Prog;
  bool Compiled = compile(*Ast, Prog, Errs);
  EXPECT_TRUE(Compiled) << (Errs.empty() ? "compile failed" : Errs[0]);
  if (!Compiled)
    return R;

  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  Cfg.GcMinBytes = 1 << 18;
  Cfg.Mode = Mode;
  rt::Runtime Rt(Cfg);

  em::Counts.reset();
  int64_t Entries0 = StatRegistry::get().valueOf("pml.jit.entries");
  try {
    Rt.run([&] {
      // Values must be rendered before the run's heaps are torn down.
      Vm M(Prog, &R.Output);
      Vm::Result Res = M.run();
      if (Res.Ok) {
        R.Ok = true;
        R.Value = renderValue(Res.Value, T);
      } else {
        R.Error = Res.Error;
      }
    });
  } catch (const std::exception &E) {
    // Detect-mode EntanglementError (and governor OOM) unwind out of
    // Rt.run by design; both tiers must surface the identical message.
    R.Ok = false;
    R.Error = E.what();
  }
  R.Counters = em::Counts.snapshot();
  R.Compiled = Prog.Jit ? Prog.Jit->compiledCount() : 0;
  R.JitEntries = StatRegistry::get().valueOf("pml.jit.entries") - Entries0;
  return R;
}

void expectCountersEqual(const em::CounterSnapshot &I,
                         const em::CounterSnapshot &J, const char *Name) {
#define MPL_CMP(F) EXPECT_EQ(I.F, J.F) << Name << ": em counter " #F
  MPL_CMP(EntangledReads);
  MPL_CMP(EntangledReadsUnpinned);
  MPL_CMP(DownPointerPins);
  MPL_CMP(CrossPointerPins);
  MPL_CMP(PinnedHolderPins);
  MPL_CMP(PinnedObjects);
  MPL_CMP(PinnedBytes);
  MPL_CMP(UnpinnedObjects);
  MPL_CMP(UnpinnedBytes);
  MPL_CMP(ContCaptured);
  MPL_CMP(ContResumed);
#undef MPL_CMP
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

enum : unsigned {
  MOff = 1,
  MDetect = 2,
  MManage = 4,
  MAll = MOff | MDetect | MManage,
};

struct DiffProgram {
  const char *Name;
  const char *Src;
  int Workers;
  unsigned Modes; ///< Off is only sound for disentangled programs.
};

const DiffProgram Corpus[] = {
    // Inline templates: tagged arithmetic, comparisons, bool ops.
    {"arith_mix",
     "printInt (1 + 2 * 3 - 4);\n"
     "printInt (17 / 5); printInt (17 % 5); printInt (-(5) + 2);\n"
     "printInt (if 1 < 2 andalso 3 <> 4 then 1 else 0);\n"
     "printInt (if not (1 = 1) orelse 2 >= 2 then 7 else 8)",
     1, MAll},
    // Inline trap stubs, same messages as the interpreter.
    {"trap_div_zero", "fun f x = x / (x - x)\nf 3", 1, MAll},
    {"trap_mod_zero", "5 % 0", 1, MAll},
    {"trap_oob", "get (alloc 2 0) 5", 1, MAll},
    {"trap_match_fail", "case [1] of [] => 0", 1, MAll},
    {"trap_non_tail_recursion",
     "fun loop x = loop x + 1\nloop 0", 1, MAll},
    // Closures, captures (LoadCapture read barrier), FixSelf.
    {"closures_nested_capture",
     "fun add x y = x + y\n"
     "val inc = add 1\n"
     "let val a = 1\n"
     "in printInt ((fn x => fn y => a + x + y) 2 3); printInt (inc 41) end",
     1, MAll},
    {"recursion_fib",
     "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
     "printInt (fib 18)",
     1, MAll},
    // The self-tail-call fast path: frame rebuild fully in native code.
    {"tail_self_loop",
     "fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + i)\n"
     "printInt (loop 300000 0)",
     1, MAll},
    // Generic tail calls through a ref'd closure (helper path).
    {"tail_cross_functions",
     "val next = ref (fn x => x)\n"
     "fun stepA n = if n = 0 then 0 else !next (n - 1)\n"
     "fun stepB n = if n = 0 then 1 else stepA (n - 1)\n"
     "next := stepB;\n"
     "printInt (stepA 100000)",
     1, MAll},
    // Eq/Ne: inline identity/immediate cases plus the structural helper.
    {"equality_structural",
     "printInt (if \"ab\" = \"ab\" then 1 else 0);\n"
     "printInt (if \"ab\" = \"ac\" then 1 else 0);\n"
     "printInt (if (1, true) = (1, true) then 1 else 0);\n"
     "printInt (if (1, 2) <> (1, 3) then 1 else 0);\n"
     "let val r = ref 0 in printInt (if r = r then 1 else 0) end",
     1, MAll},
    // Refs: MkRef/Deref/Assign templates with write-barrier fast path.
    {"refs_loop",
     "let val r = ref 0\n"
     " fun go i = if i = 1000 then () else (r := !r + i; go (i+1))\n"
     "in go 0; printInt (!r) end",
     1, MAll},
    // Arrays: Alloc helper, AGet/ASet/ALen templates with bounds checks.
    {"arrays_fill_sum",
     "let val a = alloc 64 0\n"
     " fun fill i = if i = 64 then () else (set a i (i * i); fill (i+1))\n"
     " fun sum i acc = if i = 64 then acc else sum (i+1) (acc + get a i)\n"
     "in fill 0; printInt (sum 0 0); printInt (length a) end",
     1, MAll},
    {"lists_case",
     "fun sum xs = case xs of [] => 0 | h :: t => h + sum t\n"
     "printInt (sum [1, 2, 3, 4, 5])",
     1, MAll},
    {"strings_print",
     "print \"hello \"; print \"world\\n\"; printInt 42",
     1, MAll},
    // ParCall helper: fork-join with disentangled branches.
    {"par_fill_tree",
     "let val a = alloc 100 0\n"
     "    fun fill lo hi = if hi - lo < 1 then ()\n"
     "      else if hi - lo = 1 then set a lo lo\n"
     "      else let val mid = (lo + hi) / 2\n"
     "           val p = par (fill lo mid, fill mid hi) in () end\n"
     "    fun sum i = if i = 100 then 0 else get a i + sum (i + 1)\n"
     "in fill 0 100; printInt (sum 0) end",
     1, MAll},
    {"par_fill_tree_p3",
     "let val a = alloc 100 0\n"
     "    fun fill lo hi = if hi - lo < 1 then ()\n"
     "      else if hi - lo = 1 then set a lo lo\n"
     "      else let val mid = (lo + hi) / 2\n"
     "           val p = par (fill lo mid, fill mid hi) in () end\n"
     "    fun sum i = if i = 100 then 0 else get a i + sum (i + 1)\n"
     "in fill 0 100; printInt (sum 0) end",
     3, MAll},
    {"par_trap_in_branch", "par (1 / 0, 2)", 1, MAll},
    // Entangled: branch B reads an object branch A just published. Manage
    // pins it; Detect rejects it; Off is unsound by construction — both
    // tiers must do exactly the same thing, so Off is excluded.
    {"par_entangled_read",
     "let val r = ref (ref 0)\n"
     "    val p = par ((r := ref 7; 0), !(!r))\n"
     "in printInt 1 end",
     1, MDetect | MManage},
    // Effects: Suspend/Resume/Handle exit helpers, continuation pins.
    {"eff_basic_resume",
     "effect Ask\n"
     "fun client x = perform Ask x + perform Ask 10\n"
     "printInt (handle client 1 with | Ask n k => resume k (n * 100) end)",
     1, MAll},
    {"eff_abort",
     "effect Abort\n"
     "printInt (handle 1 + perform Abort 0 with | Abort x k => 42 end)",
     1, MAll},
    {"eff_state_encoding",
     "effect Get\n"
     "effect Put\n"
     "fun runState init body =\n"
     "  (handle (fn r => fn s => r) (body 0) with\n"
     "   | Get u k => fn s => (resume k s) s\n"
     "   | Put v k => fn s => (resume k ()) v\n"
     "   end) init\n"
     "printInt (runState 10 (fn u =>\n"
     "  let val a = perform Get ()\n"
     "  in perform Put (a * 3); perform Get () + 1 end))",
     1, MAll},
    {"eff_deep_perform",
     "effect E\n"
     "fun down n = if n = 0 then perform E 0 else down (n - 1) + 1\n"
     "printInt (handle down 100 with | E x k => resume k 5 end)",
     1, MAll},
    {"eff_unhandled", "effect E\nperform E 1", 1, MAll},
    {"eff_resume_in_par",
     "effect Yield\n"
     "val r =\n"
     "  handle 100 + perform Yield 0 with\n"
     "  | Yield x k =>\n"
     "      let val p = par (resume k 7, 1 + 1)\n"
     "      in fst p * snd p end\n"
     "  end\n"
     "printInt r",
     3, MManage},
};

struct ModeCase {
  em::Mode Mode;
  const char *Name;
};
const ModeCase ModeCases[] = {
    {em::Mode::Off, "Off"},
    {em::Mode::Detect, "Detect"},
    {em::Mode::Manage, "Manage"},
};
unsigned modeBit(em::Mode M) {
  return M == em::Mode::Off ? MOff : M == em::Mode::Detect ? MDetect : MManage;
}

//===----------------------------------------------------------------------===//
// The differential plane
//===----------------------------------------------------------------------===//

class JitDiffTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(JitDiffTest, InterpAndJitAgree) {
  const DiffProgram &P = Corpus[static_cast<size_t>(std::get<0>(GetParam()))];
  const ModeCase &MC = ModeCases[static_cast<size_t>(std::get<1>(GetParam()))];
  if (!(P.Modes & modeBit(MC.Mode)))
    GTEST_SKIP() << P.Name << " is not sound under mode " << MC.Name;

  TierOutcome I = runTier(P.Src, P.Workers, MC.Mode, /*UseJit=*/false);
  TierOutcome J = runTier(P.Src, P.Workers, MC.Mode, /*UseJit=*/true);

  // The observable contract: same success/failure, same value, same print
  // output, same trap/error message.
  EXPECT_EQ(I.Ok, J.Ok) << P.Name << " interp='" << I.Error << "' jit='"
                        << J.Error << "'";
  EXPECT_EQ(I.Value, J.Value) << P.Name;
  EXPECT_EQ(I.Output, J.Output) << P.Name;
  EXPECT_EQ(I.Error, J.Error) << P.Name;

  // The interpreter tier must never create JIT state.
  EXPECT_EQ(I.Compiled, 0u) << P.Name;
  EXPECT_EQ(I.JitEntries, 0) << P.Name;

  // The JIT tier must actually run native code — a silently-bailing JIT
  // would make this whole suite vacuous. (Under tsan or on non-x86-64 the
  // gate force-disables itself; the differential claim still holds, it is
  // just interp-vs-interp there.)
  if (jit::enabled() || (!jit::tsanForcedOff() && MPL_JIT_SUPPORTED)) {
    EXPECT_GE(J.Compiled, 1u) << P.Name << ": nothing tiered up at threshold 1";
    EXPECT_GE(J.JitEntries, 1) << P.Name << ": dispatcher never entered "
                                            "native code";
  }

  // Entanglement counter checksum: bit-identical barrier behavior. Only on
  // successful deterministic (1-worker) runs — a trapping run unwinds at an
  // unspecified point, and a multi-worker schedule reorders events.
  if (I.Ok && J.Ok && P.Workers == 1)
    expectCountersEqual(I.Counters, J.Counters, P.Name);

  // No leaked pins in either tier: every pin the run took was released by
  // resume or by the join rule.
  if (I.Ok) {
    EXPECT_EQ(I.Counters.livePinnedObjects(), 0) << P.Name << " (interp)";
    EXPECT_EQ(I.Counters.livePinnedBytes(), 0) << P.Name << " (interp)";
  }
  if (J.Ok) {
    EXPECT_EQ(J.Counters.livePinnedObjects(), 0) << P.Name << " (jit)";
    EXPECT_EQ(J.Counters.livePinnedBytes(), 0) << P.Name << " (jit)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JitDiffTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(Corpus))),
        ::testing::Range(0, static_cast<int>(std::size(ModeCases)))),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      return std::string(
                 Corpus[static_cast<size_t>(std::get<0>(Info.param))].Name) +
             "_" +
             ModeCases[static_cast<size_t>(std::get<1>(Info.param))].Name;
    });

//===----------------------------------------------------------------------===//
// Tiering behavior
//===----------------------------------------------------------------------===//

// Below the threshold nothing compiles; crossing it compiles exactly the
// functions that got hot. Same seed (deterministic single-worker run) =>
// same tier decisions, run after run.
TEST(JitTiering, ThresholdGatesCompilation) {
  const char *Src =
      "fun hot i = if i = 0 then 0 else hot (i - 1)\n"
      "fun cold x = x\n"
      "printInt (hot 100 + cold 1)";

  TierOutcome Cold = runTier(Src, 1, em::Mode::Manage, /*UseJit=*/true);
  if (!jit::tsanForcedOff() && MPL_JIT_SUPPORTED) {
    // Threshold 1: every called function compiles, including main.
    EXPECT_GE(Cold.Compiled, 2u);
  }

  // A huge threshold keeps everything interpreted even with the JIT on.
  JitGateGuard Guard;
  jit::setCompileThreshold(1u << 30);
  jit::setEnabled(true);
  std::vector<std::string> Errs;
  ExprPtr Ast = parseProgram(Src, Errs);
  ASSERT_TRUE(Ast);
  Program Prog;
  ASSERT_TRUE(compile(*Ast, Prog, Errs));
  rt::Config Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Profile = false;
  rt::Runtime Rt(Cfg);
  std::string Out;
  Rt.run([&] {
    Vm M(Prog, &Out);
    Vm::Result Res = M.run();
    EXPECT_TRUE(Res.Ok) << Res.Error;
  });
  if (Prog.Jit) {
    EXPECT_EQ(Prog.Jit->compiledCount(), 0u);
  }
}

TEST(JitTiering, SameProgramTiersIdenticallyAcrossRuns) {
  const char *Src =
      "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
      "printInt (fib 15)";
  TierOutcome A = runTier(Src, 1, em::Mode::Manage, /*UseJit=*/true);
  TierOutcome B = runTier(Src, 1, em::Mode::Manage, /*UseJit=*/true);
  EXPECT_EQ(A.Compiled, B.Compiled);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Value, B.Value);
}

} // namespace
